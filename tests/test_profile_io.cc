/**
 * @file
 * Round-trip tests for profile serialization: a reloaded profile must
 * produce bit-identical model results.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "model/interval_model.hh"
#include "profiler/profile_io.hh"
#include "profiler/profiler.hh"
#include "workloads/workload.hh"

namespace mipp {
namespace {

Profile
roundTrip(const Profile &p)
{
    std::stringstream ss;
    writeProfile(p, ss);
    return readProfile(ss);
}

TEST(ProfileIo, ScalarFieldsSurvive)
{
    Trace t = generateWorkload(suiteWorkload("mix_mid"), 80000);
    Profile p = profileTrace(t, {.name = "mix_mid"});
    Profile q = roundTrip(p);
    EXPECT_EQ(q.name, p.name);
    EXPECT_EQ(q.totalUops, p.totalUops);
    EXPECT_EQ(q.profiledUops, p.profiledUops);
    EXPECT_EQ(q.profiledInsts, p.profiledInsts);
    EXPECT_EQ(q.sampling.windowSize, p.sampling.windowSize);
    EXPECT_EQ(q.srcOperands, p.srcOperands);
    EXPECT_EQ(q.uopCounts, p.uopCounts);
    EXPECT_EQ(q.robSizes, p.robSizes);
}

TEST(ProfileIo, DistributionsSurvive)
{
    Trace t = generateWorkload(suiteWorkload("stencil"), 80000);
    Profile p = profileTrace(t, {.name = "stencil"});
    Profile q = roundTrip(p);

    EXPECT_EQ(q.reuseLoads.total(), p.reuseLoads.total());
    EXPECT_EQ(q.reuseLoads.infiniteCount(), p.reuseLoads.infiniteCount());
    for (size_t b = 0; b < p.reuseLoads.numBins(); ++b)
        ASSERT_EQ(q.reuseLoads.binCount(b), p.reuseLoads.binCount(b));

    EXPECT_DOUBLE_EQ(q.branch.entropy(), p.branch.entropy());
    EXPECT_EQ(q.branch.branches, p.branch.branches);

    for (size_t i = 0; i < p.robSizes.size(); ++i) {
        EXPECT_DOUBLE_EQ(q.chains.apAt(i), p.chains.apAt(i));
        EXPECT_DOUBLE_EQ(q.chains.abpAt(i), p.chains.abpAt(i));
        EXPECT_DOUBLE_EQ(q.chains.cpAt(i), p.chains.cpAt(i));
    }

    ASSERT_EQ(q.memOps.size(), p.memOps.size());
    for (size_t i = 0; i < p.memOps.size(); ++i) {
        EXPECT_EQ(q.memOps[i].pc, p.memOps[i].pc);
        EXPECT_EQ(q.memOps[i].count, p.memOps[i].count);
        EXPECT_EQ(q.memOps[i].strides, p.memOps[i].strides);
        EXPECT_EQ(q.memOps[i].strideClass(), p.memOps[i].strideClass());
    }

    ASSERT_EQ(q.windows.size(), p.windows.size());
    for (size_t i = 0; i < p.windows.size(); ++i) {
        EXPECT_EQ(q.windows[i].uopCounts, p.windows[i].uopCounts);
        EXPECT_EQ(q.windows[i].memCounts, p.windows[i].memCounts);
        EXPECT_FLOAT_EQ(q.windows[i].branchEntropy,
                        p.windows[i].branchEntropy);
    }
}

TEST(ProfileIo, ModelResultsIdenticalAfterRoundTrip)
{
    for (const char *name : {"stream_add", "ptr_chase", "mix_mid"}) {
        Trace t = generateWorkload(suiteWorkload(name), 100000);
        Profile p = profileTrace(t, {.name = name});
        Profile q = roundTrip(p);
        CoreConfig cfg = CoreConfig::nehalemReference();
        auto a = evaluateModel(p, cfg);
        auto b = evaluateModel(q, cfg);
        EXPECT_DOUBLE_EQ(a.cycles, b.cycles) << name;
        EXPECT_DOUBLE_EQ(a.mlp, b.mlp) << name;
        EXPECT_DOUBLE_EQ(a.branchMissRate, b.branchMissRate) << name;
    }
}

TEST(ProfileIo, RejectsGarbage)
{
    std::stringstream ss("this is not a profile");
    EXPECT_THROW(readProfile(ss), std::runtime_error);
}

TEST(ProfileIo, RejectsWrongVersion)
{
    std::stringstream ss("mipp-profile 99\n");
    EXPECT_THROW(readProfile(ss), std::runtime_error);
}

TEST(ProfileIo, RejectsTruncated)
{
    Trace t = generateWorkload(suiteWorkload("loopy_small"), 50000);
    Profile p = profileTrace(t, {});
    std::stringstream ss;
    writeProfile(p, ss);
    std::string text = ss.str();
    std::stringstream cut(text.substr(0, text.size() / 2));
    EXPECT_THROW(readProfile(cut), std::runtime_error);
}

TEST(ProfileIo, FileSaveAndLoad)
{
    Trace t = generateWorkload(suiteWorkload("loopy_small"), 50000);
    Profile p = profileTrace(t, {.name = "loopy_small"});
    std::string path = "/tmp/mipp_test_profile.txt";
    ASSERT_TRUE(saveProfile(p, path));
    Profile q = loadProfile(path);
    EXPECT_EQ(q.name, "loopy_small");
    EXPECT_EQ(q.totalUops, p.totalUops);
    std::remove(path.c_str());
}

TEST(ProfileIo, LoadMissingFileThrows)
{
    EXPECT_THROW(loadProfile("/nonexistent/x.profile"),
                 std::runtime_error);
}

TEST(ProfileIo, ChecksumCatchesSingleBitFlip)
{
    Trace t = generateWorkload(suiteWorkload("loopy_small"), 20000);
    Profile p = profileTrace(t, {.name = "loopy_small"});
    std::stringstream ss;
    writeProfile(p, ss);
    std::string text = ss.str();
    text[text.size() / 2] ^= 0x01;

    Profile out;
    Status st = parseProfile(text, out);
    EXPECT_EQ(st.code(), StatusCode::Corrupt) << st.toString();
    EXPECT_NE(st.message().find("checksum"), std::string::npos);
}

TEST(ProfileIo, OversizedInputIsResourceExhaustedNotOom)
{
    ProfileLimits tiny;
    tiny.maxBytes = 1024;
    std::string big(4096, 'x');
    Profile out;
    EXPECT_EQ(parseProfile(big, out, tiny).code(),
              StatusCode::ResourceExhausted);

    std::stringstream ss(big);
    EXPECT_EQ(readProfileChecked(ss, out, tiny).code(),
              StatusCode::ResourceExhausted);
}

TEST(ProfileIo, CountNotBackedByBytesIsRejectedBeforeAllocation)
{
    // A syntactically valid frame whose memops count claims far more
    // items than the remaining bytes could hold: the reader must
    // reject it from the byte budget, not attempt the allocation.
    Trace t = generateWorkload(suiteWorkload("loopy_small"), 20000);
    Profile p = profileTrace(t, {});
    p.memOps.clear();
    p.windows.clear();
    std::stringstream ss;
    writeProfile(p, ss);
    std::string text = ss.str();
    size_t at = text.find("memops 0");
    ASSERT_NE(at, std::string::npos);
    text.replace(at, 8, "memops 500000");
    // Stale checksum now — this test targets the count check, so
    // recompute is not needed: checksum already fails first. Assert
    // Corrupt either way, and never a crash/OOM.
    Profile out;
    EXPECT_EQ(parseProfile(text, out).code(), StatusCode::Corrupt);
}

/**
 * Table-driven sweep of the checked-in malformed-profile corpus
 * (tests/corpus/): every sample must come back as a structured Corrupt /
 * InvalidArgument — parseProfile must never crash, hang or OOM on
 * attacker-shaped bytes. The corpus is derived from a real profile:
 * truncation, version skew, allocation-driving count inflation (with a
 * *valid* checksum, so the bounds checks themselves are exercised),
 * single-bit corruption, noise and an empty file.
 */
TEST(ProfileIoCorpus, EverySampleIsAStructuredError)
{
    struct Sample {
        const char *file;
        StatusCode expect;
    };
    const Sample corpus[] = {
        {"truncated.profile", StatusCode::Corrupt},
        {"version_skew.profile", StatusCode::InvalidArgument},
        {"oversized_count.profile", StatusCode::Corrupt},
        {"bitflip.profile", StatusCode::Corrupt},
        {"garbage.profile", StatusCode::Corrupt},
        {"bad_robsizes.profile", StatusCode::Corrupt},
        {"huge_bin.profile", StatusCode::Corrupt},
        {"empty.profile", StatusCode::Corrupt},
    };
    for (const Sample &s : corpus) {
        std::string path =
            std::string(MIPP_TEST_CORPUS_DIR) + "/" + s.file;
        Profile out;
        Status st = loadProfileChecked(path, out);
        EXPECT_EQ(st.code(), s.expect)
            << s.file << ": " << st.toString();
        EXPECT_FALSE(st.message().empty()) << s.file;
    }
}

TEST(ProfileIoCorpus, CorruptSamplesLeaveCheckedApiNoexceptPath)
{
    // The throwing wrappers map the same corpus to StatusError with the
    // code preserved.
    std::string path =
        std::string(MIPP_TEST_CORPUS_DIR) + "/bitflip.profile";
    try {
        loadProfile(path);
        FAIL() << "corrupt sample should not load";
    } catch (const StatusError &e) {
        EXPECT_EQ(e.code(), StatusCode::Corrupt);
    }
}

} // namespace
} // namespace mipp
