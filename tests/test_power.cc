/**
 * @file
 * Tests for the McPAT-lite power model.
 */

#include <gtest/gtest.h>

#include "power/power_model.hh"

namespace mipp {
namespace {

ActivityCounts
typicalActivity(uint64_t cycles = 1000000)
{
    ActivityCounts a;
    a.cycles = cycles;
    a.uops = cycles * 3 / 2;
    a.instructions = a.uops * 9 / 10;
    a.fuOps[static_cast<int>(UopType::IntAlu)] = a.uops / 2;
    a.fuOps[static_cast<int>(UopType::Load)] = a.uops / 4;
    a.fuOps[static_cast<int>(UopType::FpMul)] = a.uops / 10;
    a.robWrites = a.robReads = a.uops;
    a.iqWrites = a.iqWakeups = a.uops;
    a.rfReads = a.uops * 3 / 2;
    a.rfWrites = a.uops * 7 / 10;
    a.bpLookups = a.uops / 10;
    a.l1iAccesses = a.uops / 3;
    a.l1dAccesses = a.uops / 3;
    a.l2Accesses = a.uops / 50;
    a.l3Accesses = a.uops / 200;
    a.dramAccesses = a.uops / 1000;
    return a;
}

TEST(PowerModel, TotalsAreCalibratedToNehalemScale)
{
    auto cfg = CoreConfig::nehalemReference();
    auto p = computePower(typicalActivity(), cfg);
    // Single core + LLC at 45 nm: single-digit to low-double-digit watts.
    EXPECT_GT(p.total(), 2.0);
    EXPECT_LT(p.total(), 40.0);
    // Static around 40 % of total (thesis §2.4).
    double staticFrac = p.staticPower / p.total();
    EXPECT_GT(staticFrac, 0.2);
    EXPECT_LT(staticFrac, 0.7);
}

TEST(PowerModel, ZeroCyclesMeansZeroPower)
{
    ActivityCounts a;
    auto p = computePower(a, CoreConfig::nehalemReference());
    EXPECT_DOUBLE_EQ(p.total(), 0.0);
}

TEST(PowerModel, DynamicPowerScalesWithSquaredVoltage)
{
    auto cfg = CoreConfig::nehalemReference();
    auto a = typicalActivity();
    auto base = computePower(a, cfg);
    cfg.vdd *= 1.2;
    auto boosted = computePower(a, cfg);
    EXPECT_NEAR(boosted.fu / base.fu, 1.44, 0.01);
    // Leakage grows superlinearly.
    EXPECT_GT(boosted.staticPower / base.staticPower, 1.44);
}

TEST(PowerModel, SameWorkPerCycleAtHigherFrequencyBurnsMore)
{
    auto cfg = CoreConfig::nehalemReference();
    auto a = typicalActivity();
    auto slow = computePower(a, cfg);
    cfg.freqGHz *= 2; // same cycle count in half the time
    auto fast = computePower(a, cfg);
    EXPECT_NEAR(fast.dynamicPower() / slow.dynamicPower(), 2.0, 0.01);
}

TEST(PowerModel, BiggerCachesLeakMore)
{
    auto a = typicalActivity();
    auto small = CoreConfig::nehalemReference();
    small.l3.sizeBytes = 2 * 1024 * 1024;
    auto big = CoreConfig::nehalemReference();
    big.l3.sizeBytes = 32 * 1024 * 1024;
    EXPECT_GT(computePower(a, big).staticPower,
              computePower(a, small).staticPower);
}

TEST(PowerModel, MoreDramTrafficMoreDramPower)
{
    auto cfg = CoreConfig::nehalemReference();
    auto a = typicalActivity();
    auto quiet = computePower(a, cfg);
    a.dramAccesses *= 50;
    auto busy = computePower(a, cfg);
    EXPECT_GT(busy.dram, 10 * quiet.dram);
    EXPECT_DOUBLE_EQ(busy.fu, quiet.fu);
}

TEST(PowerModel, BreakdownComponentsSumToDynamic)
{
    auto p = computePower(typicalActivity(),
                          CoreConfig::nehalemReference());
    double sum = p.frontend + p.rob + p.iq + p.rf + p.fu + p.bp + p.l1i +
                 p.l1d + p.l2 + p.l3 + p.dram;
    EXPECT_NEAR(sum, p.dynamicPower(), 1e-12);
    EXPECT_NEAR(p.corePower() + p.cachePower() + p.dram,
                p.dynamicPower(), 1e-12);
}

TEST(PowerModel, EnergyMetricsIdentities)
{
    auto cfg = CoreConfig::nehalemReference();
    auto p = computePower(typicalActivity(), cfg);
    auto m = energyMetrics(1000000, p, cfg);
    EXPECT_NEAR(m.seconds, 1e6 / (cfg.freqGHz * 1e9), 1e-12);
    EXPECT_NEAR(m.energy, p.total() * m.seconds, 1e-12);
    EXPECT_NEAR(m.edp, m.energy * m.seconds, 1e-18);
    EXPECT_NEAR(m.ed2p, m.edp * m.seconds, 1e-24);
}

TEST(PowerModel, ExecutionSecondsUsesFrequency)
{
    auto cfg = CoreConfig::nehalemReference();
    cfg.freqGHz = 2.0;
    EXPECT_DOUBLE_EQ(executionSeconds(2e9, cfg), 1.0);
}

} // namespace
} // namespace mipp
