/**
 * @file
 * Tests for the obs metrics layer: histogram binning goldens, quantile
 * and merge math, concurrent hammering (the TSan leg runs this suite),
 * registry find-or-create semantics, and the JSON / Prometheus
 * exposition round-trip.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.hh"
#include "util/json.hh"

namespace mipp {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::HistogramSnapshot;
using obs::LatencyHistogram;
using obs::Registry;

TEST(Metrics, BinIndexGoldens)
{
    // Exact range [0, kSubBins).
    EXPECT_EQ(HistogramSnapshot::binIndex(0), 0u);
    EXPECT_EQ(HistogramSnapshot::binIndex(1), 1u);
    EXPECT_EQ(HistogramSnapshot::binIndex(3), 3u);
    // First octave: [4, 8) in sub-bins of width 1.
    EXPECT_EQ(HistogramSnapshot::binIndex(4), 4u);
    EXPECT_EQ(HistogramSnapshot::binIndex(5), 5u);
    EXPECT_EQ(HistogramSnapshot::binIndex(7), 7u);
    // Second octave: [8, 16) in sub-bins of width 2.
    EXPECT_EQ(HistogramSnapshot::binIndex(8), 8u);
    EXPECT_EQ(HistogramSnapshot::binIndex(9), 8u);
    EXPECT_EQ(HistogramSnapshot::binIndex(10), 9u);
    EXPECT_EQ(HistogramSnapshot::binIndex(15), 11u);
    EXPECT_EQ(HistogramSnapshot::binIndex(16), 12u);
    // The top of the range still maps inside the bin array.
    EXPECT_LT(HistogramSnapshot::binIndex(UINT64_MAX),
              HistogramSnapshot::kBins);
}

TEST(Metrics, BinBoundsRoundTrip)
{
    // Every bin's lower bound maps back to that bin, and bounds tile
    // the axis without gaps.
    for (size_t b = 0; b < HistogramSnapshot::kBins; ++b) {
        uint64_t lo = HistogramSnapshot::binLower(b);
        EXPECT_EQ(HistogramSnapshot::binIndex(lo), b) << "bin " << b;
        if (b + 1 < HistogramSnapshot::kBins)
            EXPECT_EQ(HistogramSnapshot::binUpper(b),
                      HistogramSnapshot::binLower(b + 1));
    }
    EXPECT_EQ(HistogramSnapshot::binUpper(HistogramSnapshot::kBins - 1),
              UINT64_MAX);
}

TEST(Metrics, CounterAndGauge)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);

    Gauge g;
    g.set(7);
    g.add(-10);
    EXPECT_EQ(g.value(), -3);
}

TEST(Metrics, HistogramCountSumMax)
{
    LatencyHistogram h;
    h.record(10);
    h.record(100);
    h.record(1000);
    HistogramSnapshot s = h.snapshot();
    EXPECT_EQ(s.count, 3u);
    EXPECT_EQ(s.sum, 1110u);
    EXPECT_EQ(s.max, 1000u);
    EXPECT_DOUBLE_EQ(s.mean(), 370.0);
    EXPECT_EQ(h.count(), 3u);
}

TEST(Metrics, QuantileGoldens)
{
    LatencyHistogram h;
    // Uniform 1..1000: quantiles are known up to the 25% relative bin
    // width plus within-bin interpolation.
    for (uint64_t v = 1; v <= 1000; ++v)
        h.record(v);
    HistogramSnapshot s = h.snapshot();
    EXPECT_EQ(s.quantile(0.0), 1.0);
    EXPECT_NEAR(s.quantile(0.5), 500.0, 500.0 * 0.13);
    EXPECT_NEAR(s.quantile(0.9), 900.0, 900.0 * 0.13);
    EXPECT_NEAR(s.quantile(0.99), 990.0, 990.0 * 0.13);
    // p100 clamps to the observed maximum, not the bin upper bound.
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 1000.0);

    // Degenerate single-value histogram: interpolation stays inside
    // the bin and is clipped at the observed max.
    LatencyHistogram one;
    one.record(77);
    double q50 = one.snapshot().quantile(0.5);
    EXPECT_GE(q50, HistogramSnapshot::binLower(
                       HistogramSnapshot::binIndex(77)));
    EXPECT_LE(q50, 77.0);

    // Empty histogram.
    EXPECT_DOUBLE_EQ(LatencyHistogram().snapshot().quantile(0.5), 0.0);
}

TEST(Metrics, SnapshotMerge)
{
    LatencyHistogram a, b;
    for (uint64_t v = 1; v <= 500; ++v)
        a.record(v);
    for (uint64_t v = 501; v <= 1000; ++v)
        b.record(v);
    HistogramSnapshot sa = a.snapshot();
    sa.merge(b.snapshot());
    EXPECT_EQ(sa.count, 1000u);
    EXPECT_EQ(sa.sum, 1000u * 1001u / 2);
    EXPECT_EQ(sa.max, 1000u);
    EXPECT_NEAR(sa.quantile(0.5), 500.0, 500.0 * 0.13);

    // Merge must equal recording everything into one histogram.
    LatencyHistogram all;
    for (uint64_t v = 1; v <= 1000; ++v)
        all.record(v);
    HistogramSnapshot sall = all.snapshot();
    EXPECT_EQ(sa.bins, sall.bins);
}

TEST(Metrics, ConcurrentHammering)
{
    // The TSan CI leg runs this: N threads race on one counter, one
    // gauge and one histogram; totals must come out exact.
    Counter c;
    Gauge g;
    LatencyHistogram h;
    constexpr int kThreads = 8;
    constexpr uint64_t kPerThread = 20000;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t)
        ts.emplace_back([&, t] {
            for (uint64_t i = 0; i < kPerThread; ++i) {
                c.add();
                g.add(1);
                h.record((i % 1000) + static_cast<uint64_t>(t));
            }
        });
    for (auto &t : ts)
        t.join();
    EXPECT_EQ(c.value(), kThreads * kPerThread);
    EXPECT_EQ(g.value(),
              static_cast<int64_t>(kThreads * kPerThread));
    HistogramSnapshot s = h.snapshot();
    EXPECT_EQ(s.count, kThreads * kPerThread);
    uint64_t binned = 0;
    for (uint64_t b : s.bins)
        binned += b;
    EXPECT_EQ(binned, s.count);
}

TEST(Metrics, RegistryFindOrCreate)
{
    Registry reg;
    Counter &a = reg.counter("x_total");
    Counter &b = reg.counter("x_total");
    EXPECT_EQ(&a, &b); // same handle, not a second metric
    Counter &c = reg.counter("x_total", "op=\"sweep\"");
    EXPECT_NE(&a, &c); // labels distinguish
    a.add(3);
    EXPECT_EQ(reg.counter("x_total").value(), 3u);

    // Re-registering a name as a different kind is a programming error.
    EXPECT_THROW(reg.gauge("x_total"), std::logic_error);
    EXPECT_THROW(reg.histogram("x_total"), std::logic_error);
}

TEST(Metrics, RegistryJsonRoundTrip)
{
    Registry reg;
    reg.counter("req_total").add(5);
    reg.gauge("depth").set(-2);
    LatencyHistogram &h = reg.histogram("lat_ns", "op=\"eval\"");
    for (uint64_t v = 1; v <= 100; ++v)
        h.record(v);

    // The render must survive the repo's own strict parser.
    json::Value doc;
    Status st = json::parse(reg.renderJson(), doc);
    ASSERT_TRUE(st.isOk()) << st.toString();
    EXPECT_GE(doc.numberOr("uptime_ms", -1), 0.0);

    bool sawCounter = false, sawGauge = false, sawHist = false;
    for (const json::Value &m : doc["metrics"].array()) {
        const std::string name = m.stringOr("name", "");
        if (name == "req_total") {
            sawCounter = true;
            EXPECT_EQ(m.stringOr("type", ""), "counter");
            EXPECT_DOUBLE_EQ(m.numberOr("value", -1), 5.0);
        } else if (name == "depth") {
            sawGauge = true;
            EXPECT_EQ(m.stringOr("type", ""), "gauge");
            EXPECT_DOUBLE_EQ(m.numberOr("value", 1), -2.0);
        } else if (name == "lat_ns") {
            sawHist = true;
            EXPECT_EQ(m.stringOr("type", ""), "histogram");
            EXPECT_EQ(m.stringOr("labels", ""), "op=\"eval\"");
            EXPECT_DOUBLE_EQ(m.numberOr("count", -1), 100.0);
            EXPECT_DOUBLE_EQ(m.numberOr("sum", -1), 5050.0);
            EXPECT_DOUBLE_EQ(m.numberOr("max", -1), 100.0);
            EXPECT_GT(m.numberOr("p99", 0), m.numberOr("p50", 1e18));
        }
    }
    EXPECT_TRUE(sawCounter);
    EXPECT_TRUE(sawGauge);
    EXPECT_TRUE(sawHist);
}

TEST(Metrics, RegistryPrometheusExposition)
{
    Registry reg;
    reg.counter("req_total").add(7);
    reg.counter("req_total", "op=\"a\"").add(2);
    reg.gauge("depth").set(3);
    LatencyHistogram &h = reg.histogram("lat_ns");
    h.record(5);
    h.record(5);
    h.record(1000);

    std::string text = reg.renderPrometheus();
    // One TYPE line per family even with multiple labeled children.
    EXPECT_EQ(text.find("# TYPE req_total counter"),
              text.rfind("# TYPE req_total counter"));
    EXPECT_NE(text.find("req_total 7"), std::string::npos);
    EXPECT_NE(text.find("req_total{op=\"a\"} 2"), std::string::npos);
    EXPECT_NE(text.find("# TYPE depth gauge"), std::string::npos);
    EXPECT_NE(text.find("depth 3"), std::string::npos);
    EXPECT_NE(text.find("# TYPE lat_ns histogram"), std::string::npos);
    // Cumulative buckets: the +Inf bucket equals the total count, and
    // the bucket holding value 5 already counts both 5s.
    EXPECT_NE(text.find("lat_ns_bucket{le=\"+Inf\"} 3"),
              std::string::npos);
    EXPECT_NE(text.find("lat_ns_sum 1010"), std::string::npos);
    EXPECT_NE(text.find("lat_ns_count 3"), std::string::npos);
    size_t b5 = text.find("lat_ns_bucket{le=\"6\"} 2");
    EXPECT_NE(b5, std::string::npos) << text;
    // Buckets appear before sum/count (Prometheus convention).
    EXPECT_LT(b5, text.find("lat_ns_sum"));
}

TEST(Metrics, UptimeAdvances)
{
    Registry reg;
    double t0 = reg.uptimeMs();
    EXPECT_GE(t0, 0.0);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_GT(reg.uptimeMs(), t0);
}

} // namespace
} // namespace mipp
