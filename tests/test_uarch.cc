/**
 * @file
 * Tests for processor configurations, the design space and DVFS points.
 */

#include <gtest/gtest.h>

#include <set>

#include "uarch/core_config.hh"
#include "uarch/cpi_stack.hh"
#include "uarch/design_space.hh"

namespace mipp {
namespace {

TEST(CacheConfig, DerivedGeometry)
{
    CacheConfig c{32 * 1024, 8, 4};
    EXPECT_EQ(c.numLines(), 512u);
    EXPECT_EQ(c.numSets(), 64u);
}

TEST(CoreConfig, NehalemReferenceSanity)
{
    auto c = CoreConfig::nehalemReference();
    EXPECT_EQ(c.dispatchWidth, 4u);
    EXPECT_EQ(c.robSize, 128u);
    EXPECT_EQ(c.numPorts(), 6u);
    EXPECT_EQ(c.l1d.sizeBytes, 32u * 1024);
    EXPECT_EQ(c.l2.sizeBytes, 256u * 1024);
    EXPECT_EQ(c.l3.sizeBytes, 8u * 1024 * 1024);
    EXPECT_GT(c.memLatency, c.l3.latency);
    EXPECT_GT(c.l3.latency, c.l2.latency);
    EXPECT_GT(c.l2.latency, c.l1d.latency);
}

TEST(CoreConfig, EveryUopTypeHasAnIssuePortAtEveryWidth)
{
    for (uint32_t w : {2u, 4u, 6u}) {
        CoreConfig c = CoreConfig::nehalemReference();
        c.setWidth(w);
        for (int t = 0; t < kNumUopTypes; ++t) {
            bool found = false;
            for (const auto &port : c.ports)
                found |= port.canIssue(static_cast<UopType>(t));
            EXPECT_TRUE(found) << "width " << w << " type " << t;
        }
    }
}

TEST(CoreConfig, EveryUopTypeHasFunctionalUnits)
{
    for (uint32_t w : {2u, 4u, 6u}) {
        CoreConfig c = CoreConfig::nehalemReference();
        c.setWidth(w);
        for (int t = 0; t < kNumUopTypes; ++t)
            EXPECT_GE(c.fus[t].count, 1u) << "width " << w;
    }
}

TEST(CoreConfig, DividersAreNotPipelined)
{
    auto c = CoreConfig::nehalemReference();
    EXPECT_FALSE(c.fus[static_cast<int>(UopType::IntDiv)].pipelined);
    EXPECT_FALSE(c.fus[static_cast<int>(UopType::FpDiv)].pipelined);
    EXPECT_TRUE(c.fus[static_cast<int>(UopType::IntAlu)].pipelined);
}

TEST(CoreConfig, WidthScalesPortCount)
{
    CoreConfig c = CoreConfig::nehalemReference();
    c.setWidth(2);
    uint32_t p2 = c.numPorts();
    c.setWidth(6);
    uint32_t p6 = c.numPorts();
    EXPECT_LT(p2, p6);
}

TEST(LatencyTable, NehalemDefaultsOrdering)
{
    auto t = LatencyTable::nehalem();
    EXPECT_EQ(t.of(UopType::IntAlu), 1u);
    EXPECT_GT(t.of(UopType::IntDiv), t.of(UopType::IntMul));
    EXPECT_GT(t.of(UopType::FpDiv), t.of(UopType::FpMul));
    EXPECT_GT(t.of(UopType::FpMul), t.of(UopType::FpAlu));
}

TEST(BranchPredictorKind, AllNamed)
{
    for (int k = 0; k < static_cast<int>(BranchPredictorKind::NumKinds);
         ++k) {
        auto name =
            branchPredictorName(static_cast<BranchPredictorKind>(k));
        EXPECT_FALSE(name.empty());
        EXPECT_NE(name, "?");
    }
}

TEST(DesignSpace, Has243Points)
{
    DesignSpace space;
    EXPECT_EQ(space.size(), 243u);
}

TEST(DesignSpace, AllNamesUnique)
{
    DesignSpace space;
    std::set<std::string> names;
    for (const auto &c : space.configs())
        names.insert(c.name);
    EXPECT_EQ(names.size(), space.size());
}

TEST(DesignSpace, CoversAxisExtremes)
{
    DesignSpace space;
    bool smallCore = false, bigCore = false;
    for (const auto &c : space.configs()) {
        smallCore |= c.dispatchWidth == 2 && c.robSize == 64 &&
                     c.l3.sizeBytes == 2u * 1024 * 1024;
        bigCore |= c.dispatchWidth == 6 && c.robSize == 256 &&
                   c.l3.sizeBytes == 32u * 1024 * 1024;
    }
    EXPECT_TRUE(smallCore);
    EXPECT_TRUE(bigCore);
}

TEST(DesignSpace, SmallSubspaceIsSubsetSized)
{
    auto s = DesignSpace::small();
    EXPECT_EQ(s.size(), 27u);
}

TEST(DesignSpace, ScaleBackEndTracksRob)
{
    CoreConfig c = CoreConfig::nehalemReference();
    scaleBackEnd(c, 256);
    EXPECT_EQ(c.robSize, 256u);
    EXPECT_EQ(c.iqSize, 256u);
    EXPECT_GT(c.mshrs, 10u);
    scaleBackEnd(c, 64);
    EXPECT_LT(c.lsqSize, 48u);
    EXPECT_LT(c.mshrs, 10u);
}

TEST(Dvfs, LadderIsMonotone)
{
    auto ladder = dvfsLadder();
    ASSERT_GE(ladder.size(), 3u);
    for (size_t i = 1; i < ladder.size(); ++i) {
        EXPECT_GT(ladder[i].freqGHz, ladder[i - 1].freqGHz);
        EXPECT_GT(ladder[i].vdd, ladder[i - 1].vdd);
    }
}

TEST(CpiStack, TotalAndScale)
{
    CpiStack s{1, 2, 3, 4, 5, 6};
    EXPECT_DOUBLE_EQ(s.total(), 21.0);
    CpiStack h = s.scaled(0.5);
    EXPECT_DOUBLE_EQ(h.total(), 10.5);
    EXPECT_DOUBLE_EQ(h.dram, 3.0);
}

} // namespace
} // namespace mipp
