/**
 * @file
 * Tests for the open-addressing FlatMap used on the profiler hot paths:
 * insert/find/update, growth across rehashes, extreme u64 keys (0 and
 * ~0), collision chains, clear-with-capacity and iteration.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "trace/rng.hh"
#include "util/flat_map.hh"

namespace mipp {
namespace {

TEST(FlatMap, StartsEmpty)
{
    FlatMap<uint64_t> m;
    EXPECT_EQ(m.size(), 0u);
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.find(0), nullptr);
    EXPECT_EQ(m.find(~0ULL), nullptr);
    EXPECT_FALSE(m.contains(42));
}

TEST(FlatMap, InsertAndFind)
{
    FlatMap<uint64_t> m;
    m[7] = 70;
    m[8] = 80;
    EXPECT_EQ(m.size(), 2u);
    ASSERT_NE(m.find(7), nullptr);
    EXPECT_EQ(*m.find(7), 70u);
    ASSERT_NE(m.find(8), nullptr);
    EXPECT_EQ(*m.find(8), 80u);
    EXPECT_EQ(m.find(9), nullptr);
}

TEST(FlatMap, ExtremeKeysZeroAndAllOnes)
{
    // 0 and ~0 are valid keys: occupancy is tracked out of band, not
    // with sentinel key values.
    FlatMap<uint32_t> m;
    m[0] = 1;
    m[~0ULL] = 2;
    ASSERT_NE(m.find(0), nullptr);
    EXPECT_EQ(*m.find(0), 1u);
    ASSERT_NE(m.find(~0ULL), nullptr);
    EXPECT_EQ(*m.find(~0ULL), 2u);
    EXPECT_EQ(m.size(), 2u);
}

TEST(FlatMap, OperatorBracketDefaultConstructs)
{
    FlatMap<uint64_t> m;
    EXPECT_EQ(m[123], 0u);
    m[123]++;
    m[123]++;
    EXPECT_EQ(m[123], 2u);
    EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, TryEmplaceSemantics)
{
    FlatMap<uint64_t> m;
    auto [v1, inserted1] = m.tryEmplace(5, 50);
    EXPECT_TRUE(inserted1);
    EXPECT_EQ(v1, 50u);
    auto [v2, inserted2] = m.tryEmplace(5, 99);
    EXPECT_FALSE(inserted2);
    EXPECT_EQ(v2, 50u); // existing value untouched
    v2 = 51;
    EXPECT_EQ(*m.find(5), 51u); // reference aliases the stored value
}

TEST(FlatMap, GrowthKeepsAllEntries)
{
    FlatMap<uint64_t> m;
    constexpr uint64_t kN = 10000;
    for (uint64_t k = 0; k < kN; ++k)
        m[k * 0x10001ULL + 3] = k;
    EXPECT_EQ(m.size(), kN);
    for (uint64_t k = 0; k < kN; ++k) {
        auto *v = m.find(k * 0x10001ULL + 3);
        ASSERT_NE(v, nullptr) << "key " << k;
        EXPECT_EQ(*v, k);
    }
    EXPECT_EQ(m.find(12345678901ULL), nullptr);
}

TEST(FlatMap, RandomKeysMatchReferenceMap)
{
    // Collision-chain stress: random keys against std::map ground truth.
    FlatMap<uint64_t> m;
    std::map<uint64_t, uint64_t> ref;
    Rng rng(12345);
    for (int i = 0; i < 20000; ++i) {
        uint64_t k = rng.next() & 0xffff; // dense -> many collisions
        m[k]++;
        ref[k]++;
    }
    EXPECT_EQ(m.size(), ref.size());
    for (const auto &[k, n] : ref) {
        auto *v = m.find(k);
        ASSERT_NE(v, nullptr);
        EXPECT_EQ(*v, n);
    }
}

TEST(FlatMap, ClearKeepsCapacityDropsEntries)
{
    FlatMap<uint64_t> m;
    for (uint64_t k = 0; k < 1000; ++k)
        m[k] = k;
    size_t cap = m.capacity();
    m.clear();
    EXPECT_EQ(m.size(), 0u);
    EXPECT_EQ(m.capacity(), cap);
    EXPECT_EQ(m.find(5), nullptr);
    m[5] = 55;
    EXPECT_EQ(*m.find(5), 55u);
}

TEST(FlatMap, ReservePreventsRehash)
{
    FlatMap<uint64_t> m;
    m.reserve(1000);
    size_t cap = m.capacity();
    for (uint64_t k = 0; k < 1000; ++k)
        m[k] = k;
    EXPECT_EQ(m.capacity(), cap) << "reserve(1000) should cover 1000 inserts";
}

TEST(FlatMap, ForEachVisitsEveryEntryOnce)
{
    FlatMap<uint64_t> m;
    for (uint64_t k = 0; k < 500; ++k)
        m[k * 7 + 1] = k;
    std::map<uint64_t, uint64_t> seen;
    m.forEach([&](uint64_t k, const uint64_t &v) { seen[k] = v; });
    EXPECT_EQ(seen.size(), 500u);
    for (uint64_t k = 0; k < 500; ++k) {
        ASSERT_TRUE(seen.count(k * 7 + 1));
        EXPECT_EQ(seen[k * 7 + 1], k);
    }
}

} // namespace
} // namespace mipp
