/**
 * @file
 * Tests for the synthetic workload generators: determinism, fidelity to
 * the declarative spec, and suite-wide behavioural properties.
 */

#include <gtest/gtest.h>

#include <map>

#include "workloads/workload.hh"

namespace mipp {
namespace {

TEST(Workload, DeterministicForSameSpec)
{
    WorkloadSpec spec;
    spec.seed = 99;
    Trace a = generateWorkload(spec, 20000);
    Trace b = generateWorkload(spec, 20000);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].pc, b[i].pc);
        ASSERT_EQ(a[i].addr, b[i].addr);
        ASSERT_EQ(a[i].type, b[i].type);
        ASSERT_EQ(a[i].taken, b[i].taken);
    }
}

TEST(Workload, DifferentSeedsProduceDifferentStreams)
{
    WorkloadSpec spec;
    spec.seed = 1;
    Trace a = generateWorkload(spec, 10000);
    spec.seed = 2;
    Trace b = generateWorkload(spec, 10000);
    size_t diff = 0;
    for (size_t i = 0; i < std::min(a.size(), b.size()); ++i)
        diff += a[i].addr != b[i].addr || a[i].type != b[i].type;
    EXPECT_GT(diff, 100u);
}

TEST(Workload, RequestedLengthHonored)
{
    WorkloadSpec spec;
    Trace t = generateWorkload(spec, 12345);
    EXPECT_GE(t.size(), 12345u);
    EXPECT_LE(t.size(), 12345u + 4u);
}

TEST(Workload, MixRoughlyMatchesSpec)
{
    WorkloadSpec spec;
    spec.fLoad = 0.40;
    spec.fStore = 0.10;
    spec.fIntAlu = 0.30;
    spec.fIntMul = 0; spec.fIntDiv = 0;
    spec.fFpAlu = 0; spec.fFpMul = 0; spec.fFpDiv = 0;
    spec.fBranch = 0.10;
    spec.fMove = 0.10;
    spec.loadOpFusion = 0;
    spec.loopBodyInsts = 400;
    Trace t = generateWorkload(spec, 200000);
    EXPECT_NEAR(t.typeFraction(UopType::Load), 0.40, 0.05);
    EXPECT_NEAR(t.typeFraction(UopType::Store), 0.10, 0.04);
    EXPECT_NEAR(t.typeFraction(UopType::Branch), 0.10, 0.04);
    EXPECT_DOUBLE_EQ(t.typeFraction(UopType::FpAlu), 0.0);
}

TEST(Workload, LoadOpFusionRaisesUopsPerInstruction)
{
    WorkloadSpec lean;
    lean.loadOpFusion = 0.0;
    lean.seed = 5;
    WorkloadSpec fat = lean;
    fat.loadOpFusion = 0.5;
    double lo = generateWorkload(lean, 100000).uopsPerInstruction();
    double hi = generateWorkload(fat, 100000).uopsPerInstruction();
    EXPECT_NEAR(lo, 1.0, 0.01);
    EXPECT_GT(hi, lo + 0.08);
    EXPECT_LT(hi, 1.45); // thesis Fig 3.1 range
}

TEST(Workload, StaticPcsRecurAcrossIterations)
{
    WorkloadSpec spec;
    spec.loopBodyInsts = 50;
    Trace t = generateWorkload(spec, 20000);
    std::map<uint64_t, int> pcCounts;
    for (const auto &op : t)
        pcCounts[op.pc]++;
    // A 50-instruction body over 20k uops: every static pc recurs often.
    for (const auto &[pc, n] : pcCounts)
        EXPECT_GT(n, 50) << "pc " << std::hex << pc;
}

TEST(Workload, LoopBackBranchMostlyTaken)
{
    WorkloadSpec spec;
    spec.fBranch = 0; // only the loop-back branch remains
    spec.innerIters = 64;
    Trace t = generateWorkload(spec, 100000);
    uint64_t taken = 0, total = 0;
    for (const auto &op : t) {
        if (op.type != UopType::Branch)
            continue;
        total++;
        taken += op.taken;
    }
    ASSERT_GT(total, 100u);
    EXPECT_NEAR(static_cast<double>(taken) / total, 63.0 / 64, 0.01);
}

TEST(Workload, UniqueFootprintNeverReusesLines)
{
    WorkloadSpec spec;
    spec.wL1 = 0; spec.wL2 = 0; spec.wL3 = 0; spec.wDram = 0;
    spec.wUnique = 1.0;
    spec.wStride1 = 1.0; spec.wStride2 = 0; spec.wRandom = 0;
    spec.wPtrChase = 0;
    Trace t = generateWorkload(spec, 50000);
    std::map<uint64_t, int> lines;
    for (const auto &op : t)
        if (isMemory(op.type))
            lines[op.lineAddr()]++;
    for (const auto &[line, n] : lines)
        EXPECT_EQ(n, 1);
}

TEST(Workload, PtrChaseLoadsAreSelfDependent)
{
    WorkloadSpec spec;
    spec.wPtrChase = 1.0;
    spec.wStride1 = 0; spec.wStride2 = 0; spec.wRandom = 0;
    spec.loadOpFusion = 0; // fused reads are never pointer chases
    Trace t = generateWorkload(spec, 20000);
    size_t selfDep = 0, loads = 0;
    for (const auto &op : t) {
        if (op.type != UopType::Load)
            continue;
        loads++;
        selfDep += op.dst != kNoReg && op.src1 == op.dst;
    }
    ASSERT_GT(loads, 100u);
    EXPECT_GT(static_cast<double>(selfDep) / loads, 0.9);
}

TEST(Workload, PhasedConcatenatesSegments)
{
    PhasedSpec p;
    p.name = "t";
    WorkloadSpec a;
    a.fLoad = 0.5; a.fIntAlu = 0.5;
    a.fStore = a.fIntMul = a.fIntDiv = a.fFpAlu = a.fFpMul = 0;
    a.fFpDiv = a.fBranch = a.fMove = 0;
    a.loadOpFusion = 0;
    WorkloadSpec b = a;
    b.fLoad = 0.0; b.fIntAlu = 1.0;
    p.segments = {{a, 10000}, {b, 10000}};
    Trace t = generatePhased(p);
    EXPECT_GE(t.size(), 20000u);
    // First half has loads, second half has none.
    size_t loadsFirst = 0, loadsSecond = 0;
    for (size_t i = 0; i < t.size(); ++i) {
        if (t[i].type == UopType::Load)
            (i < t.size() / 2 ? loadsFirst : loadsSecond)++;
    }
    EXPECT_GT(loadsFirst, 1000u);
    EXPECT_LT(loadsSecond, loadsFirst / 10);
}

TEST(WorkloadSuite, HasTwentyUniqueNames)
{
    auto suite = workloadSuite();
    EXPECT_EQ(suite.size(), 20u);
    std::map<std::string, int> names;
    for (const auto &s : suite)
        names[s.name]++;
    for (const auto &[n, c] : names)
        EXPECT_EQ(c, 1) << n;
}

TEST(WorkloadSuite, LookupByNameWorks)
{
    EXPECT_EQ(suiteWorkload("stream_add").name, "stream_add");
    EXPECT_THROW(suiteWorkload("nope"), std::out_of_range);
}

TEST(WorkloadSuite, MemoryBoundSubsetNonEmptyAndMemoryHeavy)
{
    auto mem = memoryBoundSuite();
    EXPECT_GE(mem.size(), 5u);
    for (const auto &s : mem)
        EXPECT_TRUE(s.wDram + s.wUnique >= 0.25 || s.wL3 >= 0.4) << s.name;
}

TEST(WorkloadSuite, PhasedSuiteGenerates)
{
    for (const auto &p : phasedSuite()) {
        Trace t = generatePhased(p);
        EXPECT_GT(t.size(), 100000u) << p.name;
    }
}

TEST(WorkloadValidation, AllZeroPatternMixRejected)
{
    // Pre-validate() behaviour: pickWeighted returned the *last* index
    // for an all-zero mix, silently turning every memory op into a
    // pointer chase.
    WorkloadSpec spec;
    spec.wStride1 = 0; spec.wStride2 = 0; spec.wRandom = 0;
    spec.wPtrChase = 0;
    EXPECT_THROW(generateWorkload(spec, 1000), std::invalid_argument);
}

TEST(WorkloadValidation, AllZeroFootprintMixRejected)
{
    // ... and an all-zero footprint mix into Unique (pure cold misses).
    WorkloadSpec spec;
    spec.wL1 = 0; spec.wL2 = 0; spec.wL3 = 0; spec.wDram = 0;
    spec.wUnique = 0;
    EXPECT_THROW(generateWorkload(spec, 1000), std::invalid_argument);
}

TEST(WorkloadValidation, NegativeWeightsAndEmptyMixRejected)
{
    WorkloadSpec neg;
    neg.wL1 = -0.5;
    EXPECT_THROW(neg.validate(), std::invalid_argument);

    WorkloadSpec empty;
    empty.fLoad = empty.fStore = empty.fIntAlu = empty.fIntMul = 0;
    empty.fIntDiv = empty.fFpAlu = empty.fFpMul = empty.fFpDiv = 0;
    empty.fBranch = empty.fMove = 0;
    EXPECT_THROW(empty.validate(), std::invalid_argument);

    WorkloadSpec zeroBody;
    zeroBody.loopBodyInsts = 0;
    EXPECT_THROW(zeroBody.validate(), std::invalid_argument);
}

TEST(WorkloadValidation, ComputeOnlySpecIgnoresMemoryMixes)
{
    // No loads, stores or fused reads: the memory mixes are dead and an
    // all-zero value must not be rejected.
    WorkloadSpec spec;
    spec.fLoad = 0; spec.fStore = 0; spec.loadOpFusion = 0;
    spec.fIntAlu = 1.0;
    spec.wStride1 = 0; spec.wStride2 = 0; spec.wRandom = 0;
    spec.wPtrChase = 0;
    EXPECT_NO_THROW(spec.validate());
    Trace t = generateWorkload(spec, 5000);
    EXPECT_GE(t.size(), 5000u);
}

TEST(WorkloadValidation, EntireSuiteValidates)
{
    for (const auto &s : workloadSuite())
        EXPECT_NO_THROW(s.validate()) << s.name;
    for (const auto &p : phasedSuite())
        for (const auto &[seg, uops] : p.segments)
            EXPECT_NO_THROW(seg.validate()) << p.name;
}

/** Every suite workload generates a valid trace with sane properties. */
class SuiteProperty : public ::testing::TestWithParam<WorkloadSpec>
{
};

TEST_P(SuiteProperty, GeneratesWellFormedTrace)
{
    const WorkloadSpec &spec = GetParam();
    Trace t = generateWorkload(spec, 50000);
    ASSERT_GE(t.size(), 50000u);

    double upi = t.uopsPerInstruction();
    EXPECT_GE(upi, 1.0) << spec.name;
    EXPECT_LE(upi, 1.45) << spec.name; // thesis Fig 3.1 range

    size_t branches = 0;
    for (const auto &op : t) {
        if (op.type == UopType::Branch)
            branches++;
        if (isMemory(op.type))
            EXPECT_NE(op.addr, 0u) << spec.name;
        if (op.src1 != kNoReg)
            EXPECT_LT(op.src1, kNumRegs) << spec.name;
        if (op.dst != kNoReg)
            EXPECT_LT(op.dst, kNumRegs) << spec.name;
    }
    EXPECT_GT(branches, 100u) << spec.name; // at least the loop-back
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, SuiteProperty, ::testing::ValuesIn(workloadSuite()),
    [](const ::testing::TestParamInfo<WorkloadSpec> &info) {
        return info.param.name;
    });

} // namespace
} // namespace mipp
