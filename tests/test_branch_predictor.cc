/**
 * @file
 * Tests for the five branch predictor organizations (thesis Fig 3.10).
 */

#include <gtest/gtest.h>

#include "sim/branch_predictor.hh"
#include "trace/rng.hh"

namespace mipp {
namespace {

constexpr BranchPredictorKind kAllKinds[] = {
    BranchPredictorKind::GAg, BranchPredictorKind::GAp,
    BranchPredictorKind::PAp, BranchPredictorKind::GShare,
    BranchPredictorKind::Tournament,
};

class PredictorTest
    : public ::testing::TestWithParam<BranchPredictorKind>
{
  protected:
    std::unique_ptr<BranchPredictor>
    make()
    {
        return BranchPredictor::create(GetParam(), 4096);
    }

    /** Miss rate over a generated outcome sequence. */
    double
    missRate(BranchPredictor &bp,
             const std::vector<std::pair<uint64_t, bool>> &seq)
    {
        uint64_t miss = 0;
        for (const auto &[pc, taken] : seq)
            miss += !bp.predictAndUpdate(pc, taken);
        return static_cast<double>(miss) / seq.size();
    }
};

TEST_P(PredictorTest, LearnsAlwaysTaken)
{
    auto bp = make();
    std::vector<std::pair<uint64_t, bool>> seq(5000, {0x400100, true});
    EXPECT_LT(missRate(*bp, seq), 0.01);
}

TEST_P(PredictorTest, LearnsShortPeriodicPattern)
{
    auto bp = make();
    std::vector<std::pair<uint64_t, bool>> seq;
    for (int i = 0; i < 20000; ++i)
        seq.emplace_back(0x400200, i % 4 != 0); // TTTN repeating
    EXPECT_LT(missRate(*bp, seq), 0.05) <<
        branchPredictorName(GetParam());
}

TEST_P(PredictorTest, RandomBranchesNearHalfMissRate)
{
    auto bp = make();
    Rng rng(77);
    std::vector<std::pair<uint64_t, bool>> seq;
    for (int i = 0; i < 40000; ++i)
        seq.emplace_back(0x400300, rng.chance(0.5));
    double mr = missRate(*bp, seq);
    EXPECT_GT(mr, 0.40) << branchPredictorName(GetParam());
    EXPECT_LT(mr, 0.60) << branchPredictorName(GetParam());
}

TEST_P(PredictorTest, BiasedRandomBetterThanFair)
{
    auto mkSeq = [](double p) {
        Rng rng(5);
        std::vector<std::pair<uint64_t, bool>> seq;
        for (int i = 0; i < 40000; ++i)
            seq.emplace_back(0x400400, rng.chance(p));
        return seq;
    };
    auto bpFair = make();
    auto bpBiased = make();
    double fair = missRate(*bpFair, mkSeq(0.5));
    double biased = missRate(*bpBiased, mkSeq(0.9));
    EXPECT_LT(biased, fair - 0.2);
}

TEST_P(PredictorTest, HandlesManyStaticBranches)
{
    auto bp = make();
    std::vector<std::pair<uint64_t, bool>> seq;
    for (int i = 0; i < 30000; ++i) {
        uint64_t pc = 0x400000 + (i % 32) * 8;
        seq.emplace_back(pc, (pc >> 3) % 2 == 0); // per-pc constant
    }
    EXPECT_LT(missRate(*bp, seq), 0.10) <<
        branchPredictorName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllPredictors, PredictorTest, ::testing::ValuesIn(kAllKinds),
    [](const ::testing::TestParamInfo<BranchPredictorKind> &info) {
        return std::string(branchPredictorName(info.param));
    });

TEST(PredictorFactory, CreatesEveryKind)
{
    for (auto k : kAllKinds) {
        auto bp = BranchPredictor::create(k, 4096);
        ASSERT_NE(bp, nullptr);
        bp->predictAndUpdate(0x400000, true);
    }
}

TEST(PApPredictor, LocalHistoryBeatsGlobalOnInterleavedPeriodics)
{
    // Two branches with different periodic patterns interleaved: local
    // history predictors isolate them, a pure global-history predictor
    // sees a combined stream.
    auto pap = BranchPredictor::create(BranchPredictorKind::PAp, 4096);
    uint64_t miss = 0;
    int n = 40000;
    for (int i = 0; i < n; ++i) {
        uint64_t pc = i % 2 ? 0x400100 : 0x400200;
        bool taken = i % 2 ? (i / 2) % 3 != 0 : (i / 2) % 2 != 0;
        miss += !pap->predictAndUpdate(pc, taken);
    }
    EXPECT_LT(static_cast<double>(miss) / n, 0.10);
}

} // namespace
} // namespace mipp
