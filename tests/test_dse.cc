/**
 * @file
 * Tests for Pareto machinery, the empirical baseline and the sweep
 * driver.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "dse/empirical.hh"
#include "dse/explorer.hh"
#include "dse/pareto.hh"
#include "profiler/profiler.hh"
#include "trace/rng.hh"
#include "workloads/workload.hh"

namespace mipp {
namespace {

TEST(Pareto, DominatesSemantics)
{
    EXPECT_TRUE(dominates({1, 1}, {2, 2}));
    EXPECT_TRUE(dominates({1, 2}, {1, 3}));
    EXPECT_FALSE(dominates({1, 1}, {1, 1}));
    EXPECT_FALSE(dominates({1, 3}, {2, 2}));
}

TEST(Pareto, FrontOfStaircase)
{
    std::vector<Objective> pts = {
        {1, 5}, {2, 4}, {3, 3}, {2.5, 4.5}, {4, 4}, {5, 1}};
    auto front = paretoFront(pts);
    std::vector<size_t> expected = {0, 1, 2, 5};
    EXPECT_EQ(front, expected);
}

TEST(Pareto, SinglePointIsItsOwnFront)
{
    std::vector<Objective> pts = {{3, 3}};
    EXPECT_EQ(paretoFront(pts).size(), 1u);
}

TEST(Pareto, HypervolumeOfOnePointIsRectangle)
{
    std::vector<Objective> pts = {{1, 1}};
    std::vector<size_t> front = {0};
    EXPECT_DOUBLE_EQ(hypervolume(pts, front, {3, 4}), 2.0 * 3.0);
}

TEST(Pareto, HypervolumeAdditiveForStaircase)
{
    std::vector<Objective> pts = {{1, 3}, {2, 1}};
    std::vector<size_t> front = {0, 1};
    // Ref (4,4): rect1 = (4-1)*(4-3)=3, rect2 = (4-2)*(3-1)=4.
    EXPECT_DOUBLE_EQ(hypervolume(pts, front, {4, 4}), 7.0);
}

TEST(Pareto, PerfectPredictionScoresOnes)
{
    std::vector<Objective> obj = {
        {1, 5}, {2, 3}, {4, 1}, {3, 4}, {5, 5}};
    auto m = compareFronts(obj, obj);
    EXPECT_DOUBLE_EQ(m.sensitivity, 1.0);
    EXPECT_DOUBLE_EQ(m.specificity, 1.0);
    EXPECT_DOUBLE_EQ(m.accuracy, 1.0);
    EXPECT_NEAR(m.hvr, 1.0, 1e-9);
}

TEST(Pareto, InvertedPredictionScoresLow)
{
    std::vector<Objective> trueObj = {{1, 5}, {2, 3}, {4, 1}, {5, 5}};
    // Prediction declares only the truly-dominated point optimal.
    std::vector<Objective> predObj = {{5, 5}, {6, 6}, {7, 7}, {1, 1}};
    auto m = compareFronts(trueObj, predObj);
    EXPECT_LT(m.sensitivity, 0.5);
    EXPECT_LT(m.hvr, 0.9);
}

TEST(Pareto, BiasedButConsistentPredictionStillPerfect)
{
    // The model's key property (thesis): a constant relative bias does
    // not disturb Pareto identification.
    std::vector<Objective> trueObj = {
        {1, 5}, {2, 3}, {4, 1}, {3, 4}, {5, 5}};
    std::vector<Objective> predObj;
    for (auto [d, p] : trueObj)
        predObj.push_back({d * 1.3, p * 0.9});
    auto m = compareFronts(trueObj, predObj);
    EXPECT_DOUBLE_EQ(m.accuracy, 1.0);
    EXPECT_NEAR(m.hvr, 1.0, 1e-9);
}

TEST(Pareto, AccumulatorMatchesPostHocFrontOnRandomSets)
{
    // The streaming sweep's contract: inserting a stream of points one
    // at a time must leave exactly paretoFront() of the whole set.
    // Coarse-grid coordinates force plenty of single-axis ties.
    uint64_t s = 0x9e3779b97f4a7c15ull;
    auto rnd = [&s] {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        return static_cast<double>((s >> 33) & 63) / 8.0;
    };
    for (int trial = 0; trial < 8; ++trial) {
        std::vector<Objective> pts;
        for (int i = 0; i < 300; ++i)
            pts.push_back({rnd(), rnd()});
        // Exact duplicates (all survive together or not at all) and a
        // one-axis tie that is strictly worse on the other axis.
        pts.push_back(pts[0]);
        pts.push_back(pts[7]);
        pts.push_back({pts[3].first, pts[3].second + 0.125});

        ParetoAccumulator acc;
        for (size_t i = 0; i < pts.size(); ++i)
            acc.insert(pts[i], i);
        EXPECT_EQ(acc.indices(), paretoFront(pts));

        // Survivors carry their original coordinates.
        for (const ParetoAccumulator::Entry &e : acc.entries())
            EXPECT_EQ(e.obj, pts[e.idx]);
    }
}

TEST(Pareto, AccumulatorDuplicateAndTieSemantics)
{
    // Exact-duplicate objectives all stay on the front; a point tied in
    // one objective and worse in the other is dominated — the same tie
    // treatment as paretoFront().
    std::vector<Objective> pts = {
        {1, 5}, {1, 5},   // duplicates: both survive
        {1, 6},           // delay tie, worse power: dominated
        {2, 5},           // power tie, worse delay: dominated
        {3, 2}, {3, 2},   // second duplicate pair
        {4, 2},           // power tie behind {3,2}: dominated
        {5, 1},
    };
    ParetoAccumulator acc;
    for (size_t i = 0; i < pts.size(); ++i)
        acc.insert(pts[i], i);
    std::vector<size_t> expect = {0, 1, 4, 5, 7};
    EXPECT_EQ(acc.indices(), expect);
    EXPECT_EQ(acc.indices(), paretoFront(pts));

    // A late arrival dominating existing survivors evicts all of them.
    acc.insert({0.5, 0.5}, 99);
    EXPECT_EQ(acc.size(), 1u);
    EXPECT_EQ(acc.entries()[0].idx, 99u);
}

TEST(Pareto, AccumulatorMergeEqualsSingleStream)
{
    // Per-shard accumulators merged afterwards must equal one
    // accumulator fed the full stream — the sweep's shard-merge step.
    uint64_t s = 0xdeadbeefcafef00dull;
    auto rnd = [&s] {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        return static_cast<double>((s >> 33) & 127) / 16.0;
    };
    std::vector<Objective> pts;
    for (int i = 0; i < 500; ++i)
        pts.push_back({rnd(), rnd()});

    ParetoAccumulator whole;
    ParetoAccumulator shards[3];
    for (size_t i = 0; i < pts.size(); ++i) {
        whole.insert(pts[i], i);
        shards[i % 3].insert(pts[i], i);
    }
    ParetoAccumulator merged;
    for (const ParetoAccumulator &sh : shards)
        merged.merge(sh);
    EXPECT_EQ(merged.indices(), whole.indices());
    EXPECT_EQ(merged.indices(), paretoFront(pts));
}

TEST(Ridge, RecoversLogLinearFunction)
{
    RidgeRegression r(1e-8);
    Rng rng(21);
    for (int i = 0; i < 200; ++i) {
        double x1 = rng.uniform() * 4;
        double x2 = rng.uniform() * 2;
        double y = std::exp(0.5 + 0.3 * x1 - 0.7 * x2);
        r.addSample({1.0, x1, x2}, y);
    }
    ASSERT_TRUE(r.train());
    double pred = r.predict({1.0, 2.0, 1.0});
    double expect = std::exp(0.5 + 0.6 - 0.7);
    EXPECT_NEAR(pred, expect, expect * 0.01);
}

TEST(Ridge, RejectsNonPositiveTargets)
{
    RidgeRegression r;
    EXPECT_THROW(r.addSample({1.0}, 0.0), std::invalid_argument);
    EXPECT_THROW(r.addSample({1.0}, -3.0), std::invalid_argument);
}

TEST(Ridge, UntrainedPredictsFallback)
{
    RidgeRegression r;
    EXPECT_DOUBLE_EQ(r.predict({1.0, 2.0}), 1.0);
}

TEST(Empirical, FeaturesDependOnConfigAndWorkload)
{
    Trace t = generateWorkload(suiteWorkload("stream_add"), 50000);
    Profile p = profileTrace(t, {});
    auto a = empiricalFeatures(CoreConfig::nehalemReference(), p);
    CoreConfig other = CoreConfig::nehalemReference();
    other.setWidth(2);
    other.robSize = 64;
    auto b = empiricalFeatures(other, p);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_NE(a[1], b[1]); // width feature
    EXPECT_NE(a[2], b[2]); // rob feature
}

TEST(Empirical, InterpolatesWithinTrainingSpace)
{
    // Train CPI = f(width) on synthetic targets and check interpolation.
    Trace t = generateWorkload(suiteWorkload("mix_mid"), 50000);
    Profile p = profileTrace(t, {});
    EmpiricalModel m;
    for (uint32_t w : {2u, 4u, 6u}) {
        CoreConfig cfg = CoreConfig::nehalemReference();
        cfg.setWidth(w);
        double cpi = 4.0 / w; // synthetic ground truth
        m.addSample(cfg, p, cpi, 10.0 + w);
    }
    ASSERT_TRUE(m.train());
    CoreConfig mid = CoreConfig::nehalemReference();
    mid.setWidth(4);
    EXPECT_NEAR(m.predictCpi(mid, p), 1.0, 0.25);
    EXPECT_NEAR(m.predictPower(mid, p), 14.0, 2.0);
}

TEST(Explorer, PairEvalProducesConsistentRecord)
{
    Trace t = generateWorkload(suiteWorkload("loopy_small"), 60000);
    Profile p = profileTrace(t, {});
    auto e = evaluatePair(t, p, CoreConfig::nehalemReference());
    EXPECT_GT(e.simCpi(), 0.0);
    EXPECT_GT(e.modelCpi(), 0.0);
    EXPECT_GT(e.simPower.total(), 0.0);
    EXPECT_GT(e.modelPower.total(), 0.0);
    EXPECT_LT(std::abs(e.cpiError()), 0.8);
    EXPECT_LT(std::abs(e.powerError()), 0.5);
}

TEST(Explorer, SweepCoversAllPairs)
{
    std::vector<Trace> traces;
    std::vector<Profile> profiles;
    for (const char *name : {"loopy_small", "int_crunch"}) {
        traces.push_back(generateWorkload(suiteWorkload(name), 40000));
        ProfilerConfig pc;
        pc.name = name;
        profiles.push_back(profileTrace(traces.back(), pc));
    }
    std::vector<CoreConfig> configs;
    for (uint32_t w : {2u, 4u}) {
        CoreConfig c = CoreConfig::nehalemReference();
        c.setWidth(w);
        configs.push_back(c);
    }
    auto points = sweep(traces, profiles, configs);
    ASSERT_EQ(points.size(), 4u);
    std::set<std::pair<size_t, size_t>> seen;
    for (const auto &pt : points) {
        seen.insert({pt.configIdx, pt.workloadIdx});
        EXPECT_GT(pt.simCpi, 0.0);
        EXPECT_GT(pt.modelCpi, 0.0);
        EXPECT_GT(pt.simWatts, 0.0);
    }
    EXPECT_EQ(seen.size(), 4u);
}

TEST(Explorer, EmptyInputsAreStructuredErrorsNotEmptyResults)
{
    Trace t = generateWorkload(suiteWorkload("loopy_small"), 20000);
    Profile p = profileTrace(t, {});
    std::vector<CoreConfig> cfgs{CoreConfig::nehalemReference()};

    SweepOptions model;
    model.mode = SweepMode::ModelOnly;

    SweepResult r = sweepEx({}, {}, cfgs, {}, model);
    EXPECT_EQ(r.status.code(), StatusCode::InvalidArgument);
    EXPECT_TRUE(r.points.empty());

    r = sweepEx({t}, {p}, {}, {}, model);
    EXPECT_EQ(r.status.code(), StatusCode::InvalidArgument);

    // Paired mode must see one trace per profile.
    r = sweepEx({}, {p}, cfgs, {}, {});
    EXPECT_EQ(r.status.code(), StatusCode::InvalidArgument);

    // The legacy wrapper surfaces the same condition as a StatusError.
    EXPECT_THROW(sweep({t}, {p}, {}), StatusError);

    r = sweepGenerated({p}, 0, [](size_t, CoreConfig &) {});
    EXPECT_EQ(r.status.code(), StatusCode::InvalidArgument);
    r = sweepGenerated({}, 4, [](size_t, CoreConfig &) {});
    EXPECT_EQ(r.status.code(), StatusCode::InvalidArgument);
}

TEST(Explorer, CancelledSweepDegradesWithPartialFront)
{
    Trace t = generateWorkload(suiteWorkload("loopy_small"), 20000);
    Profile p = profileTrace(t, {});
    std::vector<CoreConfig> cfgs;
    for (uint32_t w : {2u, 4u, 6u}) {
        CoreConfig c = CoreConfig::nehalemReference();
        c.setWidth(w);
        c.name = "w" + std::to_string(w);
        cfgs.push_back(c);
    }

    // A pre-cancelled token: the sweep must come back degraded with
    // nothing evaluated — and an empty front, never zero-CPI points.
    SweepOptions sopts;
    sopts.mode = SweepMode::ModelOnly;
    sopts.cancel = CancelToken::manual();
    sopts.cancel.cancel();
    SweepResult r = sweepEx({t}, {p}, cfgs, {}, sopts);
    ASSERT_TRUE(r.status.isOk());
    EXPECT_TRUE(r.degraded);
    for (const auto &pt : r.points)
        EXPECT_FALSE(pt.evaluated);
    ASSERT_EQ(r.modelFronts.size(), 1u);
    EXPECT_TRUE(r.modelFronts[0].empty());

    // Streaming mode likewise.
    sopts.mode = SweepMode::ModelOnlyPareto;
    r = sweepEx({t}, {p}, cfgs, {}, sopts);
    ASSERT_TRUE(r.status.isOk());
    EXPECT_TRUE(r.degraded);

    // An uncancelled token leaves the sweep complete and undegraded.
    sopts.mode = SweepMode::ModelOnly;
    sopts.cancel = CancelToken::manual();
    r = sweepEx({t}, {p}, cfgs, {}, sopts);
    EXPECT_FALSE(r.degraded);
    for (const auto &pt : r.points)
        EXPECT_TRUE(pt.evaluated);
    EXPECT_FALSE(r.modelFronts[0].empty());
}

TEST(Explorer, DeadlineMidPairedSweepKeepsFinishedPoints)
{
    Trace t = generateWorkload(suiteWorkload("loopy_small"), 30000);
    Profile p = profileTrace(t, {});
    std::vector<CoreConfig> cfgs;
    for (uint32_t w : {2u, 4u}) {
        CoreConfig c = CoreConfig::nehalemReference();
        c.setWidth(w);
        cfgs.push_back(c);
    }

    // ModelThenSimPareto with an already-expired deadline: the model
    // pass is skipped AND the sim budget no longer fits — the sweep
    // falls back to a degraded result without spending simulations.
    SweepOptions sopts;
    sopts.mode = SweepMode::ModelThenSimPareto;
    sopts.cancel = CancelToken::withDeadlineMs(0);
    SweepResult r = sweepEx({t}, {p}, cfgs, {}, sopts);
    ASSERT_TRUE(r.status.isOk());
    EXPECT_TRUE(r.degraded);
    EXPECT_EQ(r.simInvocations, 0u);
}

} // namespace
} // namespace mipp
