/**
 * @file
 * Profiler parity test: the optimized profiler (flat-hash state,
 * zero-copy micro-trace spans, derived per-type reuse histograms,
 * segmented sampling loop) must produce a Profile identical to a
 * straightforward reference implementation — the pre-optimization
 * algorithm, written here with std::map state and a copying micro-trace
 * buffer. Every statistic is compared exactly, including floating-point
 * accumulators (both implementations sum in deterministic orders that
 * are arithmetically identical).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <map>
#include <vector>

#include "profile_compare.hh"
#include "profiler/profiler.hh"
#include "workloads/workload.hh"

namespace mipp {
namespace {

// --------------------------------------------------------------------------
// Reference profiler: direct, std::map-based implementation of the same
// definitions (thesis Alg 3.1, Fig 4.1, Eq 3.13-3.15).
// --------------------------------------------------------------------------

double
refLinearEntropy(double p)
{
    return 2.0 * std::min(p, 1.0 - p);
}

struct RefTakenCounts {
    uint32_t taken = 0;
    uint32_t total = 0;
};

/** Entropy over (key -> counts), summed in sorted key order. */
double
refEntropyOf(const std::map<uint64_t, RefTakenCounts> &stats,
             uint64_t &branchesOut)
{
    double sum = 0;
    uint64_t branches = 0;
    for (const auto &[key, c] : stats) {
        double p = static_cast<double>(c.taken) / c.total;
        sum += c.total * refLinearEntropy(p);
        branches += c.total;
    }
    branchesOut = branches;
    return branches ? sum / branches : 0.0;
}

struct RefWindowStats {
    double ap = 0;
    double abp = 0;
    bool hasBranch = false;
    double cp = 0;
    std::array<uint32_t, LoadDepProfile::kMaxDepth> loadHisto{};
    uint32_t loads = 0;
    uint32_t independentLoads = 0;
};

RefWindowStats
refWalkWindow(const MicroOp *ops, size_t n,
              std::vector<std::pair<uint32_t, uint32_t>> *loadDepthPerOp)
{
    RefWindowStats out;
    int prod[kNumRegs];
    std::fill(std::begin(prod), std::end(prod), -1);

    std::vector<uint16_t> depth(n), loadDepth(n);
    double depthSum = 0, branchDepthSum = 0;
    uint32_t branches = 0;
    uint16_t maxDepth = 0;

    for (size_t j = 0; j < n; ++j) {
        const MicroOp &op = ops[j];
        uint16_t d = 0, ld = 0;
        auto consider = [&](int8_t reg) {
            if (reg == kNoReg)
                return;
            int p = prod[reg];
            if (p >= 0) {
                d = std::max(d, depth[p]);
                ld = std::max(ld, loadDepth[p]);
            }
        };
        consider(op.src1);
        consider(op.src2);
        depth[j] = d + 1;
        bool is_load = op.type == UopType::Load;
        loadDepth[j] = ld + (is_load ? 1 : 0);
        if (op.dst != kNoReg)
            prod[op.dst] = static_cast<int>(j);

        depthSum += depth[j];
        maxDepth = std::max(maxDepth, depth[j]);
        if (op.type == UopType::Branch) {
            branchDepthSum += depth[j];
            branches++;
        }
        if (is_load) {
            out.loads++;
            int bin = std::min<int>(loadDepth[j],
                                    LoadDepProfile::kMaxDepth);
            out.loadHisto[bin - 1]++;
            if (loadDepth[j] == 1)
                out.independentLoads++;
            if (loadDepthPerOp)
                loadDepthPerOp->emplace_back(static_cast<uint32_t>(j),
                                             loadDepth[j]);
        }
    }
    out.ap = n ? depthSum / n : 0;
    out.cp = maxDepth;
    out.hasBranch = branches > 0;
    out.abp = branches ? branchDepthSum / branches : 0;
    return out;
}

class RefProfiler
{
  public:
    explicit RefProfiler(const ProfilerConfig &cfg) : cfg_(cfg)
    {
        profile_.name = cfg.name;
        profile_.sampling = cfg.sampling;
        profile_.robSizes = cfg.robSizes;
        profile_.chains = DependenceChains(cfg.robSizes);
        profile_.loadDeps.resize(cfg.robSizes.size());
        profile_.cold.resize(cfg.robSizes.size());
        profile_.branch.historyBits = cfg.historyBits;
    }

    Profile
    run(const Trace &trace)
    {
        profile_.totalUops = trace.size();

        bool prevInMt = false;
        for (size_t i = 0; i < trace.size(); ++i) {
            const MicroOp &op = trace[i];
            bool in_mt = cfg_.sampling.inMicroTrace(i);
            if (prevInMt && !in_mt)
                finishMicroTrace();
            prevInMt = in_mt;

            observeIfetch(op);
            if (isMemory(op.type))
                observeMemory(op, i, in_mt);
            if (op.type == UopType::Branch)
                observeBranch(op, in_mt);

            if (in_mt)
                mtBuf_.push_back(op);
        }
        finishMicroTrace();

        {
            std::map<uint64_t, bool> seen;
            for (const auto &[key, c] : branchStats_)
                seen[key >> cfg_.historyBits] = true;
            profile_.branch.staticBranches = seen.size();
        }
        uint64_t nb = 0;
        double e = refEntropyOf(branchStats_, nb);
        profile_.branch.branches = nb;
        profile_.branch.entropySum = e * nb;

        for (size_t i = 0; i < cfg_.robSizes.size(); ++i) {
            uint64_t b = cfg_.robSizes[i];
            uint64_t curWindow = ~0ULL;
            uint64_t inWindow = 0;
            auto &cold = profile_.cold;
            cold.totalWindows[i] = trace.size() / b;
            for (uint64_t idx : coldLoadUopIdx_) {
                uint64_t w = idx / b;
                if (w != curWindow) {
                    if (curWindow != ~0ULL) {
                        cold.windowsWithCold[i]++;
                        cold.coldInWindows[i] += inWindow;
                    }
                    curWindow = w;
                    inWindow = 0;
                }
                inWindow++;
            }
            if (curWindow != ~0ULL) {
                cold.windowsWithCold[i]++;
                cold.coldInWindows[i] += inWindow;
            }
        }

        // Materialize the std::map stride counts into the profile's
        // sorted-vector representation.
        for (size_t idx = 0; idx < opStrides_.size(); ++idx)
            profile_.memOps[idx].strides.assign(opStrides_[idx].begin(),
                                                opStrides_[idx].end());

        return std::move(profile_);
    }

  private:
    uint32_t
    memOpIndex(uint64_t pc, bool isStore)
    {
        auto it = memOpIndex_.find(pc);
        if (it != memOpIndex_.end())
            return it->second;
        uint32_t idx = static_cast<uint32_t>(profile_.memOps.size());
        memOpIndex_[pc] = idx;
        StaticMemProfile p;
        p.pc = pc;
        p.isStore = isStore;
        profile_.memOps.push_back(std::move(p));
        opStrides_.emplace_back();
        opRunning_.emplace_back();
        return idx;
    }

    void
    observeMemory(const MicroOp &op, size_t uopIndex, bool inMt)
    {
        uint64_t line = op.lineAddr();
        bool is_store = op.type == UopType::Store;

        auto [it, cold] = lastAccess_.try_emplace(line, memIndex_);
        uint64_t rd = 0;
        if (!cold) {
            rd = memIndex_ - it->second - 1;
            it->second = memIndex_;
        }
        memIndex_++;

        auto addReuse = [&](LogHistogram &h) {
            if (cold)
                h.addInfinite();
            else
                h.add(rd);
        };
        addReuse(profile_.reuseAll);
        addReuse(is_store ? profile_.reuseStores : profile_.reuseLoads);

        if (cold && !is_store) {
            profile_.cold.coldLoadMisses++;
            coldLoadUopIdx_.push_back(uopIndex);
            if (inMt)
                mtColdMisses_++;
        }

        uint32_t idx = memOpIndex(op.pc, is_store);
        StaticMemProfile &sp = profile_.memOps[idx];
        OpRunning &run = opRunning_[idx];
        sp.count++;
        addReuse(sp.reuse);
        if (run.seen) {
            int64_t stride = static_cast<int64_t>(op.addr) -
                             static_cast<int64_t>(run.lastAddr);
            auto &strides = opStrides_[idx];
            if (strides.size() < 64 || strides.count(stride))
                strides[stride]++;
            sp.gapSum += uopIndex - run.lastUopIdx;
            sp.gapCount++;
            if (!is_store && op.src1 == op.dst && op.dst != kNoReg)
                sp.selfDependent++;
        }
        run.lastAddr = op.addr;
        run.lastUopIdx = uopIndex;
        run.seen = true;

        if (inMt) {
            mtMemCounts_[idx]++;
            mtFirstPos_.try_emplace(idx,
                                    static_cast<uint32_t>(mtBuf_.size()));
        }
    }

    void
    observeBranch(const MicroOp &op, bool inMt)
    {
        uint64_t mask = (1ULL << cfg_.historyBits) - 1;
        uint64_t key = (op.pc << cfg_.historyBits) | (ghist_ & mask);
        auto &c = branchStats_[key];
        c.taken += op.taken ? 1 : 0;
        c.total++;

        if (inMt) {
            uint64_t wmask = (1ULL << cfg_.windowHistoryBits) - 1;
            uint64_t wkey =
                (op.pc << cfg_.windowHistoryBits) | (ghist_ & wmask);
            auto &wc = mtBranchStats_[wkey];
            wc.taken += op.taken ? 1 : 0;
            wc.total++;
        }
        ghist_ = (ghist_ << 1) | (op.taken ? 1 : 0);
    }

    void
    observeIfetch(const MicroOp &op)
    {
        uint64_t iline = op.pc / kLineSize;
        if (iline == prevILine_)
            return;
        prevILine_ = iline;
        auto [it, cold] = lastILine_.try_emplace(iline, iLineIndex_);
        if (cold) {
            profile_.reuseInsts.addInfinite();
        } else {
            profile_.reuseInsts.add(iLineIndex_ - it->second - 1);
            it->second = iLineIndex_;
        }
        iLineIndex_++;
    }

    void
    finishMicroTrace()
    {
        if (mtBuf_.empty())
            return;

        WindowProfile wp;
        wp.ap.resize(cfg_.robSizes.size());
        wp.abp.resize(cfg_.robSizes.size());
        wp.cp.resize(cfg_.robSizes.size());

        for (const auto &op : mtBuf_) {
            wp.uopCounts[static_cast<int>(op.type)]++;
            wp.insts += op.instBoundary ? 1 : 0;
            if (op.type == UopType::Branch)
                wp.branches++;
            profile_.srcOperands +=
                (op.src1 != kNoReg) + (op.src2 != kNoReg);
            profile_.dstOperands += op.dst != kNoReg;
        }
        profile_.profiledUops += mtBuf_.size();
        profile_.profiledInsts += wp.insts;
        for (int t = 0; t < kNumUopTypes; ++t)
            profile_.uopCounts[t] += wp.uopCounts[t];

        const size_t median = cfg_.robSizes.size() / 2;
        for (size_t i = 0; i < cfg_.robSizes.size(); ++i) {
            size_t b = cfg_.robSizes[i];
            if (b > mtBuf_.size())
                b = mtBuf_.size();
            size_t nwin = mtBuf_.size() / b;
            double apSum = 0, abpSum = 0, cpSum = 0;
            double abpWindows = 0;
            std::vector<std::pair<uint32_t, uint32_t>> perLoad;
            for (size_t w = 0; w < nwin; ++w) {
                auto stats = refWalkWindow(
                    mtBuf_.data() + w * b, b,
                    i == median ? &perLoad : nullptr);
                apSum += stats.ap;
                cpSum += stats.cp;
                if (stats.hasBranch) {
                    abpSum += stats.abp;
                    abpWindows += 1;
                }
                auto &ld = profile_.loadDeps;
                for (int l = 0; l < LoadDepProfile::kMaxDepth; ++l)
                    ld.histo[i][l] += stats.loadHisto[l];
                ld.loads[i] += stats.loads;
                ld.windows[i] += 1;
                ld.independentLoads[i] += stats.independentLoads;

                if (i == median) {
                    for (auto &[posInWin, depthv] : perLoad) {
                        size_t pos = w * b + posInWin;
                        const MicroOp &op = mtBuf_[pos];
                        auto it = memOpIndex_.find(op.pc);
                        if (it != memOpIndex_.end()) {
                            auto &sp = profile_.memOps[it->second];
                            sp.loadDepthSum += depthv;
                            sp.loadDepthCount++;
                        }
                    }
                    perLoad.clear();
                }
                profile_.chains.addSample(i, stats.ap, stats.abp,
                                          stats.hasBranch, stats.cp);
            }
            if (nwin > 0) {
                wp.ap[i] = static_cast<float>(apSum / nwin);
                wp.cp[i] = static_cast<float>(cpSum / nwin);
                wp.abp[i] = abpWindows ?
                    static_cast<float>(abpSum / abpWindows) : 0.0f;
            }
        }

        uint64_t nb = 0;
        wp.branchEntropy = static_cast<float>(refEntropyOf(mtBranchStats_,
                                                           nb));

        wp.memCounts.assign(mtMemCounts_.begin(), mtMemCounts_.end());
        std::sort(wp.memCounts.begin(), wp.memCounts.end());
        for (const auto &[idx, firstPos] : mtFirstPos_) {
            profile_.memOps[idx].firstPosSum += firstPos;
            profile_.memOps[idx].microTraces++;
        }
        wp.coldMisses = mtColdMisses_;

        profile_.windows.push_back(std::move(wp));
        mtBuf_.clear();
        mtBranchStats_.clear();
        mtMemCounts_.clear();
        mtFirstPos_.clear();
        mtColdMisses_ = 0;
    }

    const ProfilerConfig &cfg_;
    Profile profile_;

    std::map<uint64_t, uint64_t> lastAccess_;
    uint64_t memIndex_ = 0;
    std::map<uint64_t, uint64_t> lastILine_;
    uint64_t iLineIndex_ = 0;
    uint64_t prevILine_ = ~0ULL;
    std::map<uint64_t, RefTakenCounts> branchStats_;
    uint64_t ghist_ = 0;
    std::map<uint64_t, uint32_t> memOpIndex_;
    struct OpRunning {
        uint64_t lastAddr = 0;
        uint64_t lastUopIdx = 0;
        bool seen = false;
    };
    std::vector<OpRunning> opRunning_;
    std::vector<std::map<int64_t, uint64_t>> opStrides_;
    std::vector<uint64_t> coldLoadUopIdx_;

    std::vector<MicroOp> mtBuf_;
    std::map<uint64_t, RefTakenCounts> mtBranchStats_;
    std::map<uint32_t, uint32_t> mtMemCounts_;
    std::map<uint32_t, uint32_t> mtFirstPos_;
    uint32_t mtColdMisses_ = 0;
};

Profile
referenceProfile(const Trace &trace, const ProfilerConfig &cfg)
{
    RefProfiler p(cfg);
    return p.run(trace);
}

// Exact comparison helpers live in profile_compare.hh (shared with the
// parallel parity suite).

// --------------------------------------------------------------------------
// Tests
// --------------------------------------------------------------------------

TEST(ProfilerParity, Identical50kUopWorkload)
{
    Trace t = generateWorkload(suiteWorkload("balanced_mix"), 50000);
    ProfilerConfig cfg;
    cfg.name = "parity";

    Profile opt = profileTrace(t, cfg);
    Profile ref = referenceProfile(t, cfg);

    expectProfilesIdentical(opt, ref);
}

TEST(ProfilerParity, IdenticalAcrossSeveralWorkloads)
{
    for (const char *name : {"ptr_chase", "stream_add", "branchy"}) {
        Trace t = generateWorkload(suiteWorkload(name), 20000);
        ProfilerConfig cfg;
        cfg.name = name;
        Profile opt = profileTrace(t, cfg);
        Profile ref = referenceProfile(t, cfg);
        SCOPED_TRACE(name);
        expectProfilesIdentical(opt, ref);
    }
}

TEST(ProfilerParity, IdenticalWithoutSampling)
{
    Trace t = generateWorkload(suiteWorkload("balanced_mix"), 20000);
    ProfilerConfig cfg;
    cfg.sampling = SamplingConfig::full();
    Profile opt = profileTrace(t, cfg);
    Profile ref = referenceProfile(t, cfg);
    expectProfilesIdentical(opt, ref);
}

TEST(ProfilerParity, IdenticalWithLongBranchHistory)
{
    // historyBits > 12 takes the sparse hashed-(pc, history) branch path
    // instead of dense per-pc tables; results must not change.
    Trace t = generateWorkload(suiteWorkload("branchy"), 20000);
    ProfilerConfig cfg;
    cfg.historyBits = 14;
    Profile opt = profileTrace(t, cfg);
    Profile ref = referenceProfile(t, cfg);
    expectProfilesIdentical(opt, ref);
}

TEST(ProfilerParity, BatchRejectsMismatchedConfigCount)
{
    std::vector<Trace> traces;
    traces.push_back(generateWorkload(suiteWorkload("balanced_mix"), 5000));
    traces.push_back(generateWorkload(suiteWorkload("stream_add"), 5000));
    traces.push_back(generateWorkload(suiteWorkload("branchy"), 5000));
    std::vector<ProfilerConfig> cfgs(2); // neither 0, 1 nor 3
    EXPECT_THROW(profileTraces(traces, cfgs), std::invalid_argument);
}

TEST(ProfilerParity, BatchMatchesSequential)
{
    std::vector<Trace> traces;
    traces.push_back(generateWorkload(suiteWorkload("balanced_mix"), 20000));
    traces.push_back(generateWorkload(suiteWorkload("stream_add"), 20000));

    auto batch = profileTraces(traces);
    ASSERT_EQ(batch.size(), traces.size());
    for (size_t i = 0; i < traces.size(); ++i) {
        Profile solo = profileTrace(traces[i], {});
        SCOPED_TRACE(i);
        expectProfilesIdentical(batch[i], solo);
    }
}

} // namespace
} // namespace mipp
