/**
 * @file
 * Recovery-path tests for the DSE daemon (src/serve): the fault-injection
 * suite the robustness guarantees are proven by. Each scenario drives the
 * real server over a real Unix-domain socket:
 *
 *  - a corrupt profile upload is rejected with Corrupt while the daemon
 *    keeps serving the next request;
 *  - deadline expiry mid-sweep yields a degraded-but-valid response;
 *  - queue overflow sheds load with ResourceExhausted, no deadlock;
 *  - a client disconnect mid-request cancels the queued/in-flight work;
 *  - oversized request lines are shed and the connection dropped;
 *  - the profile LRU evicts and the stats op reports it all.
 *
 * Responses are checked with the same strict JSON parser the server uses
 * for requests, which doubles as an end-to-end parser exercise.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hh"
#include "profiler/profile_io.hh"
#include "profiler/profiler.hh"
#include "serve/server.hh"
#include "util/failpoint.hh"
#include "util/json.hh"
#include "workloads/workload.hh"

namespace mipp {
namespace {

using serve::Client;
using serve::Server;
using serve::ServerOptions;
using serve::ServerStats;

std::string
uniqueSocketPath(const char *tag)
{
    static std::atomic<int> seq{0};
    std::ostringstream os;
    os << "/tmp/mipp_serve_" << tag << "_" << ::getpid() << "_"
       << seq.fetch_add(1) << ".sock";
    return os.str();
}

/** Serialize a small suite profile to the wire text format. */
std::string
profileText(const char *workload = "mix_mid", size_t uops = 20000)
{
    Trace t = generateWorkload(suiteWorkload(workload), uops);
    Profile p = profileTrace(t, {.name = workload});
    std::ostringstream os;
    writeProfile(p, os);
    return os.str();
}

json::Value
parsed(const std::string &line)
{
    json::Value v;
    Status st = json::parse(line, v);
    EXPECT_TRUE(st.isOk()) << st.toString() << " in: " << line;
    return v;
}

class ServeTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        failpoint::reset();
        opts_.socketPath = uniqueSocketPath("t");
        opts_.workers = 2;
        opts_.maxQueue = 8;
        opts_.maxProfiles = 8;
        opts_.allowFailpoints = true;
    }

    void
    TearDown() override
    {
        if (server_)
            server_->stop();
        failpoint::reset();
    }

    void
    startServer()
    {
        server_ = std::make_unique<Server>(opts_);
        Status st = server_->start();
        ASSERT_TRUE(st.isOk()) << st.toString();
    }

    Client
    client()
    {
        Client c;
        // stop()/start() races in tests are impossible here (the server
        // is up before any client call), so a failure is a real bug.
        Status st = c.connect(opts_.socketPath);
        EXPECT_TRUE(st.isOk()) << st.toString();
        return c;
    }

    json::Value
    call(Client &c, const std::string &req)
    {
        std::string resp;
        Status st = c.call(req, resp);
        EXPECT_TRUE(st.isOk()) << st.toString();
        return parsed(resp);
    }

    ServerOptions opts_;
    std::unique_ptr<Server> server_;
};

TEST_F(ServeTest, PingEchoesIdAndRejectsUnknownOps)
{
    startServer();
    Client c = client();

    json::Value r = call(c, R"({"op":"ping","id":42})");
    EXPECT_TRUE(r["ok"].boolean());
    EXPECT_EQ(r["id"].number(), 42);

    r = call(c, R"({"op":"frobnicate","id":"x"})");
    EXPECT_FALSE(r["ok"].boolean());
    EXPECT_EQ(r["code"].str(), "InvalidArgument");
    EXPECT_EQ(r["id"].str(), "x");
}

TEST_F(ServeTest, MalformedJsonGetsStructuredErrorNotDisconnect)
{
    startServer();
    Client c = client();

    json::Value r = call(c, "{\"op\":\"ping\",,}");
    EXPECT_FALSE(r["ok"].boolean());
    EXPECT_EQ(r["code"].str(), "Corrupt");

    // The connection survives bad bytes.
    r = call(c, R"({"op":"ping"})");
    EXPECT_TRUE(r["ok"].boolean());
}

TEST_F(ServeTest, LoadEvaluateSweepHappyPath)
{
    startServer();
    Client c = client();

    json::Value r =
        call(c, std::string(R"({"op":"load-profile","name":"w0",)") +
                    "\"data\":" + json::quote(profileText()) + "}");
    ASSERT_TRUE(r["ok"].boolean()) << r["error"].str();
    EXPECT_GT(r["uops"].number(), 0);

    r = call(c, R"({"op":"evaluate","profile":"w0",)"
                R"("config":{"width":4,"rob":128}})");
    ASSERT_TRUE(r["ok"].boolean()) << r["error"].str();
    EXPECT_GT(r["cpi"].number(), 0);
    EXPECT_GT(r["watts"].number(), 0);

    r = call(c, R"({"op":"sweep","profile":"w0","space":"small"})");
    ASSERT_TRUE(r["ok"].boolean()) << r["error"].str();
    EXPECT_FALSE(r["degraded"].boolean());
    EXPECT_EQ(r["space"].number(), 27);
    ASSERT_FALSE(r["front"].array().empty());
    for (const json::Value &pt : r["front"].array()) {
        EXPECT_GT(pt["cpi"].number(), 0);
        EXPECT_GT(pt["watts"].number(), 0);
    }

    // Warm pool: a second sweep against the same profile must agree.
    json::Value again =
        call(c, R"({"op":"sweep","profile":"w0","space":"small"})");
    ASSERT_TRUE(again["ok"].boolean());
    ASSERT_EQ(again["front"].array().size(), r["front"].array().size());
    for (size_t i = 0; i < r["front"].array().size(); ++i)
        EXPECT_EQ(again["front"].array()[i]["cpi"].number(),
                  r["front"].array()[i]["cpi"].number());
}

TEST_F(ServeTest, ProfileOpGeneratesServerSideAndValidates)
{
    startServer();
    Client c = client();

    // Server-side profiling parks the result in the LRU under 'name';
    // a follow-up evaluate works without any client-side upload.
    json::Value r = call(c, R"({"op":"profile","workload":"balanced_mix",)"
                            R"("uops":20000,"threads":2,"name":"bm"})");
    ASSERT_TRUE(r["ok"].boolean()) << r["error"].str();
    EXPECT_EQ(r["profile"].str(), "bm");
    EXPECT_EQ(r["uops"].number(), 20000);

    r = call(c, R"({"op":"evaluate","profile":"bm",)"
                R"("config":{"width":4,"rob":128}})");
    ASSERT_TRUE(r["ok"].boolean()) << r["error"].str();
    EXPECT_GT(r["cpi"].number(), 0);

    r = call(c, R"({"op":"profile","workload":"no_such_workload"})");
    EXPECT_FALSE(r["ok"].boolean());
    EXPECT_EQ(r["code"].str(), "InvalidArgument");

    r = call(c, R"({"op":"profile","workload":"balanced_mix","uops":1})");
    EXPECT_FALSE(r["ok"].boolean());
    EXPECT_EQ(r["code"].str(), "InvalidArgument");

    r = call(c, R"({"op":"profile"})");
    EXPECT_FALSE(r["ok"].boolean());
    EXPECT_EQ(r["code"].str(), "InvalidArgument");
}

TEST_F(ServeTest, EvaluateValidatesConfigAndProfileName)
{
    startServer();
    Client c = client();

    json::Value r = call(c, R"({"op":"evaluate","profile":"ghost"})");
    EXPECT_FALSE(r["ok"].boolean());
    EXPECT_EQ(r["code"].str(), "InvalidArgument");

    call(c, std::string(R"({"op":"load-profile","name":"w0",)") +
                "\"data\":" + json::quote(profileText()) + "}");
    r = call(c, R"({"op":"evaluate","profile":"w0",)"
                R"("config":{"width":99}})");
    EXPECT_FALSE(r["ok"].boolean());
    EXPECT_EQ(r["code"].str(), "InvalidArgument");
}

TEST_F(ServeTest, CorruptUploadSurvivedAndServingContinues)
{
    startServer();
    Client c = client();

    const std::string good = profileText();
    json::Value r =
        call(c, std::string(R"({"op":"load-profile","name":"w0",)") +
                    "\"data\":" + json::quote(good) + "}");
    ASSERT_TRUE(r["ok"].boolean());

    // Bit-flipped payload: checksum must catch it.
    std::string flipped = good;
    flipped[good.size() / 2] ^= 0x20;
    r = call(c, std::string(R"({"op":"load-profile","name":"bad",)") +
                    "\"data\":" + json::quote(flipped) + "}");
    EXPECT_FALSE(r["ok"].boolean());
    EXPECT_EQ(r["code"].str(), "Corrupt");

    // Injected corruption via the failpoint op, exercising the remote
    // arming path the README documents.
    r = call(c, R"({"op":"failpoint","spec":"profile_io.corrupt=1"})");
    ASSERT_TRUE(r["ok"].boolean());
    r = call(c, std::string(R"({"op":"load-profile","name":"w1",)") +
                    "\"data\":" + json::quote(good) + "}");
    EXPECT_FALSE(r["ok"].boolean());
    EXPECT_EQ(r["code"].str(), "Corrupt");

    // The daemon keeps serving: the good profile still evaluates and
    // the failed uploads never entered the LRU.
    r = call(c, R"({"op":"sweep","profile":"w0","space":"small"})");
    EXPECT_TRUE(r["ok"].boolean());
    r = call(c, R"({"op":"evaluate","profile":"bad"})");
    EXPECT_EQ(r["code"].str(), "InvalidArgument");
}

TEST_F(ServeTest, DeadlineMidSweepReturnsDegradedFront)
{
    startServer();
    Client c = client();
    call(c, std::string(R"({"op":"load-profile","name":"w0",)") +
                "\"data\":" + json::quote(profileText()) + "}");

    // Stretch every sweep chunk so a short deadline expires mid-sweep.
    failpoint::arm("dse.chunk_delay", {.fires = 0, .sleepMs = 30});
    json::Value r = call(
        c, R"({"op":"sweep","profile":"w0","deadline_ms":5,"id":7})");
    failpoint::reset();

    ASSERT_TRUE(r["ok"].boolean()) << r["error"].str();
    EXPECT_TRUE(r["degraded"].boolean());
    EXPECT_EQ(r["id"].number(), 7);

    // Undelayed, the same request completes fully.
    r = call(c, R"({"op":"sweep","profile":"w0","deadline_ms":60000})");
    ASSERT_TRUE(r["ok"].boolean());
    EXPECT_FALSE(r["degraded"].boolean());
    EXPECT_FALSE(r["front"].array().empty());
    EXPECT_GE(server_->stats().degraded, 1u);
}

TEST_F(ServeTest, QueueOverflowShedsLoadAndRecovers)
{
    opts_.workers = 1;
    opts_.maxQueue = 1;
    startServer();
    Client c = client();

    // Stall the lone executor so pipelined requests pile into the
    // 1-deep queue and overflow.
    failpoint::arm("serve.exec_delay", {.fires = 0, .sleepMs = 100});
    const int kRequests = 6;
    for (int i = 0; i < kRequests; ++i)
        ASSERT_TRUE(c.sendLine(R"({"op":"ping"})").isOk());

    int ok = 0, shed = 0;
    for (int i = 0; i < kRequests; ++i) {
        std::string line;
        ASSERT_TRUE(c.recvLine(line).isOk()) << "response " << i;
        json::Value r = parsed(line);
        if (r["ok"].boolean())
            ++ok;
        else if (r["code"].str() == "ResourceExhausted")
            ++shed;
    }
    failpoint::reset();

    EXPECT_EQ(ok + shed, kRequests);
    EXPECT_GE(shed, 1);
    EXPECT_GE(ok, 1);
    EXPECT_GE(server_->stats().shed, static_cast<uint64_t>(shed));

    // Backpressure, not breakage: the next request sails through.
    json::Value r = call(c, R"({"op":"ping","id":1})");
    EXPECT_TRUE(r["ok"].boolean());
}

TEST_F(ServeTest, ClientDisconnectCancelsOutstandingWork)
{
    startServer();
    {
        Client c = client();
        call(c, std::string(R"({"op":"load-profile","name":"w0",)") +
                    "\"data\":" + json::quote(profileText()) + "}");
        // Slow sweep, then vanish: the reader must cancel the token.
        failpoint::arm("dse.chunk_delay", {.fires = 0, .sleepMs = 40});
        ASSERT_TRUE(
            c.sendLine(R"({"op":"sweep","profile":"w0"})").isOk());
        // Client goes away without reading the response.
    }

    // The cancel is observed at the next chunk/queue boundary.
    bool cancelled = false;
    for (int i = 0; i < 100 && !cancelled; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        cancelled = server_->stats().cancelled >= 1;
    }
    failpoint::reset();
    EXPECT_TRUE(cancelled);

    // And the daemon is still healthy for the next client.
    Client c2 = client();
    json::Value r = call(c2, R"({"op":"ping"})");
    EXPECT_TRUE(r["ok"].boolean());
}

TEST_F(ServeTest, OversizedRequestLineIsShedAndConnectionDropped)
{
    opts_.maxRequestBytes = 1024;
    startServer();
    Client c = client();

    std::string huge(4096, 'a'); // no newline: can never complete
    ASSERT_TRUE(c.sendLine(huge).isOk());
    std::string line;
    ASSERT_TRUE(c.recvLine(line).isOk());
    json::Value r = parsed(line);
    EXPECT_FALSE(r["ok"].boolean());
    EXPECT_EQ(r["code"].str(), "ResourceExhausted");

    // The server closed this connection; a fresh one still works.
    EXPECT_FALSE(c.recvLine(line).isOk());
    Client c2 = client();
    r = call(c2, R"({"op":"ping"})");
    EXPECT_TRUE(r["ok"].boolean());
}

TEST_F(ServeTest, ProfileLruEvictsLeastRecentlyUsed)
{
    opts_.maxProfiles = 2;
    startServer();
    Client c = client();

    const std::string data = json::quote(profileText());
    for (const char *name : {"p1", "p2", "p3"}) {
        json::Value r = call(
            c, std::string(R"({"op":"load-profile","name":")") + name +
                   "\",\"data\":" + data + "}");
        ASSERT_TRUE(r["ok"].boolean());
    }

    // p1 was evicted; p2/p3 still resolve.
    json::Value r = call(c, R"({"op":"evaluate","profile":"p1"})");
    EXPECT_EQ(r["code"].str(), "InvalidArgument");
    r = call(c, R"({"op":"evaluate","profile":"p3"})");
    EXPECT_TRUE(r["ok"].boolean());

    r = call(c, R"({"op":"stats"})");
    ASSERT_TRUE(r["ok"].boolean());
    EXPECT_GE(r["evictions"].number(), 1);
    EXPECT_EQ(r["profiles"].array().size(), 2u);
    EXPECT_GE(r["requests"].number(), 5);
}

TEST_F(ServeTest, FailpointOpIsGatedByOptions)
{
    opts_.allowFailpoints = false;
    startServer();
    Client c = client();

    json::Value r =
        call(c, R"({"op":"failpoint","spec":"profile_io.corrupt"})");
    EXPECT_FALSE(r["ok"].boolean());
    EXPECT_EQ(r["code"].str(), "InvalidArgument");
    EXPECT_EQ(failpoint::armedCount(), 0);
}

TEST_F(ServeTest, AccuracyOpRunsTinyGridAndHonorsDeadline)
{
    startServer();
    Client c = client();

    json::Value r = call(
        c,
        R"({"op":"accuracy","grid":"ci","uops":500,)"
        R"("workloads":["stream_add"],"deadline_ms":120000})");
    ASSERT_TRUE(r["ok"].boolean()) << r["error"].str();
    EXPECT_FALSE(r["degraded"].boolean());
    EXPECT_EQ(r["points"].number(), 2); // 1 workload x 2 ci configs
    EXPECT_TRUE(r["mape"].isObject());

    // An immediate deadline degrades instead of failing.
    r = call(c, R"({"op":"accuracy","grid":"ci","uops":500,)"
                R"("workloads":["stream_add"],"deadline_ms":0.001})");
    ASSERT_TRUE(r["ok"].boolean()) << r["error"].str();
    EXPECT_TRUE(r["degraded"].boolean());

    // A bad grid preset comes back structured, not as a crash.
    r = call(c, R"({"op":"accuracy","grid":"nope"})");
    EXPECT_FALSE(r["ok"].boolean());
    EXPECT_EQ(r["code"].str(), "InvalidArgument");
}

/** Find a metric object by name (+labels substring) in a metrics-op
 *  response; null Value when absent. */
json::Value
findMetric(const json::Value &resp, const std::string &name,
           const std::string &labels = "")
{
    for (const json::Value &m : resp["metrics"].array())
        if (m.stringOr("name", "") == name &&
            (labels.empty() || m.stringOr("labels", "") == labels))
            return m;
    return json::Value();
}

TEST_F(ServeTest, MetricsOpReportsScriptedCounts)
{
    startServer();
    Client c = client();

    // Scripted sequence with known per-op counts: 2 pings, 1 upload,
    // 3 evaluates, 1 stats. The metrics request itself is the 8th
    // enqueued request; its own op-latency closes only after the
    // render, so it is visible in requests/queue-wait but not in
    // serve_op_latency_ns{op="metrics"}.
    EXPECT_TRUE(call(c, R"({"op":"ping"})")["ok"].boolean());
    EXPECT_TRUE(call(c, R"({"op":"ping"})")["ok"].boolean());
    json::Value r =
        call(c, std::string(R"({"op":"load-profile","name":"w0",)") +
                    "\"data\":" + json::quote(profileText()) + "}");
    ASSERT_TRUE(r["ok"].boolean()) << r["error"].str();
    for (int i = 0; i < 3; ++i) {
        r = call(c, R"({"op":"evaluate","profile":"w0",)"
                    R"("config":{"width":4,"rob":128}})");
        ASSERT_TRUE(r["ok"].boolean()) << r["error"].str();
    }
    EXPECT_TRUE(call(c, R"({"op":"stats"})")["ok"].boolean());

    r = call(c, R"({"op":"metrics","format":"json"})");
    ASSERT_TRUE(r["ok"].boolean()) << r["error"].str();
    EXPECT_GE(r["uptime_ms"].number(), 0.0);

    EXPECT_EQ(findMetric(r, "serve_requests_total").numberOr("value", -1),
              8.0);
    EXPECT_EQ(findMetric(r, "serve_served_total").numberOr("value", -1),
              7.0); // the metrics response is not yet written
    EXPECT_EQ(findMetric(r, "serve_connections_total")
                  .numberOr("value", -1),
              1.0);
    EXPECT_EQ(findMetric(r, "serve_profile_lru_hits_total")
                  .numberOr("value", -1),
              3.0);
    EXPECT_GT(findMetric(r, "serve_bytes_read_total")
                  .numberOr("value", -1),
              0.0);

    // Queue-wait histogram counts every executed request so far,
    // including this one (recorded before dispatch).
    json::Value qw = findMetric(r, "serve_queue_wait_ns");
    EXPECT_EQ(qw.stringOr("type", ""), "histogram");
    EXPECT_EQ(qw.numberOr("count", -1), 8.0);

    // Per-op evaluate latency: exactly the 3 evaluates.
    json::Value ev =
        findMetric(r, "serve_op_latency_ns", "op=\"evaluate\"");
    EXPECT_EQ(ev.numberOr("count", -1), 3.0);
    EXPECT_GT(ev.numberOr("p99", 0), 0.0);
    EXPECT_EQ(findMetric(r, "serve_op_latency_ns", "op=\"ping\"")
                  .numberOr("count", -1),
              2.0);
}

TEST_F(ServeTest, MetricsOpPrometheusAndFormatValidation)
{
    startServer();
    Client c = client();
    EXPECT_TRUE(call(c, R"({"op":"ping"})")["ok"].boolean());

    json::Value r = call(c, R"({"op":"metrics","format":"prometheus"})");
    ASSERT_TRUE(r["ok"].boolean()) << r["error"].str();
    const std::string text = r["prometheus"].str();
    EXPECT_NE(text.find("# TYPE serve_requests_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE serve_queue_wait_ns histogram"),
              std::string::npos);
    EXPECT_NE(text.find("serve_queue_wait_ns_bucket{le=\"+Inf\"}"),
              std::string::npos);
    EXPECT_NE(text.find("serve_op_latency_ns_count{op=\"ping\"} 1"),
              std::string::npos);

    // "both" carries the JSON array and the text exposition.
    r = call(c, R"({"op":"metrics","format":"both"})");
    ASSERT_TRUE(r["ok"].boolean());
    EXPECT_FALSE(r["metrics"].array().empty());
    EXPECT_FALSE(r["prometheus"].str().empty());

    r = call(c, R"({"op":"metrics","format":"xml"})");
    EXPECT_FALSE(r["ok"].boolean());
    EXPECT_EQ(r["code"].str(), "InvalidArgument");
}

TEST_F(ServeTest, StatsOpCarriesUptimeQueueDepthAndByteCounters)
{
    startServer();
    Client c = client();

    json::Value r1 = call(c, R"({"op":"stats"})");
    ASSERT_TRUE(r1["ok"].boolean());
    EXPECT_GE(r1["uptime_ms"].number(), 0.0);
    EXPECT_EQ(r1["queue_depth"].number(), 0); // idle at snapshot time
    EXPECT_GT(r1["bytes_in"].number(), 0);

    // A miss on an unknown profile shows up in the LRU counters.
    call(c, R"({"op":"evaluate","profile":"ghost"})");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    json::Value r2 = call(c, R"({"op":"stats"})");
    EXPECT_GE(r2["lru_misses"].number(), 1);
    // Uptime is monotonic, counters never reset while running.
    EXPECT_GT(r2["uptime_ms"].number(), r1["uptime_ms"].number());
    EXPECT_GE(r2["bytes_out"].number(), r1["bytes_out"].number());

    // The ServerStats projection and the direct renders agree in kind.
    ServerStats st = server_->stats();
    EXPECT_GT(st.uptimeMs, 0.0);
    EXPECT_GE(st.lruMisses, 1u);
    EXPECT_GT(st.bytesIn, 0u);
    json::Value doc = parsed(server_->metricsJson());
    EXPECT_FALSE(doc["metrics"].array().empty());
    EXPECT_NE(server_->metricsPrometheus().find("serve_requests_total"),
              std::string::npos);
}

TEST_F(ServeTest, TraceSpansCoverServeLifecycle)
{
    obs::SpanRecorder rec;
    rec.install();
    startServer();
    {
        Client c = client();
        json::Value r = call(
            c, std::string(R"({"op":"load-profile","name":"w0",)") +
                   "\"data\":" + json::quote(profileText()) + "}");
        ASSERT_TRUE(r["ok"].boolean()) << r["error"].str();
        r = call(c, R"({"op":"evaluate","profile":"w0",)"
                    R"("config":{"width":4,"rob":128}})");
        ASSERT_TRUE(r["ok"].boolean()) << r["error"].str();
    }
    server_->stop();
    obs::SpanRecorder::uninstall();

    std::vector<obs::SpanEvent> evs = rec.snapshot();
    auto count = [&](const char *name) {
        size_t n = 0;
        for (const obs::SpanEvent &e : evs)
            if (e.name && std::string(e.name) == name)
                ++n;
        return n;
    };
    // Every lifecycle stage shows up: queue wait, executor, parse,
    // the op itself, the response write.
    EXPECT_GE(count("serve.queue_wait"), 2u);
    EXPECT_GE(count("serve.exec"), 2u);
    EXPECT_GE(count("serve.parse"), 2u);
    EXPECT_EQ(count("serve.op.load_profile"), 1u);
    EXPECT_EQ(count("serve.op.evaluate"), 1u);
    EXPECT_GE(count("serve.respond"), 2u);

    // The same nonzero trace id ties one request's queue wait to its
    // executor span.
    for (const obs::SpanEvent &qw : evs) {
        if (!qw.name || std::string(qw.name) != "serve.queue_wait")
            continue;
        EXPECT_NE(qw.traceId, 0u);
        bool matched = false;
        for (const obs::SpanEvent &ex : evs)
            if (ex.name && std::string(ex.name) == "serve.exec" &&
                ex.traceId == qw.traceId)
                matched = true;
        EXPECT_TRUE(matched) << "unmatched trace id " << qw.traceId;
    }
}

TEST_F(ServeTest, StopIsIdempotentAndRestartable)
{
    startServer();
    {
        Client c = client();
        EXPECT_TRUE(call(c, R"({"op":"ping"})")["ok"].boolean());
    }
    server_->stop();
    server_->stop(); // idempotent
    EXPECT_FALSE(server_->running());

    // Same path can be bound again by a fresh server.
    Server second(opts_);
    ASSERT_TRUE(second.start().isOk());
    Client c;
    ASSERT_TRUE(c.connect(opts_.socketPath).isOk());
    std::string resp;
    ASSERT_TRUE(c.call(R"({"op":"ping"})", resp).isOk());
    EXPECT_TRUE(parsed(resp)["ok"].boolean());
    second.stop();
}

} // namespace
} // namespace mipp
