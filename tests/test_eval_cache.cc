/**
 * @file
 * Tests for the per-workload evaluation cache and the model-first DSE
 * pipeline.
 *
 * The load-bearing guarantee is *bitwise* parity: a memoized EvalContext
 * must return exactly the doubles the uncached path computes, for every
 * point of a design space. Everything downstream (Pareto pruning, error
 * metrics, the recorded benchmark speedups) assumes the cache is a pure
 * performance feature with zero numerical footprint.
 */

#include <gtest/gtest.h>

#include <vector>

#include "dse/explorer.hh"
#include "dse/pareto.hh"
#include "model/eval_cache.hh"
#include "power/power_model.hh"
#include "profiler/profiler.hh"
#include "uarch/design_space.hh"
#include "workloads/workload.hh"

namespace mipp {
namespace {

Profile
makeProfile(const char *name, size_t uops, Trace *traceOut = nullptr)
{
    Trace t = generateWorkload(suiteWorkload(name), uops);
    ProfilerConfig pc;
    pc.name = name;
    Profile p = profileTrace(t, pc);
    if (traceOut)
        *traceOut = std::move(t);
    return p;
}

/** Exact (bitwise modulo NaN) comparison of two model results. */
void
expectIdentical(const ModelResult &a, const ModelResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.uops, b.uops);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.deff, b.deff);
    EXPECT_EQ(a.avgLatency, b.avgLatency);
    EXPECT_EQ(a.stack.base, b.stack.base);
    EXPECT_EQ(a.stack.branch, b.stack.branch);
    EXPECT_EQ(a.stack.icache, b.stack.icache);
    EXPECT_EQ(a.stack.llcHit, b.stack.llcHit);
    EXPECT_EQ(a.stack.dram, b.stack.dram);
    EXPECT_EQ(a.branchMissRate, b.branchMissRate);
    EXPECT_EQ(a.branchMisses, b.branchMisses);
    EXPECT_EQ(a.branchResolution, b.branchResolution);
    EXPECT_EQ(a.loadMissesL1, b.loadMissesL1);
    EXPECT_EQ(a.loadMissesL2, b.loadMissesL2);
    EXPECT_EQ(a.loadMissesL3, b.loadMissesL3);
    EXPECT_EQ(a.storeMissesL1, b.storeMissesL1);
    EXPECT_EQ(a.storeMissesL2, b.storeMissesL2);
    EXPECT_EQ(a.storeMissesL3, b.storeMissesL3);
    EXPECT_EQ(a.ifetchMissesL1, b.ifetchMissesL1);
    EXPECT_EQ(a.ifetchMissesL2, b.ifetchMissesL2);
    EXPECT_EQ(a.ifetchMissesL3, b.ifetchMissesL3);
    EXPECT_EQ(a.mlp, b.mlp);
    EXPECT_EQ(a.busCyclesPerMiss, b.busCyclesPerMiss);
    EXPECT_EQ(a.llcChainPenalty, b.llcChainPenalty);
    EXPECT_EQ(a.activity.cycles, b.activity.cycles);
    EXPECT_EQ(a.activity.dramAccesses, b.activity.dramAccesses);
    ASSERT_EQ(a.windowCpi.size(), b.windowCpi.size());
    for (size_t i = 0; i < a.windowCpi.size(); ++i)
        EXPECT_EQ(a.windowCpi[i], b.windowCpi[i]);
}

/** Grid of design points exercising every memo dimension: cache levels,
 *  ROB sizes, widths, predictors and the prefetcher path. */
std::vector<CoreConfig>
parityGrid()
{
    std::vector<CoreConfig> grid;
    for (uint32_t w : {2u, 4u})
        for (uint32_t rob : {64u, 128u})
            for (uint32_t l1dKb : {16u, 64u})
                for (uint32_t l3Mb : {2u, 32u})
                    for (auto pred : {BranchPredictorKind::GShare,
                                      BranchPredictorKind::Tournament}) {
                        CoreConfig c = CoreConfig::nehalemReference();
                        c.setWidth(w);
                        scaleBackEnd(c, rob);
                        c.l1d.sizeBytes = l1dKb * 1024;
                        c.l3.sizeBytes = l3Mb * 1024 * 1024;
                        c.predictor = pred;
                        c.prefetcherEnabled = (w == 4);
                        grid.push_back(c);
                    }
    return grid;
}

TEST(EvalCache, CachedMatchesUncachedBitwise)
{
    Profile p = makeProfile("balanced_mix", 60000);
    EvalContext ctx(p);
    for (const CoreConfig &cfg : parityGrid()) {
        ModelResult cached = evaluateModel(ctx, cfg);
        ModelResult uncached = evaluateModel(p, cfg);
        expectIdentical(cached, uncached);
    }
}

TEST(EvalCache, CachedMatchesUncachedAcrossModelOptions)
{
    Profile p = makeProfile("ptr_chase", 50000);
    ModelOptions variants[4];
    variants[1].perWindow = false;
    variants[2].mlpMode = ModelOptions::MlpMode::ColdMiss;
    variants[3].mlpMode = ModelOptions::MlpMode::None;
    variants[3].modelLlcChaining = false;
    for (const ModelOptions &mo : variants) {
        EvalContext ctx(p);
        for (const CoreConfig &cfg : parityGrid()) {
            ModelResult cached = evaluateModel(ctx, cfg);
            ModelResult uncached = evaluateModel(p, cfg);
            expectIdentical(cached, uncached);
            ModelResult cachedMo = evaluateModel(ctx, cfg, mo);
            ModelResult uncachedMo = evaluateModel(p, cfg, mo);
            expectIdentical(cachedMo, uncachedMo);
        }
    }
}

TEST(EvalCache, RepeatedEvaluationIsDeterministic)
{
    Profile p = makeProfile("matrix_tile", 50000);
    CoreConfig cfg = CoreConfig::nehalemReference();
    EvalContext ctx(p);
    ModelResult first = evaluateModel(ctx, cfg);
    ModelResult second = evaluateModel(ctx, cfg);
    expectIdentical(first, second);
}

TEST(EvalCache, InternedBranchModelMatchesPretrained)
{
    for (int k = 0;
         k < static_cast<int>(BranchPredictorKind::NumKinds); ++k) {
        auto kind = static_cast<BranchPredictorKind>(k);
        const BranchMissModel &interned = internedBranchModel(kind);
        BranchMissModel fresh = BranchMissModel::pretrained(kind);
        EXPECT_EQ(interned.kind, fresh.kind);
        EXPECT_EQ(interned.slope, fresh.slope);
        EXPECT_EQ(interned.intercept, fresh.intercept);
    }
    // Interning hands out one stable instance per kind.
    EXPECT_EQ(&internedBranchModel(BranchPredictorKind::GShare),
              &internedBranchModel(BranchPredictorKind::GShare));
}

// ---------------------------------------------------------------------------
// Batched (structure-of-arrays) evaluation engine
// ---------------------------------------------------------------------------

TEST(BatchEval, BatchedMatchesScalarBitwiseOnThesisGrid)
{
    // The streaming sweep's load-bearing guarantee, same discipline as
    // the EvalContext tests above: the batched engine must reproduce
    // the scalar cached path bit for bit over the full 243-point thesis
    // grid, under both the fitted calibration and the plain thesis
    // formulation (whose different coefficients exercise every
    // config-dependent scalar the batch path hoists).
    Profile p = makeProfile("balanced_mix", 60000);
    DesignSpace space; // full 243-point thesis grid
    const auto &grid = space.configs();
    for (bool uncal : {false, true}) {
        ModelOptions mo;
        if (uncal)
            mo.cal = ModelCalibration::uncalibrated();

        EvalContext scalarCtx(p);
        EvalContext batchCtx(p);
        BatchEval be(batchCtx, mo);

        std::vector<PowerParams> pp;
        for (const CoreConfig &cfg : grid)
            pp.push_back(powerParams(cfg));
        std::vector<BatchEval::Output> out(grid.size());
        be.evaluate(grid.data(), grid.size(), out.data(), pp.data());
        // Without precomputed power params the engine derives them per
        // point; both paths must agree exactly.
        std::vector<BatchEval::Output> outDerived(grid.size());
        be.evaluate(grid.data(), grid.size(), outDerived.data(), nullptr);

        for (size_t i = 0; i < grid.size(); ++i) {
            ModelResult scalar = evaluateModel(scalarCtx, grid[i], mo);
            expectIdentical(be.evaluateOne(grid[i]), scalar);
            EXPECT_EQ(out[i].modelCpi, scalar.cpiPerUop());
            EXPECT_EQ(out[i].modelWatts,
                      computePower(scalar.activity, grid[i]).total());
            EXPECT_EQ(outDerived[i].modelCpi, out[i].modelCpi);
            EXPECT_EQ(outDerived[i].modelWatts, out[i].modelWatts);
        }
    }
}

// ---------------------------------------------------------------------------
// Model-first DSE pipeline
// ---------------------------------------------------------------------------

struct SweepFixture {
    std::vector<Trace> traces;
    std::vector<Profile> profiles;
    std::vector<CoreConfig> configs;

    SweepFixture()
    {
        for (const char *name : {"loopy_small", "int_crunch"}) {
            Trace t;
            profiles.push_back(makeProfile(name, 40000, &t));
            traces.push_back(std::move(t));
        }
        // Include an LLC axis so the space has clearly dominated points
        // (an oversized L3 costs power without helping small workloads)
        // and the model front stays well below the full space.
        for (uint32_t w : {2u, 4u, 6u})
            for (uint32_t rob : {64u, 256u})
                for (uint32_t l3Mb : {2u, 32u}) {
                    CoreConfig c = CoreConfig::nehalemReference();
                    c.setWidth(w);
                    scaleBackEnd(c, rob);
                    c.l3.sizeBytes = l3Mb * 1024 * 1024;
                    configs.push_back(c);
                }
    }
};

TEST(Sweep, ModelOnlyRunsNoSimulation)
{
    SweepFixture f;
    SweepOptions so;
    so.mode = SweepMode::ModelOnly;
    SweepResult r = sweepEx(f.traces, f.profiles, f.configs, {}, so);

    EXPECT_EQ(r.simInvocations, 0u);
    ASSERT_EQ(r.points.size(), f.profiles.size() * f.configs.size());
    for (const SweepPoint &pt : r.points) {
        EXPECT_FALSE(pt.simulated);
        EXPECT_EQ(pt.simCpi, 0.0);
        EXPECT_GT(pt.modelCpi, 0.0);
        EXPECT_GT(pt.modelWatts, 0.0);
    }
    ASSERT_EQ(r.modelFronts.size(), f.profiles.size());
    for (const auto &front : r.modelFronts)
        EXPECT_FALSE(front.empty());
}

TEST(Sweep, WorkloadMajorOrdering)
{
    SweepFixture f;
    SweepOptions so;
    so.mode = SweepMode::ModelOnly;
    SweepResult r = sweepEx(f.traces, f.profiles, f.configs, {}, so);
    for (size_t wi = 0; wi < r.nWorkloads; ++wi)
        for (size_t ci = 0; ci < r.nConfigs; ++ci) {
            EXPECT_EQ(r.at(wi, ci).workloadIdx, wi);
            EXPECT_EQ(r.at(wi, ci).configIdx, ci);
        }
}

TEST(Sweep, PairedMatchesLegacySweepAndSimulatesEverything)
{
    SweepFixture f;
    SweepResult r = sweepEx(f.traces, f.profiles, f.configs, {}, {});
    EXPECT_EQ(r.simInvocations, r.points.size());
    for (const SweepPoint &pt : r.points) {
        EXPECT_TRUE(pt.simulated);
        EXPECT_GT(pt.simCpi, 0.0);
        EXPECT_GT(pt.modelCpi, 0.0);
    }
    // The compat wrapper returns the same evaluations in the historical
    // config-major order (point i = workload i % nw, config i / nw).
    auto legacy = sweep(f.traces, f.profiles, f.configs);
    ASSERT_EQ(legacy.size(), r.points.size());
    const size_t nw = f.profiles.size();
    for (size_t i = 0; i < legacy.size(); ++i) {
        EXPECT_EQ(legacy[i].workloadIdx, i % nw);
        EXPECT_EQ(legacy[i].configIdx, i / nw);
        const SweepPoint &pt = r.at(i % nw, i / nw);
        EXPECT_EQ(legacy[i].modelCpi, pt.modelCpi);
        EXPECT_EQ(legacy[i].simCpi, pt.simCpi);
    }
}

TEST(Sweep, ModelThenSimParetoPrunesSimulationToFrontPlusSample)
{
    SweepFixture f;
    const size_t nw = f.profiles.size();
    const size_t nc = f.configs.size();

    SweepResult paired = sweepEx(f.traces, f.profiles, f.configs, {}, {});

    SweepOptions so;
    so.mode = SweepMode::ModelThenSimPareto;
    so.validationSamples = 1;
    SweepResult pruned = sweepEx(f.traces, f.profiles, f.configs, {}, so);

    // Model outputs are bitwise independent of the sweep mode.
    ASSERT_EQ(pruned.points.size(), paired.points.size());
    for (size_t i = 0; i < pruned.points.size(); ++i) {
        EXPECT_EQ(pruned.points[i].modelCpi, paired.points[i].modelCpi);
        EXPECT_EQ(pruned.points[i].modelWatts,
                  paired.points[i].modelWatts);
    }

    // The pruned mode's model front equals the front recomputed from the
    // Paired run's model objectives: pruning filters the simulation
    // budget, never the candidate set.
    ASSERT_EQ(pruned.modelFronts.size(), nw);
    size_t expectedSims = 0;
    for (size_t wi = 0; wi < nw; ++wi) {
        std::vector<Objective> modelObj;
        for (size_t ci = 0; ci < nc; ++ci)
            modelObj.push_back({paired.at(wi, ci).modelCpi,
                                paired.at(wi, ci).modelWatts});
        auto expectFront = paretoFront(modelObj);
        EXPECT_EQ(pruned.modelFronts[wi], expectFront);

        // Every model-front candidate got the detailed simulation.
        for (size_t ci : pruned.modelFronts[wi]) {
            EXPECT_TRUE(pruned.at(wi, ci).simulated);
            EXPECT_GT(pruned.at(wi, ci).simCpi, 0.0);
            // And its simulated coordinates match the Paired run's.
            EXPECT_EQ(pruned.at(wi, ci).simCpi, paired.at(wi, ci).simCpi);
        }
        expectedSims += expectFront.size() +
                        std::min<size_t>(so.validationSamples,
                                         nc - expectFront.size());
    }

    // The invocation counter proves the pruning: front + sample only.
    EXPECT_EQ(pruned.simInvocations, expectedSims);
    EXPECT_LT(pruned.simInvocations, paired.simInvocations);

    // Off-front, non-sample points carry model predictions only.
    size_t simulatedPoints = 0;
    for (const SweepPoint &pt : pruned.points)
        simulatedPoints += pt.simulated;
    EXPECT_EQ(simulatedPoints, expectedSims);
}

TEST(Sweep, StreamingParetoMatchesModelOnlyWithoutMaterializing)
{
    SweepFixture f;
    const size_t nw = f.profiles.size();

    SweepOptions mo;
    mo.mode = SweepMode::ModelOnly;
    SweepResult ref = sweepEx(f.traces, f.profiles, f.configs, {}, mo);

    SweepOptions so;
    so.mode = SweepMode::ModelOnlyPareto;
    SweepResult st = sweepEx(f.traces, f.profiles, f.configs, {}, so);

    // O(front): the streaming mode never materializes the point grid.
    EXPECT_TRUE(st.points.empty());
    EXPECT_EQ(st.simInvocations, 0u);
    EXPECT_EQ(st.nWorkloads, nw);
    EXPECT_EQ(st.nConfigs, f.configs.size());

    // The surviving fronts are bitwise identical to ModelOnly's.
    ASSERT_EQ(st.modelFronts.size(), nw);
    ASSERT_EQ(st.frontPoints.size(), nw);
    for (size_t wi = 0; wi < nw; ++wi) {
        EXPECT_EQ(st.modelFronts[wi], ref.modelFronts[wi]);
        ASSERT_EQ(st.frontPoints[wi].size(), st.modelFronts[wi].size());
        for (size_t k = 0; k < st.frontPoints[wi].size(); ++k) {
            const SweepPoint &a = st.frontPoints[wi][k];
            EXPECT_EQ(a.configIdx, st.modelFronts[wi][k]);
            EXPECT_EQ(a.workloadIdx, wi);
            const SweepPoint &b = ref.at(wi, a.configIdx);
            EXPECT_EQ(a.modelCpi, b.modelCpi);
            EXPECT_EQ(a.modelWatts, b.modelWatts);
        }
    }
}

TEST(Sweep, GeneratedSweepMatchesExplicitAndPoolReuseIsStable)
{
    SweepFixture f;
    SweepOptions so;
    so.mode = SweepMode::ModelOnlyPareto;
    SweepResult ref = sweepEx(f.traces, f.profiles, f.configs, {}, so);

    // Generator reproducing the explicit configs; evaluators pooled
    // across calls. Generators receive a reused scratch slot, so the
    // assignment here is the degenerate always-overwrite case.
    ModelEvalPool pool;
    so.evalPool = &pool;
    ConfigGenerator gen = [&f](size_t ci, CoreConfig &out) {
        out = f.configs[ci];
    };
    for (int rep = 0; rep < 2; ++rep) { // rep 1 reuses the warm pool
        SweepResult gn =
            sweepGenerated(f.profiles, f.configs.size(), gen, {}, so);
        EXPECT_TRUE(gn.points.empty());
        ASSERT_EQ(gn.modelFronts.size(), ref.modelFronts.size());
        for (size_t wi = 0; wi < ref.modelFronts.size(); ++wi) {
            EXPECT_EQ(gn.modelFronts[wi], ref.modelFronts[wi]);
            ASSERT_EQ(gn.frontPoints[wi].size(),
                      ref.frontPoints[wi].size());
            for (size_t k = 0; k < gn.frontPoints[wi].size(); ++k) {
                EXPECT_EQ(gn.frontPoints[wi][k].modelCpi,
                          ref.frontPoints[wi][k].modelCpi);
                EXPECT_EQ(gn.frontPoints[wi][k].modelWatts,
                          ref.frontPoints[wi][k].modelWatts);
            }
        }
    }
}

} // namespace
} // namespace mipp
