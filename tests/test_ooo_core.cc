/**
 * @file
 * Tests for the cycle-level out-of-order core, using small hand-built
 * traces with analytically known timing.
 */

#include <gtest/gtest.h>

#include "sim/ooo_core.hh"

namespace mipp {
namespace {

/** Small builder for hand-crafted uop traces. */
class TraceBuilder
{
  public:
    TraceBuilder &
    alu(int8_t dst, int8_t src1 = kNoReg, int8_t src2 = kNoReg)
    {
        MicroOp op;
        op.type = UopType::IntAlu;
        op.pc = nextPc();
        op.dst = dst;
        op.src1 = src1;
        op.src2 = src2;
        trace.push(op);
        return *this;
    }

    TraceBuilder &
    div(int8_t dst, int8_t src1 = kNoReg)
    {
        MicroOp op;
        op.type = UopType::IntDiv;
        op.pc = nextPc();
        op.dst = dst;
        op.src1 = src1;
        trace.push(op);
        return *this;
    }

    TraceBuilder &
    load(uint64_t addr, int8_t dst, int8_t addrReg = kNoReg)
    {
        MicroOp op;
        op.type = UopType::Load;
        op.pc = nextPc();
        op.addr = addr;
        op.dst = dst;
        op.src1 = addrReg;
        trace.push(op);
        return *this;
    }

    TraceBuilder &
    branch(bool taken, uint64_t pc = 0)
    {
        MicroOp op;
        op.type = UopType::Branch;
        op.pc = pc ? pc : nextPc();
        op.taken = taken;
        trace.push(op);
        return *this;
    }

    Trace trace;

  private:
    uint64_t
    nextPc()
    {
        return 0x400000 + 8 * trace.size();
    }
};

CoreConfig
testConfig()
{
    CoreConfig cfg = CoreConfig::nehalemReference();
    return cfg;
}

SimOptions
idealOptions()
{
    SimOptions o;
    o.perfectBranch = true;
    o.perfectICache = true;
    o.perfectDCache = true;
    return o;
}

TEST(OooCore, IndependentAluApproachWidth)
{
    TraceBuilder b;
    for (int i = 0; i < 4000; ++i)
        b.alu(static_cast<int8_t>(4 + i % 10));
    auto res = simulate(b.trace, testConfig(), idealOptions());
    // 4-wide core, fully independent single-cycle ops: IPC close to 3
    // once the pipeline is full (destination-register reuse every 10 ops
    // creates mild dependences).
    EXPECT_GT(res.ipc(), 2.4);
    EXPECT_LE(res.ipc(), 4.0);
}

TEST(OooCore, SerialChainRunsAtOneIpc)
{
    TraceBuilder b;
    for (int i = 0; i < 2000; ++i)
        b.alu(4, 4); // every op depends on the previous one
    auto res = simulate(b.trace, testConfig(), idealOptions());
    EXPECT_NEAR(res.cpiPerUop(), 1.0, 0.05);
}

TEST(OooCore, NonPipelinedDividerSerializes)
{
    CoreConfig cfg = testConfig();
    TraceBuilder b;
    for (int i = 0; i < 200; ++i)
        b.div(static_cast<int8_t>(4 + i % 8)); // independent divides
    auto res = simulate(b.trace, cfg, idealOptions());
    // One non-pipelined divider with 20-cycle latency: ~20 CPI.
    double divLat = cfg.lat.of(UopType::IntDiv);
    EXPECT_NEAR(res.cpiPerUop(), divLat, divLat * 0.15);
}

TEST(OooCore, LoadPortLimitsThroughput)
{
    // All loads, single load port: at most 1 uop/cycle.
    TraceBuilder b;
    for (int i = 0; i < 3000; ++i)
        b.load(0x1000 + (i % 64) * 8, static_cast<int8_t>(4 + i % 8));
    auto res = simulate(b.trace, testConfig(), idealOptions());
    EXPECT_GE(res.cpiPerUop(), 0.95);
    EXPECT_LT(res.cpiPerUop(), 1.3);
}

TEST(OooCore, DramMissCostsMemoryLatency)
{
    CoreConfig cfg = testConfig();
    TraceBuilder b;
    // Dependent chain: load -> 100 dependent alus -> done. The load
    // goes to DRAM (cold).
    b.load(0x40000000, 4);
    for (int i = 0; i < 100; ++i)
        b.alu(4, 4);
    auto res = simulate(b.trace, cfg);
    EXPECT_GT(res.cycles, cfg.memLatency);
    EXPECT_GT(res.stack.dram, 0.0);
}

TEST(OooCore, PerfectDCacheRemovesDramStalls)
{
    CoreConfig cfg = testConfig();
    TraceBuilder b;
    for (int i = 0; i < 500; ++i) {
        b.load(0x40000000 + i * 4096, static_cast<int8_t>(4));
        b.alu(5, 4);
    }
    SimOptions ideal = idealOptions();
    auto real = simulate(b.trace, cfg);
    auto perfect = simulate(b.trace, cfg, ideal);
    EXPECT_GT(real.cycles, 2 * perfect.cycles);
    EXPECT_DOUBLE_EQ(perfect.stack.dram, 0.0);
}

TEST(OooCore, MispredictsAddFrontendPenalty)
{
    CoreConfig cfg = testConfig();
    TraceBuilder b;
    // Random-looking branch pattern the predictor cannot learn well,
    // interleaved with a little work.
    uint32_t lfsr = 0xACE1u;
    for (int i = 0; i < 2000; ++i) {
        b.alu(static_cast<int8_t>(4 + i % 8));
        lfsr = (lfsr >> 1) ^ (-(lfsr & 1u) & 0xB400u);
        b.branch((lfsr & 1) != 0, 0x400008);
    }
    SimOptions opts;
    opts.perfectICache = true;
    opts.perfectDCache = true;
    auto real = simulate(b.trace, cfg, opts);
    auto perfect = simulate(b.trace, cfg, idealOptions());
    EXPECT_GT(real.branchMispredicts, 100u);
    EXPECT_GT(real.cycles, perfect.cycles);
    EXPECT_GT(real.stack.branch, 0.0);
    EXPECT_DOUBLE_EQ(perfect.stack.branch, 0.0);
}

TEST(OooCore, CpiStackSumsToCycles)
{
    TraceBuilder b;
    for (int i = 0; i < 1000; ++i) {
        b.load(0x2000000 + i * 256, static_cast<int8_t>(4 + i % 4));
        b.alu(8, 4);
        b.branch(i % 3 != 0, 0x400010);
    }
    auto res = simulate(b.trace, testConfig());
    EXPECT_NEAR(res.stack.total(), static_cast<double>(res.cycles),
                res.cycles * 0.01 + 2);
}

TEST(OooCore, FewerMshrsSlowParallelMisses)
{
    TraceBuilder b;
    for (int i = 0; i < 400; ++i)
        b.load(0x80000000ull + i * 65536,
               static_cast<int8_t>(4 + i % 8)); // independent DRAM misses
    CoreConfig many = testConfig();
    many.mshrs = 16;
    CoreConfig few = testConfig();
    few.mshrs = 1;
    auto fast = simulate(b.trace, many);
    auto slow = simulate(b.trace, few);
    EXPECT_GT(slow.cycles, fast.cycles * 2);
    EXPECT_LE(fast.avgMlp, 16.0);
    EXPECT_LE(slow.avgMlp, 1.01);
}

TEST(OooCore, MlpMeasuredForParallelStreams)
{
    TraceBuilder b;
    for (int i = 0; i < 600; ++i)
        b.load(0x80000000ull + i * 65536, static_cast<int8_t>(4 + i % 8));
    auto res = simulate(b.trace, testConfig());
    EXPECT_GT(res.avgMlp, 3.0);
}

TEST(OooCore, CommitWidthLowerBound)
{
    TraceBuilder b;
    for (int i = 0; i < 4000; ++i)
        b.alu(static_cast<int8_t>(4 + i % 12));
    auto res = simulate(b.trace, testConfig(), idealOptions());
    EXPECT_GE(res.cycles * testConfig().commitWidth, res.uops);
}

TEST(OooCore, WindowCpiSeriesProduced)
{
    TraceBuilder b;
    for (int i = 0; i < 50000; ++i)
        b.alu(static_cast<int8_t>(4 + i % 12));
    SimOptions opts = idealOptions();
    opts.cpiWindowUops = 10000;
    auto res = simulate(b.trace, testConfig(), opts);
    EXPECT_GE(res.windowCpi.size(), 4u);
    for (double cpi : res.windowCpi)
        EXPECT_GT(cpi, 0.0);
}

TEST(OooCore, DeterministicAcrossRuns)
{
    TraceBuilder b;
    for (int i = 0; i < 3000; ++i) {
        b.load(0x3000000 + (i * 7919) % 100000 * 8,
               static_cast<int8_t>(4 + i % 6));
        b.branch(i % 5 != 0, 0x400018);
    }
    auto r1 = simulate(b.trace, testConfig());
    auto r2 = simulate(b.trace, testConfig());
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.branchMispredicts, r2.branchMispredicts);
    EXPECT_EQ(r1.mem.dramAccesses, r2.mem.dramAccesses);
}

TEST(OooCore, WiderCoreIsNotSlower)
{
    TraceBuilder b;
    for (int i = 0; i < 5000; ++i)
        b.alu(static_cast<int8_t>(4 + i % 12));
    CoreConfig narrow = testConfig();
    narrow.setWidth(2);
    CoreConfig wide = testConfig();
    wide.setWidth(6);
    auto n = simulate(b.trace, narrow, idealOptions());
    auto w = simulate(b.trace, wide, idealOptions());
    EXPECT_LE(w.cycles, n.cycles);
}

TEST(OooCore, ActivityCountsConsistent)
{
    TraceBuilder b;
    for (int i = 0; i < 2000; ++i) {
        b.load(0x5000 + (i % 32) * 8, 4);
        b.alu(5, 4);
    }
    auto res = simulate(b.trace, testConfig());
    EXPECT_EQ(res.activity.uops, res.uops);
    EXPECT_EQ(res.activity.robWrites, res.uops);
    EXPECT_EQ(res.activity.robReads, res.uops);
    EXPECT_EQ(res.activity.cycles, res.cycles);
    EXPECT_EQ(res.activity.fuOps[static_cast<int>(UopType::Load)],
              res.uops / 2);
}

} // namespace
} // namespace mipp
