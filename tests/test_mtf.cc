/**
 * @file
 * `.mtf` trace-format tests: byte-exact round trips, the headline
 * ingestion parity promise (profiling a recorded trace — sequentially
 * or segment-parallel — is bit-identical to profiling the generated
 * trace in memory), streaming behavior under ragged span sizes, the
 * `.mtxt` converter round trip, and a table-driven sweep of the
 * malformed corpus under tests/corpus/ asserting every attacker-shaped
 * input comes back as a structured Status, never UB.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "profile_compare.hh"
#include "profiler/profiler.hh"
#include "trace/mtf.hh"
#include "trace/mtf_text.hh"
#include "workloads/workload.hh"

namespace mipp {
namespace {

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + "mipp_mtf_" + name;
}

std::string
encodeToString(const Trace &t)
{
    std::ostringstream os;
    Status st = writeMtf(t, os);
    EXPECT_TRUE(st.isOk()) << st.toString();
    return os.str();
}

Trace
decodeAll(const std::string &bytes)
{
    MtfReader r;
    Status st = MtfReader::parse(bytes, r);
    EXPECT_TRUE(st.isOk()) << st.toString();
    std::vector<MicroOp> uops(r.uopCount());
    EXPECT_EQ(r.decode(uops.data(), uops.size()), uops.size());
    return Trace(std::move(uops));
}

void
expectUopsEqual(const Trace &a, const Trace &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        const MicroOp &x = a[i], &y = b[i];
        ASSERT_EQ(x.pc, y.pc) << "uop " << i;
        ASSERT_EQ(x.addr, y.addr) << "uop " << i;
        ASSERT_EQ(x.type, y.type) << "uop " << i;
        ASSERT_EQ(x.instBoundary, y.instBoundary) << "uop " << i;
        ASSERT_EQ(x.taken, y.taken) << "uop " << i;
        ASSERT_EQ(x.src1, y.src1) << "uop " << i;
        ASSERT_EQ(x.src2, y.src2) << "uop " << i;
        ASSERT_EQ(x.dst, y.dst) << "uop " << i;
    }
}

// --------------------------------------------------------------------
// Round trips
// --------------------------------------------------------------------

TEST(MtfRoundTrip, EverySuiteWorkloadSurvivesEncodeDecode)
{
    for (const auto &spec : workloadSuite()) {
        Trace t = generateWorkload(spec, 20000);
        Trace back = decodeAll(encodeToString(t));
        expectUopsEqual(t, back);
    }
}

TEST(MtfRoundTrip, HandAssembledCornerValuesSurvive)
{
    // Exercise the delta coder's edges: pc jumps backwards, 64-bit
    // wraparound deltas, every operand shape, all flags.
    std::vector<MicroOp> uops;
    MicroOp a;
    a.pc = 0xffffffffffffff00ull;
    a.type = UopType::Load;
    a.addr = 0xfffffffffffffff8ull;
    a.src1 = 0;
    a.dst = kNumRegs - 1;
    a.instBoundary = true;
    uops.push_back(a);
    MicroOp b;
    b.pc = 0; // maximal negative delta
    b.type = UopType::Branch;
    b.taken = true;
    b.instBoundary = true;
    uops.push_back(b);
    MicroOp c;
    c.pc = 0x400000;
    c.type = UopType::Store;
    c.addr = 0; // negative address delta
    c.src1 = 3;
    c.src2 = 7;
    uops.push_back(c);

    Trace t{std::move(uops)};
    Trace back = decodeAll(encodeToString(t));
    expectUopsEqual(t, back);
}

TEST(MtfRoundTrip, EmptyTraceIsAValidFile)
{
    std::string bytes = encodeToString(Trace{});
    EXPECT_EQ(bytes.size(), kMtfHeaderBytes + kMtfFooterBytes);
    MtfReader r;
    Status st = MtfReader::parse(bytes, r);
    ASSERT_TRUE(st.isOk()) << st.toString();
    EXPECT_EQ(r.uopCount(), 0u);
    MicroOp op;
    EXPECT_EQ(r.decode(&op, 1), 0u);
}

TEST(MtfRoundTrip, SaveLoadFileIsExact)
{
    Trace t = generateWorkload(suiteWorkload("ptr_chase"), 30000);
    std::string path = tmpPath("roundtrip.mtf");
    ASSERT_TRUE(saveMtf(t, path).isOk());
    Trace back;
    ASSERT_TRUE(loadMtfTrace(path, back).isOk());
    expectUopsEqual(t, back);
    std::remove(path.c_str());
}

TEST(MtfRoundTrip, InfoReportsCountsAndDensity)
{
    Trace t = generateWorkload(suiteWorkload("balanced_mix"), 10000);
    std::string bytes = encodeToString(t);
    MtfReader r;
    ASSERT_TRUE(MtfReader::parse(bytes, r).isOk());
    EXPECT_EQ(r.info().version, kMtfVersion);
    EXPECT_EQ(r.info().uopCount, t.size());
    EXPECT_EQ(r.info().fileBytes, bytes.size());
    EXPECT_EQ(r.info().recordBytes,
              bytes.size() - kMtfHeaderBytes - kMtfFooterBytes);
    EXPECT_GE(r.info().bytesPerUop(), 1.0 * kMtfMinRecordBytes);
}

// --------------------------------------------------------------------
// Headline parity: recorded trace -> profiler == in-memory profiling,
// sequentially and segment-parallel, bit for bit.
// --------------------------------------------------------------------

TEST(MtfIngestParity, ProfilingRecordedTracesIsBitIdentical)
{
    const char *names[] = {"balanced_mix", "ptr_chase",
                           "branchy"};
    for (const char *name : names) {
        SCOPED_TRACE(name);
        Trace t = generateWorkload(suiteWorkload(name), 120000);
        std::string path = tmpPath(std::string(name) + ".mtf");
        ASSERT_TRUE(saveMtf(t, path).isOk());

        ProfilerConfig cfg;
        cfg.name = name;
        Profile ref = profileTrace(t, cfg);

        std::unique_ptr<MtfTraceSource> src;
        ASSERT_TRUE(MtfTraceSource::open(path, src).isOk());
        EXPECT_EQ(src->sizeHint(), t.size());
        Profile seq = profileSource(*src, cfg);
        expectProfilesIdentical(seq, ref);

        std::unique_ptr<MtfTraceSource> src2;
        ASSERT_TRUE(MtfTraceSource::open(path, src2).isOk());
        ParallelProfileOptions popts;
        popts.threads = 4;
        Profile par = profileSourceParallel(*src2, cfg, popts);
        expectProfilesIdentical(par, ref);

        std::remove(path.c_str());
    }
}

TEST(MtfIngestParity, SampledConfigMatchesToo)
{
    // The sampled profiler buffers the whole stream internally; the
    // .mtf path must feed it identically.
    Trace t = generateWorkload(suiteWorkload("stream_add"), 200000);
    std::string bytes = encodeToString(t);
    MtfReader r;
    ASSERT_TRUE(MtfReader::parse(bytes, r).isOk());

    ProfilerConfig cfg;
    cfg.sampling = {1000, 10000};
    Profile ref = profileTrace(t, cfg);
    MtfTraceSource src(r);
    Profile got = profileSource(src, cfg);
    expectProfilesIdentical(got, ref);
}

// --------------------------------------------------------------------
// Streaming behavior
// --------------------------------------------------------------------

TEST(MtfStreaming, RaggedSpanSizesCoverTheWholeStream)
{
    Trace t = generateWorkload(suiteWorkload("balanced_mix"), 5000);
    std::string bytes = encodeToString(t);
    MtfReader r;
    ASSERT_TRUE(MtfReader::parse(bytes, r).isOk());

    // Odd, non-divisor span sizes, including 1.
    for (size_t span : {size_t(1), size_t(7), size_t(333), size_t(4999),
                        size_t(60000)}) {
        MtfTraceSource src(r);
        std::vector<MicroOp> got;
        uint64_t expectedBase = 0;
        for (;;) {
            TraceSegment seg = src.next(span);
            if (seg.size == 0)
                break;
            EXPECT_EQ(seg.baseUop, expectedBase);
            expectedBase += seg.size;
            got.insert(got.end(), seg.data, seg.data + seg.size);
        }
        expectUopsEqual(Trace(std::move(got)), t);

        // reset() must restart from the top.
        src.reset();
        TraceSegment seg = src.next(16);
        ASSERT_EQ(seg.size, 16u);
        EXPECT_EQ(seg.baseUop, 0u);
        EXPECT_EQ(seg.data[0].pc, t[0].pc);
    }
}

// --------------------------------------------------------------------
// .mtxt converter
// --------------------------------------------------------------------

TEST(MtfText, DumpThenConvertIsByteIdentical)
{
    Trace t = generateWorkload(suiteWorkload("mix_mid"), 15000);
    std::string path = tmpPath("text.mtf");
    ASSERT_TRUE(saveMtf(t, path).isOk());

    std::ostringstream text;
    ASSERT_TRUE(dumpMtfToText(path, text).isOk());

    std::istringstream in(text.str());
    std::ostringstream out;
    uint64_t uops = 0;
    ASSERT_TRUE(convertTextToMtf(in, out, uops).isOk());
    EXPECT_EQ(uops, t.size());

    std::ifstream orig(path, std::ios::binary);
    std::stringstream origBytes;
    origBytes << orig.rdbuf();
    EXPECT_EQ(out.str(), origBytes.str());
    std::remove(path.c_str());
}

TEST(MtfText, MalformedLinesAreStructuredErrorsWithLineNumbers)
{
    struct Bad {
        const char *text;
        const char *why;
    };
    const Bad bad[] = {
        {"", "empty input"},
        {"not-a-header\n", "bad magic"},
        {"mipp-mtxt 9\n", "version skew"},
        {"mipp-mtxt 1\nzzz load @0x10\n", "bad pc"},
        {"mipp-mtxt 1\n0x10\n", "missing type"},
        {"mipp-mtxt 1\n0x10 wibble\n", "unknown type"},
        {"mipp-mtxt 1\n0x10 load\n", "load without @addr"},
        {"mipp-mtxt 1\n0x10 ialu @0x20\n", "@addr on non-memory"},
        {"mipp-mtxt 1\n0x10 ialu t\n", "taken on non-branch"},
        {"mipp-mtxt 1\n0x10 ialu s1=99\n", "register out of range"},
        {"mipp-mtxt 1\n0x10 ialu frob=3\n", "unknown field"},
    };
    for (const Bad &b : bad) {
        std::istringstream in(b.text);
        std::ostringstream out;
        uint64_t uops = 0;
        Status st = convertTextToMtf(in, out, uops);
        EXPECT_EQ(st.code(), StatusCode::InvalidArgument) << b.why;
        EXPECT_FALSE(st.message().empty()) << b.why;
    }
}

TEST(MtfText, CommentsAndBlankLinesAreIgnored)
{
    std::istringstream in("mipp-mtxt 1\n"
                          "# a comment\n"
                          "\n"
                          "0x400000 load @0x1000 s1=2 d=3 i\n"
                          "0x400004 br t i\n");
    std::ostringstream out;
    uint64_t uops = 0;
    ASSERT_TRUE(convertTextToMtf(in, out, uops).isOk());
    EXPECT_EQ(uops, 2u);
    Trace t = decodeAll(out.str());
    EXPECT_EQ(t[0].type, UopType::Load);
    EXPECT_EQ(t[0].addr, 0x1000u);
    EXPECT_EQ(t[1].type, UopType::Branch);
    EXPECT_TRUE(t[1].taken);
}

// --------------------------------------------------------------------
// Hardened parsing: limits and the malformed corpus
// --------------------------------------------------------------------

TEST(MtfLimitsTest, OversizeCountAndBytesAreResourceExhausted)
{
    Trace t = generateWorkload(suiteWorkload("balanced_mix"), 2000);
    std::string bytes = encodeToString(t);

    MtfLimits tightBytes;
    tightBytes.maxBytes = 64;
    MtfReader r;
    EXPECT_EQ(MtfReader::parse(bytes, r, tightBytes).code(),
              StatusCode::ResourceExhausted);

    MtfLimits tightUops;
    tightUops.maxUops = 100;
    EXPECT_EQ(MtfReader::parse(bytes, r, tightUops).code(),
              StatusCode::ResourceExhausted);
}

/**
 * Table-driven sweep of the checked-in malformed corpus, mirroring
 * ProfileIoCorpus: every sample is rejected with the expected
 * structured code before any trusting allocation. The interesting
 * entries carry a *valid* (recomputed) checksum, so the structural
 * cross-checks themselves are exercised: count_inflated claims 4000
 * uops backed by ~30 record bytes, trailing_bytes claims fewer records
 * than present, bad_reg/bad_type/reserved_bits/overlong_varint/
 * missing_addr corrupt a record behind a good checksum.
 */
TEST(MtfCorpus, EverySampleIsAStructuredError)
{
    struct Sample {
        const char *file;
        StatusCode expect;
    };
    const Sample corpus[] = {
        {"truncated_header.mtf", StatusCode::Corrupt},
        {"truncated_footer.mtf", StatusCode::Corrupt},
        {"bitflip.mtf", StatusCode::Corrupt},
        {"count_inflated.mtf", StatusCode::Corrupt},
        {"version_skew.mtf", StatusCode::InvalidArgument},
        {"bad_magic.mtf", StatusCode::Corrupt},
        {"bad_flags.mtf", StatusCode::Corrupt},
        {"bad_header_bytes.mtf", StatusCode::Corrupt},
        {"bad_reg.mtf", StatusCode::Corrupt},
        {"bad_type.mtf", StatusCode::Corrupt},
        {"reserved_bits.mtf", StatusCode::Corrupt},
        {"trailing_bytes.mtf", StatusCode::Corrupt},
        {"overlong_varint.mtf", StatusCode::Corrupt},
        {"missing_addr.mtf", StatusCode::Corrupt},
        {"garbage.mtf", StatusCode::Corrupt},
    };
    for (const Sample &s : corpus) {
        std::string path =
            std::string(MIPP_TEST_CORPUS_DIR) + "/" + s.file;
        MtfReader r;
        Status st = MtfReader::open(path, r, {});
        EXPECT_EQ(st.code(), s.expect)
            << s.file << ": " << st.toString();
        EXPECT_FALSE(st.message().empty()) << s.file;

        // The TraceSource/materializing fronts surface the same code.
        std::unique_ptr<MtfTraceSource> src;
        EXPECT_EQ(MtfTraceSource::open(path, src).code(), s.expect)
            << s.file;
        EXPECT_EQ(src, nullptr) << s.file;
        Trace t;
        EXPECT_EQ(loadMtfTrace(path, t).code(), s.expect) << s.file;
    }
}

TEST(MtfCorpus, MissingFileIsInvalidArgument)
{
    MtfReader r;
    EXPECT_EQ(
        MtfReader::open("/nonexistent/nope.mtf", r, {}).code(),
        StatusCode::InvalidArgument);
}

TEST(MtfWriterTest, FinishTwiceIsInternalError)
{
    std::ostringstream os;
    MtfWriter w(os);
    ASSERT_TRUE(w.finish().isOk());
    EXPECT_EQ(w.finish().code(), StatusCode::Internal);
}

} // namespace
} // namespace mipp
