/**
 * @file
 * Tests for the structured error taxonomy: code/name mapping, Status
 * semantics, and the StatusError bridge that keeps legacy exception
 * handlers working.
 */

#include <gtest/gtest.h>

#include "util/status.hh"

namespace mipp {
namespace {

TEST(Status, DefaultIsOk)
{
    Status s;
    EXPECT_TRUE(s.isOk());
    EXPECT_TRUE(static_cast<bool>(s));
    EXPECT_EQ(s.code(), StatusCode::Ok);
    EXPECT_EQ(s.toString(), "Ok");
}

TEST(Status, FactoriesCarryCodeAndMessage)
{
    EXPECT_EQ(invalidArgument("x").code(), StatusCode::InvalidArgument);
    EXPECT_EQ(deadlineExceeded("x").code(), StatusCode::DeadlineExceeded);
    EXPECT_EQ(resourceExhausted("x").code(),
              StatusCode::ResourceExhausted);
    EXPECT_EQ(corrupt("x").code(), StatusCode::Corrupt);
    EXPECT_EQ(internalError("x").code(), StatusCode::Internal);

    Status s = corrupt("checksum mismatch");
    EXPECT_FALSE(s.isOk());
    EXPECT_EQ(s.message(), "checksum mismatch");
    EXPECT_EQ(s.toString(), "Corrupt: checksum mismatch");
}

TEST(Status, CodeNamesRoundTrip)
{
    for (StatusCode c :
         {StatusCode::Ok, StatusCode::InvalidArgument,
          StatusCode::DeadlineExceeded, StatusCode::ResourceExhausted,
          StatusCode::Corrupt, StatusCode::Internal})
        EXPECT_EQ(statusCodeFromName(statusCodeName(c)), c);
    // Unknown names are a library bug somewhere: map to Internal.
    EXPECT_EQ(statusCodeFromName("NoSuchCode"), StatusCode::Internal);
}

TEST(Status, ThrowIfErrorPassesOkAndThrowsOthers)
{
    EXPECT_NO_THROW(throwIfError(Status()));
    EXPECT_THROW(throwIfError(invalidArgument("bad")), StatusError);
}

TEST(Status, StatusErrorPreservesCodeAndIsARuntimeError)
{
    try {
        throw StatusError(resourceExhausted("queue full"));
    } catch (const std::runtime_error &e) {
        // Legacy handlers catch it as runtime_error...
        EXPECT_NE(std::string(e.what()).find("queue full"),
                  std::string::npos);
    }
    try {
        throw StatusError(corrupt("bad bytes"));
    } catch (const StatusError &e) {
        // ...new handlers recover the structured code.
        EXPECT_EQ(e.code(), StatusCode::Corrupt);
        EXPECT_EQ(e.status().message(), "bad bytes");
    }
}

} // namespace
} // namespace mipp
