/**
 * @file
 * Tests for the shared ThreadPool: full-range coverage with disjoint
 * chunks, degenerate inputs, nested calls, the shared instance, and
 * shutdown/cancellation behavior (clean destruction under sanitizers,
 * cooperative CancelToken observation mid-parallelForShared).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "util/cancel.hh"
#include "util/thread_pool.hh"

namespace mipp {
namespace {

TEST(ThreadPool, CoversRangeExactlyOnce)
{
    ThreadPool pool(4);
    constexpr size_t kN = 10000;
    std::vector<std::atomic<uint32_t>> hits(kN);
    pool.parallelFor(kN, 7, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i)
            hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < kN; ++i)
        ASSERT_EQ(hits[i].load(), 1u) << "index " << i;
}

TEST(ThreadPool, ZeroItemsIsANoop)
{
    ThreadPool pool(2);
    bool called = false;
    pool.parallelFor(0, 1, [&](size_t, size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleChunkRunsInline)
{
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    pool.parallelFor(5, 100, [&](size_t b, size_t e) {
        calls++;
        EXPECT_EQ(b, 0u);
        EXPECT_EQ(e, 5u);
    });
    EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, ZeroGrainIsTreatedAsOne)
{
    ThreadPool pool(2);
    std::atomic<size_t> total{0};
    pool.parallelFor(100, 0, [&](size_t b, size_t e) {
        total.fetch_add(e - b);
    });
    EXPECT_EQ(total.load(), 100u);
}

TEST(ThreadPool, SingleThreadPoolRunsEverythingInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.concurrency(), 1u);
    size_t total = 0; // no synchronization needed: caller-only
    pool.parallelFor(1000, 10, [&](size_t b, size_t e) {
        total += e - b;
    });
    EXPECT_EQ(total, 1000u);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock)
{
    ThreadPool pool(4);
    std::atomic<size_t> total{0};
    pool.parallelFor(16, 1, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i) {
            pool.parallelFor(8, 1, [&](size_t ib, size_t ie) {
                total.fetch_add(ie - ib);
            });
        }
    });
    EXPECT_EQ(total.load(), 16u * 8u);
}

TEST(ThreadPool, ExceptionPropagatesToCaller)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(100, 1,
                         [&](size_t b, size_t) {
                             if (b >= 40)
                                 throw std::runtime_error("boom");
                         }),
        std::runtime_error);
    // The pool must remain usable after a failed job.
    std::atomic<size_t> total{0};
    pool.parallelFor(50, 5, [&](size_t b, size_t e) {
        total.fetch_add(e - b);
    });
    EXPECT_EQ(total.load(), 50u);
}

TEST(ThreadPool, SharedInstanceIsStable)
{
    ThreadPool &a = ThreadPool::shared();
    ThreadPool &b = ThreadPool::shared();
    EXPECT_EQ(&a, &b);
    EXPECT_GE(a.concurrency(), 1u);
    std::atomic<size_t> total{0};
    a.parallelFor(257, 16, [&](size_t begin, size_t end) {
        total.fetch_add(end - begin);
    });
    EXPECT_EQ(total.load(), 257u);
}

TEST(ThreadPool, ReusableAcrossManyCalls)
{
    ThreadPool pool(3);
    for (int round = 0; round < 50; ++round) {
        std::atomic<size_t> total{0};
        pool.parallelFor(100, 9, [&](size_t b, size_t e) {
            total.fetch_add(e - b);
        });
        ASSERT_EQ(total.load(), 100u) << "round " << round;
    }
}

TEST(ThreadPoolShutdown, IdleDestructionJoinsWorkers)
{
    // Workers parked on the condition variable must wake and join
    // without ever running a task (leak-free under ASan).
    for (int i = 0; i < 8; ++i)
        ThreadPool pool(4);
}

TEST(ThreadPoolShutdown, DestructionRightAfterSlowWorkIsClean)
{
    std::atomic<size_t> total{0};
    {
        ThreadPool pool(4);
        pool.parallelFor(16, 1, [&](size_t b, size_t e) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            total.fetch_add(e - b);
        });
        // Queued helper lambdas have all completed by the time
        // parallelFor returns; the destructor must still cope with
        // immediately stopping workers that just went back to sleep.
    }
    EXPECT_EQ(total.load(), 16u);
}

TEST(ThreadPoolShutdown, ChurningPoolsUnderLoadDoesNotLeak)
{
    for (int round = 0; round < 20; ++round) {
        ThreadPool pool(3);
        std::atomic<size_t> total{0};
        pool.parallelFor(64, 4, [&](size_t b, size_t e) {
            total.fetch_add(e - b);
        });
        ASSERT_EQ(total.load(), 64u);
    }
}

TEST(ThreadPoolShutdown, DestructionAfterChunkExceptionIsClean)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(32, 1,
                                  [&](size_t b, size_t) {
                                      if (b == 0)
                                          throw std::runtime_error("x");
                                  }),
                 std::runtime_error);
    // Pool is still usable, then destroys cleanly.
    std::atomic<size_t> total{0};
    pool.parallelFor(8, 1,
                     [&](size_t b, size_t e) { total.fetch_add(e - b); });
    EXPECT_EQ(total.load(), 8u);
}

TEST(ThreadPoolCancel, TokenObservedMidParallelForShared)
{
    // The sweep-loop idiom: workers check the token per chunk AND per
    // item, so cancellation cuts a run short whatever the chunking —
    // including the single-core case where the whole range is one
    // inline chunk. Cancel fires from inside the loop after a few
    // items; most of the range must stay unprocessed.
    CancelToken tok = CancelToken::manual();
    std::atomic<size_t> processed{0};
    parallelForShared(10000, 0, [&](size_t b, size_t e) {
        if (tok.cancelled())
            return;
        for (size_t i = b; i < e; ++i) {
            if (tok.cancelled())
                return;
            if (processed.fetch_add(1) + 1 >= 8)
                tok.cancel();
        }
    });
    EXPECT_GE(processed.load(), 8u);
    EXPECT_LT(processed.load(), 10000u);
}

TEST(ThreadPoolCancel, PreCancelledTokenSkipsAllWork)
{
    CancelToken tok = CancelToken::manual();
    tok.cancel();
    std::atomic<size_t> processed{0};
    parallelForShared(1000, 0, [&](size_t b, size_t e) {
        if (tok.cancelled())
            return;
        processed.fetch_add(e - b);
    });
    EXPECT_EQ(processed.load(), 0u);
}

TEST(ThreadPoolCancel, DeadlineTokenExpiresDuringRun)
{
    CancelToken tok = CancelToken::withDeadlineMs(10);
    std::atomic<size_t> processed{0};
    parallelForShared(100000, 0, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i) {
            if (tok.cancelled())
                return;
            processed.fetch_add(1);
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
    });
    EXPECT_TRUE(tok.cancelled());
    EXPECT_LT(processed.load(), 100000u);
}

} // namespace
} // namespace mipp
