/**
 * @file
 * Tests for the shared ThreadPool: full-range coverage with disjoint
 * chunks, degenerate inputs, nested calls and the shared instance.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "util/thread_pool.hh"

namespace mipp {
namespace {

TEST(ThreadPool, CoversRangeExactlyOnce)
{
    ThreadPool pool(4);
    constexpr size_t kN = 10000;
    std::vector<std::atomic<uint32_t>> hits(kN);
    pool.parallelFor(kN, 7, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i)
            hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < kN; ++i)
        ASSERT_EQ(hits[i].load(), 1u) << "index " << i;
}

TEST(ThreadPool, ZeroItemsIsANoop)
{
    ThreadPool pool(2);
    bool called = false;
    pool.parallelFor(0, 1, [&](size_t, size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleChunkRunsInline)
{
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    pool.parallelFor(5, 100, [&](size_t b, size_t e) {
        calls++;
        EXPECT_EQ(b, 0u);
        EXPECT_EQ(e, 5u);
    });
    EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, ZeroGrainIsTreatedAsOne)
{
    ThreadPool pool(2);
    std::atomic<size_t> total{0};
    pool.parallelFor(100, 0, [&](size_t b, size_t e) {
        total.fetch_add(e - b);
    });
    EXPECT_EQ(total.load(), 100u);
}

TEST(ThreadPool, SingleThreadPoolRunsEverythingInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.concurrency(), 1u);
    size_t total = 0; // no synchronization needed: caller-only
    pool.parallelFor(1000, 10, [&](size_t b, size_t e) {
        total += e - b;
    });
    EXPECT_EQ(total, 1000u);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock)
{
    ThreadPool pool(4);
    std::atomic<size_t> total{0};
    pool.parallelFor(16, 1, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i) {
            pool.parallelFor(8, 1, [&](size_t ib, size_t ie) {
                total.fetch_add(ie - ib);
            });
        }
    });
    EXPECT_EQ(total.load(), 16u * 8u);
}

TEST(ThreadPool, ExceptionPropagatesToCaller)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(100, 1,
                         [&](size_t b, size_t) {
                             if (b >= 40)
                                 throw std::runtime_error("boom");
                         }),
        std::runtime_error);
    // The pool must remain usable after a failed job.
    std::atomic<size_t> total{0};
    pool.parallelFor(50, 5, [&](size_t b, size_t e) {
        total.fetch_add(e - b);
    });
    EXPECT_EQ(total.load(), 50u);
}

TEST(ThreadPool, SharedInstanceIsStable)
{
    ThreadPool &a = ThreadPool::shared();
    ThreadPool &b = ThreadPool::shared();
    EXPECT_EQ(&a, &b);
    EXPECT_GE(a.concurrency(), 1u);
    std::atomic<size_t> total{0};
    a.parallelFor(257, 16, [&](size_t begin, size_t end) {
        total.fetch_add(end - begin);
    });
    EXPECT_EQ(total.load(), 257u);
}

TEST(ThreadPool, ReusableAcrossManyCalls)
{
    ThreadPool pool(3);
    for (int round = 0; round < 50; ++round) {
        std::atomic<size_t> total{0};
        pool.parallelFor(100, 9, [&](size_t b, size_t e) {
            total.fetch_add(e - b);
        });
        ASSERT_EQ(total.load(), 100u) << "round " << round;
    }
}

} // namespace
} // namespace mipp
