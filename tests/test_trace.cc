/**
 * @file
 * Unit tests for the micro-op IR, trace container, sampling geometry and
 * the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <set>

#include "trace/rng.hh"
#include "trace/trace.hh"

namespace mipp {
namespace {

MicroOp
makeUop(UopType t, bool boundary = true)
{
    MicroOp op;
    op.type = t;
    op.instBoundary = boundary;
    return op;
}

TEST(MicroOp, LineAddressUsesLineSize)
{
    MicroOp op;
    op.addr = 3 * kLineSize + 7;
    EXPECT_EQ(op.lineAddr(), 3u);
}

TEST(MicroOp, IsMemoryCoversLoadAndStoreOnly)
{
    EXPECT_TRUE(isMemory(UopType::Load));
    EXPECT_TRUE(isMemory(UopType::Store));
    EXPECT_FALSE(isMemory(UopType::IntAlu));
    EXPECT_FALSE(isMemory(UopType::Branch));
    EXPECT_FALSE(isMemory(UopType::Move));
}

TEST(MicroOp, EveryTypeHasAName)
{
    for (int t = 0; t < kNumUopTypes; ++t) {
        auto name = uopTypeName(static_cast<UopType>(t));
        EXPECT_FALSE(name.empty());
        EXPECT_NE(name, "?");
    }
}

TEST(Trace, CountsInstructionsByBoundary)
{
    Trace t;
    t.push(makeUop(UopType::Load, true));
    t.push(makeUop(UopType::IntAlu, false));
    t.push(makeUop(UopType::IntAlu, true));
    EXPECT_EQ(t.size(), 3u);
    EXPECT_EQ(t.numInstructions(), 2u);
    EXPECT_DOUBLE_EQ(t.uopsPerInstruction(), 1.5);
}

TEST(Trace, TypeCountsAndFractions)
{
    Trace t;
    for (int i = 0; i < 6; ++i)
        t.push(makeUop(UopType::IntAlu));
    for (int i = 0; i < 2; ++i)
        t.push(makeUop(UopType::Load));
    auto counts = t.typeCounts();
    EXPECT_EQ(counts[static_cast<int>(UopType::IntAlu)], 6u);
    EXPECT_EQ(counts[static_cast<int>(UopType::Load)], 2u);
    EXPECT_DOUBLE_EQ(t.typeFraction(UopType::Load), 0.25);
    EXPECT_DOUBLE_EQ(t.typeFraction(UopType::Store), 0.0);
}

TEST(Trace, EmptyTraceEdgeCases)
{
    Trace t;
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.numInstructions(), 0u);
    EXPECT_DOUBLE_EQ(t.uopsPerInstruction(), 0.0);
    EXPECT_DOUBLE_EQ(t.typeFraction(UopType::Load), 0.0);
}

TEST(SamplingConfig, MicroTraceMembership)
{
    SamplingConfig s{1000, 20000};
    EXPECT_TRUE(s.sampled());
    EXPECT_DOUBLE_EQ(s.sampleRate(), 0.05);
    EXPECT_TRUE(s.inMicroTrace(0));
    EXPECT_TRUE(s.inMicroTrace(999));
    EXPECT_FALSE(s.inMicroTrace(1000));
    EXPECT_FALSE(s.inMicroTrace(19999));
    EXPECT_TRUE(s.inMicroTrace(20000));
    EXPECT_TRUE(s.inMicroTrace(20999));
}

TEST(SamplingConfig, FullProfilingEverythingInside)
{
    SamplingConfig s = SamplingConfig::full();
    EXPECT_FALSE(s.sampled());
    for (size_t i = 0; i < 100; ++i)
        EXPECT_TRUE(s.inMicroTrace(i));
}

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(9);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        uint64_t v = r.below(17);
        ASSERT_LT(v, 17u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 17u); // all residues hit
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(11);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, GeometricMeanMatches)
{
    Rng r(13);
    double sum = 0;
    const double p = 0.5;
    for (int i = 0; i < 20000; ++i)
        sum += r.geometric(p, 100);
    // Mean of geometric (failures before success) is (1-p)/p = 1.
    EXPECT_NEAR(sum / 20000, 1.0, 0.05);
}

} // namespace
} // namespace mipp
