/**
 * @file
 * Tests for the suite-wide accuracy-validation harness: grid presets,
 * internal-consistency checkers, the end-to-end run, JSON serialization
 * and the golden-baseline regression gate.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "util/status.hh"
#include "validate/accuracy.hh"

namespace mipp {
namespace {

TEST(AccuracyGrid, PresetsHaveExpectedShapes)
{
    EXPECT_EQ(accuracyGrid("ci").size(), 2u);
    EXPECT_GE(accuracyGrid("default").size(), 5u);
    EXPECT_EQ(accuracyGrid("wide").size(), 27u);
    EXPECT_THROW(accuracyGrid("nope"), StatusError);
}

TEST(AccuracyGrid, DefaultGridIncludesPrefetcherPoint)
{
    bool pf = false;
    for (const auto &c : accuracyGrid("default"))
        pf |= c.prefetcherEnabled;
    EXPECT_TRUE(pf);
}

TEST(SimConsistency, CleanResultPasses)
{
    SimResult sim; // all zero: every invariant trivially holds
    EXPECT_TRUE(checkSimConsistency(sim, 0.01).empty());
}

TEST(SimConsistency, CatchesStackCyclesMismatch)
{
    SimResult sim;
    sim.cycles = 1000;
    sim.activity.cycles = 1000;
    sim.stack.base = 600; // 40% of the cycles unattributed
    auto v = checkSimConsistency(sim, 0.01);
    ASSERT_FALSE(v.empty());
    EXPECT_NE(v[0].find("CpiStack"), std::string::npos);
}

TEST(SimConsistency, CatchesBrokenAccessChaining)
{
    SimResult sim;
    sim.mem.l1d.loadAccesses = 10;
    sim.mem.l1d.loadMisses = 4;
    sim.mem.l2.loadAccesses = 3; // must equal the 4 L1 misses
    sim.activity.l1dAccesses = 10;
    sim.activity.l2Accesses = 3;
    auto v = checkSimConsistency(sim, 0.01);
    bool found = false;
    for (const auto &s : v)
        found |= s.find("L2 accesses") != std::string::npos;
    EXPECT_TRUE(found);
}

TEST(SimConsistency, CatchesUnaccountedPrefetchTraffic)
{
    // The exact shape of the pre-fix bug: an issued prefetch whose DRAM
    // fetch never showed up in dramAccesses.
    SimResult sim;
    sim.mem.prefetchesIssued = 5;
    sim.mem.dramAccesses = 0;
    auto v = checkSimConsistency(sim, 0.01);
    bool found = false;
    for (const auto &s : v)
        found |= s.find("DRAM accesses") != std::string::npos;
    EXPECT_TRUE(found);
}

TEST(ModelConsistency, CatchesStackMismatchAndNonMonotonicMisses)
{
    ModelResult m;
    m.cycles = 100;
    m.stack.base = 50;
    m.loadMissesL1 = 1;
    m.loadMissesL2 = 2; // more misses at the larger cache: impossible
    auto v = checkModelConsistency(m, 0.01);
    bool stack = false, mono = false;
    for (const auto &s : v) {
        stack |= s.find("CpiStack") != std::string::npos;
        mono |= s.find("non-monotonic") != std::string::npos;
    }
    EXPECT_TRUE(stack);
    EXPECT_TRUE(mono);
}

class AccuracyRun : public ::testing::Test
{
  protected:
    static const AccuracyReport &
    report()
    {
        // One shared small run: 3 contrasting workloads, the CI grid.
        static AccuracyReport rep = [] {
            AccuracyOptions opts;
            opts.grid = accuracyGrid("ci");
            opts.uops = 20000;
            opts.includePhased = false;
            opts.workloads = {"loopy_small", "stream_add", "branchy"};
            return runAccuracy(opts);
        }();
        return rep;
    }
};

TEST_F(AccuracyRun, BothSidesInternallyConsistent)
{
    const AccuracyReport &rep = report();
    EXPECT_TRUE(rep.consistent()) << rep.violations.size()
                                  << " violations, first: "
                                  << rep.violations.front();
}

TEST_F(AccuracyRun, CoversEveryWorkloadConfigPair)
{
    const AccuracyReport &rep = report();
    EXPECT_EQ(rep.workloadNames.size(), 3u);
    EXPECT_EQ(rep.gridNames.size(), 2u);
    ASSERT_EQ(rep.points.size(), 6u);
    for (const auto &p : rep.points) {
        EXPECT_GT(p.simCpi, 0) << p.workload;
        EXPECT_GT(p.modelCpi, 0) << p.workload;
        EXPECT_GT(p.simWatts, 0) << p.workload;
        EXPECT_GT(p.modelWatts, 0) << p.workload;
        for (double e : p.err)
            EXPECT_TRUE(std::isfinite(e)) << p.workload;
        // Stacks are per-uop: they must rebuild each side's CPI.
        EXPECT_NEAR(p.simStack.total(), p.simCpi, 0.01 * p.simCpi);
        EXPECT_NEAR(p.modelStack.total(), p.modelCpi,
                    0.01 * std::max(p.modelCpi, 1e-9));
    }
}

TEST_F(AccuracyRun, SummariesAggregateThePoints)
{
    const AccuracyReport &rep = report();
    const MetricSummary &cpi = rep.of(AccuracyMetric::Cpi);
    EXPECT_GE(cpi.mape, 0);
    EXPECT_GE(cpi.maxAbs, cpi.mape);
    EXPECT_LE(std::abs(cpi.meanSigned), cpi.mape + 1e-9);
    double sum = 0;
    for (const auto &p : rep.points)
        sum += std::abs(p.err[static_cast<size_t>(AccuracyMetric::Cpi)]);
    EXPECT_NEAR(cpi.mape, sum / rep.points.size(), 1e-9);
}

TEST_F(AccuracyRun, PhasedWorkloadsRunThroughTheHarness)
{
    AccuracyOptions opts;
    opts.grid = {CoreConfig::nehalemReference()};
    opts.uops = 8000;
    opts.workloads = {"phase_branch_shift"};
    AccuracyReport rep = runAccuracy(opts);
    ASSERT_EQ(rep.points.size(), 1u);
    EXPECT_EQ(rep.points[0].workload, "phase_branch_shift");
    EXPECT_TRUE(rep.consistent()) << rep.violations.front();
}

TEST_F(AccuracyRun, JsonRoundTripsSummaryMapes)
{
    const AccuracyReport &rep = report();
    std::string path = ::testing::TempDir() + "mipp_accuracy_test.json";
    ASSERT_TRUE(writeAccuracyJson(rep, path));

    auto mapes = loadBaselineMapes(path);
    ASSERT_EQ(mapes.size(), kNumAccuracyMetrics);
    for (size_t k = 0; k < kNumAccuracyMetrics; ++k) {
        auto m = static_cast<AccuracyMetric>(k);
        std::string name(accuracyMetricName(m));
        ASSERT_TRUE(mapes.count(name)) << name;
        EXPECT_NEAR(mapes[name], rep.of(m).mape,
                    1e-6 * std::max(1.0, rep.of(m).mape))
            << name;
    }
    std::remove(path.c_str());
}

TEST_F(AccuracyRun, BaselineGatePassesAgainstItselfAndCatchesRegression)
{
    const AccuracyReport &rep = report();
    std::string path = ::testing::TempDir() + "mipp_accuracy_golden.json";
    ASSERT_TRUE(writeAccuracyJson(rep, path));

    // Same report vs its own golden: no regression at any margin.
    EXPECT_TRUE(compareToBaseline(rep, path, 0.5).empty());

    // A golden claiming near-zero error everywhere: the fresh report
    // must trip the gate on at least the CPI metric.
    std::ofstream tight(path);
    tight << "{\"summary\": {\"cpi\": {\"mape\": 0.0}},"
          << " \"violations\": []}";
    tight.close();
    auto regressions = compareToBaseline(rep, path, 0.5);
    ASSERT_FALSE(regressions.empty());
    EXPECT_NE(regressions[0].find("cpi"), std::string::npos);
    std::remove(path.c_str());
}

TEST(AccuracyFilter, UnmatchedWorkloadNameThrows)
{
    AccuracyOptions opts;
    opts.grid = accuracyGrid("ci");
    opts.uops = 2000;
    opts.workloads = {"stream_ad"}; // typo: must not yield an empty run
    EXPECT_THROW(runAccuracy(opts), StatusError);

    // A phased name with phased workloads excluded matches nothing.
    AccuracyOptions noPhased;
    noPhased.grid = accuracyGrid("ci");
    noPhased.uops = 2000;
    noPhased.includePhased = false;
    noPhased.workloads = {"phase_branch_shift"};
    EXPECT_THROW(runAccuracy(noPhased), StatusError);
}

TEST_F(AccuracyRun, BaselineGateRejectsMismatchedWorkloadSet)
{
    const AccuracyReport &rep = report();
    AccuracyReport other = rep;
    other.workloadNames.pop_back(); // golden covers fewer workloads
    std::string path = ::testing::TempDir() + "mipp_accuracy_wl.json";
    ASSERT_TRUE(writeAccuracyJson(other, path));
    auto fails = compareToBaseline(rep, path, 100.0);
    ASSERT_FALSE(fails.empty());
    EXPECT_NE(fails[0].find("workload set"), std::string::npos);
    std::remove(path.c_str());
}

TEST_F(AccuracyRun, BaselineGateRejectsMismatchedProvenance)
{
    const AccuracyReport &rep = report();
    AccuracyReport other = rep;
    other.uops = rep.uops * 2; // golden recorded at a different length
    std::string path = ::testing::TempDir() + "mipp_accuracy_prov.json";
    ASSERT_TRUE(writeAccuracyJson(other, path));
    auto fails = compareToBaseline(rep, path, 100.0);
    ASSERT_FALSE(fails.empty());
    EXPECT_NE(fails[0].find("uops"), std::string::npos);
    std::remove(path.c_str());
}

TEST(AccuracyBaseline, MissingFileThrows)
{
    EXPECT_THROW(loadBaselineMapes("/nonexistent/file.json"),
                 std::runtime_error);
}

} // namespace
} // namespace mipp
