/**
 * @file
 * Tests for scoped-span tracing: recorder install/uninstall, span
 * nesting, trace-id propagation across TraceIdScope, ring-buffer wrap
 * accounting, and the Chrome trace-event JSON export (validated with
 * the repo's own strict JSON parser).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hh"
#include "util/json.hh"

namespace mipp {
namespace {

using obs::SpanEvent;
using obs::SpanRecorder;
using obs::TraceIdScope;

class ObsTrace : public ::testing::Test
{
  protected:
    // Every test leaves the process untraced (other suites rely on the
    // disabled fast path).
    void TearDown() override { SpanRecorder::uninstall(); }
};

std::vector<SpanEvent>
named(const std::vector<SpanEvent> &evs, const char *name)
{
    std::vector<SpanEvent> out;
    for (const SpanEvent &e : evs)
        if (e.name && std::string(e.name) == name)
            out.push_back(e);
    return out;
}

TEST_F(ObsTrace, DisabledPathRecordsNothing)
{
    ASSERT_EQ(SpanRecorder::current(), nullptr);
    {
        MIPP_SPAN("t.disabled");
    }
    SpanRecorder rec;
    rec.install();
    EXPECT_TRUE(rec.snapshot().empty()); // nothing from before install
}

TEST_F(ObsTrace, SpansRecordNameAndDuration)
{
    SpanRecorder rec;
    rec.install();
    {
        MIPP_SPAN("t.outer");
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    SpanRecorder::uninstall();

    auto outer = named(rec.snapshot(), "t.outer");
    ASSERT_EQ(outer.size(), 1u);
    EXPECT_GE(outer[0].durNs, 1000000u); // slept >= 1 ms
    EXPECT_GT(outer[0].tid, 0u);
}

TEST_F(ObsTrace, NestingContainsInnerWithinOuter)
{
    SpanRecorder rec;
    rec.install();
    {
        MIPP_SPAN("t.outer");
        {
            MIPP_SPAN("t.inner");
        }
    }
    auto evs = rec.snapshot();
    auto outer = named(evs, "t.outer");
    auto inner = named(evs, "t.inner");
    ASSERT_EQ(outer.size(), 1u);
    ASSERT_EQ(inner.size(), 1u);
    // Inner closes first (recorded first) and lies within the outer
    // interval.
    EXPECT_GE(inner[0].startNs, outer[0].startNs);
    EXPECT_LE(inner[0].startNs + inner[0].durNs,
              outer[0].startNs + outer[0].durNs);
}

TEST_F(ObsTrace, TraceIdPropagatesAndRestores)
{
    EXPECT_EQ(obs::currentTraceId(), 0u);
    uint64_t a = obs::newTraceId();
    uint64_t b = obs::newTraceId();
    EXPECT_NE(a, 0u);
    EXPECT_NE(a, b);

    SpanRecorder rec;
    rec.install();
    {
        TraceIdScope sa(a);
        EXPECT_EQ(obs::currentTraceId(), a);
        MIPP_SPAN("t.req_a");
        {
            TraceIdScope sb(b); // nested scope overrides...
            MIPP_SPAN("t.req_b");
        }
        EXPECT_EQ(obs::currentTraceId(), a); // ...and restores
    }
    EXPECT_EQ(obs::currentTraceId(), 0u);

    auto evs = rec.snapshot();
    ASSERT_EQ(named(evs, "t.req_a").size(), 1u);
    ASSERT_EQ(named(evs, "t.req_b").size(), 1u);
    EXPECT_EQ(named(evs, "t.req_a")[0].traceId, a);
    EXPECT_EQ(named(evs, "t.req_b")[0].traceId, b);
}

TEST_F(ObsTrace, TraceIdIsPerThread)
{
    TraceIdScope scope(obs::newTraceId());
    uint64_t other = 1;
    std::thread t([&] { other = obs::currentTraceId(); });
    t.join();
    EXPECT_EQ(other, 0u); // ids do not leak across threads
}

TEST_F(ObsTrace, RingWrapKeepsNewestAndCountsDropped)
{
    SpanRecorder rec(8);
    rec.install();
    for (int i = 0; i < 20; ++i) {
        MIPP_SPAN("t.wrap");
    }
    auto evs = rec.snapshot();
    EXPECT_EQ(evs.size(), 8u);
    EXPECT_EQ(rec.dropped(), 12u);
    // Oldest-first ordering within the retained window.
    for (size_t i = 1; i < evs.size(); ++i)
        EXPECT_GE(evs[i].startNs, evs[i - 1].startNs);
}

TEST_F(ObsTrace, RecordSpanHonorsInstallState)
{
    SpanRecorder rec;
    obs::recordSpan("t.before", 1, 0, 10); // no recorder: dropped
    rec.install();
    obs::recordSpan("t.after", 2, 5, 10);
    EXPECT_TRUE(named(rec.snapshot(), "t.before").empty());
    auto after = named(rec.snapshot(), "t.after");
    ASSERT_EQ(after.size(), 1u);
    EXPECT_EQ(after[0].traceId, 2u);
    EXPECT_EQ(after[0].startNs, 5u);
    EXPECT_EQ(after[0].durNs, 10u);
}

TEST_F(ObsTrace, SpanFeedsHistogramWithoutRecorder)
{
    // The serve per-op latency path: histograms fill even untraced.
    ASSERT_EQ(SpanRecorder::current(), nullptr);
    obs::LatencyHistogram h;
    {
        MIPP_SPAN("t.hist", &h);
    }
    EXPECT_EQ(h.count(), 1u);
}

TEST_F(ObsTrace, ChromeTraceExportIsValidJson)
{
    SpanRecorder rec;
    rec.install();
    uint64_t id = obs::newTraceId();
    {
        TraceIdScope scope(id);
        MIPP_SPAN("t.export_outer");
        MIPP_SPAN("t.export_inner");
    }
    SpanRecorder::uninstall();

    std::ostringstream os;
    rec.writeChromeTrace(os);
    json::Value doc;
    Status st = json::parse(os.str(), doc);
    ASSERT_TRUE(st.isOk()) << st.toString() << " in: " << os.str();
    EXPECT_EQ(doc.stringOr("displayTimeUnit", ""), "ms");

    auto events = doc["traceEvents"].array();
    ASSERT_EQ(events.size(), 2u);
    std::vector<std::string> names;
    for (const json::Value &ev : events) {
        names.push_back(ev.stringOr("name", ""));
        EXPECT_EQ(ev.stringOr("ph", ""), "X");
        EXPECT_EQ(ev.stringOr("cat", ""), "mipp");
        EXPECT_GE(ev.numberOr("ts", -1), 0.0);
        EXPECT_GE(ev.numberOr("dur", -1), 0.0);
        EXPECT_DOUBLE_EQ(ev["args"].numberOr("trace_id", 0),
                         static_cast<double>(id));
    }
    EXPECT_NE(std::find(names.begin(), names.end(), "t.export_outer"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "t.export_inner"),
              names.end());
}

} // namespace
} // namespace mipp
