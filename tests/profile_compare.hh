/**
 * @file
 * Exact Profile comparison helpers shared by the profiler parity suites
 * (sequential vs. reference, parallel vs. sequential). Every statistic
 * is compared exactly, including floating-point accumulators — the
 * implementations under test sum in deterministic orders that are
 * arithmetically identical.
 */

#ifndef MIPP_TESTS_PROFILE_COMPARE_HH
#define MIPP_TESTS_PROFILE_COMPARE_HH

#include <gtest/gtest.h>

#include <algorithm>

#include "profiler/profile.hh"

namespace mipp {

inline void
expectHistogramsEqual(const LogHistogram &a, const LogHistogram &b,
                      const char *what)
{
    EXPECT_EQ(a.numBins(), b.numBins()) << what;
    EXPECT_EQ(a.total(), b.total()) << what;
    EXPECT_EQ(a.finiteTotal(), b.finiteTotal()) << what;
    EXPECT_EQ(a.infiniteCount(), b.infiniteCount()) << what;
    size_t n = std::max(a.numBins(), b.numBins());
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(a.binCount(i), b.binCount(i)) << what << " bin " << i;
}

inline void
expectProfilesIdentical(const Profile &opt, const Profile &ref)
{
    EXPECT_EQ(opt.totalUops, ref.totalUops);
    EXPECT_EQ(opt.profiledUops, ref.profiledUops);
    EXPECT_EQ(opt.profiledInsts, ref.profiledInsts);
    EXPECT_EQ(opt.uopCounts, ref.uopCounts);
    EXPECT_EQ(opt.srcOperands, ref.srcOperands);
    EXPECT_EQ(opt.dstOperands, ref.dstOperands);
    EXPECT_EQ(opt.robSizes, ref.robSizes);

    for (size_t i = 0; i < opt.robSizes.size(); ++i) {
        auto a = opt.chains.exportRow(i);
        auto b = ref.chains.exportRow(i);
        EXPECT_EQ(a.apSum, b.apSum) << "chains row " << i;
        EXPECT_EQ(a.abpSum, b.abpSum) << "chains row " << i;
        EXPECT_EQ(a.cpSum, b.cpSum) << "chains row " << i;
        EXPECT_EQ(a.weight, b.weight) << "chains row " << i;
        EXPECT_EQ(a.abpWeight, b.abpWeight) << "chains row " << i;
    }

    EXPECT_EQ(opt.loadDeps.histo, ref.loadDeps.histo);
    EXPECT_EQ(opt.loadDeps.loads, ref.loadDeps.loads);
    EXPECT_EQ(opt.loadDeps.windows, ref.loadDeps.windows);
    EXPECT_EQ(opt.loadDeps.independentLoads, ref.loadDeps.independentLoads);

    EXPECT_EQ(opt.branch.branches, ref.branch.branches);
    EXPECT_EQ(opt.branch.entropySum, ref.branch.entropySum);
    EXPECT_EQ(opt.branch.staticBranches, ref.branch.staticBranches);

    EXPECT_EQ(opt.cold.coldLoadMisses, ref.cold.coldLoadMisses);
    EXPECT_EQ(opt.cold.windowsWithCold, ref.cold.windowsWithCold);
    EXPECT_EQ(opt.cold.coldInWindows, ref.cold.coldInWindows);
    EXPECT_EQ(opt.cold.totalWindows, ref.cold.totalWindows);

    expectHistogramsEqual(opt.reuseLoads, ref.reuseLoads, "reuseLoads");
    expectHistogramsEqual(opt.reuseStores, ref.reuseStores, "reuseStores");
    expectHistogramsEqual(opt.reuseAll, ref.reuseAll, "reuseAll");
    expectHistogramsEqual(opt.reuseInsts, ref.reuseInsts, "reuseInsts");

    ASSERT_EQ(opt.memOps.size(), ref.memOps.size());
    for (size_t i = 0; i < opt.memOps.size(); ++i) {
        const auto &a = opt.memOps[i];
        const auto &b = ref.memOps[i];
        EXPECT_EQ(a.pc, b.pc) << "op " << i;
        EXPECT_EQ(a.isStore, b.isStore) << "op " << i;
        EXPECT_EQ(a.count, b.count) << "op " << i;
        expectHistogramsEqual(a.reuse, b.reuse, "op reuse");
        EXPECT_EQ(a.strides, b.strides) << "op " << i;
        EXPECT_EQ(a.firstPosSum, b.firstPosSum) << "op " << i;
        EXPECT_EQ(a.gapSum, b.gapSum) << "op " << i;
        EXPECT_EQ(a.gapCount, b.gapCount) << "op " << i;
        EXPECT_EQ(a.microTraces, b.microTraces) << "op " << i;
        EXPECT_EQ(a.loadDepthSum, b.loadDepthSum) << "op " << i;
        EXPECT_EQ(a.loadDepthCount, b.loadDepthCount) << "op " << i;
        EXPECT_EQ(a.selfDependent, b.selfDependent) << "op " << i;
    }

    ASSERT_EQ(opt.windows.size(), ref.windows.size());
    for (size_t w = 0; w < opt.windows.size(); ++w) {
        const auto &a = opt.windows[w];
        const auto &b = ref.windows[w];
        EXPECT_EQ(a.uopCounts, b.uopCounts) << "window " << w;
        EXPECT_EQ(a.insts, b.insts) << "window " << w;
        EXPECT_EQ(a.ap, b.ap) << "window " << w;
        EXPECT_EQ(a.abp, b.abp) << "window " << w;
        EXPECT_EQ(a.cp, b.cp) << "window " << w;
        EXPECT_EQ(a.branchEntropy, b.branchEntropy) << "window " << w;
        EXPECT_EQ(a.branches, b.branches) << "window " << w;
        EXPECT_EQ(a.memCounts, b.memCounts) << "window " << w;
        EXPECT_EQ(a.coldMisses, b.coldMisses) << "window " << w;
    }
}

} // namespace mipp

#endif // MIPP_TESTS_PROFILE_COMPARE_HH
