/**
 * @file
 * Tests for the analytical model: dispatch limits (incl. the Table 3.1
 * worked examples), branch modeling, MLP models and the interval model's
 * behavioural properties.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "model/interval_model.hh"
#include "profiler/profiler.hh"
#include "uarch/design_space.hh"
#include "workloads/workload.hh"

namespace mipp {
namespace {

/** Nehalem-like config with the latencies of the Table 3.1 examples. */
CoreConfig
table31Config()
{
    CoreConfig cfg = CoreConfig::nehalemReference();
    cfg.robSize = 64;
    cfg.lat.of(UopType::Load) = 2;
    cfg.lat.of(UopType::Store) = 2;
    cfg.lat.of(UopType::IntAlu) = 1;
    cfg.lat.of(UopType::FpMul) = 5;
    cfg.lat.of(UopType::IntDiv) = 5;
    cfg.lat.of(UopType::Branch) = 1;
    return cfg;
}

std::array<double, kNumUopTypes>
counts(std::initializer_list<std::pair<UopType, double>> list)
{
    std::array<double, kNumUopTypes> c{};
    for (const auto &[t, n] : list)
        c[static_cast<int>(t)] = n;
    return c;
}

TEST(DispatchModel, Table31FirstMixLoadPortLimited)
{
    // Thesis Table 3.1 / Eq 3.11: 40 loads on a single load port limit
    // the effective dispatch rate to 100/40 = 2.5 (CP term: 64/(2*8)=4).
    auto mix = counts({{UopType::Load, 40},
                       {UopType::Store, 20},
                       {UopType::IntAlu, 20},
                       {UopType::FpMul, 10},
                       {UopType::Branch, 10}});
    auto lim = dispatchLimits(mix, 8.0, 2.0, table31Config());
    EXPECT_DOUBLE_EQ(lim.width, 4.0);
    EXPECT_DOUBLE_EQ(lim.dependences, 4.0);
    EXPECT_DOUBLE_EQ(lim.ports, 2.5);
    EXPECT_DOUBLE_EQ(lim.effective(), 2.5);
    EXPECT_STREQ(lim.binding(), "port");
}

TEST(DispatchModel, Table31SecondMixDividerLimited)
{
    // Thesis Eq 3.12: swapping the FP multiplies for 10 divides on the
    // non-pipelined 5-cycle divider limits Deff to 100/(10*5) = 2.
    auto mix = counts({{UopType::Load, 40},
                       {UopType::Store, 20},
                       {UopType::IntAlu, 20},
                       {UopType::IntDiv, 10},
                       {UopType::Branch, 10}});
    auto lim = dispatchLimits(mix, 8.0, 2.0, table31Config());
    EXPECT_DOUBLE_EQ(lim.fus, 2.0);
    EXPECT_DOUBLE_EQ(lim.effective(), 2.0);
    EXPECT_STREQ(lim.binding(), "fu");
}

TEST(DispatchModel, BalancedMixReachesWidth)
{
    // A mix that spreads over all six ports sustains the full width.
    auto mix = counts({{UopType::IntAlu, 30},
                       {UopType::Move, 20},
                       {UopType::Branch, 10},
                       {UopType::Load, 25},
                       {UopType::Store, 15}});
    auto lim =
        dispatchLimits(mix, 2.0, 1.0, CoreConfig::nehalemReference());
    EXPECT_DOUBLE_EQ(lim.effective(), 4.0);
    EXPECT_STREQ(lim.binding(), "dispatch");
}

TEST(DispatchModel, PureAluMixIsPortLimitedOnThreePorts)
{
    // 100 % ALU-class uops over three ALU-capable ports: 3 uops/cycle.
    auto mix = counts({{UopType::IntAlu, 50},
                       {UopType::Move, 30},
                       {UopType::Branch, 20}});
    auto lim =
        dispatchLimits(mix, 2.0, 1.0, CoreConfig::nehalemReference());
    EXPECT_NEAR(lim.ports, 3.0, 0.01);
    EXPECT_STREQ(lim.binding(), "port");
}

TEST(DispatchModel, DeepChainsLimitViaLittlesLaw)
{
    auto mix = counts({{UopType::IntAlu, 100}});
    // CP 32 at ROB 128, latency 1: 128/32 = 4 ... CP 64 -> 2.
    auto lim =
        dispatchLimits(mix, 64.0, 1.0, CoreConfig::nehalemReference());
    EXPECT_DOUBLE_EQ(lim.dependences, 2.0);
    EXPECT_DOUBLE_EQ(lim.effective(), 2.0);
}

TEST(DispatchModel, PortScheduleBalancesMultiPortTypes)
{
    CoreConfig cfg = CoreConfig::nehalemReference();
    auto mix = counts({{UopType::IntAlu, 90}});
    auto activity = schedulePorts(mix, cfg);
    // Three ALU-capable ports: each should get ~30.
    double maxAct = 0;
    for (double a : activity)
        maxAct = std::max(maxAct, a);
    EXPECT_NEAR(maxAct, 30.0, 1.0);
}

TEST(DispatchModel, SinglePortTypesScheduledFirst)
{
    CoreConfig cfg = CoreConfig::nehalemReference();
    // Loads are single-port; ALUs can move elsewhere.
    auto mix = counts({{UopType::Load, 40}, {UopType::IntAlu, 60}});
    auto activity = schedulePorts(mix, cfg);
    double maxAct = 0;
    for (double a : activity)
        maxAct = std::max(maxAct, a);
    EXPECT_NEAR(maxAct, 40.0, 1.0); // the load port, not load+alu
}

TEST(BranchModel, MissRateClampedToUnitInterval)
{
    BranchMissModel m{BranchPredictorKind::GShare, 2.0, -0.5};
    EXPECT_DOUBLE_EQ(m.missRate(0.0), 0.0);
    EXPECT_DOUBLE_EQ(m.missRate(1.0), 1.0);
    EXPECT_NEAR(m.missRate(0.3), 0.1, 1e-12);
}

TEST(BranchModel, TrainerRecoversLinearRelation)
{
    EntropyFitTrainer tr;
    for (double e = 0; e <= 1.0; e += 0.05)
        tr.add(e, 0.6 * e + 0.02);
    auto m = tr.fit(BranchPredictorKind::GShare);
    EXPECT_NEAR(m.slope, 0.6, 1e-9);
    EXPECT_NEAR(m.intercept, 0.02, 1e-9);
    EXPECT_NEAR(tr.r2(), 1.0, 1e-9);
}

TEST(BranchModel, PretrainedFitsExistForAllKinds)
{
    for (int k = 0; k < static_cast<int>(BranchPredictorKind::NumKinds);
         ++k) {
        auto m = BranchMissModel::pretrained(
            static_cast<BranchPredictorKind>(k));
        // Piecewise fits may be flat below the knee (slope == 0), but
        // must never decrease and must rise above the knee.
        EXPECT_GE(m.slope, 0.0);
        EXPECT_GT(m.slope + m.kneeSlope, 0.0);
        EXPECT_GT(m.missRate(1.0), 0.3);
        EXPECT_LT(m.missRate(0.05), 0.15);
    }
}

TEST(BranchModel, ResolutionTimeGrowsWithChainDepth)
{
    CoreConfig cfg = CoreConfig::nehalemReference();
    DependenceChains shallow({64, 128});
    DependenceChains deep({64, 128});
    for (size_t i = 0; i < 2; ++i) {
        shallow.addSample(i, 2.0, 2.0, true, 4.0);
        deep.addSample(i, 8.0, 12.0, true, 20.0);
    }
    double fast = branchResolutionTime(shallow, cfg, 1.0, 500);
    double slow = branchResolutionTime(deep, cfg, 1.0, 500);
    EXPECT_GT(slow, fast);
    EXPECT_GE(fast, 1.0);
}

TEST(MlpModel, MshrCapBounds)
{
    EXPECT_DOUBLE_EQ(mshrCappedMlp(5.0, 5.0, 10), 5.0);  // under cap
    EXPECT_LE(mshrCappedMlp(40.0, 40.0, 10), 10.0);      // hard cap
    EXPECT_GE(mshrCappedMlp(0.5, 1.0, 10), 1.0);         // floor
    // 15 misses, 10 MSHRs: two batches -> 7.5 effective.
    EXPECT_NEAR(mshrCappedMlp(15.0, 15.0, 10), 7.5, 1e-9);
}

TEST(MlpModel, BusEquationMatchesThesis)
{
    // Thesis Eq 4.5: cbus(MLP') = (MLP'+1)/2 * transfer.
    EXPECT_DOUBLE_EQ(busCycles(1.0, 8), 8.0);
    EXPECT_DOUBLE_EQ(busCycles(3.0, 8), 16.0);
    // Eq 4.6: stores rescale MLP'.
    EXPECT_DOUBLE_EQ(busMlp(2.0, 100, 50), 3.0);
    EXPECT_DOUBLE_EQ(busMlp(2.0, 0, 50), 2.0);
}

TEST(MlpModel, StreamingWorkloadHasHighMlp)
{
    Trace t = generateWorkload(suiteWorkload("stream_add"), 200000);
    Profile p = profileTrace(t, {});
    CoreConfig cfg = CoreConfig::nehalemReference();
    StatStack ss(p.reuseAll);
    auto est = strideMlp(p, cfg, ss);
    EXPECT_GT(est.mlp, 3.0);
}

TEST(MlpModel, PointerChaseHasLowMlp)
{
    Trace t = generateWorkload(suiteWorkload("ptr_chase"), 200000);
    Profile p = profileTrace(t, {});
    CoreConfig cfg = CoreConfig::nehalemReference();
    StatStack ss(p.reuseAll);
    auto est = strideMlp(p, cfg, ss);
    EXPECT_LT(est.mlp, 3.0);
    EXPECT_GE(est.mlp, 1.0);
}

TEST(MlpModel, ColdMissModelProducesSaneRange)
{
    for (const char *name : {"stream_add", "ptr_chase", "rand_gather"}) {
        Trace t = generateWorkload(suiteWorkload(name), 200000);
        Profile p = profileTrace(t, {});
        CoreConfig cfg = CoreConfig::nehalemReference();
        StatStack ss(p.reuseAll);
        auto est = coldMissMlp(p, cfg, ss);
        EXPECT_GE(est.mlp, 1.0) << name;
        EXPECT_LE(est.mlp, cfg.mshrs) << name;
    }
}

TEST(MlpModel, MshrOptionReducesMlp)
{
    Trace t = generateWorkload(suiteWorkload("rand_gather"), 200000);
    Profile p = profileTrace(t, {});
    CoreConfig cfg = CoreConfig::nehalemReference();
    cfg.mshrs = 2;
    StatStack ss(p.reuseAll);
    MlpOptions capped, uncapped;
    uncapped.modelMshrs = false;
    double withCap = strideMlp(p, cfg, ss, capped).mlp;
    double without = strideMlp(p, cfg, ss, uncapped).mlp;
    EXPECT_LE(withCap, 2.0 + 1e-9);
    EXPECT_GT(without, withCap);
}

// --- Interval model end-to-end properties --------------------------------

class IntervalModelTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        trace_ = new Trace(
            generateWorkload(suiteWorkload("balanced_mix"), 200000));
        profile_ = new Profile(profileTrace(*trace_, {}));
    }

    static void
    TearDownTestSuite()
    {
        delete trace_;
        delete profile_;
        trace_ = nullptr;
        profile_ = nullptr;
    }

    static Trace *trace_;
    static Profile *profile_;
};

Trace *IntervalModelTest::trace_ = nullptr;
Profile *IntervalModelTest::profile_ = nullptr;

TEST_F(IntervalModelTest, StackSumsToCycles)
{
    auto res = evaluateModel(*profile_, CoreConfig::nehalemReference());
    EXPECT_NEAR(res.stack.total(), res.cycles, res.cycles * 1e-6);
    EXPECT_GT(res.cycles, 0.0);
}

TEST_F(IntervalModelTest, BiggerLlcNeverSlower)
{
    CoreConfig small = CoreConfig::nehalemReference();
    small.l3.sizeBytes = 2 * 1024 * 1024;
    CoreConfig big = CoreConfig::nehalemReference();
    big.l3.sizeBytes = 32 * 1024 * 1024;
    auto s = evaluateModel(*profile_, small);
    auto b = evaluateModel(*profile_, big);
    EXPECT_LE(b.cycles, s.cycles * 1.001);
}

TEST_F(IntervalModelTest, WiderCoreNeverSlower)
{
    CoreConfig narrow = CoreConfig::nehalemReference();
    narrow.setWidth(2);
    CoreConfig wide = CoreConfig::nehalemReference();
    wide.setWidth(6);
    auto n = evaluateModel(*profile_, narrow);
    auto w = evaluateModel(*profile_, wide);
    EXPECT_LE(w.cycles, n.cycles * 1.001);
}

TEST_F(IntervalModelTest, BaseLevelRefinementsGrowBaseComponent)
{
    // Each refinement (uops -> +deps -> +ports/FUs) adds a constraint,
    // so the *base* component must not shrink (Fig 3.7 mechanics). The
    // total can move either way because slack-based corrections to the
    // branch and DRAM penalties depend on the effective dispatch rate.
    ModelOptions o;
    using L = ModelOptions::BaseLevel;
    o.baseLevel = L::MicroOps;
    double uops =
        evaluateModel(*profile_, CoreConfig::nehalemReference(), o)
            .stack.base;
    o.baseLevel = L::CriticalPath;
    double crit =
        evaluateModel(*profile_, CoreConfig::nehalemReference(), o)
            .stack.base;
    o.baseLevel = L::Functional;
    double full =
        evaluateModel(*profile_, CoreConfig::nehalemReference(), o)
            .stack.base;
    EXPECT_LE(uops, crit * 1.0001);
    EXPECT_LE(crit, full * 1.0001);
}

TEST_F(IntervalModelTest, NoMlpModelingInflatesDramComponent)
{
    ModelOptions with, without;
    without.mlpMode = ModelOptions::MlpMode::None;
    auto a =
        evaluateModel(*profile_, CoreConfig::nehalemReference(), with);
    auto b =
        evaluateModel(*profile_, CoreConfig::nehalemReference(), without);
    EXPECT_GT(b.stack.dram, a.stack.dram);
}

TEST_F(IntervalModelTest, PerWindowAndGlobalAgreeRoughly)
{
    ModelOptions pw, gl;
    gl.perWindow = false;
    auto a = evaluateModel(*profile_, CoreConfig::nehalemReference(), pw);
    auto b = evaluateModel(*profile_, CoreConfig::nehalemReference(), gl);
    EXPECT_NEAR(a.cycles, b.cycles, 0.35 * std::max(a.cycles, b.cycles));
}

TEST_F(IntervalModelTest, WindowCpiSeriesMatchesWindows)
{
    auto res = evaluateModel(*profile_, CoreConfig::nehalemReference());
    EXPECT_EQ(res.windowCpi.size(), profile_->windows.size());
    for (double cpi : res.windowCpi)
        EXPECT_GT(cpi, 0.0);
}

TEST_F(IntervalModelTest, ActivityScalesWithTrace)
{
    auto res = evaluateModel(*profile_, CoreConfig::nehalemReference());
    EXPECT_NEAR(static_cast<double>(res.activity.uops),
                static_cast<double>(trace_->size()), 1.0);
    EXPECT_GT(res.activity.rfReads, res.activity.uops / 2);
    EXPECT_GT(res.activity.l1dAccesses, 0u);
    EXPECT_GE(res.activity.l2Accesses, res.activity.l3Accesses);
}

TEST_F(IntervalModelTest, HigherEntropyFitRaisesBranchComponent)
{
    ModelOptions low, high;
    low.branchModel = BranchMissModel{BranchPredictorKind::GShare,
                                      0.1, 0.0};
    high.branchModel = BranchMissModel{BranchPredictorKind::GShare,
                                       0.9, 0.05};
    auto a = evaluateModel(*profile_, CoreConfig::nehalemReference(), low);
    auto b =
        evaluateModel(*profile_, CoreConfig::nehalemReference(), high);
    EXPECT_GT(b.stack.branch, a.stack.branch);
}

/** Property sweep: the model stays finite and positive across the
 *  design space for several workloads. */
class ModelDesignSpaceProperty
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ModelDesignSpaceProperty, FiniteAcrossDesignSpace)
{
    Trace t = generateWorkload(suiteWorkload(GetParam()), 100000);
    Profile p = profileTrace(t, {});
    DesignSpace space = DesignSpace::small();
    for (const auto &cfg : space.configs()) {
        auto res = evaluateModel(p, cfg);
        ASSERT_TRUE(std::isfinite(res.cycles)) << cfg.name;
        ASSERT_GT(res.cycles, 0.0) << cfg.name;
        ASSERT_GE(res.mlp, 1.0) << cfg.name;
        ASSERT_LE(res.branchMissRate, 1.0) << cfg.name;
    }
}

INSTANTIATE_TEST_SUITE_P(Workloads, ModelDesignSpaceProperty,
                         ::testing::Values("stream_add", "ptr_chase",
                                           "dense_compute", "mix_mid"));

} // namespace
} // namespace mipp
