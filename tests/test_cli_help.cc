/**
 * @file
 * Golden tests for the single-source-of-truth CLI help table
 * (src/cli/cli_help.hh). The table drives `mipp_cli help`, every
 * subcommand's `--help` and the bad-invocation usage text, so these
 * tests are what keeps the documented flag surface tied to the
 * dispatch set in examples/mipp_cli.cpp: add a command without a table
 * entry (or vice versa) and the coverage test fails.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cli/cli_help.hh"

namespace mipp::cli {
namespace {

/** The dispatch set of examples/mipp_cli.cpp::runCommand, including
 *  subcommand groups. Extend in lockstep with the dispatcher. */
const std::set<std::string> kDispatch = {
    "profile",        "evaluate",         "sweep",
    "trace record",   "trace convert",    "trace dump",
    "trace info",     "report accuracy",  "report calibrate",
    "report metrics", "serve",            "list",
    "help",
};

TEST(CliHelp, TableCoversTheDispatchSetExactly)
{
    std::set<std::string> table;
    for (const CommandHelp &c : commandTable())
        table.insert(std::string(c.name));
    EXPECT_EQ(table, kDispatch);
}

TEST(CliHelp, EveryEntryIsFullyPopulated)
{
    for (const CommandHelp &c : commandTable()) {
        EXPECT_FALSE(c.name.empty());
        EXPECT_FALSE(c.synopsis.empty()) << c.name;
        EXPECT_FALSE(c.summary.empty()) << c.name;
        EXPECT_FALSE(c.details.empty()) << c.name;
        // The synopsis leads with the command itself.
        EXPECT_EQ(c.synopsis.substr(0, c.name.size()), c.name);
        // Summaries are single-line (they render in the overview list).
        EXPECT_EQ(c.summary.find('\n'), std::string_view::npos)
            << c.name;
    }
}

TEST(CliHelp, OverviewListsEverySummaryOnce)
{
    std::string o = overviewHelp();
    EXPECT_EQ(o.rfind("usage: mipp_cli <command> [args]", 0), 0u);
    for (const CommandHelp &c : commandTable()) {
        EXPECT_NE(o.find("  " + std::string(c.name)), std::string::npos)
            << c.name;
        EXPECT_NE(o.find(std::string(c.summary)), std::string::npos)
            << c.name;
    }
}

TEST(CliHelp, DetailedHelpResolvesEveryEntryAndGroups)
{
    for (const CommandHelp &c : commandTable()) {
        std::string text = detailedHelp(c.name);
        EXPECT_NE(text.find("usage: mipp_cli " + std::string(c.name)),
                  std::string::npos)
            << c.name;
        EXPECT_NE(text.find(std::string(c.details)), std::string::npos)
            << c.name;
    }
    // Group prefixes render every member.
    std::string trace = detailedHelp("trace");
    for (const char *sub : {"trace record", "trace convert",
                            "trace dump", "trace info"})
        EXPECT_NE(trace.find(std::string("usage: mipp_cli ") + sub),
                  std::string::npos)
            << sub;
    std::string report = detailedHelp("report");
    EXPECT_NE(report.find("report accuracy"), std::string::npos);
    EXPECT_NE(report.find("report calibrate"), std::string::npos);
    EXPECT_NE(report.find("report metrics"), std::string::npos);

    EXPECT_TRUE(detailedHelp("no-such-command").empty());
    // "tra" is not a group prefix (prefixes split at word boundaries).
    EXPECT_TRUE(detailedHelp("tra").empty());
}

TEST(CliHelp, GoldenRenderingIsStable)
{
    // Pin the exact rendered form of a small entry: leading usage line,
    // blank separator, details, trailing newline. Formatting changes
    // must be deliberate (this text is what users and docs/ see).
    EXPECT_EQ(detailedHelp("list"),
              "usage: mipp_cli list\n"
              "\n"
              "Print the workloadSuite() names accepted by profile, "
              "trace\nrecord and the serve profile op.\n");
    // Continuation lines of a multi-line synopsis are indented to align
    // under the command name.
    std::string p = detailedHelp("profile");
    EXPECT_NE(p.find("\n       ["), std::string::npos);
}

TEST(CliHelp, MentionsTraceFlagsWhereTheyExist)
{
    // The flags added with .mtf ingestion are documented where wired.
    EXPECT_NE(detailedHelp("profile").find("--trace"),
              std::string::npos);
    EXPECT_NE(detailedHelp("report accuracy").find("--trace"),
              std::string::npos);
    EXPECT_NE(detailedHelp("report calibrate").find("--trace"),
              std::string::npos);
    EXPECT_NE(detailedHelp("serve").find("\"trace\""),
              std::string::npos);
}

} // namespace
} // namespace mipp::cli
