/**
 * @file
 * Tests for the cache hierarchy, memory bus and stride prefetcher.
 */

#include <gtest/gtest.h>

#include "sim/memory_hierarchy.hh"

namespace mipp {
namespace {

CacheConfig
tinyCache(uint32_t lines, uint32_t assoc, uint32_t lat)
{
    return {lines * kLineSize, assoc, lat};
}

TEST(Cache, HitAfterInsert)
{
    Cache c(tinyCache(16, 4, 1));
    EXPECT_FALSE(c.lookup(5));
    c.insert(5, false);
    EXPECT_TRUE(c.lookup(5));
    EXPECT_TRUE(c.peek(5));
}

TEST(Cache, LruEvictsOldest)
{
    // Fully-associative 4-line cache (1 set).
    Cache c(tinyCache(4, 4, 1));
    for (uint64_t line = 0; line < 4; ++line)
        EXPECT_FALSE(c.insert(line * 1, false).has_value());
    // Touch 0 so 1 becomes LRU.
    c.lookup(0);
    auto victim = c.insert(100, false);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->line, 1u);
}

TEST(Cache, SetIndexingSeparatesConflicts)
{
    // 8 lines, 2-way: 4 sets; lines 0 and 4 share set 0.
    Cache c(tinyCache(8, 2, 1));
    c.insert(0, false);
    c.insert(4, false);
    c.insert(8, false); // evicts LRU of set 0 (line 0)
    EXPECT_FALSE(c.peek(0));
    EXPECT_TRUE(c.peek(4));
    EXPECT_TRUE(c.peek(8));
    EXPECT_FALSE(c.peek(1)); // other sets untouched
}

TEST(Cache, DirtyVictimReported)
{
    Cache c(tinyCache(2, 2, 1));
    c.insert(1, true);
    c.insert(2, false);
    auto victim = c.insert(3, false);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->line, 1u);
    EXPECT_TRUE(victim->dirty);
}

TEST(Cache, InvalidateRemovesLine)
{
    Cache c(tinyCache(8, 2, 1));
    c.insert(3, false);
    EXPECT_TRUE(c.peek(3));
    c.invalidate(3);
    EXPECT_FALSE(c.peek(3));
}

TEST(Cache, PeekDoesNotDisturbLru)
{
    Cache c(tinyCache(2, 2, 1));
    c.insert(1, false);
    c.insert(2, false); // LRU = 1
    c.peek(1);          // must NOT refresh 1
    auto victim = c.insert(3, false);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->line, 1u);
}

class HierarchyTest : public ::testing::Test
{
  protected:
    HierarchyTest()
    {
        cfg = CoreConfig::nehalemReference();
        cfg.l1d = tinyCache(8, 2, 4);
        cfg.l1i = tinyCache(8, 2, 3);
        cfg.l2 = tinyCache(32, 4, 11);
        cfg.l3 = tinyCache(128, 8, 30);
        cfg.memLatency = 200;
        cfg.busTransferCycles = 8;
    }

    CoreConfig cfg;
};

TEST_F(HierarchyTest, FirstAccessIsColdMissThenL1Hit)
{
    MemoryHierarchy mem(cfg);
    auto r1 = mem.access(0x1000, 1, AccessKind::Load, 0);
    EXPECT_EQ(r1.level, HitLevel::Dram);
    EXPECT_TRUE(r1.coldMiss);
    EXPECT_GE(r1.latency, cfg.memLatency);

    auto r2 = mem.access(0x1008, 1, AccessKind::Load, 300);
    EXPECT_EQ(r2.level, HitLevel::L1);
    EXPECT_EQ(r2.latency, cfg.l1d.latency);
    EXPECT_FALSE(r2.coldMiss);
}

TEST_F(HierarchyTest, EvictedFromL1StillHitsL2)
{
    MemoryHierarchy mem(cfg);
    // L1 has 8 lines; touch 16 distinct lines, then re-touch the first.
    for (uint64_t i = 0; i < 16; ++i)
        mem.access(i * kLineSize, 1, AccessKind::Load, i * 1000);
    auto r = mem.access(0, 1, AccessKind::Load, 1000000);
    EXPECT_EQ(r.level, HitLevel::L2);
    EXPECT_EQ(r.latency, cfg.l1d.latency + cfg.l2.latency);
}

TEST_F(HierarchyTest, CapacityMissIsNotCold)
{
    MemoryHierarchy mem(cfg);
    // Touch more lines than the L3 holds, then revisit the first: it
    // must be a DRAM access but not a cold miss.
    for (uint64_t i = 0; i < 300; ++i)
        mem.access(i * kLineSize, 1, AccessKind::Load, i * 1000);
    auto r = mem.access(0, 1, AccessKind::Load, 10000000);
    EXPECT_EQ(r.level, HitLevel::Dram);
    EXPECT_FALSE(r.coldMiss);
    EXPECT_EQ(mem.stats().capacityLoadMisses, 1u);
}

TEST_F(HierarchyTest, InclusionBackInvalidatesInnerLevels)
{
    MemoryHierarchy mem(cfg);
    mem.access(0, 1, AccessKind::Load, 0);
    EXPECT_EQ(mem.peekLevel(0), HitLevel::L1);
    // Evict line 0 from L3 by filling its set with conflicting lines.
    // L3: 128 lines, 8-way -> 16 sets; conflicts are multiples of
    // 16 lines.
    for (uint64_t i = 1; i <= 8; ++i)
        mem.access(i * 16 * kLineSize, 1, AccessKind::Load, i * 1000);
    EXPECT_EQ(mem.peekLevel(0), HitLevel::Dram)
        << "line 0 must be back-invalidated everywhere";
}

TEST_F(HierarchyTest, BusQueuingDelaysConcurrentMisses)
{
    MemoryHierarchy mem(cfg);
    auto r1 = mem.access(0x100000, 1, AccessKind::Load, 0);
    auto r2 = mem.access(0x200000, 2, AccessKind::Load, 0);
    auto r3 = mem.access(0x300000, 3, AccessKind::Load, 0);
    EXPECT_LT(r1.latency, r2.latency);
    EXPECT_LT(r2.latency, r3.latency);
    EXPECT_EQ(r3.latency - r2.latency, cfg.busTransferCycles);
    EXPECT_GT(mem.stats().busWaitCycles, 0u);
}

TEST_F(HierarchyTest, StoreMissCountsSeparately)
{
    MemoryHierarchy mem(cfg);
    mem.access(0x5000, 1, AccessKind::Store, 0);
    EXPECT_EQ(mem.stats().l1d.storeMisses, 1u);
    EXPECT_EQ(mem.stats().coldStoreMisses, 1u);
    EXPECT_EQ(mem.stats().l1d.loadMisses, 0u);
}

TEST_F(HierarchyTest, IfetchUsesInstructionCache)
{
    MemoryHierarchy mem(cfg);
    mem.access(0x400000, 0x400000, AccessKind::Ifetch, 0);
    EXPECT_EQ(mem.stats().l1i.ifetchAccesses, 1u);
    EXPECT_EQ(mem.stats().l1i.ifetchMisses, 1u);
    auto r = mem.access(0x400010, 0x400010, AccessKind::Ifetch, 300);
    EXPECT_EQ(r.level, HitLevel::L1);
}

TEST_F(HierarchyTest, StridePrefetcherHidesStridedMisses)
{
    cfg.prefetcherEnabled = true;
    MemoryHierarchy mem(cfg);
    uint64_t pc = 0x400100;
    uint64_t nPrefetched = 0;
    uint64_t t = 0;
    // Stride of one line; after training, subsequent accesses should be
    // intercepted by in-flight or completed prefetches.
    for (uint64_t i = 0; i < 64; ++i) {
        auto r = mem.access(0x800000 + i * kLineSize, pc,
                            AccessKind::Load, t);
        t += 400;
        nPrefetched += r.prefetched;
    }
    EXPECT_GT(mem.stats().prefetchesIssued, 20u);
    EXPECT_GT(nPrefetched + mem.stats().prefetchHits, 20u);
}

TEST_F(HierarchyTest, PrefetcherIgnoresPageCrossingStrides)
{
    cfg.prefetcherEnabled = true;
    MemoryHierarchy mem(cfg);
    uint64_t pc = 0x400200;
    for (uint64_t i = 0; i < 32; ++i)
        mem.access(0x10000000 + i * 8192, pc, AccessKind::Load, i * 500);
    EXPECT_EQ(mem.stats().prefetchesIssued, 0u);
}

TEST_F(HierarchyTest, WritebacksHappenOnDirtyEvictions)
{
    MemoryHierarchy mem(cfg);
    // Dirty many lines, then push them all the way out of the L3.
    for (uint64_t i = 0; i < 200; ++i)
        mem.access(i * kLineSize, 1, AccessKind::Store, i * 1000);
    for (uint64_t i = 200; i < 600; ++i)
        mem.access(i * kLineSize, 1, AccessKind::Load, i * 1000);
    EXPECT_GT(mem.stats().writebacks, 0u);
}

TEST(Cache, ZeroAssociativityClampedToOneWay)
{
    // associativity == 0 used to underflow the LRU way index.
    Cache c(CacheConfig{16 * kLineSize, 0, 1});
    EXPECT_FALSE(c.lookup(7));
    c.insert(7, false);
    EXPECT_TRUE(c.peek(7));
    // Direct-mapped after the clamp: a conflicting line evicts.
    auto victim = c.insert(7 + 16, false);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->line, 7u);
}

TEST(Cache, NormalizedClampsDegenerateConfigs)
{
    CacheConfig broken{0, 0, 1};
    CacheConfig fixed = broken.normalized();
    EXPECT_EQ(fixed.associativity, 1u);
    EXPECT_GE(fixed.sizeBytes, kLineSize);
    EXPECT_GE(fixed.numSets(), 1u);
    // Already-sane configs pass through untouched.
    CacheConfig sane{32 * 1024, 8, 4};
    CacheConfig same = sane.normalized();
    EXPECT_EQ(same.sizeBytes, sane.sizeBytes);
    EXPECT_EQ(same.associativity, sane.associativity);
}

TEST(Cache, MarkDirtyReportsResidency)
{
    Cache c(tinyCache(8, 2, 1));
    EXPECT_FALSE(c.markDirty(3)) << "absent line cannot absorb dirty data";
    c.insert(3, false);
    EXPECT_TRUE(c.markDirty(3));
}

TEST(Cache, InvalidateReportsDirtyLoss)
{
    Cache c(tinyCache(8, 2, 1));
    c.insert(3, true);
    c.insert(4, false);
    EXPECT_TRUE(c.invalidate(3)) << "dirty copy was dropped";
    EXPECT_FALSE(c.invalidate(4));
    EXPECT_FALSE(c.invalidate(99));
}

TEST(Cache, ResidentLinesEnumeratesValidWays)
{
    Cache c(tinyCache(8, 2, 1));
    c.insert(1, false);
    c.insert(2, false);
    auto lines = c.residentLines();
    EXPECT_EQ(lines.size(), 2u);
}

TEST_F(HierarchyTest, StatsAccessesAddUp)
{
    MemoryHierarchy mem(cfg);
    for (uint64_t i = 0; i < 50; ++i)
        mem.access(i * 32, 1, i % 3 ? AccessKind::Load : AccessKind::Store,
                   i * 10);
    const auto &s = mem.stats();
    EXPECT_EQ(s.l1d.accesses(), 50u);
    // Every L1D miss must show up as an L2 access.
    EXPECT_EQ(s.l2.loadAccesses + s.l2.storeAccesses,
              s.l1d.loadMisses + s.l1d.storeMisses);
}

/** The per-level access chain must hold with the prefetcher active: the
 *  intercept path used to count an L2 miss without ever probing the L3,
 *  and prefetch DRAM fetches went unaccounted. */
TEST_F(HierarchyTest, PrefetchPathKeepsLevelStatsConsistent)
{
    cfg.prefetcherEnabled = true;
    MemoryHierarchy mem(cfg);
    uint64_t t = 0;
    // Mix of strided streams (various gaps: installed and intercepted
    // prefetches), random loads and stores.
    for (uint64_t i = 0; i < 200; ++i) {
        mem.access(0x800000 + i * kLineSize, 0x400100, AccessKind::Load, t);
        mem.access(0x900000 + i * 2 * kLineSize, 0x400108,
                   AccessKind::Load, t + 10);
        mem.access(0xA00000 + (i * 7919 % 512) * kLineSize, 0x400110,
                   i % 4 ? AccessKind::Load : AccessKind::Store, t + 20);
        t += i % 3 ? 100 : 500;
    }
    const auto &s = mem.stats();
    ASSERT_GT(s.prefetchesIssued, 0u);
    ASSERT_GT(s.prefetchHits, 0u);
    EXPECT_EQ(s.l2.accesses(), s.l1d.misses() + s.l1i.misses());
    EXPECT_EQ(s.l3.accesses(), s.l2.misses());
    EXPECT_EQ(s.dramAccesses, s.l3.misses() + s.prefetchesIssued);
    EXPECT_EQ(s.coldLoadMisses + s.capacityLoadMisses, s.l3.loadMisses);
}

TEST_F(HierarchyTest, CompletedPrefetchesAreInstalledIntoL2)
{
    cfg.prefetcherEnabled = true;
    MemoryHierarchy mem(cfg);
    uint64_t pc = 0x400100;
    uint64_t t = 0;
    uint64_t l2PrefetchHits = 0;
    // Gaps far beyond the memory latency: every prefetch completes and
    // must be *installed*, turning the next access into a plain L2 hit.
    for (uint64_t i = 0; i < 32; ++i) {
        auto r = mem.access(0x800000 + i * kLineSize, pc,
                            AccessKind::Load, t);
        t += 1000;
        if (r.level == HitLevel::L2 && r.prefetched) {
            l2PrefetchHits++;
            EXPECT_EQ(r.latency, cfg.l1d.latency + cfg.l2.latency);
        }
    }
    EXPECT_GT(mem.stats().prefetchesInstalled, 10u);
    EXPECT_GT(l2PrefetchHits, 10u);
    EXPECT_EQ(mem.stats().prefetchHits, l2PrefetchHits);
}

TEST_F(HierarchyTest, InFlightPrefetchInterceptHidesPartOfTheLatency)
{
    cfg.prefetcherEnabled = true;
    MemoryHierarchy mem(cfg);
    uint64_t pc = 0x400100;
    uint64_t t = 0;
    uint64_t intercepts = 0;
    // Gaps shorter than the memory latency: prefetches are still in
    // flight when the demand access arrives.
    for (uint64_t i = 0; i < 32; ++i) {
        auto r = mem.access(0x800000 + i * kLineSize, pc,
                            AccessKind::Load, t);
        t += 100;
        if (r.prefetched && r.latency > cfg.l1d.latency + cfg.l2.latency) {
            intercepts++;
            // Partially hidden, but never worse than a full miss.
            EXPECT_LE(r.latency,
                      cfg.l1d.latency + cfg.memLatency +
                          10 * cfg.busTransferCycles);
        }
    }
    EXPECT_GT(intercepts, 10u);
}

TEST_F(HierarchyTest, PrefetcherSkipsResidentTargets)
{
    cfg.prefetcherEnabled = true;
    MemoryHierarchy mem(cfg);
    uint64_t pc = 0x400100;
    // Warm the would-be prefetch target into the hierarchy (incl. L1D).
    mem.access(0x900000 + 3 * kLineSize, 1, AccessKind::Load, 0);
    // Train a stride whose next target is exactly that resident line:
    // confidence is reached on the third access, and the target must be
    // recognized as resident and skipped.
    mem.access(0x900000, pc, AccessKind::Load, 1000);
    mem.access(0x900000 + kLineSize, pc, AccessKind::Load, 1500);
    mem.access(0x900000 + 2 * kLineSize, pc, AccessKind::Load, 2000);
    EXPECT_EQ(mem.stats().prefetchesIssued, 0u);
}

TEST_F(HierarchyTest, ZeroEntryPrefetcherIsInert)
{
    // prefetcherEntries == 0 used to erase(end()) on the first trained
    // miss (the stride table's LRU scan over an empty map).
    cfg.prefetcherEnabled = true;
    cfg.prefetcherEntries = 0;
    MemoryHierarchy mem(cfg);
    for (uint64_t i = 0; i < 16; ++i)
        mem.access(0x800000 + i * kLineSize, 0x400100, AccessKind::Load,
                   i * 400);
    EXPECT_EQ(mem.stats().prefetchesIssued, 0u);
}

/** Inclusion: after arbitrary demand + prefetch traffic, every line
 *  resident in an inner cache is resident in the L3. */
TEST_F(HierarchyTest, InclusionInvariantHoldsUnderArbitraryTraffic)
{
    cfg.prefetcherEnabled = true;
    MemoryHierarchy mem(cfg);
    uint64_t t = 0;
    for (uint64_t i = 0; i < 500; ++i) {
        AccessKind kind = i % 5 == 0 ? AccessKind::Store :
                          i % 7 == 0 ? AccessKind::Ifetch :
                                       AccessKind::Load;
        uint64_t addr = i % 2 ? 0x800000 + i * kLineSize
                              : 0xC00000 + (i * 31 % 200) * kLineSize;
        mem.access(addr, 0x400000 + (i % 16) * 8, kind, t);
        t += 50 + (i % 9) * 100;
    }
    for (uint64_t line : mem.l1d().residentLines())
        EXPECT_TRUE(mem.l3().peek(line)) << "L1D line " << line;
    for (uint64_t line : mem.l1i().residentLines())
        EXPECT_TRUE(mem.l3().peek(line)) << "L1I line " << line;
    for (uint64_t line : mem.l2().residentLines())
        EXPECT_TRUE(mem.l3().peek(line)) << "L2 line " << line;
}

/** A dirty L1 victim whose line was meanwhile evicted from the L2 must
 *  land in the L3 (and eventually write back), not vanish. */
TEST(HierarchyWriteback, DirtyL1VictimSurvivesL2Eviction)
{
    CoreConfig cfg = CoreConfig::nehalemReference();
    cfg.l1d = tinyCache(64, 2, 4);   // 32 sets
    cfg.l1i = tinyCache(64, 2, 3);
    cfg.l2 = tinyCache(16, 4, 11);   // 4 sets: easy to conflict
    cfg.l3 = tinyCache(128, 8, 30);  // 16 sets: X stays resident
    MemoryHierarchy mem(cfg);

    // Dirty line 0 (L1D set 0, L2 set 0, L3 set 0).
    mem.access(0, 1, AccessKind::Store, 0);
    // Evict line 0 from the L2 only: lines 4/8/12/16 share L2 set 0 but
    // land in different L1D sets, and spread over L3 sets.
    for (uint64_t l : {4, 8, 12, 16})
        mem.access(l * kLineSize, 1, AccessKind::Load, 1000 * l);
    ASSERT_FALSE(mem.l2().peek(0));
    ASSERT_TRUE(mem.l1d().peek(0));
    ASSERT_TRUE(mem.l3().peek(0));

    // Evict line 0 from L1D (lines 32 and 64 share L1D set 0): its
    // dirty data must fall back into the L3.
    mem.access(32 * kLineSize, 1, AccessKind::Load, 100000);
    mem.access(64 * kLineSize, 1, AccessKind::Load, 101000);
    ASSERT_FALSE(mem.l1d().peek(0));
    uint64_t before = mem.stats().writebacks;

    // Push line 0 out of the L3: the writeback must happen now.
    for (uint64_t l : {80, 96, 112, 128, 144, 160, 176, 192, 208})
        mem.access(l * kLineSize, 1, AccessKind::Load, 200000 + l * 1000);
    ASSERT_FALSE(mem.l3().peek(0));
    EXPECT_GT(mem.stats().writebacks, before)
        << "dirty line 0 was silently dropped";
}

/** Back-invalidating an inner dirty copy on an L3 eviction must write
 *  the data back, not drop it. */
TEST(HierarchyWriteback, BackInvalidationWritesBackDirtyInnerCopy)
{
    CoreConfig cfg = CoreConfig::nehalemReference();
    cfg.l1d = tinyCache(64, 2, 4);  // 32 sets
    cfg.l1i = tinyCache(64, 2, 3);
    cfg.l2 = tinyCache(256, 8, 11); // large: no interference
    cfg.l3 = tinyCache(16, 4, 30);  // 4 sets: easy to conflict
    MemoryHierarchy mem(cfg);

    // Dirty line 0 in L1D only (L2/L3 copies stay clean).
    mem.access(0, 1, AccessKind::Store, 0);
    ASSERT_EQ(mem.stats().writebacks, 0u);

    // Evict line 0 from the L3: lines 4/8/12/16 share L3 set 0, but
    // none of them evicts line 0 from L1D (different L1D sets).
    for (uint64_t l : {4, 8, 12, 16})
        mem.access(l * kLineSize, 1, AccessKind::Load, 1000 * l);

    EXPECT_FALSE(mem.l3().peek(0));
    EXPECT_FALSE(mem.l1d().peek(0)) << "inclusion requires invalidation";
    EXPECT_GE(mem.stats().writebacks, 1u)
        << "dirty L1D copy dropped on back-invalidation";
}

} // namespace
} // namespace mipp
