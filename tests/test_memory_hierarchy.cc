/**
 * @file
 * Tests for the cache hierarchy, memory bus and stride prefetcher.
 */

#include <gtest/gtest.h>

#include "sim/memory_hierarchy.hh"

namespace mipp {
namespace {

CacheConfig
tinyCache(uint32_t lines, uint32_t assoc, uint32_t lat)
{
    return {lines * kLineSize, assoc, lat};
}

TEST(Cache, HitAfterInsert)
{
    Cache c(tinyCache(16, 4, 1));
    EXPECT_FALSE(c.lookup(5));
    c.insert(5, false);
    EXPECT_TRUE(c.lookup(5));
    EXPECT_TRUE(c.peek(5));
}

TEST(Cache, LruEvictsOldest)
{
    // Fully-associative 4-line cache (1 set).
    Cache c(tinyCache(4, 4, 1));
    for (uint64_t line = 0; line < 4; ++line)
        EXPECT_FALSE(c.insert(line * 1, false).has_value());
    // Touch 0 so 1 becomes LRU.
    c.lookup(0);
    auto victim = c.insert(100, false);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->line, 1u);
}

TEST(Cache, SetIndexingSeparatesConflicts)
{
    // 8 lines, 2-way: 4 sets; lines 0 and 4 share set 0.
    Cache c(tinyCache(8, 2, 1));
    c.insert(0, false);
    c.insert(4, false);
    c.insert(8, false); // evicts LRU of set 0 (line 0)
    EXPECT_FALSE(c.peek(0));
    EXPECT_TRUE(c.peek(4));
    EXPECT_TRUE(c.peek(8));
    EXPECT_FALSE(c.peek(1)); // other sets untouched
}

TEST(Cache, DirtyVictimReported)
{
    Cache c(tinyCache(2, 2, 1));
    c.insert(1, true);
    c.insert(2, false);
    auto victim = c.insert(3, false);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->line, 1u);
    EXPECT_TRUE(victim->dirty);
}

TEST(Cache, InvalidateRemovesLine)
{
    Cache c(tinyCache(8, 2, 1));
    c.insert(3, false);
    EXPECT_TRUE(c.peek(3));
    c.invalidate(3);
    EXPECT_FALSE(c.peek(3));
}

TEST(Cache, PeekDoesNotDisturbLru)
{
    Cache c(tinyCache(2, 2, 1));
    c.insert(1, false);
    c.insert(2, false); // LRU = 1
    c.peek(1);          // must NOT refresh 1
    auto victim = c.insert(3, false);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->line, 1u);
}

class HierarchyTest : public ::testing::Test
{
  protected:
    HierarchyTest()
    {
        cfg = CoreConfig::nehalemReference();
        cfg.l1d = tinyCache(8, 2, 4);
        cfg.l1i = tinyCache(8, 2, 3);
        cfg.l2 = tinyCache(32, 4, 11);
        cfg.l3 = tinyCache(128, 8, 30);
        cfg.memLatency = 200;
        cfg.busTransferCycles = 8;
    }

    CoreConfig cfg;
};

TEST_F(HierarchyTest, FirstAccessIsColdMissThenL1Hit)
{
    MemoryHierarchy mem(cfg);
    auto r1 = mem.access(0x1000, 1, AccessKind::Load, 0);
    EXPECT_EQ(r1.level, HitLevel::Dram);
    EXPECT_TRUE(r1.coldMiss);
    EXPECT_GE(r1.latency, cfg.memLatency);

    auto r2 = mem.access(0x1008, 1, AccessKind::Load, 300);
    EXPECT_EQ(r2.level, HitLevel::L1);
    EXPECT_EQ(r2.latency, cfg.l1d.latency);
    EXPECT_FALSE(r2.coldMiss);
}

TEST_F(HierarchyTest, EvictedFromL1StillHitsL2)
{
    MemoryHierarchy mem(cfg);
    // L1 has 8 lines; touch 16 distinct lines, then re-touch the first.
    for (uint64_t i = 0; i < 16; ++i)
        mem.access(i * kLineSize, 1, AccessKind::Load, i * 1000);
    auto r = mem.access(0, 1, AccessKind::Load, 1000000);
    EXPECT_EQ(r.level, HitLevel::L2);
    EXPECT_EQ(r.latency, cfg.l1d.latency + cfg.l2.latency);
}

TEST_F(HierarchyTest, CapacityMissIsNotCold)
{
    MemoryHierarchy mem(cfg);
    // Touch more lines than the L3 holds, then revisit the first: it
    // must be a DRAM access but not a cold miss.
    for (uint64_t i = 0; i < 300; ++i)
        mem.access(i * kLineSize, 1, AccessKind::Load, i * 1000);
    auto r = mem.access(0, 1, AccessKind::Load, 10000000);
    EXPECT_EQ(r.level, HitLevel::Dram);
    EXPECT_FALSE(r.coldMiss);
    EXPECT_EQ(mem.stats().capacityLoadMisses, 1u);
}

TEST_F(HierarchyTest, InclusionBackInvalidatesInnerLevels)
{
    MemoryHierarchy mem(cfg);
    mem.access(0, 1, AccessKind::Load, 0);
    EXPECT_EQ(mem.peekLevel(0), HitLevel::L1);
    // Evict line 0 from L3 by filling its set with conflicting lines.
    // L3: 128 lines, 8-way -> 16 sets; conflicts are multiples of
    // 16 lines.
    for (uint64_t i = 1; i <= 8; ++i)
        mem.access(i * 16 * kLineSize, 1, AccessKind::Load, i * 1000);
    EXPECT_EQ(mem.peekLevel(0), HitLevel::Dram)
        << "line 0 must be back-invalidated everywhere";
}

TEST_F(HierarchyTest, BusQueuingDelaysConcurrentMisses)
{
    MemoryHierarchy mem(cfg);
    auto r1 = mem.access(0x100000, 1, AccessKind::Load, 0);
    auto r2 = mem.access(0x200000, 2, AccessKind::Load, 0);
    auto r3 = mem.access(0x300000, 3, AccessKind::Load, 0);
    EXPECT_LT(r1.latency, r2.latency);
    EXPECT_LT(r2.latency, r3.latency);
    EXPECT_EQ(r3.latency - r2.latency, cfg.busTransferCycles);
    EXPECT_GT(mem.stats().busWaitCycles, 0u);
}

TEST_F(HierarchyTest, StoreMissCountsSeparately)
{
    MemoryHierarchy mem(cfg);
    mem.access(0x5000, 1, AccessKind::Store, 0);
    EXPECT_EQ(mem.stats().l1d.storeMisses, 1u);
    EXPECT_EQ(mem.stats().coldStoreMisses, 1u);
    EXPECT_EQ(mem.stats().l1d.loadMisses, 0u);
}

TEST_F(HierarchyTest, IfetchUsesInstructionCache)
{
    MemoryHierarchy mem(cfg);
    mem.access(0x400000, 0x400000, AccessKind::Ifetch, 0);
    EXPECT_EQ(mem.stats().l1i.ifetchAccesses, 1u);
    EXPECT_EQ(mem.stats().l1i.ifetchMisses, 1u);
    auto r = mem.access(0x400010, 0x400010, AccessKind::Ifetch, 300);
    EXPECT_EQ(r.level, HitLevel::L1);
}

TEST_F(HierarchyTest, StridePrefetcherHidesStridedMisses)
{
    cfg.prefetcherEnabled = true;
    MemoryHierarchy mem(cfg);
    uint64_t pc = 0x400100;
    uint64_t nPrefetched = 0;
    uint64_t t = 0;
    // Stride of one line; after training, subsequent accesses should be
    // intercepted by in-flight or completed prefetches.
    for (uint64_t i = 0; i < 64; ++i) {
        auto r = mem.access(0x800000 + i * kLineSize, pc,
                            AccessKind::Load, t);
        t += 400;
        nPrefetched += r.prefetched;
    }
    EXPECT_GT(mem.stats().prefetchesIssued, 20u);
    EXPECT_GT(nPrefetched + mem.stats().prefetchHits, 20u);
}

TEST_F(HierarchyTest, PrefetcherIgnoresPageCrossingStrides)
{
    cfg.prefetcherEnabled = true;
    MemoryHierarchy mem(cfg);
    uint64_t pc = 0x400200;
    for (uint64_t i = 0; i < 32; ++i)
        mem.access(0x10000000 + i * 8192, pc, AccessKind::Load, i * 500);
    EXPECT_EQ(mem.stats().prefetchesIssued, 0u);
}

TEST_F(HierarchyTest, WritebacksHappenOnDirtyEvictions)
{
    MemoryHierarchy mem(cfg);
    // Dirty many lines, then push them all the way out of the L3.
    for (uint64_t i = 0; i < 200; ++i)
        mem.access(i * kLineSize, 1, AccessKind::Store, i * 1000);
    for (uint64_t i = 200; i < 600; ++i)
        mem.access(i * kLineSize, 1, AccessKind::Load, i * 1000);
    EXPECT_GT(mem.stats().writebacks, 0u);
}

TEST_F(HierarchyTest, StatsAccessesAddUp)
{
    MemoryHierarchy mem(cfg);
    for (uint64_t i = 0; i < 50; ++i)
        mem.access(i * 32, 1, i % 3 ? AccessKind::Load : AccessKind::Store,
                   i * 10);
    const auto &s = mem.stats();
    EXPECT_EQ(s.l1d.accesses(), 50u);
    // Every L1D miss must show up as an L2 access.
    EXPECT_EQ(s.l2.loadAccesses + s.l2.storeAccesses,
              s.l1d.loadMisses + s.l1d.storeMisses);
}

} // namespace
} // namespace mipp
