/**
 * @file
 * End-to-end integration tests: the full profile-once / model-everywhere
 * flow against the cycle-level simulator, mirroring the paper's headline
 * validation (thesis §6.2-6.3).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>

#include "dse/explorer.hh"
#include "uarch/design_space.hh"
#include "profiler/profiler.hh"
#include "sim/ooo_core.hh"
#include "workloads/workload.hh"

namespace mipp {
namespace {

/** CPI-accuracy contract per workload against the reference machine. */
class ReferenceAccuracy : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ReferenceAccuracy, ModelTracksSimulator)
{
    WorkloadSpec spec = suiteWorkload(GetParam());
    Trace t = generateWorkload(spec, 150000);
    CoreConfig cfg = CoreConfig::nehalemReference();
    auto sim = simulate(t, cfg);
    ProfilerConfig pc;
    pc.name = spec.name;
    Profile p = profileTrace(t, pc);
    auto model = evaluateModel(p, cfg);
    double err = std::abs(model.cpiPerUop() - sim.cpiPerUop()) /
                 sim.cpiPerUop();
    // Individual-workload contract; the suite mean is much tighter
    // (checked in SuiteMeanError below, thesis reports 13 % at ISPASS).
    EXPECT_LT(err, 0.45) << "sim " << sim.cpiPerUop() << " model "
                         << model.cpiPerUop();
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, ReferenceAccuracy,
    ::testing::Values("stream_add", "ptr_chase", "rand_gather",
                      "dense_compute", "matrix_tile", "stencil",
                      "scatter_store", "cold_sweep", "loopy_small",
                      "mix_mid", "mul_port", "div_heavy",
                      "bursty_mem", "balanced_mix"));

TEST(Integration, SuiteMeanCpiErrorWithinPaperBand)
{
    // ISPASS'15 reports ~13 % average CPI error on the reference
    // machine; require the suite mean to stay under 20 %.
    CoreConfig cfg = CoreConfig::nehalemReference();
    double sumErr = 0;
    int n = 0;
    for (const auto &spec : workloadSuite()) {
        Trace t = generateWorkload(spec, 120000);
        auto sim = simulate(t, cfg);
        Profile p = profileTrace(t, {});
        auto model = evaluateModel(p, cfg);
        sumErr += std::abs(model.cpiPerUop() - sim.cpiPerUop()) /
                  sim.cpiPerUop();
        n++;
    }
    EXPECT_LT(sumErr / n, 0.20);
}

TEST(Integration, SuiteMeanPowerErrorWithinPaperBand)
{
    // ISPASS'15 reports ~7 % average power error; require < 12 %.
    CoreConfig cfg = CoreConfig::nehalemReference();
    double sumErr = 0;
    int n = 0;
    for (const auto &spec : workloadSuite()) {
        Trace t = generateWorkload(spec, 120000);
        auto e = evaluatePair(t, profileTrace(t, {}), cfg);
        sumErr += std::abs(e.powerError());
        n++;
    }
    EXPECT_LT(sumErr / n, 0.12);
}

TEST(Integration, ModelEvaluationOrdersOfMagnitudeFasterThanSim)
{
    // The paper's core speed claim: once profiled, evaluating one design
    // point is dramatically cheaper than simulating it.
    Trace t = generateWorkload(suiteWorkload("balanced_mix"), 200000);
    Profile p = profileTrace(t, {});
    CoreConfig cfg = CoreConfig::nehalemReference();

    auto t0 = std::chrono::steady_clock::now();
    auto sim = simulate(t, cfg);
    auto t1 = std::chrono::steady_clock::now();
    auto model = evaluateModel(p, cfg);
    auto t2 = std::chrono::steady_clock::now();

    double simMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    double modelMs =
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    EXPECT_GT(sim.cycles, 0u);
    EXPECT_GT(model.cycles, 0.0);
    EXPECT_LT(modelMs * 10, simMs)
        << "model " << modelMs << " ms vs sim " << simMs << " ms";
}

TEST(Integration, ProfileOncePredictsManyConfigs)
{
    // One profile serves the whole (small) design space; relative
    // ordering of clearly-ranked machines must be preserved.
    Trace t = generateWorkload(suiteWorkload("mix_mid"), 120000);
    Profile p = profileTrace(t, {});

    CoreConfig small = CoreConfig::nehalemReference();
    small.setWidth(2);
    scaleBackEnd(small, 64);
    small.l3.sizeBytes = 2 * 1024 * 1024;

    CoreConfig big = CoreConfig::nehalemReference();
    big.setWidth(6);
    scaleBackEnd(big, 256);
    big.l3.sizeBytes = 32 * 1024 * 1024;

    auto mSmall = evaluateModel(p, small);
    auto mBig = evaluateModel(p, big);
    auto sSmall = simulate(t, small);
    auto sBig = simulate(t, big);

    EXPECT_LT(mBig.cycles, mSmall.cycles);
    EXPECT_LT(sBig.cycles, sSmall.cycles);
    // Relative speedup predicted within a factor band.
    double simRatio = static_cast<double>(sSmall.cycles) / sBig.cycles;
    double modRatio = mSmall.cycles / mBig.cycles;
    EXPECT_NEAR(modRatio / simRatio, 1.0, 0.5);
}

TEST(Integration, PhaseTrackingFollowsSimulator)
{
    // Thesis §6.5: per-window CPI from the model should correlate with
    // the simulator's windowed CPI over a phased workload.
    PhasedSpec spec = phasedSuite()[0];
    Trace t = generatePhased(spec);
    CoreConfig cfg = CoreConfig::nehalemReference();
    SimOptions so;
    so.cpiWindowUops = 20000;
    auto sim = simulate(t, cfg, so);
    Profile p = profileTrace(t, {});
    auto model = evaluateModel(p, cfg);

    ASSERT_GE(sim.windowCpi.size(), 10u);
    ASSERT_GE(model.windowCpi.size(), 10u);

    // Compare normalized series at matched relative positions.
    auto at = [](const std::vector<double> &v, double frac) {
        return v[std::min(v.size() - 1,
                          static_cast<size_t>(frac * v.size()))];
    };
    // Phase 1 (compute) vs phase 2 (memory): both sides must agree on
    // which phase is slower.
    double simPhase1 = at(sim.windowCpi, 0.15);
    double simPhase2 = at(sim.windowCpi, 0.40);
    double modPhase1 = at(model.windowCpi, 0.15);
    double modPhase2 = at(model.windowCpi, 0.40);
    EXPECT_EQ(simPhase1 < simPhase2, modPhase1 < modPhase2);
}

TEST(Integration, WholePipelineDeterministic)
{
    WorkloadSpec spec = suiteWorkload("stencil");
    auto run = [&]() {
        Trace t = generateWorkload(spec, 80000);
        Profile p = profileTrace(t, {});
        return evaluateModel(p, CoreConfig::nehalemReference()).cycles;
    };
    EXPECT_DOUBLE_EQ(run(), run());
}

} // namespace
} // namespace mipp
