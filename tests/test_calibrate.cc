/**
 * @file
 * Recalibration-layer tests: golden values for the piecewise branch
 * entropy fit and the DRAM contention corrections, the behavioural
 * properties each correction promises, the calibration harness
 * end-to-end, and the CalibrationReport JSON round-trip.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "model/eval_cache.hh"
#include "model/interval_model.hh"
#include "profiler/profiler.hh"
#include "validate/calibrate.hh"
#include "workloads/workload.hh"

namespace mipp {
namespace {

Profile
profileSuiteWorkload(const char *name, size_t uops = 60000)
{
    Trace t = generateWorkload(suiteWorkload(name), uops);
    ProfilerConfig pc;
    pc.name = name;
    return profileTrace(t, pc);
}

ModelResult
evalAt(const Profile &p, const ModelOptions &mo)
{
    return evaluateModel(p, CoreConfig::nehalemReference(), mo);
}

// --- Piecewise branch entropy fit -------------------------------------------

TEST(BranchEntropyFit, PretrainedGShareGoldenValues)
{
    // Golden check of the recalibrated gshare fit (flat below the knee,
    // steep hinge above it). Regenerate with `mipp_cli report calibrate`
    // and update on intentional refits.
    BranchMissModel m =
        BranchMissModel::pretrained(BranchPredictorKind::GShare);
    EXPECT_NEAR(m.missRate(0.10), 0.0905, 0.02);
    EXPECT_NEAR(m.missRate(0.30), 0.2365, 0.03);
    EXPECT_NEAR(m.missRate(0.44), 0.3717, 0.04);
    // Monotone and clamped.
    EXPECT_LE(m.missRate(0.10), m.missRate(0.30));
    EXPECT_LE(m.missRate(0.30), m.missRate(0.44));
    EXPECT_LE(m.missRate(5.0), 1.0);
}

TEST(BranchEntropyFit, PiecewiseTrainerRecoversHinge)
{
    // Synthetic data on an exact hinge relation: the trainer must
    // recover knee and slopes closely and beat the linear fit.
    EntropyFitTrainer tr;
    for (double e = 0.02; e <= 0.6; e += 0.02)
        tr.add(e, 0.05 + 0.2 * e + 1.5 * std::max(0.0, e - 0.3));
    BranchMissModel m = tr.fitPiecewise(BranchPredictorKind::GShare);
    EXPECT_NEAR(m.slope, 0.2, 0.05);
    EXPECT_NEAR(m.intercept, 0.05, 0.02);
    EXPECT_NEAR(m.knee, 0.3, 0.06);
    EXPECT_NEAR(m.kneeSlope, 1.5, 0.3);
    EXPECT_GT(tr.r2(m), 0.99);
    EXPECT_GE(tr.r2(m), tr.r2());
}

TEST(BranchEntropyFit, PiecewiseTrainerNeverFitsDecreasingSegments)
{
    // Data whose unconstrained least squares wants a negative slope
    // below the knee: the constrained fit must stay monotone.
    EntropyFitTrainer tr;
    tr.add(0.10, 0.09);
    tr.add(0.14, 0.04);
    tr.add(0.18, 0.05);
    tr.add(0.20, 0.11);
    tr.add(0.30, 0.22);
    tr.add(0.37, 0.27);
    tr.add(0.44, 0.36);
    BranchMissModel m = tr.fitPiecewise(BranchPredictorKind::GShare);
    EXPECT_GE(m.slope, 0.0);
    for (double e = 0.0; e < 1.0; e += 0.05)
        EXPECT_LE(m.missRate(e), m.missRate(e + 0.05) + 1e-12);
}

// --- DRAM contention corrections --------------------------------------------

class CalibratedComponents : public ::testing::Test
{
  protected:
    ModelOptions fitted_;      // defaults: fitted calibration
    ModelOptions uncal_;

    void
    SetUp() override
    {
        uncal_.cal = ModelCalibration::uncalibrated();
    }
};

TEST_F(CalibratedComponents, GoldenComponentValuesAtReference)
{
    // Golden per-uop CPI-stack components at the reference core for
    // three contrasting workloads (values from the recalibrated
    // ACCURACY_baseline.json; tolerance 15% relative). These pin the
    // DRAM contention correction: a change to the shadow/bus/window
    // mechanisms that moves any of these by more than the tolerance is
    // a deliberate recalibration, not noise.
    struct Golden {
        const char *workload;
        double dram, base;
    };
    const Golden goldens[] = {
        {"stream_add", 1.4059, 0.4427},   // bandwidth-heavy stream
        {"branchy", 2.7876, 0.8305},      // mispredict-truncated MLP
        {"cold_sweep", 7.1249, 0.6083},   // cold-miss dominated
    };
    for (const Golden &g : goldens) {
        Profile p = profileSuiteWorkload(g.workload);
        ModelResult r = evalAt(p, fitted_);
        double uops = r.uops;
        ASSERT_GT(uops, 0) << g.workload;
        EXPECT_NEAR(r.stack.dram / uops, g.dram, 0.15 * g.dram)
            << g.workload;
        EXPECT_NEAR(r.stack.base / uops, g.base, 0.15 * g.base)
            << g.workload;
    }
}

TEST_F(CalibratedComponents, MispredictTruncationRaisesBranchyDram)
{
    // The mispredict-interval window truncation is what lifts the DRAM
    // component on branch-heavy workloads (misses separated by a
    // mispredict cannot overlap): with it, branchy's DRAM component
    // must exceed the uncalibrated prediction.
    Profile p = profileSuiteWorkload("branchy");
    ModelResult with = evalAt(p, fitted_);
    ModelResult without = evalAt(p, uncal_);
    EXPECT_GT(with.stack.dram / with.uops,
              1.2 * without.stack.dram / without.uops);
    // And the effective MLP must drop accordingly.
    EXPECT_LT(with.mlp, without.mlp);
}

TEST_F(CalibratedComponents, ColdInjectionRescuesLowMissDram)
{
    // Per-op error diffusion loses the scattered cold misses of
    // low-miss workloads entirely (DRAM component collapses to ~0);
    // the cold-shortfall injection must restore a positive component.
    Profile p = profileSuiteWorkload("dense_compute");
    ModelResult with = evalAt(p, fitted_);
    ModelResult without = evalAt(p, uncal_);
    EXPECT_LT(without.stack.dram / without.uops, 0.02);
    EXPECT_GT(with.stack.dram / with.uops, 0.04);
}

TEST_F(CalibratedComponents, BusQueueScaleTamesColdSweepOvershoot)
{
    // The Eq 4.5 bus model over-charges high-MLP streams; the scaled
    // queueing excess must predict a *smaller* per-miss bus cost than
    // the uncalibrated model on cold_sweep.
    Profile p = profileSuiteWorkload("cold_sweep");
    ModelResult with = evalAt(p, fitted_);
    ModelResult without = evalAt(p, uncal_);
    EXPECT_LT(with.busCyclesPerMiss, without.busCyclesPerMiss);
}

TEST_F(CalibratedComponents, CachedEvaluationMatchesUncached)
{
    // The recalibrated paths thread new state through the EvalContext
    // memo keys (truncated windows, cold injection); cached evaluation
    // must stay bitwise-identical to the uncached compat wrapper.
    Profile p = profileSuiteWorkload("mix_mid", 30000);
    EvalContext ctx(p);
    for (const ModelOptions &mo : {fitted_, uncal_}) {
        ModelResult a = evaluateModel(ctx,
                                      CoreConfig::nehalemReference(), mo);
        ModelResult b = evaluateModel(p, CoreConfig::nehalemReference(),
                                      mo);
        EXPECT_EQ(a.cycles, b.cycles);
        EXPECT_EQ(a.stack.dram, b.stack.dram);
        EXPECT_EQ(a.stack.base, b.stack.base);
        EXPECT_EQ(a.stack.branch, b.stack.branch);
        EXPECT_EQ(a.mlp, b.mlp);
    }
}

// --- Calibration harness + JSON round-trip ----------------------------------

TEST(CalibrationReportJson, RoundTripsThroughDisk)
{
    CalibrationReport r;
    r.uops = 12345;
    r.gridNames = {"nehalem", "little"};
    r.workloadNames = {"a", "b"};
    r.cal = {0.45, 1.25, 2.5, 0.6, 0.33, 0.8};
    BranchMissModel m;
    m.kind = BranchPredictorKind::Tournament;
    m.slope = 0.21;
    m.intercept = 0.015;
    m.knee = 0.3;
    m.kneeSlope = 1.1;
    r.branchFits = {m};
    r.branchR2 = {0.87};
    r.before[0] = {10.5, -3.25, 40.0, -40.0, 12.0};
    r.after[0] = {4.5, 0.25, 12.0, -12.0, 8.5};
    CalibrationReport::GridCheck gc;
    gc.grid = "wide";
    gc.summary[0] = {6.25, -1.5, 20.0, -20.0, 9.75};
    r.gridChecks = {gc};

    std::string path =
        (std::filesystem::temp_directory_path() / "mipp_calib_rt.json")
            .string();
    ASSERT_TRUE(writeCalibrationJson(r, path));
    CalibrationReport got = loadCalibrationJson(path);
    std::remove(path.c_str());

    EXPECT_EQ(got.uops, r.uops);
    EXPECT_EQ(got.cal, r.cal);
    ASSERT_EQ(got.branchFits.size(), 1u);
    EXPECT_EQ(got.branchFits[0].kind, m.kind);
    EXPECT_NEAR(got.branchFits[0].slope, m.slope, 1e-6);
    EXPECT_NEAR(got.branchFits[0].intercept, m.intercept, 1e-6);
    EXPECT_NEAR(got.branchFits[0].knee, m.knee, 1e-6);
    EXPECT_NEAR(got.branchFits[0].kneeSlope, m.kneeSlope, 1e-6);
    ASSERT_EQ(got.branchR2.size(), 1u);
    EXPECT_NEAR(got.branchR2[0], 0.87, 1e-6);
    EXPECT_NEAR(got.before[0].mape, 10.5, 1e-6);
    EXPECT_NEAR(got.before[0].meanSigned, -3.25, 1e-6);
    EXPECT_NEAR(got.before[0].minSigned, -40.0, 1e-6);
    EXPECT_NEAR(got.after[0].mape, 4.5, 1e-6);
    EXPECT_NEAR(got.after[0].maxSigned, 8.5, 1e-6);
    ASSERT_EQ(got.gridChecks.size(), 1u);
    EXPECT_EQ(got.gridChecks[0].grid, "wide");
    EXPECT_NEAR(got.gridChecks[0].summary[0].mape, 6.25, 1e-6);
    EXPECT_NEAR(got.gridChecks[0].summary[0].meanSigned, -1.5, 1e-6);
    EXPECT_NEAR(got.gridChecks[0].summary[0].maxSigned, 9.75, 1e-6);
}

TEST(CalibrationReportJson, RejectsForeignJson)
{
    std::string path =
        (std::filesystem::temp_directory_path() / "mipp_calib_bad.json")
            .string();
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("{\"schema\": \"something-else\"}", f);
        std::fclose(f);
    }
    EXPECT_THROW(loadCalibrationJson(path), std::runtime_error);
    std::remove(path.c_str());
    EXPECT_THROW(loadCalibrationJson("/nonexistent/calib.json"),
                 std::runtime_error);
}

TEST(CalibrationHarness, SmallRunFitsAndImproves)
{
    // End-to-end harness on a reduced setup: three workloads, short
    // traces, one descent round. Checks structure, not exact values.
    CalibrationOptions opts;
    opts.uops = 10000;
    opts.includePhased = false;
    opts.workloads = {"branchy", "stream_add", "dense_compute"};
    opts.rounds = 1;
    opts.mopts.cal = ModelCalibration::uncalibrated();
    // Cross-check the fit on the same preset it fits on ("ci" is the
    // default grid): the re-simulated ground truth and re-evaluated
    // model are deterministic, so the check summary must reproduce the
    // "after" column exactly — pinning the no-refit semantics.
    opts.checkGrids = {"ci"};
    CalibrationReport rep = runCalibration(opts);

    EXPECT_EQ(rep.workloadNames.size(), 3u);
    EXPECT_EQ(rep.branchFits.size(),
              static_cast<size_t>(BranchPredictorKind::NumKinds));
    for (const BranchMissModel &m : rep.branchFits) {
        EXPECT_GE(m.slope, 0.0);
        EXPECT_GE(m.kneeSlope, 0.0);
    }
    // The fit must not meaningfully worsen its objective components on
    // its own training grid (each line search only accepts strict
    // improvements of its component objective; total CPI carries a
    // smaller weight, hence the slack).
    auto cpi = static_cast<size_t>(AccuracyMetric::Cpi);
    auto dram = static_cast<size_t>(AccuracyMetric::Dram);
    EXPECT_LE(rep.after[cpi].mape, rep.before[cpi].mape + 2.0);
    EXPECT_LE(rep.after[dram].mape, rep.before[dram].mape + 1e-9);
    ASSERT_EQ(rep.gridChecks.size(), 1u);
    EXPECT_EQ(rep.gridChecks[0].grid, "ci");
    for (size_t k = 0; k < kNumAccuracyMetrics; ++k) {
        EXPECT_EQ(rep.gridChecks[0].summary[k].mape, rep.after[k].mape);
        EXPECT_EQ(rep.gridChecks[0].summary[k].meanSigned,
                  rep.after[k].meanSigned);
    }
    // Round-trip the generated report.
    std::string path =
        (std::filesystem::temp_directory_path() / "mipp_calib_e2e.json")
            .string();
    ASSERT_TRUE(writeCalibrationJson(rep, path));
    CalibrationReport got = loadCalibrationJson(path);
    std::remove(path.c_str());
    EXPECT_EQ(got.cal, rep.cal);
    EXPECT_EQ(got.branchFits.size(), rep.branchFits.size());
}

} // namespace
} // namespace mipp
