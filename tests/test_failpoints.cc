/**
 * @file
 * Tests for the failpoint registry: arming semantics (fire counts,
 * sleep-only sites), the disarmed fast path, string specs and reset —
 * the machinery the serve recovery tests depend on.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "util/cancel.hh"
#include "util/failpoint.hh"

namespace mipp {
namespace {

class Failpoints : public ::testing::Test
{
  protected:
    void SetUp() override { failpoint::reset(); }
    void TearDown() override { failpoint::reset(); }
};

TEST_F(Failpoints, DisarmedSiteNeverFires)
{
    EXPECT_EQ(failpoint::armedCount(), 0);
    EXPECT_FALSE(MIPP_FAILPOINT("no.such.site"));
}

TEST_F(Failpoints, UnlimitedFiresUntilDisarmed)
{
    failpoint::arm("t.unlimited");
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(MIPP_FAILPOINT("t.unlimited"));
    failpoint::disarm("t.unlimited");
    EXPECT_FALSE(MIPP_FAILPOINT("t.unlimited"));
    EXPECT_EQ(failpoint::armedCount(), 0);
}

TEST_F(Failpoints, CountedFiresDecrementToZero)
{
    failpoint::arm("t.counted", {.fires = 2});
    EXPECT_TRUE(MIPP_FAILPOINT("t.counted"));
    EXPECT_TRUE(MIPP_FAILPOINT("t.counted"));
    EXPECT_FALSE(MIPP_FAILPOINT("t.counted"));
    EXPECT_FALSE(MIPP_FAILPOINT("t.counted"));
}

TEST_F(Failpoints, SleepOnlySiteDelaysButDoesNotFire)
{
    failpoint::arm("t.sleepy", {.fires = 0, .sleepMs = 30});
    auto t0 = std::chrono::steady_clock::now();
    EXPECT_FALSE(MIPP_FAILPOINT("t.sleepy"));
    auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    EXPECT_GE(ms, 25);
}

TEST_F(Failpoints, CancelledTokenSkipsDelayImmediately)
{
    failpoint::arm("t.slow_cancelled", {.fires = 0, .sleepMs = 5000});
    CancelToken tok = CancelToken::manual();
    tok.cancel();
    auto t0 = std::chrono::steady_clock::now();
    EXPECT_FALSE(MIPP_FAILPOINT_C("t.slow_cancelled", &tok));
    auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    EXPECT_LT(ms, 1000); // must not serve the full 5 s delay
}

TEST_F(Failpoints, CancelMidDelayCutsSleepShort)
{
    failpoint::arm("t.slow_midway", {.fires = 0, .sleepMs = 5000});
    CancelToken tok = CancelToken::manual();
    // t0 before the spawn: the canceller's 20 ms run from thread start,
    // so measuring from any later instant under-counts under load.
    auto t0 = std::chrono::steady_clock::now();
    std::thread canceller([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        tok.cancel();
    });
    EXPECT_FALSE(MIPP_FAILPOINT_C("t.slow_midway", &tok));
    auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    canceller.join();
    EXPECT_GE(ms, 15);   // waited until the cancel...
    EXPECT_LT(ms, 1000); // ...not the armed 5 s
}

TEST_F(Failpoints, NullTokenStillSleepsFullDelay)
{
    failpoint::arm("t.slow_null", {.fires = 0, .sleepMs = 30});
    auto t0 = std::chrono::steady_clock::now();
    EXPECT_FALSE(MIPP_FAILPOINT_C("t.slow_null", nullptr));
    auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    EXPECT_GE(ms, 25);
}

TEST_F(Failpoints, SitesAreIndependent)
{
    failpoint::arm("t.a");
    failpoint::arm("t.b", {.fires = 0});
    EXPECT_EQ(failpoint::armedCount(), 2);
    EXPECT_TRUE(MIPP_FAILPOINT("t.a"));
    EXPECT_FALSE(MIPP_FAILPOINT("t.b"));
    EXPECT_FALSE(MIPP_FAILPOINT("t.c"));
}

TEST_F(Failpoints, RearmReplacesSpec)
{
    failpoint::arm("t.replace", {.fires = 1});
    EXPECT_TRUE(MIPP_FAILPOINT("t.replace"));
    EXPECT_FALSE(MIPP_FAILPOINT("t.replace"));
    failpoint::arm("t.replace", {.fires = 1});
    EXPECT_TRUE(MIPP_FAILPOINT("t.replace"));
    EXPECT_EQ(failpoint::armedCount(), 1); // replaced, not duplicated
}

TEST_F(Failpoints, ResetDisarmsEverything)
{
    failpoint::arm("t.x");
    failpoint::arm("t.y");
    failpoint::reset();
    EXPECT_EQ(failpoint::armedCount(), 0);
    EXPECT_FALSE(MIPP_FAILPOINT("t.x"));
}

TEST_F(Failpoints, ArmFromStringForms)
{
    EXPECT_TRUE(failpoint::armFromString("t.plain"));
    EXPECT_TRUE(MIPP_FAILPOINT("t.plain"));

    EXPECT_TRUE(failpoint::armFromString("t.two=2"));
    EXPECT_TRUE(MIPP_FAILPOINT("t.two"));
    EXPECT_TRUE(MIPP_FAILPOINT("t.two"));
    EXPECT_FALSE(MIPP_FAILPOINT("t.two"));

    EXPECT_TRUE(failpoint::armFromString("t.slow=0:10"));
    EXPECT_FALSE(MIPP_FAILPOINT("t.slow")); // sleep-only

    EXPECT_FALSE(failpoint::armFromString(""));
    EXPECT_FALSE(failpoint::armFromString("t.bad=notanumber"));
    EXPECT_FALSE(failpoint::armFromString("t.bad=1:alsobad"));
}

} // namespace
} // namespace mipp
