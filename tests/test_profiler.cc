/**
 * @file
 * Tests for the micro-architecture independent profiler: instruction-mix
 * sampling, dependence chains (thesis Alg 3.1 worked example), branch
 * entropy, reuse distances, cold misses and per-static-load statistics.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "profiler/profiler.hh"
#include "trace/rng.hh"
#include "workloads/workload.hh"

namespace mipp {
namespace {

ProfilerConfig
fullProfiling()
{
    ProfilerConfig cfg;
    cfg.sampling = SamplingConfig::full();
    return cfg;
}

MicroOp
uop(UopType t, int8_t dst = kNoReg, int8_t s1 = kNoReg,
    int8_t s2 = kNoReg)
{
    MicroOp op;
    op.type = t;
    op.pc = 0x400000;
    op.dst = dst;
    op.src1 = s1;
    op.src2 = s2;
    return op;
}

TEST(Profiler, UopMixCountsExactWithoutSampling)
{
    Trace t;
    for (int i = 0; i < 30; ++i)
        t.push(uop(UopType::IntAlu, 4));
    for (int i = 0; i < 10; ++i) {
        MicroOp op = uop(UopType::Load, 5);
        op.addr = 0x1000 + i * 64;
        t.push(op);
    }
    Profile p = profileTrace(t, fullProfiling());
    EXPECT_EQ(p.profiledUops, 40u);
    EXPECT_DOUBLE_EQ(p.uopFraction(UopType::IntAlu), 0.75);
    EXPECT_DOUBLE_EQ(p.uopFraction(UopType::Load), 0.25);
}

TEST(Profiler, SampledMixApproximatesFullMix)
{
    // Thesis Fig 5.2: sampled vs full instruction mix.
    WorkloadSpec spec = suiteWorkload("balanced_mix");
    Trace t = generateWorkload(spec, 400000);
    ProfilerConfig sampled;
    sampled.sampling = {1000, 20000};
    Profile full = profileTrace(t, fullProfiling());
    Profile samp = profileTrace(t, sampled);
    for (int ty = 0; ty < kNumUopTypes; ++ty) {
        double err = std::abs(
            full.uopFraction(static_cast<UopType>(ty)) -
            samp.uopFraction(static_cast<UopType>(ty)));
        EXPECT_LT(err, 0.02) << uopTypeName(static_cast<UopType>(ty));
    }
}

TEST(Profiler, DependenceChainsThesisExample)
{
    // Thesis Example 3.1 / Fig 3.3: the 8-instruction vector-sum loop.
    // Build exactly the first 8 dynamic instructions:
    //   a: MOV ->R0 ; b: MOV ->R1 ; c: MOV ->R2
    //   d1: LD [R2]->R3 ; e1: ADD R1,R3->R1 ; f1: ADD R2->R2
    //   g1: BNE R2 ; d2: LD [R2]->R3
    Trace t;
    MicroOp a = uop(UopType::Move, 0);           a.pc = 0x100;
    MicroOp b = uop(UopType::Move, 1);           b.pc = 0x108;
    MicroOp c = uop(UopType::Move, 2);           c.pc = 0x110;
    MicroOp d1 = uop(UopType::Load, 3, 2);       d1.pc = 0x118;
    d1.addr = 0xF0;
    MicroOp e1 = uop(UopType::IntAlu, 1, 1, 3);  e1.pc = 0x120;
    MicroOp f1 = uop(UopType::IntAlu, 2, 2);     f1.pc = 0x128;
    MicroOp g1 = uop(UopType::Branch, kNoReg, 2); g1.pc = 0x130;
    g1.taken = true;
    MicroOp d2 = d1;                             d2.addr = 0xF4;
    for (const auto &op : {a, b, c, d1, e1, f1, g1, d2})
        t.push(op);

    ProfilerConfig cfg = fullProfiling();
    cfg.robSizes = {8};
    Profile p = profileTrace(t, cfg);
    // Thesis Eq 3.2: AP = (1+1+1+2+3+2+3+3)/8 = 2, one branch with
    // chain length 3, critical path 3.
    EXPECT_NEAR(p.chains.apAt(0), 2.0, 1e-9);
    EXPECT_NEAR(p.chains.abpAt(0), 3.0, 1e-9);
    EXPECT_NEAR(p.chains.cpAt(0), 3.0, 1e-9);
}

TEST(Profiler, ChainLengthsGrowWithRobSize)
{
    WorkloadSpec spec = suiteWorkload("fp_serial");
    Trace t = generateWorkload(spec, 200000);
    Profile p = profileTrace(t, {});
    double cp32 = p.chains.cp(32);
    double cp128 = p.chains.cp(128);
    double cp256 = p.chains.cp(256);
    EXPECT_LT(cp32, cp128);
    EXPECT_LT(cp128, cp256);
    EXPECT_GE(p.chains.cp(128), p.chains.ap(128));
}

TEST(Profiler, ChainInterpolationMatchesProfiledSizes)
{
    // Thesis §5.2: the log fit should be accurate *at* profiled sizes
    // and smooth between them (Fig 5.3/5.4).
    Trace t = generateWorkload(suiteWorkload("balanced_mix"), 200000);
    Profile p = profileTrace(t, {});
    for (size_t i = 0; i < p.robSizes.size(); ++i) {
        double direct = p.chains.cpAt(i);
        double interp = p.chains.cp(p.robSizes[i]);
        EXPECT_NEAR(interp, direct, std::max(0.05 * direct, 0.2));
    }
    // Between sizes: value between neighbours (monotone-ish fit).
    double lo = p.chains.cp(128), mid = p.chains.cp(136),
           hi = p.chains.cp(144);
    EXPECT_GE(mid, std::min(lo, hi) - 0.2);
    EXPECT_LE(mid, std::max(lo, hi) + 0.2);
}

TEST(Profiler, EntropyZeroForPerfectlyBiasedBranches)
{
    Trace t;
    for (int i = 0; i < 2000; ++i) {
        MicroOp op = uop(UopType::Branch);
        op.pc = 0x400100;
        op.taken = true;
        t.push(op);
    }
    Profile p = profileTrace(t, fullProfiling());
    EXPECT_NEAR(p.branch.entropy(), 0.0, 1e-6);
    EXPECT_EQ(p.branch.branches, 2000u);
    EXPECT_EQ(p.branch.staticBranches, 1u);
}

TEST(Profiler, EntropyNearOneForFairRandomBranches)
{
    Rng rng(3);
    Trace t;
    for (int i = 0; i < 50000; ++i) {
        MicroOp op = uop(UopType::Branch);
        op.pc = 0x400200;
        op.taken = rng.chance(0.5);
        t.push(op);
    }
    Profile p = profileTrace(t, fullProfiling());
    EXPECT_GT(p.branch.entropy(), 0.85);
    EXPECT_LE(p.branch.entropy(), 1.0);
}

TEST(Profiler, EntropyMatchesLinearFormulaForBiasedBranches)
{
    // p(taken)=0.9 independent of history: E = 2*min(p,1-p) = 0.2.
    Rng rng(17);
    Trace t;
    for (int i = 0; i < 100000; ++i) {
        MicroOp op = uop(UopType::Branch);
        op.pc = 0x400300;
        op.taken = rng.chance(0.9);
        t.push(op);
    }
    Profile p = profileTrace(t, fullProfiling());
    // Finite history-context counts add noise; allow a band.
    EXPECT_NEAR(p.branch.entropy(), 0.2, 0.06);
}

TEST(Profiler, PeriodicBranchHasLowEntropy)
{
    Trace t;
    for (int i = 0; i < 50000; ++i) {
        MicroOp op = uop(UopType::Branch);
        op.pc = 0x400400;
        op.taken = i % 4 != 0; // perfectly predictable with history
        t.push(op);
    }
    Profile p = profileTrace(t, fullProfiling());
    EXPECT_LT(p.branch.entropy(), 0.02);
}

TEST(Profiler, ReuseDistancesExactOnCraftedStream)
{
    // Stream of lines: A B A -> reuse distance of the second A is 1.
    Trace t;
    auto mkLoad = [](uint64_t line) {
        MicroOp op = uop(UopType::Load, 4);
        op.addr = line * kLineSize;
        return op;
    };
    t.push(mkLoad(1));
    t.push(mkLoad(2));
    t.push(mkLoad(1));
    Profile p = profileTrace(t, fullProfiling());
    EXPECT_EQ(p.reuseLoads.total(), 3u);
    EXPECT_EQ(p.reuseLoads.infiniteCount(), 2u); // A and B first touches
    EXPECT_EQ(p.reuseLoads.binCount(1), 1u);     // rd = 1
}

TEST(Profiler, ColdMissesCountFirstTouchesOnly)
{
    Trace t;
    for (int i = 0; i < 100; ++i) {
        MicroOp op = uop(UopType::Load, 4);
        op.addr = (i % 10) * kLineSize;
        t.push(op);
    }
    Profile p = profileTrace(t, fullProfiling());
    EXPECT_EQ(p.cold.coldLoadMisses, 10u);
}

TEST(Profiler, StrideClassificationSingleStride)
{
    Trace t;
    for (int i = 0; i < 5000; ++i) {
        MicroOp op = uop(UopType::Load, 4);
        op.pc = 0x400500;
        op.addr = 0x1000 + i * 8;
        t.push(op);
    }
    Profile p = profileTrace(t, fullProfiling());
    ASSERT_EQ(p.memOps.size(), 1u);
    EXPECT_EQ(p.memOps[0].strideClass(), StrideClass::SingleStride);
    auto dom = p.memOps[0].dominantStrides();
    ASSERT_FALSE(dom.empty());
    EXPECT_EQ(dom[0], 8);
}

TEST(Profiler, StrideClassificationTwoStride)
{
    Trace t;
    uint64_t addr = 0x1000;
    for (int i = 0; i < 5000; ++i) {
        MicroOp op = uop(UopType::Load, 4);
        op.pc = 0x400600;
        op.addr = addr;
        addr += i % 2 ? 8 : 64;
        t.push(op);
    }
    Profile p = profileTrace(t, fullProfiling());
    ASSERT_EQ(p.memOps.size(), 1u);
    EXPECT_EQ(p.memOps[0].strideClass(), StrideClass::TwoStride);
}

TEST(Profiler, StrideMapCapsAt64DistinctStrides)
{
    // One static load produces 70 distinct strides; only the first 64
    // may be tracked. Strides already in the set keep counting at the
    // cap, later-new strides are dropped.
    Trace t;
    uint64_t addr = 0x10000;
    auto pushLoad = [&](uint64_t a) {
        MicroOp op = uop(UopType::Load, 4);
        op.pc = 0x400700;
        op.addr = a;
        t.push(op);
    };
    pushLoad(addr);
    for (int s = 1; s <= 70; ++s) {
        addr += static_cast<uint64_t>(s) * 8; // stride s*8, all distinct
        pushLoad(addr);
    }
    addr += 8; // stride 8 again: already tracked, must still count
    pushLoad(addr);

    Profile p = profileTrace(t, fullProfiling());
    ASSERT_EQ(p.memOps.size(), 1u);
    const auto &strides = p.memOps[0].strides;
    EXPECT_EQ(strides.size(), 64u);

    auto countOf = [&](int64_t s) -> uint64_t {
        for (const auto &[stride, n] : strides)
            if (stride == s)
                return n;
        return 0;
    };
    EXPECT_EQ(countOf(8), 2u);        // first stride, seen twice
    EXPECT_EQ(countOf(64 * 8), 1u);   // 64th distinct stride still in
    EXPECT_EQ(countOf(65 * 8), 0u);   // 65th arrived at the cap: dropped
    EXPECT_EQ(countOf(70 * 8), 0u);
}

TEST(Profiler, StrideClassificationRandom)
{
    Rng rng(4);
    Trace t;
    for (int i = 0; i < 5000; ++i) {
        MicroOp op = uop(UopType::Load, 4);
        op.pc = 0x400700;
        op.addr = 0x1000 + rng.below(1 << 20) * 8;
        t.push(op);
    }
    Profile p = profileTrace(t, fullProfiling());
    ASSERT_EQ(p.memOps.size(), 1u);
    EXPECT_EQ(p.memOps[0].strideClass(), StrideClass::RandomStride);
}

TEST(Profiler, LoadSpacingTracksGap)
{
    // One static load every 10 uops.
    Trace t;
    for (int i = 0; i < 20000; ++i) {
        if (i % 10 == 0) {
            MicroOp op = uop(UopType::Load, 4);
            op.pc = 0x400800;
            op.addr = 0x1000 + i * 8;
            t.push(op);
        } else {
            t.push(uop(UopType::IntAlu, 5));
        }
    }
    Profile p = profileTrace(t, fullProfiling());
    ASSERT_EQ(p.memOps.size(), 1u);
    EXPECT_NEAR(p.memOps[0].avgGap(), 10.0, 0.2);
}

TEST(Profiler, PointerChaseDetected)
{
    Trace t = generateWorkload(suiteWorkload("ptr_chase"), 100000);
    Profile p = profileTrace(t, {});
    int chases = 0;
    for (const auto &op : p.memOps)
        chases += !op.isStore && op.isPointerChase();
    EXPECT_GT(chases, 3);
}

TEST(Profiler, LoadDepDistributionSumsToOne)
{
    Trace t = generateWorkload(suiteWorkload("mix_mid"), 200000);
    Profile p = profileTrace(t, {});
    for (size_t i = 0; i < p.robSizes.size(); ++i) {
        if (p.loadDeps.loads[i] == 0)
            continue;
        double sum = 0;
        for (int l = 1; l <= LoadDepProfile::kMaxDepth; ++l)
            sum += p.loadDeps.f(i, l);
        EXPECT_NEAR(sum, 1.0, 1e-9) << "rob " << p.robSizes[i];
        EXPECT_LE(p.loadDeps.pathsPerWindow(i),
                  p.loadDeps.loadsPerWindow(i) + 1e-9);
    }
}

TEST(Profiler, WindowsCoverSampledTrace)
{
    Trace t = generateWorkload(suiteWorkload("stream_add"), 200000);
    ProfilerConfig cfg;
    cfg.sampling = {1000, 20000};
    Profile p = profileTrace(t, cfg);
    EXPECT_EQ(p.windows.size(), 10u);
    EXPECT_NEAR(p.scale(), 20.0, 0.5);
    for (const auto &w : p.windows)
        EXPECT_NEAR(w.uops(), 1000.0, 1.0);
}

TEST(Profiler, DeterministicProfiles)
{
    Trace t = generateWorkload(suiteWorkload("stencil"), 100000);
    Profile a = profileTrace(t, {});
    Profile b = profileTrace(t, {});
    EXPECT_EQ(a.profiledUops, b.profiledUops);
    EXPECT_DOUBLE_EQ(a.branch.entropy(), b.branch.entropy());
    EXPECT_EQ(a.reuseLoads.total(), b.reuseLoads.total());
    EXPECT_EQ(a.memOps.size(), b.memOps.size());
}

} // namespace
} // namespace mipp
