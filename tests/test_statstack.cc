/**
 * @file
 * Tests for the StatStack reuse->stack distance model, including the
 * worked example of thesis Fig 4.1.
 */

#include <gtest/gtest.h>

#include "statstack/statstack.hh"

namespace mipp {
namespace {

TEST(StatStack, UniformReuseGivesMatchingStackDistance)
{
    // A cyclic sweep over W distinct lines: every reuse distance is W-1
    // and every stack distance is also W-1.
    constexpr uint64_t W = 32;
    LogHistogram h;
    for (int i = 0; i < 1000; ++i)
        h.add(W - 1);
    StatStack ss(h);
    EXPECT_NEAR(ss.stackDistance(W - 1), W - 1, 2.0);

    // Caches with >= W lines never miss on the finite reuses; smaller
    // caches always miss.
    EXPECT_LT(ss.missRatio(h, 2 * W), 0.05);
    EXPECT_GT(ss.missRatio(h, W / 4), 0.9);
}

TEST(StatStack, Figure41Example)
{
    // Thesis Fig 4.1: stream A B B C A C A with reuses
    //   B->B: rd 0, sd 0
    //   A->A: rd 3, sd 2
    //   C->C: rd 1, sd 1
    //   A->A: rd 1, sd 1
    // Build the reuse histogram of that stream and check the expected
    // stack distance of the rd=3 reuse is ~2 (two intervening arrows).
    LogHistogram h;
    h.add(0);
    h.add(3);
    h.add(1);
    h.add(1);
    h.addInfinite(3); // first touches of A, B, C
    StatStack ss(h);
    double sd3 = ss.stackDistance(3);
    EXPECT_NEAR(sd3, 2.0, 0.75);
    // Monotonicity and boundedness: SD(r) <= r.
    EXPECT_LE(ss.stackDistance(1), 1.001);
    EXPECT_LE(sd3, 3.0);
}

TEST(StatStack, StackDistanceIsMonotone)
{
    LogHistogram h;
    for (uint64_t d = 1; d < 5000; d += 7)
        h.add(d);
    h.addInfinite(100);
    StatStack ss(h);
    double prev = 0;
    for (uint64_t r = 0; r < 20000; r += 97) {
        double sd = ss.stackDistance(r);
        EXPECT_GE(sd, prev - 1e-9);
        EXPECT_LE(sd, static_cast<double>(r) + 1e-9);
        prev = sd;
    }
}

/** Property: miss ratio decreases (weakly) with cache size. */
class MissRatioMonotone : public ::testing::TestWithParam<double>
{
};

TEST_P(MissRatioMonotone, LargerCacheNeverMissesMore)
{
    double coldFrac = GetParam();
    LogHistogram h;
    // Synthetic mixed-reuse population.
    for (uint64_t d = 1; d < 100000; d = d * 3 / 2 + 1)
        h.add(d, 50);
    uint64_t cold = static_cast<uint64_t>(
        coldFrac * static_cast<double>(h.total()));
    h.addInfinite(cold);

    StatStack ss(h);
    double prev = 1.0;
    for (double lines = 16; lines < 4e6; lines *= 2) {
        double mr = ss.missRatio(h, lines);
        EXPECT_LE(mr, prev + 1e-9);
        EXPECT_GE(mr, 0.0);
        EXPECT_LE(mr, 1.0);
        prev = mr;
    }
    // Huge cache: only cold misses remain.
    EXPECT_NEAR(ss.missRatio(h, 1e9),
                static_cast<double>(cold) / h.total(), 0.01);
}

INSTANTIATE_TEST_SUITE_P(ColdFractions, MissRatioMonotone,
                         ::testing::Values(0.0, 0.1, 0.5, 0.9));

TEST(StatStack, EmptyHistogramNeverCrashes)
{
    LogHistogram h;
    StatStack ss(h);
    EXPECT_DOUBLE_EQ(ss.missRatio(h, 100), 0.0);
    EXPECT_GE(ss.stackDistance(50), 0.0);
}

TEST(StatStack, AllColdMeansAllMiss)
{
    LogHistogram h;
    h.addInfinite(1000);
    StatStack ss(h);
    EXPECT_DOUBLE_EQ(ss.missRatio(h, 1 << 20), 1.0);
}

TEST(StatStack, TypeSplitUsesCombinedTransform)
{
    // Combined stream defines the stack-distance transform; a load-only
    // population with short reuses should hit even if stores have long
    // reuses.
    LogHistogram combined, loadsOnly;
    for (int i = 0; i < 500; ++i) {
        combined.add(4);
        loadsOnly.add(4);
        combined.add(100000);
    }
    StatStack ss(combined);
    EXPECT_LT(ss.missRatio(loadsOnly, 1024), 0.05);
}

TEST(StatStack, MissesScaleWithPopulation)
{
    LogHistogram h;
    for (int i = 0; i < 100; ++i)
        h.add(1000);
    StatStack ss(h);
    double m = ss.misses(h, 8);
    EXPECT_NEAR(m, 100.0, 1.0); // everything misses an 8-line cache
}

} // namespace
} // namespace mipp
