/**
 * @file
 * Unit + property tests for the log-binned histogram.
 */

#include <gtest/gtest.h>

#include "profiler/histogram.hh"

namespace mipp {
namespace {

TEST(LogHistogram, SmallValuesAreExact)
{
    for (uint64_t v = 0; v < LogHistogram::kExactMax; ++v) {
        EXPECT_EQ(LogHistogram::binIndex(v), v);
        EXPECT_EQ(LogHistogram::binLower(v), v);
        EXPECT_EQ(LogHistogram::binMid(v), v);
    }
}

/** Property: binLower(binIndex(v)) <= v < binLower(binIndex(v)+1). */
class BinProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(BinProperty, ValueFallsInItsBin)
{
    uint64_t v = GetParam();
    size_t b = LogHistogram::binIndex(v);
    EXPECT_LE(LogHistogram::binLower(b), v);
    EXPECT_GT(LogHistogram::binLower(b + 1), v);
}

TEST_P(BinProperty, BinsAreMonotone)
{
    uint64_t v = GetParam();
    size_t b = LogHistogram::binIndex(v);
    EXPECT_LT(LogHistogram::binLower(b), LogHistogram::binLower(b + 1));
    uint64_t mid = LogHistogram::binMid(b);
    EXPECT_LE(LogHistogram::binLower(b), mid);
    EXPECT_LT(mid, LogHistogram::binLower(b + 1));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BinProperty,
    ::testing::Values(0ull, 1ull, 7ull, 127ull, 128ull, 129ull, 200ull,
                      255ull, 256ull, 1000ull, 4096ull, 65535ull,
                      1000000ull, 1ull << 24, (1ull << 24) + 12345,
                      1ull << 33));

TEST(LogHistogram, RelativeBinningErrorBounded)
{
    // With 8 sub-bins per octave the bin width is at most 1/8 of the bin
    // lower bound, so the relative error of binMid is below ~7 %.
    for (uint64_t v = 128; v < (1ull << 30); v = v * 5 / 3 + 1) {
        size_t b = LogHistogram::binIndex(v);
        double mid = static_cast<double>(LogHistogram::binMid(b));
        EXPECT_NEAR(mid, static_cast<double>(v),
                    static_cast<double>(v) / 8.0 + 1);
    }
}

TEST(LogHistogram, CountAtLeastCountsTailAndInfinite)
{
    LogHistogram h;
    h.add(5);
    h.add(10);
    h.add(1000);
    h.addInfinite(2);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.finiteTotal(), 3u);
    EXPECT_EQ(h.countAtLeast(0), 5u);
    EXPECT_EQ(h.countAtLeast(6), 4u);
    EXPECT_EQ(h.countAtLeast(11), 3u);
    EXPECT_EQ(h.countAtLeast(100000), 2u);
}

TEST(LogHistogram, CountAtLeastExactRangeStaysExact)
{
    // Regression: on the exact range (v < kExactMax) every query sits on
    // a bin boundary, so no interpolation may kick in.
    LogHistogram h;
    for (uint64_t v = 0; v < 100; ++v)
        h.add(v);
    for (uint64_t v = 0; v <= 100; ++v)
        EXPECT_DOUBLE_EQ(h.countAtLeast(v), static_cast<double>(100 - v));
}

TEST(LogHistogram, CountAtLeastInterpolatesPartialLogBin)
{
    // Regression for the bin-boundary overcount: a query inside a log
    // bin used to count the whole bin. The first log bin is [128, 144)
    // (16 wide); with 8 samples at 128, a query at 136 must count only
    // the half of the bin at or beyond it, mirroring the uniform
    // within-bin assumption of StatStack::stackDistance.
    LogHistogram h;
    h.add(128, 8);
    EXPECT_DOUBLE_EQ(h.countAtLeast(128), 8.0); // bin boundary: full bin
    EXPECT_DOUBLE_EQ(h.countAtLeast(136), 4.0); // mid-bin: half the mass
    EXPECT_DOUBLE_EQ(h.countAtLeast(140), 2.0); // three quarters in
    EXPECT_DOUBLE_EQ(h.countAtLeast(144), 0.0); // next bin: nothing
}

TEST(LogHistogram, CountAtLeastInterpolationIncludesInfinite)
{
    LogHistogram h;
    h.add(128, 8);
    h.addInfinite(3);
    EXPECT_DOUBLE_EQ(h.countAtLeast(136), 7.0);
    EXPECT_DOUBLE_EQ(h.countAtLeast(1 << 20), 3.0); // beyond all bins
}

TEST(LogHistogram, CountAtLeastMonotoneNonIncreasing)
{
    LogHistogram h;
    for (uint64_t d = 1; d < 100000; d = d * 3 / 2 + 1)
        h.add(d, 7);
    h.addInfinite(5);
    double prev = h.countAtLeast(0);
    for (uint64_t v = 0; v < 200000; v += 111) {
        double c = h.countAtLeast(v);
        EXPECT_LE(c, prev + 1e-9);
        prev = c;
    }
}

TEST(LogHistogram, SubtractUndoesMerge)
{
    LogHistogram a, b;
    a.add(3, 5);
    a.add(500, 2);
    a.addInfinite(1);
    b.add(3, 1);
    b.add(9000, 4);
    a.merge(b);
    a.subtract(b);
    EXPECT_EQ(a.total(), 8u);
    EXPECT_EQ(a.binCount(3), 5u);
    EXPECT_EQ(a.binCount(LogHistogram::binIndex(9000)), 0u);
    EXPECT_EQ(a.infiniteCount(), 1u);
}

TEST(LogHistogram, MergeAddsCounts)
{
    LogHistogram a, b;
    a.add(3);
    a.addInfinite();
    b.add(3);
    b.add(500);
    a.merge(b);
    EXPECT_EQ(a.total(), 4u);
    EXPECT_EQ(a.binCount(3), 2u);
    EXPECT_EQ(a.infiniteCount(), 1u);
}

TEST(LogHistogram, FiniteMeanSmallValues)
{
    LogHistogram h;
    h.add(10);
    h.add(20);
    h.add(30);
    EXPECT_DOUBLE_EQ(h.finiteMean(), 20.0);
}

TEST(LogHistogram, WeightedAdd)
{
    LogHistogram h;
    h.add(4, 10);
    EXPECT_EQ(h.total(), 10u);
    EXPECT_EQ(h.binCount(4), 10u);
}

TEST(LogHistogram, SuffixCacheInvalidatedByMergeAndSubtract)
{
    // Regression guard: countAtLeast builds a cached suffix-sum table;
    // merge/subtract must invalidate it or later queries report stale
    // counts. Query *between* every mutation to force the cache.
    LogHistogram a, b;
    a.add(10, 4);
    EXPECT_DOUBLE_EQ(a.countAtLeast(10), 4.0);
    b.add(10, 6);
    b.addInfinite(2);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.countAtLeast(10), 12.0);
    EXPECT_DOUBLE_EQ(a.countAtLeast(11), 2.0);
    a.subtract(b);
    EXPECT_DOUBLE_EQ(a.countAtLeast(10), 4.0);
    EXPECT_DOUBLE_EQ(a.countAtLeast(0), 4.0);
}

TEST(LogHistogram, MoveLeavesSourceEmpty)
{
    // Regression guard: the move operations clear the source's counts
    // and cache; a stale total_/suffix_ made a moved-from histogram
    // report counts its bins no longer held.
    LogHistogram src;
    src.add(10, 3);
    src.addInfinite(2);
    EXPECT_DOUBLE_EQ(src.countAtLeast(0), 5.0); // cache built pre-move

    LogHistogram dst(std::move(src));
    EXPECT_EQ(dst.total(), 5u);
    EXPECT_EQ(src.total(), 0u);
    EXPECT_EQ(src.infiniteCount(), 0u);
    EXPECT_DOUBLE_EQ(src.countAtLeast(0), 0.0);

    LogHistogram assigned;
    assigned.add(1);
    assigned = std::move(dst);
    EXPECT_EQ(assigned.total(), 5u);
    EXPECT_EQ(dst.total(), 0u);
    EXPECT_DOUBLE_EQ(dst.countAtLeast(0), 0.0);

    // Self-move keeps the histogram intact.
    LogHistogram &ref = assigned;
    assigned = std::move(ref);
    EXPECT_EQ(assigned.total(), 5u);
}

} // namespace
} // namespace mipp
