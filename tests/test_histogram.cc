/**
 * @file
 * Unit + property tests for the log-binned histogram.
 */

#include <gtest/gtest.h>

#include "profiler/histogram.hh"

namespace mipp {
namespace {

TEST(LogHistogram, SmallValuesAreExact)
{
    for (uint64_t v = 0; v < LogHistogram::kExactMax; ++v) {
        EXPECT_EQ(LogHistogram::binIndex(v), v);
        EXPECT_EQ(LogHistogram::binLower(v), v);
        EXPECT_EQ(LogHistogram::binMid(v), v);
    }
}

/** Property: binLower(binIndex(v)) <= v < binLower(binIndex(v)+1). */
class BinProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(BinProperty, ValueFallsInItsBin)
{
    uint64_t v = GetParam();
    size_t b = LogHistogram::binIndex(v);
    EXPECT_LE(LogHistogram::binLower(b), v);
    EXPECT_GT(LogHistogram::binLower(b + 1), v);
}

TEST_P(BinProperty, BinsAreMonotone)
{
    uint64_t v = GetParam();
    size_t b = LogHistogram::binIndex(v);
    EXPECT_LT(LogHistogram::binLower(b), LogHistogram::binLower(b + 1));
    uint64_t mid = LogHistogram::binMid(b);
    EXPECT_LE(LogHistogram::binLower(b), mid);
    EXPECT_LT(mid, LogHistogram::binLower(b + 1));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BinProperty,
    ::testing::Values(0ull, 1ull, 7ull, 127ull, 128ull, 129ull, 200ull,
                      255ull, 256ull, 1000ull, 4096ull, 65535ull,
                      1000000ull, 1ull << 24, (1ull << 24) + 12345,
                      1ull << 33));

TEST(LogHistogram, RelativeBinningErrorBounded)
{
    // With 8 sub-bins per octave the bin width is at most 1/8 of the bin
    // lower bound, so the relative error of binMid is below ~7 %.
    for (uint64_t v = 128; v < (1ull << 30); v = v * 5 / 3 + 1) {
        size_t b = LogHistogram::binIndex(v);
        double mid = static_cast<double>(LogHistogram::binMid(b));
        EXPECT_NEAR(mid, static_cast<double>(v),
                    static_cast<double>(v) / 8.0 + 1);
    }
}

TEST(LogHistogram, CountAtLeastCountsTailAndInfinite)
{
    LogHistogram h;
    h.add(5);
    h.add(10);
    h.add(1000);
    h.addInfinite(2);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.finiteTotal(), 3u);
    EXPECT_EQ(h.countAtLeast(0), 5u);
    EXPECT_EQ(h.countAtLeast(6), 4u);
    EXPECT_EQ(h.countAtLeast(11), 3u);
    EXPECT_EQ(h.countAtLeast(100000), 2u);
}

TEST(LogHistogram, MergeAddsCounts)
{
    LogHistogram a, b;
    a.add(3);
    a.addInfinite();
    b.add(3);
    b.add(500);
    a.merge(b);
    EXPECT_EQ(a.total(), 4u);
    EXPECT_EQ(a.binCount(3), 2u);
    EXPECT_EQ(a.infiniteCount(), 1u);
}

TEST(LogHistogram, FiniteMeanSmallValues)
{
    LogHistogram h;
    h.add(10);
    h.add(20);
    h.add(30);
    EXPECT_DOUBLE_EQ(h.finiteMean(), 20.0);
}

TEST(LogHistogram, WeightedAdd)
{
    LogHistogram h;
    h.add(4, 10);
    EXPECT_EQ(h.total(), 10u);
    EXPECT_EQ(h.binCount(4), 10u);
}

} // namespace
} // namespace mipp
