/**
 * @file
 * Profile::merge property tests. merge combines *finalized* profiles of
 * independent workload parts (sharding one long program's sections, or
 * pooling phases into an aggregate): identity against empty profiles,
 * associativity (integer statistics exact; double accumulators to
 * rounding), determinism, and additivity of every count. Exact
 * single-stream parallelism is profileTraceParallel's job, not merge's.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "profile_compare.hh"
#include "profiler/profiler.hh"
#include "workloads/workload.hh"

namespace mipp {
namespace {

Profile
profileOf(const char *name, size_t uops, ProfilerConfig cfg = {})
{
    Trace t = generateWorkload(suiteWorkload(name), uops);
    cfg.name = name;
    return profileTrace(t, cfg);
}

/** Like expectProfilesIdentical, but double accumulators (chain sums,
 *  entropy) compare to rounding — reassociating double sums is allowed
 *  to differ in the last ulps. */
void
expectProfilesEquivalent(const Profile &a, const Profile &b)
{
    EXPECT_EQ(a.totalUops, b.totalUops);
    EXPECT_EQ(a.profiledUops, b.profiledUops);
    EXPECT_EQ(a.profiledInsts, b.profiledInsts);
    EXPECT_EQ(a.uopCounts, b.uopCounts);
    EXPECT_EQ(a.srcOperands, b.srcOperands);
    EXPECT_EQ(a.dstOperands, b.dstOperands);
    EXPECT_EQ(a.robSizes, b.robSizes);
    for (size_t i = 0; i < a.robSizes.size(); ++i) {
        auto ra = a.chains.exportRow(i);
        auto rb = b.chains.exportRow(i);
        EXPECT_DOUBLE_EQ(ra.apSum, rb.apSum) << "chains row " << i;
        EXPECT_DOUBLE_EQ(ra.abpSum, rb.abpSum) << "chains row " << i;
        EXPECT_DOUBLE_EQ(ra.cpSum, rb.cpSum) << "chains row " << i;
        EXPECT_EQ(ra.weight, rb.weight) << "chains row " << i;
        EXPECT_EQ(ra.abpWeight, rb.abpWeight) << "chains row " << i;
    }
    EXPECT_EQ(a.loadDeps.histo, b.loadDeps.histo);
    EXPECT_EQ(a.branch.branches, b.branch.branches);
    EXPECT_DOUBLE_EQ(a.branch.entropySum, b.branch.entropySum);
    EXPECT_EQ(a.cold.coldLoadMisses, b.cold.coldLoadMisses);
    expectHistogramsEqual(a.reuseAll, b.reuseAll, "reuseAll");
    expectHistogramsEqual(a.reuseInsts, b.reuseInsts, "reuseInsts");
    ASSERT_EQ(a.memOps.size(), b.memOps.size());
    for (size_t i = 0; i < a.memOps.size(); ++i) {
        EXPECT_EQ(a.memOps[i].pc, b.memOps[i].pc) << "op " << i;
        EXPECT_EQ(a.memOps[i].count, b.memOps[i].count) << "op " << i;
        EXPECT_EQ(a.memOps[i].strides, b.memOps[i].strides) << "op " << i;
    }
    EXPECT_EQ(a.windows.size(), b.windows.size());
}

TEST(ProfileMerge, EmptyIsIdentity)
{
    Profile p = profileOf("balanced_mix", 50000);
    Profile orig = p;

    Profile empty;
    EXPECT_TRUE(empty.empty());
    p.merge(empty);
    expectProfilesIdentical(p, orig);

    // Merging into an empty receiver adopts everything but keeps a
    // non-empty receiver name.
    Profile sink;
    sink.name = "aggregate";
    sink.merge(orig);
    EXPECT_EQ(sink.name, "aggregate");
    sink.name = orig.name;
    expectProfilesIdentical(sink, orig);

    Profile unnamed;
    unnamed.merge(orig);
    EXPECT_EQ(unnamed.name, orig.name);
}

TEST(ProfileMerge, Associative)
{
    Profile a = profileOf("balanced_mix", 40000);
    Profile b = profileOf("stream_add", 40000);
    Profile c = profileOf("branchy", 40000);

    Profile ab = a;
    ab.merge(b);
    Profile abc1 = ab;
    abc1.merge(c);

    Profile bc = b;
    bc.merge(c);
    Profile abc2 = a;
    abc2.merge(bc);

    expectProfilesEquivalent(abc1, abc2);
}

TEST(ProfileMerge, Deterministic)
{
    Profile a = profileOf("ptr_chase", 40000);
    Profile b = profileOf("bursty_mem", 40000);

    Profile m1 = a;
    m1.merge(b);
    Profile m2 = a;
    m2.merge(b);
    expectProfilesIdentical(m1, m2);
}

TEST(ProfileMerge, CountsAreAdditive)
{
    Profile a = profileOf("balanced_mix", 60000);
    Profile b = profileOf("balanced_mix", 40000);

    Profile m = a;
    m.merge(b);
    EXPECT_EQ(m.totalUops, a.totalUops + b.totalUops);
    EXPECT_EQ(m.profiledUops, a.profiledUops + b.profiledUops);
    EXPECT_EQ(m.windows.size(), a.windows.size() + b.windows.size());
    EXPECT_EQ(m.reuseAll.total(), a.reuseAll.total() + b.reuseAll.total());
    EXPECT_EQ(m.cold.coldLoadMisses,
              a.cold.coldLoadMisses + b.cold.coldLoadMisses);
    EXPECT_EQ(m.branch.branches, a.branch.branches + b.branch.branches);

    // Same generator => same static pcs: ops unify rather than append,
    // and every window's memCounts indices stay in range.
    EXPECT_EQ(m.memOps.size(), a.memOps.size());
    for (const auto &w : m.windows)
        for (const auto &[idx, cnt] : w.memCounts)
            ASSERT_LT(idx, m.memOps.size());
}

TEST(ProfileMerge, DisjointOpsAppend)
{
    Profile a = profileOf("stream_add", 40000);
    Profile b = profileOf("ptr_chase", 40000);
    size_t shared = 0;
    for (const auto &oa : a.memOps)
        for (const auto &ob : b.memOps)
            shared += oa.pc == ob.pc;
    Profile m = a;
    m.merge(b);
    EXPECT_EQ(m.memOps.size(), a.memOps.size() + b.memOps.size() - shared);
}

TEST(ProfileMerge, MismatchedShapesThrow)
{
    Profile a = profileOf("balanced_mix", 30000);

    ProfilerConfig narrow;
    narrow.robSizes = {32, 128};
    Profile b = profileOf("balanced_mix", 30000, narrow);
    EXPECT_THROW(a.merge(b), std::invalid_argument);

    ProfilerConfig longHist;
    longHist.historyBits = 14;
    Profile c = profileOf("balanced_mix", 30000, longHist);
    EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(ProfileMerge, DependenceChainsGuards)
{
    DependenceChains empty;
    DependenceChains filled(std::vector<uint32_t>{16, 32});
    filled.addSample(0, 1.5, 0.5, true, 3.0);

    // Merging an empty instance is a no-op; merging into an empty
    // instance adopts the other's sizes and sums.
    DependenceChains copy = filled;
    copy.merge(empty);
    EXPECT_EQ(copy.robSizes(), filled.robSizes());
    DependenceChains sink;
    sink.merge(filled);
    EXPECT_EQ(sink.robSizes(), filled.robSizes());
    EXPECT_DOUBLE_EQ(sink.exportRow(0).apSum, 1.5);

    DependenceChains other(std::vector<uint32_t>{16, 64});
    EXPECT_THROW(filled.merge(other), std::invalid_argument);
}

} // namespace
} // namespace mipp
