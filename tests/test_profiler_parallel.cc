/**
 * @file
 * Segment-parallel profiler parity: profileTraceParallel and the
 * TraceSource streaming drivers must produce Profiles *bit-identical*
 * to the sequential profileTrace for every workload, thread count and
 * segment size — the carry/absorb design resolves every cross-segment
 * observation to exactly the sequential value and replays every
 * order-sensitive float accumulation in stream order.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "profile_compare.hh"
#include "profiler/profiler.hh"
#include "profiler/segment_profiler.hh"
#include "trace/trace_source.hh"
#include "workloads/workload.hh"

namespace mipp {
namespace {

// --------------------------------------------------------------------------
// profileTraceParallel parity
// --------------------------------------------------------------------------

TEST(ProfilerParallel, BitIdenticalAcrossWorkloads)
{
    for (const char *name :
         {"balanced_mix", "ptr_chase", "stream_add", "branchy",
          "bursty_mem"}) {
        Trace t = generateWorkload(suiteWorkload(name), 100000);
        ProfilerConfig cfg;
        cfg.name = name;
        Profile seq = profileTrace(t, cfg);
        Profile par = profileTraceParallel(t, cfg, {.threads = 4});
        SCOPED_TRACE(name);
        expectProfilesIdentical(par, seq);
    }
}

TEST(ProfilerParallel, BitIdenticalAcrossSegmentSizes)
{
    Trace t = generateWorkload(suiteWorkload("balanced_mix"), 120000);
    ProfilerConfig cfg;
    Profile seq = profileTrace(t, cfg);
    // One window per segment (maximum boundary resolution), a few
    // windows, an unaligned request (rounded up internally), and more
    // segments than uops allow.
    for (size_t segUops : {20000ul, 60000ul, 30001ul, 999999ul}) {
        Profile par = profileTraceParallel(
            t, cfg, {.threads = 4, .segmentUops = segUops});
        SCOPED_TRACE(segUops);
        expectProfilesIdentical(par, seq);
    }
}

TEST(ProfilerParallel, BitIdenticalAcrossThreadCounts)
{
    Trace t = generateWorkload(suiteWorkload("ptr_chase"), 100000);
    ProfilerConfig cfg;
    Profile seq = profileTrace(t, cfg);
    for (unsigned threads : {2u, 3u, 8u}) {
        Profile par = profileTraceParallel(t, cfg, {.threads = threads});
        SCOPED_TRACE(threads);
        expectProfilesIdentical(par, seq);
    }
}

TEST(ProfilerParallel, SparseBranchPathBitIdentical)
{
    // historyBits > 12 exercises the sparse (pc, history) branch tables
    // and a larger pending-branch budget in the carry segments.
    Trace t = generateWorkload(suiteWorkload("branchy"), 100000);
    ProfilerConfig cfg;
    cfg.historyBits = 14;
    Profile seq = profileTrace(t, cfg);
    Profile par = profileTraceParallel(t, cfg, {.threads = 4});
    expectProfilesIdentical(par, seq);
}

TEST(ProfilerParallel, UnsampledFallsBackToSequential)
{
    Trace t = generateWorkload(suiteWorkload("balanced_mix"), 20000);
    ProfilerConfig cfg;
    cfg.sampling = SamplingConfig::full();
    Profile seq = profileTrace(t, cfg);
    Profile par = profileTraceParallel(t, cfg, {.threads = 4});
    expectProfilesIdentical(par, seq);
}

TEST(ProfilerParallel, TinyAndEmptyTraces)
{
    ProfilerConfig cfg;
    {
        Trace t;
        Profile par = profileTraceParallel(t, cfg, {.threads = 4});
        EXPECT_EQ(par.totalUops, 0u);
        EXPECT_TRUE(par.windows.empty());
    }
    {
        // Smaller than one sampling window: single segment, sequential.
        Trace t = generateWorkload(suiteWorkload("stream_add"), 5000);
        Profile seq = profileTrace(t, cfg);
        Profile par = profileTraceParallel(t, cfg, {.threads = 4});
        expectProfilesIdentical(par, seq);
    }
    {
        // Barely two windows: one boundary to carry across.
        Trace t = generateWorkload(suiteWorkload("stream_add"), 40001);
        Profile seq = profileTrace(t, cfg);
        Profile par = profileTraceParallel(
            t, cfg, {.threads = 4, .segmentUops = 20000});
        expectProfilesIdentical(par, seq);
    }
}

// --------------------------------------------------------------------------
// TraceSource streaming drivers
// --------------------------------------------------------------------------

/** Yields deliberately ragged spans to stress feed-alignment handling
 *  in the copy-accumulate driver loop. */
class RaggedSource final : public TraceSource
{
  public:
    explicit RaggedSource(const Trace &trace) : trace_(&trace) {}

    uint64_t sizeHint() const override { return kUnknownSize; }

    TraceSegment
    next(size_t maxUops) override
    {
        // Vary the yield size but never exceed the request.
        size_t want = 1 + (pos_ * 7919) % 4096;
        size_t n = std::min({want, maxUops, trace_->size() - pos_});
        TraceSegment seg{trace_->data() + pos_, n, pos_};
        pos_ += n;
        return seg;
    }

    void reset() override { pos_ = 0; }

  private:
    const Trace *trace_;
    size_t pos_ = 0;
};

TEST(ProfilerParallel, SourceMatchesTrace)
{
    Trace t = generateWorkload(suiteWorkload("balanced_mix"), 100000);
    ProfilerConfig cfg;
    Profile seq = profileTrace(t, cfg);

    MaterializedTraceSource src(t);
    Profile streamed = profileSource(src, cfg);
    expectProfilesIdentical(streamed, seq);
}

TEST(ProfilerParallel, SourceUnsampledMatchesTrace)
{
    Trace t = generateWorkload(suiteWorkload("ptr_chase"), 12000);
    ProfilerConfig cfg;
    cfg.sampling = SamplingConfig::full();
    Profile seq = profileTrace(t, cfg);

    MaterializedTraceSource src(t);
    Profile streamed = profileSource(src, cfg);
    expectProfilesIdentical(streamed, seq);
}

TEST(ProfilerParallel, SourceParallelMatchesTrace)
{
    Trace t = generateWorkload(suiteWorkload("bursty_mem"), 150000);
    ProfilerConfig cfg;
    Profile seq = profileTrace(t, cfg);

    MaterializedTraceSource src(t);
    Profile par = profileSourceParallel(
        src, cfg, {.threads = 4, .segmentUops = 20000});
    expectProfilesIdentical(par, seq);
}

TEST(ProfilerParallel, SourceParallelHandlesRaggedSpans)
{
    Trace t = generateWorkload(suiteWorkload("branchy"), 100000);
    ProfilerConfig cfg;
    Profile seq = profileTrace(t, cfg);

    RaggedSource src(t);
    Profile par = profileSourceParallel(src, cfg, {.threads = 3});
    expectProfilesIdentical(par, seq);
}

// --------------------------------------------------------------------------
// SegmentProfiler contract errors
// --------------------------------------------------------------------------

TEST(ProfilerParallel, SegmentContractViolationsThrow)
{
    ProfilerConfig cfg; // windowSize 20000
    // Carry segments must start window-aligned.
    EXPECT_THROW(
        SegmentProfiler(cfg, SegmentProfiler::Role::Carry, 12345),
        std::invalid_argument);
    // The head starts at uop 0.
    EXPECT_THROW(SegmentProfiler(cfg, SegmentProfiler::Role::Head, 20000),
                 std::invalid_argument);

    Trace t = generateWorkload(suiteWorkload("balanced_mix"), 50000);
    // Absorbing out of stream order is rejected.
    SegmentProfiler head(cfg);
    SegmentProfiler seg(cfg, SegmentProfiler::Role::Carry, 20000);
    seg.feed(t.data() + 20000, 20000);
    EXPECT_THROW(head.absorb(std::move(seg)), std::logic_error);
    // A carry segment cannot finalize.
    SegmentProfiler carry(cfg, SegmentProfiler::Role::Carry, 0);
    carry.feed(t.data(), 20000);
    EXPECT_THROW(std::move(carry).finalize(), std::logic_error);
    // Non-final feeds must cover whole windows.
    SegmentProfiler head2(cfg);
    head2.feed(t.data(), 12345);
    EXPECT_THROW(head2.feed(t.data() + 12345, 20000), std::logic_error);
}

TEST(ProfilerParallel, MultiFeedMatchesSingleFeed)
{
    Trace t = generateWorkload(suiteWorkload("balanced_mix"), 100000);
    ProfilerConfig cfg;
    Profile seq = profileTrace(t, cfg);

    // Window-aligned incremental feeds into one head == one-shot feed.
    SegmentProfiler head(cfg);
    head.feed(t.data(), 40000);
    head.feed(t.data() + 40000, 20000);
    head.feed(t.data() + 60000, 40000);
    Profile streamed = std::move(head).finalize();
    expectProfilesIdentical(streamed, seq);
}

} // namespace
} // namespace mipp
