#!/usr/bin/env python3
"""Check intra-repo markdown links (and their #anchors) in the given files.

Usage: tools/check_doc_links.py README.md docs/*.md

A link is checked when it is relative (http/https/mailto links are
skipped): the target file must exist, and a #fragment must match a
GitHub-style heading slug in the target. Exits non-zero listing every
broken link. Stdlib only.
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def slugify(heading: str) -> str:
    # GitHub's anchor algorithm: strip markdown code spans, lowercase,
    # drop everything but word chars / spaces / hyphens, spaces->hyphens.
    heading = heading.replace("`", "")
    heading = heading.strip().lower()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def anchors_of(path: Path) -> set:
    return {slugify(h) for h in HEADING_RE.findall(path.read_text())}


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = []
    checked = 0
    for name in argv[1:]:
        src = Path(name)
        for target in LINK_RE.findall(src.read_text()):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, ...
                continue
            frag = None
            if "#" in target:
                target, frag = target.split("#", 1)
            dest = src if not target else (src.parent / target)
            checked += 1
            if not dest.exists():
                errors.append(f"{src}: missing target '{target}'")
                continue
            if frag is not None:
                if dest.suffix != ".md":
                    continue
                if frag not in anchors_of(dest):
                    errors.append(f"{src}: no anchor '#{frag}' in {dest}")
    for e in errors:
        print(f"BROKEN  {e}", file=sys.stderr)
    print(f"{checked} links checked, {len(errors)} broken")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
