/**
 * @file
 * Synthetic workload generation — the SPEC CPU substitute.
 *
 * The paper profiles SPEC CPU 2006 binaries with Pin. Neither is available
 * offline, so this module generates deterministic synthetic uop traces whose
 * *distributions* — instruction mix, uops/instruction ratio, dependence-chain
 * depth, branch entropy, per-static-load stride behaviour, working-set sizes
 * and miss burstiness — span the same behavioural axes the SPEC suite spans.
 * Every model input the paper derives from a profile is exercised by at
 * least one workload in the standard suite (see workloadSuite()).
 *
 * A workload is a loop nest over a fixed static body of macro-instructions.
 * Static uops keep their pc across iterations, so per-static-load stride
 * profiles, load-spacing distributions and branch history patterns are
 * meaningful, exactly as for real loops.
 */

#ifndef MIPP_WORKLOADS_WORKLOAD_HH
#define MIPP_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace mipp {

/** Memory-footprint class of a static memory operation. */
enum class FootprintClass : uint8_t {
    L1Fit,   ///< fits comfortably in L1D
    L2Fit,   ///< fits in L2, misses L1
    L3Fit,   ///< fits in LLC, misses L2
    Dram,    ///< exceeds the LLC
    Unique,  ///< streaming, never-reused addresses (pure cold misses)
};

/** Access pattern of a static memory operation. */
enum class AccessPattern : uint8_t {
    Stride1,   ///< constant stride
    Stride2,   ///< alternating pair of strides
    Random,    ///< uniformly random within the footprint
    PtrChase,  ///< random, and data-dependent on its own previous instance
};

/**
 * Declarative description of a synthetic benchmark. All probabilities are
 * fractions in [0,1]; mix fractions are normalized internally.
 */
struct WorkloadSpec {
    std::string name = "workload";
    uint64_t seed = 1;

    // --- Macro-instruction mix (will be normalized) ------------------------
    double fLoad = 0.22;
    double fStore = 0.10;
    double fIntAlu = 0.30;
    double fIntMul = 0.02;
    double fIntDiv = 0.00;
    double fFpAlu = 0.10;
    double fFpMul = 0.05;
    double fFpDiv = 0.00;
    double fBranch = 0.12;
    double fMove = 0.09;

    /** Fraction of compute macro-instructions fused with a memory read
     *  (x86 reg-mem forms); raises the uops/instruction ratio. */
    double loadOpFusion = 0.15;

    // --- Dependences --------------------------------------------------------
    /** Geometric locality of producers: higher = depend on closer uops. */
    double depLocality = 0.4;
    /** Fraction of compute uops chained to the immediately preceding dst. */
    double serialChainFrac = 0.15;

    // --- Static code shape --------------------------------------------------
    /** Macro-instructions in the loop body. */
    int loopBodyInsts = 120;
    /** Inner-loop trip count (loop-back branch pattern). */
    int innerIters = 64;

    // --- Memory behaviour ---------------------------------------------------
    /** Pattern weights for static memory ops (normalized). */
    double wStride1 = 0.55;
    double wStride2 = 0.15;
    double wRandom = 0.20;
    double wPtrChase = 0.10;
    /** Footprint-class weights for static memory ops (normalized). */
    double wL1 = 0.45;
    double wL2 = 0.25;
    double wL3 = 0.20;
    double wDram = 0.10;
    double wUnique = 0.00;
    /** Typical stride in bytes for strided ops. */
    int64_t strideBytes = 8;

    // --- Branch behaviour ---------------------------------------------------
    /** Fraction of static branches with random (high-entropy) outcomes. */
    double branchRandomFrac = 0.15;
    /** Taken probability for random branches. */
    double branchTakenProb = 0.5;
    /** Period of periodic (predictable) branches. */
    int branchPeriod = 4;

    /**
     * Reject degenerate specs with a std::invalid_argument: negative
     * weights or fractions, an empty instruction mix, a loop body of
     * zero instructions, or — when the spec can emit memory ops — an
     * all-zero pattern or footprint mix (which would otherwise silently
     * collapse every memory op into one class). Called by
     * generateWorkload().
     */
    void validate() const;
};

/** Generate @p nUops micro-ops for @p spec. Deterministic in spec.seed. */
Trace generateWorkload(const WorkloadSpec &spec, size_t nUops);

/** A workload made of consecutive phases with different behaviour. */
struct PhasedSpec {
    std::string name;
    std::vector<std::pair<WorkloadSpec, size_t>> segments;
};

/** Concatenate the segment traces of a phased workload. */
Trace generatePhased(const PhasedSpec &spec);

/**
 * The standard 20-benchmark suite used by all evaluation benches. Each entry
 * is documented with the SPEC-like behaviour it stands in for.
 */
std::vector<WorkloadSpec> workloadSuite();

/** Subset of the suite with substantial off-core memory traffic. */
std::vector<WorkloadSpec> memoryBoundSuite();

/** Phased workloads used by the phase-analysis experiments (Fig 6.14). */
std::vector<PhasedSpec> phasedSuite();

/** Look up a suite workload by name; throws std::out_of_range if absent. */
WorkloadSpec suiteWorkload(const std::string &name);

} // namespace mipp

#endif // MIPP_WORKLOADS_WORKLOAD_HH
