#include "workloads/workload.hh"

#include <algorithm>
#include <stdexcept>

#include "trace/rng.hh"

namespace mipp {

namespace {

/** Region base addresses per footprint class (fixed virtual layout). */
constexpr uint64_t kL1Base = 0x10000000ULL;
constexpr uint64_t kL2Base = 0x20000000ULL;
constexpr uint64_t kL3Base = 0x40000000ULL;
constexpr uint64_t kDramBase = 0x80000000ULL;
constexpr uint64_t kUniqueBase = 0x10000000000ULL;

/** Footprint sizes in bytes, chosen to sit between design-space cache
 *  sizes: L1Fit < 16 KB, 64 KB < L2Fit < 128 KB, 512 KB < L3Fit < 2 MB,
 *  Dram > 32 MB. */
uint64_t
footprintBytes(FootprintClass c, Rng &rng)
{
    switch (c) {
      case FootprintClass::L1Fit: return 4096 + rng.below(8) * 1024;
      case FootprintClass::L2Fit: return 80 * 1024 + rng.below(5) * 8192;
      case FootprintClass::L3Fit:
        return 1024 * 1024 + rng.below(9) * 96 * 1024;
      case FootprintClass::Dram:
        return 48ULL * 1024 * 1024 + rng.below(4) * 12 * 1024 * 1024;
      case FootprintClass::Unique: return 1ULL << 40;
    }
    return 4096;
}

uint64_t
regionBase(FootprintClass c, int opIndex)
{
    switch (c) {
      case FootprintClass::L1Fit: return kL1Base;
      case FootprintClass::L2Fit: return kL2Base;
      case FootprintClass::L3Fit: return kL3Base;
      case FootprintClass::Dram: return kDramBase;
      case FootprintClass::Unique:
        return kUniqueBase + static_cast<uint64_t>(opIndex) * (1ULL << 40);
    }
    return kL1Base;
}

/** Branch outcome behaviour of one static branch. */
struct BranchBehavior {
    enum Kind { LoopBack, Periodic, RandomOutcome } kind = Periodic;
    int period = 4;
    double takenProb = 0.5;
};

/** Address-generation state of one static memory operation. */
struct MemState {
    AccessPattern pattern = AccessPattern::Stride1;
    FootprintClass footprint = FootprintClass::L1Fit;
    uint64_t base = 0;
    uint64_t ws = 4096;       ///< working-set size in bytes
    int64_t stride1 = 8;
    int64_t stride2 = 8;
    uint64_t counter = 0;     ///< dynamic instances so far
    uint64_t offset = 0;      ///< current offset within the region

    uint64_t
    nextAddr(Rng &rng)
    {
        uint64_t a;
        switch (pattern) {
          case AccessPattern::Stride1:
            a = base + offset;
            offset = (offset + stride1) % ws;
            break;
          case AccessPattern::Stride2:
            a = base + offset;
            offset = (offset + (counter % 2 == 0 ? stride1 : stride2)) % ws;
            break;
          case AccessPattern::Random:
          case AccessPattern::PtrChase:
            a = base + (rng.below(ws / 8) * 8);
            break;
          default:
            a = base;
        }
        if (footprint == FootprintClass::Unique) {
            a = base + counter * kLineSize;
        }
        ++counter;
        return a;
    }
};

/** One slot of the static loop body. */
struct StaticInst {
    UopType type = UopType::IntAlu;
    uint64_t pc = 0;
    bool fusedLoad = false;    ///< compute op with a memory-read uop
    int memIndex = -1;         ///< index into body mem states
    int fusedMemIndex = -1;    ///< mem state of the fused read
    int branchIndex = -1;      ///< index into branch behaviours
    int8_t chaseReg = kNoReg;  ///< dedicated register for PtrChase loads
};

/** Fully elaborated static body plus dynamic generation state. */
struct Body {
    std::vector<StaticInst> insts;
    std::vector<MemState> mems;
    std::vector<BranchBehavior> branches;
    std::vector<uint64_t> branchExecCount;
};

/** Pick an index from normalized cumulative weights. */
int
pickWeighted(Rng &rng, const std::vector<double> &weights)
{
    double total = 0;
    int lastPositive = 0;
    for (size_t i = 0; i < weights.size(); ++i) {
        if (weights[i] > 0) {
            total += weights[i];
            lastPositive = static_cast<int>(i);
        }
    }
    // All-zero mixes have no meaningful choice; fall back to the first
    // class instead of silently selecting the last (which turned an
    // all-zero pattern spec into PtrChase and an all-zero footprint spec
    // into Unique). WorkloadSpec::validate() rejects such specs upstream.
    if (total <= 0)
        return 0;
    double x = rng.uniform() * total;
    double acc = 0;
    for (size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (x < acc)
            return static_cast<int>(i);
    }
    // Floating-point round-off can push x past the last bin edge; the
    // last positively weighted class is the only correct fallback.
    return lastPositive;
}

MemState
makeMemState(const WorkloadSpec &spec, int opIndex, Rng &rng)
{
    MemState m;
    int pat = pickWeighted(rng, {spec.wStride1, spec.wStride2,
                                 spec.wRandom, spec.wPtrChase});
    m.pattern = static_cast<AccessPattern>(pat);
    int fpc = pickWeighted(rng, {spec.wL1, spec.wL2, spec.wL3,
                                 spec.wDram, spec.wUnique});
    m.footprint = static_cast<FootprintClass>(fpc);
    m.ws = footprintBytes(m.footprint, rng);
    m.base = regionBase(m.footprint, opIndex);
    m.stride1 = spec.strideBytes;
    m.stride2 = spec.strideBytes * 9;
    // Stagger starting offsets so ops of the same class interleave.
    m.offset = (rng.below(std::max<uint64_t>(m.ws / 64, 1)) * 64) %
               std::max<uint64_t>(m.ws, 1);
    return m;
}

Body
buildBody(const WorkloadSpec &spec, Rng &rng)
{
    Body body;
    const std::vector<double> mix = {
        spec.fLoad, spec.fStore, spec.fIntAlu, spec.fIntMul, spec.fIntDiv,
        spec.fFpAlu, spec.fFpMul, spec.fFpDiv, spec.fBranch, spec.fMove};
    const UopType mixTypes[] = {
        UopType::Load, UopType::Store, UopType::IntAlu, UopType::IntMul,
        UopType::IntDiv, UopType::FpAlu, UopType::FpMul, UopType::FpDiv,
        UopType::Branch, UopType::Move};

    int nextChaseReg = kNumIntRegs - 1; // r15 downward, at most 3 dedicated
    for (int i = 0; i < spec.loopBodyInsts; ++i) {
        StaticInst si;
        si.type = mixTypes[pickWeighted(rng, mix)];
        si.pc = 0x400000 + static_cast<uint64_t>(i) * 8;
        if (isMemory(si.type)) {
            si.memIndex = static_cast<int>(body.mems.size());
            body.mems.push_back(
                makeMemState(spec, si.memIndex, rng));
            if (si.type == UopType::Load &&
                body.mems.back().pattern == AccessPattern::PtrChase) {
                si.chaseReg = static_cast<int8_t>(nextChaseReg);
                if (nextChaseReg > kNumIntRegs - 3)
                    --nextChaseReg;
            }
        } else if (si.type == UopType::Branch) {
            si.branchIndex = static_cast<int>(body.branches.size());
            BranchBehavior b;
            if (rng.chance(spec.branchRandomFrac)) {
                b.kind = BranchBehavior::RandomOutcome;
                b.takenProb = spec.branchTakenProb;
            } else {
                b.kind = BranchBehavior::Periodic;
                b.period = std::max(2, spec.branchPeriod +
                                       static_cast<int>(rng.below(3)) - 1);
            }
            body.branches.push_back(b);
        } else if (si.type != UopType::Move &&
                   rng.chance(spec.loadOpFusion)) {
            // x86 reg-mem compute form: extra memory-read uop.
            si.fusedLoad = true;
            si.fusedMemIndex = static_cast<int>(body.mems.size());
            body.mems.push_back(
                makeMemState(spec, si.fusedMemIndex, rng));
        }
        body.insts.push_back(si);
    }

    // Loop-back branch closing the body.
    StaticInst loop;
    loop.type = UopType::Branch;
    loop.pc = 0x400000 + static_cast<uint64_t>(spec.loopBodyInsts) * 8;
    loop.branchIndex = static_cast<int>(body.branches.size());
    BranchBehavior lb;
    lb.kind = BranchBehavior::LoopBack;
    lb.period = std::max(2, spec.innerIters);
    body.branches.push_back(lb);
    body.insts.push_back(loop);

    body.branchExecCount.assign(body.branches.size(), 0);
    return body;
}

/** Tracks recently produced registers for dependence construction. */
class ProducerTracker
{
  public:
    void
    produced(int8_t reg)
    {
        if (reg == kNoReg)
            return;
        recent_[head_ % kDepth] = reg;
        head_++;
        last_ = reg;
    }

    /** Most recent destination register, or a base register. */
    int8_t lastDst() const { return last_; }

    /** Pick a producer roughly @p dist entries back. */
    int8_t
    recent(int dist) const
    {
        if (head_ == 0)
            return 0; // base register r0
        size_t n = std::min<size_t>(head_, kDepth);
        size_t idx = (head_ - 1 - std::min<size_t>(dist, n - 1)) % kDepth;
        return recent_[idx];
    }

  private:
    static constexpr size_t kDepth = 16;
    int8_t recent_[kDepth] = {};
    size_t head_ = 0;
    int8_t last_ = 0;
};

/** Round-robin destination register allocator per domain. */
class DstAllocator
{
  public:
    int8_t
    nextInt()
    {
        int8_t r = static_cast<int8_t>(4 + intIdx_ % 9); // r4..r12
        ++intIdx_;
        return r;
    }

    int8_t
    nextFp()
    {
        int8_t r = static_cast<int8_t>(kNumIntRegs + fpIdx_ % 14);
        ++fpIdx_;
        return r;
    }

  private:
    size_t intIdx_ = 0;
    size_t fpIdx_ = 0;
};

bool
isFp(UopType t)
{
    return t == UopType::FpAlu || t == UopType::FpMul || t == UopType::FpDiv;
}

/** Scratch register holding the value of a fused memory read. */
constexpr int8_t kScratchReg = 3;

} // namespace

void
WorkloadSpec::validate() const
{
    auto reject = [&](const std::string &why) {
        throw std::invalid_argument("workload spec '" + name + "': " + why);
    };

    const double mixFracs[] = {fLoad, fStore, fIntAlu, fIntMul, fIntDiv,
                               fFpAlu, fFpMul, fFpDiv, fBranch, fMove};
    double mixSum = 0;
    for (double f : mixFracs) {
        if (f < 0)
            reject("negative instruction-mix fraction");
        mixSum += f;
    }
    if (mixSum <= 0)
        reject("instruction mix is all zero");

    const double patterns[] = {wStride1, wStride2, wRandom, wPtrChase};
    const double footprints[] = {wL1, wL2, wL3, wDram, wUnique};
    double patSum = 0, fpSum = 0;
    for (double w : patterns) {
        if (w < 0)
            reject("negative access-pattern weight");
        patSum += w;
    }
    for (double w : footprints) {
        if (w < 0)
            reject("negative footprint weight");
        fpSum += w;
    }
    // Memory ops exist whenever loads/stores are in the mix or compute
    // ops can fuse a memory read; only then do the memory mixes matter.
    if (fLoad > 0 || fStore > 0 || loadOpFusion > 0) {
        if (patSum <= 0)
            reject("access-pattern weights are all zero");
        if (fpSum <= 0)
            reject("footprint weights are all zero");
    }

    if (loopBodyInsts < 1)
        reject("loop body must contain at least one instruction");
    if (loadOpFusion < 0 || loadOpFusion > 1 || branchRandomFrac < 0 ||
        branchRandomFrac > 1 || branchTakenProb < 0 || branchTakenProb > 1 ||
        serialChainFrac < 0 || serialChainFrac > 1 || depLocality < 0 ||
        depLocality > 1)
        reject("probability out of [0,1]");
    if (strideBytes == 0)
        reject("strideBytes must be non-zero");
}

Trace
generateWorkload(const WorkloadSpec &spec, size_t nUops)
{
    spec.validate();
    Rng rng(spec.seed);
    Body body = buildBody(spec, rng);

    Trace trace;
    trace.reserve(nUops + 4);
    ProducerTracker producers;
    DstAllocator dsts;

    auto pickSrc = [&](bool prefer_serial) -> int8_t {
        if (prefer_serial && rng.chance(spec.serialChainFrac))
            return producers.lastDst();
        int dist = rng.geometric(spec.depLocality, 15);
        return producers.recent(dist);
    };

    while (trace.size() < nUops) {
        for (auto &si : body.insts) {
            if (trace.size() >= nUops)
                break;

            if (si.fusedLoad) {
                MicroOp ld;
                ld.type = UopType::Load;
                ld.pc = si.pc;
                ld.instBoundary = true;
                ld.addr = body.mems[si.fusedMemIndex].nextAddr(rng);
                ld.src1 = 0; // address from a long-lived base register
                ld.dst = kScratchReg;
                trace.push(ld);

                MicroOp op;
                op.type = si.type;
                op.pc = si.pc + 4;
                op.instBoundary = false;
                op.src1 = kScratchReg;
                op.src2 = pickSrc(true);
                op.dst = isFp(si.type) ? dsts.nextFp() : dsts.nextInt();
                producers.produced(op.dst);
                trace.push(op);
                continue;
            }

            MicroOp op;
            op.type = si.type;
            op.pc = si.pc;
            op.instBoundary = true;

            switch (si.type) {
              case UopType::Load: {
                MemState &m = body.mems[si.memIndex];
                op.addr = m.nextAddr(rng);
                if (si.chaseReg != kNoReg) {
                    // Pointer chase: address depends on the value this
                    // same static load produced last time.
                    op.src1 = si.chaseReg;
                    op.dst = si.chaseReg;
                } else {
                    // Index either loop-invariant or freshly computed.
                    op.src1 = rng.chance(0.3) ? producers.recent(
                        rng.geometric(spec.depLocality, 15)) : int8_t{0};
                    op.dst = dsts.nextInt();
                }
                producers.produced(op.dst);
                break;
              }
              case UopType::Store: {
                MemState &m = body.mems[si.memIndex];
                op.addr = m.nextAddr(rng);
                op.src1 = pickSrc(false); // data
                op.src2 = 0;              // address base
                break;
              }
              case UopType::Branch: {
                BranchBehavior &b = body.branches[si.branchIndex];
                uint64_t n = body.branchExecCount[si.branchIndex]++;
                switch (b.kind) {
                  case BranchBehavior::LoopBack:
                    op.taken = (n % b.period) != (uint64_t)(b.period - 1);
                    break;
                  case BranchBehavior::Periodic:
                    op.taken = (n % b.period) != 0;
                    break;
                  case BranchBehavior::RandomOutcome:
                    op.taken = rng.chance(b.takenProb);
                    break;
                }
                op.src1 = pickSrc(true); // condition input
                break;
              }
              case UopType::Move:
                op.src1 = pickSrc(false);
                op.dst = dsts.nextInt();
                producers.produced(op.dst);
                break;
              default: // compute
                op.src1 = pickSrc(true);
                op.src2 = pickSrc(false);
                op.dst = isFp(si.type) ? dsts.nextFp() : dsts.nextInt();
                producers.produced(op.dst);
                break;
            }
            trace.push(op);
        }
    }
    return trace;
}

Trace
generatePhased(const PhasedSpec &spec)
{
    Trace out;
    for (const auto &[seg, uops] : spec.segments) {
        Trace t = generateWorkload(seg, uops);
        for (const auto &op : t)
            out.push(op);
    }
    return out;
}

namespace {

/** Helper: start from balanced defaults, then tweak. */
WorkloadSpec
base(const std::string &name, uint64_t seed)
{
    WorkloadSpec s;
    s.name = name;
    s.seed = seed;
    return s;
}

} // namespace

std::vector<WorkloadSpec>
workloadSuite()
{
    std::vector<WorkloadSpec> suite;

    { // Streaming kernel (libquantum/lbm-like): unit-stride DRAM, high MLP.
        auto s = base("stream_add", 101);
        s.fLoad = 0.30; s.fStore = 0.12; s.fIntAlu = 0.28; s.fFpAlu = 0.10;
        s.fBranch = 0.10; s.fMove = 0.10; s.fIntMul = 0.0; s.fFpMul = 0.0;
        s.wStride1 = 1.0; s.wStride2 = 0; s.wRandom = 0; s.wPtrChase = 0;
        s.wL1 = 0.15; s.wL2 = 0.0; s.wL3 = 0.05; s.wDram = 0.80;
        s.strideBytes = 8;
        s.branchRandomFrac = 0.02; s.loopBodyInsts = 80;
        s.depLocality = 0.25; s.serialChainFrac = 0.05;
        suite.push_back(s);
    }
    { // Pointer chasing over a huge footprint (mcf-like): MLP ~ 1.
        auto s = base("ptr_chase", 102);
        s.fLoad = 0.32; s.fStore = 0.06; s.fIntAlu = 0.30; s.fBranch = 0.14;
        s.fMove = 0.12; s.fFpAlu = 0.06;
        s.wStride1 = 0.05; s.wStride2 = 0; s.wRandom = 0.25;
        s.wPtrChase = 0.70;
        s.wL1 = 0.25; s.wL2 = 0.05; s.wL3 = 0.10; s.wDram = 0.60;
        s.branchRandomFrac = 0.30; s.loopBodyInsts = 100;
        suite.push_back(s);
    }
    { // Independent random gathers (omnetpp-like): bursty DRAM, good MLP.
        auto s = base("rand_gather", 103);
        s.fLoad = 0.34; s.fStore = 0.10; s.fIntAlu = 0.28; s.fBranch = 0.12;
        s.fMove = 0.10; s.fFpAlu = 0.06;
        s.wStride1 = 0.10; s.wStride2 = 0.05; s.wRandom = 0.85;
        s.wPtrChase = 0;
        s.wL1 = 0.30; s.wL2 = 0.10; s.wL3 = 0.15; s.wDram = 0.45;
        s.branchRandomFrac = 0.20; s.loopBodyInsts = 90;
        suite.push_back(s);
    }
    { // Dense FP compute, cache resident (gamess-like).
        auto s = base("dense_compute", 104);
        s.fLoad = 0.18; s.fStore = 0.06; s.fIntAlu = 0.12; s.fFpAlu = 0.30;
        s.fFpMul = 0.20; s.fBranch = 0.06; s.fMove = 0.08;
        s.wL1 = 0.95; s.wL2 = 0.05; s.wL3 = 0; s.wDram = 0;
        s.loadOpFusion = 0.35; s.serialChainFrac = 0.30;
        s.branchRandomFrac = 0.02; s.loopBodyInsts = 150;
        suite.push_back(s);
    }
    { // Integer-dense media kernel (h264-like).
        auto s = base("int_crunch", 105);
        s.fLoad = 0.24; s.fStore = 0.10; s.fIntAlu = 0.38; s.fIntMul = 0.08;
        s.fBranch = 0.10; s.fMove = 0.10;
        s.fFpAlu = 0; s.fFpMul = 0;
        s.wL1 = 0.85; s.wL2 = 0.15; s.wL3 = 0; s.wDram = 0;
        s.loadOpFusion = 0.30; s.branchRandomFrac = 0.08;
        s.loopBodyInsts = 110;
        suite.push_back(s);
    }
    { // Branch-heavy game tree search (gobmk/sjeng-like).
        auto s = base("branchy", 106);
        s.fLoad = 0.22; s.fStore = 0.08; s.fIntAlu = 0.34; s.fBranch = 0.18;
        s.fMove = 0.14; s.fFpAlu = 0.04;
        s.wL1 = 0.70; s.wL2 = 0.20; s.wL3 = 0.10; s.wDram = 0;
        s.branchRandomFrac = 0.35; s.branchTakenProb = 0.35;
        s.loopBodyInsts = 140;
        suite.push_back(s);
    }
    { // Divide-limited FP kernel (povray-like): non-pipelined unit pressure.
        auto s = base("div_heavy", 107);
        s.fLoad = 0.18; s.fStore = 0.06; s.fIntAlu = 0.14; s.fFpAlu = 0.22;
        s.fFpMul = 0.16; s.fFpDiv = 0.08; s.fBranch = 0.08; s.fMove = 0.08;
        s.wL1 = 0.90; s.wL2 = 0.10; s.wL3 = 0; s.wDram = 0;
        s.serialChainFrac = 0.20; s.loopBodyInsts = 120;
        suite.push_back(s);
    }
    { // Blocked matrix kernel (calculix-like): L2/L3 strided.
        auto s = base("matrix_tile", 108);
        s.fLoad = 0.28; s.fStore = 0.10; s.fIntAlu = 0.14; s.fFpAlu = 0.20;
        s.fFpMul = 0.14; s.fBranch = 0.06; s.fMove = 0.08;
        s.wStride1 = 0.80; s.wStride2 = 0.20; s.wRandom = 0; s.wPtrChase = 0;
        s.wL1 = 0.30; s.wL2 = 0.40; s.wL3 = 0.30; s.wDram = 0;
        s.strideBytes = 64; s.loadOpFusion = 0.30;
        s.branchRandomFrac = 0.03; s.loopBodyInsts = 130;
        suite.push_back(s);
    }
    { // 3-D stencil sweep (leslie3d-like): multi-stride, LLC + DRAM.
        auto s = base("stencil", 109);
        s.fLoad = 0.30; s.fStore = 0.12; s.fIntAlu = 0.12; s.fFpAlu = 0.20;
        s.fFpMul = 0.12; s.fBranch = 0.06; s.fMove = 0.08;
        s.wStride1 = 0.50; s.wStride2 = 0.50; s.wRandom = 0; s.wPtrChase = 0;
        s.wL1 = 0.20; s.wL2 = 0.20; s.wL3 = 0.35; s.wDram = 0.25;
        s.strideBytes = 8; s.loopBodyInsts = 140;
        suite.push_back(s);
    }
    { // Hash-table build (xalancbmk-like): random stores, branchy.
        auto s = base("hash_build", 110);
        s.fLoad = 0.26; s.fStore = 0.16; s.fIntAlu = 0.28; s.fBranch = 0.14;
        s.fMove = 0.12; s.fFpAlu = 0.04;
        s.wStride1 = 0.15; s.wStride2 = 0; s.wRandom = 0.85; s.wPtrChase = 0;
        s.wL1 = 0.35; s.wL2 = 0.20; s.wL3 = 0.35; s.wDram = 0.10;
        s.branchRandomFrac = 0.35; s.loopBodyInsts = 100;
        suite.push_back(s);
    }
    { // Linked structure walk inside the LLC (astar-like): LLC-hit chains.
        auto s = base("list_walk_l3", 111);
        s.fLoad = 0.30; s.fStore = 0.06; s.fIntAlu = 0.26; s.fBranch = 0.14;
        s.fMove = 0.14; s.fFpAlu = 0.10;
        s.wStride1 = 0.10; s.wStride2 = 0; s.wRandom = 0.20;
        s.wPtrChase = 0.70;
        s.wL1 = 0.20; s.wL2 = 0.10; s.wL3 = 0.70; s.wDram = 0;
        s.branchRandomFrac = 0.25; s.loopBodyInsts = 90;
        suite.push_back(s);
    }
    { // Wide streaming FP with long serial chains (bwaves-like).
        auto s = base("stream_wide", 112);
        s.fLoad = 0.26; s.fStore = 0.10; s.fIntAlu = 0.10; s.fFpAlu = 0.26;
        s.fFpMul = 0.16; s.fBranch = 0.04; s.fMove = 0.08;
        s.wStride1 = 0.90; s.wStride2 = 0.10; s.wRandom = 0; s.wPtrChase = 0;
        s.wL1 = 0.10; s.wL2 = 0.10; s.wL3 = 0.20; s.wDram = 0.60;
        s.serialChainFrac = 0.45; s.depLocality = 0.6;
        s.branchRandomFrac = 0.02; s.loopBodyInsts = 160;
        suite.push_back(s);
    }
    { // Strided loads + scattered stores (GemsFDTD-like), high uops/inst.
        auto s = base("scatter_store", 113);
        s.fLoad = 0.26; s.fStore = 0.16; s.fIntAlu = 0.12; s.fFpAlu = 0.18;
        s.fFpMul = 0.12; s.fBranch = 0.06; s.fMove = 0.10;
        s.wStride1 = 0.55; s.wStride2 = 0.15; s.wRandom = 0.30;
        s.wPtrChase = 0;
        s.wL1 = 0.15; s.wL2 = 0.15; s.wL3 = 0.25; s.wDram = 0.45;
        s.loadOpFusion = 0.45; s.loopBodyInsts = 150;
        suite.push_back(s);
    }
    { // Cold-miss sweep (milc-like): every line touched once.
        auto s = base("cold_sweep", 114);
        s.fLoad = 0.30; s.fStore = 0.12; s.fIntAlu = 0.14; s.fFpAlu = 0.20;
        s.fFpMul = 0.10; s.fBranch = 0.06; s.fMove = 0.08;
        s.wStride1 = 1.0; s.wStride2 = 0; s.wRandom = 0; s.wPtrChase = 0;
        s.wL1 = 0.20; s.wL2 = 0; s.wL3 = 0; s.wDram = 0; s.wUnique = 0.80;
        s.branchRandomFrac = 0.02; s.loopBodyInsts = 100;
        suite.push_back(s);
    }
    { // Tight cache-resident loop (hmmer-like): near-peak IPC.
        auto s = base("loopy_small", 115);
        s.fLoad = 0.26; s.fStore = 0.10; s.fIntAlu = 0.36; s.fIntMul = 0.04;
        s.fBranch = 0.10; s.fMove = 0.14;
        s.fFpAlu = 0; s.fFpMul = 0;
        s.wL1 = 1.0; s.wL2 = 0; s.wL3 = 0; s.wDram = 0;
        s.branchRandomFrac = 0.03; s.loopBodyInsts = 60;
        s.depLocality = 0.2; s.serialChainFrac = 0.05;
        suite.push_back(s);
    }
    { // Mixed compiler-like behaviour (gcc-like): mid footprints, phases of
      // LLC-hit chains; used by the LLC-chaining experiment (Fig 4.9).
        auto s = base("mix_mid", 116);
        s.fLoad = 0.26; s.fStore = 0.12; s.fIntAlu = 0.28; s.fBranch = 0.14;
        s.fMove = 0.12; s.fFpAlu = 0.08;
        s.wStride1 = 0.35; s.wStride2 = 0.10; s.wRandom = 0.25;
        s.wPtrChase = 0.30;
        s.wL1 = 0.30; s.wL2 = 0.25; s.wL3 = 0.40; s.wDram = 0.05;
        s.branchRandomFrac = 0.25; s.loopBodyInsts = 130;
        suite.push_back(s);
    }
    { // Serial FP multiply chains (namd-like): dependence-limited.
        auto s = base("fp_serial", 117);
        s.fLoad = 0.18; s.fStore = 0.06; s.fIntAlu = 0.10; s.fFpAlu = 0.22;
        s.fFpMul = 0.28; s.fBranch = 0.06; s.fMove = 0.10;
        s.wL1 = 0.90; s.wL2 = 0.10; s.wL3 = 0; s.wDram = 0;
        s.serialChainFrac = 0.55; s.depLocality = 0.7;
        s.branchRandomFrac = 0.02; s.loopBodyInsts = 120;
        suite.push_back(s);
    }
    { // Integer multiply port pressure (crypto-like).
        auto s = base("mul_port", 118);
        s.fLoad = 0.18; s.fStore = 0.08; s.fIntAlu = 0.26; s.fIntMul = 0.22;
        s.fIntDiv = 0.02; s.fBranch = 0.08; s.fMove = 0.16;
        s.fFpAlu = 0; s.fFpMul = 0;
        s.wL1 = 0.95; s.wL2 = 0.05; s.wL3 = 0; s.wDram = 0;
        s.branchRandomFrac = 0.05; s.loopBodyInsts = 100;
        suite.push_back(s);
    }
    { // Bursty memory phases (soplex-like): misses clustered in the body.
        auto s = base("bursty_mem", 119);
        s.fLoad = 0.32; s.fStore = 0.10; s.fIntAlu = 0.22; s.fFpAlu = 0.14;
        s.fFpMul = 0.06; s.fBranch = 0.08; s.fMove = 0.08;
        s.wStride1 = 0.60; s.wStride2 = 0.10; s.wRandom = 0.30;
        s.wPtrChase = 0;
        s.wL1 = 0.40; s.wL2 = 0.10; s.wL3 = 0.10; s.wDram = 0.40;
        s.strideBytes = 256; s.loopBodyInsts = 200;
        s.branchRandomFrac = 0.10;
        suite.push_back(s);
    }
    { // Long-latency balanced mix (wrf-like): a bit of everything.
        auto s = base("balanced_mix", 120);
        s.fLoad = 0.24; s.fStore = 0.10; s.fIntAlu = 0.20; s.fIntMul = 0.02;
        s.fFpAlu = 0.16; s.fFpMul = 0.08; s.fFpDiv = 0.01; s.fBranch = 0.10;
        s.fMove = 0.09;
        s.wStride1 = 0.50; s.wStride2 = 0.15; s.wRandom = 0.25;
        s.wPtrChase = 0.10;
        s.wL1 = 0.40; s.wL2 = 0.20; s.wL3 = 0.25; s.wDram = 0.15;
        s.loadOpFusion = 0.25; s.branchRandomFrac = 0.12;
        s.loopBodyInsts = 170;
        suite.push_back(s);
    }

    return suite;
}

std::vector<WorkloadSpec>
memoryBoundSuite()
{
    std::vector<WorkloadSpec> out;
    for (const auto &s : workloadSuite()) {
        if (s.wDram + s.wUnique >= 0.25 || s.wL3 >= 0.4)
            out.push_back(s);
    }
    return out;
}

std::vector<PhasedSpec>
phasedSuite()
{
    std::vector<PhasedSpec> out;

    PhasedSpec p1;
    p1.name = "phase_compute_mem";
    p1.segments = {
        {suiteWorkload("dense_compute"), 150000},
        {suiteWorkload("stream_add"), 150000},
        {suiteWorkload("dense_compute"), 150000},
        {suiteWorkload("rand_gather"), 150000},
    };
    out.push_back(std::move(p1));

    PhasedSpec p2;
    p2.name = "phase_branch_shift";
    p2.segments = {
        {suiteWorkload("loopy_small"), 200000},
        {suiteWorkload("branchy"), 200000},
        {suiteWorkload("mix_mid"), 200000},
    };
    out.push_back(std::move(p2));

    return out;
}

WorkloadSpec
suiteWorkload(const std::string &name)
{
    for (const auto &s : workloadSuite())
        if (s.name == name)
            return s;
    throw std::out_of_range("no suite workload named " + name);
}

} // namespace mipp
