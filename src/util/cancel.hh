/**
 * @file
 * Cooperative cancellation and deadlines.
 *
 * A CancelToken is a cheap copyable handle checked at natural yield
 * points (per sweep chunk, per batch, per detailed-sim invocation). It
 * cancels for two reasons, which callers need not distinguish at check
 * sites:
 *
 *  - an explicit cancel() from another thread (client disconnected,
 *    server shutting down);
 *  - a wall-clock deadline passing (per-request budgets).
 *
 * The default-constructed token is "null": it never cancels and checks
 * cost a single pointer test, so hot loops can check unconditionally.
 * Deadline checks intentionally read the clock only when a deadline was
 * actually set.
 *
 * Cancellation here is *graceful degradation*, not abort: the sweep
 * loops stop starting new work, keep everything already computed, and
 * return a partial result flagged degraded (see SweepResult::degraded).
 */

#ifndef MIPP_UTIL_CANCEL_HH
#define MIPP_UTIL_CANCEL_HH

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>

namespace mipp {

class CancelToken
{
    using Clock = std::chrono::steady_clock;

    struct State {
        std::atomic<bool> cancelled{false};
        bool hasDeadline = false;
        Clock::time_point deadline{};
    };

  public:
    /** Null token: never cancels. */
    CancelToken() = default;

    /** Cancellable token without a deadline. */
    static CancelToken
    manual()
    {
        CancelToken t;
        t.state_ = std::make_shared<State>();
        return t;
    }

    /** Token that cancels @p ms milliseconds from now (and can also be
     *  cancelled manually). Non-positive @p ms is already expired. */
    static CancelToken
    withDeadlineMs(double ms)
    {
        CancelToken t = manual();
        t.state_->hasDeadline = true;
        t.state_->deadline =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(
                                   ms > 0 ? ms : 0));
        return t;
    }

    /** Request cancellation (thread-safe; no-op on a null token). */
    void
    cancel() const
    {
        if (state_)
            state_->cancelled.store(true, std::memory_order_relaxed);
    }

    /** True once cancel() was called or the deadline passed. */
    bool
    cancelled() const
    {
        if (!state_)
            return false;
        if (state_->cancelled.load(std::memory_order_relaxed))
            return true;
        if (state_->hasDeadline && Clock::now() >= state_->deadline) {
            // Latch: later checks skip the clock read.
            state_->cancelled.store(true, std::memory_order_relaxed);
            return true;
        }
        return false;
    }

    bool hasDeadline() const { return state_ && state_->hasDeadline; }

    /** Identity of the shared state (null token = nullptr); lets
     *  registries match tokens without exposing the state itself. */
    const void *id() const { return state_.get(); }

    /** Milliseconds until the deadline (+inf without one, <= 0 when
     *  expired or already cancelled). */
    double
    remainingMs() const
    {
        if (!state_)
            return std::numeric_limits<double>::infinity();
        if (state_->cancelled.load(std::memory_order_relaxed))
            return 0;
        if (!state_->hasDeadline)
            return std::numeric_limits<double>::infinity();
        return std::chrono::duration<double, std::milli>(
                   state_->deadline - Clock::now())
            .count();
    }

  private:
    std::shared_ptr<State> state_;
};

} // namespace mipp

#endif // MIPP_UTIL_CANCEL_HH
