/**
 * @file
 * Open-addressing hash map for u64 keys on profiling hot paths.
 *
 * The profiler performs several hash lookups per uop (reuse distances,
 * branch history counts, static-op indices); `std::unordered_map`'s
 * node-per-entry layout makes each of those a pointer chase. FlatMap keeps
 * {key, value} pairs in one flat array plus a separate occupancy byte
 * array, with power-of-two capacity and linear probing: a lookup is one
 * multiply-shift hash, one occupancy byte and one 16-byte pair — two
 * cache lines on the hit path where a node-based map chases three or
 * more. The dense occupancy bytes stay cache-resident (and memset-clear),
 * which makes miss probes and per-micro-trace resets nearly free. Any u64 key is
 * valid (including 0 and ~0ULL: occupancy is tracked in the separate byte
 * array, not with sentinel keys).
 *
 * Deliberately minimal: no erase (the profiler only inserts and updates),
 * values must be default-constructible, iteration order is unspecified.
 */

#ifndef MIPP_UTIL_FLAT_MAP_HH
#define MIPP_UTIL_FLAT_MAP_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

namespace mipp {

/** Open-addressing u64 -> V hash map (insert/update only, no erase). */
template <typename V>
class FlatMap
{
  public:
    FlatMap() = default;

    /** Pre-size so that @p n entries fit without growing. */
    explicit FlatMap(size_t n) { reserve(n); }

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    size_t capacity() const { return slots_.size(); }

    /** Drop all entries but keep the allocated capacity. */
    void
    clear()
    {
        if (size_ == 0)
            return;
        std::memset(used_.data(), 0, used_.size());
        size_ = 0;
    }

    /** Ensure capacity for @p n entries within the max load factor. */
    void
    reserve(size_t n)
    {
        size_t want = kMinCapacity;
        while (want * kMaxLoadNum < n * kMaxLoadDen)
            want <<= 1;
        if (want > slots_.size())
            rehash(want);
    }

    /** Pointer to the value for @p key, or nullptr if absent. */
    V *
    find(uint64_t key)
    {
        if (slots_.empty())
            return nullptr;
        size_t i = probe(key);
        return used_[i] ? &slots_[i].val : nullptr;
    }

    const V *
    find(uint64_t key) const
    {
        return const_cast<FlatMap *>(this)->find(key);
    }

    bool contains(uint64_t key) const { return find(key) != nullptr; }

    /**
     * Hint that @p key will be probed shortly: pulls the home slot's
     * cache lines. With a sequential input stream, probing a large map
     * some tens of elements ahead hides most of its random-access
     * latency (shorter distances don't beat the memory round-trip).
     */
    void
    prefetch(uint64_t key) const
    {
        if (slots_.empty())
            return;
        size_t i = static_cast<size_t>(mix(key)) & (slots_.size() - 1);
        __builtin_prefetch(&used_[i]);
        __builtin_prefetch(&slots_[i]);
    }

    /**
     * Insert `key -> value` if absent; single probe either way. The
     * grow check runs only when actually inserting, so lookups that hit
     * (the steady-state case) pay nothing for it.
     */
    std::pair<V &, bool>
    tryEmplace(uint64_t key, V value = V())
    {
        if (slots_.empty())
            rehash(kMinCapacity);
        size_t i = probe(key);
        if (used_[i])
            return {slots_[i].val, false};
        if ((size_ + 1) * kMaxLoadDen > slots_.size() * kMaxLoadNum) {
            rehash(slots_.size() * 2);
            i = probe(key);
        }
        used_[i] = 1;
        slots_[i].key = key;
        slots_[i].val = std::move(value);
        size_++;
        return {slots_[i].val, true};
    }

    /** Value for @p key, default-constructed on first access. */
    V &operator[](uint64_t key) { return tryEmplace(key).first; }

    /** Apply `fn(key, value)` to every entry (unspecified order). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (size_t i = 0; i < slots_.size(); ++i)
            if (used_[i])
                fn(slots_[i].key, slots_[i].val);
    }

  private:
    struct Slot {
        uint64_t key;
        V val;
    };

    static constexpr size_t kMinCapacity = 16;
    /** Grow beyond 7/8 occupancy to keep probe chains short. */
    static constexpr size_t kMaxLoadNum = 7;
    static constexpr size_t kMaxLoadDen = 8;

    /**
     * Fibonacci multiplicative hash, one multiply deep. The high product
     * bits carry the mixing; the xor-shift folds them into the low bits
     * the power-of-two mask keeps. Spreads sequential keys (line
     * addresses, pcs) well, and the shallow latency beats a stronger
     * finalizer on the profiler's probe-per-uop path.
     */
    static uint64_t
    mix(uint64_t x)
    {
        x *= 0x9e3779b97f4a7c15ULL;
        return x ^ (x >> 29);
    }

    /** Index of @p key's slot, or of the first empty slot in its chain. */
    size_t
    probe(uint64_t key) const
    {
        size_t mask = slots_.size() - 1;
        size_t i = static_cast<size_t>(mix(key)) & mask;
        while (used_[i] && slots_[i].key != key)
            i = (i + 1) & mask;
        return i;
    }

    void
    rehash(size_t newCap)
    {
        std::vector<Slot> oldSlots = std::move(slots_);
        std::vector<uint8_t> oldUsed = std::move(used_);

        slots_.assign(newCap, Slot{0, V()});
        used_.assign(newCap, 0);

        for (size_t i = 0; i < oldSlots.size(); ++i) {
            if (!oldUsed[i])
                continue;
            size_t j = probe(oldSlots[i].key);
            used_[j] = 1;
            slots_[j] = std::move(oldSlots[i]);
        }
    }

    std::vector<Slot> slots_;
    std::vector<uint8_t> used_;
    size_t size_ = 0;
};

} // namespace mipp

#endif // MIPP_UTIL_FLAT_MAP_HH
