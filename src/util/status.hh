/**
 * @file
 * Structured error taxonomy for input-dependent failure paths.
 *
 * The library distinguishes "the caller handed us something bad" from
 * "the library has a bug". Bare asserts/throws conflate the two: a
 * malformed profile upload or an empty design space must be a *reported*
 * condition the process survives (and a server turns into an error
 * response), while an internal invariant violation should still fail
 * loudly. Status carries that distinction as data:
 *
 *  - Ok                 success
 *  - InvalidArgument    request/input is structurally wrong (empty
 *                       design space, unknown workload, bad flag value)
 *  - DeadlineExceeded   a cooperative deadline/cancellation fired; any
 *                       partial result is flagged degraded, not wrong
 *  - ResourceExhausted  a bound was hit (request queue full, input
 *                       larger than the configured limit)
 *  - Corrupt            bytes that claim to be a profile/report but
 *                       fail magic/version/checksum/bounds validation
 *  - Internal           everything that indicates a library bug; the
 *                       only code that should page a human
 *
 * Two idioms are supported so the taxonomy can thread through both
 * Status-returning new code and the existing exception-based call sites:
 * return a Status (preferred on hot/request paths), or throw StatusError
 * (derives std::runtime_error, so legacy `catch (std::exception)`
 * handlers keep working and now have a code to map).
 */

#ifndef MIPP_UTIL_STATUS_HH
#define MIPP_UTIL_STATUS_HH

#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace mipp {

enum class StatusCode : uint8_t {
    Ok = 0,
    InvalidArgument,
    DeadlineExceeded,
    ResourceExhausted,
    Corrupt,
    Internal,
};

/** Stable wire/report name ("Ok", "InvalidArgument", ...). */
std::string_view statusCodeName(StatusCode c);

/** Inverse of statusCodeName; Internal for unknown names. */
StatusCode statusCodeFromName(std::string_view name);

class Status
{
  public:
    Status() = default;  // Ok
    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
    }

    static Status ok() { return {}; }

    bool isOk() const { return code_ == StatusCode::Ok; }
    explicit operator bool() const { return isOk(); }

    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** "InvalidArgument: empty design space" (or "Ok"). */
    std::string toString() const;

  private:
    StatusCode code_ = StatusCode::Ok;
    std::string message_;
};

inline Status
invalidArgument(std::string msg)
{
    return {StatusCode::InvalidArgument, std::move(msg)};
}
inline Status
deadlineExceeded(std::string msg)
{
    return {StatusCode::DeadlineExceeded, std::move(msg)};
}
inline Status
resourceExhausted(std::string msg)
{
    return {StatusCode::ResourceExhausted, std::move(msg)};
}
inline Status
corrupt(std::string msg)
{
    return {StatusCode::Corrupt, std::move(msg)};
}
inline Status
internalError(std::string msg)
{
    return {StatusCode::Internal, std::move(msg)};
}

/**
 * Exception carrier for Status on legacy throw paths. Derives
 * std::runtime_error so existing catch blocks keep working; new code
 * should catch StatusError first to preserve the code.
 */
class StatusError : public std::runtime_error
{
  public:
    explicit StatusError(Status s)
        : std::runtime_error(s.toString()), status_(std::move(s))
    {
    }

    const Status &status() const { return status_; }
    StatusCode code() const { return status_.code(); }

  private:
    Status status_;
};

/** Throw @p s as a StatusError unless it is Ok. */
inline void
throwIfError(const Status &s)
{
    if (!s.isOk())
        throw StatusError(s);
}

} // namespace mipp

#endif // MIPP_UTIL_STATUS_HH
