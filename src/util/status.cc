#include "util/status.hh"

namespace mipp {

std::string_view
statusCodeName(StatusCode c)
{
    switch (c) {
      case StatusCode::Ok:                return "Ok";
      case StatusCode::InvalidArgument:   return "InvalidArgument";
      case StatusCode::DeadlineExceeded:  return "DeadlineExceeded";
      case StatusCode::ResourceExhausted: return "ResourceExhausted";
      case StatusCode::Corrupt:           return "Corrupt";
      case StatusCode::Internal:          return "Internal";
    }
    return "Internal";
}

StatusCode
statusCodeFromName(std::string_view name)
{
    for (StatusCode c : {StatusCode::Ok, StatusCode::InvalidArgument,
                         StatusCode::DeadlineExceeded,
                         StatusCode::ResourceExhausted, StatusCode::Corrupt,
                         StatusCode::Internal}) {
        if (name == statusCodeName(c))
            return c;
    }
    return StatusCode::Internal;
}

std::string
Status::toString() const
{
    std::string s{statusCodeName(code_)};
    if (!message_.empty()) {
        s += ": ";
        s += message_;
    }
    return s;
}

} // namespace mipp
