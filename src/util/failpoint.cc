#include "util/failpoint.hh"

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>

namespace mipp::failpoint {

namespace detail {
std::atomic<int> armed{0};
}

namespace {

struct Registry {
    std::mutex mu;
    // Keyed by name; value.fires counts down on fired hits.
    std::map<std::string, Spec, std::less<>> sites;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

} // namespace

void
arm(std::string_view name, Spec spec)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.sites.find(name);
    if (it == r.sites.end())
        r.sites.emplace(std::string(name), spec);
    else
        it->second = spec;
    detail::armed.store(static_cast<int>(r.sites.size()),
                        std::memory_order_relaxed);
}

void
disarm(std::string_view name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.sites.find(name);
    if (it != r.sites.end())
        r.sites.erase(it);
    detail::armed.store(static_cast<int>(r.sites.size()),
                        std::memory_order_relaxed);
}

void
reset()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.sites.clear();
    detail::armed.store(0, std::memory_order_relaxed);
}

int
armedCount()
{
    return detail::armed.load(std::memory_order_relaxed);
}

bool
hit(std::string_view name, const CancelToken *cancel)
{
    int sleepMs = 0;
    bool fired = false;
    {
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mu);
        auto it = r.sites.find(name);
        if (it == r.sites.end())
            return false;
        sleepMs = it->second.sleepMs;
        if (it->second.fires < 0) {
            fired = true;
        } else if (it->second.fires > 0) {
            --it->second.fires;
            fired = true;
        }
    }
    // Sleep outside the lock so a delaying site cannot serialize other
    // failpoints (or block disarming) behind it. With a token, poll it
    // in 1 ms slices: the injected delay ends the moment the request is
    // cancelled, so disconnect/deadline paths are not serialized on the
    // full injected duration.
    if (sleepMs > 0) {
        using Clock = std::chrono::steady_clock;
        const Clock::time_point until =
            Clock::now() + std::chrono::milliseconds(sleepMs);
        for (;;) {
            if (cancel && cancel->cancelled())
                break;
            Clock::time_point now = Clock::now();
            if (now >= until)
                break;
            auto remaining = until - now;
            std::this_thread::sleep_for(
                cancel ? std::min<Clock::duration>(
                             remaining, std::chrono::milliseconds(1))
                       : remaining);
        }
    }
    return fired;
}

bool
armFromString(std::string_view desc)
{
    if (desc.empty())
        return false;
    std::string_view name = desc;
    Spec spec;
    size_t eq = desc.find('=');
    if (eq != std::string_view::npos) {
        name = desc.substr(0, eq);
        std::string_view rest = desc.substr(eq + 1);
        size_t colon = rest.find(':');
        std::string fires(rest.substr(0, colon));
        try {
            if (!fires.empty())
                spec.fires = std::stoi(fires);
            if (colon != std::string_view::npos)
                spec.sleepMs =
                    std::stoi(std::string(rest.substr(colon + 1)));
        } catch (const std::exception &) {
            return false;
        }
    }
    if (name.empty())
        return false;
    arm(name, spec);
    return true;
}

} // namespace mipp::failpoint
