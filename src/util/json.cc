#include "util/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace mipp::json {

const Value &
Value::operator[](std::string_view key) const
{
    static const Value kNull;
    if (!isObject())
        return kNull;
    auto it = obj_->find(key);
    return it == obj_->end() ? kNull : it->second;
}

namespace {

struct Parser {
    const char *p;
    const char *end;
    const ParseLimits &limits;
    Status error;  // first failure; parsing stops once set

    bool
    fail(const std::string &msg)
    {
        if (error.isOk())
            error = corrupt("json: " + msg);
        return false;
    }

    void
    skipWs()
    {
        while (p < end &&
               (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r'))
            ++p;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (p < end && *p == c) {
            ++p;
            return true;
        }
        return false;
    }

    bool
    literal(std::string_view word)
    {
        if (static_cast<size_t>(end - p) < word.size() ||
            std::string_view(p, word.size()) != word)
            return false;
        p += word.size();
        return true;
    }

    bool
    parseString(std::string &out)
    {
        // Caller consumed the opening quote.
        out.clear();
        while (p < end) {
            unsigned char c = static_cast<unsigned char>(*p++);
            if (c == '"')
                return true;
            if (c < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out += static_cast<char>(c);
                continue;
            }
            if (p >= end)
                return fail("dangling escape");
            char e = *p++;
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (end - p < 4)
                    return fail("truncated \\u escape");
                unsigned v = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = *p++;
                    v <<= 4;
                    if (h >= '0' && h <= '9')
                        v |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        v |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        v |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad hex digit in \\u escape");
                }
                if (v >= 0xD800 && v <= 0xDFFF)
                    return fail("surrogate \\u escape unsupported");
                // UTF-8 encode the BMP code point.
                if (v < 0x80) {
                    out += static_cast<char>(v);
                } else if (v < 0x800) {
                    out += static_cast<char>(0xC0 | (v >> 6));
                    out += static_cast<char>(0x80 | (v & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (v >> 12));
                    out += static_cast<char>(0x80 | ((v >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (v & 0x3F));
                }
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseValue(Value &out, size_t depth)
    {
        if (depth > limits.maxDepth)
            return fail("nesting deeper than limit");
        skipWs();
        if (p >= end)
            return fail("unexpected end of input");
        char c = *p;
        if (c == '{') {
            ++p;
            Object obj;
            skipWs();
            if (consume('}')) {
                out = Value(std::move(obj));
                return true;
            }
            for (;;) {
                if (!consume('"'))
                    return fail("expected object key");
                std::string key;
                if (!parseString(key))
                    return false;
                if (!consume(':'))
                    return fail("expected ':' after key");
                Value v;
                if (!parseValue(v, depth + 1))
                    return false;
                obj.insert_or_assign(std::move(key), std::move(v));
                if (consume(','))
                    continue;
                if (consume('}'))
                    break;
                return fail("expected ',' or '}' in object");
            }
            out = Value(std::move(obj));
            return true;
        }
        if (c == '[') {
            ++p;
            Array arr;
            skipWs();
            if (consume(']')) {
                out = Value(std::move(arr));
                return true;
            }
            for (;;) {
                Value v;
                if (!parseValue(v, depth + 1))
                    return false;
                arr.push_back(std::move(v));
                if (consume(','))
                    continue;
                if (consume(']'))
                    break;
                return fail("expected ',' or ']' in array");
            }
            out = Value(std::move(arr));
            return true;
        }
        if (c == '"') {
            ++p;
            std::string s;
            if (!parseString(s))
                return false;
            out = Value(std::move(s));
            return true;
        }
        if (literal("true")) {
            out = Value(true);
            return true;
        }
        if (literal("false")) {
            out = Value(false);
            return true;
        }
        if (literal("null")) {
            out = Value();
            return true;
        }
        if (c == '-' || (c >= '0' && c <= '9')) {
            // strtod over a bounded copy: the slice is not guaranteed
            // NUL-terminated.
            const char *q = p;
            while (q < end &&
                   (*q == '-' || *q == '+' || *q == '.' || *q == 'e' ||
                    *q == 'E' || (*q >= '0' && *q <= '9')))
                ++q;
            std::string num(p, q);
            char *numEnd = nullptr;
            double v = std::strtod(num.c_str(), &numEnd);
            if (numEnd == num.c_str() ||
                numEnd != num.c_str() + num.size() || !std::isfinite(v))
                return fail("malformed number");
            p = q;
            out = Value(v);
            return true;
        }
        return fail("unexpected character");
    }
};

} // namespace

Status
parse(std::string_view text, Value &out, const ParseLimits &limits)
{
    if (text.size() > limits.maxBytes)
        return resourceExhausted(
            "json: input exceeds " + std::to_string(limits.maxBytes) +
            " bytes");
    Parser parser{text.data(), text.data() + text.size(), limits, {}};
    Value v;
    if (!parser.parseValue(v, 0))
        return parser.error.isOk() ? corrupt("json: parse failed")
                                   : parser.error;
    parser.skipWs();
    if (parser.p != parser.end)
        return corrupt("json: trailing garbage after document");
    out = std::move(v);
    return Status::ok();
}

std::string
quote(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

} // namespace mipp::json
