/**
 * @file
 * Minimal JSON value model + parser for the serve wire protocol.
 *
 * The validation harnesses only ever *emit* JSON (validate/json_util.hh);
 * the server also has to *parse* untrusted request lines. This is a
 * small, strict, non-throwing recursive-descent parser over a DOM-style
 * value: objects, arrays, strings (with escapes; \uXXXX accepted and
 * mapped to UTF-8 for the BMP, surrogate pairs rejected as malformed),
 * doubles, bools, null. Limits are explicit — maximum nesting depth and
 * input size are enforced so attacker-shaped bytes cannot recurse or
 * allocate unboundedly; failures come back as a Status (Corrupt /
 * ResourceExhausted), never an exception or UB.
 */

#ifndef MIPP_UTIL_JSON_HH
#define MIPP_UTIL_JSON_HH

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hh"

namespace mipp::json {

class Value;
using Object = std::map<std::string, Value, std::less<>>;
using Array = std::vector<Value>;

class Value
{
  public:
    enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

    Value() = default;
    Value(bool b) : kind_(Kind::Bool), bool_(b) {}
    Value(double d) : kind_(Kind::Number), num_(d) {}
    Value(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
    Value(Array a)
        : kind_(Kind::Array), arr_(std::make_shared<Array>(std::move(a)))
    {
    }
    Value(Object o)
        : kind_(Kind::Object),
          obj_(std::make_shared<Object>(std::move(o)))
    {
    }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool boolean(bool fallback = false) const
    {
        return isBool() ? bool_ : fallback;
    }
    double number(double fallback = 0) const
    {
        return isNumber() ? num_ : fallback;
    }
    const std::string &
    str() const
    {
        static const std::string kEmpty;
        return isString() ? str_ : kEmpty;
    }
    const Array &
    array() const
    {
        static const Array kEmpty;
        return isArray() ? *arr_ : kEmpty;
    }
    const Object &
    object() const
    {
        static const Object kEmpty;
        return isObject() ? *obj_ : kEmpty;
    }

    /** Object member lookup; null Value when absent or not an object. */
    const Value &operator[](std::string_view key) const;

    /** Convenience typed getters over object members. */
    double
    numberOr(std::string_view key, double fallback) const
    {
        const Value &v = (*this)[key];
        return v.isNumber() ? v.number() : fallback;
    }
    std::string
    stringOr(std::string_view key, std::string fallback) const
    {
        const Value &v = (*this)[key];
        return v.isString() ? v.str() : std::move(fallback);
    }
    bool
    boolOr(std::string_view key, bool fallback) const
    {
        const Value &v = (*this)[key];
        return v.isBool() ? v.boolean() : fallback;
    }

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0;
    std::string str_;
    // shared_ptr keeps Value copyable/compact without a recursive
    // variant; parsed documents are read-only so sharing is safe.
    std::shared_ptr<Array> arr_;
    std::shared_ptr<Object> obj_;
};

struct ParseLimits {
    size_t maxBytes = 64u << 20;
    size_t maxDepth = 32;
};

/** Parse one complete JSON document (trailing whitespace allowed,
 *  trailing garbage rejected). */
Status parse(std::string_view text, Value &out,
             const ParseLimits &limits = {});

/** Serialize a string with JSON escaping, including quotes. */
std::string quote(std::string_view s);

} // namespace mipp::json

#endif // MIPP_UTIL_JSON_HH
