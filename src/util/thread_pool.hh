/**
 * @file
 * Small shared thread pool for data-parallel loops.
 *
 * The profiler's per-ROB-size window walks, batch profiling and the DSE
 * sweep all fan out over independent index ranges. Spawning threads per
 * call (the old `sweep` strategy) pays thread-creation cost on every
 * invocation; this pool keeps a process-wide set of workers alive and
 * hands them chunked ranges instead.
 *
 * `parallelFor` degrades gracefully: with no workers (single-core hosts),
 * a single chunk, or when called from inside a pool worker (nested
 * parallelism), it runs the whole range inline on the caller, so results
 * never depend on the pool's existence. The caller always participates in
 * chunk execution and returns only when the full range is done.
 */

#ifndef MIPP_UTIL_THREAD_POOL_HH
#define MIPP_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mipp {

class ThreadPool
{
  public:
    /** @param threads total concurrency; 0 = hardware concurrency. */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Process-wide pool shared by profiler and DSE sweeps. */
    static ThreadPool &shared();

    /** Total execution streams (workers + the calling thread). */
    unsigned concurrency() const
    {
        return static_cast<unsigned>(workers_.size()) + 1;
    }

    using RangeFn = std::function<void(size_t begin, size_t end)>;

    /**
     * Run `fn(begin, end)` over disjoint chunks covering [0, n), at most
     * @p grain indices per chunk, on the caller plus the pool workers.
     * Blocks until the whole range has been processed.
     */
    void parallelFor(size_t n, size_t grain, const RangeFn &fn);

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::mutex mu_;
    std::condition_variable cv_;
    std::deque<std::function<void()>> tasks_;
    bool stop_ = false;
};

/**
 * Run `fn(begin, end)` over [0, n) on the shared pool: serial in the
 * caller when @p threads == 1; one index per chunk when threads == 0
 * (full pool, finest dynamic balancing); otherwise ~4 chunks per
 * requested thread — the pool owns the workers, so threads biases the
 * chunking rather than hard-capping concurrency (same contract as
 * SweepOptions::threads). Shared dispatch helper for the DSE sweep and
 * the accuracy harness.
 */
void parallelForShared(size_t n, unsigned threads,
                       const ThreadPool::RangeFn &fn);

} // namespace mipp

#endif // MIPP_UTIL_THREAD_POOL_HH
