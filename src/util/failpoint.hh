/**
 * @file
 * Failpoint registry: deterministic fault injection for recovery tests.
 *
 * A failpoint is a named site in library code where a test (or an
 * operator debugging a deployment) can inject a fault: fire an error
 * path, or delay execution to force a deadline to expire mid-operation.
 * The recovery paths this repo promises — corrupt profile rejected while
 * the daemon keeps serving, deadline expiry returning a degraded front,
 * queue overflow shedding load — are exactly the paths ordinary tests
 * cannot reach deterministically; failpoints make them reachable.
 *
 * Sites are compiled in unconditionally but cost one relaxed atomic load
 * when nothing is armed (the common case everywhere outside tests):
 *
 *     if (MIPP_FAILPOINT("profile_io.corrupt"))
 *         return corrupt("injected by failpoint");
 *
 * Arming is by name, with an optional number of fires and an optional
 * per-hit delay:
 *
 *     failpoint::arm("sweep.chunk_delay", {.sleepMs = 50});   // every hit
 *     failpoint::arm("serve.shed", {.fires = 2});             // first two
 *
 * A hit first sleeps spec.sleepMs (if any), then reports "fired" while
 * fires > 0 (decrementing; fires < 0 = unlimited). A sleep-only site
 * (fires = 0, sleepMs > 0) delays but never fires — that is how tests
 * stretch a sweep without changing its result. All functions are
 * thread-safe; reset() disarms everything between tests.
 *
 * Sites on cancellable paths use MIPP_FAILPOINT_C(name, &token): the
 * injected delay then waits *on the token*, returning as soon as the
 * request's CancelToken fires (disconnect, deadline) instead of
 * blocking for the full duration — a fault-injection sleep must never
 * outlive the request it is injected into, or disconnect/deadline
 * tests end up serialized on the very delays they inject.
 */

#ifndef MIPP_UTIL_FAILPOINT_HH
#define MIPP_UTIL_FAILPOINT_HH

#include <atomic>
#include <string>
#include <string_view>

#include "util/cancel.hh"

namespace mipp::failpoint {

struct Spec {
    /** Times hit() reports fired; < 0 = every hit, 0 = never (sleep
     *  only). */
    int fires = -1;
    /** Delay applied on every hit while armed, fired or not. */
    int sleepMs = 0;
};

/** Arm @p name with @p spec (replaces any previous arming). */
void arm(std::string_view name, Spec spec = {});

/** Disarm one site. */
void disarm(std::string_view name);

/** Disarm everything (test teardown). */
void reset();

/** Number of currently armed sites (fast-path gate; see macro). */
int armedCount();

/** Slow path: look up @p name, apply its delay, consume a fire. The
 *  delay waits on @p cancel when one is given: it ends early the moment
 *  the token reports cancelled.
 *  @return true when the site should take its injected-fault path. */
bool hit(std::string_view name, const CancelToken *cancel = nullptr);

/**
 * Parse a CLI-style arming description "name[=fires[:sleepMs]]"
 * (e.g. "profile_io.corrupt", "sweep.chunk_delay=0:50") and arm it.
 * @return false on a malformed description.
 */
bool armFromString(std::string_view desc);

namespace detail {
extern std::atomic<int> armed;
}

} // namespace mipp::failpoint

/** True when the named failpoint is armed and fires at this hit. */
#define MIPP_FAILPOINT(name)                                              \
    (mipp::failpoint::detail::armed.load(std::memory_order_relaxed) > 0 && \
     mipp::failpoint::hit(name))

/** As MIPP_FAILPOINT, but an injected delay waits on @p cancelPtr
 *  (a const CancelToken *) instead of sleeping unconditionally. */
#define MIPP_FAILPOINT_C(name, cancelPtr)                                 \
    (mipp::failpoint::detail::armed.load(std::memory_order_relaxed) > 0 && \
     mipp::failpoint::hit(name, cancelPtr))

#endif // MIPP_UTIL_FAILPOINT_HH
