#include "util/thread_pool.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

namespace mipp {

namespace {
/** Set inside workerLoop so nested parallelFor calls run inline. */
thread_local bool tlInWorker = false;
} // namespace

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    // The caller participates in every parallelFor, so spawn one fewer
    // worker than the requested concurrency.
    for (unsigned t = 0; t + 1 < threads; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

ThreadPool &
ThreadPool::shared()
{
    static ThreadPool pool;
    return pool;
}

void
ThreadPool::workerLoop()
{
    tlInWorker = true;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
            if (tasks_.empty())
                return; // stop_ and drained
            task = std::move(tasks_.front());
            tasks_.pop_front();
        }
        task();
    }
}

void
ThreadPool::parallelFor(size_t n, size_t grain, const RangeFn &fn)
{
    if (n == 0)
        return;
    if (grain == 0)
        grain = 1;
    size_t chunks = (n + grain - 1) / grain;
    if (workers_.empty() || tlInWorker || chunks <= 1) {
        fn(0, n);
        return;
    }

    // Shared chunk dispenser; helpers and the caller pull ranges until
    // the range is exhausted. The caller joins last (even when a chunk
    // throws), so the reference to fn stays valid for the helpers'
    // whole lifetime; the first exception is captured and rethrown on
    // the caller once everyone is done.
    struct Job {
        std::atomic<size_t> next{0};
        size_t n;
        size_t grain;
        const RangeFn &fn;
        std::mutex mu;
        std::condition_variable done;
        size_t pendingHelpers;
        std::exception_ptr error;

        Job(size_t n, size_t grain, const RangeFn &fn, size_t helpers)
            : n(n), grain(grain), fn(fn), pendingHelpers(helpers)
        {
        }

        void
        run() noexcept
        {
            // A thread executing chunks counts as inside the pool, so
            // nested parallelFor calls from the caller's own chunk run
            // inline instead of queuing behind the outer job.
            bool wasInWorker = tlInWorker;
            tlInWorker = true;
            for (;;) {
                size_t b = next.fetch_add(grain,
                                          std::memory_order_relaxed);
                if (b >= n)
                    break;
                try {
                    fn(b, std::min(n, b + grain));
                } catch (...) {
                    {
                        std::lock_guard<std::mutex> lock(mu);
                        if (!error)
                            error = std::current_exception();
                    }
                    // Stop handing out further chunks.
                    next.store(n, std::memory_order_relaxed);
                }
            }
            tlInWorker = wasInWorker;
        }
    };

    size_t helpers = std::min(workers_.size(), chunks - 1);
    auto job = std::make_shared<Job>(n, grain, fn, helpers);

    {
        std::lock_guard<std::mutex> lock(mu_);
        for (size_t h = 0; h < helpers; ++h) {
            tasks_.emplace_back([job] {
                job->run();
                std::lock_guard<std::mutex> jlock(job->mu);
                if (--job->pendingHelpers == 0)
                    job->done.notify_one();
            });
        }
    }
    cv_.notify_all();

    job->run();
    {
        std::unique_lock<std::mutex> lock(job->mu);
        job->done.wait(lock, [&] { return job->pendingHelpers == 0; });
    }
    if (job->error)
        std::rethrow_exception(job->error);
}

void
parallelForShared(size_t n, unsigned threads, const ThreadPool::RangeFn &fn)
{
    if (n == 0)
        return;
    if (threads == 1) {
        fn(0, n);
        return;
    }
    // threads only biases chunk sizing (the shared pool owns the
    // workers): ~4 chunks per requested thread keeps dynamic balancing
    // for uneven item costs instead of a static n/threads partition.
    size_t grain =
        threads == 0 ? 1 : std::max<size_t>(1, n / (4 * size_t{threads}));
    ThreadPool::shared().parallelFor(n, grain, fn);
}

} // namespace mipp
