/**
 * @file
 * Parameterized activity-factor power model — the McPAT substitute
 * (thesis §2.4, §3.6, §4.10).
 *
 * Each processor structure gets a per-event dynamic energy and a static
 * leakage power, both scaled with the structure's configured size and the
 * operating point (Vdd, frequency). Dynamic power is the activity-weighted
 * energy divided by execution time; static power is summed leakage. The
 * same model is driven by activity factors from either the cycle-level
 * simulator or the analytical model, exactly like the paper feeds McPAT
 * from Sniper or from its interval model — so model-vs-simulator power
 * comparisons isolate the activity/timing prediction error, which is the
 * quantity the paper evaluates.
 *
 * Reference constants are calibrated to a 45 nm Nehalem-class core at
 * 1.1 V: total power of a few-to-tens of watts with static power around
 * 40 % of the total (thesis §2.4).
 */

#ifndef MIPP_POWER_POWER_MODEL_HH
#define MIPP_POWER_POWER_MODEL_HH

#include "uarch/activity.hh"
#include "uarch/core_config.hh"

namespace mipp {

/** Per-structure power in watts. */
struct PowerBreakdown {
    // Dynamic components.
    double frontend = 0;  ///< fetch / decode / rename
    double rob = 0;
    double iq = 0;
    double rf = 0;
    double fu = 0;
    double bp = 0;
    double l1i = 0;
    double l1d = 0;
    double l2 = 0;
    double l3 = 0;
    double dram = 0;      ///< off-chip access energy
    // Leakage.
    double staticPower = 0;

    double
    dynamicPower() const
    {
        return frontend + rob + iq + rf + fu + bp + l1i + l1d + l2 + l3 +
               dram;
    }
    double total() const { return dynamicPower() + staticPower; }
    /** Core-side dynamic power (no caches/DRAM), for power stacks. */
    double corePower() const
    {
        return frontend + rob + iq + rf + fu + bp;
    }
    double cachePower() const { return l1i + l1d + l2 + l3; }
};

/**
 * Everything computePower derives from the configuration alone: per-event
 * dynamic energies (nJ at the reference voltage), the Vdd^2 dynamic
 * scale and the summed leakage. Deriving these is std::pow-heavy, so a
 * batched sweep computes them once per design point and reuses them
 * across workloads; computePower(a, cfg) is bitwise identical to
 * computePower(a, cfg, powerParams(cfg)).
 */
struct PowerParams {
    double fetchPerUop = 0;
    double robEvent = 0;
    double iqEvent = 0;
    double rfRead = 0;
    double rfWrite = 0;
    double bpLookup = 0;
    double fuOp[kNumUopTypes] = {};
    double l1Access = 0;
    double l2Access = 0;
    double l3Access = 0;
    double dramAccess = 0;
    /** (Vdd / Vref)^2 dynamic-energy scale. */
    double vScale = 1.0;
    /** Total leakage in watts (capacity sum times the Vdd^3 scale). */
    double staticPower = 0;
};

/** Derive the configuration-only power inputs (see PowerParams). */
PowerParams powerParams(const CoreConfig &cfg);

/** Compute power from activity factors and a configuration. */
PowerBreakdown computePower(const ActivityCounts &activity,
                            const CoreConfig &cfg);

/** Same, with the configuration-derived inputs precomputed. */
PowerBreakdown computePower(const ActivityCounts &activity,
                            const CoreConfig &cfg,
                            const PowerParams &params);

/** Execution time in seconds for @p cycles at the configured frequency. */
double executionSeconds(double cycles, const CoreConfig &cfg);

/** Energy (J), EDP (J.s) and ED2P (J.s^2) for a run. */
struct EnergyMetrics {
    double seconds = 0;
    double energy = 0;
    double edp = 0;
    double ed2p = 0;
};

EnergyMetrics energyMetrics(double cycles, const PowerBreakdown &power,
                            const CoreConfig &cfg);

} // namespace mipp

#endif // MIPP_POWER_POWER_MODEL_HH
