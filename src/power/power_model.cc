#include "power/power_model.hh"

#include <cmath>

namespace mipp {

namespace {

/** Reference operating point the constants are calibrated at. */
constexpr double kRefVdd = 1.1;

/** Sub-linear capacity scaling for SRAM access energy (bitline growth). */
double
sizeScale(double size, double refSize, double exponent = 0.5)
{
    return std::pow(size / refSize, exponent);
}

/** Per-event dynamic energies in nJ at the reference voltage. */
struct Energies {
    double fetchPerUop;
    double robEvent;
    double iqEvent;
    double rfRead;
    double rfWrite;
    double bpLookup;
    double fuOp[kNumUopTypes];
    double l1Access;
    double l2Access;
    double l3Access;
    double dramAccess;
};

Energies
energiesFor(const CoreConfig &cfg)
{
    Energies e;
    double w = cfg.dispatchWidth / 4.0;
    e.fetchPerUop = 0.15 * sizeScale(w, 1.0, 0.5);
    e.robEvent = 0.030 * sizeScale(cfg.robSize, 128.0);
    e.iqEvent = 0.040 * sizeScale(cfg.iqSize, 36.0);
    e.rfRead = 0.015 * sizeScale(w, 1.0, 0.3);
    e.rfWrite = 0.020 * sizeScale(w, 1.0, 0.3);
    e.bpLookup = 0.010 * sizeScale(cfg.predictorBytes, 4096.0);

    auto set = [&](UopType t, double v) {
        e.fuOp[static_cast<int>(t)] = v;
    };
    set(UopType::IntAlu, 0.05);
    set(UopType::IntMul, 0.12);
    set(UopType::IntDiv, 0.40);
    set(UopType::FpAlu, 0.20);
    set(UopType::FpMul, 0.30);
    set(UopType::FpDiv, 0.60);
    set(UopType::Load, 0.05);   // AGU; the cache access is separate
    set(UopType::Store, 0.05);
    set(UopType::Branch, 0.03);
    set(UopType::Move, 0.03);

    e.l1Access = 0.08 * sizeScale(cfg.l1d.sizeBytes, 32.0 * 1024);
    e.l2Access = 0.30 * sizeScale(cfg.l2.sizeBytes, 256.0 * 1024);
    e.l3Access = 1.20 * sizeScale(cfg.l3.sizeBytes, 8.0 * 1024 * 1024);
    e.dramAccess = 20.0;  // off-chip, per cache line
    return e;
}

} // namespace

double
executionSeconds(double cycles, const CoreConfig &cfg)
{
    return cycles / (cfg.freqGHz * 1e9);
}

PowerParams
powerParams(const CoreConfig &cfg)
{
    const Energies e = energiesFor(cfg);
    PowerParams pp;
    pp.fetchPerUop = e.fetchPerUop;
    pp.robEvent = e.robEvent;
    pp.iqEvent = e.iqEvent;
    pp.rfRead = e.rfRead;
    pp.rfWrite = e.rfWrite;
    pp.bpLookup = e.bpLookup;
    for (int t = 0; t < kNumUopTypes; ++t)
        pp.fuOp[t] = e.fuOp[t];
    pp.l1Access = e.l1Access;
    pp.l2Access = e.l2Access;
    pp.l3Access = e.l3Access;
    pp.dramAccess = e.dramAccess;
    // Dynamic energy scales with Vdd^2 (thesis Eq 2.2).
    pp.vScale = (cfg.vdd / kRefVdd) * (cfg.vdd / kRefVdd);

    // Leakage: proportional to structure capacity, superlinear in Vdd
    // (thesis Eq 2.1; leakage current itself grows with voltage).
    const double lScale = std::pow(cfg.vdd / kRefVdd, 3.0);
    double s = 0;
    s += 1.20 * (cfg.dispatchWidth / 4.0);              // core logic
    s += 0.50 * (cfg.robSize / 128.0);                  // ROB + IQ + RF
    s += 0.05 * (cfg.predictorBytes / 4096.0);          // predictor
    s += 0.15 * (cfg.l1i.sizeBytes / (32.0 * 1024));
    s += 0.15 * (cfg.l1d.sizeBytes / (32.0 * 1024));
    s += 0.30 * (cfg.l2.sizeBytes / (256.0 * 1024));
    s += 2.40 * (cfg.l3.sizeBytes / (8.0 * 1024 * 1024));
    pp.staticPower = s * lScale;
    return pp;
}

PowerBreakdown
computePower(const ActivityCounts &a, const CoreConfig &cfg)
{
    if (a.cycles == 0)
        return {};
    return computePower(a, cfg, powerParams(cfg));
}

PowerBreakdown
computePower(const ActivityCounts &a, const CoreConfig &cfg,
             const PowerParams &e)
{
    PowerBreakdown p;
    if (a.cycles == 0)
        return p;

    const double seconds = executionSeconds(a.cycles, cfg);
    const double toWatts = 1e-9 * e.vScale / seconds;

    p.frontend = a.uops * e.fetchPerUop * toWatts;
    p.rob = (a.robWrites + a.robReads) * e.robEvent * toWatts;
    p.iq = (a.iqWrites + a.iqWakeups) * e.iqEvent * toWatts;
    p.rf = (a.rfReads * e.rfRead + a.rfWrites * e.rfWrite) * toWatts;
    p.bp = a.bpLookups * e.bpLookup * toWatts;
    double fu = 0;
    for (int t = 0; t < kNumUopTypes; ++t)
        fu += a.fuOps[t] * e.fuOp[t];
    p.fu = fu * toWatts;
    p.l1i = a.l1iAccesses * e.l1Access * toWatts;
    p.l1d = a.l1dAccesses * e.l1Access * toWatts;
    p.l2 = a.l2Accesses * e.l2Access * toWatts;
    p.l3 = a.l3Accesses * e.l3Access * toWatts;
    p.dram = a.dramAccesses * e.dramAccess * toWatts;
    p.staticPower = e.staticPower;
    return p;
}

EnergyMetrics
energyMetrics(double cycles, const PowerBreakdown &power,
              const CoreConfig &cfg)
{
    EnergyMetrics m;
    m.seconds = executionSeconds(cycles, cfg);
    m.energy = power.total() * m.seconds;
    m.edp = m.energy * m.seconds;
    m.ed2p = m.edp * m.seconds;
    return m;
}

} // namespace mipp
