/**
 * @file
 * Design-space sweep driver (thesis Ch. 6-7 experimental harness).
 *
 * Pairs every workload with every core configuration. Three modes:
 *
 *  - Paired: every point gets both the ground truth (cycle-level
 *    simulation + power from simulated activity) and the prediction
 *    (analytical model + power from modeled activity). O(points × sim).
 *  - ModelOnly: the analytical model over the full space, no simulation.
 *    O(points × model) — the paper's speed claim; this is how a
 *    million-point space is swept.
 *  - ModelThenSimPareto: the paper's §7 workflow. The model is evaluated
 *    everywhere, the *model-side* Pareto front is extracted per workload,
 *    and detailed simulation runs only on front candidates plus a
 *    configurable validation sample. O(points × model + front × sim).
 *
 * Sweeps are workload-major: points for one workload are contiguous and
 * each worker chunk holds a single memoized EvalContext, so per-workload
 * state (StatStacks, chain weights, MLP walks) is built once per chunk
 * instead of once per point.
 */

#ifndef MIPP_DSE_EXPLORER_HH
#define MIPP_DSE_EXPLORER_HH

#include <cstddef>
#include <vector>

#include "model/interval_model.hh"
#include "power/power_model.hh"
#include "profiler/profile.hh"
#include "sim/ooo_core.hh"
#include "trace/trace.hh"
#include "uarch/core_config.hh"

namespace mipp {

/** Full detail for one (workload, configuration) evaluation. */
struct PairEval {
    SimResult sim;
    ModelResult model;
    PowerBreakdown simPower;
    PowerBreakdown modelPower;

    double simCpi() const { return sim.cpiPerUop(); }
    double modelCpi() const { return model.cpiPerUop(); }
    /** Relative CPI prediction error (signed). */
    double
    cpiError() const
    {
        return simCpi() > 0 ? (modelCpi() - simCpi()) / simCpi() : 0;
    }
    double
    powerError() const
    {
        double s = simPower.total();
        return s > 0 ? (modelPower.total() - s) / s : 0;
    }
};

/** Simulate and model one pair. */
PairEval evaluatePair(const Trace &trace, const Profile &profile,
                      const CoreConfig &cfg, const ModelOptions &mopts = {},
                      const SimOptions &sopts = {});

/** How a sweep spends its simulation budget. */
enum class SweepMode {
    Paired,             ///< simulate + model every point
    ModelOnly,          ///< model every point, simulate nothing
    ModelThenSimPareto, ///< model everywhere, simulate model-front + sample
};

/** Sweep configuration. */
struct SweepOptions {
    SweepMode mode = SweepMode::Paired;

    /** 0 = full pool concurrency; 1 = serial in the caller; other values
     *  only bias chunk sizing, since the shared pool owns the workers. */
    unsigned threads = 0;

    /**
     * ModelThenSimPareto: how many *non-front* configs per workload also
     * get a detailed simulation, as a validation sample against model
     * mispredictions off the front. Chosen evenly spaced over the
     * config axis (deterministic).
     */
    size_t validationSamples = 0;
};

/** One record of a design-space sweep. */
struct SweepPoint {
    size_t configIdx = 0;
    size_t workloadIdx = 0;
    double simCpi = 0;
    double modelCpi = 0;
    double simWatts = 0;
    double modelWatts = 0;
    /** Whether this point was detail-simulated (always true in Paired
     *  mode; front/sample points only in ModelThenSimPareto). */
    bool simulated = false;

    double
    cpiError() const
    {
        return simCpi > 0 ? (modelCpi - simCpi) / simCpi : 0;
    }
    double
    powerError() const
    {
        return simWatts > 0 ? (modelWatts - simWatts) / simWatts : 0;
    }
};

/** Outcome of sweepEx: all points plus the simulation bookkeeping. */
struct SweepResult {
    /**
     * Workload-major: points[wi * nConfigs + ci]. Pre-sized and written
     * in place by the workers — each point index is owned by exactly one
     * chunk, so index-addressed writes need no synchronization (a
     * reserve/emplace scheme would).
     */
    std::vector<SweepPoint> points;
    size_t nWorkloads = 0;
    size_t nConfigs = 0;

    /** Detailed-simulation invocations actually spent. */
    size_t simInvocations = 0;

    /** Per workload, config indices of the model-predicted Pareto front
     *  over (model CPI, model watts). Filled in ModelOnly and
     *  ModelThenSimPareto modes. */
    std::vector<std::vector<size_t>> modelFronts;

    const SweepPoint &
    at(size_t wi, size_t ci) const
    {
        return points[wi * nConfigs + ci];
    }
};

/** Evaluate all (config, workload) pairs under @p sopts (see SweepMode). */
SweepResult sweepEx(const std::vector<Trace> &traces,
                    const std::vector<Profile> &profiles,
                    const std::vector<CoreConfig> &configs,
                    const ModelOptions &mopts = {},
                    const SweepOptions &sopts = {});

/**
 * Compatibility wrapper: Paired sweep over all pairs, returning the bare
 * point list in the historical config-major order (point i is
 * workload i % nWorkloads, config i / nWorkloads).
 */
std::vector<SweepPoint>
sweep(const std::vector<Trace> &traces,
      const std::vector<Profile> &profiles,
      const std::vector<CoreConfig> &configs,
      const ModelOptions &mopts = {}, unsigned threads = 0);

} // namespace mipp

#endif // MIPP_DSE_EXPLORER_HH
