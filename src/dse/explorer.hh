/**
 * @file
 * Design-space sweep driver (thesis Ch. 6-7 experimental harness).
 *
 * Pairs every workload with every core configuration and produces both the
 * ground truth (cycle-level simulation + power from simulated activity) and
 * the prediction (analytical model from the workload's single profile +
 * power from modeled activity). Sweeps parallelize across points.
 */

#ifndef MIPP_DSE_EXPLORER_HH
#define MIPP_DSE_EXPLORER_HH

#include <vector>

#include "model/interval_model.hh"
#include "power/power_model.hh"
#include "profiler/profile.hh"
#include "sim/ooo_core.hh"
#include "trace/trace.hh"
#include "uarch/core_config.hh"

namespace mipp {

/** Full detail for one (workload, configuration) evaluation. */
struct PairEval {
    SimResult sim;
    ModelResult model;
    PowerBreakdown simPower;
    PowerBreakdown modelPower;

    double simCpi() const { return sim.cpiPerUop(); }
    double modelCpi() const { return model.cpiPerUop(); }
    /** Relative CPI prediction error (signed). */
    double
    cpiError() const
    {
        return simCpi() > 0 ? (modelCpi() - simCpi()) / simCpi() : 0;
    }
    double
    powerError() const
    {
        double s = simPower.total();
        return s > 0 ? (modelPower.total() - s) / s : 0;
    }
};

/** Simulate and model one pair. */
PairEval evaluatePair(const Trace &trace, const Profile &profile,
                      const CoreConfig &cfg, const ModelOptions &mopts = {},
                      const SimOptions &sopts = {});

/** One record of a design-space sweep. */
struct SweepPoint {
    size_t configIdx = 0;
    size_t workloadIdx = 0;
    double simCpi = 0;
    double modelCpi = 0;
    double simWatts = 0;
    double modelWatts = 0;

    double
    cpiError() const
    {
        return simCpi > 0 ? (modelCpi - simCpi) / simCpi : 0;
    }
    double
    powerError() const
    {
        return simWatts > 0 ? (modelWatts - simWatts) / simWatts : 0;
    }
};

/**
 * Evaluate all (config, workload) pairs; parallel across points via the
 * shared ThreadPool (chunked scheduling, no per-call thread spawning).
 *
 * @param threads 0 = full pool concurrency; 1 = serial in the caller;
 *                other values only bias chunk sizing, since the shared
 *                pool owns the worker threads.
 */
std::vector<SweepPoint>
sweep(const std::vector<Trace> &traces,
      const std::vector<Profile> &profiles,
      const std::vector<CoreConfig> &configs,
      const ModelOptions &mopts = {}, unsigned threads = 0);

} // namespace mipp

#endif // MIPP_DSE_EXPLORER_HH
