/**
 * @file
 * Design-space sweep driver (thesis Ch. 6-7 experimental harness).
 *
 * Pairs every workload with every core configuration. Three modes:
 *
 *  - Paired: every point gets both the ground truth (cycle-level
 *    simulation + power from simulated activity) and the prediction
 *    (analytical model + power from modeled activity). O(points × sim).
 *  - ModelOnly: the analytical model over the full space, no simulation.
 *    O(points × model) — the paper's speed claim; this is how a
 *    million-point space is swept.
 *  - ModelThenSimPareto: the paper's §7 workflow. The model is evaluated
 *    everywhere, the *model-side* Pareto front is extracted per workload,
 *    and detailed simulation runs only on front candidates plus a
 *    configurable validation sample. O(points × model + front × sim).
 *  - ModelOnlyPareto: ModelOnly evaluated through the batched BatchEval
 *    engine with *streaming* Pareto accumulation: results flow straight
 *    into an online per-workload ParetoAccumulator and are discarded, so
 *    peak memory is O(front), independent of the point count. The
 *    surviving fronts are bitwise identical to ModelOnly's (same model
 *    values, same tie handling). This is the mode that makes a
 *    million-point space practical; sweepGenerated() extends it to
 *    spaces too large to materialize even as a config vector.
 *
 * Sweeps are workload-major: points for one workload are contiguous and
 * each worker chunk holds a single memoized EvalContext, so per-workload
 * state (StatStacks, chain weights, MLP walks) is built once per chunk
 * instead of once per point. Streaming sweeps can additionally reuse the
 * batched evaluators across calls via ModelEvalPool.
 */

#ifndef MIPP_DSE_EXPLORER_HH
#define MIPP_DSE_EXPLORER_HH

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "model/interval_model.hh"
#include "power/power_model.hh"
#include "profiler/profile.hh"
#include "sim/ooo_core.hh"
#include "trace/trace.hh"
#include "uarch/core_config.hh"
#include "util/cancel.hh"
#include "util/status.hh"

namespace mipp {

/** Full detail for one (workload, configuration) evaluation. */
struct PairEval {
    SimResult sim;
    ModelResult model;
    PowerBreakdown simPower;
    PowerBreakdown modelPower;

    double simCpi() const { return sim.cpiPerUop(); }
    double modelCpi() const { return model.cpiPerUop(); }
    /** Relative CPI prediction error (signed). */
    double
    cpiError() const
    {
        return simCpi() > 0 ? (modelCpi() - simCpi()) / simCpi() : 0;
    }
    double
    powerError() const
    {
        double s = simPower.total();
        return s > 0 ? (modelPower.total() - s) / s : 0;
    }
};

/** Simulate and model one pair. */
PairEval evaluatePair(const Trace &trace, const Profile &profile,
                      const CoreConfig &cfg, const ModelOptions &mopts = {},
                      const SimOptions &sopts = {});

/** How a sweep spends its simulation budget. */
enum class SweepMode {
    Paired,             ///< simulate + model every point
    ModelOnly,          ///< model every point, simulate nothing
    ModelThenSimPareto, ///< model everywhere, simulate model-front + sample
    ModelOnlyPareto,    ///< batched model pass, streaming O(front) fronts
};

class EvalContext;
class BatchEval;

/**
 * Reusable per-workload batched evaluators for repeated streaming sweeps
 * against pinned profiles: the profile-level memo tables (StatStacks,
 * stride-MLP walks, dispatch-limit entries...) stay warm across sweep
 * calls instead of being rebuilt per call. Entries are keyed by workload
 * index and validated against the profile identity and the model options;
 * any mismatch rebuilds the entry.
 *
 * Lifetime: pooled entries pin their Profile like EvalContext does — the
 * profiles must outlive the pool, unmutated. Thread safety: a streaming
 * sweep consults the pool only when each workload maps to exactly one
 * shard (it calls reserve() up front, so concurrent get() calls touch
 * disjoint slots); direct users must serialize access themselves.
 */
class ModelEvalPool
{
  public:
    ModelEvalPool();
    ~ModelEvalPool();
    ModelEvalPool(const ModelEvalPool &) = delete;
    ModelEvalPool &operator=(const ModelEvalPool &) = delete;

    /** Pre-size the slot table so get() never reallocates (required
     *  before concurrent use). */
    void reserve(size_t nWorkloads);

    /** Pooled evaluator for workload @p wi pinned to @p profile under
     *  @p mopts; (re)built on first use or identity mismatch. */
    BatchEval &get(size_t wi, const Profile &profile,
                   const ModelOptions &mopts);

    void clear();

  private:
    struct Slot;
    std::vector<Slot> slots_;
};

/** Sweep configuration. */
struct SweepOptions {
    SweepMode mode = SweepMode::Paired;

    /** 0 = full pool concurrency; 1 = serial in the caller; other values
     *  only bias chunk sizing, since the shared pool owns the workers. */
    unsigned threads = 0;

    /**
     * ModelThenSimPareto: how many *non-front* configs per workload also
     * get a detailed simulation, as a validation sample against model
     * mispredictions off the front. Chosen evenly spaced over the
     * config axis (deterministic).
     */
    size_t validationSamples = 0;

    /** Streaming modes: optional cross-call evaluator pool (see
     *  ModelEvalPool). The pool must outlive the sweep call; profiles
     *  must outlive the pool. Ignored by non-streaming modes. */
    ModelEvalPool *evalPool = nullptr;

    /**
     * Cooperative cancellation / per-request deadline, checked at chunk,
     * batch and sim-invocation boundaries. When it fires mid-sweep the
     * sweep *degrades* instead of failing: everything already evaluated
     * is kept, remaining work is skipped, and the result comes back with
     * degraded = true (fronts are extracted over the evaluated subset
     * only; ModelThenSimPareto falls back toward model-only by skipping
     * whatever simulation budget no longer fits). A default-constructed
     * token never cancels.
     */
    CancelToken cancel;
};

/** One record of a design-space sweep. */
struct SweepPoint {
    size_t configIdx = 0;
    size_t workloadIdx = 0;
    double simCpi = 0;
    double modelCpi = 0;
    double simWatts = 0;
    double modelWatts = 0;
    /** Whether this point was detail-simulated (always true in Paired
     *  mode; front/sample points only in ModelThenSimPareto). */
    bool simulated = false;
    /** Whether the model pass reached this point. Always true in a
     *  completed sweep; false only for points a cancelled (degraded)
     *  sweep never evaluated — front extraction skips those. */
    bool evaluated = false;

    double
    cpiError() const
    {
        return simCpi > 0 ? (modelCpi - simCpi) / simCpi : 0;
    }
    double
    powerError() const
    {
        return simWatts > 0 ? (modelWatts - simWatts) / simWatts : 0;
    }
};

/** Outcome of sweepEx: all points plus the simulation bookkeeping. */
struct SweepResult {
    /**
     * Workload-major: points[wi * nConfigs + ci]. Pre-sized and written
     * in place by the workers — each point index is owned by exactly one
     * chunk, so index-addressed writes need no synchronization (a
     * reserve/emplace scheme would).
     */
    std::vector<SweepPoint> points;
    size_t nWorkloads = 0;
    size_t nConfigs = 0;

    /** Detailed-simulation invocations actually spent. */
    size_t simInvocations = 0;

    /**
     * Structured outcome. InvalidArgument (empty design space, no
     * workloads, trace/profile count mismatch) comes back here instead
     * of as a silently empty result; the legacy sweep() wrapper throws
     * it as a StatusError. A degraded sweep still reports Ok.
     */
    Status status;

    /** True when SweepOptions::cancel fired mid-sweep: the result is a
     *  valid partial (see SweepOptions::cancel), not the full space. */
    bool degraded = false;

    /** Per workload, config indices of the model-predicted Pareto front
     *  over (model CPI, model watts). Filled in ModelOnly,
     *  ModelThenSimPareto and ModelOnlyPareto modes. */
    std::vector<std::vector<size_t>> modelFronts;

    /**
     * Per workload, the front points themselves (ascending configIdx,
     * mirroring modelFronts). In streaming ModelOnlyPareto mode this is
     * the only per-point output — `points` stays empty so the sweep runs
     * in O(front) memory — but it is filled by the materializing
     * model-front modes too, so consumers can read fronts uniformly.
     */
    std::vector<std::vector<SweepPoint>> frontPoints;

    const SweepPoint &
    at(size_t wi, size_t ci) const
    {
        return points[wi * nConfigs + ci];
    }
};

/** Evaluate all (config, workload) pairs under @p sopts (see SweepMode). */
SweepResult sweepEx(const std::vector<Trace> &traces,
                    const std::vector<Profile> &profiles,
                    const std::vector<CoreConfig> &configs,
                    const ModelOptions &mopts = {},
                    const SweepOptions &sopts = {});

/**
 * Writes design point @p ci into @p out. The target is a reused scratch
 * slot: it keeps whatever configuration it held on the previous call, so
 * a generator must set every field it varies (and may exploit the reuse
 * to skip re-initializing fields it does not). Must be a pure function
 * of @p ci — shards may generate any index in any order.
 */
using ConfigGenerator = std::function<void(size_t ci, CoreConfig &out)>;

/**
 * Streaming model-only sweep over a *generated* design space: the
 * nConfigs points are produced on the fly by @p gen, evaluated through
 * the batched engine and folded into per-workload Pareto accumulators —
 * neither the config vector nor the result grid is ever materialized, so
 * memory is O(front) + O(batch) however large the space. Runs in
 * SweepMode::ModelOnlyPareto regardless of sopts.mode; the returned
 * result carries modelFronts/frontPoints only.
 */
SweepResult sweepGenerated(const std::vector<Profile> &profiles,
                           size_t nConfigs, const ConfigGenerator &gen,
                           const ModelOptions &mopts = {},
                           const SweepOptions &sopts = {});

/**
 * Compatibility wrapper: Paired sweep over all pairs, returning the bare
 * point list in the historical config-major order (point i is
 * workload i % nWorkloads, config i / nWorkloads).
 */
std::vector<SweepPoint>
sweep(const std::vector<Trace> &traces,
      const std::vector<Profile> &profiles,
      const std::vector<CoreConfig> &configs,
      const ModelOptions &mopts = {}, unsigned threads = 0);

} // namespace mipp

#endif // MIPP_DSE_EXPLORER_HH
