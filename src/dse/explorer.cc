#include "dse/explorer.hh"

#include <algorithm>
#include <array>
#include <atomic>
#include <utility>

#include "dse/pareto.hh"
#include "model/eval_cache.hh"
#include "obs/trace.hh"
#include "power/power_model.hh"
#include "util/failpoint.hh"
#include "util/thread_pool.hh"

namespace mipp {

namespace {

/** Pool-slot identity: options under which a cached BatchEval was built.
 *  A custom branch model is never treated as poolable — model equality
 *  would need a deep compare, and the override is a test-only escape
 *  hatch — so its presence always rebuilds. */
bool
sameOptions(const ModelOptions &a, const ModelOptions &b)
{
    return a.baseLevel == b.baseLevel && a.mlpMode == b.mlpMode &&
           a.modelMshrs == b.modelMshrs && a.modelBus == b.modelBus &&
           a.modelLlcChaining == b.modelLlcChaining &&
           a.modelPrefetcher == b.modelPrefetcher &&
           a.perWindow == b.perWindow && !a.branchModel &&
           !b.branchModel &&
           a.cal.penaltyScale == b.cal.penaltyScale &&
           a.cal.baseWindowFrac == b.cal.baseWindowFrac &&
           a.cal.mlpWindowFrac == b.cal.mlpWindowFrac &&
           a.cal.shadowScale == b.cal.shadowScale &&
           a.cal.busQueueScale == b.cal.busQueueScale &&
           a.cal.coldInject == b.cal.coldInject;
}

} // namespace

struct ModelEvalPool::Slot {
    const Profile *profile = nullptr;
    ModelOptions opts;
    std::unique_ptr<EvalContext> ctx;
    std::unique_ptr<BatchEval> be;
};

ModelEvalPool::ModelEvalPool() = default;
ModelEvalPool::~ModelEvalPool() = default;

void
ModelEvalPool::reserve(size_t nWorkloads)
{
    if (slots_.size() < nWorkloads)
        slots_.resize(nWorkloads);
}

BatchEval &
ModelEvalPool::get(size_t wi, const Profile &profile,
                   const ModelOptions &mopts)
{
    reserve(wi + 1);
    Slot &s = slots_[wi];
    if (!s.be || s.profile != &profile || !sameOptions(s.opts, mopts)) {
        s.ctx = std::make_unique<EvalContext>(profile);
        s.be = std::make_unique<BatchEval>(*s.ctx, mopts);
        s.profile = &profile;
        s.opts = mopts;
    }
    return *s.be;
}

void
ModelEvalPool::clear()
{
    slots_.clear();
}

PairEval
evaluatePair(const Trace &trace, const Profile &profile,
             const CoreConfig &cfg, const ModelOptions &mopts,
             const SimOptions &sopts)
{
    PairEval e;
    e.sim = simulate(trace, cfg, sopts);
    e.model = evaluateModel(profile, cfg, mopts);
    e.simPower = computePower(e.sim.activity, cfg);
    e.modelPower = computePower(e.model.activity, cfg);
    return e;
}

namespace {

/** One contiguous run of configs for a single workload. */
struct Span {
    size_t wi, c0, c1;
};

/**
 * Chunk the workload-major point grid. Several chunks per execution
 * stream so uneven point costs still balance, but the grain respects
 * workload boundaries: a chunk never straddles two workloads, so one
 * memoized EvalContext serves every point in it. (The old config-major
 * mapping `wi = i % nw` interleaved workloads, thrashing any per-workload
 * state on every index.)
 */
std::vector<Span>
workloadMajorChunks(size_t nw, size_t nc, unsigned streams)
{
    std::vector<Span> spans;
    if (nw == 0 || nc == 0)
        return spans;
    size_t target = std::max<size_t>(1, 4 * streams);
    size_t perWorkload = std::max<size_t>(1, (target + nw - 1) / nw);
    perWorkload = std::min(perWorkload, nc);
    size_t grain = (nc + perWorkload - 1) / perWorkload;
    for (size_t wi = 0; wi < nw; ++wi)
        for (size_t c0 = 0; c0 < nc; c0 += grain)
            spans.push_back({wi, c0, std::min(nc, c0 + grain)});
    return spans;
}

unsigned
streamCount(unsigned threads)
{
    unsigned streams = ThreadPool::shared().concurrency();
    if (threads != 0)
        streams = std::min(streams, threads);
    return streams;
}

/** Model every point, one EvalContext per (workload, chunk). Stops
 *  starting new work once @p cancel fires; untouched points keep
 *  evaluated == false. */
void
modelPass(const std::vector<Profile> &profiles,
          const std::vector<CoreConfig> &configs, SweepResult &res,
          const ModelOptions &mopts, unsigned threads,
          const CancelToken &cancel)
{
    const size_t nc = res.nConfigs;
    auto spans =
        workloadMajorChunks(res.nWorkloads, nc, streamCount(threads));
    parallelForShared(spans.size(), threads, [&](size_t begin, size_t end) {
        for (size_t s = begin; s < end; ++s) {
            if (cancel.cancelled())
                return;
            // Test hook: stretch chunk execution so a deadline can be
            // made to expire mid-sweep deterministically. The injected
            // delay waits on the sweep's token, so a cancelled request
            // is not held hostage by its own fault injection.
            (void)MIPP_FAILPOINT_C("dse.chunk_delay", &cancel);
            MIPP_SPAN("dse.chunk");
            const Span &sp = spans[s];
            EvalContext ctx(profiles[sp.wi]);
            for (size_t ci = sp.c0; ci < sp.c1; ++ci) {
                if (cancel.cancelled())
                    return;
                ModelResult m = evaluateModel(ctx, configs[ci], mopts);
                SweepPoint &pt = res.points[sp.wi * nc + ci];
                pt.configIdx = ci;
                pt.workloadIdx = sp.wi;
                pt.modelCpi = m.cpiPerUop();
                pt.modelWatts = computePower(m.activity, configs[ci]).total();
                pt.evaluated = true;
            }
        }
    });
}

/** Detail-simulate the selected (workload, config) pairs. Checks the
 *  token before every simulate() call — one detailed simulation is the
 *  coarsest unit of work a deadline can wait out. */
void
simPass(const std::vector<Trace> &traces,
        const std::vector<CoreConfig> &configs,
        const std::vector<std::pair<size_t, size_t>> &pairs,
        SweepResult &res, unsigned threads, const CancelToken &cancel)
{
    std::atomic<size_t> invoked{0};
    parallelForShared(pairs.size(), threads, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
            if (cancel.cancelled())
                return;
            auto [wi, ci] = pairs[i];
            MIPP_SPAN("dse.sim");
            SimResult sim = simulate(traces[wi], configs[ci]);
            SweepPoint &pt = res.points[wi * res.nConfigs + ci];
            pt.simCpi = sim.cpiPerUop();
            pt.simWatts = computePower(sim.activity, configs[ci]).total();
            pt.simulated = true;
            invoked.fetch_add(1, std::memory_order_relaxed);
        }
    });
    res.simInvocations += invoked.load(std::memory_order_relaxed);
}

/** Per-workload Pareto fronts over the model objectives. Only points
 *  the model pass reached participate: a degraded sweep's front is the
 *  true front of the evaluated subset, not polluted by the zero-CPI
 *  placeholders of never-evaluated points. */
void
extractModelFronts(SweepResult &res)
{
    res.modelFronts.assign(res.nWorkloads, {});
    res.frontPoints.assign(res.nWorkloads, {});
    for (size_t wi = 0; wi < res.nWorkloads; ++wi) {
        std::vector<Objective> obj;
        std::vector<size_t> cis;
        obj.reserve(res.nConfigs);
        for (size_t ci = 0; ci < res.nConfigs; ++ci) {
            const SweepPoint &pt = res.at(wi, ci);
            if (!pt.evaluated)
                continue;
            obj.push_back({pt.modelCpi, pt.modelWatts});
            cis.push_back(ci);
        }
        // paretoFront indices are positions in obj; map back to config
        // indices (identity for a completed sweep).
        for (size_t k : paretoFront(obj))
            res.modelFronts[wi].push_back(cis[k]);
        for (size_t ci : res.modelFronts[wi])
            res.frontPoints[wi].push_back(res.at(wi, ci));
    }
}

/**
 * Chunking for the streaming model pass: one shard per workload unless
 * extra streams are idle. Model-only points cost near-uniform time, so
 * grains finer than the stream count only multiply cold evaluator
 * builds (and defeat the eval pool's whole-workload reuse).
 */
std::vector<Span>
streamingChunks(size_t nw, size_t nc, unsigned streams)
{
    std::vector<Span> spans;
    if (nw == 0 || nc == 0)
        return spans;
    size_t target = std::max<size_t>(1, streams);
    size_t perWorkload = std::max<size_t>(1, (target + nw - 1) / nw);
    perWorkload = std::min(perWorkload, nc);
    size_t grain = (nc + perWorkload - 1) / perWorkload;
    for (size_t wi = 0; wi < nw; ++wi)
        for (size_t c0 = 0; c0 < nc; c0 += grain)
            spans.push_back({wi, c0, std::min(nc, c0 + grain)});
    return spans;
}

/**
 * Streaming batched model pass (SweepMode::ModelOnlyPareto): evaluate
 * every point through BatchEval in fixed-size batches and fold the
 * (CPI, watts) objectives straight into per-shard Pareto accumulators —
 * no SweepPoint grid. Shard accumulators merge per workload at the end;
 * since the batched values are bitwise identical to the scalar path's,
 * the merged fronts equal ModelOnly's paretoFront() output exactly.
 *
 * Exactly one of @p configs / @p gen is non-null: explicit config spans
 * are evaluated in place, generated spaces one scratch batch at a time.
 */
void
streamingModelPass(const std::vector<Profile> &profiles,
                   const std::vector<CoreConfig> *configs,
                   const ConfigGenerator *gen, SweepResult &res,
                   const ModelOptions &mopts, const SweepOptions &sopts)
{
    const size_t nw = res.nWorkloads;
    const size_t nc = res.nConfigs;
    auto spans = streamingChunks(nw, nc, streamCount(sopts.threads));

    // Power parameters are workload-independent; precompute them once
    // for explicit multi-workload spaces so every workload shares the
    // voltage/leakage pow() chain. Generated spaces derive them per
    // point — materializing per-config state is what a generator avoids.
    std::vector<PowerParams> pp;
    if (configs && nw > 1) {
        pp.reserve(nc);
        for (const CoreConfig &cfg : *configs)
            pp.push_back(powerParams(cfg));
    }

    // The pool is consulted only in the one-shard-per-workload regime:
    // concurrent shards then touch disjoint, pre-reserved slots.
    const bool wholeSpans = sopts.evalPool && spans.size() == nw;
    if (wholeSpans)
        sopts.evalPool->reserve(nw);

    std::vector<ParetoAccumulator> accs(spans.size());
    parallelForShared(
        spans.size(), sopts.threads, [&](size_t begin, size_t end) {
            for (size_t s = begin; s < end; ++s) {
                if (sopts.cancel.cancelled())
                    return;
                (void)MIPP_FAILPOINT_C("dse.chunk_delay",
                                       &sopts.cancel);
                MIPP_SPAN("dse.chunk");
                const Span &sp = spans[s];
                std::unique_ptr<EvalContext> localCtx;
                std::unique_ptr<BatchEval> localBe;
                BatchEval *be;
                if (wholeSpans) {
                    be = &sopts.evalPool->get(sp.wi, profiles[sp.wi],
                                              mopts);
                } else {
                    localCtx =
                        std::make_unique<EvalContext>(profiles[sp.wi]);
                    localBe =
                        std::make_unique<BatchEval>(*localCtx, mopts);
                    be = localBe.get();
                }

                constexpr size_t kBatch = 256;
                std::array<BatchEval::Output, kBatch> out;
                std::vector<CoreConfig> genBuf;
                if (gen)
                    genBuf.resize(kBatch);
                ParetoAccumulator &acc = accs[s];
                for (size_t c0 = sp.c0; c0 < sp.c1; c0 += kBatch) {
                    if (sopts.cancel.cancelled())
                        return;
                    const size_t n = std::min(kBatch, sp.c1 - c0);
                    const CoreConfig *cfgs;
                    if (gen) {
                        for (size_t j = 0; j < n; ++j)
                            (*gen)(c0 + j, genBuf[j]);
                        cfgs = genBuf.data();
                    } else {
                        cfgs = configs->data() + c0;
                    }
                    be->evaluate(cfgs, n, out.data(),
                                 pp.empty() ? nullptr : pp.data() + c0);
                    for (size_t j = 0; j < n; ++j)
                        acc.insert({out[j].modelCpi, out[j].modelWatts},
                                   c0 + j);
                }
            }
        });

    // Merge shard accumulators per workload; expose the surviving fronts
    // in ascending config order (paretoFront()'s order).
    res.modelFronts.assign(nw, {});
    res.frontPoints.assign(nw, {});
    for (size_t s = 0; s < spans.size(); ++s) {
        // Chunks of one workload are contiguous in spans.
        size_t e = s;
        while (e + 1 < spans.size() && spans[e + 1].wi == spans[s].wi)
            ++e;
        ParetoAccumulator &merged = accs[s];
        for (size_t t = s + 1; t <= e; ++t)
            merged.merge(accs[t]);
        const size_t wi = spans[s].wi;
        res.modelFronts[wi] = merged.indices();
        std::vector<SweepPoint> &fps = res.frontPoints[wi];
        fps.reserve(merged.size());
        for (const ParetoAccumulator::Entry &en : merged.entries()) {
            SweepPoint pt;
            pt.configIdx = en.idx;
            pt.workloadIdx = wi;
            pt.modelCpi = en.obj.first;
            pt.modelWatts = en.obj.second;
            fps.push_back(pt);
        }
        std::sort(fps.begin(), fps.end(),
                  [](const SweepPoint &a, const SweepPoint &b) {
                      return a.configIdx < b.configIdx;
                  });
        s = e;
    }
}

/**
 * Simulation budget of ModelThenSimPareto: every model-front config plus
 * an evenly spaced sample of the remaining configs per workload.
 */
std::vector<std::pair<size_t, size_t>>
selectValidationPairs(const SweepResult &res, size_t validationSamples)
{
    std::vector<std::pair<size_t, size_t>> pairs;
    for (size_t wi = 0; wi < res.nWorkloads; ++wi) {
        std::vector<bool> onFront(res.nConfigs, false);
        for (size_t ci : res.modelFronts[wi]) {
            onFront[ci] = true;
            pairs.push_back({wi, ci});
        }
        if (validationSamples == 0)
            continue;
        std::vector<size_t> rest;
        for (size_t ci = 0; ci < res.nConfigs; ++ci)
            if (!onFront[ci])
                rest.push_back(ci);
        size_t take = std::min(validationSamples, rest.size());
        for (size_t k = 0; k < take; ++k)
            pairs.push_back({wi, rest[k * rest.size() / take]});
    }
    return pairs;
}

} // namespace

namespace {

/** Shared input validation: an empty sweep is a caller mistake, not a
 *  trivially-empty result that sails through downstream consumers. */
Status
validateSweepInputs(size_t nTraces, size_t nProfiles, size_t nConfigs,
                    SweepMode mode)
{
    if (nProfiles == 0)
        return invalidArgument("sweep: no workloads (empty profile list)");
    if (nConfigs == 0)
        return invalidArgument("sweep: empty design space");
    const bool needsTraces =
        mode == SweepMode::Paired || mode == SweepMode::ModelThenSimPareto;
    if (needsTraces && nTraces != nProfiles)
        return invalidArgument(
            "sweep: simulation mode needs one trace per profile (" +
            std::to_string(nTraces) + " traces, " +
            std::to_string(nProfiles) + " profiles)");
    return Status::ok();
}

} // namespace

SweepResult
sweepEx(const std::vector<Trace> &traces,
        const std::vector<Profile> &profiles,
        const std::vector<CoreConfig> &configs, const ModelOptions &mopts,
        const SweepOptions &sopts)
{
    MIPP_SPAN("dse.sweep");
    SweepResult res;
    res.nWorkloads = profiles.size();
    res.nConfigs = configs.size();
    res.status = validateSweepInputs(traces.size(), profiles.size(),
                                     configs.size(), sopts.mode);
    if (!res.status.isOk())
        return res;

    if (sopts.mode == SweepMode::ModelOnlyPareto) {
        // Streaming: no point grid is ever materialized (O(front)).
        streamingModelPass(profiles, &configs, nullptr, res, mopts,
                           sopts);
        res.degraded = sopts.cancel.cancelled();
        return res;
    }

    // Pre-sized, index-addressed (see SweepResult::points doc).
    res.points.assign(res.nWorkloads * res.nConfigs, {});

    modelPass(profiles, configs, res, mopts, sopts.threads,
              sopts.cancel);

    switch (sopts.mode) {
      case SweepMode::Paired: {
        std::vector<std::pair<size_t, size_t>> all;
        all.reserve(res.points.size());
        for (size_t wi = 0; wi < res.nWorkloads; ++wi)
            for (size_t ci = 0; ci < res.nConfigs; ++ci)
                all.push_back({wi, ci});
        simPass(traces, configs, all, res, sopts.threads, sopts.cancel);
        break;
      }
      case SweepMode::ModelOnly:
        extractModelFronts(res);
        break;
      case SweepMode::ModelThenSimPareto: {
        extractModelFronts(res);
        // Graceful degradation: when the deadline already fired (or
        // fires between sims), the remaining simulation budget is
        // dropped and the response is the model-only front — strictly
        // less validated, never wrong.
        auto pairs = selectValidationPairs(res, sopts.validationSamples);
        simPass(traces, configs, pairs, res, sopts.threads, sopts.cancel);
        break;
      }
      case SweepMode::ModelOnlyPareto:
        break;  // handled above (early return)
    }
    res.degraded = sopts.cancel.cancelled();
    return res;
}

SweepResult
sweepGenerated(const std::vector<Profile> &profiles, size_t nConfigs,
               const ConfigGenerator &gen, const ModelOptions &mopts,
               const SweepOptions &sopts)
{
    MIPP_SPAN("dse.sweep");
    SweepResult res;
    res.nWorkloads = profiles.size();
    res.nConfigs = nConfigs;
    res.status = validateSweepInputs(0, profiles.size(), nConfigs,
                                     SweepMode::ModelOnlyPareto);
    if (!res.status.isOk())
        return res;
    streamingModelPass(profiles, nullptr, &gen, res, mopts, sopts);
    res.degraded = sopts.cancel.cancelled();
    return res;
}

std::vector<SweepPoint>
sweep(const std::vector<Trace> &traces,
      const std::vector<Profile> &profiles,
      const std::vector<CoreConfig> &configs, const ModelOptions &mopts,
      unsigned threads)
{
    SweepOptions sopts;
    sopts.mode = SweepMode::Paired;
    sopts.threads = threads;
    SweepResult res = sweepEx(traces, profiles, configs, mopts, sopts);
    // The vector-returning wrapper has no status channel; surface
    // structured input errors as the typed exception.
    throwIfError(res.status);
    // Preserve the historical config-major return order (point i was
    // (wi = i % nw, ci = i / nw)): consumers like the fig-7.10 bench
    // split points positionally with a seeded RNG, and reordering would
    // silently change those regenerated figures.
    std::vector<SweepPoint> points;
    points.reserve(res.points.size());
    for (size_t ci = 0; ci < res.nConfigs; ++ci)
        for (size_t wi = 0; wi < res.nWorkloads; ++wi)
            points.push_back(res.at(wi, ci));
    return points;
}

} // namespace mipp
