#include "dse/explorer.hh"

#include <atomic>
#include <thread>

namespace mipp {

PairEval
evaluatePair(const Trace &trace, const Profile &profile,
             const CoreConfig &cfg, const ModelOptions &mopts,
             const SimOptions &sopts)
{
    PairEval e;
    e.sim = simulate(trace, cfg, sopts);
    e.model = evaluateModel(profile, cfg, mopts);
    e.simPower = computePower(e.sim.activity, cfg);
    e.modelPower = computePower(e.model.activity, cfg);
    return e;
}

std::vector<SweepPoint>
sweep(const std::vector<Trace> &traces,
      const std::vector<Profile> &profiles,
      const std::vector<CoreConfig> &configs, const ModelOptions &mopts,
      unsigned threads)
{
    const size_t nw = traces.size();
    const size_t nc = configs.size();
    std::vector<SweepPoint> points(nw * nc);

    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    threads = std::min<unsigned>(threads, nw * nc);

    std::atomic<size_t> next{0};
    auto worker = [&]() {
        for (;;) {
            size_t i = next.fetch_add(1);
            if (i >= nw * nc)
                return;
            size_t wi = i % nw;
            size_t ci = i / nw;
            PairEval e = evaluatePair(traces[wi], profiles[wi],
                                      configs[ci], mopts);
            SweepPoint &pt = points[i];
            pt.configIdx = ci;
            pt.workloadIdx = wi;
            pt.simCpi = e.simCpi();
            pt.modelCpi = e.modelCpi();
            pt.simWatts = e.simPower.total();
            pt.modelWatts = e.modelPower.total();
        }
    };

    std::vector<std::thread> pool;
    for (unsigned t = 0; t < threads; ++t)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();
    return points;
}

} // namespace mipp
