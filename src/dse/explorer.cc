#include "dse/explorer.hh"

#include <algorithm>

#include "util/thread_pool.hh"

namespace mipp {

PairEval
evaluatePair(const Trace &trace, const Profile &profile,
             const CoreConfig &cfg, const ModelOptions &mopts,
             const SimOptions &sopts)
{
    PairEval e;
    e.sim = simulate(trace, cfg, sopts);
    e.model = evaluateModel(profile, cfg, mopts);
    e.simPower = computePower(e.sim.activity, cfg);
    e.modelPower = computePower(e.model.activity, cfg);
    return e;
}

std::vector<SweepPoint>
sweep(const std::vector<Trace> &traces,
      const std::vector<Profile> &profiles,
      const std::vector<CoreConfig> &configs, const ModelOptions &mopts,
      unsigned threads)
{
    const size_t nw = traces.size();
    const size_t nc = configs.size();
    const size_t total = nw * nc;
    std::vector<SweepPoint> points(total);

    auto evalRange = [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
            size_t wi = i % nw;
            size_t ci = i / nw;
            PairEval e = evaluatePair(traces[wi], profiles[wi],
                                      configs[ci], mopts);
            SweepPoint &pt = points[i];
            pt.configIdx = ci;
            pt.workloadIdx = wi;
            pt.simCpi = e.simCpi();
            pt.modelCpi = e.modelCpi();
            pt.simWatts = e.simPower.total();
            pt.modelWatts = e.modelPower.total();
        }
    };

    if (threads == 1) {
        evalRange(0, total);
        return points;
    }

    // Chunked scheduling on the shared pool: several chunks per execution
    // stream so uneven point costs still balance, without the per-call
    // thread spawning the old implementation paid.
    ThreadPool &pool = ThreadPool::shared();
    unsigned streams = pool.concurrency();
    if (threads != 0)
        streams = std::min(streams, threads);
    size_t grain = std::max<size_t>(1, total / (8 * streams));
    pool.parallelFor(total, grain, evalRange);
    return points;
}

} // namespace mipp
