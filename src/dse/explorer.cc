#include "dse/explorer.hh"

#include <algorithm>
#include <utility>

#include "dse/pareto.hh"
#include "model/eval_cache.hh"
#include "util/thread_pool.hh"

namespace mipp {

PairEval
evaluatePair(const Trace &trace, const Profile &profile,
             const CoreConfig &cfg, const ModelOptions &mopts,
             const SimOptions &sopts)
{
    PairEval e;
    e.sim = simulate(trace, cfg, sopts);
    e.model = evaluateModel(profile, cfg, mopts);
    e.simPower = computePower(e.sim.activity, cfg);
    e.modelPower = computePower(e.model.activity, cfg);
    return e;
}

namespace {

/** One contiguous run of configs for a single workload. */
struct Span {
    size_t wi, c0, c1;
};

/**
 * Chunk the workload-major point grid. Several chunks per execution
 * stream so uneven point costs still balance, but the grain respects
 * workload boundaries: a chunk never straddles two workloads, so one
 * memoized EvalContext serves every point in it. (The old config-major
 * mapping `wi = i % nw` interleaved workloads, thrashing any per-workload
 * state on every index.)
 */
std::vector<Span>
workloadMajorChunks(size_t nw, size_t nc, unsigned streams)
{
    std::vector<Span> spans;
    if (nw == 0 || nc == 0)
        return spans;
    size_t target = std::max<size_t>(1, 4 * streams);
    size_t perWorkload = std::max<size_t>(1, (target + nw - 1) / nw);
    perWorkload = std::min(perWorkload, nc);
    size_t grain = (nc + perWorkload - 1) / perWorkload;
    for (size_t wi = 0; wi < nw; ++wi)
        for (size_t c0 = 0; c0 < nc; c0 += grain)
            spans.push_back({wi, c0, std::min(nc, c0 + grain)});
    return spans;
}

unsigned
streamCount(unsigned threads)
{
    unsigned streams = ThreadPool::shared().concurrency();
    if (threads != 0)
        streams = std::min(streams, threads);
    return streams;
}

/** Model every point, one EvalContext per (workload, chunk). */
void
modelPass(const std::vector<Profile> &profiles,
          const std::vector<CoreConfig> &configs, SweepResult &res,
          const ModelOptions &mopts, unsigned threads)
{
    const size_t nc = res.nConfigs;
    auto spans =
        workloadMajorChunks(res.nWorkloads, nc, streamCount(threads));
    parallelForShared(spans.size(), threads, [&](size_t begin, size_t end) {
        for (size_t s = begin; s < end; ++s) {
            const Span &sp = spans[s];
            EvalContext ctx(profiles[sp.wi]);
            for (size_t ci = sp.c0; ci < sp.c1; ++ci) {
                ModelResult m = evaluateModel(ctx, configs[ci], mopts);
                SweepPoint &pt = res.points[sp.wi * nc + ci];
                pt.configIdx = ci;
                pt.workloadIdx = sp.wi;
                pt.modelCpi = m.cpiPerUop();
                pt.modelWatts = computePower(m.activity, configs[ci]).total();
            }
        }
    });
}

/** Detail-simulate the selected (workload, config) pairs. */
void
simPass(const std::vector<Trace> &traces,
        const std::vector<CoreConfig> &configs,
        const std::vector<std::pair<size_t, size_t>> &pairs,
        SweepResult &res, unsigned threads)
{
    parallelForShared(pairs.size(), threads, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
            auto [wi, ci] = pairs[i];
            SimResult sim = simulate(traces[wi], configs[ci]);
            SweepPoint &pt = res.points[wi * res.nConfigs + ci];
            pt.simCpi = sim.cpiPerUop();
            pt.simWatts = computePower(sim.activity, configs[ci]).total();
            pt.simulated = true;
        }
    });
    // Every selected pair is simulated exactly once.
    res.simInvocations += pairs.size();
}

/** Per-workload Pareto fronts over the model objectives. */
void
extractModelFronts(SweepResult &res)
{
    res.modelFronts.assign(res.nWorkloads, {});
    for (size_t wi = 0; wi < res.nWorkloads; ++wi) {
        std::vector<Objective> obj;
        obj.reserve(res.nConfigs);
        for (size_t ci = 0; ci < res.nConfigs; ++ci) {
            const SweepPoint &pt = res.at(wi, ci);
            obj.push_back({pt.modelCpi, pt.modelWatts});
        }
        // paretoFront indices are config indices: obj is in ci order.
        res.modelFronts[wi] = paretoFront(obj);
    }
}

/**
 * Simulation budget of ModelThenSimPareto: every model-front config plus
 * an evenly spaced sample of the remaining configs per workload.
 */
std::vector<std::pair<size_t, size_t>>
selectValidationPairs(const SweepResult &res, size_t validationSamples)
{
    std::vector<std::pair<size_t, size_t>> pairs;
    for (size_t wi = 0; wi < res.nWorkloads; ++wi) {
        std::vector<bool> onFront(res.nConfigs, false);
        for (size_t ci : res.modelFronts[wi]) {
            onFront[ci] = true;
            pairs.push_back({wi, ci});
        }
        if (validationSamples == 0)
            continue;
        std::vector<size_t> rest;
        for (size_t ci = 0; ci < res.nConfigs; ++ci)
            if (!onFront[ci])
                rest.push_back(ci);
        size_t take = std::min(validationSamples, rest.size());
        for (size_t k = 0; k < take; ++k)
            pairs.push_back({wi, rest[k * rest.size() / take]});
    }
    return pairs;
}

} // namespace

SweepResult
sweepEx(const std::vector<Trace> &traces,
        const std::vector<Profile> &profiles,
        const std::vector<CoreConfig> &configs, const ModelOptions &mopts,
        const SweepOptions &sopts)
{
    SweepResult res;
    res.nWorkloads = profiles.size();
    res.nConfigs = configs.size();
    // Pre-sized, index-addressed (see SweepResult::points doc).
    res.points.assign(res.nWorkloads * res.nConfigs, {});

    modelPass(profiles, configs, res, mopts, sopts.threads);

    switch (sopts.mode) {
      case SweepMode::Paired: {
        std::vector<std::pair<size_t, size_t>> all;
        all.reserve(res.points.size());
        for (size_t wi = 0; wi < res.nWorkloads; ++wi)
            for (size_t ci = 0; ci < res.nConfigs; ++ci)
                all.push_back({wi, ci});
        simPass(traces, configs, all, res, sopts.threads);
        break;
      }
      case SweepMode::ModelOnly:
        extractModelFronts(res);
        break;
      case SweepMode::ModelThenSimPareto: {
        extractModelFronts(res);
        auto pairs = selectValidationPairs(res, sopts.validationSamples);
        simPass(traces, configs, pairs, res, sopts.threads);
        break;
      }
    }
    return res;
}

std::vector<SweepPoint>
sweep(const std::vector<Trace> &traces,
      const std::vector<Profile> &profiles,
      const std::vector<CoreConfig> &configs, const ModelOptions &mopts,
      unsigned threads)
{
    SweepOptions sopts;
    sopts.mode = SweepMode::Paired;
    sopts.threads = threads;
    SweepResult res = sweepEx(traces, profiles, configs, mopts, sopts);
    // Preserve the historical config-major return order (point i was
    // (wi = i % nw, ci = i / nw)): consumers like the fig-7.10 bench
    // split points positionally with a seeded RNG, and reordering would
    // silently change those regenerated figures.
    std::vector<SweepPoint> points;
    points.reserve(res.points.size());
    for (size_t ci = 0; ci < res.nConfigs; ++ci)
        for (size_t wi = 0; wi < res.nWorkloads; ++wi)
            points.push_back(res.at(wi, ci));
    return points;
}

} // namespace mipp
