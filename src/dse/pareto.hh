/**
 * @file
 * Pareto-front construction and pruning-quality metrics (thesis §7.4).
 *
 * Design points are (delay, power) pairs, both minimized. The quality of a
 * predicted front relative to the true (simulated) front is summarized by
 * sensitivity, specificity, accuracy and the hypervolume ratio (HVR,
 * thesis Fig 7.8): the volume dominated by the predicted-front designs
 * (evaluated at their *true* coordinates) over the volume dominated by the
 * true front.
 */

#ifndef MIPP_DSE_PARETO_HH
#define MIPP_DSE_PARETO_HH

#include <cstddef>
#include <utility>
#include <vector>

namespace mipp {

/** A (delay, power) point; both objectives are minimized. */
using Objective = std::pair<double, double>;

/** Indices of the Pareto-optimal points in @p points. */
std::vector<size_t> paretoFront(const std::vector<Objective> &points);

/** @return true if a dominates b (<= in both, < in one). */
bool dominates(const Objective &a, const Objective &b);

/** Pruning-quality summary (thesis §7.4). */
struct ParetoMetrics {
    double sensitivity = 0;  ///< true Pareto points found
    double specificity = 0;  ///< non-Pareto points excluded
    double accuracy = 0;     ///< overall classification accuracy
    double hvr = 0;          ///< hypervolume ratio
};

/**
 * Hypervolume dominated by @p front (as point indices into @p points)
 * w.r.t. reference point @p ref (worse than all points in both axes).
 */
double hypervolume(const std::vector<Objective> &points,
                   const std::vector<size_t> &front, const Objective &ref);

/**
 * Compare the front predicted from model objectives against the true
 * front of simulated objectives over the same design points.
 *
 * @param trueObj  simulated (delay, power) per design point
 * @param predObj  model-predicted (delay, power) per design point
 */
ParetoMetrics compareFronts(const std::vector<Objective> &trueObj,
                            const std::vector<Objective> &predObj);

} // namespace mipp

#endif // MIPP_DSE_PARETO_HH
