/**
 * @file
 * Pareto-front construction and pruning-quality metrics (thesis §7.4).
 *
 * Design points are (delay, power) pairs, both minimized. The quality of a
 * predicted front relative to the true (simulated) front is summarized by
 * sensitivity, specificity, accuracy and the hypervolume ratio (HVR,
 * thesis Fig 7.8): the volume dominated by the predicted-front designs
 * (evaluated at their *true* coordinates) over the volume dominated by the
 * true front.
 */

#ifndef MIPP_DSE_PARETO_HH
#define MIPP_DSE_PARETO_HH

#include <cstddef>
#include <utility>
#include <vector>

namespace mipp {

/** A (delay, power) point; both objectives are minimized. */
using Objective = std::pair<double, double>;

/** Indices of the Pareto-optimal points in @p points. */
std::vector<size_t> paretoFront(const std::vector<Objective> &points);

/** @return true if a dominates b (<= in both, < in one). */
bool dominates(const Objective &a, const Objective &b);

/**
 * Online Pareto front over a stream of (objective, index) points:
 * insert() keeps O(front) state by rejecting dominated arrivals and
 * evicting points a new arrival dominates, so a sweep never has to
 * materialize the full point set. The surviving set is exactly
 * paretoFront() of everything inserted, including its treatment of
 * ties: exact-duplicate objectives all stay on the front, while a
 * point tied in one objective and worse in the other is dominated.
 *
 * Internal order: ascending delay; across distinct objectives power is
 * strictly decreasing, and equal-delay survivors are exact duplicates.
 */
class ParetoAccumulator {
  public:
    struct Entry {
        Objective obj;
        size_t idx;  ///< caller's point index (e.g. config index)
    };

    void insert(const Objective &obj, size_t idx);
    /** Fold another accumulator's survivors in (per-shard merge). */
    void merge(const ParetoAccumulator &other);

    /** Survivors, sorted by ascending delay. */
    const std::vector<Entry> &entries() const { return entries_; }
    /** Surviving point indices, ascending (paretoFront() order). */
    std::vector<size_t> indices() const;
    size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }
    void clear() { entries_.clear(); }

  private:
    std::vector<Entry> entries_;
};

/** Pruning-quality summary (thesis §7.4). */
struct ParetoMetrics {
    double sensitivity = 0;  ///< true Pareto points found
    double specificity = 0;  ///< non-Pareto points excluded
    double accuracy = 0;     ///< overall classification accuracy
    double hvr = 0;          ///< hypervolume ratio
};

/**
 * Hypervolume dominated by @p front (as point indices into @p points)
 * w.r.t. reference point @p ref (worse than all points in both axes).
 */
double hypervolume(const std::vector<Objective> &points,
                   const std::vector<size_t> &front, const Objective &ref);

/**
 * Compare the front predicted from model objectives against the true
 * front of simulated objectives over the same design points.
 *
 * @param trueObj  simulated (delay, power) per design point
 * @param predObj  model-predicted (delay, power) per design point
 */
ParetoMetrics compareFronts(const std::vector<Objective> &trueObj,
                            const std::vector<Objective> &predObj);

} // namespace mipp

#endif // MIPP_DSE_PARETO_HH
