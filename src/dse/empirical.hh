/**
 * @file
 * Empirical (black-box regression) baseline model (thesis §7.5).
 *
 * The paper compares its mechanistic model against an empirical model
 * trained on simulated samples. This is a ridge regression on log-scaled
 * configuration and workload features predicting log(CPI) and log(power):
 * accurate on average near the training set, but — as the thesis shows —
 * worse at ranking designs (Pareto pruning) than the mechanistic model.
 */

#ifndef MIPP_DSE_EMPIRICAL_HH
#define MIPP_DSE_EMPIRICAL_HH

#include <vector>

#include "profiler/profile.hh"
#include "uarch/core_config.hh"

namespace mipp {

/** Feature vector for one (configuration, workload) pair. */
std::vector<double> empiricalFeatures(const CoreConfig &cfg,
                                      const Profile &p);

/** Ridge regression over (features -> log target). */
class RidgeRegression
{
  public:
    explicit RidgeRegression(double lambda = 1e-3) : lambda_(lambda) {}

    /** Add a training sample; @p target must be positive. */
    void addSample(const std::vector<double> &features, double target);

    /** Solve the normal equations. @return false if under-determined. */
    bool train();

    /** Predict the (positive) target for @p features. */
    double predict(const std::vector<double> &features) const;

    size_t numSamples() const { return targets_.size(); }

  private:
    double lambda_;
    std::vector<std::vector<double>> rows_;
    std::vector<double> targets_;  // log scale
    std::vector<double> weights_;
};

/** Paired CPI + power empirical model. */
class EmpiricalModel
{
  public:
    void
    addSample(const CoreConfig &cfg, const Profile &p, double cpi,
              double watts)
    {
        auto f = empiricalFeatures(cfg, p);
        cpi_.addSample(f, cpi);
        power_.addSample(f, watts);
    }

    bool train() { return cpi_.train() && power_.train(); }

    double
    predictCpi(const CoreConfig &cfg, const Profile &p) const
    {
        return cpi_.predict(empiricalFeatures(cfg, p));
    }

    double
    predictPower(const CoreConfig &cfg, const Profile &p) const
    {
        return power_.predict(empiricalFeatures(cfg, p));
    }

  private:
    RidgeRegression cpi_{1e-3};
    RidgeRegression power_{1e-3};
};

} // namespace mipp

#endif // MIPP_DSE_EMPIRICAL_HH
