#include "dse/pareto.hh"

#include <algorithm>
#include <set>

namespace mipp {

bool
dominates(const Objective &a, const Objective &b)
{
    return a.first <= b.first && a.second <= b.second &&
           (a.first < b.first || a.second < b.second);
}

std::vector<size_t>
paretoFront(const std::vector<Objective> &points)
{
    std::vector<size_t> front;
    for (size_t i = 0; i < points.size(); ++i) {
        bool dominated = false;
        for (size_t j = 0; j < points.size() && !dominated; ++j)
            dominated = j != i && dominates(points[j], points[i]);
        if (!dominated)
            front.push_back(i);
    }
    return front;
}

void
ParetoAccumulator::insert(const Objective &o, size_t idx)
{
    auto pos = std::lower_bound(
        entries_.begin(), entries_.end(), o.first,
        [](const Entry &e, double d) { return e.obj.first < d; });
    if (pos != entries_.begin()) {
        // Every earlier survivor has strictly smaller delay and power
        // >= the predecessor's, so one check decides domination.
        const Entry &pred = *(pos - 1);
        if (pred.obj.second <= o.second)
            return;
    }
    // Survivors tied with o in delay are exact duplicates of each other
    // (a tied-but-cheaper point would have evicted them already).
    if (pos != entries_.end() && pos->obj.first == o.first) {
        if (pos->obj.second < o.second)
            return;  // the tied run dominates o
        if (pos->obj.second == o.second) {
            entries_.insert(pos, Entry{o, idx});
            return;  // exact duplicates all stay on the front
        }
        // o dominates the whole tied run; the eviction loop removes it.
    }
    auto last = pos;
    while (last != entries_.end() && last->obj.second >= o.second)
        ++last;
    auto at = entries_.erase(pos, last);
    entries_.insert(at, Entry{o, idx});
}

void
ParetoAccumulator::merge(const ParetoAccumulator &other)
{
    for (const Entry &e : other.entries_)
        insert(e.obj, e.idx);
}

std::vector<size_t>
ParetoAccumulator::indices() const
{
    std::vector<size_t> out;
    out.reserve(entries_.size());
    for (const Entry &e : entries_)
        out.push_back(e.idx);
    std::sort(out.begin(), out.end());
    return out;
}

double
hypervolume(const std::vector<Objective> &points,
            const std::vector<size_t> &front, const Objective &ref)
{
    // 2-D hypervolume: sweep the non-dominated subset of `front` by
    // ascending delay and sum the rectangles up to the reference point.
    std::vector<Objective> sel;
    for (size_t i : front)
        sel.push_back(points[i]);
    std::sort(sel.begin(), sel.end());

    double hv = 0;
    double prevPower = ref.second;
    for (const auto &[delay, power] : sel) {
        if (delay >= ref.first || power >= prevPower)
            continue; // dominated by an earlier point or outside ref
        hv += (ref.first - delay) * (prevPower - power);
        prevPower = power;
    }
    return hv;
}

ParetoMetrics
compareFronts(const std::vector<Objective> &trueObj,
              const std::vector<Objective> &predObj)
{
    ParetoMetrics m;
    const size_t n = trueObj.size();
    if (n == 0 || predObj.size() != n)
        return m;

    auto trueFront = paretoFront(trueObj);
    auto predFront = paretoFront(predObj);
    std::set<size_t> tf(trueFront.begin(), trueFront.end());
    std::set<size_t> pf(predFront.begin(), predFront.end());

    size_t tp = 0, tn = 0, fp = 0, fn = 0;
    for (size_t i = 0; i < n; ++i) {
        bool t = tf.count(i), p = pf.count(i);
        tp += t && p;
        tn += !t && !p;
        fp += !t && p;
        fn += t && !p;
    }
    m.sensitivity = tp + fn ? static_cast<double>(tp) / (tp + fn) : 1.0;
    m.specificity = tn + fp ? static_cast<double>(tn) / (tn + fp) : 1.0;
    m.accuracy = static_cast<double>(tp + tn) / n;

    // HVR: volume covered by the *true* coordinates of the predicted-front
    // designs, relative to the true front's volume (thesis Fig 7.8).
    Objective ref{0, 0};
    for (const auto &[d, p] : trueObj) {
        ref.first = std::max(ref.first, d);
        ref.second = std::max(ref.second, p);
    }
    ref.first *= 1.05;
    ref.second *= 1.05;
    double hvTrue = hypervolume(trueObj, trueFront, ref);
    double hvPred = hypervolume(trueObj, predFront, ref);
    m.hvr = hvTrue > 0 ? hvPred / hvTrue : 1.0;
    return m;
}

} // namespace mipp
