#include "dse/empirical.hh"

#include <cmath>
#include <stdexcept>

namespace mipp {

std::vector<double>
empiricalFeatures(const CoreConfig &cfg, const Profile &p)
{
    std::vector<double> f;
    f.push_back(1.0); // bias
    // Configuration features (log-scaled sizes).
    f.push_back(std::log2(static_cast<double>(cfg.dispatchWidth)));
    f.push_back(std::log2(static_cast<double>(cfg.robSize)));
    f.push_back(std::log2(static_cast<double>(cfg.l1d.sizeBytes)));
    f.push_back(std::log2(static_cast<double>(cfg.l2.sizeBytes)));
    f.push_back(std::log2(static_cast<double>(cfg.l3.sizeBytes)));
    f.push_back(cfg.freqGHz);
    // Workload features.
    f.push_back(p.uopFraction(UopType::Load));
    f.push_back(p.uopFraction(UopType::Store));
    f.push_back(p.uopFraction(UopType::Branch));
    f.push_back(p.uopFraction(UopType::FpAlu) +
                p.uopFraction(UopType::FpMul) +
                p.uopFraction(UopType::FpDiv));
    f.push_back(p.branch.entropy());
    f.push_back(p.uopsPerInst());
    f.push_back(p.chains.cp(128));
    // Memory intensity: fraction of loads reusing beyond 4K / 128K lines.
    double loads = static_cast<double>(p.reuseLoads.total());
    double far4k = loads ? p.reuseLoads.countAtLeast(4096) / loads : 0;
    double far128k = loads ? p.reuseLoads.countAtLeast(131072) / loads : 0;
    f.push_back(far4k);
    f.push_back(far128k);
    return f;
}

void
RidgeRegression::addSample(const std::vector<double> &features,
                           double target)
{
    if (target <= 0)
        throw std::invalid_argument("ridge target must be positive");
    rows_.push_back(features);
    targets_.push_back(std::log(target));
}

bool
RidgeRegression::train()
{
    if (rows_.empty())
        return false;
    const size_t d = rows_[0].size();
    // Normal equations A = X'X + lambda I, b = X'y.
    std::vector<std::vector<double>> a(d, std::vector<double>(d, 0.0));
    std::vector<double> b(d, 0.0);
    for (size_t i = 0; i < rows_.size(); ++i) {
        const auto &x = rows_[i];
        for (size_t j = 0; j < d; ++j) {
            b[j] += x[j] * targets_[i];
            for (size_t k = 0; k < d; ++k)
                a[j][k] += x[j] * x[k];
        }
    }
    for (size_t j = 0; j < d; ++j)
        a[j][j] += lambda_;

    // Gaussian elimination with partial pivoting.
    std::vector<size_t> perm(d);
    for (size_t i = 0; i < d; ++i)
        perm[i] = i;
    for (size_t col = 0; col < d; ++col) {
        size_t pivot = col;
        for (size_t r = col + 1; r < d; ++r)
            if (std::abs(a[r][col]) > std::abs(a[pivot][col]))
                pivot = r;
        if (std::abs(a[pivot][col]) < 1e-12)
            return false;
        std::swap(a[col], a[pivot]);
        std::swap(b[col], b[pivot]);
        for (size_t r = col + 1; r < d; ++r) {
            double m = a[r][col] / a[col][col];
            for (size_t k = col; k < d; ++k)
                a[r][k] -= m * a[col][k];
            b[r] -= m * b[col];
        }
    }
    weights_.assign(d, 0.0);
    for (size_t i = d; i-- > 0;) {
        double v = b[i];
        for (size_t k = i + 1; k < d; ++k)
            v -= a[i][k] * weights_[k];
        weights_[i] = v / a[i][i];
    }
    return true;
}

double
RidgeRegression::predict(const std::vector<double> &features) const
{
    if (weights_.empty())
        return 1.0;
    double v = 0;
    for (size_t i = 0; i < features.size() && i < weights_.size(); ++i)
        v += features[i] * weights_[i];
    return std::exp(v);
}

} // namespace mipp
