/**
 * @file
 * Single-source-of-truth help text for every mipp_cli subcommand.
 *
 * The CLI front end (examples/mipp_cli.cpp), its `help` command, every
 * subcommand's `--help`, and the command reference in docs/ all render
 * from this one table, so the documented flag surface cannot diverge
 * from the implemented one. tests/test_cli_help.cc golden-tests the
 * rendered output and asserts the table covers the full dispatch set.
 */

#ifndef MIPP_CLI_CLI_HELP_HH
#define MIPP_CLI_CLI_HELP_HH

#include <string>
#include <string_view>
#include <vector>

namespace mipp::cli {

/** Help entry for one subcommand (or subcommand group member). */
struct CommandHelp {
    /** Dispatch name, e.g. "profile" or "trace convert". */
    std::string_view name;
    /** One usage line (without the leading "mipp_cli "). */
    std::string_view synopsis;
    /** Short one-line summary for the overview listing. */
    std::string_view summary;
    /** Full flag-by-flag description for `mipp_cli help <cmd>`. */
    std::string_view details;
};

/** The full command table, in display order. */
const std::vector<CommandHelp> &commandTable();

/** Overview help: usage lines plus one-line summaries (the output of
 *  `mipp_cli help` and of a bad invocation). */
std::string overviewHelp();

/**
 * Detailed help for @p command ("profile", "trace convert", "report
 * accuracy", ...). Group prefixes render every member ("trace" lists
 * all trace subcommands). Empty string when nothing matches.
 */
std::string detailedHelp(std::string_view command);

} // namespace mipp::cli

#endif // MIPP_CLI_CLI_HELP_HH
