#include "cli/cli_help.hh"

namespace mipp::cli {

namespace {

// The one table. Keep names in dispatch order; docs/ renders from the
// same entries (see docs/capture-tutorial.md and docs/architecture.md).
const std::vector<CommandHelp> kCommands = {
    {
        "profile",
        "profile <workload>|--trace FILE.mtf <out.profile> [uops]\n"
        "[--name NAME] [--threads N] [--segment-uops M]",
        "profile a suite workload or a recorded .mtf trace",
        "Run the micro-architecture independent profiler once and write\n"
        "the profile file the modeling commands consume.\n"
        "  <workload>        a workloadSuite() name (see `mipp_cli list`)\n"
        "  --trace FILE.mtf  profile a recorded binary micro-op trace\n"
        "                    instead (streamed at bounded memory; see\n"
        "                    docs/trace-format.md)\n"
        "  [uops]            trace length for generated workloads\n"
        "                    (default 200000; ignored with --trace)\n"
        "  --name NAME       profile name (default: workload name or\n"
        "                    trace file basename)\n"
        "  --threads N       segment-parallel profiling; bit-identical\n"
        "                    to the sequential pass (0 = all cores)\n"
        "  --segment-uops M  override the window-aligned segment size",
    },
    {
        "evaluate",
        "evaluate <in.profile> [--width N] [--rob N] [--l1d KB]\n"
        "[--l2 KB] [--l3 MB] [--freq GHZ] [--prefetcher]",
        "evaluate the analytical model for one design point",
        "Evaluate CPI stack, power and runtime for a single core\n"
        "configuration against a saved profile. Flags override the\n"
        "Nehalem-like reference configuration.",
    },
    {
        "sweep",
        "sweep <in.profile> [--mode model|pareto|paired] [--streaming]\n"
        "[--threads N] [--validate N] [--full] [--uops N]",
        "sweep the design space, print the Pareto frontier",
        "Sweep the design space against a saved profile.\n"
        "  --mode model   analytical model only (default)\n"
        "  --mode pareto  simulate the model-predicted front plus\n"
        "                 --validate N off-front samples\n"
        "  --mode paired  simulate every point (ground truth)\n"
        "  --streaming    batched streaming sweep, O(front) memory\n"
        "  --full         243-point space instead of the 27-point one\n"
        "Simulation modes regenerate the suite workload named in the\n"
        "profile; profiles recorded from .mtf traces support model-only\n"
        "modes.",
    },
    {
        "trace record",
        "trace record <workload> <out.mtf> [uops]",
        "record a synthetic suite workload as a .mtf trace",
        "Generate a workloadSuite() workload and write it as a binary\n"
        "micro-op trace (docs/trace-format.md). Profiling the recorded\n"
        "file is bit-identical to profiling the generated trace\n"
        "in-memory — the round-trip parity tests/test_mtf.cc pins.",
    },
    {
        "trace convert",
        "trace convert <in.mtxt> <out.mtf>",
        "convert a micro-op text dump (.mtxt) to .mtf",
        "Convert the documented DynamoRIO/Intel-PT-style text dump\n"
        "format (one uop per line; docs/trace-format.md §text dump) to\n"
        "the compact binary format. Streams both sides, so arbitrarily\n"
        "long dumps convert at O(line) memory.",
    },
    {
        "trace dump",
        "trace dump <in.mtf> [out.mtxt]",
        "dump a .mtf trace back to text (inverse of convert)",
        "Write the exact .mtxt text form of a binary trace to the given\n"
        "file or stdout. `dump | convert` reproduces a byte-identical\n"
        ".mtf file.",
    },
    {
        "trace info",
        "trace info <in.mtf>",
        "validate a .mtf file and print its header facts",
        "Open (and therefore fully validate: magic, version, checksum,\n"
        "bounds, every record) a .mtf file and print version, uop\n"
        "count, file bytes and encoded bytes/uop.",
    },
    {
        "report accuracy",
        "report accuracy [--grid ci|default|wide] [--uops N]\n"
        "[--threads N] [--full] [--no-phased] [--workload NAME]...\n"
        "[--trace FILE.mtf]... [--json FILE] [--baseline FILE]\n"
        "[--margin PCT]",
        "model-vs-simulator accuracy harness over the suite",
        "Run every suite (and phased) workload through both the\n"
        "cycle-level simulator and the analytical model over a design\n"
        "grid; report per-component MAPE and enforce internal\n"
        "consistency. --trace adds recorded .mtf traces as extra\n"
        "validation workloads. --baseline gates against a golden JSON\n"
        "report (exit 1 beyond --margin percentage points, default 2).",
    },
    {
        "report calibrate",
        "report calibrate [--grid ci|default|wide] [--uops N]\n"
        "[--threads N] [--no-phased] [--no-branch-fit]\n"
        "[--rounds N] [--workload NAME]... [--trace FILE.mtf]...\n"
        "[--check-grid NAME]... [--json FILE]",
        "refit the model's calibration against the simulator",
        "Refit the piecewise branch-entropy miss-rate fits and the six\n"
        "mechanism coefficients by coordinate descent against simulator\n"
        "ground truth; print before/after per-component MAPEs. --trace\n"
        "adds recorded .mtf traces to the fitting set; --check-grid\n"
        "cross-checks fitted coefficients on another grid without\n"
        "refitting.",
    },
    {
        "report metrics",
        "report metrics --socket PATH [--prometheus] [--out FILE]",
        "fetch the metrics registry from a running daemon",
        "Scrape a running `mipp_cli serve` daemon's metrics op as JSON\n"
        "(default) or Prometheus text exposition, to stdout or --out.",
    },
    {
        "serve",
        "serve --socket PATH [--workers N] [--queue N] [--profiles N]\n"
        "[--deadline-ms D] [--failpoints] [--stats-interval-ms D]",
        "run the persistent DSE daemon (JSON-lines over a Unix socket)",
        "Serve profile/evaluate/sweep/accuracy requests until\n"
        "SIGINT/SIGTERM, with a bounded request queue (load shedding), a\n"
        "profile LRU holding warm evaluation state, per-request\n"
        "deadlines with degraded partial results, and disconnect\n"
        "cancellation. The `profile` op also accepts a server-side\n"
        "\"trace\" path to profile an uploaded/recorded .mtf file. See\n"
        "docs/serving.md for the wire protocol.",
    },
    {
        "list",
        "list",
        "list the available suite workloads",
        "Print the workloadSuite() names accepted by profile, trace\n"
        "record and the serve profile op.",
    },
    {
        "help",
        "help [command]",
        "show this overview, or detailed help for one command",
        "Without an argument, print the overview of every subcommand.\n"
        "With one, print that command's full flag-by-flag help; group\n"
        "names (`trace`, `report`) list every member. Every subcommand\n"
        "also accepts --help/-h directly.",
    },
};

} // namespace

const std::vector<CommandHelp> &
commandTable()
{
    return kCommands;
}

std::string
overviewHelp()
{
    std::string out = "usage: mipp_cli <command> [args]\n\ncommands:\n";
    for (const CommandHelp &c : kCommands) {
        out += "  ";
        out += c.name;
        out.append(c.name.size() < 18 ? 18 - c.name.size() : 1, ' ');
        out += c.summary;
        out += '\n';
    }
    out += "\nany command also accepts --trace-json FILE (Chrome trace "
           "of the run)\nand --help; `mipp_cli help <command>` prints "
           "full flag descriptions.\n";
    return out;
}

std::string
detailedHelp(std::string_view command)
{
    std::string out;
    for (const CommandHelp &c : kCommands) {
        // Exact match, or group prefix ("trace" → every "trace *").
        bool match = c.name == command ||
                     (c.name.size() > command.size() &&
                      c.name.substr(0, command.size()) == command &&
                      c.name[command.size()] == ' ');
        if (!match)
            continue;
        if (!out.empty())
            out += '\n';
        out += "usage: mipp_cli ";
        // Indent continuation lines of the synopsis consistently.
        for (char ch : c.synopsis) {
            out += ch;
            if (ch == '\n')
                out += "       ";
        }
        out += "\n\n";
        out += c.details;
        out += '\n';
    }
    return out;
}

} // namespace mipp::cli
