#include "uarch/design_space.hh"

#include <string>

namespace mipp {

void
scaleBackEnd(CoreConfig &c, uint32_t robSize)
{
    c.robSize = robSize;
    c.iqSize = robSize;            // non-binding window (see CoreConfig)
    c.lsqSize = robSize * 3 / 8;   // 48 at ROB=128
    c.mshrs = robSize >= 256 ? 16 : (robSize >= 128 ? 10 : 6);
}

void
scaleCacheLatencies(CoreConfig &c)
{
    uint32_t l2k = c.l2.sizeBytes / 1024;
    uint32_t l3m = c.l3.sizeBytes / (1024 * 1024);
    c.l2.latency = l2k >= 512 ? 13 : (l2k >= 256 ? 11 : 9);
    c.l3.latency = l3m >= 32 ? 38 : (l3m >= 8 ? 30 : 24);
}

DesignSpace::DesignSpace(Axes axes)
{
    for (uint32_t w : axes.widths) {
        for (uint32_t rob : axes.robSizes) {
            for (uint32_t l1 : axes.l1dKb) {
                for (uint32_t l2 : axes.l2Kb) {
                    for (uint32_t l3 : axes.l3Mb) {
                        CoreConfig c = CoreConfig::nehalemReference();
                        c.setWidth(w);
                        scaleBackEnd(c, rob);
                        c.l1d.sizeBytes = l1 * 1024;
                        c.l1i.sizeBytes = l1 * 1024;
                        c.l2.sizeBytes = l2 * 1024;
                        c.l3.sizeBytes = l3 * 1024 * 1024;
                        scaleCacheLatencies(c);
                        // Shared validation point with the simulator's
                        // Cache: no degenerate cache reaches a sweep.
                        c.l1i = c.l1i.normalized();
                        c.l1d = c.l1d.normalized();
                        c.l2 = c.l2.normalized();
                        c.l3 = c.l3.normalized();
                        c.name = "w" + std::to_string(w) +
                                 "_rob" + std::to_string(rob) +
                                 "_l1d" + std::to_string(l1) + "k" +
                                 "_l2" + std::to_string(l2) + "k" +
                                 "_l3" + std::to_string(l3) + "m";
                        configs_.push_back(std::move(c));
                    }
                }
            }
        }
    }
}

DesignSpace
DesignSpace::small()
{
    Axes axes;
    axes.widths = {2, 4, 6};
    axes.robSizes = {64, 128, 256};
    axes.l1dKb = {32};
    axes.l2Kb = {256};
    axes.l3Mb = {2, 8, 32};
    return DesignSpace(axes);
}

std::vector<DvfsPoint>
dvfsLadder()
{
    return {
        {1.60, 0.90},
        {1.86, 0.95},
        {2.13, 1.00},
        {2.40, 1.05},
        {2.66, 1.10},
        {2.93, 1.15},
        {3.20, 1.20},
    };
}

} // namespace mipp
