/**
 * @file
 * Processor configuration description.
 *
 * A CoreConfig fully describes one design point: pipeline widths and depths,
 * buffer sizes, issue ports and functional units, branch predictor, cache
 * hierarchy, MSHRs, memory bus and DVFS operating point. Both the reference
 * cycle-level simulator and the analytical model consume the same structure,
 * so model-vs-simulator comparisons are always apples to apples.
 */

#ifndef MIPP_UARCH_CORE_CONFIG_HH
#define MIPP_UARCH_CORE_CONFIG_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/micro_op.hh"

namespace mipp {

/** Branch predictor organizations (thesis Fig 3.10). */
enum class BranchPredictorKind : uint8_t {
    GAg,        ///< global history indexing a global table
    GAp,        ///< global history, per-branch tables
    PAp,        ///< per-branch history, per-branch tables
    GShare,     ///< global history XOR pc
    Tournament, ///< GAp/PAp chooser
    NumKinds,
};

std::string_view branchPredictorName(BranchPredictorKind k);

/** One level of the cache hierarchy. */
struct CacheConfig {
    uint32_t sizeBytes = 32 * 1024;
    uint32_t associativity = 8;
    /** Access (hit) latency in core cycles. */
    uint32_t latency = 4;

    uint32_t numLines() const { return sizeBytes / kLineSize; }
    uint32_t numSets() const { return numLines() / associativity; }

    /**
     * Copy with degenerate parameters clamped to the smallest legal
     * cache: at least one way, at least one line per way. The single
     * validation point shared by the simulator's Cache and the DSE
     * design space (`associativity == 0` would otherwise underflow the
     * LRU way index and divide by zero in numSets()).
     */
    CacheConfig normalized() const;
};

/** Execution latencies per uop type, in cycles. */
struct LatencyTable {
    std::array<uint32_t, kNumUopTypes> cycles{};

    /** Nehalem-like defaults. */
    static LatencyTable nehalem();

    uint32_t of(UopType t) const { return cycles[static_cast<int>(t)]; }
    uint32_t &of(UopType t) { return cycles[static_cast<int>(t)]; }
};

/**
 * Issue port: the set of uop types whose functional units hang off this
 * port (thesis Fig 3.5). At most one uop can pass through a port per cycle.
 */
struct IssuePort {
    std::vector<UopType> supports;

    bool
    canIssue(UopType t) const
    {
        for (auto s : supports)
            if (s == t)
                return true;
        return false;
    }
};

/** Functional-unit pool for one uop type. */
struct FuPool {
    uint32_t count = 1;
    bool pipelined = true;
};

/** Complete core + memory configuration. */
struct CoreConfig {
    std::string name = "nehalem";

    // --- Front end -------------------------------------------------------
    uint32_t fetchWidth = 4;
    /** Front-end pipeline depth = refill penalty c_fe in cycles. */
    uint32_t frontendDepth = 5;
    BranchPredictorKind predictor = BranchPredictorKind::GShare;
    /** Branch predictor storage budget (bytes); 4 KB in the thesis. */
    uint32_t predictorBytes = 4096;

    // --- Back end --------------------------------------------------------
    uint32_t dispatchWidth = 4;
    uint32_t commitWidth = 4;
    uint32_t robSize = 128;
    uint32_t iqSize = 36;
    uint32_t lsqSize = 48;

    /** Issue ports; index is the port number. */
    std::vector<IssuePort> ports;
    /** Functional unit pools indexed by UopType. */
    std::array<FuPool, kNumUopTypes> fus{};
    LatencyTable lat = LatencyTable::nehalem();

    // --- Memory hierarchy --------------------------------------------------
    CacheConfig l1i{32 * 1024, 4, 3};
    CacheConfig l1d{32 * 1024, 8, 4};
    CacheConfig l2{256 * 1024, 8, 11};
    CacheConfig l3{8 * 1024 * 1024, 16, 30};
    /** L1D miss status handling registers. */
    uint32_t mshrs = 10;
    /** DRAM access latency in cycles (excluding bus queuing). */
    uint32_t memLatency = 200;
    /** Cycles the memory bus is occupied per cache-line transfer. */
    uint32_t busTransferCycles = 8;
    /** Per-PC stride prefetcher enabled? */
    bool prefetcherEnabled = false;
    /** Number of static loads the prefetcher can track. */
    uint32_t prefetcherEntries = 16;

    // --- Operating point ---------------------------------------------------
    double freqGHz = 2.66;
    double vdd = 1.1;

    /** Number of issue ports. */
    uint32_t numPorts() const { return ports.size(); }

    /**
     * Reference architecture, modeled after the Intel Nehalem core
     * (thesis Tables 6.1 / 6.4).
     */
    static CoreConfig nehalemReference();

    /**
     * Scale the pipeline width (fetch/dispatch/commit and the port count)
     * keeping the Nehalem port flavor. Used by the design space.
     */
    void setWidth(uint32_t width);
};

} // namespace mipp

#endif // MIPP_UARCH_CORE_CONFIG_HH
