/**
 * @file
 * Design-space enumeration (thesis Table 6.3) and DVFS operating points
 * (thesis Table 7.2).
 */

#ifndef MIPP_UARCH_DESIGN_SPACE_HH
#define MIPP_UARCH_DESIGN_SPACE_HH

#include <vector>

#include "uarch/core_config.hh"

namespace mipp {

/**
 * Cartesian design space of core configurations.
 *
 * Five parameters with three values each — 243 design points, mirroring the
 * thesis design space: pipeline width, ROB size (with IQ/LSQ scaled
 * along), L1D/L1I size, L2 size and LLC size.
 */
class DesignSpace
{
  public:
    /** Values explored per dimension. */
    struct Axes {
        std::vector<uint32_t> widths{2, 4, 6};
        std::vector<uint32_t> robSizes{64, 128, 256};
        std::vector<uint32_t> l1dKb{16, 32, 64};
        std::vector<uint32_t> l2Kb{128, 256, 512};
        std::vector<uint32_t> l3Mb{2, 8, 32};
    };

    DesignSpace() : DesignSpace(Axes{}) {}
    explicit DesignSpace(Axes axes);

    const std::vector<CoreConfig> &configs() const { return configs_; }
    size_t size() const { return configs_.size(); }
    const CoreConfig &operator[](size_t i) const { return configs_[i]; }

    /**
     * A 27-point subspace (every dimension reduced to its extremes plus the
     * middle on three chosen axes) used by the quicker evaluation benches.
     */
    static DesignSpace small();

  private:
    std::vector<CoreConfig> configs_;
};

/** One DVFS operating point. */
struct DvfsPoint {
    double freqGHz;
    double vdd;
};

/** Nehalem-like frequency/voltage ladder (thesis Table 7.2). */
std::vector<DvfsPoint> dvfsLadder();

/**
 * Scale buffer sizes that track the ROB (IQ, LSQ, MSHRs) so one knob moves
 * a balanced back end, as the thesis design space does.
 */
void scaleBackEnd(CoreConfig &c, uint32_t robSize);

/**
 * First-order L2/L3 hit-latency scaling with the configured capacities.
 * Single source of the heuristic, shared by the DSE design space and
 * the accuracy-harness grids so their design points stay comparable.
 * Call after setting the cache sizes.
 */
void scaleCacheLatencies(CoreConfig &c);

} // namespace mipp

#endif // MIPP_UARCH_DESIGN_SPACE_HH
