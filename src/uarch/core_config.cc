#include "uarch/core_config.hh"

namespace mipp {

std::string_view
branchPredictorName(BranchPredictorKind k)
{
    switch (k) {
      case BranchPredictorKind::GAg: return "GAg";
      case BranchPredictorKind::GAp: return "GAp";
      case BranchPredictorKind::PAp: return "PAp";
      case BranchPredictorKind::GShare: return "gshare";
      case BranchPredictorKind::Tournament: return "tournament";
      default: return "?";
    }
}

CacheConfig
CacheConfig::normalized() const
{
    CacheConfig c = *this;
    if (c.associativity == 0)
        c.associativity = 1;
    if (c.sizeBytes < kLineSize * c.associativity)
        c.sizeBytes = kLineSize * c.associativity;
    return c;
}

LatencyTable
LatencyTable::nehalem()
{
    LatencyTable t;
    t.of(UopType::IntAlu) = 1;
    t.of(UopType::IntMul) = 3;
    t.of(UopType::IntDiv) = 20;
    t.of(UopType::FpAlu) = 3;
    t.of(UopType::FpMul) = 5;
    t.of(UopType::FpDiv) = 20;
    t.of(UopType::Load) = 4;   // L1D hit; the memory system adds miss time
    t.of(UopType::Store) = 1;
    t.of(UopType::Branch) = 1;
    t.of(UopType::Move) = 1;
    return t;
}

namespace {

/** Set every FU pool from one (count, pipelined) table. */
void
setFus(CoreConfig &c,
       std::initializer_list<std::pair<UopType, FuPool>> pools)
{
    for (const auto &[type, pool] : pools)
        c.fus[static_cast<int>(type)] = pool;
}

} // namespace

void
CoreConfig::setWidth(uint32_t width)
{
    fetchWidth = dispatchWidth = commitWidth = width;

    using T = UopType;
    ports.clear();
    if (width <= 2) {
        ports.push_back({{T::IntAlu, T::IntMul, T::IntDiv, T::FpMul,
                          T::FpDiv, T::Move}});
        ports.push_back({{T::IntAlu, T::FpAlu, T::Branch, T::Move}});
        ports.push_back({{T::Load}});
        ports.push_back({{T::Store}});
        setFus(*this, {
            {T::IntAlu, {2, true}}, {T::IntMul, {1, true}},
            {T::IntDiv, {1, false}}, {T::FpAlu, {1, true}},
            {T::FpMul, {1, true}}, {T::FpDiv, {1, false}},
            {T::Load, {1, true}}, {T::Store, {1, true}},
            {T::Branch, {1, true}}, {T::Move, {2, true}}});
    } else if (width <= 4) {
        // Nehalem-style six-port issue stage (thesis Fig 3.5).
        ports.push_back({{T::IntAlu, T::FpMul, T::IntDiv, T::FpDiv,
                          T::Move}});
        ports.push_back({{T::IntAlu, T::IntMul, T::FpAlu, T::Move}});
        ports.push_back({{T::Load}});
        ports.push_back({{T::Store}});
        ports.push_back({{T::Store}});
        ports.push_back({{T::IntAlu, T::Branch, T::Move}});
        setFus(*this, {
            {T::IntAlu, {3, true}}, {T::IntMul, {1, true}},
            {T::IntDiv, {1, false}}, {T::FpAlu, {1, true}},
            {T::FpMul, {1, true}}, {T::FpDiv, {1, false}},
            {T::Load, {1, true}}, {T::Store, {2, true}},
            {T::Branch, {1, true}}, {T::Move, {3, true}}});
    } else {
        // Wide eight-port configuration.
        ports.push_back({{T::IntAlu, T::FpMul, T::IntDiv, T::FpDiv,
                          T::Move}});
        ports.push_back({{T::IntAlu, T::IntMul, T::FpAlu, T::Move}});
        ports.push_back({{T::Load}});
        ports.push_back({{T::Store}});
        ports.push_back({{T::Store}});
        ports.push_back({{T::IntAlu, T::Branch, T::Move}});
        ports.push_back({{T::IntAlu, T::IntMul, T::FpAlu, T::Move}});
        ports.push_back({{T::Load}});
        setFus(*this, {
            {T::IntAlu, {4, true}}, {T::IntMul, {2, true}},
            {T::IntDiv, {1, false}}, {T::FpAlu, {2, true}},
            {T::FpMul, {1, true}}, {T::FpDiv, {1, false}},
            {T::Load, {2, true}}, {T::Store, {2, true}},
            {T::Branch, {1, true}}, {T::Move, {4, true}}});
    }
}

CoreConfig
CoreConfig::nehalemReference()
{
    CoreConfig c;
    c.name = "nehalem";
    c.setWidth(4);
    c.frontendDepth = 5;
    c.predictor = BranchPredictorKind::GShare;
    c.predictorBytes = 4096;
    // The issue queue is sized with the ROB: the interval model (like
    // Sniper's interval core) reasons about a single ROB-sized instruction
    // window, so the reference machine keeps the IQ non-binding. A small
    // RS would add issue-queue-clog effects outside the model's scope.
    c.robSize = 128;
    c.iqSize = 128;
    c.lsqSize = 48;
    c.l1i = {32 * 1024, 4, 3};
    c.l1d = {32 * 1024, 8, 4};
    c.l2 = {256 * 1024, 8, 11};
    c.l3 = {8 * 1024 * 1024, 16, 30};
    c.mshrs = 10;
    c.memLatency = 200;
    c.busTransferCycles = 8;
    c.prefetcherEnabled = false;
    c.freqGHz = 2.66;
    c.vdd = 1.1;
    return c;
}

} // namespace mipp
