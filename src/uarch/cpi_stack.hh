/**
 * @file
 * CPI-stack components (thesis Fig 6.1), shared between the cycle-level
 * simulator and the analytical model so their stacks compare directly.
 */

#ifndef MIPP_UARCH_CPI_STACK_HH
#define MIPP_UARCH_CPI_STACK_HH

namespace mipp {

/** Cycle attribution per first-order cause; values are cycle counts. */
struct CpiStack {
    double base = 0;    ///< dispatch/issue-limited execution
    double branch = 0;  ///< misprediction resolution + refill
    double icache = 0;  ///< instruction-fetch misses
    double l2hit = 0;   ///< stalls on loads served by L2
    double llcHit = 0;  ///< stalls on loads served by the LLC (chains)
    double dram = 0;    ///< stalls on main-memory loads (incl. bus)

    double
    total() const
    {
        return base + branch + icache + l2hit + llcHit + dram;
    }

    /** Scale all components (e.g. cycles -> CPI). */
    CpiStack
    scaled(double f) const
    {
        return {base * f, branch * f, icache * f,
                l2hit * f, llcHit * f, dram * f};
    }
};

} // namespace mipp

#endif // MIPP_UARCH_CPI_STACK_HH
