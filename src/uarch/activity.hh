/**
 * @file
 * Activity factors consumed by the power model (thesis §3.6, §4.10).
 *
 * Both the cycle-level simulator and the analytical model fill one of these
 * from their respective executions; the power model converts activity plus a
 * CoreConfig into power. This mirrors the paper's McPAT flow, where activity
 * factors come either from Sniper or from the analytical model.
 */

#ifndef MIPP_UARCH_ACTIVITY_HH
#define MIPP_UARCH_ACTIVITY_HH

#include <array>
#include <cstdint>

#include "trace/micro_op.hh"

namespace mipp {

/** Event counts over one program execution. */
struct ActivityCounts {
    uint64_t cycles = 0;
    uint64_t uops = 0;
    uint64_t instructions = 0;

    /** Executed operations per functional-unit type. */
    std::array<uint64_t, kNumUopTypes> fuOps{};

    uint64_t robWrites = 0;     ///< dispatches
    uint64_t robReads = 0;      ///< commits
    uint64_t iqWrites = 0;
    uint64_t iqWakeups = 0;     ///< issue events
    uint64_t rfReads = 0;
    uint64_t rfWrites = 0;
    uint64_t bpLookups = 0;

    uint64_t l1iAccesses = 0;
    uint64_t l1dAccesses = 0;
    uint64_t l2Accesses = 0;
    uint64_t l3Accesses = 0;
    uint64_t dramAccesses = 0;
};

} // namespace mipp

#endif // MIPP_UARCH_ACTIVITY_HH
