#include "sim/branch_predictor.hh"

#include <bit>

namespace mipp {

namespace {

/** Entries affordable with 2-bit counters in @p bytes of storage. */
size_t
entriesFor(uint32_t bytes)
{
    size_t entries = static_cast<size_t>(bytes) * 4; // 4 counters per byte
    return std::bit_floor(std::max<size_t>(entries, 16));
}

uint32_t
log2u(size_t v)
{
    return static_cast<uint32_t>(std::bit_width(v) - 1);
}

} // namespace

// --- GAg -------------------------------------------------------------------

GAgPredictor::GAgPredictor(uint32_t bytes)
    : table_(entriesFor(bytes)), histBits_(log2u(table_.size()))
{
}

bool
GAgPredictor::predict(uint64_t pc)
{
    (void)pc;
    return table_.taken(hist_);
}

void
GAgPredictor::update(uint64_t pc, bool taken)
{
    (void)pc;
    table_.train(hist_, taken);
    hist_ = ((hist_ << 1) | (taken ? 1 : 0)) & ((1u << histBits_) - 1);
}

// --- GAp -------------------------------------------------------------------

GApPredictor::GApPredictor(uint32_t bytes)
    : table_(entriesFor(bytes))
{
    uint32_t idx_bits = log2u(table_.size());
    // Split index bits between pc and history; history gets the rest.
    pcBits_ = idx_bits / 2;
    histBits_ = idx_bits - pcBits_;
}

size_t
GApPredictor::index(uint64_t pc) const
{
    uint64_t pc_part = (pc >> 3) & ((1ull << pcBits_) - 1);
    return (pc_part << histBits_) | (hist_ & ((1u << histBits_) - 1));
}

bool
GApPredictor::predict(uint64_t pc)
{
    return table_.taken(index(pc));
}

void
GApPredictor::update(uint64_t pc, bool taken)
{
    table_.train(index(pc), taken);
    hist_ = ((hist_ << 1) | (taken ? 1 : 0)) & ((1u << histBits_) - 1);
}

// --- PAp -------------------------------------------------------------------

PApPredictor::PApPredictor(uint32_t bytes)
    : table_(entriesFor(bytes) / 2),
      localHist_(entriesFor(bytes) / 8, 0)
{
    uint32_t idx_bits = log2u(table_.size());
    pcBits_ = idx_bits / 2;
    histBits_ = idx_bits - pcBits_;
}

size_t
PApPredictor::index(uint64_t pc) const
{
    uint64_t pc_part = (pc >> 3) & ((1ull << pcBits_) - 1);
    uint16_t lh = localHist_[(pc >> 3) % localHist_.size()];
    return (pc_part << histBits_) | (lh & ((1u << histBits_) - 1));
}

bool
PApPredictor::predict(uint64_t pc)
{
    return table_.taken(index(pc));
}

void
PApPredictor::update(uint64_t pc, bool taken)
{
    table_.train(index(pc), taken);
    auto &lh = localHist_[(pc >> 3) % localHist_.size()];
    lh = static_cast<uint16_t>((lh << 1) | (taken ? 1 : 0));
}

// --- gshare ----------------------------------------------------------------

GSharePredictor::GSharePredictor(uint32_t bytes)
    : table_(entriesFor(bytes)), histBits_(log2u(table_.size()))
{
}

bool
GSharePredictor::predict(uint64_t pc)
{
    return table_.taken((pc >> 3) ^ hist_);
}

void
GSharePredictor::update(uint64_t pc, bool taken)
{
    table_.train((pc >> 3) ^ hist_, taken);
    hist_ = ((hist_ << 1) | (taken ? 1 : 0)) & ((1u << histBits_) - 1);
}

// --- Tournament --------------------------------------------------------------

TournamentPredictor::TournamentPredictor(uint32_t bytes)
    : gap_(bytes / 2), pap_(bytes / 4), chooser_(entriesFor(bytes / 4))
{
}

bool
TournamentPredictor::predict(uint64_t pc)
{
    bool use_gap = chooser_.taken(((pc >> 3) ^ hist_) % chooser_.size());
    return use_gap ? gap_.predict(pc) : pap_.predict(pc);
}

void
TournamentPredictor::update(uint64_t pc, bool taken)
{
    bool gap_correct = gap_.predict(pc) == taken;
    bool pap_correct = pap_.predict(pc) == taken;
    size_t ci = ((pc >> 3) ^ hist_) % chooser_.size();
    if (gap_correct != pap_correct)
        chooser_.train(ci, gap_correct);
    gap_.update(pc, taken);
    pap_.update(pc, taken);
    hist_ = (hist_ << 1) | (taken ? 1 : 0);
}

// --- Factory ------------------------------------------------------------------

std::unique_ptr<BranchPredictor>
BranchPredictor::create(BranchPredictorKind kind, uint32_t bytes)
{
    switch (kind) {
      case BranchPredictorKind::GAg:
        return std::make_unique<GAgPredictor>(bytes);
      case BranchPredictorKind::GAp:
        return std::make_unique<GApPredictor>(bytes);
      case BranchPredictorKind::PAp:
        return std::make_unique<PApPredictor>(bytes);
      case BranchPredictorKind::GShare:
        return std::make_unique<GSharePredictor>(bytes);
      case BranchPredictorKind::Tournament:
        return std::make_unique<TournamentPredictor>(bytes);
      default:
        return std::make_unique<GSharePredictor>(bytes);
    }
}

} // namespace mipp
