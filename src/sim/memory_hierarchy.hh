/**
 * @file
 * Functional-with-latency cache hierarchy for the reference simulator.
 *
 * Three inclusive levels of set-associative LRU caches plus a DRAM model
 * with a single shared memory bus (queuing delay, thesis §4.7) and an
 * optional per-PC stride prefetcher (thesis §4.9). Accesses return the
 * full latency the requesting core observes; the hierarchy keeps the
 * detailed per-level statistics the evaluation benches report.
 */

#ifndef MIPP_SIM_MEMORY_HIERARCHY_HH
#define MIPP_SIM_MEMORY_HIERARCHY_HH

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "uarch/core_config.hh"

namespace mipp {

/** One set-associative LRU cache level. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    /** Look up @p line, updating LRU state. @return hit? */
    bool lookup(uint64_t line);

    /** Check residency without disturbing LRU state. */
    bool peek(uint64_t line) const;

    /** Evicted dirty/clean line if any. */
    struct Victim {
        uint64_t line;
        bool dirty;
    };

    /** Insert @p line (possibly dirty); @return the victim if one. */
    std::optional<Victim> insert(uint64_t line, bool dirty);

    /** Mark a resident line dirty (store hit). */
    void markDirty(uint64_t line);

    /** Remove @p line if resident (back-invalidation). */
    void invalidate(uint64_t line);

    const CacheConfig &config() const { return cfg_; }

  private:
    struct Way {
        uint64_t line = 0;
        bool valid = false;
        bool dirty = false;
    };

    size_t setIndex(uint64_t line) const { return line % numSets_; }

    CacheConfig cfg_;
    size_t numSets_;
    size_t ways_;
    /** sets_[set * ways_ + i]; index 0 is MRU. */
    std::vector<Way> sets_;
};

/** Kind of memory request. */
enum class AccessKind : uint8_t { Load, Store, Ifetch };

/** Where in the hierarchy a request was satisfied. */
enum class HitLevel : uint8_t { L1 = 1, L2 = 2, L3 = 3, Dram = 4 };

/** Outcome of one hierarchy access. */
struct AccessResult {
    uint32_t latency = 0;    ///< total cycles until data available
    HitLevel level = HitLevel::L1;
    bool coldMiss = false;   ///< DRAM access to a never-touched line
    bool prefetched = false; ///< satisfied (fully/partially) by a prefetch
};

/** Aggregate statistics per cache level. */
struct LevelStats {
    uint64_t loadAccesses = 0, loadMisses = 0;
    uint64_t storeAccesses = 0, storeMisses = 0;
    uint64_t ifetchAccesses = 0, ifetchMisses = 0;

    uint64_t accesses() const
    {
        return loadAccesses + storeAccesses + ifetchAccesses;
    }
    uint64_t misses() const
    {
        return loadMisses + storeMisses + ifetchMisses;
    }
};

/** Full memory-side statistics. */
struct MemoryStats {
    LevelStats l1i, l1d, l2, l3;
    uint64_t dramAccesses = 0;
    uint64_t coldLoadMisses = 0, capacityLoadMisses = 0;
    uint64_t coldStoreMisses = 0, capacityStoreMisses = 0;
    uint64_t writebacks = 0;
    uint64_t busWaitCycles = 0;   ///< total queueing delay behind the bus
    uint64_t prefetchesIssued = 0;
    uint64_t prefetchHits = 0;    ///< demand hits on prefetched lines
};

/** Inclusive three-level hierarchy + DRAM + bus + stride prefetcher. */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const CoreConfig &cfg);

    /**
     * Perform an access for the line containing @p addr.
     *
     * @param addr byte address
     * @param pc   static pc of the requesting uop (prefetcher training)
     * @param kind load / store / ifetch
     * @param now  current core cycle
     */
    AccessResult access(uint64_t addr, uint64_t pc, AccessKind kind,
                        uint64_t now);

    /** Hit level @p addr would see right now, without any state change. */
    HitLevel peekLevel(uint64_t addr) const;

    const MemoryStats &stats() const { return stats_; }

  private:
    uint32_t busCycles(uint64_t now);
    void train(uint64_t pc, uint64_t line, uint64_t now);
    void fill(uint64_t line, bool dirty, bool ifetch);

    const CoreConfig &cfg_;
    Cache l1i_, l1d_, l2_, l3_;
    MemoryStats stats_;

    /** Every line ever brought in from DRAM (cold-miss tracking). */
    std::unordered_set<uint64_t> touched_;

    /** Memory bus: next cycle the bus is free. */
    uint64_t busFreeAt_ = 0;

    /** Per-PC stride prefetcher state. */
    struct StrideEntry {
        uint64_t lastAddr = 0;
        int64_t stride = 0;
        int confidence = 0;
        uint64_t lastUse = 0;
    };
    std::unordered_map<uint64_t, StrideEntry> strideTable_;

    /** In-flight prefetches: line -> cycle the data arrives in L2. */
    std::unordered_map<uint64_t, uint64_t> inFlight_;
};

} // namespace mipp

#endif // MIPP_SIM_MEMORY_HIERARCHY_HH
