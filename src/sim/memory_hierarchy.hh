/**
 * @file
 * Functional-with-latency cache hierarchy for the reference simulator.
 *
 * Three inclusive levels of set-associative LRU caches plus a DRAM model
 * with a single shared memory bus (queuing delay, thesis §4.7) and an
 * optional per-PC stride prefetcher (thesis §4.9). Accesses return the
 * full latency the requesting core observes; the hierarchy keeps the
 * detailed per-level statistics the evaluation benches report.
 */

#ifndef MIPP_SIM_MEMORY_HIERARCHY_HH
#define MIPP_SIM_MEMORY_HIERARCHY_HH

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "uarch/core_config.hh"

namespace mipp {

/** One set-associative LRU cache level. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    /** Look up @p line, updating LRU state. @return hit? */
    bool lookup(uint64_t line);

    /** Check residency without disturbing LRU state. */
    bool peek(uint64_t line) const;

    /** Evicted dirty/clean line if any. */
    struct Victim {
        uint64_t line;
        bool dirty;
    };

    /** Insert @p line (possibly dirty); @return the victim if one. */
    std::optional<Victim> insert(uint64_t line, bool dirty);

    /** Mark a resident line dirty (store hit / inner-level writeback).
     *  @return whether the line was resident — a false return means the
     *  dirty data has NOT been recorded and the caller must write it
     *  back elsewhere. */
    bool markDirty(uint64_t line);

    /** Remove @p line if resident (back-invalidation).
     *  @return whether the removed copy was dirty (lost unless the
     *  caller writes it back). */
    bool invalidate(uint64_t line);

    /** All currently valid lines (test / validation introspection). */
    std::vector<uint64_t> residentLines() const;

    const CacheConfig &config() const { return cfg_; }

  private:
    struct Way {
        uint64_t line = 0;
        bool valid = false;
        bool dirty = false;
    };

    size_t setIndex(uint64_t line) const { return line % numSets_; }

    CacheConfig cfg_;
    size_t numSets_;
    size_t ways_;
    /** sets_[set * ways_ + i]; index 0 is MRU. */
    std::vector<Way> sets_;
};

/** Kind of memory request. */
enum class AccessKind : uint8_t { Load, Store, Ifetch };

/** Where in the hierarchy a request was satisfied. */
enum class HitLevel : uint8_t { L1 = 1, L2 = 2, L3 = 3, Dram = 4 };

/** Outcome of one hierarchy access. */
struct AccessResult {
    uint32_t latency = 0;    ///< total cycles until data available
    HitLevel level = HitLevel::L1;
    bool coldMiss = false;   ///< DRAM access to a never-touched line
    bool prefetched = false; ///< satisfied (fully/partially) by a prefetch
};

/** Aggregate statistics per cache level. */
struct LevelStats {
    uint64_t loadAccesses = 0, loadMisses = 0;
    uint64_t storeAccesses = 0, storeMisses = 0;
    uint64_t ifetchAccesses = 0, ifetchMisses = 0;

    uint64_t accesses() const
    {
        return loadAccesses + storeAccesses + ifetchAccesses;
    }
    uint64_t misses() const
    {
        return loadMisses + storeMisses + ifetchMisses;
    }
};

/** Full memory-side statistics. */
struct MemoryStats {
    LevelStats l1i, l1d, l2, l3;
    uint64_t dramAccesses = 0;
    uint64_t coldLoadMisses = 0, capacityLoadMisses = 0;
    uint64_t coldStoreMisses = 0, capacityStoreMisses = 0;
    uint64_t writebacks = 0;
    uint64_t busWaitCycles = 0;   ///< total queueing delay behind the bus
    uint64_t prefetchesIssued = 0;
    uint64_t prefetchHits = 0;    ///< demand hits on prefetched lines
    /** Completed prefetches installed into L2/L3 before any demand use. */
    uint64_t prefetchesInstalled = 0;
};

/** Inclusive three-level hierarchy + DRAM + bus + stride prefetcher. */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const CoreConfig &cfg);

    /**
     * Perform an access for the line containing @p addr.
     *
     * @param addr byte address
     * @param pc   static pc of the requesting uop (prefetcher training)
     * @param kind load / store / ifetch
     * @param now  current core cycle
     */
    AccessResult access(uint64_t addr, uint64_t pc, AccessKind kind,
                        uint64_t now);

    /** Hit level @p addr would see right now, without any state change. */
    HitLevel peekLevel(uint64_t addr) const;

    const MemoryStats &stats() const { return stats_; }

    // Cache introspection for invariant checks (validate/accuracy, tests).
    const Cache &l1i() const { return l1i_; }
    const Cache &l1d() const { return l1d_; }
    const Cache &l2() const { return l2_; }
    const Cache &l3() const { return l3_; }

  private:
    uint32_t busCycles(uint64_t now);
    void train(uint64_t pc, uint64_t line, uint64_t now);
    void fill(uint64_t line, bool dirty, bool ifetch);
    /** L2 allocation with the never-drop-dirty-victim guarantee. */
    void insertL2(uint64_t line);
    /** Shared (L3 + L2) part of a fill; prefetches stop here. */
    void fillShared(uint64_t line);
    /** Record a dirty L1 victim in L2, else L3, else write it back. */
    void writebackInner(uint64_t line);
    /** Install prefetches whose data has arrived by @p now into L2/L3. */
    void drainPrefetches(uint64_t now);

    const CoreConfig &cfg_;
    Cache l1i_, l1d_, l2_, l3_;
    MemoryStats stats_;

    /** Every line ever brought in from DRAM (cold-miss tracking). */
    std::unordered_set<uint64_t> touched_;

    /** Memory bus: next cycle the bus is free. */
    uint64_t busFreeAt_ = 0;

    /** Per-PC stride prefetcher state. */
    struct StrideEntry {
        uint64_t lastAddr = 0;
        int64_t stride = 0;
        int confidence = 0;
        uint64_t lastUse = 0;
    };
    std::unordered_map<uint64_t, StrideEntry> strideTable_;

    /** In-flight prefetches: line -> cycle the data arrives in L2. */
    std::unordered_map<uint64_t, uint64_t> inFlight_;
    /** Min-heap of (ready cycle, line) mirroring inFlight_, so completed
     *  prefetches are installed in O(log n) without scanning the table.
     *  Entries whose (ready, line) no longer matches inFlight_ are stale
     *  (intercepted by a demand access) and skipped on pop. */
    std::vector<std::pair<uint64_t, uint64_t>> prefetchHeap_;
    /** Installed prefetched lines not yet referenced by a demand access
     *  (attributes later L2/L3 hits to the prefetcher). Entries are
     *  erased on first use or when the line leaves the L3, so the set
     *  is bounded by the L3 capacity and never goes stale. */
    std::unordered_set<uint64_t> prefetchedLines_;
};

} // namespace mipp

#endif // MIPP_SIM_MEMORY_HIERARCHY_HH
