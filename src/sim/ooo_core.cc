#include "sim/ooo_core.hh"

#include <cassert>
#include <deque>
#include <stdexcept>
#include <unordered_map>

#include "sim/branch_predictor.hh"

namespace mipp {

namespace {

/** One in-flight instruction in the reorder buffer. */
struct RobEntry {
    MicroOp op;
    uint64_t seq = 0;
    bool inIq = false;        ///< occupies an issue-queue slot
    bool issued = false;
    bool done = false;
    uint64_t doneCycle = 0;
    int64_t src1Seq = -1;     ///< producing seq, -1 when already available
    int64_t src2Seq = -1;
    HitLevel level = HitLevel::L1;     ///< loads: where data came from
    bool blockingMispredict = false;   ///< fetch waits on this branch
};

/** A fetched uop travelling down the front-end pipeline. */
struct PendingUop {
    MicroOp op;
    uint64_t readyCycle = 0;
    bool mispredicted = false;
};

/** Why instruction delivery is currently stalled. */
enum class FetchStall { None, Branch, ICache };

class Core
{
  public:
    Core(const CoreConfig &cfg, const SimOptions &opts)
        : cfg_(cfg), opts_(opts), mem_(cfg),
          bp_(BranchPredictor::create(cfg.predictor, cfg.predictorBytes)),
          feBufferCap_(cfg.fetchWidth * (cfg.frontendDepth + 2))
    {
        for (int t = 0; t < kNumUopTypes; ++t) {
            if (!cfg_.fus[t].pipelined)
                fuBusyUntil_[t].assign(cfg_.fus[t].count, 0);
        }
    }

    SimResult run(const Trace &trace);

  private:
    // Pipeline stages, called once per cycle.
    void complete();
    uint32_t commit();
    void issue();
    void dispatch();
    void fetch(const Trace &trace);
    void account(uint32_t commits);

    bool srcReady(int64_t seq) const;
    bool tryIssueOne(RobEntry &e);
    void startLoad(RobEntry &e);

    const CoreConfig &cfg_;
    const SimOptions opts_;
    MemoryHierarchy mem_;
    std::unique_ptr<BranchPredictor> bp_;

    uint64_t now_ = 0;
    uint64_t nextSeq_ = 0;
    size_t fetchIndex_ = 0;
    size_t traceSize_ = 0;

    std::deque<RobEntry> rob_;
    std::deque<PendingUop> feBuffer_;
    const size_t feBufferCap_;
    uint32_t iqOccupancy_ = 0;
    uint32_t lsqOccupancy_ = 0;

    /** Rename map: architectural register -> producing seq (-1 = ready). */
    int64_t renameMap_[kNumRegs] = {};

    // Front-end stall machinery.
    uint64_t fetchStallUntil_ = 0;
    FetchStall stallReason_ = FetchStall::None;
    bool fetchBlocked_ = false;     ///< waiting on a mispredicted branch
    uint64_t lastFetchLine_ = ~0ULL;

    // Issue-stage per-cycle resources.
    std::vector<bool> portUsed_;
    uint32_t fuIssued_[kNumUopTypes] = {};
    std::unordered_map<int, std::vector<uint64_t>> fuBusyUntil_;

    // Outstanding L1D misses: line -> (data-ready cycle, from DRAM?).
    struct Outstanding {
        uint64_t doneCycle;
        bool dram;
    };
    std::unordered_map<uint64_t, Outstanding> inFlightLines_;

    SimResult res_;
    uint64_t committedUops_ = 0;
    uint64_t committedInsts_ = 0;
    uint64_t lastWindowCycle_ = 0;
    uint64_t lastWindowUops_ = 0;
    uint64_t mlpSum_ = 0;
};

bool
Core::srcReady(int64_t seq) const
{
    if (seq < 0)
        return true;
    if (rob_.empty() || seq < static_cast<int64_t>(rob_.front().seq))
        return true; // producer already committed
    const RobEntry &e = rob_[seq - rob_.front().seq];
    return e.done && e.doneCycle <= now_;
}

void
Core::complete()
{
    // Prune resolved outstanding misses.
    for (auto it = inFlightLines_.begin(); it != inFlightLines_.end();) {
        if (it->second.doneCycle <= now_)
            it = inFlightLines_.erase(it);
        else
            ++it;
    }
    for (auto &e : rob_) {
        if (e.issued && !e.done && e.doneCycle <= now_) {
            e.done = true;
            if (e.blockingMispredict) {
                fetchBlocked_ = false;
                fetchStallUntil_ = e.doneCycle + cfg_.frontendDepth;
                stallReason_ = FetchStall::Branch;
            }
        }
    }
}

uint32_t
Core::commit()
{
    uint32_t commits = 0;
    while (!rob_.empty() && commits < cfg_.commitWidth) {
        RobEntry &head = rob_.front();
        if (!head.done || head.doneCycle > now_)
            break;
        if (head.op.type == UopType::Store) {
            // Write-back at retirement; the core does not wait for it.
            mem_.access(head.op.addr, head.op.pc, AccessKind::Store, now_);
            lsqOccupancy_--;
        } else if (head.op.type == UopType::Load) {
            lsqOccupancy_--;
        }
        res_.activity.robReads++;
        if (head.op.dst != kNoReg) {
            res_.activity.rfWrites++;
            // Clear the rename entry if this uop is still the last writer.
            if (renameMap_[head.op.dst] ==
                static_cast<int64_t>(head.seq))
                renameMap_[head.op.dst] = -1;
        }
        committedUops_++;
        committedInsts_ += head.op.instBoundary ? 1 : 0;
        rob_.pop_front();
        commits++;

        // Per-window CPI series for phase analysis.
        if (opts_.cpiWindowUops &&
            committedUops_ - lastWindowUops_ >= opts_.cpiWindowUops) {
            double cycles = static_cast<double>(now_ - lastWindowCycle_);
            double uops =
                static_cast<double>(committedUops_ - lastWindowUops_);
            res_.windowCpi.push_back(cycles / uops);
            lastWindowCycle_ = now_;
            lastWindowUops_ = committedUops_;
        }
    }
    return commits;
}

void
Core::startLoad(RobEntry &e)
{
    if (opts_.perfectDCache) {
        e.level = HitLevel::L1;
        e.doneCycle = now_ + cfg_.l1d.latency;
        return;
    }
    uint64_t line = e.op.lineAddr();
    if (auto it = inFlightLines_.find(line); it != inFlightLines_.end()) {
        // Coalesce with an outstanding miss to the same line.
        e.level = it->second.dram ? HitLevel::Dram : HitLevel::L2;
        e.doneCycle = std::max<uint64_t>(it->second.doneCycle,
                                         now_ + cfg_.l1d.latency);
        return;
    }
    AccessResult r = mem_.access(e.op.addr, e.op.pc, AccessKind::Load, now_);
    e.level = r.level;
    e.doneCycle = now_ + r.latency;
    if (r.level != HitLevel::L1) {
        inFlightLines_[line] = {e.doneCycle, r.level == HitLevel::Dram};
    }
}

bool
Core::tryIssueOne(RobEntry &e)
{
    int t = static_cast<int>(e.op.type);

    // Structural check: MSHRs for loads that will miss in L1D.
    if (e.op.type == UopType::Load && !opts_.perfectDCache) {
        HitLevel lvl = mem_.peekLevel(e.op.addr);
        bool coalesced = inFlightLines_.count(e.op.lineAddr()) > 0;
        if (lvl != HitLevel::L1 && !coalesced &&
            inFlightLines_.size() >= cfg_.mshrs)
            return false;
    }

    // A free issue port that feeds this uop type.
    int port = -1;
    for (size_t p = 0; p < cfg_.ports.size(); ++p) {
        if (!portUsed_[p] && cfg_.ports[p].canIssue(e.op.type)) {
            port = static_cast<int>(p);
            break;
        }
    }
    if (port < 0)
        return false;

    // A free functional unit.
    const FuPool &pool = cfg_.fus[t];
    if (pool.pipelined) {
        if (fuIssued_[t] >= pool.count)
            return false;
    } else {
        auto &busy = fuBusyUntil_[t];
        size_t unit = busy.size();
        for (size_t u = 0; u < busy.size(); ++u) {
            if (busy[u] <= now_) {
                unit = u;
                break;
            }
        }
        if (unit == busy.size())
            return false;
        busy[unit] = now_ + cfg_.lat.of(e.op.type);
    }

    portUsed_[port] = true;
    fuIssued_[t]++;
    e.issued = true;
    e.inIq = false;
    iqOccupancy_--;

    res_.activity.iqWakeups++;
    res_.activity.fuOps[t]++;
    res_.activity.rfReads +=
        (e.op.src1 != kNoReg) + (e.op.src2 != kNoReg);

    if (e.op.type == UopType::Load)
        startLoad(e);
    else
        e.doneCycle = now_ + cfg_.lat.of(e.op.type);
    return true;
}

void
Core::issue()
{
    portUsed_.assign(cfg_.ports.size(), false);
    for (int t = 0; t < kNumUopTypes; ++t)
        fuIssued_[t] = 0;

    uint32_t issued = 0;
    const uint32_t issue_width = cfg_.numPorts();
    for (auto &e : rob_) {
        if (issued >= issue_width)
            break;
        if (!e.inIq || e.issued)
            continue;
        if (!srcReady(e.src1Seq) || !srcReady(e.src2Seq))
            continue;
        if (tryIssueOne(e))
            issued++;
    }
}

void
Core::dispatch()
{
    uint32_t dispatched = 0;
    while (dispatched < cfg_.dispatchWidth && !feBuffer_.empty()) {
        PendingUop &p = feBuffer_.front();
        if (p.readyCycle > now_)
            break;
        if (rob_.size() >= cfg_.robSize || iqOccupancy_ >= cfg_.iqSize)
            break;
        if (isMemory(p.op.type) && lsqOccupancy_ >= cfg_.lsqSize)
            break;

        RobEntry e;
        e.op = p.op;
        e.seq = nextSeq_++;
        e.inIq = true;
        e.blockingMispredict = p.mispredicted;
        e.src1Seq = p.op.src1 != kNoReg ? renameMap_[p.op.src1] : -1;
        e.src2Seq = p.op.src2 != kNoReg ? renameMap_[p.op.src2] : -1;
        if (p.op.dst != kNoReg)
            renameMap_[p.op.dst] = static_cast<int64_t>(e.seq);
        if (isMemory(p.op.type))
            lsqOccupancy_++;
        iqOccupancy_++;
        rob_.push_back(e);
        // pop_front() invalidates p; account through the ROB copy.
        feBuffer_.pop_front();
        dispatched++;

        res_.activity.robWrites++;
        res_.activity.iqWrites++;
        res_.activity.uops++;
        res_.activity.instructions += e.op.instBoundary ? 1 : 0;
    }
}

void
Core::fetch(const Trace &trace)
{
    if (fetchBlocked_ || now_ < fetchStallUntil_)
        return;
    stallReason_ = FetchStall::None;

    uint32_t fetched = 0;
    while (fetched < cfg_.fetchWidth && fetchIndex_ < traceSize_ &&
           feBuffer_.size() < feBufferCap_) {
        const MicroOp &op = trace[fetchIndex_];

        // Instruction-cache lookup on line crossings.
        uint64_t line = op.pc / kLineSize;
        if (line != lastFetchLine_ && !opts_.perfectICache) {
            AccessResult r =
                mem_.access(op.pc, op.pc, AccessKind::Ifetch, now_);
            lastFetchLine_ = line;
            if (r.level != HitLevel::L1) {
                fetchStallUntil_ = now_ + r.latency;
                stallReason_ = FetchStall::ICache;
                return;
            }
        }
        lastFetchLine_ = line;

        PendingUop p;
        p.op = op;
        p.readyCycle = now_ + cfg_.frontendDepth;
        if (op.type == UopType::Branch) {
            res_.branches++;
            res_.activity.bpLookups++;
            bool correct = bp_->predictAndUpdate(op.pc, op.taken);
            if (!correct && !opts_.perfectBranch) {
                res_.branchMispredicts++;
                p.mispredicted = true;
                fetchBlocked_ = true;
                stallReason_ = FetchStall::Branch;
                feBuffer_.push_back(p);
                fetchIndex_++;
                return;
            }
        }
        feBuffer_.push_back(p);
        fetchIndex_++;
        fetched++;
    }
}

void
Core::account(uint32_t commits)
{
    // Memory-level parallelism bookkeeping.
    uint32_t outstanding_dram = 0;
    for (const auto &[line, o] : inFlightLines_)
        outstanding_dram += o.dram ? 1 : 0;
    if (outstanding_dram > 0) {
        res_.dramCycles++;
        mlpSum_ += outstanding_dram;
    }

    // CPI-stack attribution (one component per cycle).
    CpiStack &s = res_.stack;
    if (commits > 0) {
        s.base += 1;
        return;
    }
    if (!rob_.empty()) {
        const RobEntry &head = rob_.front();
        if (head.issued && !(head.done && head.doneCycle <= now_) &&
            head.op.type == UopType::Load) {
            switch (head.level) {
              case HitLevel::Dram: s.dram += 1; return;
              case HitLevel::L3: s.llcHit += 1; return;
              case HitLevel::L2: s.l2hit += 1; return;
              default: break;
            }
        }
        s.base += 1;
        return;
    }
    // Empty ROB: the front end is the bottleneck.
    if (fetchBlocked_ || stallReason_ == FetchStall::Branch)
        s.branch += 1;
    else if (stallReason_ == FetchStall::ICache)
        s.icache += 1;
    else
        s.base += 1;
}

SimResult
Core::run(const Trace &trace)
{
    traceSize_ = trace.size();
    res_ = SimResult{};
    for (auto &r : renameMap_)
        r = -1;

    uint64_t last_progress_cycle = 0;
    uint64_t last_committed = 0;
    while (committedUops_ < traceSize_) {
        complete();
        uint32_t commits = commit();
        issue();
        dispatch();
        fetch(trace);
        account(commits);

        if (committedUops_ != last_committed) {
            last_committed = committedUops_;
            last_progress_cycle = now_;
        } else if (now_ - last_progress_cycle > 1000000) {
            throw std::logic_error("simulator deadlock at cycle " +
                                   std::to_string(now_));
        }
        ++now_;
    }

    res_.cycles = now_;
    res_.uops = committedUops_;
    res_.instructions = committedInsts_;
    res_.mem = mem_.stats();
    res_.avgMlp = res_.dramCycles ?
        static_cast<double>(mlpSum_) / res_.dramCycles : 1.0;

    ActivityCounts &a = res_.activity;
    a.cycles = now_;
    a.l1iAccesses = res_.mem.l1i.accesses();
    a.l1dAccesses = res_.mem.l1d.accesses();
    a.l2Accesses = res_.mem.l2.accesses();
    a.l3Accesses = res_.mem.l3.accesses();
    a.dramAccesses = res_.mem.dramAccesses;
    return res_;
}

} // namespace

SimResult
simulate(const Trace &trace, const CoreConfig &cfg, const SimOptions &opts)
{
    Core core(cfg, opts);
    return core.run(trace);
}

} // namespace mipp
