/**
 * @file
 * Cycle-level out-of-order core model — the reference simulator.
 *
 * This is the framework's stand-in for Sniper: a trace-driven, cycle-level
 * superscalar out-of-order core with the first-order mechanisms the interval
 * model abstracts (thesis §2.1): a front-end pipeline with branch predictor
 * and I-cache, dispatch into ROB/IQ/LSQ, per-port issue with pipelined and
 * non-pipelined functional units, a load/store unit in front of the cache
 * hierarchy with L1D MSHRs, and in-order commit. It produces CPI stacks,
 * measured MLP, per-window CPI traces and activity factors.
 *
 * Being trace-driven, wrong-path instructions are not executed; a branch
 * misprediction instead stops instruction delivery until the branch resolves
 * plus the front-end refill time — the same first-order penalty real
 * machines pay (thesis Fig 2.4).
 */

#ifndef MIPP_SIM_OOO_CORE_HH
#define MIPP_SIM_OOO_CORE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/memory_hierarchy.hh"
#include "trace/trace.hh"
#include "uarch/activity.hh"
#include "uarch/core_config.hh"
#include "uarch/cpi_stack.hh"

namespace mipp {

/** Idealization switches used by model-validation experiments. */
struct SimOptions {
    bool perfectBranch = false;  ///< no mispredictions
    bool perfectICache = false;  ///< no instruction-fetch misses
    bool perfectDCache = false;  ///< every load hits L1D
    /** Committed-uop window for the per-window CPI series (phase plots). */
    size_t cpiWindowUops = 20000;
};

/** Everything one simulation produces. */
struct SimResult {
    uint64_t cycles = 0;
    uint64_t uops = 0;
    uint64_t instructions = 0;
    uint64_t branches = 0;
    uint64_t branchMispredicts = 0;

    CpiStack stack;          ///< cycles per component (sums to ~cycles)
    MemoryStats mem;
    ActivityCounts activity;

    /** Average outstanding DRAM loads over cycles with >= 1 outstanding. */
    double avgMlp = 1.0;
    /** Cycles with at least one outstanding DRAM load. */
    uint64_t dramCycles = 0;

    std::vector<double> windowCpi;  ///< uop-CPI per committed-uop window

    double cpiPerUop() const
    {
        return uops ? static_cast<double>(cycles) / uops : 0.0;
    }
    double cpiPerInst() const
    {
        return instructions ?
            static_cast<double>(cycles) / instructions : 0.0;
    }
    double ipc() const
    {
        return cycles ? static_cast<double>(uops) / cycles : 0.0;
    }
};

/** Run @p trace through a cycle-level core described by @p cfg. */
SimResult simulate(const Trace &trace, const CoreConfig &cfg,
                   const SimOptions &opts = {});

} // namespace mipp

#endif // MIPP_SIM_OOO_CORE_HH
