/**
 * @file
 * Branch direction predictors (thesis §3.5, Fig 3.10).
 *
 * Five classic organizations, each configured to a storage budget in bytes
 * (4 KB in the thesis): GAg, GAp, PAp, gshare and a GAp/PAp tournament.
 * These serve two roles: (1) inside the cycle-level reference simulator, and
 * (2) as the simulation side of the linear-branch-entropy training framework
 * that maps entropy to per-predictor miss rates (thesis Fig 3.8/3.9).
 */

#ifndef MIPP_SIM_BRANCH_PREDICTOR_HH
#define MIPP_SIM_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "uarch/core_config.hh"

namespace mipp {

/** Abstract branch direction predictor. */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /** Predict the direction of the branch at @p pc. */
    virtual bool predict(uint64_t pc) = 0;

    /** Train with the resolved direction. */
    virtual void update(uint64_t pc, bool taken) = 0;

    /** Convenience: predict, update, report correctness. */
    bool
    predictAndUpdate(uint64_t pc, bool taken)
    {
        bool hit = predict(pc) == taken;
        update(pc, taken);
        return hit;
    }

    /** Factory from a (kind, byte-budget) pair. */
    static std::unique_ptr<BranchPredictor>
    create(BranchPredictorKind kind, uint32_t bytes);
};

/** Saturating 2-bit counter table helper. */
class CounterTable
{
  public:
    explicit CounterTable(size_t entries)
        : counters_(entries, 2) {}

    bool taken(size_t i) const { return counters_[i % counters_.size()] >= 2; }

    void
    train(size_t i, bool taken)
    {
        auto &c = counters_[i % counters_.size()];
        if (taken && c < 3)
            ++c;
        else if (!taken && c > 0)
            --c;
    }

    size_t size() const { return counters_.size(); }

  private:
    std::vector<uint8_t> counters_;
};

/** GAg: one global history register indexing one global counter table. */
class GAgPredictor : public BranchPredictor
{
  public:
    explicit GAgPredictor(uint32_t bytes);
    bool predict(uint64_t pc) override;
    void update(uint64_t pc, bool taken) override;

  private:
    CounterTable table_;
    uint32_t histBits_;
    uint32_t hist_ = 0;
};

/** GAp: global history, per-branch counter tables (pc-concatenated index). */
class GApPredictor : public BranchPredictor
{
  public:
    explicit GApPredictor(uint32_t bytes);
    bool predict(uint64_t pc) override;
    void update(uint64_t pc, bool taken) override;

  private:
    size_t index(uint64_t pc) const;
    CounterTable table_;
    uint32_t histBits_;
    uint32_t pcBits_;
    uint32_t hist_ = 0;
};

/** PAp: per-branch local history indexing per-branch counter tables. */
class PApPredictor : public BranchPredictor
{
  public:
    explicit PApPredictor(uint32_t bytes);
    bool predict(uint64_t pc) override;
    void update(uint64_t pc, bool taken) override;

  private:
    size_t index(uint64_t pc) const;
    CounterTable table_;
    std::vector<uint16_t> localHist_;
    uint32_t histBits_;
    uint32_t pcBits_;
};

/** gshare: global history XOR pc. */
class GSharePredictor : public BranchPredictor
{
  public:
    explicit GSharePredictor(uint32_t bytes);
    bool predict(uint64_t pc) override;
    void update(uint64_t pc, bool taken) override;

  private:
    CounterTable table_;
    uint32_t histBits_;
    uint32_t hist_ = 0;
};

/** Tournament: GAp and PAp components with a global chooser. */
class TournamentPredictor : public BranchPredictor
{
  public:
    explicit TournamentPredictor(uint32_t bytes);
    bool predict(uint64_t pc) override;
    void update(uint64_t pc, bool taken) override;

  private:
    GApPredictor gap_;
    PApPredictor pap_;
    CounterTable chooser_;
    uint32_t hist_ = 0;
};

} // namespace mipp

#endif // MIPP_SIM_BRANCH_PREDICTOR_HH
