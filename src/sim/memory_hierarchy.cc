#include "sim/memory_hierarchy.hh"

#include <algorithm>
#include <cassert>

namespace mipp {

namespace {

/** Min-heap order for (ready cycle, line) prefetch entries. */
bool
heapLater(const std::pair<uint64_t, uint64_t> &a,
          const std::pair<uint64_t, uint64_t> &b)
{
    return a.first > b.first;
}

} // namespace

// --- Cache -------------------------------------------------------------------

Cache::Cache(const CacheConfig &cfg)
    : cfg_(cfg.normalized()),
      numSets_(std::max<uint32_t>(cfg_.numSets(), 1)),
      ways_(cfg_.associativity)
{
    sets_.resize(numSets_ * ways_);
}

bool
Cache::lookup(uint64_t line)
{
    Way *set = &sets_[setIndex(line) * ways_];
    for (size_t i = 0; i < ways_; ++i) {
        if (set[i].valid && set[i].line == line) {
            // Move to MRU position.
            Way hit = set[i];
            for (size_t j = i; j > 0; --j)
                set[j] = set[j - 1];
            set[0] = hit;
            return true;
        }
    }
    return false;
}

bool
Cache::peek(uint64_t line) const
{
    const Way *set = &sets_[setIndex(line) * ways_];
    for (size_t i = 0; i < ways_; ++i)
        if (set[i].valid && set[i].line == line)
            return true;
    return false;
}

std::optional<Cache::Victim>
Cache::insert(uint64_t line, bool dirty)
{
    Way *set = &sets_[setIndex(line) * ways_];
    // Already resident: refresh.
    for (size_t i = 0; i < ways_; ++i) {
        if (set[i].valid && set[i].line == line) {
            set[i].dirty |= dirty;
            Way hit = set[i];
            for (size_t j = i; j > 0; --j)
                set[j] = set[j - 1];
            set[0] = hit;
            return std::nullopt;
        }
    }
    std::optional<Victim> victim;
    Way &lru = set[ways_ - 1];
    if (lru.valid)
        victim = Victim{lru.line, lru.dirty};
    for (size_t j = ways_ - 1; j > 0; --j)
        set[j] = set[j - 1];
    set[0] = {line, true, dirty};
    return victim;
}

bool
Cache::markDirty(uint64_t line)
{
    Way *set = &sets_[setIndex(line) * ways_];
    for (size_t i = 0; i < ways_; ++i) {
        if (set[i].valid && set[i].line == line) {
            set[i].dirty = true;
            return true;
        }
    }
    return false;
}

bool
Cache::invalidate(uint64_t line)
{
    Way *set = &sets_[setIndex(line) * ways_];
    for (size_t i = 0; i < ways_; ++i) {
        if (set[i].valid && set[i].line == line) {
            set[i].valid = false;
            return set[i].dirty;
        }
    }
    return false;
}

std::vector<uint64_t>
Cache::residentLines() const
{
    std::vector<uint64_t> lines;
    for (const Way &w : sets_)
        if (w.valid)
            lines.push_back(w.line);
    return lines;
}

// --- MemoryHierarchy -----------------------------------------------------------

MemoryHierarchy::MemoryHierarchy(const CoreConfig &cfg)
    : cfg_(cfg), l1i_(cfg.l1i), l1d_(cfg.l1d), l2_(cfg.l2), l3_(cfg.l3)
{
}

uint32_t
MemoryHierarchy::busCycles(uint64_t now)
{
    uint64_t wait = busFreeAt_ > now ? busFreeAt_ - now : 0;
    busFreeAt_ = std::max(busFreeAt_, now) + cfg_.busTransferCycles;
    stats_.busWaitCycles += wait;
    return static_cast<uint32_t>(wait) + cfg_.busTransferCycles;
}

void
MemoryHierarchy::insertL2(uint64_t line)
{
    if (auto v = l2_.insert(line, false)) {
        if (v->dirty && !l3_.markDirty(v->line)) {
            // L2 victim absent from L3 (inclusion normally prevents
            // this): never drop dirty data silently.
            stats_.writebacks++;
            busFreeAt_ += cfg_.busTransferCycles;
        }
    }
}

void
MemoryHierarchy::fillShared(uint64_t line)
{
    // Inclusive fills: L3 evictions back-invalidate the inner levels; a
    // dirty copy at ANY level writes back (the inner copy is the newest
    // data — dropping it on back-invalidation would lose stores).
    if (auto v = l3_.insert(line, false)) {
        bool dirty = v->dirty;
        dirty |= l2_.invalidate(v->line);
        dirty |= l1d_.invalidate(v->line);
        dirty |= l1i_.invalidate(v->line);
        if (dirty) {
            stats_.writebacks++;
            busFreeAt_ += cfg_.busTransferCycles;
        }
        // The victim left the hierarchy entirely: a later demand hit on
        // it can only follow a fresh demand fill, which the prefetcher
        // gets no credit for.
        prefetchedLines_.erase(v->line);
    }
    insertL2(line);
}

void
MemoryHierarchy::writebackInner(uint64_t line)
{
    // A dirty L1 victim lands in L2; L2 may have evicted the line while
    // it sat in L1 (L2 victims do not back-invalidate L1), so fall back
    // to L3, then to an off-chip writeback.
    if (l2_.markDirty(line))
        return;
    if (l3_.markDirty(line))
        return;
    stats_.writebacks++;
    busFreeAt_ += cfg_.busTransferCycles;
}

void
MemoryHierarchy::fill(uint64_t line, bool dirty, bool ifetch)
{
    fillShared(line);
    Cache &l1 = ifetch ? l1i_ : l1d_;
    if (auto v = l1.insert(line, dirty)) {
        if (v->dirty)
            writebackInner(v->line);
    }
}

void
MemoryHierarchy::drainPrefetches(uint64_t now)
{
    while (!prefetchHeap_.empty() && prefetchHeap_.front().first <= now) {
        auto [ready, line] = prefetchHeap_.front();
        std::pop_heap(prefetchHeap_.begin(), prefetchHeap_.end(),
                      heapLater);
        prefetchHeap_.pop_back();
        auto it = inFlight_.find(line);
        if (it == inFlight_.end() || it->second != ready)
            continue; // stale: intercepted by a demand access
        inFlight_.erase(it);
        fillShared(line);
        // L3-resident from here until fillShared's eviction hook erases
        // it, so the set is bounded by the L3 capacity.
        prefetchedLines_.insert(line);
        stats_.prefetchesInstalled++;
    }
}

void
MemoryHierarchy::train(uint64_t pc, uint64_t addr, uint64_t now)
{
    if (!cfg_.prefetcherEnabled || cfg_.prefetcherEntries == 0)
        return;

    auto it = strideTable_.find(pc);
    if (it == strideTable_.end()) {
        // Limited table: evict the least recently used entry.
        if (strideTable_.size() >= cfg_.prefetcherEntries) {
            auto victim = strideTable_.begin();
            for (auto jt = strideTable_.begin(); jt != strideTable_.end();
                 ++jt) {
                if (jt->second.lastUse < victim->second.lastUse)
                    victim = jt;
            }
            strideTable_.erase(victim);
        }
        strideTable_[pc] = {addr, 0, 0, now};
        return;
    }

    StrideEntry &e = it->second;
    int64_t stride = static_cast<int64_t>(addr) -
                     static_cast<int64_t>(e.lastAddr);
    if (stride != 0 && stride == e.stride) {
        e.confidence = std::min(e.confidence + 1, 3);
    } else {
        e.stride = stride;
        e.confidence = 0;
    }
    e.lastAddr = addr;
    e.lastUse = now;

    if (e.confidence >= 1 && e.stride != 0) {
        // Prefetchers do not cross DRAM pages (thesis §4.9): strides of a
        // page or more always land on another page and are not prefetched.
        if (e.stride >= 4096 || e.stride <= -4096)
            return;
        uint64_t next = addr + e.stride;
        uint64_t nline = next / kLineSize;
        // Sub-line strides often target the line the demand access is
        // already fetching; prefetching it again is pure waste.
        if (nline == addr / kLineSize)
            return;
        if (!l1d_.peek(nline) && !l2_.peek(nline) && !l3_.peek(nline) &&
            !inFlight_.count(nline)) {
            uint32_t lat = cfg_.memLatency + busCycles(now);
            inFlight_[nline] = now + lat;
            prefetchHeap_.push_back({now + lat, nline});
            std::push_heap(prefetchHeap_.begin(), prefetchHeap_.end(),
                           heapLater);
            // The prefetch fetches from DRAM (issue requires the line to
            // be absent everywhere): account the off-chip traffic to the
            // prefetcher so power-model activity sees it, and mark the
            // line touched so a later demand miss is not misclassified
            // as cold.
            stats_.dramAccesses++;
            touched_.insert(nline);
            stats_.prefetchesIssued++;
        }
    }
}

HitLevel
MemoryHierarchy::peekLevel(uint64_t addr) const
{
    uint64_t line = addr / kLineSize;
    if (l1d_.peek(line))
        return HitLevel::L1;
    if (l2_.peek(line))
        return HitLevel::L2;
    if (l3_.peek(line))
        return HitLevel::L3;
    return HitLevel::Dram;
}

AccessResult
MemoryHierarchy::access(uint64_t addr, uint64_t pc, AccessKind kind,
                        uint64_t now)
{
    // Completed prefetches land in L2/L3 before the demand lookup, so a
    // timely prefetch turns this access into an ordinary L2 hit.
    drainPrefetches(now);

    uint64_t line = addr / kLineSize;
    AccessResult res;
    const bool is_store = kind == AccessKind::Store;
    const bool is_ifetch = kind == AccessKind::Ifetch;

    Cache &l1 = is_ifetch ? l1i_ : l1d_;
    LevelStats &l1s = is_ifetch ? stats_.l1i : stats_.l1d;

    auto count = [&](LevelStats &s, bool miss) {
        if (is_ifetch) {
            s.ifetchAccesses++;
            s.ifetchMisses += miss;
        } else if (is_store) {
            s.storeAccesses++;
            s.storeMisses += miss;
        } else {
            s.loadAccesses++;
            s.loadMisses += miss;
        }
    };

    bool l1_hit = l1.lookup(line);
    count(l1s, !l1_hit);
    if (l1_hit) {
        if (is_store)
            l1.markDirty(line);
        res.latency = l1.config().latency;
        res.level = HitLevel::L1;
        return res;
    }

    // Train the prefetcher on L1D demand misses.
    if (!is_ifetch)
        train(pc, addr, now);

    auto fill_l1 = [&]() {
        if (auto v = l1.insert(line, is_store && !is_ifetch)) {
            if (v->dirty)
                writebackInner(v->line);
        }
    };

    bool l2_hit = l2_.lookup(line);
    if (l2_hit) {
        count(stats_.l2, false);
        if (prefetchedLines_.erase(line)) {
            // First demand use of an installed prefetch.
            stats_.prefetchHits++;
            res.prefetched = true;
        }
        res.latency = l1.config().latency + l2_.config().latency;
        res.level = HitLevel::L2;
        fill_l1();
        return res;
    }

    // In-flight prefetch interception: the demand request merges with the
    // prefetch's outstanding fill, so it counts as an L2 *hit* (the L3 is
    // never probed, and the DRAM traffic was already accounted to the
    // prefetch at issue). Latency is partially or fully hidden.
    if (auto it = inFlight_.find(line); it != inFlight_.end()) {
        count(stats_.l2, false);
        uint64_t ready = it->second;
        inFlight_.erase(it); // heap entry goes stale; skipped on pop
        fill(line, is_store && !is_ifetch, is_ifetch);
        stats_.prefetchHits++;
        res.prefetched = true;
        res.level = HitLevel::L2;
        uint64_t remaining = ready > now ? ready - now : 0;
        res.latency = l1.config().latency +
                      std::max<uint64_t>(l2_.config().latency, remaining);
        return res;
    }
    count(stats_.l2, true);

    bool l3_hit = l3_.lookup(line);
    count(stats_.l3, !l3_hit);
    if (l3_hit) {
        if (prefetchedLines_.erase(line)) {
            // Prefetched into L2/L3, evicted from L2 before first use,
            // still served from the L3 thanks to the prefetch.
            stats_.prefetchHits++;
            res.prefetched = true;
        }
        res.latency = l1.config().latency + l3_.config().latency;
        res.level = HitLevel::L3;
        insertL2(line);
        fill_l1();
        return res;
    }

    // DRAM access.
    stats_.dramAccesses++;
    res.level = HitLevel::Dram;
    res.coldMiss = touched_.insert(line).second;
    if (!is_ifetch) {
        if (is_store) {
            stats_.coldStoreMisses += res.coldMiss;
            stats_.capacityStoreMisses += !res.coldMiss;
        } else {
            stats_.coldLoadMisses += res.coldMiss;
            stats_.capacityLoadMisses += !res.coldMiss;
        }
    }
    res.latency = l1.config().latency + cfg_.memLatency + busCycles(now);
    fill(line, is_store && !is_ifetch, is_ifetch);
    return res;
}

} // namespace mipp
