/**
 * @file
 * Per-workload evaluation cache: the profile-once / evaluate-many contract.
 *
 * The paper's central economics (thesis Ch. 6): a micro-architecture
 * independent profile is collected *once* per workload and then amortized
 * over an entire design-space exploration of thousands to millions of
 * design points. The plain `evaluateModel(profile, cfg)` entry point is a
 * pure function and rebuilds every intermediate from scratch on each call —
 * two StatStack objects, per-static-op chain weights, the branch miss
 * model, the virtual-load-stream MLP walk. Almost all of that work depends
 * only on the profile plus a *few discrete levels* of the configuration
 * (cache sizes, ROB sizes), not on the full design point, so across a
 * sweep it is recomputed hundreds of times with identical inputs.
 *
 * An EvalContext pins one Profile and memoizes those intermediates:
 *
 *  - the StatStack pair (combined data stream + instruction stream),
 *    built once per workload instead of once per design point;
 *  - `missRatio(histogram, cacheLines)` results, keyed by the histogram
 *    identity and the exact cache-size value — a design space has only a
 *    handful of distinct cache levels;
 *  - per-static-op serialized-LLC-hit chain weights and their per-window
 *    sums, keyed by the (L2, L3) size pair;
 *  - per-window critical-path interpolations, keyed by ROB size;
 *  - branch resolution times, keyed by the exact (width, ROB, latency,
 *    interval) inputs;
 *  - MLP estimates (the stride model's virtual-load-stream walk is the
 *    single most expensive part of an evaluation), keyed by the subset of
 *    configuration fields the MLP models actually read;
 *  - pretrained BranchMissModel instances, interned per predictor kind.
 *
 * Every memo key captures *all* inputs of the memoized computation, so a
 * cache hit returns the exact double the uncached computation would have
 * produced: `evaluateModel(ctx, cfg, mopts)` is bitwise identical to
 * `evaluateModel(ctx.profile(), cfg, mopts)` (the compat wrapper simply
 * builds a throwaway context). tests/test_eval_cache.cc proves this over
 * a grid of configurations and predictors.
 *
 * Contract and lifetime rules:
 *  - The Profile must outlive the EvalContext and must not be mutated
 *    while the context exists (histograms are referenced, not copied).
 *  - An EvalContext is NOT thread-safe; use one instance per thread.
 *    dse::sweep creates one per (workload, chunk) on the worker that
 *    processes the chunk.
 *  - Memory is bounded by the number of *distinct* levels queried, not by
 *    the number of design points evaluated.
 */

#ifndef MIPP_MODEL_EVAL_CACHE_HH
#define MIPP_MODEL_EVAL_CACHE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "model/interval_model.hh"
#include "statstack/statstack.hh"

namespace mipp {

struct PowerParams;

/**
 * Pretrained BranchMissModel interned per predictor kind: one immutable
 * process-wide instance per kind instead of a fresh construction per
 * model evaluation.
 */
const BranchMissModel &internedBranchModel(BranchPredictorKind kind);

/**
 * Average uop latency for a type-fraction mix, with the load latency
 * blended over the L1D hit/miss split (thesis §3.3). Single source of
 * truth for both the per-call evaluation path and the memoized
 * per-window dispatch limits.
 */
double mixAvgLatency(const std::array<double, kNumUopTypes> &frac,
                     const CoreConfig &cfg, double mrL1);

/** Dispatch limits honoring the base-component ablation level
 *  (thesis Fig 3.7). @p window truncates the dependence-limit window
 *  (0 = cfg.robSize); @p cp must be the chain length at that window. */
DispatchLimits ablatedLimits(
    const std::array<double, kNumUopTypes> &typeCounts, double cp,
    double avgLat, const CoreConfig &cfg, ModelOptions::BaseLevel level,
    double window = 0);

/** Memoized per-workload evaluation state (see file comment). */
class EvalContext
{
  public:
    /** @param p profile to pin; must outlive the context, unmutated. */
    explicit EvalContext(const Profile &p);

    EvalContext(const EvalContext &) = delete;
    EvalContext &operator=(const EvalContext &) = delete;

    const Profile &profile() const { return p_; }

    /** StatStack over the combined load+store reuse stream. */
    const StatStack &stats() const { return ss_; }
    /** StatStack over the instruction-fetch reuse stream. */
    const StatStack &instStats() const { return ssI_; }

    /** Memoized stats().missRatio(h, cacheLines). @p h must live inside
     *  the pinned profile (identity is part of the memo key). */
    double dataMissRatio(const LogHistogram &h, double cacheLines);

    /** Memoized instStats().missRatio(h, cacheLines). */
    double instMissRatio(const LogHistogram &h, double cacheLines);

    /**
     * Serialized-LLC-hit chain weights for one (L2, L3) size pair
     * (thesis §4.8 extension): per static op, its LLC-hit probability
     * times its load-dependence depth clamp; plus the per-window weighted
     * sums and the global per-load expectation the model consumes.
     */
    struct ChainWeights {
        /** Per Profile::memOps entry (stores stay 0). */
        std::vector<double> opWeight;
        /** Per Profile::windows entry: sum of opWeight * window count. */
        std::vector<double> windowSerial;
        /** Expected chained LLC hits per load, whole program. */
        double globalSerialHits = 0;
    };
    const ChainWeights &chainWeights(double l2Lines, double l3Lines);

    /** Per-window critical-path lengths interpolated to @p robSize
     *  (thesis Eq 5.2), one entry per Profile::windows element. */
    const std::vector<double> &windowCp(uint32_t robSize);

    /**
     * Per-window dispatch limits (Eq 3.10 with the ablation level
     * applied): the port-scheduling walk runs once per distinct
     * (pipeline, latency, L1D-behaviour) key instead of once per design
     * point. The key holds every input of the computation verbatim —
     * ports, FU pools, the latency table, ROB, width, ablation level and
     * the L1D miss ratio entering the average latency — so hits are
     * bitwise-exact replays. Entries are one per Profile::windows
     * element (windows without uops get default limits).
     */
    const std::vector<DispatchLimits> &
    windowLimits(const CoreConfig &cfg, ModelOptions::BaseLevel level,
                 double mrL1, uint32_t depWindow);

    /** Memoized branchResolutionTime (thesis Alg 3.2). */
    double branchResolution(const CoreConfig &cfg, double avgLat,
                            double uopsBetweenMispredicts);

    /**
     * Memoized MLP estimate (thesis Ch. 4). The key covers exactly the
     * configuration fields the selected MLP model reads, so e.g. a
     * pipeline-width sweep with the prefetcher disabled hits a single
     * entry. @p windowUops is the mispredict-interval-truncated overlap
     * window (0 = full ROB; ModelCalibration::mlpWindowFrac).
     */
    const MlpEstimate &mlpEstimate(const CoreConfig &cfg,
                                   const ModelOptions &opts,
                                   uint32_t windowUops);

    /**
     * Configuration-independent per-window statistics hoisted out of the
     * evaluation loop (structure-of-arrays over Profile::windows). Every
     * value is exactly the double the per-point computation would have
     * produced — these are pure functions of the pinned profile, computed
     * once and shared by the scalar and batched paths alike.
     */
    struct WindowStatics {
        std::vector<double> uops;        ///< w.uops() per window
        std::vector<double> maxUops;     ///< max(uops, 1.0)
        std::vector<double> insts;       ///< w.insts per window
        std::vector<double> entropyEff;  ///< min(1, branchEntropy * eNorm)
        std::vector<double> uopShare;    ///< uops / profiledUops (else 0)
        std::vector<double> loadCounts;  ///< uopCounts[Load] per window
        std::vector<double> loadFrac;    ///< loadCounts / uops (else 0)
        /** Per-window uop counts / fractions by type. */
        std::vector<std::array<double, kNumUopTypes>> counts, fracs;
        double eNorm = 1.0;  ///< global / mean per-window branch entropy
        std::array<double, kNumUopTypes> globalFrac{}, globalCounts{};
        double totalUops = 0, totalInsts = 0;
        double loads = 0, stores = 0, iAccesses = 0;
        double globalBranches = 0, globalEntropy = 0;
    };
    const WindowStatics &windowStatics();

  private:
    friend class BatchEval;
    struct RatioEntry {
        const LogHistogram *h;
        uint64_t linesBits;  ///< bit pattern of the double cacheLines
        double value;
    };
    double memoRatio(std::vector<RatioEntry> &memo, const StatStack &ss,
                     const LogHistogram &h, double cacheLines);

    struct ChainKey {
        uint64_t l2Bits, l3Bits;
        bool operator==(const ChainKey &) const = default;
    };
    struct ResolutionKey {
        uint32_t width, rob;
        uint64_t avgLatBits, niBits;
        bool operator==(const ResolutionKey &) const = default;
    };
    struct MlpKey {
        uint8_t mode;  ///< ModelOptions::MlpMode
        bool mshrs, prefetcher;
        uint32_t l3Lines, rob, mshrCount;
        /** Zero unless the prefetcher path is active (the only reader
         *  of width / memLatency / table size in the MLP models). */
        uint32_t prefetcherEntries, width, memLatency;
        /** Truncated overlap window (0 = full ROB) and the cold-miss
         *  shortfall injection fraction (bit pattern). */
        uint32_t windowUops;
        uint64_t coldInjectBits;
        bool operator==(const MlpKey &) const = default;
    };

    const Profile &p_;
    StatStack ss_;
    StatStack ssI_;

    std::vector<RatioEntry> dataRatios_, instRatios_;
    // Deques: grow-only memo tables handing out stable references.
    std::deque<std::pair<ChainKey, ChainWeights>> chains_;
    std::deque<std::pair<uint32_t, std::vector<double>>> windowCps_;
    std::vector<std::pair<ResolutionKey, double>> resolutions_;
    std::deque<std::pair<MlpKey, MlpEstimate>> mlps_;
    /** Limits keyed by the full input material (exact compare, no
     *  hashing: a silent collision would silently corrupt results). */
    std::deque<std::pair<std::vector<uint64_t>, std::vector<DispatchLimits>>>
        windowLimits_;
    WindowStatics statics_;
    bool staticsBuilt_ = false;
};

class StrideMlpCache;

/**
 * Batched structure-of-arrays evaluator over one pinned (EvalContext,
 * ModelOptions) pair — the hot engine behind SweepMode::ModelOnlyPareto.
 *
 * An EvalContext alone already amortizes profile-level work, but its memo
 * lookups were designed for correctness-first auditability: per-point key
 * vectors rebuilt and linearly scanned on every evaluation, and per-point
 * reconstruction of the stride-MLP virtual load stream per distinct key.
 * BatchEval pins the options up front and layers batch-grade machinery on
 * top: hashed memo lookups with exact-key confirmation (a hash bucket
 * narrows the scan; the full key compare still decides, so collisions
 * cannot corrupt results), a StrideMlpCache that rebuilds only the miss
 * walk instead of the whole load stream, port/FU sub-memos shared across
 * dispatch-limit keys, chain weights combined from per-cache-size miss
 * ratio vectors, and per-branch-model window miss counts.
 *
 * Everything here is a bitwise-exact replay of the scalar path:
 * evaluateOne(cfg) equals evaluateModel(ctx, cfg, opts) field for field
 * (tests/test_eval_cache.cc proves it over the thesis grid). The class is
 * not thread-safe; use one instance per worker, like EvalContext.
 */
class BatchEval
{
  public:
    BatchEval(EvalContext &ec, const ModelOptions &opts);
    ~BatchEval();

    BatchEval(const BatchEval &) = delete;
    BatchEval &operator=(const BatchEval &) = delete;

    /** Sweep-facing result of one design point. */
    struct Output {
        double modelCpi = 0;
        double modelWatts = 0;
    };

    /**
     * Evaluate @p n configurations into @p out. When @p power is non-null
     * it must hold n precomputed powerParams(cfgs[i]) entries (sharing
     * them across workloads skips the voltage/leakage pow() chain);
     * otherwise the power parameters are derived per point.
     */
    void evaluate(const CoreConfig *cfgs, size_t n, Output *out,
                  const PowerParams *power = nullptr);

    /** Full single-point evaluation (parity tests / inspection). The
     *  reference stays valid until the next evaluate*/
    const ModelResult &evaluateOne(const CoreConfig &cfg);

    EvalContext &context() { return ec_; }
    const ModelOptions &options() const { return opts_; }

    // --- fast memo lookups consumed by the shared evaluation core ---

    /** The nine miss ratios of a design point's cache hierarchy. */
    struct Ratios {
        double l1, l2, l3;  ///< data-load stream
        double s1, s2, s3;  ///< store stream
        double i1, i2, i3;  ///< instruction stream
    };
    const Ratios &ratios(const CoreConfig &cfg);

    /** Global + per-window dispatch limits under one memo key. */
    struct LimitsEntry {
        DispatchLimits global;
        std::vector<DispatchLimits> windows;
    };
    const LimitsEntry &limits(const CoreConfig &cfg, double mrL1,
                              uint32_t depWindow);

    const MlpEstimate &mlpEstimate(const CoreConfig &cfg,
                                   uint32_t windowUops);

    const EvalContext::ChainWeights &chainWeights(double l2Lines,
                                                  double l3Lines);

    /** Memoized branch resolution time with a last-key shortcut. */
    double branchResolution(const CoreConfig &cfg, double avgLat,
                            double uopsBetweenMispredicts);

    /** Memoized profile().chains.cp(depWindow). */
    double globalCp(uint32_t depWindow);

    /** bm.missRate(entropyEff[wi]) * branches per window, memoized per
     *  interned branch model (identity key: models are pinned). */
    const std::vector<double> &windowBranchMisses(const BranchMissModel &bm);
    /** Memoized bm.missRate(profile().branch.entropy()). */
    double globalMissRate(const BranchMissModel &bm);

  private:
    /** Miss ratios keyed on the packed (L1D, L2, L3, L1I) line counts. */
    struct RatioSlot {
        uint64_t k0, k1;
        Ratios r;
    };
    /** Port-scheduling walk results keyed on the issue-port signature:
     *  the walk reads only the per-window uop counts (profile) and the
     *  eligible-port sets, so one entry serves every width/ROB/cache
     *  variation sharing a port layout. */
    struct PortsEntry {
        std::vector<uint64_t> key;  ///< canIssue mask per port
        double globalMaxAct = 0;
        std::vector<double> windowMaxAct;
    };
    /** FU rate folds keyed on the (FU pools, latency table) signature. */
    struct FuEntry {
        std::vector<uint64_t> key;
        double globalMinRate = 0;
        std::vector<double> windowMinRate;
    };
    struct MlpSlot {
        EvalContext::MlpKey key;
        MlpEstimate est;
    };
    /** Per-branch-model derived rates (identity keyed: models are either
     *  process-interned or pinned inside opts_). */
    struct BranchSlot {
        const BranchMissModel *bm;
        double globalRate = 0;
        std::vector<double> windowMisses;
    };
    /**
     * Bitwise-exact replay of DependenceChains::interpolate with the
     * per-bracket fit constants precomputed: a and b are pure functions
     * of the profiled nodes, leaving one log() per evaluation. Feeds the
     * branch-resolution leaky-bucket walk (thesis Alg 3.2), whose inner
     * loop otherwise dominates cold resolution lookups.
     */
    struct ChainInterp {
        bool empty = true;
        bool single = false;
        double singleValue = 0;
        std::vector<double> hiSizes;  ///< robSizes[hi] per bracket
        struct Seg {
            double a = 0, b = 0;
            bool zero = false;  ///< y0 == 0 && y1 == 0 fallback
        };
        std::vector<Seg> segs;

        void build(const DependenceChains &chains, bool useAbp);
        double eval(double rob) const;
    };

    void buildLimitsKey(const CoreConfig &cfg, uint32_t depWindow,
                        uint64_t mrL1Bits);
    LimitsEntry buildLimits(const CoreConfig &cfg, double mrL1,
                            uint32_t depWindow);
    const PortsEntry &portsEntry(const CoreConfig &cfg);
    const FuEntry &fuEntry(const CoreConfig &cfg);
    const std::vector<double> &opRatios(double lines);
    BranchSlot &branchSlot(const BranchMissModel &bm);
    double fastResolutionTime(const CoreConfig &cfg, double avgLat,
                              double uopsBetweenMispredicts) const;

    EvalContext &ec_;
    ModelOptions opts_;
    ModelResult scratch_;

    std::unique_ptr<StrideMlpCache> strideCache_;

    std::vector<RatioSlot> ratioTable_;
    std::deque<std::pair<std::vector<uint64_t>, LimitsEntry>> limitsTable_;
    std::unordered_map<uint64_t, std::vector<uint32_t>> limitsBuckets_;
    std::vector<uint64_t> keyBuf_;
    const LimitsEntry *lastLimits_ = nullptr;
    std::vector<uint64_t> lastLimitsKey_;
    std::deque<PortsEntry> portsTable_;
    std::deque<FuEntry> fuTable_;
    std::deque<MlpSlot> mlpTable_;
    std::deque<std::pair<EvalContext::ChainKey, EvalContext::ChainWeights>>
        chainTable_;
    /** Per-(cache lines) miss ratio across static ops, load ops only. */
    std::deque<std::pair<uint64_t, std::vector<double>>> opRatioTable_;
    std::vector<double> depClamp_;  ///< per static op, profile-only
    double loadsSeen_ = 0;
    bool depClampBuilt_ = false;
    std::vector<std::pair<uint32_t, double>> globalCps_;
    std::deque<BranchSlot> branchTable_;
    ChainInterp cpInterp_, abpInterp_;
    std::vector<std::pair<EvalContext::ResolutionKey, double>> resTable_;
    EvalContext::ResolutionKey lastResKey_{};
    double lastResValue_ = 0;
    bool lastResValid_ = false;
};

/**
 * Evaluate the interval model through a memoized per-workload context.
 * Bitwise identical to evaluateModel(ctx.profile(), cfg, opts); the
 * repeated-evaluation cost across a design-space sweep drops by the
 * memo hit rate (see bench/bench_dse_sweep.cc).
 */
ModelResult evaluateModel(EvalContext &ctx, const CoreConfig &cfg,
                          const ModelOptions &opts = {});

/**
 * Shared evaluation core behind evaluateModel and BatchEval: fills @p res
 * in place (clearing reused buffers) so batch loops can recycle one
 * ModelResult. When @p fast is non-null its hashed memos replace the
 * EvalContext lookups; the values are bitwise identical either way.
 */
void evaluateModelInto(EvalContext &ctx, const CoreConfig &cfg,
                       const ModelOptions &opts, ModelResult &res,
                       BatchEval *fast = nullptr);

} // namespace mipp

#endif // MIPP_MODEL_EVAL_CACHE_HH
