/**
 * @file
 * Memory-level parallelism models (thesis Ch. 4).
 *
 * Two alternatives estimate how many long-latency loads overlap:
 *
 *  - The *cold-miss* MLP model (§4.4, Eq 4.1-4.3) assumes miss bursts are
 *    driven by cold misses, whose per-ROB burstiness is profiled directly,
 *    while capacity/conflict misses spread uniformly.
 *  - The *stride* MLP model (§4.5) rebuilds a virtual load stream per
 *    micro-trace from load-spacing and stride distributions, marks misses
 *    with StatStack, imposes inter-load dependences, and walks ROB-sized
 *    windows over it. It extends to MSHR limits (§4.6, Eq 4.4) and a
 *    per-PC stride prefetcher (§4.9, Eq 4.13).
 *
 * Both are pure functions of the micro-architecture independent profile
 * plus a core configuration.
 */

#ifndef MIPP_MODEL_MLP_MODEL_HH
#define MIPP_MODEL_MLP_MODEL_HH

#include <vector>

#include "profiler/profile.hh"
#include "statstack/statstack.hh"
#include "uarch/core_config.hh"

namespace mipp {

/** Per-window (micro-trace) memory-parallelism estimates. */
struct WindowMlp {
    double dramMisses = 0;   ///< LLC load misses in the micro-trace
    double latWeighted = 0;  ///< misses weighted by prefetch-reduced latency
    double mlp = 0;          ///< independent misses per dirty ROB window
};

/** Aggregated MLP-model output. */
struct MlpEstimate {
    /** Effective MLP >= 1 (already MSHR-capped). */
    double mlp = 1.0;
    /** Total LLC load misses across the modeled stream. */
    double dramMisses = 0;
    /** Misses weighted by residual latency after prefetching (== misses
     *  when prefetching is off). */
    double latWeighted = 0;
    /** Per profile-window detail (stride model only). */
    std::vector<WindowMlp> windows;
};

/** Knobs shared by both models. */
struct MlpOptions {
    bool modelMshrs = true;
    bool modelPrefetcher = true;  ///< honored if cfg.prefetcherEnabled
    /** Shift the StatStack-average misses towards windows with profiled
     *  cold-miss bursts (thesis §4.4 burstiness observation). */
    bool redistributeCold = false;
    /**
     * Effective instruction-window size for the overlap walk; 0 uses
     * cfg.robSize. The recalibrated model truncates it to the mispredict
     * interval: misses separated by a mispredicted branch cannot overlap
     * because the stopped front end never brings the second miss into
     * the window (ModelCalibration::mlpWindowFrac).
     */
    uint32_t windowUops = 0;
    /**
     * Fraction of the marked-miss shortfall to re-inject (stride model).
     * Per-static-op error diffusion drops expected misses that never
     * accumulate to a whole miss per op — the scattered cold/footprint
     * misses of low-miss workloads. The injected misses carry the
     * profiled cold-burst MLP (ModelCalibration::coldInject).
     */
    double coldInject = 0.0;
};

/**
 * Cold-miss MLP model (thesis §4.4). Operates on whole-profile statistics;
 * misses are scaled to profiled loads.
 */
MlpEstimate coldMissMlp(const Profile &p, const CoreConfig &cfg,
                        const StatStack &ss, const MlpOptions &opt = {});

/** Stride-MLP model (thesis §4.5-4.6, 4.9). Per-micro-trace evaluation. */
MlpEstimate strideMlp(const Profile &p, const CoreConfig &cfg,
                      const StatStack &ss, const MlpOptions &opt = {});

/**
 * Factored stride-MLP evaluator for batched sweeps. strideMlp() rebuilds
 * and sorts the virtual load stream per call, but most of that work is
 * configuration independent: the event positions and the sort permutation
 * depend only on the profile, and the StatStack miss marking depends only
 * on the LLC line count (and the cold-redistribution knob). This cache
 * builds the stream skeleton once per profile and the marked miss events
 * once per distinct (LLC lines, redistributeCold), so estimate() only
 * replays the per-window overlap walk over the *misses*.
 *
 * estimate(cfg, opt) is bitwise-identical to strideMlp(p, cfg, ss, opt):
 * every floating-point operation that feeds a result runs in the same
 * order on the same values (the bucket walk's position comparisons and
 * accumulation order are replayed exactly; skipped non-miss events never
 * contributed arithmetic).
 */
class StrideMlpCache {
  public:
    StrideMlpCache(const Profile &p, const StatStack &ss);

    MlpEstimate estimate(const CoreConfig &cfg, const MlpOptions &opt);

  private:
    /** Configuration-independent per-static-op inputs. */
    struct OpStatics {
        double depth = 1;
        double gap = 1;          ///< max(avgGap, 1)
        bool isLoad = false;
        bool chase = false;
        bool serialChain = false;
        bool stridedInPage = false;  ///< prefetchable if enabled+tracked
    };
    /** A marked LLC miss of the sorted virtual load stream. */
    struct MissEvent {
        double pos;
        uint32_t opIdx;
    };
    /** Per-profile-window stream skeleton (positions + sort order). */
    struct WindowSkeleton {
        std::vector<uint32_t> buildOp;  ///< op per event, build order
        std::vector<double> buildPos;
        std::vector<uint32_t> perm;     ///< sorted rank -> build index
        double maxPos = 0;              ///< last sorted pos + 1
    };
    /** Miss marking for one (LLC lines, redistributeCold) pair. */
    struct L3State {
        uint32_t l3Lines = 0;
        bool redistributeCold = false;
        double mrLlcGlobal = 0;
        double expTotal = 0;
        std::vector<double> mrLlc;      ///< per op
        std::vector<double> indepProb;  ///< per op
        std::vector<std::vector<MissEvent>> missEvents;  ///< per window
    };

    const L3State &l3State(uint32_t l3Lines, bool redistributeCold);

    const Profile &p_;
    const StatStack &ss_;
    std::vector<OpStatics> ops_;
    std::vector<WindowSkeleton> windows_;
    std::vector<L3State> l3States_;
    uint32_t staticLoads_ = 0;
    double coldAvg_ = 0;
    double coldTotal_ = 0;
    double uopsTotal_ = 0;
};

/**
 * MSHR cap (thesis Eq 4.4, batch form): @p misses concurrent misses with
 * @p rawMlp dependence-limited parallelism drain in ceil(m/mshrs)
 * serialized batches.
 */
double mshrCappedMlp(double rawMlp, double misses, uint32_t mshrs);

/**
 * Average memory-bus cycles per access for MLP' concurrent accesses
 * (thesis Eq 4.5): (MLP' + 1)/2 * transfer.
 */
double busCycles(double mlpPrime, uint32_t transferCycles);

/** Store-traffic rescaled MLP' for bus contention (thesis Eq 4.6). */
double busMlp(double mlp, double llcLoadMisses, double llcStoreMisses);

} // namespace mipp

#endif // MIPP_MODEL_MLP_MODEL_HH
