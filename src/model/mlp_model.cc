#include "model/mlp_model.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <numeric>

namespace mipp {

double
mshrCappedMlp(double rawMlp, double misses, uint32_t mshrs)
{
    rawMlp = std::max(rawMlp, 1.0);
    if (mshrs == 0 || rawMlp <= mshrs)
        return rawMlp;
    // Thesis Eq 4.4, batch form: misses beyond the MSHR count wait for a
    // full access of the bursty batch ahead of them, so m misses drain in
    // ceil(m / mshrs) serialized batches. The effective overlap is the
    // miss count divided by the batch count, hard-capped by the MSHRs.
    double batches = std::ceil(std::max(misses, rawMlp) / mshrs);
    double eff = std::max(misses, rawMlp) / std::max(batches, 1.0);
    return std::clamp(eff, 1.0, std::min(rawMlp, double(mshrs)));
}

double
busCycles(double mlpPrime, uint32_t transferCycles)
{
    mlpPrime = std::max(mlpPrime, 1.0);
    return (mlpPrime + 1.0) / 2.0 * transferCycles;
}

double
busMlp(double mlp, double llcLoadMisses, double llcStoreMisses)
{
    if (llcLoadMisses <= 0)
        return mlp;
    return mlp * (llcLoadMisses + llcStoreMisses) / llcLoadMisses;
}

MlpEstimate
coldMissMlp(const Profile &p, const CoreConfig &cfg, const StatStack &ss,
            const MlpOptions &opt)
{
    MlpEstimate est;
    const uint32_t window = opt.windowUops > 0 ?
        std::min(opt.windowUops, cfg.robSize) : cfg.robSize;
    const size_t ri = p.robIndex(window);

    const double llcLines = cfg.l3.numLines();
    const double mrLlc = ss.missRatio(p.reuseLoads, llcLines);
    const double totalLoads = static_cast<double>(p.reuseLoads.total());
    const double misses = mrLlc * totalLoads;
    const double coldMisses =
        std::min<double>(p.cold.coldLoadMisses, misses);
    const double cfMisses = std::max(misses - coldMisses, 0.0);
    const double mrCf = totalLoads > 0 ? cfMisses / totalLoads : 0;
    est.dramMisses = misses;
    est.latWeighted = misses;
    if (misses <= 0)
        return est;

    // Average loads per effective instruction window.
    const double loadFrac = p.uopFraction(UopType::Load);
    const double loadsPerRob = loadFrac * window;
    const double coldPerDirtyRob = p.cold.coldPerDirtyWindow(ri);

    // Independence via the inter-load dependence distribution f(l):
    // a depth-l load miss is independent iff its l-1 predecessors hit.
    double mlpCold = 0, mlpCf = 0;
    for (int l = 1; l <= LoadDepProfile::kMaxDepth; ++l) {
        double f = p.loadDeps.f(ri, l);
        double indep = std::pow(1.0 - mrLlc, l - 1) * f;
        mlpCold += indep * coldPerDirtyRob;
        mlpCf += indep * mrCf * loadsPerRob;
    }

    double mlp = 1.0;
    if (misses > 0)
        mlp = (cfMisses * std::max(mlpCf, 1.0) +
               coldMisses * std::max(mlpCold, 1.0)) / misses;

    if (opt.modelMshrs) {
        double missesPerRob = mrLlc * loadsPerRob;
        mlp = mshrCappedMlp(mlp, std::max(missesPerRob, mlp), cfg.mshrs);
    }
    est.mlp = std::max(mlp, 1.0);
    return est;
}

namespace {

/** One event of the reconstructed virtual load stream (thesis §4.5). */
struct VirtualLoad {
    double pos;        ///< uop position within the micro-trace
    uint32_t opIdx;    ///< static-load index
    bool miss;         ///< predicted LLC miss
    double latFactor;  ///< residual latency fraction after prefetching
};

/** Per static-op modeling state reused across windows. */
struct OpModel {
    double mrLlc = 0;       ///< per-access LLC miss ratio (StatStack)
    double indepProb = 1;   ///< (1 - M_pred)^(depth-1)
    double depth = 1;       ///< average load-dependence depth
    bool chase = false;     ///< address recycled through a register chain
    bool prefetchable = false;
    double prefetchFactor = 1.0;  ///< residual latency fraction
    double missAcc = 0;     ///< error-diffusion accumulator

    /** Member of a long register-recycled chain whose misses serialize. */
    bool serialChain() const { return chase && depth >= 3.0; }
};

} // namespace

MlpEstimate
strideMlp(const Profile &p, const CoreConfig &cfg, const StatStack &ss,
          const MlpOptions &opt)
{
    MlpEstimate est;
    const double llcLines = cfg.l3.numLines();
    const double mrLlcGlobal = ss.missRatio(p.reuseLoads, llcLines);
    const double mtSize = static_cast<double>(p.sampling.microTraceSize);
    const bool prefetch = opt.modelPrefetcher && cfg.prefetcherEnabled;
    // Overlap window: the ROB, truncated to the mispredict interval when
    // the caller models the front-end stop at mispredicted branches.
    const uint32_t window = opt.windowUops > 0 ?
        std::min(opt.windowUops, cfg.robSize) : cfg.robSize;

    // Per-op derived model inputs.
    std::vector<OpModel> ops(p.memOps.size());
    uint32_t staticLoads = 0;
    for (size_t i = 0; i < p.memOps.size(); ++i) {
        const StaticMemProfile &sp = p.memOps[i];
        if (sp.isStore)
            continue;
        staticLoads++;
        OpModel &m = ops[i];
        m.mrLlc = ss.missRatio(sp.reuse, llcLines);
        m.chase = sp.isPointerChase();
        m.depth = std::max(sp.avgLoadDepth(), 1.0);
        // Independence through the load dependence chain: a miss only
        // overlaps with others if its (depth-1) predecessor loads hit
        // (thesis Eq 4.1). Predecessors of a register-recycled (chase)
        // chain are instances of the chain itself, so they miss at the
        // op's own rate; otherwise at the population rate.
        double mrPred = m.chase ?
            std::max(mrLlcGlobal, m.mrLlc) : mrLlcGlobal;
        m.indepProb = std::pow(
            std::clamp(1.0 - mrPred, 0.0, 1.0), m.depth - 1.0);

        if (prefetch && !m.chase) {
            StrideClass sc = sp.strideClass();
            bool strided = sc == StrideClass::SingleStride ||
                           sc == StrideClass::TwoStride ||
                           sc == StrideClass::ThreeStride ||
                           sc == StrideClass::FourStride;
            if (strided) {
                auto dom = sp.dominantStrides();
                bool inPage = !dom.empty() &&
                              std::llabs(dom.front()) < 4096;
                m.prefetchable = inPage;
                if (m.prefetchable) {
                    // Timeliness, thesis Eq 4.13: a prefetch launched one
                    // recurrence (avgGap uops) ahead hides gap/D cycles.
                    double gap = std::max(sp.avgGap(), 1.0);
                    if (gap >= cfg.robSize) {
                        m.prefetchFactor = 0.0;
                    } else {
                        double hidden = gap / cfg.dispatchWidth;
                        m.prefetchFactor = std::max(
                            0.0, (cfg.memLatency - hidden) /
                                     cfg.memLatency);
                    }
                }
            }
        }
    }
    // A prefetcher can only track a limited number of static loads
    // (thesis Fig 4.10): with more loads than table entries, training
    // state is evicted between recurrences and nothing is prefetched.
    bool tableHolds = staticLoads <= cfg.prefetcherEntries;

    double serialTime = 0;   // sum over windows of misses/MLP
    double totalMisses = 0;
    double totalWeighted = 0;

    // Cold misses cluster in time (thesis §4.4): per-window profiled cold
    // counts redistribute the StatStack-average misses towards the windows
    // that actually saw first touches.
    double coldAvg = 0;
    if (!p.windows.empty()) {
        for (const auto &w : p.windows)
            coldAvg += w.coldMisses;
        coldAvg /= p.windows.size();
    }
    // Two passes: first compute per-window expected misses and the
    // cold-shifted estimates, then renormalize so the whole-program miss
    // count still matches StatStack.
    std::vector<double> expMissesW(p.windows.size(), 0.0);
    std::vector<double> adjMissesW(p.windows.size(), 0.0);
    double expTotal = 0, adjTotal = 0;
    for (size_t wi = 0; wi < p.windows.size(); ++wi) {
        const WindowProfile &w = p.windows[wi];
        double exp = 0;
        for (const auto &[opIdx, count] : w.memCounts) {
            if (!p.memOps[opIdx].isStore)
                exp += count * ops[opIdx].mrLlc;
        }
        expMissesW[wi] = exp;
        adjMissesW[wi] =
            std::max(0.0, exp + (w.coldMisses - coldAvg));
        expTotal += exp;
        adjTotal += adjMissesW[wi];
    }
    const double renorm = adjTotal > 1e-9 ? expTotal / adjTotal : 1.0;

    // One stream buffer reused across windows: the rebuild runs once per
    // (profile, config) evaluation and its allocations showed up in
    // DSE-sweep profiles.
    std::vector<VirtualLoad> stream;
    est.windows.reserve(p.windows.size());
    for (size_t wi = 0; wi < p.windows.size(); ++wi) {
        const WindowProfile &w = p.windows[wi];
        double factor = (opt.redistributeCold && expMissesW[wi] > 1e-9) ?
            adjMissesW[wi] * renorm / expMissesW[wi] : 1.0;

        // (1) Rebuild the virtual load stream from spacing + counts.
        stream.clear();
        for (const auto &[opIdx, count] : w.memCounts) {
            const StaticMemProfile &sp = p.memOps[opIdx];
            if (sp.isStore)
                continue;
            OpModel &m = ops[opIdx];
            double first = std::min(sp.avgFirstPos(), mtSize - 1.0);
            double gap = std::max(sp.avgGap(), 1.0);
            double missProb = std::min(m.mrLlc * factor, 1.0);
            for (uint32_t k = 0; k < count; ++k) {
                VirtualLoad v;
                v.pos = first + k * gap;
                v.opIdx = opIdx;
                // (2) Deterministic error-diffusion miss marking keeps
                // per-op totals equal to the StatStack prediction while
                // preserving the op's periodic miss pattern.
                m.missAcc += missProb;
                v.miss = m.missAcc >= 1.0;
                if (v.miss)
                    m.missAcc -= 1.0;
                v.latFactor =
                    (m.prefetchable && tableHolds) ? m.prefetchFactor : 1.0;
                stream.push_back(v);
            }
        }
        if (stream.empty()) {
            est.windows.push_back({});
            continue;
        }
        std::sort(stream.begin(), stream.end(),
                  [](const VirtualLoad &a, const VirtualLoad &b) {
                      return a.pos < b.pos;
                  });

        // (3) Step effective-window-sized windows over the stream.
        WindowMlp wm;
        double serialTimeW = 0;
        double maxPos = stream.back().pos + 1;
        size_t cursor = 0;
        for (double lo = 0; lo < maxPos; lo += window) {
            double hi = lo + window;
            double misses = 0, weighted = 0;
            double serialMisses = 0;   // on deep dependence chains
            double indepParallel = 0;  // parallelism of the free misses
            while (cursor < stream.size() && stream[cursor].pos < hi) {
                const VirtualLoad &v = stream[cursor++];
                OpModel &m = ops[v.opIdx];
                if (!v.miss)
                    continue;
                misses += 1;
                weighted += v.latFactor;
                if (m.serialChain())
                    serialMisses += 1;
                else
                    indepParallel += m.indepProb;
            }
            if (misses <= 0)
                continue;
            // Serial-time view: misses on deep dependence chains occupy
            // one latency "slot" each, back to back; the remaining misses
            // overlap among themselves (indepParallel lanes) and with the
            // serial span. Window drain time in units of one memory
            // latency, and the effective MLP from it:
            double freeMisses = misses - serialMisses;
            double parTime = freeMisses / std::max(indepParallel, 1.0);
            double time = std::max({serialMisses, parTime, 1.0});
            double mlp = std::max(misses / time, 1.0);
            if (opt.modelMshrs)
                mlp = mshrCappedMlp(mlp, misses, cfg.mshrs);
            wm.dramMisses += misses;
            wm.latWeighted += weighted;
            serialTimeW += weighted / mlp;
        }
        // Per-window MLP as the latency-weighted harmonic mean over the
        // walked sub-windows: latWeighted / mlp then reproduces the
        // window's serialized drain time exactly (the global est.mlp has
        // always been this quotient; the per-window value used to be an
        // arithmetic miss-weighted mean, slightly over-weighting bursty
        // sub-windows).
        wm.mlp = serialTimeW > 0 ? wm.latWeighted / serialTimeW : 0;
        serialTime += serialTimeW;
        totalMisses += wm.dramMisses;
        totalWeighted += wm.latWeighted;
        est.windows.push_back(wm);
    }

    // (4) Re-inject the marking shortfall (ModelCalibration::coldInject).
    // Per-op error diffusion preserves totals op by op, but every op whose
    // expected misses in the *sampled* stream stay below one whole miss
    // contributes nothing — on low-miss-rate workloads that is the entire
    // scattered cold/footprint population and the DRAM component collapses
    // to zero. Re-inject the shortfall, spread over the profile windows by
    // their profiled cold-miss counts, at the profiled cold-burst MLP
    // (thesis §4.4), MSHR-capped like every other overlap estimate.
    double shortfall = std::max(expTotal - totalMisses, 0.0);
    double inject = opt.coldInject * shortfall;
    if (inject > 1e-9 && !est.windows.empty()) {
        double coldTotal = 0, uopsTotal = 0;
        for (const auto &w : p.windows) {
            coldTotal += w.coldMisses;
            uopsTotal += w.uops();
        }
        const size_t ri = p.robIndex(window);
        double burst = std::max(p.cold.coldPerDirtyWindow(ri), 1.0);
        double mlpInj = opt.modelMshrs ?
            mshrCappedMlp(burst, burst, cfg.mshrs) : burst;
        for (size_t wi = 0; wi < est.windows.size(); ++wi) {
            double share = coldTotal > 0 ?
                p.windows[wi].coldMisses / coldTotal :
                (uopsTotal > 0 ? p.windows[wi].uops() / uopsTotal : 0.0);
            double add = inject * share;
            if (add <= 0)
                continue;
            WindowMlp &wm = est.windows[wi];
            double timeW = wm.mlp > 0 ? wm.latWeighted / wm.mlp : 0;
            wm.dramMisses += add;
            wm.latWeighted += add;   // cold misses are not prefetchable
            timeW += add / mlpInj;
            wm.mlp = timeW > 0 ? wm.latWeighted / timeW : 0;
            totalMisses += add;
            totalWeighted += add;
            serialTime += add / mlpInj;
        }
    }

    est.dramMisses = totalMisses;
    est.latWeighted = totalWeighted;
    est.mlp = serialTime > 0 ?
        std::max(totalWeighted / serialTime, 1.0) : 1.0;
    return est;
}

StrideMlpCache::StrideMlpCache(const Profile &p, const StatStack &ss)
    : p_(p), ss_(ss)
{
    const double mtSize = static_cast<double>(p.sampling.microTraceSize);

    ops_.resize(p.memOps.size());
    for (size_t i = 0; i < p.memOps.size(); ++i) {
        const StaticMemProfile &sp = p.memOps[i];
        if (sp.isStore)
            continue;
        staticLoads_++;
        OpStatics &m = ops_[i];
        m.isLoad = true;
        m.chase = sp.isPointerChase();
        m.depth = std::max(sp.avgLoadDepth(), 1.0);
        m.gap = std::max(sp.avgGap(), 1.0);
        m.serialChain = m.chase && m.depth >= 3.0;
        if (!m.chase) {
            StrideClass sc = sp.strideClass();
            bool strided = sc == StrideClass::SingleStride ||
                           sc == StrideClass::TwoStride ||
                           sc == StrideClass::ThreeStride ||
                           sc == StrideClass::FourStride;
            if (strided) {
                auto dom = sp.dominantStrides();
                m.stridedInPage = !dom.empty() &&
                                  std::llabs(dom.front()) < 4096;
            }
        }
    }

    if (!p.windows.empty()) {
        for (const auto &w : p.windows)
            coldAvg_ += w.coldMisses;
        coldAvg_ /= p.windows.size();
    }
    for (const auto &w : p.windows) {
        coldTotal_ += w.coldMisses;
        uopsTotal_ += w.uops();
    }

    // Stream skeleton: event positions and the sorted order are pure
    // functions of the profile, so build (and sort) them exactly once.
    windows_.resize(p.windows.size());
    for (size_t wi = 0; wi < p.windows.size(); ++wi) {
        const WindowProfile &w = p.windows[wi];
        WindowSkeleton &sk = windows_[wi];
        for (const auto &[opIdx, count] : w.memCounts) {
            const StaticMemProfile &sp = p.memOps[opIdx];
            if (sp.isStore)
                continue;
            double first = std::min(sp.avgFirstPos(), mtSize - 1.0);
            double gap = ops_[opIdx].gap;
            for (uint32_t k = 0; k < count; ++k) {
                sk.buildOp.push_back(opIdx);
                sk.buildPos.push_back(first + k * gap);
            }
        }
        if (sk.buildPos.empty())
            continue;
        // std::sort's swap decisions are a function of the comparison
        // outcomes alone, so sorting indices by pos applies the same
        // permutation strideMlp's sort of the full events does.
        sk.perm.resize(sk.buildPos.size());
        std::iota(sk.perm.begin(), sk.perm.end(), 0u);
        std::sort(sk.perm.begin(), sk.perm.end(),
                  [&sk](uint32_t a, uint32_t b) {
                      return sk.buildPos[a] < sk.buildPos[b];
                  });
        sk.maxPos = sk.buildPos[sk.perm.back()] + 1;
    }
}

const StrideMlpCache::L3State &
StrideMlpCache::l3State(uint32_t l3Lines, bool redistributeCold)
{
    for (const L3State &s : l3States_)
        if (s.l3Lines == l3Lines && s.redistributeCold == redistributeCold)
            return s;

    l3States_.emplace_back();
    L3State &st = l3States_.back();
    st.l3Lines = l3Lines;
    st.redistributeCold = redistributeCold;
    const double llcLines = l3Lines;

    st.mrLlcGlobal = ss_.missRatio(p_.reuseLoads, llcLines);
    st.mrLlc.assign(ops_.size(), 0.0);
    st.indepProb.assign(ops_.size(), 1.0);
    for (size_t i = 0; i < ops_.size(); ++i) {
        if (!ops_[i].isLoad)
            continue;
        st.mrLlc[i] = ss_.missRatio(p_.memOps[i].reuse, llcLines);
        double mrPred = ops_[i].chase ?
            std::max(st.mrLlcGlobal, st.mrLlc[i]) : st.mrLlcGlobal;
        st.indepProb[i] = std::pow(
            std::clamp(1.0 - mrPred, 0.0, 1.0), ops_[i].depth - 1.0);
    }

    std::vector<double> expMissesW(p_.windows.size(), 0.0);
    std::vector<double> adjMissesW(p_.windows.size(), 0.0);
    double expTotal = 0, adjTotal = 0;
    for (size_t wi = 0; wi < p_.windows.size(); ++wi) {
        const WindowProfile &w = p_.windows[wi];
        double exp = 0;
        for (const auto &[opIdx, count] : w.memCounts) {
            if (!p_.memOps[opIdx].isStore)
                exp += count * st.mrLlc[opIdx];
        }
        expMissesW[wi] = exp;
        adjMissesW[wi] =
            std::max(0.0, exp + (w.coldMisses - coldAvg_));
        expTotal += exp;
        adjTotal += adjMissesW[wi];
    }
    st.expTotal = expTotal;
    const double renorm = adjTotal > 1e-9 ? expTotal / adjTotal : 1.0;

    // Replay strideMlp's error-diffusion marking: per-op accumulators
    // persist across windows in build order, so a single pass over all
    // windows reproduces every miss flag. Store the misses in sorted
    // order — the overlap walk never reads the hits.
    std::vector<double> missAcc(ops_.size(), 0.0);
    std::vector<char> flag;
    st.missEvents.resize(p_.windows.size());
    for (size_t wi = 0; wi < p_.windows.size(); ++wi) {
        const WindowSkeleton &sk = windows_[wi];
        double factor = (redistributeCold && expMissesW[wi] > 1e-9) ?
            adjMissesW[wi] * renorm / expMissesW[wi] : 1.0;
        flag.assign(sk.buildOp.size(), 0);
        for (size_t e = 0; e < sk.buildOp.size(); ++e) {
            uint32_t op = sk.buildOp[e];
            double missProb = std::min(st.mrLlc[op] * factor, 1.0);
            missAcc[op] += missProb;
            if (missAcc[op] >= 1.0) {
                missAcc[op] -= 1.0;
                flag[e] = 1;
            }
        }
        std::vector<MissEvent> &mev = st.missEvents[wi];
        for (uint32_t e : sk.perm) {
            if (flag[e])
                mev.push_back({sk.buildPos[e], sk.buildOp[e]});
        }
    }
    return st;
}

MlpEstimate
StrideMlpCache::estimate(const CoreConfig &cfg, const MlpOptions &opt)
{
    MlpEstimate est;
    const bool prefetch = opt.modelPrefetcher && cfg.prefetcherEnabled;
    const uint32_t window = opt.windowUops > 0 ?
        std::min(opt.windowUops, cfg.robSize) : cfg.robSize;
    const L3State &st = l3State(cfg.l3.numLines(), opt.redistributeCold);

    // Residual latency per op after prefetching; 1.0 when the prefetcher
    // is off or its table cannot hold the static loads (strideMlp's
    // latFactor, hoisted out of the event loop — it is per-op constant).
    const bool tableHolds = staticLoads_ <= cfg.prefetcherEntries;
    std::vector<double> latFactor;
    if (prefetch && tableHolds) {
        latFactor.assign(ops_.size(), 1.0);
        for (size_t i = 0; i < ops_.size(); ++i) {
            const OpStatics &m = ops_[i];
            if (!m.isLoad || m.chase || !m.stridedInPage)
                continue;
            if (m.gap >= cfg.robSize) {
                latFactor[i] = 0.0;
            } else {
                double hidden = m.gap / cfg.dispatchWidth;
                latFactor[i] = std::max(
                    0.0, (cfg.memLatency - hidden) / cfg.memLatency);
            }
        }
    }

    double serialTime = 0;
    double totalMisses = 0;
    double totalWeighted = 0;
    est.windows.reserve(p_.windows.size());
    for (size_t wi = 0; wi < windows_.size(); ++wi) {
        const WindowSkeleton &sk = windows_[wi];
        if (sk.buildPos.empty()) {
            est.windows.push_back({});
            continue;
        }
        const std::vector<MissEvent> &mev = st.missEvents[wi];
        WindowMlp wm;
        double serialTimeW = 0;
        size_t cursor = 0;
        // Same bucket boundaries as strideMlp (lo accumulated by
        // repeated addition); buckets past the last miss contribute
        // nothing there, so stopping early is exact.
        for (double lo = 0; lo < sk.maxPos && cursor < mev.size();
             lo += window) {
            double hi = lo + window;
            double misses = 0, weighted = 0;
            double serialMisses = 0;
            double indepParallel = 0;
            while (cursor < mev.size() && mev[cursor].pos < hi) {
                const MissEvent &v = mev[cursor++];
                misses += 1;
                weighted += latFactor.empty() ? 1.0 : latFactor[v.opIdx];
                if (ops_[v.opIdx].serialChain)
                    serialMisses += 1;
                else
                    indepParallel += st.indepProb[v.opIdx];
            }
            if (misses <= 0)
                continue;
            double freeMisses = misses - serialMisses;
            double parTime = freeMisses / std::max(indepParallel, 1.0);
            double time = std::max({serialMisses, parTime, 1.0});
            double mlp = std::max(misses / time, 1.0);
            if (opt.modelMshrs)
                mlp = mshrCappedMlp(mlp, misses, cfg.mshrs);
            wm.dramMisses += misses;
            wm.latWeighted += weighted;
            serialTimeW += weighted / mlp;
        }
        wm.mlp = serialTimeW > 0 ? wm.latWeighted / serialTimeW : 0;
        serialTime += serialTimeW;
        totalMisses += wm.dramMisses;
        totalWeighted += wm.latWeighted;
        est.windows.push_back(wm);
    }

    double shortfall = std::max(st.expTotal - totalMisses, 0.0);
    double inject = opt.coldInject * shortfall;
    if (inject > 1e-9 && !est.windows.empty()) {
        const size_t ri = p_.robIndex(window);
        double burst = std::max(p_.cold.coldPerDirtyWindow(ri), 1.0);
        double mlpInj = opt.modelMshrs ?
            mshrCappedMlp(burst, burst, cfg.mshrs) : burst;
        for (size_t wi = 0; wi < est.windows.size(); ++wi) {
            double share = coldTotal_ > 0 ?
                p_.windows[wi].coldMisses / coldTotal_ :
                (uopsTotal_ > 0 ? p_.windows[wi].uops() / uopsTotal_
                                : 0.0);
            double add = inject * share;
            if (add <= 0)
                continue;
            WindowMlp &wm = est.windows[wi];
            double timeW = wm.mlp > 0 ? wm.latWeighted / wm.mlp : 0;
            wm.dramMisses += add;
            wm.latWeighted += add;
            timeW += add / mlpInj;
            wm.mlp = timeW > 0 ? wm.latWeighted / timeW : 0;
            totalMisses += add;
            totalWeighted += add;
            serialTime += add / mlpInj;
        }
    }

    est.dramMisses = totalMisses;
    est.latWeighted = totalWeighted;
    est.mlp = serialTime > 0 ?
        std::max(totalWeighted / serialTime, 1.0) : 1.0;
    return est;
}

} // namespace mipp
