#include "model/interval_model.hh"

#include <algorithm>
#include <cmath>

#include "model/eval_cache.hh"
#include "statstack/statstack.hh"

namespace mipp {

namespace {

/**
 * Everything shared between global and per-window evaluation. Heavy
 * intermediates (StatStacks, chain weights, MLP walks, resolution times)
 * come memoized out of the EvalContext; this struct only holds the
 * per-design-point scalars derived from them.
 */
struct Scratch {
    const Profile &p;
    const CoreConfig &cfg;
    const ModelOptions &opts;
    const StatStack &ss;
    const StatStack &ssI;

    double mrL1 = 0, mrL2 = 0, mrL3 = 0;       // load miss ratios
    double mrS1 = 0, mrS2 = 0, mrS3 = 0;       // store miss ratios
    double mrI1 = 0, mrI2 = 0, mrI3 = 0;       // ifetch miss ratios

    double loads = 0, stores = 0, iAccesses = 0;
    double totalUops = 0, totalInsts = 0;

    const BranchMissModel &bm;
    double cres = 0;
    double cbus = 0;
    double mlp = 1.0;
    double prefetchFactor = 1.0;
    const MlpEstimate *mlpEst = nullptr;
    size_t ri = 0;
    /** Mispredict-interval-truncated window (== robSize uncalibrated):
     *  bounds the work available to drain in any stall shadow. */
    double window = 0;

    // Per-design-point constants hoisted out of the window loop by
    // finalizePoint(); each is the identical subexpression the penalty
    // methods previously rebuilt per call, precomputed once (values are
    // bitwise-unchanged: same operations on the same operands).
    double dW = 0;           ///< dispatch width as double
    double invD = 0;         ///< 1.0 / dW
    double fullBranch = 0;   ///< penaltyScale * (cres + frontendDepth)
    double branchFloor = 0;  ///< 0.2 * fullBranch under truncation
    double halfWindow = 0;   ///< window / 2.0
    double shadowWindow = 0; ///< shadowScale * window
    double dramFull = 0;     ///< memLatency + cbus
    double dramFloor = 0;    ///< 0.2 * dramFull
    double hitRatio = 0;     ///< max(0, mrL2 - mrL3)
    double paths = 0.25;     ///< max(pathsPerWindow(ri), 0.25)
    double lop = 0;          ///< max(loadsPerWindow(ri), paths) / paths

    Scratch(EvalContext &ec, const CoreConfig &config,
            const ModelOptions &options)
        : p(ec.profile()), cfg(config), opts(options), ss(ec.stats()),
          ssI(ec.instStats()),
          bm(options.branchModel ? *options.branchModel
                                 : internedBranchModel(config.predictor))
    {
    }

    /** Freeze the per-point constants; call after cres, cbus, window and
     *  the miss ratios are known. */
    void
    finalizePoint()
    {
        dW = cfg.dispatchWidth;
        invD = 1.0 / dW;
        fullBranch = opts.cal.penaltyScale * (cres + cfg.frontendDepth);
        branchFloor =
            opts.cal.baseWindowFrac > 0 ? 0.2 * fullBranch : 0.0;
        halfWindow = window / 2.0;
        shadowWindow = opts.cal.shadowScale * window;
        dramFull = cfg.memLatency + cbus;
        dramFloor = 0.2 * dramFull;
        hitRatio = std::max(0.0, mrL2 - mrL3);
        paths = std::max(p.loadDeps.pathsPerWindow(ri), 0.25);
        lop = std::max(p.loadDeps.loadsPerWindow(ri), paths) / paths;
    }

    /** Average uop latency for a given type-fraction mix (short misses
     *  included, thesis §3.3). */
    double
    avgLatency(const std::array<double, kNumUopTypes> &frac) const
    {
        return mixAvgLatency(frac, cfg, mrL1);
    }

    /**
     * Visible per-miss branch penalty. The naive penalty is the
     * resolution time plus the front-end refill; two mechanisms hide
     * part of it, both charged elsewhere by the simulator's
     * one-component-per-cycle attribution:
     *  - resolution overlapping older long-latency work is charged to
     *    that work (cal.penaltyScale < 1);
     *  - when the back end is contention limited (Deff < D) the front
     *    end runs ahead and buffers work that keeps draining during
     *    resolution — the slack is the extra time the buffered
     *    half-ROB takes to drain at Deff compared to D.
     */
    double
    visibleBranchPenalty(double deff) const
    {
        if (deff >= dW)
            return fullBranch;
        // The drainable in-flight work at a mispredict is bounded by the
        // truncated window: the front end never filled past the previous
        // mispredicted branch. Under truncation the penalty is floored
        // (mirroring the DRAM path's floor): a collapsing Deff at tiny
        // windows would otherwise zero the penalty and make the branch
        // component non-monotone in the miss rate, and the refetch
        // pipeline delay after resolution always stalls dispatch for a
        // little while anyway. With truncation off (uncalibrated), the
        // floor is off too, recovering the thesis formulation exactly.
        double slack = halfWindow * (1.0 / deff - invD);
        return std::max(fullBranch - slack, branchFloor);
    }

    /**
     * Effective DRAM latency per miss: under a long-latency miss the
     * window keeps executing; when execution is contention limited
     * (Deff < D) that shadow hides more of the miss than the balanced
     * interval assumption, so subtract the extra drain time.
     * cal.shadowScale scales the subtraction: in bandwidth-limited
     * windows the work in the shadow is itself memory-bound, so only a
     * fraction of the nominal slack is really hidden (the rest of the
     * "shadow" is just the next miss's latency).
     */
    double
    dramLatencyPerMiss(const DispatchLimits &lim) const
    {
        // Only *structural* contention (ports, functional units) keeps
        // producing useful work in the shadow of a miss; a dependence
        // limited window has nothing extra to run.
        double deffC = std::min({lim.width, lim.ports, lim.fus});
        if (deffC >= dW)
            return dramFull;
        double slack = shadowWindow * (1.0 / deffC - invD);
        return std::max(dramFull - slack, dramFloor);
    }

    /**
     * Chained-LLC-hit penalty per ROB window (thesis Eq 4.7-4.11),
     * extended with a lower bound from dependent (pointer-chasing) loads
     * whose LLC hits serialize outright: @p serialHits is the expected
     * number of chained LLC hits in the window.
     */
    double
    chainPenalty(double loadsPerRob, double deff, double serialHits) const
    {
        double h = hitRatio * loadsPerRob;
        double lhcExp = 0;
        if (h > 0) {
            double lhcAvg = h / paths;
            double lhcMax = std::min(h, lop);
            lhcExp = lhcAvg + std::max(lhcMax - lhcAvg, 0.0) / paths;
        }
        double chained = std::max(lhcExp, serialHits);
        if (chained <= 0)
            return 0;
        double pPrime = cfg.l3.latency * chained;
        return std::max(0.0, pPrime - cfg.robSize / deff);
    }
};

/** Dispatch limits honoring the base-component ablation level. */
DispatchLimits
limitsFor(const Scratch &ctx,
          const std::array<double, kNumUopTypes> &typeCounts, double cp,
          double avgLat, double window)
{
    return ablatedLimits(typeCounts, cp, avgLat, ctx.cfg,
                         ctx.opts.baseLevel, window);
}

/**
 * Mispredict-interval-truncated instruction window (recalibration): the
 * front end stops at a mispredicted branch, so on average the window
 * holds min(ROB, frac * N_i) uops, N_i being the predicted interval
 * between mispredicts. Quantized to whole uops so the memoized
 * per-window computations key on a small set of values; floor of 16
 * matches the smallest profiled chain size.
 */
uint32_t
truncatedWindow(double frac, double uopsPerMispredict, uint32_t rob)
{
    if (frac <= 0 || uopsPerMispredict <= 0)
        return rob;
    double w = frac * uopsPerMispredict;
    if (w >= rob)
        return rob;
    return static_cast<uint32_t>(std::max(w, 16.0));
}

} // namespace

void
evaluateModelInto(EvalContext &ec, const CoreConfig &cfg,
                  const ModelOptions &opts, ModelResult &res,
                  BatchEval *fast)
{
    const Profile &p = ec.profile();
    res.windowCpi.clear();
    Scratch ctx(ec, cfg, opts);
    ctx.ri = p.robIndex(cfg.robSize);
    const EvalContext::WindowStatics &ws = ec.windowStatics();

    // --- Cache miss rates from StatStack (thesis §4.2) -------------------
    const double l2L = cfg.l2.numLines();
    const double l3L = cfg.l3.numLines();
    if (fast) {
        const BatchEval::Ratios &r = fast->ratios(cfg);
        ctx.mrL1 = r.l1;
        ctx.mrL2 = r.l2;
        ctx.mrL3 = r.l3;
        ctx.mrS1 = r.s1;
        ctx.mrS2 = r.s2;
        ctx.mrS3 = r.s3;
        ctx.mrI1 = r.i1;
        ctx.mrI2 = r.i2;
        ctx.mrI3 = r.i3;
    } else {
        const double l1L = cfg.l1d.numLines();
        ctx.mrL1 = ec.dataMissRatio(p.reuseLoads, l1L);
        ctx.mrL2 = ec.dataMissRatio(p.reuseLoads, l2L);
        ctx.mrL3 = ec.dataMissRatio(p.reuseLoads, l3L);
        ctx.mrS1 = ec.dataMissRatio(p.reuseStores, l1L);
        ctx.mrS2 = ec.dataMissRatio(p.reuseStores, l2L);
        ctx.mrS3 = ec.dataMissRatio(p.reuseStores, l3L);
        ctx.mrI1 = ec.instMissRatio(p.reuseInsts, cfg.l1i.numLines());
        ctx.mrI2 = ec.instMissRatio(p.reuseInsts, l2L);
        ctx.mrI3 = ec.instMissRatio(p.reuseInsts, l3L);
    }

    ctx.loads = ws.loads;
    ctx.stores = ws.stores;
    ctx.iAccesses = ws.iAccesses;
    ctx.totalUops = ws.totalUops;
    ctx.totalInsts = ws.totalInsts;

    res.loadMissesL1 = ctx.mrL1 * ctx.loads;
    res.loadMissesL2 = ctx.mrL2 * ctx.loads;
    res.loadMissesL3 = ctx.mrL3 * ctx.loads;
    res.storeMissesL1 = ctx.mrS1 * ctx.stores;
    res.storeMissesL2 = ctx.mrS2 * ctx.stores;
    res.storeMissesL3 = ctx.mrS3 * ctx.stores;
    res.ifetchMissesL1 = ctx.mrI1 * ctx.iAccesses;
    res.ifetchMissesL2 = ctx.mrI2 * ctx.iAccesses;
    res.ifetchMissesL3 = ctx.mrI3 * ctx.iAccesses;
    res.uops = ctx.totalUops;
    res.instructions = ctx.totalInsts;

    // --- Global mix / latency ----------------------------------------------
    const std::array<double, kNumUopTypes> &globalFrac = ws.globalFrac;
    const std::array<double, kNumUopTypes> &globalCounts =
        ws.globalCounts;
    const double avgLat = ctx.avgLatency(globalFrac);
    res.avgLatency = avgLat;

    // --- Branch misses first (thesis §3.5): the predicted mispredict
    // interval truncates the instruction window for both the dependence
    // limit and the MLP overlap walk (recalibration). ---------------------
    res.branchMissRate = fast ? fast->globalMissRate(ctx.bm) :
                                ctx.bm.missRate(ws.globalEntropy);
    res.branchMisses = res.branchMissRate * ws.globalBranches;
    const double uopsPerMiss = res.branchMisses > 0.5 ?
        ctx.totalUops / res.branchMisses : 0;
    const uint32_t depWindow = truncatedWindow(
        opts.cal.baseWindowFrac, uopsPerMiss, cfg.robSize);
    const uint32_t mlpWindow = truncatedWindow(
        opts.cal.mlpWindowFrac, uopsPerMiss, cfg.robSize);
    ctx.window = depWindow;

    // --- Dispatch limits (Eq 3.10) at the truncated window -----------------
    const std::vector<DispatchLimits> *limWindows = nullptr;
    if (fast) {
        const BatchEval::LimitsEntry &le =
            fast->limits(cfg, ctx.mrL1, depWindow);
        res.limits = le.global;
        limWindows = &le.windows;
    } else {
        const double cpGlobal = p.chains.cp(depWindow);
        res.limits =
            limitsFor(ctx, globalCounts, cpGlobal, avgLat, depWindow);
    }
    res.deff = res.limits.effective();

    if (res.branchMisses > 0.5)
        ctx.cres = fast ?
            fast->branchResolution(cfg, avgLat, uopsPerMiss) :
            ec.branchResolution(cfg, avgLat, uopsPerMiss);
    res.branchResolution = ctx.cres;

    // --- MLP (thesis Ch. 4) -------------------------------------------------
    ctx.mlpEst = fast ? &fast->mlpEstimate(cfg, mlpWindow) :
                        &ec.mlpEstimate(cfg, opts, mlpWindow);
    ctx.mlp = ctx.mlpEst->mlp;
    ctx.prefetchFactor = ctx.mlpEst->dramMisses > 0 ?
        ctx.mlpEst->latWeighted / ctx.mlpEst->dramMisses : 1.0;
    res.mlp = ctx.mlp;

    // Per-op serial-chain weights for the chained-LLC-hit bound (memoized
    // per (L2, L3) level pair): an LLC hit on a load that depends on other
    // loads cannot be overlapped.
    const EvalContext::ChainWeights &cw =
        fast ? fast->chainWeights(l2L, l3L) : ec.chainWeights(l2L, l3L);

    const double llcLoadMisses = res.loadMissesL3;
    const double llcStoreMisses = res.storeMissesL3;
    if (opts.modelBus) {
        // Thesis Eq 4.5 queueing, with the *excess* over the single
        // transfer scaled by cal.busQueueScale: measured bus waits grow
        // slower with MLP' than the (MLP'+1)/2 arrival model because
        // transfers pipeline behind the leading access.
        double naive = busCycles(
            busMlp(ctx.mlp, llcLoadMisses, llcStoreMisses),
            cfg.busTransferCycles);
        ctx.cbus = cfg.busTransferCycles +
                   opts.cal.busQueueScale *
                       (naive - cfg.busTransferCycles);
    } else {
        ctx.cbus = cfg.busTransferCycles;
    }
    res.busCyclesPerMiss = ctx.cbus;

    // --- I-cache component ---------------------------------------------------
    const double icacheCycles =
        res.ifetchMissesL1 * cfg.l2.latency +
        res.ifetchMissesL2 * cfg.l3.latency +
        res.ifetchMissesL3 * (cfg.memLatency + cfg.busTransferCycles);

    const bool useInsts =
        opts.baseLevel == ModelOptions::BaseLevel::Instructions;

    ctx.finalizePoint();

    // =========================================================================
    // Per-window evaluation (TC'16): evaluate each micro-trace separately
    // and scale the profiled total to the whole program.
    // =========================================================================
    const bool perWindow = opts.perWindow && !p.windows.empty();
    if (perWindow) {
        // Window entropies come pre-normalized from the statics: their
        // branch-weighted mean matches the (longer-history) global
        // entropy (ws.eNorm).
        if (!limWindows)
            limWindows =
                &ec.windowLimits(cfg, opts.baseLevel, ctx.mrL1, depWindow);
        const std::vector<double> *fastMisses =
            fast ? &fast->windowBranchMisses(ctx.bm) : nullptr;
        const double icacheScaled =
            p.profiledUops ? icacheCycles / p.scale() : 0.0;

        CpiStack stack;
        double profiledCycles = 0, profiledUops = 0;
        for (size_t wi = 0; wi < p.windows.size(); ++wi) {
            double uopsW = ws.uops[wi];
            if (uopsW <= 0)
                continue;

            const DispatchLimits &limW = (*limWindows)[wi];
            double deffW = limW.effective();
            double nW = useInsts ? ws.insts[wi] : uopsW;
            double baseW = nW / deffW;

            // Branch component with window-local entropy.
            double missesW = fastMisses ?
                (*fastMisses)[wi] :
                ctx.bm.missRate(ws.entropyEff[wi]) *
                    p.windows[wi].branches;
            double branchW = missesW * ctx.visibleBranchPenalty(deffW);

            // I-cache cycles distributed by uop share.
            double icacheW = icacheScaled * ws.uopShare[wi];

            // DRAM component.
            double dramLat = ctx.dramLatencyPerMiss(limW);
            double dramW = 0;
            if (opts.mlpMode == ModelOptions::MlpMode::Stride &&
                wi < ctx.mlpEst->windows.size()) {
                const WindowMlp &wm = ctx.mlpEst->windows[wi];
                double mlpW = std::max(wm.mlp, 1.0);
                dramW = wm.latWeighted * dramLat / mlpW;
            } else {
                double loadsW = ws.loadCounts[wi];
                dramW = loadsW * ctx.mrL3 * ctx.prefetchFactor * dramLat /
                        ctx.mlp;
            }

            // Chained LLC hits, with the per-window serialized-hit count
            // from this window's static-load population.
            double chainW = 0;
            if (opts.modelLlcChaining) {
                double serialW =
                    cw.windowSerial[wi] *
                    (static_cast<double>(cfg.robSize) / ws.maxUops[wi]);
                double loadFracW = ws.loadFrac[wi];
                chainW = ctx.chainPenalty(loadFracW * cfg.robSize, deffW,
                                          serialW) *
                         (uopsW / cfg.robSize);
            }

            double cyclesW = baseW + branchW + icacheW + dramW + chainW;
            stack.base += baseW;
            stack.branch += branchW;
            stack.icache += icacheW;
            stack.dram += dramW;
            stack.llcHit += chainW;
            profiledCycles += cyclesW;
            profiledUops += uopsW;
            res.windowCpi.push_back(cyclesW / uopsW);
        }

        double s = p.scale();
        res.cycles = profiledCycles * s;
        res.stack = stack.scaled(s);
        res.llcChainPenalty = res.stack.llcHit;
    } else {
        // =====================================================================
        // Global evaluation (ISPASS'15): averaged whole-program profile.
        // =====================================================================
        double n = useInsts ? ctx.totalInsts : ctx.totalUops;
        double base = n / res.deff;
        double branch =
            res.branchMisses * ctx.visibleBranchPenalty(res.deff);
        double dram = llcLoadMisses * ctx.prefetchFactor *
                      ctx.dramLatencyPerMiss(res.limits) / ctx.mlp;
        double chain = 0;
        if (opts.modelLlcChaining) {
            double loadFrac = globalFrac[static_cast<int>(UopType::Load)];
            double serial = cw.globalSerialHits * loadFrac * cfg.robSize;
            chain = ctx.chainPenalty(loadFrac * cfg.robSize, res.deff,
                                     serial) *
                    (ctx.totalUops / cfg.robSize);
        }
        res.stack = {base, branch, icacheCycles, 0, chain, dram};
        res.cycles = res.stack.total();
        res.llcChainPenalty = chain;
    }

    // --- Activity factors for the power model (thesis §3.6, §4.10) ---------
    ActivityCounts &a = res.activity;
    a.cycles = static_cast<uint64_t>(res.cycles);
    a.uops = static_cast<uint64_t>(ctx.totalUops);
    a.instructions = static_cast<uint64_t>(ctx.totalInsts);
    for (int t = 0; t < kNumUopTypes; ++t)
        a.fuOps[t] = static_cast<uint64_t>(globalCounts[t]);
    a.robWrites = a.uops;
    a.robReads = a.uops;
    a.iqWrites = a.uops;
    a.iqWakeups = a.uops;
    double srcPerUop = p.profiledUops ?
        static_cast<double>(p.srcOperands) / p.profiledUops : 1.5;
    double dstPerUop = p.profiledUops ?
        static_cast<double>(p.dstOperands) / p.profiledUops : 0.7;
    a.rfReads = static_cast<uint64_t>(srcPerUop * ctx.totalUops);
    a.rfWrites = static_cast<uint64_t>(dstPerUop * ctx.totalUops);
    a.bpLookups = p.branch.branches;
    a.l1iAccesses = static_cast<uint64_t>(ctx.iAccesses);
    a.l1dAccesses = static_cast<uint64_t>(ctx.loads + ctx.stores);
    a.l2Accesses = static_cast<uint64_t>(
        res.loadMissesL1 + res.storeMissesL1 + res.ifetchMissesL1);
    a.l3Accesses = static_cast<uint64_t>(
        res.loadMissesL2 + res.storeMissesL2 + res.ifetchMissesL2);
    a.dramAccesses = static_cast<uint64_t>(
        res.loadMissesL3 + res.storeMissesL3 + res.ifetchMissesL3);
}

ModelResult
evaluateModel(EvalContext &ec, const CoreConfig &cfg,
              const ModelOptions &opts)
{
    ModelResult res;
    evaluateModelInto(ec, cfg, opts, res, nullptr);
    return res;
}

ModelResult
evaluateModel(const Profile &p, const CoreConfig &cfg,
              const ModelOptions &opts)
{
    // Compat wrapper: a throwaway context makes this the uncached path.
    // Use an EvalContext directly when evaluating many design points
    // against one profile (the DSE sweep does).
    EvalContext ctx(p);
    return evaluateModel(ctx, cfg, opts);
}

} // namespace mipp
