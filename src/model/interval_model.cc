#include "model/interval_model.hh"

#include <algorithm>
#include <cmath>

#include "model/eval_cache.hh"
#include "statstack/statstack.hh"

namespace mipp {

namespace {

/**
 * Everything shared between global and per-window evaluation. Heavy
 * intermediates (StatStacks, chain weights, MLP walks, resolution times)
 * come memoized out of the EvalContext; this struct only holds the
 * per-design-point scalars derived from them.
 */
struct Scratch {
    const Profile &p;
    const CoreConfig &cfg;
    const ModelOptions &opts;
    const StatStack &ss;
    const StatStack &ssI;

    double mrL1 = 0, mrL2 = 0, mrL3 = 0;       // load miss ratios
    double mrS1 = 0, mrS2 = 0, mrS3 = 0;       // store miss ratios
    double mrI1 = 0, mrI2 = 0, mrI3 = 0;       // ifetch miss ratios

    double loads = 0, stores = 0, iAccesses = 0;
    double totalUops = 0, totalInsts = 0;

    const BranchMissModel &bm;
    double cres = 0;
    double cbus = 0;
    double mlp = 1.0;
    double prefetchFactor = 1.0;
    const MlpEstimate *mlpEst = nullptr;
    size_t ri = 0;
    /** Mispredict-interval-truncated window (== robSize uncalibrated):
     *  bounds the work available to drain in any stall shadow. */
    double window = 0;

    Scratch(EvalContext &ec, const CoreConfig &config,
            const ModelOptions &options)
        : p(ec.profile()), cfg(config), opts(options), ss(ec.stats()),
          ssI(ec.instStats()),
          bm(options.branchModel ? *options.branchModel
                                 : internedBranchModel(config.predictor))
    {
    }

    /** Average uop latency for a given type-fraction mix (short misses
     *  included, thesis §3.3). */
    double
    avgLatency(const std::array<double, kNumUopTypes> &frac) const
    {
        return mixAvgLatency(frac, cfg, mrL1);
    }

    /**
     * Visible per-miss branch penalty. The naive penalty is the
     * resolution time plus the front-end refill; two mechanisms hide
     * part of it, both charged elsewhere by the simulator's
     * one-component-per-cycle attribution:
     *  - resolution overlapping older long-latency work is charged to
     *    that work (cal.penaltyScale < 1);
     *  - when the back end is contention limited (Deff < D) the front
     *    end runs ahead and buffers work that keeps draining during
     *    resolution — the slack is the extra time the buffered
     *    half-ROB takes to drain at Deff compared to D.
     */
    double
    visibleBranchPenalty(double deff) const
    {
        double full = opts.cal.penaltyScale * (cres + cfg.frontendDepth);
        double d = cfg.dispatchWidth;
        if (deff >= d)
            return full;
        // The drainable in-flight work at a mispredict is bounded by the
        // truncated window: the front end never filled past the previous
        // mispredicted branch. Under truncation the penalty is floored
        // (mirroring the DRAM path's floor): a collapsing Deff at tiny
        // windows would otherwise zero the penalty and make the branch
        // component non-monotone in the miss rate, and the refetch
        // pipeline delay after resolution always stalls dispatch for a
        // little while anyway. With truncation off (uncalibrated), the
        // floor is off too, recovering the thesis formulation exactly.
        double slack = (window / 2.0) * (1.0 / deff - 1.0 / d);
        double floor = opts.cal.baseWindowFrac > 0 ? 0.2 * full : 0.0;
        return std::max(full - slack, floor);
    }

    /**
     * Effective DRAM latency per miss: under a long-latency miss the
     * window keeps executing; when execution is contention limited
     * (Deff < D) that shadow hides more of the miss than the balanced
     * interval assumption, so subtract the extra drain time.
     * cal.shadowScale scales the subtraction: in bandwidth-limited
     * windows the work in the shadow is itself memory-bound, so only a
     * fraction of the nominal slack is really hidden (the rest of the
     * "shadow" is just the next miss's latency).
     */
    double
    dramLatencyPerMiss(const DispatchLimits &lim) const
    {
        double full = cfg.memLatency + cbus;
        // Only *structural* contention (ports, functional units) keeps
        // producing useful work in the shadow of a miss; a dependence
        // limited window has nothing extra to run.
        double deffC = std::min({lim.width, lim.ports, lim.fus});
        double d = cfg.dispatchWidth;
        if (deffC >= d)
            return full;
        double slack = opts.cal.shadowScale * window *
                       (1.0 / deffC - 1.0 / d);
        return std::max(full - slack, 0.2 * full);
    }

    /**
     * Chained-LLC-hit penalty per ROB window (thesis Eq 4.7-4.11),
     * extended with a lower bound from dependent (pointer-chasing) loads
     * whose LLC hits serialize outright: @p serialHits is the expected
     * number of chained LLC hits in the window.
     */
    double
    chainPenalty(double loadsPerRob, double deff, double serialHits) const
    {
        double hitRatio = std::max(0.0, mrL2 - mrL3);
        double h = hitRatio * loadsPerRob;
        double lhcExp = 0;
        if (h > 0) {
            double paths = std::max(p.loadDeps.pathsPerWindow(ri), 0.25);
            double lop =
                std::max(p.loadDeps.loadsPerWindow(ri), paths) / paths;
            double lhcAvg = h / paths;
            double lhcMax = std::min(h, lop);
            lhcExp = lhcAvg + std::max(lhcMax - lhcAvg, 0.0) / paths;
        }
        double chained = std::max(lhcExp, serialHits);
        if (chained <= 0)
            return 0;
        double pPrime = cfg.l3.latency * chained;
        return std::max(0.0, pPrime - cfg.robSize / deff);
    }
};

/** Dispatch limits honoring the base-component ablation level. */
DispatchLimits
limitsFor(const Scratch &ctx,
          const std::array<double, kNumUopTypes> &typeCounts, double cp,
          double avgLat, double window)
{
    return ablatedLimits(typeCounts, cp, avgLat, ctx.cfg,
                         ctx.opts.baseLevel, window);
}

/**
 * Mispredict-interval-truncated instruction window (recalibration): the
 * front end stops at a mispredicted branch, so on average the window
 * holds min(ROB, frac * N_i) uops, N_i being the predicted interval
 * between mispredicts. Quantized to whole uops so the memoized
 * per-window computations key on a small set of values; floor of 16
 * matches the smallest profiled chain size.
 */
uint32_t
truncatedWindow(double frac, double uopsPerMispredict, uint32_t rob)
{
    if (frac <= 0 || uopsPerMispredict <= 0)
        return rob;
    double w = frac * uopsPerMispredict;
    if (w >= rob)
        return rob;
    return static_cast<uint32_t>(std::max(w, 16.0));
}

} // namespace

ModelResult
evaluateModel(EvalContext &ec, const CoreConfig &cfg,
              const ModelOptions &opts)
{
    const Profile &p = ec.profile();
    ModelResult res;
    Scratch ctx(ec, cfg, opts);
    ctx.ri = p.robIndex(cfg.robSize);

    // --- Cache miss rates from StatStack (thesis §4.2) -------------------
    const double l1L = cfg.l1d.numLines();
    const double l2L = cfg.l2.numLines();
    const double l3L = cfg.l3.numLines();
    ctx.mrL1 = ec.dataMissRatio(p.reuseLoads, l1L);
    ctx.mrL2 = ec.dataMissRatio(p.reuseLoads, l2L);
    ctx.mrL3 = ec.dataMissRatio(p.reuseLoads, l3L);
    ctx.mrS1 = ec.dataMissRatio(p.reuseStores, l1L);
    ctx.mrS2 = ec.dataMissRatio(p.reuseStores, l2L);
    ctx.mrS3 = ec.dataMissRatio(p.reuseStores, l3L);
    ctx.mrI1 = ec.instMissRatio(p.reuseInsts, cfg.l1i.numLines());
    ctx.mrI2 = ec.instMissRatio(p.reuseInsts, l2L);
    ctx.mrI3 = ec.instMissRatio(p.reuseInsts, l3L);

    ctx.loads = static_cast<double>(p.reuseLoads.total());
    ctx.stores = static_cast<double>(p.reuseStores.total());
    ctx.iAccesses = static_cast<double>(p.reuseInsts.total());
    ctx.totalUops = static_cast<double>(p.totalUops);
    ctx.totalInsts = ctx.totalUops / std::max(p.uopsPerInst(), 1.0);

    res.loadMissesL1 = ctx.mrL1 * ctx.loads;
    res.loadMissesL2 = ctx.mrL2 * ctx.loads;
    res.loadMissesL3 = ctx.mrL3 * ctx.loads;
    res.storeMissesL1 = ctx.mrS1 * ctx.stores;
    res.storeMissesL2 = ctx.mrS2 * ctx.stores;
    res.storeMissesL3 = ctx.mrS3 * ctx.stores;
    res.ifetchMissesL1 = ctx.mrI1 * ctx.iAccesses;
    res.ifetchMissesL2 = ctx.mrI2 * ctx.iAccesses;
    res.ifetchMissesL3 = ctx.mrI3 * ctx.iAccesses;
    res.uops = ctx.totalUops;
    res.instructions = ctx.totalInsts;

    // --- Global mix / latency ----------------------------------------------
    std::array<double, kNumUopTypes> globalFrac{};
    std::array<double, kNumUopTypes> globalCounts{};
    for (int t = 0; t < kNumUopTypes; ++t) {
        globalFrac[t] = p.uopFraction(static_cast<UopType>(t));
        globalCounts[t] = globalFrac[t] * ctx.totalUops;
    }
    const double avgLat = ctx.avgLatency(globalFrac);
    res.avgLatency = avgLat;

    // --- Branch misses first (thesis §3.5): the predicted mispredict
    // interval truncates the instruction window for both the dependence
    // limit and the MLP overlap walk (recalibration). ---------------------
    res.branchMissRate = ctx.bm.missRate(p.branch.entropy());
    const double branches = static_cast<double>(p.branch.branches);
    res.branchMisses = res.branchMissRate * branches;
    const double uopsPerMiss = res.branchMisses > 0.5 ?
        ctx.totalUops / res.branchMisses : 0;
    const uint32_t depWindow = truncatedWindow(
        opts.cal.baseWindowFrac, uopsPerMiss, cfg.robSize);
    const uint32_t mlpWindow = truncatedWindow(
        opts.cal.mlpWindowFrac, uopsPerMiss, cfg.robSize);
    ctx.window = depWindow;

    // --- Dispatch limits (Eq 3.10) at the truncated window -----------------
    const double cpGlobal = p.chains.cp(depWindow);
    res.limits = limitsFor(ctx, globalCounts, cpGlobal, avgLat, depWindow);
    res.deff = res.limits.effective();

    if (res.branchMisses > 0.5)
        ctx.cres = ec.branchResolution(cfg, avgLat, uopsPerMiss);
    res.branchResolution = ctx.cres;

    // --- MLP (thesis Ch. 4) -------------------------------------------------
    ctx.mlpEst = &ec.mlpEstimate(cfg, opts, mlpWindow);
    ctx.mlp = ctx.mlpEst->mlp;
    ctx.prefetchFactor = ctx.mlpEst->dramMisses > 0 ?
        ctx.mlpEst->latWeighted / ctx.mlpEst->dramMisses : 1.0;
    res.mlp = ctx.mlp;

    // Per-op serial-chain weights for the chained-LLC-hit bound (memoized
    // per (L2, L3) level pair): an LLC hit on a load that depends on other
    // loads cannot be overlapped.
    const EvalContext::ChainWeights &cw = ec.chainWeights(l2L, l3L);

    const double llcLoadMisses = res.loadMissesL3;
    const double llcStoreMisses = res.storeMissesL3;
    if (opts.modelBus) {
        // Thesis Eq 4.5 queueing, with the *excess* over the single
        // transfer scaled by cal.busQueueScale: measured bus waits grow
        // slower with MLP' than the (MLP'+1)/2 arrival model because
        // transfers pipeline behind the leading access.
        double naive = busCycles(
            busMlp(ctx.mlp, llcLoadMisses, llcStoreMisses),
            cfg.busTransferCycles);
        ctx.cbus = cfg.busTransferCycles +
                   opts.cal.busQueueScale *
                       (naive - cfg.busTransferCycles);
    } else {
        ctx.cbus = cfg.busTransferCycles;
    }
    res.busCyclesPerMiss = ctx.cbus;

    // --- I-cache component ---------------------------------------------------
    const double icacheCycles =
        res.ifetchMissesL1 * cfg.l2.latency +
        res.ifetchMissesL2 * cfg.l3.latency +
        res.ifetchMissesL3 * (cfg.memLatency + cfg.busTransferCycles);

    const bool useInsts =
        opts.baseLevel == ModelOptions::BaseLevel::Instructions;

    // =========================================================================
    // Per-window evaluation (TC'16): evaluate each micro-trace separately
    // and scale the profiled total to the whole program.
    // =========================================================================
    const bool perWindow = opts.perWindow && !p.windows.empty();
    if (perWindow) {
        // Normalize window entropies so their branch-weighted mean matches
        // the (longer-history) global entropy.
        double eSum = 0, bSum = 0;
        for (const auto &w : p.windows) {
            eSum += static_cast<double>(w.branches) * w.branchEntropy;
            bSum += w.branches;
        }
        double eMean = bSum > 0 ? eSum / bSum : 0;
        double eNorm = eMean > 1e-9 ? p.branch.entropy() / eMean : 1.0;

        const std::vector<DispatchLimits> &limWindows =
            ec.windowLimits(cfg, opts.baseLevel, ctx.mrL1, depWindow);

        CpiStack stack;
        double profiledCycles = 0, profiledUops = 0;
        for (size_t wi = 0; wi < p.windows.size(); ++wi) {
            const WindowProfile &w = p.windows[wi];
            double uopsW = w.uops();
            if (uopsW <= 0)
                continue;

            std::array<double, kNumUopTypes> fracW{}, countsW{};
            for (int t = 0; t < kNumUopTypes; ++t) {
                countsW[t] = w.uopCounts[t];
                fracW[t] = w.uopCounts[t] / uopsW;
            }
            const DispatchLimits &limW = limWindows[wi];
            double deffW = limW.effective();
            double nW = useInsts ? static_cast<double>(w.insts) : uopsW;
            double baseW = nW / deffW;

            // Branch component with window-local entropy.
            double eW = std::min(1.0, w.branchEntropy * eNorm);
            double missesW = ctx.bm.missRate(eW) * w.branches;
            double branchW = missesW * ctx.visibleBranchPenalty(deffW);

            // I-cache cycles distributed by uop share.
            double icacheW = p.profiledUops ?
                icacheCycles / p.scale() * (uopsW / p.profiledUops) : 0;

            // DRAM component.
            double dramLat = ctx.dramLatencyPerMiss(limW);
            double dramW = 0;
            if (opts.mlpMode == ModelOptions::MlpMode::Stride &&
                wi < ctx.mlpEst->windows.size()) {
                const WindowMlp &wm = ctx.mlpEst->windows[wi];
                double mlpW = std::max(wm.mlp, 1.0);
                dramW = wm.latWeighted * dramLat / mlpW;
            } else {
                double loadsW =
                    countsW[static_cast<int>(UopType::Load)];
                dramW = loadsW * ctx.mrL3 * ctx.prefetchFactor * dramLat /
                        ctx.mlp;
            }

            // Chained LLC hits, with the per-window serialized-hit count
            // from this window's static-load population.
            double chainW = 0;
            if (opts.modelLlcChaining) {
                double serialW = cw.windowSerial[wi];
                serialW *= static_cast<double>(cfg.robSize) /
                           std::max(uopsW, 1.0);
                double loadFracW = fracW[static_cast<int>(UopType::Load)];
                chainW = ctx.chainPenalty(loadFracW * cfg.robSize, deffW,
                                          serialW) *
                         (uopsW / cfg.robSize);
            }

            double cyclesW = baseW + branchW + icacheW + dramW + chainW;
            stack.base += baseW;
            stack.branch += branchW;
            stack.icache += icacheW;
            stack.dram += dramW;
            stack.llcHit += chainW;
            profiledCycles += cyclesW;
            profiledUops += uopsW;
            res.windowCpi.push_back(cyclesW / uopsW);
        }

        double s = p.scale();
        res.cycles = profiledCycles * s;
        res.stack = stack.scaled(s);
        res.llcChainPenalty = res.stack.llcHit;
    } else {
        // =====================================================================
        // Global evaluation (ISPASS'15): averaged whole-program profile.
        // =====================================================================
        double n = useInsts ? ctx.totalInsts : ctx.totalUops;
        double base = n / res.deff;
        double branch =
            res.branchMisses * ctx.visibleBranchPenalty(res.deff);
        double dram = llcLoadMisses * ctx.prefetchFactor *
                      ctx.dramLatencyPerMiss(res.limits) / ctx.mlp;
        double chain = 0;
        if (opts.modelLlcChaining) {
            double loadFrac = globalFrac[static_cast<int>(UopType::Load)];
            double serial = cw.globalSerialHits * loadFrac * cfg.robSize;
            chain = ctx.chainPenalty(loadFrac * cfg.robSize, res.deff,
                                     serial) *
                    (ctx.totalUops / cfg.robSize);
        }
        res.stack = {base, branch, icacheCycles, 0, chain, dram};
        res.cycles = res.stack.total();
        res.llcChainPenalty = chain;
    }

    // --- Activity factors for the power model (thesis §3.6, §4.10) ---------
    ActivityCounts &a = res.activity;
    a.cycles = static_cast<uint64_t>(res.cycles);
    a.uops = static_cast<uint64_t>(ctx.totalUops);
    a.instructions = static_cast<uint64_t>(ctx.totalInsts);
    for (int t = 0; t < kNumUopTypes; ++t)
        a.fuOps[t] = static_cast<uint64_t>(globalCounts[t]);
    a.robWrites = a.uops;
    a.robReads = a.uops;
    a.iqWrites = a.uops;
    a.iqWakeups = a.uops;
    double srcPerUop = p.profiledUops ?
        static_cast<double>(p.srcOperands) / p.profiledUops : 1.5;
    double dstPerUop = p.profiledUops ?
        static_cast<double>(p.dstOperands) / p.profiledUops : 0.7;
    a.rfReads = static_cast<uint64_t>(srcPerUop * ctx.totalUops);
    a.rfWrites = static_cast<uint64_t>(dstPerUop * ctx.totalUops);
    a.bpLookups = p.branch.branches;
    a.l1iAccesses = static_cast<uint64_t>(ctx.iAccesses);
    a.l1dAccesses = static_cast<uint64_t>(ctx.loads + ctx.stores);
    a.l2Accesses = static_cast<uint64_t>(
        res.loadMissesL1 + res.storeMissesL1 + res.ifetchMissesL1);
    a.l3Accesses = static_cast<uint64_t>(
        res.loadMissesL2 + res.storeMissesL2 + res.ifetchMissesL2);
    a.dramAccesses = static_cast<uint64_t>(
        res.loadMissesL3 + res.storeMissesL3 + res.ifetchMissesL3);
    return res;
}

ModelResult
evaluateModel(const Profile &p, const CoreConfig &cfg,
              const ModelOptions &opts)
{
    // Compat wrapper: a throwaway context makes this the uncached path.
    // Use an EvalContext directly when evaluating many design points
    // against one profile (the DSE sweep does).
    EvalContext ctx(p);
    return evaluateModel(ctx, cfg, opts);
}

} // namespace mipp
