#include "model/eval_cache.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "model/branch_model.hh"
#include "model/mlp_model.hh"

namespace mipp {

namespace {

/** Log-fit interpolation over per-window chain samples (thesis Eq 5.2).
 *  Shared by every evaluation of a window at a given ROB size; the math
 *  matches DependenceChains::interpolate for the profiled global chains. */
double
interpChain(const std::vector<float> &vals,
            const std::vector<uint32_t> &sizes, double rob)
{
    if (vals.empty())
        return 1.0;
    if (vals.size() == 1)
        return vals[0];
    size_t hi = 1;
    while (hi + 1 < sizes.size() && sizes[hi] < rob)
        ++hi;
    size_t lo = hi - 1;
    double x0 = std::log(static_cast<double>(sizes[lo]));
    double x1 = std::log(static_cast<double>(sizes[hi]));
    double y0 = vals[lo], y1 = vals[hi];
    double a = (y1 - y0) / (x1 - x0);
    double v = a * (std::log(std::max(rob, 2.0)) - x0) + y0;
    return std::max(v, 1.0);
}

} // namespace

double
mixAvgLatency(const std::array<double, kNumUopTypes> &frac,
              const CoreConfig &cfg, double mrL1)
{
    double lat = 0;
    for (int t = 0; t < kNumUopTypes; ++t) {
        auto type = static_cast<UopType>(t);
        double l = cfg.lat.of(type);
        if (type == UopType::Load)
            l = (1.0 - mrL1) * cfg.l1d.latency + mrL1 * cfg.l2.latency;
        lat += frac[t] * l;
    }
    return std::max(lat, 0.5);
}

DispatchLimits
ablatedLimits(const std::array<double, kNumUopTypes> &typeCounts,
              double cp, double avgLat, const CoreConfig &cfg,
              ModelOptions::BaseLevel level, double window)
{
    using Level = ModelOptions::BaseLevel;
    DispatchLimits lim = dispatchLimits(typeCounts, cp, avgLat, cfg,
                                        window);
    switch (level) {
      case Level::Instructions:
      case Level::MicroOps:
        lim.dependences = lim.width;
        lim.ports = lim.width;
        lim.fus = lim.width;
        break;
      case Level::CriticalPath:
        lim.ports = lim.width;
        lim.fus = lim.width;
        break;
      case Level::Functional:
        break;
    }
    return lim;
}

const BranchMissModel &
internedBranchModel(BranchPredictorKind kind)
{
    static const auto table = [] {
        constexpr size_t n =
            static_cast<size_t>(BranchPredictorKind::NumKinds);
        std::array<BranchMissModel, n> t{};
        for (size_t k = 0; k < n; ++k)
            t[k] = BranchMissModel::pretrained(
                static_cast<BranchPredictorKind>(k));
        return t;
    }();
    size_t idx = static_cast<size_t>(kind);
    return table[idx < table.size() ? idx : 0];
}

EvalContext::EvalContext(const Profile &p)
    : p_(p), ss_(p.reuseAll), ssI_(p.reuseInsts)
{
}

double
EvalContext::memoRatio(std::vector<RatioEntry> &memo, const StatStack &ss,
                       const LogHistogram &h, double cacheLines)
{
    uint64_t bits = std::bit_cast<uint64_t>(cacheLines);
    for (const RatioEntry &e : memo)
        if (e.h == &h && e.linesBits == bits)
            return e.value;
    double v = ss.missRatio(h, cacheLines);
    memo.push_back({&h, bits, v});
    return v;
}

double
EvalContext::dataMissRatio(const LogHistogram &h, double cacheLines)
{
    return memoRatio(dataRatios_, ss_, h, cacheLines);
}

double
EvalContext::instMissRatio(const LogHistogram &h, double cacheLines)
{
    return memoRatio(instRatios_, ssI_, h, cacheLines);
}

const EvalContext::ChainWeights &
EvalContext::chainWeights(double l2Lines, double l3Lines)
{
    ChainKey key{std::bit_cast<uint64_t>(l2Lines),
                 std::bit_cast<uint64_t>(l3Lines)};
    for (auto &[k, v] : chains_)
        if (k == key)
            return v;

    // Same arithmetic, in the same order, as the pre-cache inline loop in
    // evaluateModel: an LLC hit on a load that depends on other loads
    // cannot be overlapped, so it serializes.
    ChainWeights cw;
    cw.opWeight.assign(p_.memOps.size(), 0.0);
    double loadsSeen = 0;
    for (size_t i = 0; i < p_.memOps.size(); ++i) {
        const StaticMemProfile &sp = p_.memOps[i];
        if (sp.isStore)
            continue;
        double hit3 = std::max(0.0, ss_.missRatio(sp.reuse, l2Lines) -
                                        ss_.missRatio(sp.reuse, l3Lines));
        double dep = std::clamp(sp.avgLoadDepth() - 1.0, 0.0, 1.0);
        cw.opWeight[i] = hit3 * dep;
        cw.globalSerialHits += cw.opWeight[i] * sp.count;
        loadsSeen += sp.count;
    }
    if (loadsSeen > 0)
        cw.globalSerialHits /= loadsSeen; // per load

    cw.windowSerial.assign(p_.windows.size(), 0.0);
    for (size_t wi = 0; wi < p_.windows.size(); ++wi) {
        double serialW = 0;
        for (const auto &[opIdx, cnt] : p_.windows[wi].memCounts)
            serialW += cw.opWeight[opIdx] * cnt;
        cw.windowSerial[wi] = serialW;
    }
    return chains_.emplace_back(key, std::move(cw)).second;
}

const std::vector<double> &
EvalContext::windowCp(uint32_t robSize)
{
    for (auto &[k, v] : windowCps_)
        if (k == robSize)
            return v;
    std::vector<double> cps;
    cps.reserve(p_.windows.size());
    for (const WindowProfile &w : p_.windows)
        cps.push_back(interpChain(w.cp, p_.robSizes, robSize));
    return windowCps_.emplace_back(robSize, std::move(cps)).second;
}

const std::vector<DispatchLimits> &
EvalContext::windowLimits(const CoreConfig &cfg,
                          ModelOptions::BaseLevel level, double mrL1,
                          uint32_t depWindow)
{
    // The key is the complete input material of the computation below,
    // stored verbatim: ablation level, width, ROB, the truncated
    // dependence window, the L1D miss ratio entering the average
    // latency, the latency-relevant cache levels, the execution-latency
    // table, the per-port issue capabilities and the FU pools. Two
    // configs that agree on all of it provably produce the same limits
    // for every window.
    std::vector<uint64_t> key;
    key.reserve(15 + kNumUopTypes * 2 + cfg.ports.size());
    key.push_back(static_cast<uint64_t>(level));
    key.push_back(cfg.dispatchWidth);
    key.push_back(cfg.robSize);
    key.push_back(depWindow);
    key.push_back(std::bit_cast<uint64_t>(mrL1));
    key.push_back(cfg.l1d.latency);
    key.push_back(cfg.l2.latency);
    for (int t = 0; t < kNumUopTypes; ++t)
        key.push_back(cfg.lat.cycles[t]);
    for (const IssuePort &port : cfg.ports) {
        uint64_t mask = 1; // distinguish "port with no types" from absent
        for (int t = 0; t < kNumUopTypes; ++t)
            if (port.canIssue(static_cast<UopType>(t)))
                mask |= uint64_t{2} << t;
        key.push_back(mask);
    }
    for (int t = 0; t < kNumUopTypes; ++t)
        key.push_back(cfg.fus[t].count |
                      (uint64_t{cfg.fus[t].pipelined} << 32));

    for (auto &[k, v] : windowLimits_)
        if (k == key)
            return v;

    const uint32_t w0 = depWindow > 0 ?
        std::min(depWindow, cfg.robSize) : cfg.robSize;
    const std::vector<double> &cps = windowCp(w0);
    std::vector<DispatchLimits> lims;
    lims.reserve(p_.windows.size());
    for (size_t wi = 0; wi < p_.windows.size(); ++wi) {
        const WindowProfile &w = p_.windows[wi];
        double uopsW = w.uops();
        if (uopsW <= 0) {
            lims.push_back({});
            continue;
        }
        std::array<double, kNumUopTypes> fracW{}, countsW{};
        for (int t = 0; t < kNumUopTypes; ++t) {
            countsW[t] = w.uopCounts[t];
            fracW[t] = w.uopCounts[t] / uopsW;
        }
        double latW = mixAvgLatency(fracW, cfg, mrL1);
        lims.push_back(
            ablatedLimits(countsW, cps[wi], latW, cfg, level, w0));
    }
    return windowLimits_.emplace_back(std::move(key), std::move(lims))
        .second;
}

double
EvalContext::branchResolution(const CoreConfig &cfg, double avgLat,
                              double uopsBetweenMispredicts)
{
    ResolutionKey key{cfg.dispatchWidth, cfg.robSize,
                      std::bit_cast<uint64_t>(avgLat),
                      std::bit_cast<uint64_t>(uopsBetweenMispredicts)};
    for (const auto &[k, v] : resolutions_)
        if (k == key)
            return v;
    double v = branchResolutionTime(p_.chains, cfg, avgLat,
                                    uopsBetweenMispredicts);
    resolutions_.emplace_back(key, v);
    return v;
}

const MlpEstimate &
EvalContext::mlpEstimate(const CoreConfig &cfg, const ModelOptions &opts,
                         uint32_t windowUops)
{
    const bool prefetchActive =
        opts.modelPrefetcher && cfg.prefetcherEnabled;
    MlpKey key{};
    key.mode = static_cast<uint8_t>(opts.mlpMode);
    key.mshrs = opts.modelMshrs;
    key.prefetcher = opts.modelPrefetcher;
    key.l3Lines = cfg.l3.numLines();
    key.rob = cfg.robSize;
    key.mshrCount = cfg.mshrs;
    // Width, memory latency and the prefetch-table size are only read on
    // the prefetcher path (thesis Eq 4.13 timeliness); keying them at 0
    // otherwise lets e.g. a pure width sweep share one entry.
    key.prefetcherEntries = prefetchActive ? cfg.prefetcherEntries : 0;
    key.width = prefetchActive ? cfg.dispatchWidth : 0;
    key.memLatency = prefetchActive ? cfg.memLatency : 0;
    key.windowUops = windowUops;
    key.coldInjectBits = std::bit_cast<uint64_t>(opts.cal.coldInject);

    for (auto &[k, v] : mlps_)
        if (k == key)
            return v;

    MlpOptions mo{opts.modelMshrs, opts.modelPrefetcher};
    mo.windowUops = windowUops;
    mo.coldInject = opts.cal.coldInject;
    MlpEstimate est;
    switch (opts.mlpMode) {
      case ModelOptions::MlpMode::ColdMiss:
        est = coldMissMlp(p_, cfg, ss_, mo);
        break;
      case ModelOptions::MlpMode::Stride:
        est = strideMlp(p_, cfg, ss_, mo);
        break;
      case ModelOptions::MlpMode::None:
        est.mlp = 1.0;
        break;
    }
    return mlps_.emplace_back(key, std::move(est)).second;
}

} // namespace mipp
