#include "model/eval_cache.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "model/branch_model.hh"
#include "model/mlp_model.hh"
#include "power/power_model.hh"

namespace mipp {

namespace {

/** Log-fit interpolation over per-window chain samples (thesis Eq 5.2).
 *  Shared by every evaluation of a window at a given ROB size; the math
 *  matches DependenceChains::interpolate for the profiled global chains. */
double
interpChain(const std::vector<float> &vals,
            const std::vector<uint32_t> &sizes, double rob)
{
    if (vals.empty())
        return 1.0;
    if (vals.size() == 1)
        return vals[0];
    size_t hi = 1;
    while (hi + 1 < sizes.size() && sizes[hi] < rob)
        ++hi;
    size_t lo = hi - 1;
    double x0 = std::log(static_cast<double>(sizes[lo]));
    double x1 = std::log(static_cast<double>(sizes[hi]));
    double y0 = vals[lo], y1 = vals[hi];
    double a = (y1 - y0) / (x1 - x0);
    double v = a * (std::log(std::max(rob, 2.0)) - x0) + y0;
    return std::max(v, 1.0);
}

} // namespace

double
mixAvgLatency(const std::array<double, kNumUopTypes> &frac,
              const CoreConfig &cfg, double mrL1)
{
    double lat = 0;
    for (int t = 0; t < kNumUopTypes; ++t) {
        auto type = static_cast<UopType>(t);
        double l = cfg.lat.of(type);
        if (type == UopType::Load)
            l = (1.0 - mrL1) * cfg.l1d.latency + mrL1 * cfg.l2.latency;
        lat += frac[t] * l;
    }
    return std::max(lat, 0.5);
}

DispatchLimits
ablatedLimits(const std::array<double, kNumUopTypes> &typeCounts,
              double cp, double avgLat, const CoreConfig &cfg,
              ModelOptions::BaseLevel level, double window)
{
    using Level = ModelOptions::BaseLevel;
    DispatchLimits lim = dispatchLimits(typeCounts, cp, avgLat, cfg,
                                        window);
    switch (level) {
      case Level::Instructions:
      case Level::MicroOps:
        lim.dependences = lim.width;
        lim.ports = lim.width;
        lim.fus = lim.width;
        break;
      case Level::CriticalPath:
        lim.ports = lim.width;
        lim.fus = lim.width;
        break;
      case Level::Functional:
        break;
    }
    return lim;
}

const BranchMissModel &
internedBranchModel(BranchPredictorKind kind)
{
    static const auto table = [] {
        constexpr size_t n =
            static_cast<size_t>(BranchPredictorKind::NumKinds);
        std::array<BranchMissModel, n> t{};
        for (size_t k = 0; k < n; ++k)
            t[k] = BranchMissModel::pretrained(
                static_cast<BranchPredictorKind>(k));
        return t;
    }();
    size_t idx = static_cast<size_t>(kind);
    return table[idx < table.size() ? idx : 0];
}

EvalContext::EvalContext(const Profile &p)
    : p_(p), ss_(p.reuseAll), ssI_(p.reuseInsts)
{
}

double
EvalContext::memoRatio(std::vector<RatioEntry> &memo, const StatStack &ss,
                       const LogHistogram &h, double cacheLines)
{
    uint64_t bits = std::bit_cast<uint64_t>(cacheLines);
    for (const RatioEntry &e : memo)
        if (e.h == &h && e.linesBits == bits)
            return e.value;
    double v = ss.missRatio(h, cacheLines);
    memo.push_back({&h, bits, v});
    return v;
}

double
EvalContext::dataMissRatio(const LogHistogram &h, double cacheLines)
{
    return memoRatio(dataRatios_, ss_, h, cacheLines);
}

double
EvalContext::instMissRatio(const LogHistogram &h, double cacheLines)
{
    return memoRatio(instRatios_, ssI_, h, cacheLines);
}

const EvalContext::ChainWeights &
EvalContext::chainWeights(double l2Lines, double l3Lines)
{
    ChainKey key{std::bit_cast<uint64_t>(l2Lines),
                 std::bit_cast<uint64_t>(l3Lines)};
    for (auto &[k, v] : chains_)
        if (k == key)
            return v;

    // Same arithmetic, in the same order, as the pre-cache inline loop in
    // evaluateModel: an LLC hit on a load that depends on other loads
    // cannot be overlapped, so it serializes.
    ChainWeights cw;
    cw.opWeight.assign(p_.memOps.size(), 0.0);
    double loadsSeen = 0;
    for (size_t i = 0; i < p_.memOps.size(); ++i) {
        const StaticMemProfile &sp = p_.memOps[i];
        if (sp.isStore)
            continue;
        double hit3 = std::max(0.0, ss_.missRatio(sp.reuse, l2Lines) -
                                        ss_.missRatio(sp.reuse, l3Lines));
        double dep = std::clamp(sp.avgLoadDepth() - 1.0, 0.0, 1.0);
        cw.opWeight[i] = hit3 * dep;
        cw.globalSerialHits += cw.opWeight[i] * sp.count;
        loadsSeen += sp.count;
    }
    if (loadsSeen > 0)
        cw.globalSerialHits /= loadsSeen; // per load

    cw.windowSerial.assign(p_.windows.size(), 0.0);
    for (size_t wi = 0; wi < p_.windows.size(); ++wi) {
        double serialW = 0;
        for (const auto &[opIdx, cnt] : p_.windows[wi].memCounts)
            serialW += cw.opWeight[opIdx] * cnt;
        cw.windowSerial[wi] = serialW;
    }
    return chains_.emplace_back(key, std::move(cw)).second;
}

const std::vector<double> &
EvalContext::windowCp(uint32_t robSize)
{
    for (auto &[k, v] : windowCps_)
        if (k == robSize)
            return v;
    std::vector<double> cps;
    cps.reserve(p_.windows.size());
    for (const WindowProfile &w : p_.windows)
        cps.push_back(interpChain(w.cp, p_.robSizes, robSize));
    return windowCps_.emplace_back(robSize, std::move(cps)).second;
}

const std::vector<DispatchLimits> &
EvalContext::windowLimits(const CoreConfig &cfg,
                          ModelOptions::BaseLevel level, double mrL1,
                          uint32_t depWindow)
{
    // The key is the complete input material of the computation below,
    // stored verbatim: ablation level, width, ROB, the truncated
    // dependence window, the L1D miss ratio entering the average
    // latency, the latency-relevant cache levels, the execution-latency
    // table, the per-port issue capabilities and the FU pools. Two
    // configs that agree on all of it provably produce the same limits
    // for every window.
    std::vector<uint64_t> key;
    key.reserve(15 + kNumUopTypes * 2 + cfg.ports.size());
    key.push_back(static_cast<uint64_t>(level));
    key.push_back(cfg.dispatchWidth);
    key.push_back(cfg.robSize);
    key.push_back(depWindow);
    key.push_back(std::bit_cast<uint64_t>(mrL1));
    key.push_back(cfg.l1d.latency);
    key.push_back(cfg.l2.latency);
    for (int t = 0; t < kNumUopTypes; ++t)
        key.push_back(cfg.lat.cycles[t]);
    for (const IssuePort &port : cfg.ports) {
        uint64_t mask = 1; // distinguish "port with no types" from absent
        for (int t = 0; t < kNumUopTypes; ++t)
            if (port.canIssue(static_cast<UopType>(t)))
                mask |= uint64_t{2} << t;
        key.push_back(mask);
    }
    for (int t = 0; t < kNumUopTypes; ++t)
        key.push_back(cfg.fus[t].count |
                      (uint64_t{cfg.fus[t].pipelined} << 32));

    for (auto &[k, v] : windowLimits_)
        if (k == key)
            return v;

    const uint32_t w0 = depWindow > 0 ?
        std::min(depWindow, cfg.robSize) : cfg.robSize;
    const std::vector<double> &cps = windowCp(w0);
    std::vector<DispatchLimits> lims;
    lims.reserve(p_.windows.size());
    for (size_t wi = 0; wi < p_.windows.size(); ++wi) {
        const WindowProfile &w = p_.windows[wi];
        double uopsW = w.uops();
        if (uopsW <= 0) {
            lims.push_back({});
            continue;
        }
        std::array<double, kNumUopTypes> fracW{}, countsW{};
        for (int t = 0; t < kNumUopTypes; ++t) {
            countsW[t] = w.uopCounts[t];
            fracW[t] = w.uopCounts[t] / uopsW;
        }
        double latW = mixAvgLatency(fracW, cfg, mrL1);
        lims.push_back(
            ablatedLimits(countsW, cps[wi], latW, cfg, level, w0));
    }
    return windowLimits_.emplace_back(std::move(key), std::move(lims))
        .second;
}

double
EvalContext::branchResolution(const CoreConfig &cfg, double avgLat,
                              double uopsBetweenMispredicts)
{
    ResolutionKey key{cfg.dispatchWidth, cfg.robSize,
                      std::bit_cast<uint64_t>(avgLat),
                      std::bit_cast<uint64_t>(uopsBetweenMispredicts)};
    for (const auto &[k, v] : resolutions_)
        if (k == key)
            return v;
    double v = branchResolutionTime(p_.chains, cfg, avgLat,
                                    uopsBetweenMispredicts);
    resolutions_.emplace_back(key, v);
    return v;
}

const MlpEstimate &
EvalContext::mlpEstimate(const CoreConfig &cfg, const ModelOptions &opts,
                         uint32_t windowUops)
{
    const bool prefetchActive =
        opts.modelPrefetcher && cfg.prefetcherEnabled;
    MlpKey key{};
    key.mode = static_cast<uint8_t>(opts.mlpMode);
    key.mshrs = opts.modelMshrs;
    key.prefetcher = opts.modelPrefetcher;
    key.l3Lines = cfg.l3.numLines();
    key.rob = cfg.robSize;
    key.mshrCount = cfg.mshrs;
    // Width, memory latency and the prefetch-table size are only read on
    // the prefetcher path (thesis Eq 4.13 timeliness); keying them at 0
    // otherwise lets e.g. a pure width sweep share one entry.
    key.prefetcherEntries = prefetchActive ? cfg.prefetcherEntries : 0;
    key.width = prefetchActive ? cfg.dispatchWidth : 0;
    key.memLatency = prefetchActive ? cfg.memLatency : 0;
    key.windowUops = windowUops;
    key.coldInjectBits = std::bit_cast<uint64_t>(opts.cal.coldInject);

    for (auto &[k, v] : mlps_)
        if (k == key)
            return v;

    MlpOptions mo{opts.modelMshrs, opts.modelPrefetcher};
    mo.windowUops = windowUops;
    mo.coldInject = opts.cal.coldInject;
    MlpEstimate est;
    switch (opts.mlpMode) {
      case ModelOptions::MlpMode::ColdMiss:
        est = coldMissMlp(p_, cfg, ss_, mo);
        break;
      case ModelOptions::MlpMode::Stride:
        est = strideMlp(p_, cfg, ss_, mo);
        break;
      case ModelOptions::MlpMode::None:
        est.mlp = 1.0;
        break;
    }
    return mlps_.emplace_back(key, std::move(est)).second;
}

const EvalContext::WindowStatics &
EvalContext::windowStatics()
{
    if (staticsBuilt_)
        return statics_;
    WindowStatics &ws = statics_;
    const size_t nw = p_.windows.size();
    ws.uops.reserve(nw);
    ws.maxUops.reserve(nw);
    ws.insts.reserve(nw);
    ws.entropyEff.reserve(nw);
    ws.uopShare.reserve(nw);
    ws.loadCounts.reserve(nw);
    ws.loadFrac.reserve(nw);
    ws.counts.reserve(nw);
    ws.fracs.reserve(nw);

    double eSum = 0, bSum = 0;
    for (const WindowProfile &w : p_.windows) {
        eSum += static_cast<double>(w.branches) * w.branchEntropy;
        bSum += w.branches;
    }
    double eMean = bSum > 0 ? eSum / bSum : 0;
    ws.eNorm = eMean > 1e-9 ? p_.branch.entropy() / eMean : 1.0;

    for (const WindowProfile &w : p_.windows) {
        double uopsW = w.uops();
        ws.uops.push_back(uopsW);
        ws.maxUops.push_back(std::max(uopsW, 1.0));
        ws.insts.push_back(static_cast<double>(w.insts));
        ws.entropyEff.push_back(std::min(1.0, w.branchEntropy * ws.eNorm));
        ws.uopShare.push_back(
            p_.profiledUops ? uopsW / p_.profiledUops : 0.0);
        std::array<double, kNumUopTypes> fracW{}, countsW{};
        if (uopsW > 0) {
            for (int t = 0; t < kNumUopTypes; ++t) {
                countsW[t] = w.uopCounts[t];
                fracW[t] = w.uopCounts[t] / uopsW;
            }
        }
        ws.loadCounts.push_back(countsW[static_cast<int>(UopType::Load)]);
        ws.loadFrac.push_back(fracW[static_cast<int>(UopType::Load)]);
        ws.counts.push_back(countsW);
        ws.fracs.push_back(fracW);
    }

    ws.totalUops = static_cast<double>(p_.totalUops);
    ws.totalInsts = ws.totalUops / std::max(p_.uopsPerInst(), 1.0);
    for (int t = 0; t < kNumUopTypes; ++t) {
        ws.globalFrac[t] = p_.uopFraction(static_cast<UopType>(t));
        ws.globalCounts[t] = ws.globalFrac[t] * ws.totalUops;
    }
    ws.loads = static_cast<double>(p_.reuseLoads.total());
    ws.stores = static_cast<double>(p_.reuseStores.total());
    ws.iAccesses = static_cast<double>(p_.reuseInsts.total());
    ws.globalBranches = static_cast<double>(p_.branch.branches);
    ws.globalEntropy = p_.branch.entropy();
    staticsBuilt_ = true;
    return statics_;
}

// ===========================================================================
// BatchEval
// ===========================================================================

namespace {

/** FNV-1a over the memo key words; buckets only narrow the candidate
 *  list — an exact key compare still decides, so collisions are safe. */
uint64_t
hashWords(const std::vector<uint64_t> &v)
{
    uint64_t h = 1469598103934665603ull;
    for (uint64_t w : v) {
        h ^= w;
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace

void
BatchEval::ChainInterp::build(const DependenceChains &chains, bool useAbp)
{
    const std::vector<uint32_t> &sizes = chains.robSizes();
    empty = sizes.empty();
    if (empty)
        return;
    if (sizes.size() == 1) {
        single = true;
        singleValue = useAbp ? chains.abpAt(0) : chains.cpAt(0);
        return;
    }
    hiSizes.reserve(sizes.size() - 1);
    segs.reserve(sizes.size() - 1);
    for (size_t hi = 1; hi < sizes.size(); ++hi) {
        size_t lo = hi - 1;
        double x0 = std::log(static_cast<double>(sizes[lo]));
        double x1 = std::log(static_cast<double>(sizes[hi]));
        double y0 = useAbp ? chains.abpAt(lo) : chains.cpAt(lo);
        double y1 = useAbp ? chains.abpAt(hi) : chains.cpAt(hi);
        Seg s;
        s.zero = y0 == 0 && y1 == 0;
        s.a = (y1 - y0) / (x1 - x0);
        s.b = y0 - s.a * x0;
        hiSizes.push_back(static_cast<double>(sizes[hi]));
        segs.push_back(s);
    }
}

double
BatchEval::ChainInterp::eval(double rob) const
{
    if (empty)
        return 0;
    if (single)
        return singleValue;
    rob = std::max(rob, 2.0);
    const size_t n = hiSizes.size() + 1;
    size_t hi = 1;
    while (hi + 1 < n && hiSizes[hi - 1] < rob)
        ++hi;
    const Seg &s = segs[hi - 1];
    if (s.zero)
        return 0;
    double v = s.a * std::log(rob) + s.b;
    return std::max(v, 1.0);
}

BatchEval::BatchEval(EvalContext &ec, const ModelOptions &opts)
    : ec_(ec), opts_(opts)
{
    cpInterp_.build(ec_.profile().chains, false);
    abpInterp_.build(ec_.profile().chains, true);
    ratioTable_.reserve(64);
}

BatchEval::~BatchEval() = default;

const BatchEval::Ratios &
BatchEval::ratios(const CoreConfig &cfg)
{
    const uint64_t k0 =
        uint64_t{cfg.l1d.numLines()} << 32 | cfg.l2.numLines();
    const uint64_t k1 =
        uint64_t{cfg.l3.numLines()} << 32 | cfg.l1i.numLines();
    for (RatioSlot &s : ratioTable_)
        if (s.k0 == k0 && s.k1 == k1)
            return s.r;
    const Profile &p = ec_.profile();
    const double l1L = cfg.l1d.numLines();
    const double l2L = cfg.l2.numLines();
    const double l3L = cfg.l3.numLines();
    Ratios r;
    r.l1 = ec_.dataMissRatio(p.reuseLoads, l1L);
    r.l2 = ec_.dataMissRatio(p.reuseLoads, l2L);
    r.l3 = ec_.dataMissRatio(p.reuseLoads, l3L);
    r.s1 = ec_.dataMissRatio(p.reuseStores, l1L);
    r.s2 = ec_.dataMissRatio(p.reuseStores, l2L);
    r.s3 = ec_.dataMissRatio(p.reuseStores, l3L);
    r.i1 = ec_.instMissRatio(p.reuseInsts, cfg.l1i.numLines());
    r.i2 = ec_.instMissRatio(p.reuseInsts, l2L);
    r.i3 = ec_.instMissRatio(p.reuseInsts, l3L);
    ratioTable_.push_back({k0, k1, r});
    return ratioTable_.back().r;
}

void
BatchEval::buildLimitsKey(const CoreConfig &cfg, uint32_t depWindow,
                          uint64_t mrL1Bits)
{
    // Complete input material of a LimitsEntry: everything
    // EvalContext::windowLimits keys on (the ablation level is pinned in
    // opts_). The global limits add no inputs beyond it — their counts
    // and chain length are profile + depWindow functions.
    std::vector<uint64_t> &key = keyBuf_;
    key.clear();
    key.push_back(cfg.dispatchWidth);
    key.push_back(cfg.robSize);
    key.push_back(depWindow);
    key.push_back(mrL1Bits);
    key.push_back(cfg.l1d.latency);
    key.push_back(cfg.l2.latency);
    for (int t = 0; t < kNumUopTypes; ++t)
        key.push_back(cfg.lat.cycles[t]);
    for (const IssuePort &port : cfg.ports) {
        // Same bit-per-supported-type mask canIssue() would produce,
        // built by walking the (short) supports list once instead of
        // probing canIssue per type (it scans the list per probe).
        uint64_t mask = 1;
        for (UopType s : port.supports)
            mask |= uint64_t{2} << static_cast<int>(s);
        key.push_back(mask);
    }
    for (int t = 0; t < kNumUopTypes; ++t)
        key.push_back(cfg.fus[t].count |
                      (uint64_t{cfg.fus[t].pipelined} << 32));
}

const BatchEval::PortsEntry &
BatchEval::portsEntry(const CoreConfig &cfg)
{
    std::vector<uint64_t> key;
    key.reserve(cfg.ports.size());
    for (const IssuePort &port : cfg.ports) {
        uint64_t mask = 1;
        for (UopType s : port.supports)
            mask |= uint64_t{2} << static_cast<int>(s);
        key.push_back(mask);
    }
    for (PortsEntry &e : portsTable_)
        if (e.key == key)
            return e;

    const EvalContext::WindowStatics &ws = ec_.windowStatics();
    PortsEntry e;
    e.key = std::move(key);
    e.windowMaxAct.reserve(ws.uops.size());
    for (size_t wi = 0; wi < ws.uops.size(); ++wi) {
        double maxAct = 0;
        if (ws.uops[wi] > 0) {
            auto activity = schedulePorts(ws.counts[wi], cfg);
            for (double a : activity)
                maxAct = std::max(maxAct, a);
        }
        e.windowMaxAct.push_back(maxAct);
    }
    auto activity = schedulePorts(ws.globalCounts, cfg);
    for (double a : activity)
        e.globalMaxAct = std::max(e.globalMaxAct, a);
    portsTable_.push_back(std::move(e));
    return portsTable_.back();
}

const BatchEval::FuEntry &
BatchEval::fuEntry(const CoreConfig &cfg)
{
    std::vector<uint64_t> key;
    key.reserve(kNumUopTypes * 2);
    for (int t = 0; t < kNumUopTypes; ++t)
        key.push_back(cfg.fus[t].count |
                      (uint64_t{cfg.fus[t].pipelined} << 32));
    for (int t = 0; t < kNumUopTypes; ++t)
        key.push_back(cfg.lat.cycles[t]);
    for (FuEntry &e : fuTable_)
        if (e.key == key)
            return e;

    const EvalContext::WindowStatics &ws = ec_.windowStatics();
    // The per-type rate n*u/count (or /count*lat) is width independent,
    // so the min over types memoizes; the final min against width*4
    // happens at combine time (min is exact either way).
    auto minRate = [&cfg](const std::array<double, kNumUopTypes> &counts,
                          double n) {
        double best = std::numeric_limits<double>::infinity();
        for (int t = 0; t < kNumUopTypes; ++t) {
            if (counts[t] <= 0)
                continue;
            const FuPool &pool = cfg.fus[t];
            double u = std::max<double>(pool.count, 1);
            double rate = pool.pipelined ?
                n * u / counts[t] :
                n * u /
                    (counts[t] * cfg.lat.of(static_cast<UopType>(t)));
            best = std::min(best, rate);
        }
        return best;
    };
    FuEntry e;
    e.key = std::move(key);
    e.windowMinRate.reserve(ws.uops.size());
    for (size_t wi = 0; wi < ws.uops.size(); ++wi)
        e.windowMinRate.push_back(
            ws.uops[wi] > 0 ? minRate(ws.counts[wi], ws.uops[wi]) : 0.0);
    double nGlobal = 0;
    for (double c : ws.globalCounts)
        nGlobal += c;
    e.globalMinRate = minRate(ws.globalCounts, nGlobal);
    fuTable_.push_back(std::move(e));
    return fuTable_.back();
}

BatchEval::LimitsEntry
BatchEval::buildLimits(const CoreConfig &cfg, double mrL1,
                       uint32_t depWindow)
{
    const Profile &p = ec_.profile();
    const EvalContext::WindowStatics &ws = ec_.windowStatics();
    const PortsEntry &pe = portsEntry(cfg);
    const FuEntry &fe = fuEntry(cfg);
    const uint32_t w0 = depWindow > 0 ?
        std::min(depWindow, cfg.robSize) : cfg.robSize;
    const std::vector<double> &cps = ec_.windowCp(w0);

    using Level = ModelOptions::BaseLevel;
    const Level level = opts_.baseLevel;
    auto ablate = [level](DispatchLimits &lim) {
        switch (level) {
          case Level::Instructions:
          case Level::MicroOps:
            lim.dependences = lim.width;
            lim.ports = lim.width;
            lim.fus = lim.width;
            break;
          case Level::CriticalPath:
            lim.ports = lim.width;
            lim.fus = lim.width;
            break;
          case Level::Functional:
            break;
        }
    };

    LimitsEntry le;
    le.windows.reserve(p.windows.size());
    const double w0d = static_cast<double>(w0);
    for (size_t wi = 0; wi < p.windows.size(); ++wi) {
        double uopsW = ws.uops[wi];
        if (uopsW <= 0) {
            le.windows.push_back({});
            continue;
        }
        // Exactly dispatchLimits() with the port/FU folds replayed from
        // the memo: n equals the fold over counts (integer-exact sums).
        double latW = mixAvgLatency(ws.fracs[wi], cfg, mrL1);
        DispatchLimits lim;
        lim.width = cfg.dispatchWidth;
        lim.dependences = cps[wi] > 0 && latW > 0 ?
            w0d / (latW * cps[wi]) : lim.width;
        double maxAct = pe.windowMaxAct[wi];
        lim.ports = maxAct > 0 ? uopsW / maxAct : lim.width;
        lim.fus = std::min(lim.width * 4, fe.windowMinRate[wi]);
        ablate(lim);
        le.windows.push_back(lim);
    }

    // Global limits: same inputs (counts and chain length are pure
    // profile/depWindow functions; the count fold is replayed verbatim
    // because the global counts are not integers).
    double n = 0;
    for (double c : ws.globalCounts)
        n += c;
    DispatchLimits g;
    g.width = cfg.dispatchWidth;
    if (n <= 0) {
        g.dependences = g.ports = g.fus = g.width;
    } else {
        double latG = mixAvgLatency(ws.globalFrac, cfg, mrL1);
        double cpG = globalCp(depWindow);
        double w = depWindow > 0 ?
            static_cast<double>(depWindow) :
            static_cast<double>(cfg.robSize);
        g.dependences = cpG > 0 && latG > 0 ? w / (latG * cpG) : g.width;
        g.ports = pe.globalMaxAct > 0 ? n / pe.globalMaxAct : g.width;
        g.fus = std::min(g.width * 4, fe.globalMinRate);
    }
    ablate(g);
    le.global = g;
    return le;
}

const BatchEval::LimitsEntry &
BatchEval::limits(const CoreConfig &cfg, double mrL1, uint32_t depWindow)
{
    buildLimitsKey(cfg, depWindow, std::bit_cast<uint64_t>(mrL1));
    if (lastLimits_ && keyBuf_ == lastLimitsKey_)
        return *lastLimits_;
    const uint64_t h = hashWords(keyBuf_);
    std::vector<uint32_t> &bucket = limitsBuckets_[h];
    for (uint32_t idx : bucket) {
        if (limitsTable_[idx].first == keyBuf_) {
            lastLimitsKey_ = keyBuf_;
            lastLimits_ = &limitsTable_[idx].second;
            return *lastLimits_;
        }
    }
    LimitsEntry le = buildLimits(cfg, mrL1, depWindow);
    limitsTable_.emplace_back(keyBuf_, std::move(le));
    bucket.push_back(static_cast<uint32_t>(limitsTable_.size() - 1));
    lastLimitsKey_ = keyBuf_;
    lastLimits_ = &limitsTable_.back().second;
    return *lastLimits_;
}

const MlpEstimate &
BatchEval::mlpEstimate(const CoreConfig &cfg, uint32_t windowUops)
{
    const bool prefetchActive =
        opts_.modelPrefetcher && cfg.prefetcherEnabled;
    EvalContext::MlpKey key{};
    key.mode = static_cast<uint8_t>(opts_.mlpMode);
    key.mshrs = opts_.modelMshrs;
    key.prefetcher = opts_.modelPrefetcher;
    key.l3Lines = cfg.l3.numLines();
    key.rob = cfg.robSize;
    key.mshrCount = cfg.mshrs;
    key.prefetcherEntries = prefetchActive ? cfg.prefetcherEntries : 0;
    key.width = prefetchActive ? cfg.dispatchWidth : 0;
    key.memLatency = prefetchActive ? cfg.memLatency : 0;
    key.windowUops = windowUops;
    key.coldInjectBits = std::bit_cast<uint64_t>(opts_.cal.coldInject);

    for (MlpSlot &s : mlpTable_)
        if (s.key == key)
            return s.est;

    MlpOptions mo{opts_.modelMshrs, opts_.modelPrefetcher};
    mo.windowUops = windowUops;
    mo.coldInject = opts_.cal.coldInject;
    MlpEstimate est;
    switch (opts_.mlpMode) {
      case ModelOptions::MlpMode::ColdMiss:
        est = coldMissMlp(ec_.profile(), cfg, ec_.stats(), mo);
        break;
      case ModelOptions::MlpMode::Stride:
        if (!strideCache_)
            strideCache_ = std::make_unique<StrideMlpCache>(
                ec_.profile(), ec_.stats());
        est = strideCache_->estimate(cfg, mo);
        break;
      case ModelOptions::MlpMode::None:
        est.mlp = 1.0;
        break;
    }
    mlpTable_.push_back({key, std::move(est)});
    return mlpTable_.back().est;
}

const std::vector<double> &
BatchEval::opRatios(double lines)
{
    const uint64_t bits = std::bit_cast<uint64_t>(lines);
    for (auto &[k, v] : opRatioTable_)
        if (k == bits)
            return v;
    const Profile &p = ec_.profile();
    const StatStack &ss = ec_.stats();
    std::vector<double> v(p.memOps.size(), 0.0);
    for (size_t i = 0; i < p.memOps.size(); ++i)
        if (!p.memOps[i].isStore)
            v[i] = ss.missRatio(p.memOps[i].reuse, lines);
    return opRatioTable_.emplace_back(bits, std::move(v)).second;
}

const EvalContext::ChainWeights &
BatchEval::chainWeights(double l2Lines, double l3Lines)
{
    EvalContext::ChainKey key{std::bit_cast<uint64_t>(l2Lines),
                              std::bit_cast<uint64_t>(l3Lines)};
    for (auto &[k, v] : chainTable_)
        if (k == key)
            return v;

    const Profile &p = ec_.profile();
    if (!depClampBuilt_) {
        depClamp_.reserve(p.memOps.size());
        for (const StaticMemProfile &sp : p.memOps)
            depClamp_.push_back(
                std::clamp(sp.avgLoadDepth() - 1.0, 0.0, 1.0));
        for (const StaticMemProfile &sp : p.memOps)
            if (!sp.isStore)
                loadsSeen_ += sp.count;
        depClampBuilt_ = true;
    }
    // Combine per-lines ratio vectors: one missRatio pass per distinct
    // cache size instead of two per (L2, L3) pair. Same arithmetic in
    // the same order as EvalContext::chainWeights.
    const std::vector<double> &r2 = opRatios(l2Lines);
    const std::vector<double> &r3 = opRatios(l3Lines);
    EvalContext::ChainWeights cw;
    cw.opWeight.assign(p.memOps.size(), 0.0);
    for (size_t i = 0; i < p.memOps.size(); ++i) {
        const StaticMemProfile &sp = p.memOps[i];
        if (sp.isStore)
            continue;
        double hit3 = std::max(0.0, r2[i] - r3[i]);
        cw.opWeight[i] = hit3 * depClamp_[i];
        cw.globalSerialHits += cw.opWeight[i] * sp.count;
    }
    if (loadsSeen_ > 0)
        cw.globalSerialHits /= loadsSeen_;

    cw.windowSerial.assign(p.windows.size(), 0.0);
    for (size_t wi = 0; wi < p.windows.size(); ++wi) {
        double serialW = 0;
        for (const auto &[opIdx, cnt] : p.windows[wi].memCounts)
            serialW += cw.opWeight[opIdx] * cnt;
        cw.windowSerial[wi] = serialW;
    }
    return chainTable_.emplace_back(key, std::move(cw)).second;
}

double
BatchEval::fastResolutionTime(const CoreConfig &cfg, double avgLat,
                              double uopsBetweenMispredicts) const
{
    // branchResolutionTime (thesis Alg 3.2) verbatim, with the chain
    // interpolations replayed from the precomputed bracket fits.
    const double d = cfg.dispatchWidth;
    const double rob = cfg.robSize;
    double ni = std::max(uopsBetweenMispredicts, 1.0);
    double occupancy = 0;

    int guard = 0;
    while (ni > d && guard++ < 100000) {
        double enter = std::min(d, rob - occupancy);
        ni -= enter;
        occupancy += enter;
        double cp = std::max(cpInterp_.eval(std::max(occupancy, 2.0)), 1.0);
        double leave = std::min(occupancy / (avgLat * cp), d);
        occupancy = std::max(occupancy - leave, 0.0);
    }
    occupancy = std::min(occupancy + ni, rob);
    double abp =
        std::max(abpInterp_.eval(std::max(occupancy, 2.0)), 1.0);
    return avgLat * abp;
}

double
BatchEval::branchResolution(const CoreConfig &cfg, double avgLat,
                            double uopsBetweenMispredicts)
{
    EvalContext::ResolutionKey key{
        cfg.dispatchWidth, cfg.robSize, std::bit_cast<uint64_t>(avgLat),
        std::bit_cast<uint64_t>(uopsBetweenMispredicts)};
    if (lastResValid_ && key == lastResKey_)
        return lastResValue_;
    for (const auto &[k, v] : resTable_) {
        if (k == key) {
            lastResKey_ = key;
            lastResValue_ = v;
            lastResValid_ = true;
            return v;
        }
    }
    double v = fastResolutionTime(cfg, avgLat, uopsBetweenMispredicts);
    resTable_.emplace_back(key, v);
    lastResKey_ = key;
    lastResValue_ = v;
    lastResValid_ = true;
    return v;
}

double
BatchEval::globalCp(uint32_t depWindow)
{
    for (const auto &[k, v] : globalCps_)
        if (k == depWindow)
            return v;
    double v = ec_.profile().chains.cp(depWindow);
    globalCps_.emplace_back(depWindow, v);
    return v;
}

BatchEval::BranchSlot &
BatchEval::branchSlot(const BranchMissModel &bm)
{
    for (BranchSlot &s : branchTable_)
        if (s.bm == &bm)
            return s;
    const Profile &p = ec_.profile();
    const EvalContext::WindowStatics &ws = ec_.windowStatics();
    BranchSlot s;
    s.bm = &bm;
    s.globalRate = bm.missRate(ws.globalEntropy);
    s.windowMisses.reserve(p.windows.size());
    for (size_t wi = 0; wi < p.windows.size(); ++wi)
        s.windowMisses.push_back(
            bm.missRate(ws.entropyEff[wi]) * p.windows[wi].branches);
    branchTable_.push_back(std::move(s));
    return branchTable_.back();
}

const std::vector<double> &
BatchEval::windowBranchMisses(const BranchMissModel &bm)
{
    return branchSlot(bm).windowMisses;
}

double
BatchEval::globalMissRate(const BranchMissModel &bm)
{
    return branchSlot(bm).globalRate;
}

void
BatchEval::evaluate(const CoreConfig *cfgs, size_t n, Output *out,
                    const PowerParams *power)
{
    for (size_t i = 0; i < n; ++i) {
        evaluateModelInto(ec_, cfgs[i], opts_, scratch_, this);
        out[i].modelCpi = scratch_.cpiPerUop();
        out[i].modelWatts = power ?
            computePower(scratch_.activity, cfgs[i], power[i]).total() :
            computePower(scratch_.activity, cfgs[i]).total();
    }
}

const ModelResult &
BatchEval::evaluateOne(const CoreConfig &cfg)
{
    evaluateModelInto(ec_, cfg, opts_, scratch_, this);
    return scratch_;
}

} // namespace mipp
