#include "model/branch_model.hh"

#include <algorithm>
#include <cmath>

namespace mipp {

BranchMissModel
BranchMissModel::pretrained(BranchPredictorKind kind)
{
    // Coefficients from training the five 4 KB predictors against the
    // synthetic suite (two seeds per workload, 200k-uop traces; regenerate
    // with bench_fig3_9_entropy_fit). The fits have r^2 of 0.88-0.93,
    // matching the strongly linear relation of thesis Fig 3.9.
    switch (kind) {
      case BranchPredictorKind::GAg:
        return {kind, 0.7570, -0.0223};
      case BranchPredictorKind::GAp:
        return {kind, 0.6186, 0.0015};
      case BranchPredictorKind::PAp:
        return {kind, 0.6559, -0.0985};
      case BranchPredictorKind::GShare:
        return {kind, 0.7669, -0.0309};
      case BranchPredictorKind::Tournament:
        return {kind, 0.7355, -0.1104};
      default:
        return {kind, 0.70, 0.0};
    }
}

BranchMissModel
EntropyFitTrainer::fit(BranchPredictorKind kind) const
{
    BranchMissModel m;
    m.kind = kind;
    size_t n = xs_.size();
    if (n < 2)
        return m;
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (size_t i = 0; i < n; ++i) {
        sx += xs_[i];
        sy += ys_[i];
        sxx += xs_[i] * xs_[i];
        sxy += xs_[i] * ys_[i];
    }
    double denom = n * sxx - sx * sx;
    if (std::abs(denom) < 1e-12) {
        m.slope = 0;
        m.intercept = sy / n;
        return m;
    }
    m.slope = (n * sxy - sx * sy) / denom;
    m.intercept = (sy - m.slope * sx) / n;
    return m;
}

double
EntropyFitTrainer::r2() const
{
    size_t n = xs_.size();
    if (n < 2)
        return 0;
    BranchMissModel m = fit(BranchPredictorKind::GShare);
    double mean = 0;
    for (double y : ys_)
        mean += y;
    mean /= n;
    double ssTot = 0, ssRes = 0;
    for (size_t i = 0; i < n; ++i) {
        double pred = m.slope * xs_[i] + m.intercept;
        ssRes += (ys_[i] - pred) * (ys_[i] - pred);
        ssTot += (ys_[i] - mean) * (ys_[i] - mean);
    }
    return ssTot > 0 ? 1.0 - ssRes / ssTot : 0;
}

double
branchResolutionTime(const DependenceChains &chains, const CoreConfig &cfg,
                     double avgLat, double uopsBetweenMispredicts)
{
    // Thesis Alg 3.2: fill the window ("bucket") at dispatch width while
    // draining at the independent-instruction rate; the resolution time is
    // the average-branch-path latency at the resulting occupancy.
    const double d = cfg.dispatchWidth;
    const double rob = cfg.robSize;
    double ni = std::max(uopsBetweenMispredicts, 1.0);
    double occupancy = 0;

    // Independent instructions per cycle at occupancy r (Eq 3.6).
    auto drainRate = [&](double r) {
        double cp = std::max(chains.cp(std::max(r, 2.0)), 1.0);
        return r / (avgLat * cp);
    };

    int guard = 0;
    while (ni > d && guard++ < 100000) {
        double enter = std::min(d, rob - occupancy);
        ni -= enter;
        occupancy += enter;
        double leave = std::min(drainRate(occupancy), d);
        occupancy = std::max(occupancy - leave, 0.0);
    }
    occupancy = std::min(occupancy + ni, rob);
    double abp = std::max(chains.abp(std::max(occupancy, 2.0)), 1.0);
    return avgLat * abp;
}

} // namespace mipp
