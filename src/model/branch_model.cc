#include "model/branch_model.hh"

#include <algorithm>
#include <cmath>

namespace mipp {

BranchMissModel
BranchMissModel::pretrained(BranchPredictorKind kind)
{
    // Piecewise coefficients {kind, a, b, knee, a2} from training the
    // five 4 KB predictors against the synthetic suite (one 60k-uop
    // trace per workload; regenerate with `mipp_cli report calibrate`).
    // The hinge captures the super-linear degradation above the knee
    // that the thesis Fig 3.9 linear fit under-predicts.
    switch (kind) {
      case BranchPredictorKind::GAg:
        return {kind, 0.5571, 0.0293, 0.1823, 0.3820};
      case BranchPredictorKind::GAp:
        return {kind, 0.6950, -0.0006, 1.0, 0.0};
      case BranchPredictorKind::PAp:
        return {kind, 0.0141, 0.0245, 0.1991, 0.8594};
      case BranchPredictorKind::GShare:
        return {kind, 0.0, 0.0905, 0.1488, 0.9657};
      case BranchPredictorKind::Tournament:
        return {kind, 0.1756, 0.0052, 0.1907, 0.8389};
      default:
        return {kind, 0.70, 0.0};
    }
}

BranchMissModel
EntropyFitTrainer::fit(BranchPredictorKind kind) const
{
    BranchMissModel m;
    m.kind = kind;
    size_t n = xs_.size();
    if (n < 2)
        return m;
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (size_t i = 0; i < n; ++i) {
        sx += xs_[i];
        sy += ys_[i];
        sxx += xs_[i] * xs_[i];
        sxy += xs_[i] * ys_[i];
    }
    double denom = n * sxx - sx * sx;
    if (std::abs(denom) < 1e-12) {
        m.slope = 0;
        m.intercept = sy / n;
        return m;
    }
    m.slope = (n * sxy - sx * sy) / denom;
    m.intercept = (sy - m.slope * sx) / n;
    return m;
}

BranchMissModel
EntropyFitTrainer::fitPiecewise(BranchPredictorKind kind) const
{
    BranchMissModel best = fit(kind);
    const size_t n = xs_.size();
    if (n < 4)
        return best;

    double xMin = xs_[0], xMax = xs_[0];
    for (double x : xs_) {
        xMin = std::min(xMin, x);
        xMax = std::max(xMax, x);
    }
    if (xMax - xMin < 1e-9)
        return best;

    auto sse = [&](const BranchMissModel &m) {
        double s = 0;
        for (size_t i = 0; i < n; ++i) {
            double d = m.missRate(xs_[i]) - ys_[i];
            s += d * d;
        }
        return s;
    };
    double bestSse = sse(best);

    // Grid over candidate knees; for each, ordinary least squares on the
    // basis {1, x, max(0, x - knee)} via the 3x3 normal equations.
    constexpr int kSteps = 40;
    for (int k = 1; k < kSteps; ++k) {
        double knee = xMin + (xMax - xMin) * k / kSteps;
        double a[3][3] = {}; // normal matrix
        double rhs[3] = {};
        for (size_t i = 0; i < n; ++i) {
            double basis[3] = {1.0, xs_[i],
                               std::max(0.0, xs_[i] - knee)};
            for (int r = 0; r < 3; ++r) {
                rhs[r] += basis[r] * ys_[i];
                for (int c = 0; c < 3; ++c)
                    a[r][c] += basis[r] * basis[c];
            }
        }
        // Need points on both sides of the knee for a determined system.
        if (a[2][2] < 1e-12 || a[2][2] > 0.999 * a[1][1])
            continue;
        // Gaussian elimination with partial pivoting on the 3x3 system.
        double m3[3][4];
        for (int r = 0; r < 3; ++r) {
            for (int c = 0; c < 3; ++c)
                m3[r][c] = a[r][c];
            m3[r][3] = rhs[r];
        }
        bool singular = false;
        for (int col = 0; col < 3 && !singular; ++col) {
            int piv = col;
            for (int r = col + 1; r < 3; ++r)
                if (std::abs(m3[r][col]) > std::abs(m3[piv][col]))
                    piv = r;
            if (std::abs(m3[piv][col]) < 1e-12) {
                singular = true;
                break;
            }
            if (piv != col)
                for (int c = 0; c < 4; ++c)
                    std::swap(m3[piv][c], m3[col][c]);
            for (int r = 0; r < 3; ++r) {
                if (r == col)
                    continue;
                double f = m3[r][col] / m3[col][col];
                for (int c = col; c < 4; ++c)
                    m3[r][c] -= f * m3[col][c];
            }
        }
        if (singular)
            continue;
        BranchMissModel cand;
        cand.kind = kind;
        cand.intercept = m3[0][3] / m3[0][0];
        cand.slope = m3[1][3] / m3[1][1];
        cand.knee = knee;
        cand.kneeSlope = m3[2][3] / m3[2][2];
        // Constraints keep the fit physical (monotone in entropy, hinge
        // modeling super-linear degradation only): a negative slope or
        // extra slope means the unconstrained optimum wants a
        // *decreasing* segment, which would extrapolate nonsense across
        // a design sweep. Fall back to the slope = 0 two-basis fit
        // {1, hinge} so flat-then-rising shapes are still reachable.
        if (cand.slope < 0 || cand.kneeSlope <= 0) {
            double det = a[0][0] * a[2][2] - a[0][2] * a[0][2];
            if (std::abs(det) < 1e-12)
                continue;
            cand.slope = 0;
            cand.intercept =
                (rhs[0] * a[2][2] - rhs[2] * a[0][2]) / det;
            cand.kneeSlope =
                (rhs[2] * a[0][0] - rhs[0] * a[0][2]) / det;
            if (cand.kneeSlope <= 0)
                continue;
        }
        double s = sse(cand);
        if (s < bestSse) {
            bestSse = s;
            best = cand;
        }
    }
    return best;
}

double
EntropyFitTrainer::r2(const BranchMissModel &m) const
{
    size_t n = xs_.size();
    if (n < 2)
        return 0;
    double mean = 0;
    for (double y : ys_)
        mean += y;
    mean /= n;
    double ssTot = 0, ssRes = 0;
    for (size_t i = 0; i < n; ++i) {
        double pred = m.missRate(xs_[i]);
        ssRes += (ys_[i] - pred) * (ys_[i] - pred);
        ssTot += (ys_[i] - mean) * (ys_[i] - mean);
    }
    return ssTot > 0 ? 1.0 - ssRes / ssTot : 0;
}

double
EntropyFitTrainer::r2() const
{
    return r2(fit(BranchPredictorKind::GShare));
}

double
branchResolutionTime(const DependenceChains &chains, const CoreConfig &cfg,
                     double avgLat, double uopsBetweenMispredicts)
{
    // Thesis Alg 3.2: fill the window ("bucket") at dispatch width while
    // draining at the independent-instruction rate; the resolution time is
    // the average-branch-path latency at the resulting occupancy.
    const double d = cfg.dispatchWidth;
    const double rob = cfg.robSize;
    double ni = std::max(uopsBetweenMispredicts, 1.0);
    double occupancy = 0;

    // Independent instructions per cycle at occupancy r (Eq 3.6).
    auto drainRate = [&](double r) {
        double cp = std::max(chains.cp(std::max(r, 2.0)), 1.0);
        return r / (avgLat * cp);
    };

    int guard = 0;
    while (ni > d && guard++ < 100000) {
        double enter = std::min(d, rob - occupancy);
        ni -= enter;
        occupancy += enter;
        double leave = std::min(drainRate(occupancy), d);
        occupancy = std::max(occupancy - leave, 0.0);
    }
    occupancy = std::min(occupancy + ni, rob);
    double abp = std::max(chains.abp(std::max(occupancy, 2.0)), 1.0);
    return avgLat * abp;
}

} // namespace mipp
