#include "model/dispatch_model.hh"

#include <algorithm>
#include <vector>

namespace mipp {

const char *
DispatchLimits::binding() const
{
    double eff = effective();
    if (eff >= width)
        return "dispatch";
    if (eff >= dependences - 1e-9 && dependences <= ports &&
        dependences <= fus)
        return "dependences";
    if (ports <= fus)
        return "port";
    return "fu";
}

std::vector<double>
schedulePorts(const std::array<double, kNumUopTypes> &typeCounts,
              const CoreConfig &cfg)
{
    const size_t np = cfg.ports.size();
    std::vector<double> activity(np, 0.0);

    // Eligible ports per type, then schedule the most constrained types
    // (fewest eligible ports) first.
    std::vector<std::vector<size_t>> eligible(kNumUopTypes);
    std::vector<int> order;
    for (int t = 0; t < kNumUopTypes; ++t) {
        for (size_t p = 0; p < np; ++p)
            if (cfg.ports[p].canIssue(static_cast<UopType>(t)))
                eligible[t].push_back(p);
        if (typeCounts[t] > 0)
            order.push_back(t);
    }
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return eligible[a].size() < eligible[b].size();
    });

    for (int t : order) {
        const auto &ports = eligible[t];
        double remaining = typeCounts[t];
        if (ports.empty())
            continue;
        if (ports.size() == 1) {
            activity[ports[0]] += remaining;
            continue;
        }
        // Water-fill over eligible ports: repeatedly raise the lowest
        // port(s) to the next level until the type's count is consumed.
        std::vector<size_t> sorted(ports);
        std::sort(sorted.begin(), sorted.end(), [&](size_t a, size_t b) {
            return activity[a] < activity[b];
        });
        size_t k = 1;
        while (remaining > 0) {
            double level = activity[sorted[0]];
            double next = k < sorted.size() ?
                activity[sorted[k]] : level + remaining;
            double capacity = (next - level) * k;
            if (capacity >= remaining) {
                double add = remaining / k;
                for (size_t i = 0; i < k; ++i)
                    activity[sorted[i]] += add;
                remaining = 0;
            } else {
                for (size_t i = 0; i < k; ++i)
                    activity[sorted[i]] = next;
                remaining -= capacity;
                if (k < sorted.size())
                    ++k;
            }
        }
    }
    return activity;
}

DispatchLimits
dispatchLimits(const std::array<double, kNumUopTypes> &typeCounts,
               double cp, double avgLat, const CoreConfig &cfg,
               double window)
{
    DispatchLimits lim;
    lim.width = cfg.dispatchWidth;

    double n = 0;
    for (double c : typeCounts)
        n += c;
    if (n <= 0) {
        lim.dependences = lim.ports = lim.fus = lim.width;
        return lim;
    }

    // (2) Dependences: W / (lat * CP(W)), Eq 3.7, at the effective
    // instruction window (== ROB unless truncated by the caller).
    double w = window > 0 ? window : static_cast<double>(cfg.robSize);
    lim.dependences = cp > 0 && avgLat > 0 ?
        w / (avgLat * cp) : lim.width;

    // (3) Ports: N / busiest port.
    auto activity = schedulePorts(typeCounts, cfg);
    double maxAct = 0;
    for (double a : activity)
        maxAct = std::max(maxAct, a);
    lim.ports = maxAct > 0 ? n / maxAct : lim.width;

    // (4)+(5) Functional units, pipelined and non-pipelined.
    double fuLimit = lim.width * 4; // effectively unbounded
    for (int t = 0; t < kNumUopTypes; ++t) {
        if (typeCounts[t] <= 0)
            continue;
        const FuPool &pool = cfg.fus[t];
        double u = std::max<double>(pool.count, 1);
        double rate = pool.pipelined ?
            n * u / typeCounts[t] :
            n * u / (typeCounts[t] * cfg.lat.of(static_cast<UopType>(t)));
        fuLimit = std::min(fuLimit, rate);
    }
    lim.fus = fuLimit;
    return lim;
}

} // namespace mipp
