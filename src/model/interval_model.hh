/**
 * @file
 * The micro-architecture independent interval model (thesis Eq 3.1):
 *
 *   C = N/Deff + m_bpred (c_res + c_fe) + sum_i m_IL_i c_L(i+1)
 *       + m_LLC (c_mem + c_bus)/MLP + P_hLLC
 *
 * Every input is computed from the profile by a statistical sub-model:
 * Deff from dependence chains and issue-port scheduling (dispatch_model),
 * m_bpred from linear branch entropy (branch_model), cache misses from
 * StatStack, MLP from the cold-miss or stride model (mlp_model), plus the
 * memory-bus, MSHR, LLC-chaining and prefetcher corrections. Evaluation
 * takes microseconds per design point — that is the paper's headline
 * speedup over simulation.
 *
 * The model can be evaluated globally (ISPASS'15) or per micro-trace
 * window and summed (TC'16, better burstiness capture + phase output).
 */

#ifndef MIPP_MODEL_INTERVAL_MODEL_HH
#define MIPP_MODEL_INTERVAL_MODEL_HH

#include <optional>
#include <vector>

#include "model/branch_model.hh"
#include "model/calibration.hh"
#include "model/dispatch_model.hh"
#include "model/mlp_model.hh"
#include "profiler/profile.hh"
#include "uarch/activity.hh"
#include "uarch/core_config.hh"
#include "uarch/cpi_stack.hh"

namespace mipp {

/** Model configuration / ablation switches. */
struct ModelOptions {
    /** Base-component refinement level (thesis Fig 3.7 ablation). */
    enum class BaseLevel {
        Instructions,  ///< N = instructions, Deff = D
        MicroOps,      ///< N = uops, Deff = D
        CriticalPath,  ///< + dependence limit
        Functional,    ///< + port & functional-unit limits (full Eq 3.10)
    };
    BaseLevel baseLevel = BaseLevel::Functional;

    /** MLP model selection (thesis §4.4 vs §4.5; None for Fig 4.3). */
    enum class MlpMode { None, ColdMiss, Stride };
    MlpMode mlpMode = MlpMode::Stride;

    bool modelMshrs = true;        ///< thesis §4.6
    bool modelBus = true;          ///< thesis §4.7
    bool modelLlcChaining = true;  ///< thesis §4.8
    bool modelPrefetcher = true;   ///< thesis §4.9 (needs cfg flag too)

    /** Evaluate per micro-trace window and sum (TC'16) instead of on the
     *  averaged whole-program profile. */
    bool perWindow = true;

    /** Entropy->missrate fit; defaults to the pretrained fit for the
     *  configured predictor. */
    std::optional<BranchMissModel> branchModel;

    /** Recalibration coefficients (model/calibration.hh); defaults to
     *  the fitted values, ModelCalibration::uncalibrated() recovers the
     *  plain thesis formulation. */
    ModelCalibration cal = ModelCalibration::fitted();
};

/** Full model output for one (profile, configuration) pair. */
struct ModelResult {
    double cycles = 0;
    double uops = 0;           ///< whole-program uops
    double instructions = 0;

    CpiStack stack;            ///< cycles per component
    DispatchLimits limits;     ///< Eq 3.10 terms (Fig 3.6)
    double deff = 0;
    double avgLatency = 0;

    double branchMissRate = 0;
    double branchMisses = 0;
    double branchResolution = 0;

    /** Whole-program load misses per level (StatStack). */
    double loadMissesL1 = 0, loadMissesL2 = 0, loadMissesL3 = 0;
    double storeMissesL1 = 0, storeMissesL2 = 0, storeMissesL3 = 0;
    double ifetchMissesL1 = 0, ifetchMissesL2 = 0, ifetchMissesL3 = 0;

    double mlp = 1.0;
    double busCyclesPerMiss = 0;
    double llcChainPenalty = 0;

    ActivityCounts activity;

    /** Per profiled-window uop-CPI (perWindow mode; phase analysis). */
    std::vector<double> windowCpi;

    double cpiPerUop() const { return uops ? cycles / uops : 0; }
    double cpiPerInst() const
    {
        return instructions ? cycles / instructions : 0;
    }
};

/**
 * Evaluate the interval model. Pure function; microseconds per call.
 *
 * This entry point rebuilds every profile-derived intermediate from
 * scratch. When evaluating many design points against one profile (a
 * design-space sweep), construct an EvalContext and use the overload in
 * model/eval_cache.hh instead — bitwise-identical results, with the
 * per-workload intermediates built once and memoized.
 */
ModelResult evaluateModel(const Profile &p, const CoreConfig &cfg,
                          const ModelOptions &opts = {});

} // namespace mipp

#endif // MIPP_MODEL_INTERVAL_MODEL_HH
