/**
 * @file
 * Branch misprediction modeling without predictor simulation (thesis §3.5).
 *
 * Linear branch entropy E (profiled once, micro-architecture independent)
 * maps to a per-predictor miss rate through a fit trained offline against
 * simulated predictors (thesis Fig 3.8/3.9). The thesis uses a plain
 * linear fit missRate = a * E + b; measured miss rates bend *upwards* for
 * high-entropy mixes (predictors degrade super-linearly once history
 * aliasing sets in), which a single line cannot capture without
 * over-predicting the low-entropy bulk. The recalibrated fit is therefore
 * piecewise linear with a hinge:
 *
 *     missRate = a * E + b + a2 * max(0, E - knee)
 *
 * with (a, b, a2, knee) refit per predictor by the calibration harness
 * (validate/calibrate.cc). The branch *resolution time* is computed with
 * Michaud's leaky-bucket algorithm (thesis Alg 3.2) using the
 * average-branch-path chain length.
 */

#ifndef MIPP_MODEL_BRANCH_MODEL_HH
#define MIPP_MODEL_BRANCH_MODEL_HH

#include <vector>

#include "profiler/profile.hh"
#include "uarch/core_config.hh"

namespace mipp {

/** Piecewise-linear entropy -> miss-rate model for one predictor. */
struct BranchMissModel {
    BranchPredictorKind kind = BranchPredictorKind::GShare;
    double slope = 0.44;
    double intercept = 0.005;
    /** Hinge of the piecewise fit; >= 1 degenerates to the linear fit. */
    double knee = 1.0;
    /** Extra slope above the knee (>= 0). */
    double kneeSlope = 0.0;

    /** Predicted miss rate for average entropy @p e, clamped to [0, 1]. */
    double
    missRate(double e) const
    {
        double m = slope * e + intercept;
        if (e > knee)
            m += kneeSlope * (e - knee);
        return m < 0 ? 0 : (m > 1 ? 1 : m);
    }

    /**
     * Pre-trained coefficients per predictor kind, produced by the
     * calibration harness (validate/calibrate.cc, piecewise refit over
     * the synthetic suite against the simulated predictors); re-run
     * `mipp_cli report calibrate` to regenerate them.
     */
    static BranchMissModel pretrained(BranchPredictorKind kind);
};

/** Least-squares trainer for (entropy, missRate) pairs (thesis Fig 3.9). */
class EntropyFitTrainer
{
  public:
    void
    add(double entropy, double missRate)
    {
        xs_.push_back(entropy);
        ys_.push_back(missRate);
    }

    /** Fit y = a x + b; returns the model for @p kind. */
    BranchMissModel fit(BranchPredictorKind kind) const;

    /**
     * Fit the piecewise form y = a x + b + a2 max(0, x - knee): for each
     * candidate knee (grid over the observed entropy range) solve the
     * two-basis least squares, keep the knee with the smallest residual.
     * Degenerates to the linear fit when the hinge does not help (a2
     * would be negative, or fewer than 4 points).
     */
    BranchMissModel fitPiecewise(BranchPredictorKind kind) const;

    /** Coefficient of determination of @p m over the training points. */
    double r2(const BranchMissModel &m) const;

    /** Coefficient of determination of the plain linear fit. */
    double r2() const;

    size_t size() const { return xs_.size(); }

  private:
    std::vector<double> xs_, ys_;
};

/**
 * Branch resolution time c_res via the leaky-bucket algorithm
 * (thesis Alg 3.2).
 *
 * @param chains   profiled dependence chains (ABP/CP interpolation)
 * @param cfg      core configuration (D, ROB)
 * @param avgLat   average uop execution latency
 * @param uopsBetweenMispredicts  interval length N_i in uops
 */
double branchResolutionTime(const DependenceChains &chains,
                            const CoreConfig &cfg, double avgLat,
                            double uopsBetweenMispredicts);

} // namespace mipp

#endif // MIPP_MODEL_BRANCH_MODEL_HH
