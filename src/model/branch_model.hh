/**
 * @file
 * Branch misprediction modeling without predictor simulation (thesis §3.5).
 *
 * Linear branch entropy E (profiled once, micro-architecture independent)
 * maps to a per-predictor miss rate through a linear fit trained offline
 * (thesis Fig 3.8/3.9): missRate = a * E + b. The branch *resolution time*
 * is computed with Michaud's leaky-bucket algorithm (thesis Alg 3.2) using
 * the average-branch-path chain length.
 */

#ifndef MIPP_MODEL_BRANCH_MODEL_HH
#define MIPP_MODEL_BRANCH_MODEL_HH

#include <vector>

#include "profiler/profile.hh"
#include "uarch/core_config.hh"

namespace mipp {

/** Linear entropy -> miss-rate model for one predictor organization. */
struct BranchMissModel {
    BranchPredictorKind kind = BranchPredictorKind::GShare;
    double slope = 0.44;
    double intercept = 0.005;

    /** Predicted miss rate for average entropy @p e, clamped to [0, 1]. */
    double
    missRate(double e) const
    {
        double m = slope * e + intercept;
        return m < 0 ? 0 : (m > 1 ? 1 : m);
    }

    /**
     * Pre-trained coefficients per predictor kind. These were produced by
     * the training harness in bench_fig3_9_entropy_fit over the synthetic
     * workload suite; re-run that bench to regenerate them.
     */
    static BranchMissModel pretrained(BranchPredictorKind kind);
};

/** Least-squares trainer for (entropy, missRate) pairs (thesis Fig 3.9). */
class EntropyFitTrainer
{
  public:
    void
    add(double entropy, double missRate)
    {
        xs_.push_back(entropy);
        ys_.push_back(missRate);
    }

    /** Fit y = a x + b; returns the model for @p kind. */
    BranchMissModel fit(BranchPredictorKind kind) const;

    /** Coefficient of determination of the fit. */
    double r2() const;

    size_t size() const { return xs_.size(); }

  private:
    std::vector<double> xs_, ys_;
};

/**
 * Branch resolution time c_res via the leaky-bucket algorithm
 * (thesis Alg 3.2).
 *
 * @param chains   profiled dependence chains (ABP/CP interpolation)
 * @param cfg      core configuration (D, ROB)
 * @param avgLat   average uop execution latency
 * @param uopsBetweenMispredicts  interval length N_i in uops
 */
double branchResolutionTime(const DependenceChains &chains,
                            const CoreConfig &cfg, double avgLat,
                            double uopsBetweenMispredicts);

} // namespace mipp

#endif // MIPP_MODEL_BRANCH_MODEL_HH
