/**
 * @file
 * Effective dispatch rate modeling (thesis §3.3-3.4, Eq 3.10).
 *
 * The base component of the interval model divides uops by the *effective*
 * dispatch rate, which is the physical width further limited by (1) the
 * critical dependence path through the ROB (Little's law, Eq 3.7), (2) the
 * busiest issue port after greedily scheduling the instruction mix over the
 * ports (thesis Fig 3.5/3.6), and (3) pipelined and non-pipelined
 * functional-unit throughput.
 */

#ifndef MIPP_MODEL_DISPATCH_MODEL_HH
#define MIPP_MODEL_DISPATCH_MODEL_HH

#include <array>

#include "profiler/profile.hh"
#include "uarch/core_config.hh"

namespace mipp {

/** The individual limiters of Eq 3.10, for Fig 3.6-style breakdowns. */
struct DispatchLimits {
    double width = 0;        ///< physical dispatch width D
    double dependences = 0;  ///< ROB / (lat * CP(ROB))
    double ports = 0;        ///< N / max port activity
    double fus = 0;          ///< pipelined + non-pipelined FU throughput

    double
    effective() const
    {
        double d = width;
        if (dependences > 0)
            d = std::min(d, dependences);
        if (ports > 0)
            d = std::min(d, ports);
        if (fus > 0)
            d = std::min(d, fus);
        return std::max(d, 1e-3);
    }

    /** Name of the binding constraint. */
    const char *binding() const;
};

/**
 * Greedy issue-port schedule: distribute per-type uop counts over the
 * configured ports, single-port types first, multi-port types water-filled
 * over their eligible ports (thesis §3.4). @return per-port activity.
 */
std::vector<double>
schedulePorts(const std::array<double, kNumUopTypes> &typeCounts,
              const CoreConfig &cfg);

/**
 * All Eq 3.10 terms for a mix of @p typeCounts uops (summing to n) with
 * critical path length @p cp at the effective instruction window and
 * average latency @p avgLat.
 *
 * @param window  effective instruction-window size for the dependence
 *                limit (Eq 3.7); 0 uses cfg.robSize. The recalibrated
 *                model truncates it to the mispredict interval: a stopped
 *                front end cannot fill the window past an unresolved
 *                mispredicted branch, so @p cp must be the chain length
 *                at the *same* window size.
 */
DispatchLimits
dispatchLimits(const std::array<double, kNumUopTypes> &typeCounts,
               double cp, double avgLat, const CoreConfig &cfg,
               double window = 0);

} // namespace mipp

#endif // MIPP_MODEL_DISPATCH_MODEL_HH
