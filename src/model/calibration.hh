/**
 * @file
 * Model-recalibration coefficients.
 *
 * The interval model's sub-models are structurally right but carry
 * systematic residuals against the cycle-level simulator (see ROADMAP
 * "Open items" and validate/calibrate.hh). Each coefficient below scales
 * or gates one *mechanism* the plain thesis formulation misses; the
 * values are not hand-tuned — they are fitted against simulator ground
 * truth by the residual-decomposition harness in validate/calibrate.cc
 * (`mipp_cli report calibrate`) and baked in here. Re-run the harness
 * after any model change and update fitted() from its output.
 *
 * The mechanisms:
 *
 *  - penaltyScale: fraction of the naive mispredict penalty
 *    (c_res + frontend refill) that is *visible* as branch cycles.
 *    The simulator attributes a mispredict's cycles to the branch
 *    component only while the ROB is drained; resolution that happens
 *    under the shadow of an older long-latency load is charged to that
 *    load, so charging the full penalty over-counts on every workload
 *    with any memory component.
 *
 *  - baseWindowFrac: a mispredicted branch stops the front end, so the
 *    instruction window never holds more than the mispredict interval
 *    N_i; the dependence-limited dispatch rate must be evaluated at
 *    W = min(ROB, baseWindowFrac * N_i) instead of the full ROB
 *    (ramp-up: the window is still refilling for part of each interval,
 *    hence frac < 1 on average).
 *
 *  - mlpWindowFrac: the same truncation for memory-level parallelism —
 *    long-latency misses separated by a mispredicted branch cannot
 *    overlap, so the stride-MLP window walk steps
 *    min(ROB, mlpWindowFrac * N_i)-sized windows.
 *
 *  - shadowScale: the DRAM effective-latency "shadow" correction assumed
 *    a contention-limited back end keeps doing useful work under a miss
 *    and subtracted the full drain-time slack; in bandwidth-limited
 *    windows the work in the shadow is itself memory-bound, so only
 *    shadowScale of the slack is really hidden.
 *
 *  - busQueueScale: the thesis Eq 4.5 bus model charges (MLP'+1)/2
 *    transfers of queueing per access; measured bus-wait cycles in the
 *    simulator grow slower than that with MLP' (transfers pipeline
 *    behind the leading access), so only the *excess* over the single
 *    transfer is scaled by busQueueScale.
 *
 *  - coldInject: per-static-op error-diffusion miss marking loses
 *    expected misses that never accumulate to a whole miss per op —
 *    exactly the scattered cold/footprint misses of low-miss-rate
 *    workloads, which then predict a zero DRAM component. The shortfall
 *    between the StatStack expectation and the marked misses is
 *    re-injected (weighted by profiled per-window cold counts) with the
 *    profiled cold-burst MLP.
 */

#ifndef MIPP_MODEL_CALIBRATION_HH
#define MIPP_MODEL_CALIBRATION_HH

namespace mipp {

/** Fitted correction coefficients (see file comment for semantics). */
struct ModelCalibration {
    double penaltyScale = 1.0;   ///< visible share of the mispredict penalty
    double baseWindowFrac = 0.0; ///< dep-limit window = min(ROB, f*N_i); 0=off
    double mlpWindowFrac = 0.0;  ///< MLP-walk window = min(ROB, f*N_i); 0=off
    double shadowScale = 1.0;    ///< DRAM shadow-slack scale
    double busQueueScale = 1.0;  ///< bus queueing-excess scale
    double coldInject = 0.0;     ///< cold-miss shortfall injection fraction

    bool operator==(const ModelCalibration &) const = default;

    /** Thesis formulation: every correction off. */
    static ModelCalibration
    uncalibrated()
    {
        return {};
    }

    /**
     * Coefficients fitted by `mipp_cli report calibrate` on the suite +
     * phased workloads over the "ci" grid at 60k uops (the grid the
     * accuracy golden is recorded on). Defaults for ModelOptions.
     */
    static ModelCalibration
    fitted()
    {
        ModelCalibration c;
        c.penaltyScale = 0.3944;
        c.baseWindowFrac = 0.9333;
        c.mlpWindowFrac = 1.8042;
        c.shadowScale = 0.6458;
        c.busQueueScale = 0.5833;
        c.coldInject = 0.4583;
        return c;
    }
};

} // namespace mipp

#endif // MIPP_MODEL_CALIBRATION_HH
