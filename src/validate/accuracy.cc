#include "validate/accuracy.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "model/eval_cache.hh"
#include "obs/trace.hh"
#include "power/power_model.hh"
#include "profiler/profiler.hh"
#include "trace/mtf.hh"
#include "uarch/design_space.hh"
#include "util/status.hh"
#include "util/thread_pool.hh"
#include "validate/json_util.hh"
#include "workloads/workload.hh"

namespace mipp {

namespace {

using jsonutil::jescape;
using jsonutil::jnum;

constexpr std::array<const char *, kNumAccuracyMetrics> kMetricNames = {
    "cpi",  "base", "branch", "icache", "l2hit", "llcHit",
    "dram", "mrL1", "mrL2",   "mrL3",   "power",
};

size_t
mi(AccuracyMetric m)
{
    return static_cast<size_t>(m);
}

std::string
fmt(const char *f, double a, double b = 0, double c = 0)
{
    char buf[160];
    std::snprintf(buf, sizeof buf, f, a, b, c);
    return buf;
}

void
jstack(std::ostringstream &os, const CpiStack &s)
{
    os << "{\"base\": " << jnum(s.base) << ", \"branch\": "
       << jnum(s.branch) << ", \"icache\": " << jnum(s.icache)
       << ", \"l2hit\": " << jnum(s.l2hit) << ", \"llcHit\": "
       << jnum(s.llcHit) << ", \"dram\": " << jnum(s.dram) << "}";
}

void
checkLevel(std::vector<std::string> &v, const char *name,
           const LevelStats &s)
{
    if (s.loadMisses > s.loadAccesses || s.storeMisses > s.storeAccesses ||
        s.ifetchMisses > s.ifetchAccesses)
        v.push_back(std::string(name) + ": misses exceed accesses");
}

} // namespace

std::string_view
accuracyMetricName(AccuracyMetric m)
{
    return kMetricNames[mi(m)];
}

std::vector<CoreConfig>
accuracyGrid(const std::string &preset)
{
    auto point = [](uint32_t w, uint32_t rob, uint32_t l1k, uint32_t l2k,
                    uint32_t l3m, const char *name) {
        CoreConfig c = CoreConfig::nehalemReference();
        c.setWidth(w);
        scaleBackEnd(c, rob);
        c.l1d.sizeBytes = l1k * 1024;
        c.l1i.sizeBytes = l1k * 1024;
        c.l2.sizeBytes = l2k * 1024;
        c.l3.sizeBytes = l3m * 1024 * 1024;
        scaleCacheLatencies(c);
        c.name = name;
        return c;
    };

    std::vector<CoreConfig> grid;
    if (preset == "ci") {
        grid.push_back(CoreConfig::nehalemReference());
        grid.push_back(point(2, 64, 16, 128, 2, "little"));
    } else if (preset == "default") {
        grid.push_back(CoreConfig::nehalemReference());
        grid.push_back(point(2, 64, 16, 128, 2, "little"));
        grid.push_back(point(6, 256, 64, 512, 32, "big"));
        grid.push_back(point(4, 256, 32, 256, 2, "deep_small_llc"));
        CoreConfig pf = CoreConfig::nehalemReference();
        pf.prefetcherEnabled = true;
        pf.name = "nehalem_pf";
        grid.push_back(pf);
    } else if (preset == "wide") {
        grid = DesignSpace::small().configs();
    } else {
        throw StatusError(invalidArgument(
            "unknown accuracy grid preset '" + preset +
            "' (ci|default|wide)"));
    }
    return grid;
}

std::vector<std::string>
checkSimConsistency(const SimResult &sim, double stackTolerance)
{
    std::vector<std::string> v;
    const MemoryStats &m = sim.mem;

    // CPI stack sums to the simulated cycles: account() attributes every
    // cycle to exactly one component, so this holds exactly unless the
    // attribution logic regresses.
    double cycles = static_cast<double>(sim.cycles);
    double total = sim.stack.total();
    if (std::abs(total - cycles) > stackTolerance * std::max(cycles, 1.0))
        v.push_back(fmt("CpiStack total %.1f vs %.1f cycles "
                        "(beyond tolerance)",
                        total, cycles));

    // Per-level access chaining: every miss at level N is an access at
    // level N+1; prefetches account their own DRAM fetch at issue.
    uint64_t l1Misses = m.l1d.misses() + m.l1i.misses();
    if (m.l2.accesses() != l1Misses)
        v.push_back(fmt("L2 accesses %.0f != L1 misses %.0f",
                        double(m.l2.accesses()), double(l1Misses)));
    if (m.l3.accesses() != m.l2.misses())
        v.push_back(fmt("L3 accesses %.0f != L2 misses %.0f",
                        double(m.l3.accesses()), double(m.l2.misses())));
    if (m.dramAccesses != m.l3.misses() + m.prefetchesIssued)
        v.push_back(fmt("DRAM accesses %.0f != L3 misses + prefetches "
                        "issued %.0f",
                        double(m.dramAccesses),
                        double(m.l3.misses() + m.prefetchesIssued)));

    checkLevel(v, "L1I", m.l1i);
    checkLevel(v, "L1D", m.l1d);
    checkLevel(v, "L2", m.l2);
    checkLevel(v, "L3", m.l3);

    // Cold/capacity classification covers exactly the demand DRAM data
    // misses.
    if (m.coldLoadMisses + m.capacityLoadMisses != m.l3.loadMisses)
        v.push_back(fmt("cold+capacity load misses %.0f != L3 load "
                        "misses %.0f",
                        double(m.coldLoadMisses + m.capacityLoadMisses),
                        double(m.l3.loadMisses)));
    if (m.coldStoreMisses + m.capacityStoreMisses != m.l3.storeMisses)
        v.push_back(fmt("cold+capacity store misses %.0f != L3 store "
                        "misses %.0f",
                        double(m.coldStoreMisses + m.capacityStoreMisses),
                        double(m.l3.storeMisses)));

    // Activity factors the power model consumes must mirror the memory
    // statistics and the committed totals. Drift guard only: the
    // simulator currently copies MemoryStats into ActivityCounts
    // verbatim, so miscounted traffic is caught by the chaining
    // invariants above, not here.
    const ActivityCounts &a = sim.activity;
    if (a.cycles != sim.cycles)
        v.push_back("activity cycles != simulated cycles");
    if (a.uops != sim.uops)
        v.push_back("activity uops != committed uops");
    if (a.l1iAccesses != m.l1i.accesses() ||
        a.l1dAccesses != m.l1d.accesses() ||
        a.l2Accesses != m.l2.accesses() ||
        a.l3Accesses != m.l3.accesses() ||
        a.dramAccesses != m.dramAccesses)
        v.push_back("activity cache-access counts disagree with "
                    "MemoryStats");
    if (sim.dramCycles > sim.cycles)
        v.push_back("DRAM-outstanding cycles exceed total cycles");
    return v;
}

std::vector<std::string>
checkModelConsistency(const ModelResult &m, double stackTolerance)
{
    std::vector<std::string> v;

    double total = m.stack.total();
    if (std::abs(total - m.cycles) >
        stackTolerance * std::max(m.cycles, 1.0))
        v.push_back(fmt("model CpiStack total %.1f vs %.1f cycles "
                        "(beyond tolerance)",
                        total, m.cycles));

    const double eps = 1e-9;
    if (m.stack.base < -eps || m.stack.branch < -eps ||
        m.stack.icache < -eps || m.stack.l2hit < -eps ||
        m.stack.llcHit < -eps || m.stack.dram < -eps)
        v.push_back("negative model stack component");

    // StatStack miss counts are monotone in cache size.
    auto mono = [&](const char *what, double a, double b, double c) {
        if (a + eps < b || b + eps < c || c < -eps)
            v.push_back(std::string("non-monotonic model ") + what +
                        " misses across levels");
    };
    mono("load", m.loadMissesL1, m.loadMissesL2, m.loadMissesL3);
    mono("store", m.storeMissesL1, m.storeMissesL2, m.storeMissesL3);
    mono("ifetch", m.ifetchMissesL1, m.ifetchMissesL2, m.ifetchMissesL3);

    // Activity counts must be the integer images of the model's own
    // miss predictions (truncation allows a 1-count slack each).
    const ActivityCounts &a = m.activity;
    auto near = [&](const char *what, uint64_t got, double want) {
        if (std::abs(static_cast<double>(got) - want) > 1.5)
            v.push_back(std::string("activity ") + what +
                        " disagrees with model miss counts");
    };
    near("l2Accesses", a.l2Accesses,
         m.loadMissesL1 + m.storeMissesL1 + m.ifetchMissesL1);
    near("l3Accesses", a.l3Accesses,
         m.loadMissesL2 + m.storeMissesL2 + m.ifetchMissesL2);
    near("dramAccesses", a.dramAccesses,
         m.loadMissesL3 + m.storeMissesL3 + m.ifetchMissesL3);
    near("uops", a.uops, m.uops);
    return v;
}

void
buildAccuracySuite(size_t uops, bool includePhased,
                   const std::vector<std::string> &filter,
                   std::vector<std::string> &names,
                   std::vector<Trace> &traces,
                   const std::vector<std::string> &traceFiles)
{
    auto wants = [&](const std::string &n) {
        return filter.empty() ||
               std::find(filter.begin(), filter.end(), n) != filter.end();
    };

    for (const auto &s : workloadSuite()) {
        if (!wants(s.name))
            continue;
        names.push_back(s.name);
        traces.push_back(generateWorkload(s, uops));
    }
    if (includePhased) {
        for (PhasedSpec p : phasedSuite()) {
            if (!wants(p.name))
                continue;
            // Scale segments so the whole phased trace matches the
            // requested length: reduced runs (CI) stay fast and phased
            // points stay comparable to the suite traces.
            size_t segUops = std::max<size_t>(
                uops / std::max<size_t>(p.segments.size(), 1), 1000);
            for (auto &seg : p.segments)
                seg.second = segUops;
            names.push_back(p.name);
            traces.push_back(generatePhased(p));
        }
    }
    // A filter entry that matched nothing is a typo (or a phased name
    // with includePhased off): an empty/partial report would otherwise
    // sail through the baseline gate with trivially low MAPEs.
    for (const auto &w : filter) {
        if (std::find(names.begin(), names.end(), w) == names.end())
            throw StatusError(invalidArgument(
                "accuracy filter matched no workload named '" + w +
                "'"));
    }
    // Recorded .mtf traces ride along as extra validation workloads,
    // materialized whole (the simulator side needs the full stream).
    for (const auto &path : traceFiles) {
        Trace t;
        Status st = loadMtfTrace(path, t);
        if (!st.isOk())
            throw StatusError(st);
        size_t slash = path.find_last_of('/');
        std::string base =
            slash == std::string::npos ? path : path.substr(slash + 1);
        size_t dot = base.find_last_of('.');
        if (dot != std::string::npos && dot > 0)
            base.resize(dot);
        names.push_back(base.empty() ? path : base);
        traces.push_back(std::move(t));
    }
}

PointAccuracy
scoreAccuracyPoint(const SimResult &sim, const ModelResult &mod,
                   const CoreConfig &cfg, const Profile &profile,
                   const std::string &workload)
{
    PointAccuracy pa;
    pa.workload = workload;
    pa.config = cfg.name;
    pa.simCpi = sim.cpiPerUop();
    pa.modelCpi = mod.cpiPerUop();
    pa.simWatts = computePower(sim.activity, cfg).total();
    pa.modelWatts = computePower(mod.activity, cfg).total();
    double su = sim.uops ? double(sim.uops) : 1.0;
    double mu = mod.uops > 0 ? mod.uops : 1.0;
    pa.simStack = sim.stack.scaled(1.0 / su);
    pa.modelStack = mod.stack.scaled(1.0 / mu);

    const MemoryStats &ms = sim.mem;
    double demandLoads =
        std::max<double>(1.0, double(ms.l1d.loadAccesses));
    double mLoads =
        std::max<double>(1.0, double(profile.reuseLoads.total()));
    pa.simMr = {double(ms.l1d.loadMisses) / demandLoads,
                double(ms.l2.loadMisses) / demandLoads,
                double(ms.l3.loadMisses) / demandLoads};
    pa.modelMr = {mod.loadMissesL1 / mLoads, mod.loadMissesL2 / mLoads,
                  mod.loadMissesL3 / mLoads};

    double sc = pa.simCpi > 0 ? pa.simCpi : 1.0;
    auto &e = pa.err;
    e[mi(AccuracyMetric::Cpi)] = 100.0 * (pa.modelCpi - pa.simCpi) / sc;
    e[mi(AccuracyMetric::Base)] =
        100.0 * (pa.modelStack.base - pa.simStack.base) / sc;
    e[mi(AccuracyMetric::Branch)] =
        100.0 * (pa.modelStack.branch - pa.simStack.branch) / sc;
    e[mi(AccuracyMetric::Icache)] =
        100.0 * (pa.modelStack.icache - pa.simStack.icache) / sc;
    e[mi(AccuracyMetric::L2Hit)] =
        100.0 * (pa.modelStack.l2hit - pa.simStack.l2hit) / sc;
    e[mi(AccuracyMetric::LlcHit)] =
        100.0 * (pa.modelStack.llcHit - pa.simStack.llcHit) / sc;
    e[mi(AccuracyMetric::Dram)] =
        100.0 * (pa.modelStack.dram - pa.simStack.dram) / sc;
    for (int l = 0; l < 3; ++l)
        e[mi(AccuracyMetric::MrL1) + l] =
            100.0 * (pa.modelMr[l] - pa.simMr[l]);
    e[mi(AccuracyMetric::Power)] =
        100.0 * (pa.modelWatts - pa.simWatts) /
        (pa.simWatts > 0 ? pa.simWatts : 1.0);
    return pa;
}

std::array<MetricSummary, kNumAccuracyMetrics>
summarizeAccuracy(const std::vector<PointAccuracy> &points)
{
    std::array<MetricSummary, kNumAccuracyMetrics> summary{};
    for (size_t k = 0; k < kNumAccuracyMetrics; ++k) {
        MetricSummary &s = summary[k];
        for (const PointAccuracy &pa : points) {
            double err = pa.err[k];
            s.mape += std::abs(err);
            s.meanSigned += err;
            s.maxAbs = std::max(s.maxAbs, std::abs(err));
            s.minSigned = std::min(s.minSigned, err);
            s.maxSigned = std::max(s.maxSigned, err);
        }
        if (!points.empty()) {
            s.mape /= double(points.size());
            s.meanSigned /= double(points.size());
        }
    }
    return summary;
}

AccuracyReport
runAccuracy(const AccuracyOptions &opts)
{
    MIPP_SPAN("accuracy.run");
    std::vector<CoreConfig> grid =
        opts.grid.empty() ? accuracyGrid("default") : opts.grid;

    std::vector<std::string> names;
    std::vector<Trace> traces;
    buildAccuracySuite(opts.uops, opts.includePhased, opts.workloads,
                       names, traces, opts.traceFiles);

    std::vector<ProfilerConfig> pcfgs(names.size());
    for (size_t i = 0; i < names.size(); ++i)
        pcfgs[i].name = names[i];
    std::vector<Profile> profiles = profileTraces(traces, pcfgs);

    const size_t nw = names.size(), nc = grid.size();
    AccuracyReport rep;
    rep.uops = opts.uops;
    rep.workloadNames = names;
    for (const auto &c : grid)
        rep.gridNames.push_back(c.name);
    rep.points.assign(nw * nc, {});
    std::vector<std::vector<std::string>> viols(nw);

    parallelForShared(nw, opts.threads, [&](size_t begin, size_t end) {
        for (size_t wi = begin; wi < end; ++wi) {
            if (opts.cancel.cancelled())
                return;
            MIPP_SPAN("accuracy.workload");
            EvalContext ctx(profiles[wi]);
            for (size_t ci = 0; ci < nc; ++ci) {
                if (opts.cancel.cancelled())
                    return;
                const CoreConfig &cfg = grid[ci];
                MIPP_SPAN("accuracy.point");
                SimResult sim = simulate(traces[wi], cfg);
                ModelResult mod = evaluateModel(ctx, cfg, opts.mopts);

                rep.points[wi * nc + ci] = scoreAccuracyPoint(
                    sim, mod, cfg, profiles[wi], names[wi]);

                for (const auto &s :
                     checkSimConsistency(sim, opts.stackTolerance))
                    viols[wi].push_back(names[wi] + "/" + cfg.name +
                                        ": sim: " + s);
                for (const auto &s :
                     checkModelConsistency(mod, opts.stackTolerance))
                    viols[wi].push_back(names[wi] + "/" + cfg.name +
                                        ": model: " + s);
            }
        }
    });

    for (auto &v : viols)
        rep.violations.insert(rep.violations.end(), v.begin(), v.end());

    if (opts.cancel.cancelled()) {
        // Degraded partial report: keep only the comparisons that
        // finished (an unfilled slot still has its default-constructed
        // empty workload name), so the summaries below aggregate real
        // points only.
        rep.degraded = true;
        std::erase_if(rep.points, [](const PointAccuracy &pt) {
            return pt.workload.empty();
        });
    }

    rep.summary = summarizeAccuracy(rep.points);
    return rep;
}

std::string
accuracyJson(const AccuracyReport &r)
{
    std::ostringstream os;
    os << "{\n  \"schema\": \"mipp-accuracy-v1\",\n";
    os << "  \"uops\": " << r.uops << ",\n";
    os << "  \"grid\": [";
    for (size_t i = 0; i < r.gridNames.size(); ++i)
        os << (i ? ", " : "") << '"' << jescape(r.gridNames[i]) << '"';
    os << "],\n  \"workloads\": [";
    for (size_t i = 0; i < r.workloadNames.size(); ++i)
        os << (i ? ", " : "") << '"' << jescape(r.workloadNames[i]) << '"';
    os << "],\n  \"summary\": {\n";
    for (size_t k = 0; k < kNumAccuracyMetrics; ++k) {
        const MetricSummary &s = r.summary[k];
        os << "    \"" << kMetricNames[k] << "\": {\"mape\": "
           << jnum(s.mape) << ", \"meanSigned\": " << jnum(s.meanSigned)
           << ", \"maxAbs\": " << jnum(s.maxAbs) << ", \"minSigned\": "
           << jnum(s.minSigned) << ", \"maxSigned\": " << jnum(s.maxSigned)
           << "}" << (k + 1 < kNumAccuracyMetrics ? "," : "") << "\n";
    }
    os << "  },\n  \"violations\": [";
    for (size_t i = 0; i < r.violations.size(); ++i)
        os << (i ? ", " : "") << "\n    \"" << jescape(r.violations[i])
           << '"';
    os << (r.violations.empty() ? "" : "\n  ") << "],\n  \"points\": [";
    for (size_t i = 0; i < r.points.size(); ++i) {
        const PointAccuracy &p = r.points[i];
        os << (i ? "," : "") << "\n    {\"workload\": \""
           << jescape(p.workload) << "\", \"config\": \""
           << jescape(p.config) << "\",\n     \"simCpi\": "
           << jnum(p.simCpi) << ", \"modelCpi\": " << jnum(p.modelCpi)
           << ", \"simWatts\": " << jnum(p.simWatts)
           << ", \"modelWatts\": " << jnum(p.modelWatts) << ",\n"
           << "     \"simStack\": ";
        jstack(os, p.simStack);
        os << ", \"modelStack\": ";
        jstack(os, p.modelStack);
        os << ",\n     \"simMr\": [" << jnum(p.simMr[0]) << ", "
           << jnum(p.simMr[1]) << ", " << jnum(p.simMr[2])
           << "], \"modelMr\": [" << jnum(p.modelMr[0]) << ", "
           << jnum(p.modelMr[1]) << ", " << jnum(p.modelMr[2]) << "],\n"
           << "     \"err\": {";
        for (size_t k = 0; k < kNumAccuracyMetrics; ++k)
            os << (k ? ", " : "") << '"' << kMetricNames[k]
               << "\": " << jnum(p.err[k]);
        os << "}}";
    }
    os << (r.points.empty() ? "" : "\n  ") << "]\n}\n";
    return os.str();
}

bool
writeAccuracyJson(const AccuracyReport &r, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << accuracyJson(r);
    return static_cast<bool>(out);
}

std::map<std::string, double>
loadBaselineMapes(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot read baseline " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();

    size_t s = text.find("\"summary\"");
    if (s == std::string::npos)
        throw std::runtime_error("baseline " + path +
                                 " has no summary section");
    size_t e = text.find("\"violations\"", s);
    std::string summary =
        text.substr(s, e == std::string::npos ? std::string::npos : e - s);

    std::map<std::string, double> mapes;
    for (size_t k = 0; k < kNumAccuracyMetrics; ++k) {
        std::string key = std::string("\"") + kMetricNames[k] + "\"";
        size_t pos = summary.find(key);
        if (pos == std::string::npos)
            continue;
        size_t mp = summary.find("\"mape\"", pos);
        if (mp == std::string::npos)
            continue;
        mp = summary.find(':', mp);
        if (mp == std::string::npos)
            continue;
        mapes[kMetricNames[k]] = std::strtod(summary.c_str() + mp + 1,
                                             nullptr);
    }
    if (mapes.empty())
        throw std::runtime_error("baseline " + path +
                                 " contains no metric MAPEs");
    return mapes;
}

namespace {

/** Parse a top-level `"key": ["a", "b", ...]` string array out of a
 *  baseline JSON (tolerant: absent key yields an empty list). */
std::vector<std::string>
baselineStringArray(const std::string &text, const std::string &key)
{
    std::vector<std::string> out;
    size_t g = text.find("\"" + key + "\"");
    if (g == std::string::npos)
        return out;
    size_t open = text.find('[', g);
    size_t close = text.find(']', g);
    if (open == std::string::npos || close == std::string::npos)
        return out;
    size_t pos = open;
    while (true) {
        size_t q1 = text.find('"', pos);
        if (q1 == std::string::npos || q1 > close)
            break;
        size_t q2 = text.find('"', q1 + 1);
        if (q2 == std::string::npos || q2 > close)
            break;
        out.push_back(text.substr(q1 + 1, q2 - q1 - 1));
        pos = q2 + 1;
    }
    return out;
}

size_t
baselineUops(const std::string &text)
{
    if (size_t u = text.find("\"uops\""); u != std::string::npos) {
        if (size_t c = text.find(':', u); c != std::string::npos)
            return std::strtoull(text.c_str() + c + 1, nullptr, 10);
    }
    return 0;
}

} // namespace

std::vector<std::string>
compareToBaseline(const AccuracyReport &r, const std::string &baselinePath,
                  double marginPct)
{
    std::vector<std::string> regressions;

    // Provenance: MAPEs from a different grid or trace length are not
    // comparable point-for-point; fail loudly instead of gating noise.
    {
        std::ifstream in(baselinePath);
        if (!in)
            throw std::runtime_error("cannot read baseline " +
                                     baselinePath);
        std::ostringstream buf;
        buf << in.rdbuf();
        const std::string text = buf.str();
        size_t goldenUops = baselineUops(text);
        auto goldenGrid = baselineStringArray(text, "grid");
        auto goldenWorkloads = baselineStringArray(text, "workloads");
        if (goldenUops != 0 && goldenUops != r.uops)
            regressions.push_back(
                fmt("baseline recorded at %.0f uops, report ran %.0f — "
                    "rerun with matching --uops",
                    double(goldenUops), double(r.uops)));
        if (!goldenGrid.empty() && goldenGrid != r.gridNames)
            regressions.push_back(
                "baseline recorded on a different design-point grid — "
                "rerun with the matching --grid");
        if (!goldenWorkloads.empty() &&
            goldenWorkloads != r.workloadNames)
            regressions.push_back(
                "baseline recorded over a different workload set — "
                "rerun without --workload/--no-phased filters");
        if (!regressions.empty())
            return regressions;
    }

    std::map<std::string, double> golden = loadBaselineMapes(baselinePath);
    for (size_t k = 0; k < kNumAccuracyMetrics; ++k) {
        auto it = golden.find(kMetricNames[k]);
        if (it == golden.end())
            continue;
        double fresh = r.summary[k].mape;
        if (fresh > it->second + marginPct) {
            char buf[200];
            std::snprintf(buf, sizeof buf,
                          "%s: MAPE %.3f exceeds golden %.3f + margin %.1f",
                          kMetricNames[k], fresh, it->second, marginPct);
            regressions.push_back(buf);
        }
    }
    return regressions;
}

} // namespace mipp
