/**
 * @file
 * Model-recalibration harness: residual decomposition + coefficient
 * fitting against simulator ground truth.
 *
 * The accuracy harness (validate/accuracy.hh) *measures* how far each
 * CPI-stack component of the analytical model is from the cycle-level
 * simulator; this module *closes* the gap reproducibly. It owns the two
 * fitting problems behind the coefficients in model/calibration.hh and
 * the pretrained branch fits in model/branch_model.cc:
 *
 *  1. The piecewise entropy -> miss-rate fit (thesis §3.5 recalibration):
 *     every suite workload is simulated once per predictor organization
 *     at the reference core, and the (profiled entropy, simulated miss
 *     rate) pairs are fit with the hinge least squares of
 *     EntropyFitTrainer::fitPiecewise.
 *
 *  2. The ModelCalibration scalar coefficients: per-(workload, config)
 *     signed component errors are computed over a design-point grid, and
 *     each coefficient is fit by coordinate descent — a bracketed 1-D
 *     least-squares line search on the squared error of the component
 *     the coefficient's mechanism feeds (branch for penaltyScale, base
 *     for baseWindowFrac, DRAM for the window/shadow/bus/cold set),
 *     plus a total-CPI tiebreaker — iterated until the coefficients
 *     stop moving.
 *
 * The result is a CalibrationReport: the fitted coefficients, the
 * per-component error summaries before and after applying them, and the
 * training data of the branch fit. It serializes to JSON
 * (`mipp_cli report calibrate --json`), and the workflow for landing a
 * model change is: rerun the harness, paste the printed coefficients
 * into ModelCalibration::fitted() / BranchMissModel::pretrained(), and
 * regenerate the accuracy golden.
 */

#ifndef MIPP_VALIDATE_CALIBRATE_HH
#define MIPP_VALIDATE_CALIBRATE_HH

#include <string>
#include <vector>

#include "model/calibration.hh"
#include "validate/accuracy.hh"

namespace mipp {

/** Harness configuration. */
struct CalibrationOptions {
    /** Design points for the coefficient fit; empty = accuracyGrid("ci")
     *  (the grid the accuracy golden is recorded on). */
    std::vector<CoreConfig> grid;
    size_t uops = 60000;
    bool includePhased = true;
    std::vector<std::string> workloads;
    /** Recorded `.mtf` traces added to the fitting set (basename-named,
     *  materialized whole — same semantics as AccuracyOptions). */
    std::vector<std::string> traceFiles;
    /** Starting model options; its calibration is the "before" column. */
    ModelOptions mopts;
    unsigned threads = 0;
    /** Refit the per-predictor entropy fits (adds one simulation per
     *  (workload, predictor kind) at the reference core). */
    bool fitBranch = true;
    /** Fit the ModelCalibration scalar coefficients. */
    bool fitCoefficients = true;
    /** Coordinate-descent sweeps over the coefficient set. */
    int rounds = 3;
    /**
     * Accuracy-grid presets (accuracyGrid() names) to cross-check the
     * fitted coefficients on after the fit, with no refit: each preset
     * gets its own simulator ground truth and an "after"-style summary
     * in CalibrationReport::gridChecks. Guards against coefficients
     * overfit to the fitting grid (e.g. fit on "ci", check on "wide").
     */
    std::vector<std::string> checkGrids;
};

/** One branch-fit training observation. */
struct EntropyObservation {
    BranchPredictorKind kind;
    std::string workload;
    double entropy = 0;
    double simMissRate = 0;
};

/** Everything one calibration run produces. */
struct CalibrationReport {
    /** Piecewise entropy fits, one per refit predictor kind. */
    std::vector<BranchMissModel> branchFits;
    /** r^2 of each fit over its training points (parallel array). */
    std::vector<double> branchR2;
    /** The branch-fit training data (for plots / regression tests). */
    std::vector<EntropyObservation> branchPoints;

    /** Fitted scalar coefficients. */
    ModelCalibration cal;

    /** Suite summaries with the incoming ("before") and the fitted
     *  ("after") calibration, over the same grid and workloads. */
    std::array<MetricSummary, kNumAccuracyMetrics> before{}, after{};

    /** Fitted-coefficient accuracy on one cross-check grid preset. */
    struct GridCheck {
        std::string grid; ///< accuracyGrid() preset name
        std::array<MetricSummary, kNumAccuracyMetrics> summary{};
    };
    /** One entry per CalibrationOptions::checkGrids preset, in order. */
    std::vector<GridCheck> gridChecks;

    size_t uops = 0;
    std::vector<std::string> gridNames;
    std::vector<std::string> workloadNames;

    const MetricSummary &
    beforeOf(AccuracyMetric m) const
    {
        return before[static_cast<size_t>(m)];
    }
    const MetricSummary &
    afterOf(AccuracyMetric m) const
    {
        return after[static_cast<size_t>(m)];
    }
};

/** Run the harness (see file comment). */
CalibrationReport runCalibration(const CalibrationOptions &opts = {});

/** Serialize a report to JSON (stable key names). */
std::string calibrationJson(const CalibrationReport &r);

/** Write calibrationJson(r) to @p path. @return success. */
bool writeCalibrationJson(const CalibrationReport &r,
                          const std::string &path);

/**
 * Parse a JSON report written by calibrationJson (fits, coefficients,
 * before/after summaries; the branch training points are not restored).
 * Throws std::runtime_error on unreadable or unrecognized input.
 */
CalibrationReport loadCalibrationJson(const std::string &path);

} // namespace mipp

#endif // MIPP_VALIDATE_CALIBRATE_HH
