/**
 * @file
 * Tiny JSON-emission helpers shared by the validation harnesses'
 * hand-rolled writers (accuracy.cc, calibrate.cc). One definition so
 * escaping and NaN handling cannot drift between the two emitters.
 */

#ifndef MIPP_VALIDATE_JSON_UTIL_HH
#define MIPP_VALIDATE_JSON_UTIL_HH

#include <cmath>
#include <cstdio>
#include <string>

namespace mipp::jsonutil {

/**
 * JSON number: finite doubles at the given precision, else null.
 * Reports use %.8g (compact); the calibration report uses %.17g so its
 * loader is a lossless inverse (round-trip tested).
 */
inline std::string
jnum(double v, const char *format = "%.8g")
{
    if (!std::isfinite(v))
        return "null";
    char buf[48];
    std::snprintf(buf, sizeof buf, format, v);
    return buf;
}

/** Escape quotes/backslashes; control characters become spaces. */
inline std::string
jescape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20) {
            out += ' ';
            continue;
        }
        out += c;
    }
    return out;
}

} // namespace mipp::jsonutil

#endif // MIPP_VALIDATE_JSON_UTIL_HH
