/**
 * @file
 * Suite-wide accuracy-validation harness.
 *
 * The paper's headline number is how closely the analytical interval
 * model tracks cycle-level simulation; this module measures it, for every
 * workload in the standard suite (plus the phased workloads), across a
 * configurable grid of design points. For each (workload, config) pair it
 * runs both sides, compares total CPI, every CPI-stack component, the
 * per-level load miss ratios and total power, and aggregates suite-wide
 * MAPE / signed-bias summaries per metric.
 *
 * The harness also enforces the *internal consistency* invariants both
 * sides promise, so accounting bugs are caught by construction instead of
 * by eye:
 *
 *  - `CpiStack::total()` equals the reported cycles (within a small
 *    tolerance) on BOTH the simulated and the modeled side;
 *  - the simulator's per-level access counts chain: every L1 miss is an
 *    L2 access, every L2 miss an L3 access, every L3 miss (plus every
 *    issued prefetch) a DRAM access, and misses never exceed accesses;
 *  - cold + capacity miss classifications add up to the DRAM-level
 *    demand misses;
 *  - the activity counts handed to the power model mirror the memory
 *    statistics / model miss counts they are derived from (a drift
 *    guard: today both sides copy these verbatim, so this only fires
 *    if the derivation and the statistics diverge in the future — the
 *    chaining invariants above are what catch miscounted traffic).
 *
 * Error conventions (all percentages):
 *  - total CPI and power: signed relative error, 100*(model-sim)/sim;
 *  - CPI-stack components: signed contribution error normalized by the
 *    *total* simulated CPI, 100*(modelComp-simComp)/simCpi — components
 *    can be legitimately zero, so relative-per-component error would
 *    divide by zero while this stays comparable across components;
 *  - load miss ratios: signed difference in percentage points,
 *    100*(modelRatio-simRatio).
 *
 * The report serializes to JSON; a checked-in golden
 * (ACCURACY_baseline.json) plus compareToBaseline() turn it into a CI
 * regression gate: the gate fails when any metric's suite MAPE exceeds
 * the golden MAPE by more than a margin.
 */

#ifndef MIPP_VALIDATE_ACCURACY_HH
#define MIPP_VALIDATE_ACCURACY_HH

#include <array>
#include <map>
#include <string>
#include <vector>

#include "model/interval_model.hh"
#include "sim/ooo_core.hh"
#include "uarch/core_config.hh"
#include "uarch/cpi_stack.hh"
#include "util/cancel.hh"

namespace mipp {

/** Metrics the accuracy report tracks, one error column each. */
enum class AccuracyMetric : uint8_t {
    Cpi,     ///< total CPI (relative %)
    Base,    ///< stack component (% of sim CPI)
    Branch,
    Icache,
    L2Hit,
    LlcHit,
    Dram,
    MrL1,    ///< load miss ratio at L1D size (percentage points)
    MrL2,
    MrL3,
    Power,   ///< total watts (relative %)
    NumMetrics,
};

constexpr size_t kNumAccuracyMetrics =
    static_cast<size_t>(AccuracyMetric::NumMetrics);

/** Stable metric names used in reports, JSON and the golden baseline. */
std::string_view accuracyMetricName(AccuracyMetric m);

/** Harness configuration. */
struct AccuracyOptions {
    /** Design points to evaluate; empty = accuracyGrid("default"). */
    std::vector<CoreConfig> grid;
    /** Trace length per suite workload (phased segments are scaled to
     *  uops/2 each so phased traces stay comparable). */
    size_t uops = 200000;
    /** Include the phased workloads (phasedSuite()). */
    bool includePhased = true;
    /** Restrict to these suite/phased names; empty = everything. */
    std::vector<std::string> workloads;
    /** Recorded `.mtf` trace files to validate as extra workloads
     *  (materialized whole: the simulator side needs the instruction
     *  stream). Named by file basename; not subject to the filter. */
    std::vector<std::string> traceFiles;
    ModelOptions mopts;
    /** Sweep concurrency: 0 = shared pool, 1 = serial in the caller. */
    unsigned threads = 0;
    /** |CpiStack::total() - cycles| tolerance, fraction of cycles. */
    double stackTolerance = 0.01;
    /**
     * Cooperative deadline/cancellation, checked per (workload, config)
     * pair. On expiry the harness keeps every finished comparison,
     * drops the rest and returns a report flagged degraded; summaries
     * aggregate the evaluated subset only.
     */
    CancelToken cancel;
};

/** One (workload, config) comparison. */
struct PointAccuracy {
    std::string workload;
    std::string config;
    double simCpi = 0, modelCpi = 0;
    double simWatts = 0, modelWatts = 0;
    CpiStack simStack;    ///< per-uop (CPI contributions)
    CpiStack modelStack;  ///< per-uop
    std::array<double, 3> simMr{};    ///< load miss ratio at L1/L2/L3
    std::array<double, 3> modelMr{};
    /** Signed error per metric (see file comment for conventions). */
    std::array<double, kNumAccuracyMetrics> err{};
};

/** Suite-level aggregate of one metric's error column. */
struct MetricSummary {
    double mape = 0;        ///< mean |error|
    double meanSigned = 0;  ///< bias
    double maxAbs = 0;      ///< worst point
    double minSigned = 0;   ///< most-negative point (under-prediction)
    double maxSigned = 0;   ///< most-positive point (over-prediction)
};

/** Everything one harness run produces. */
struct AccuracyReport {
    std::vector<PointAccuracy> points;
    std::array<MetricSummary, kNumAccuracyMetrics> summary;
    /** Internal-consistency invariant failures ("workload/config: why").
     *  A non-empty list means one side's accounting is broken and the
     *  error numbers cannot be trusted. */
    std::vector<std::string> violations;
    size_t uops = 0;
    std::vector<std::string> gridNames;
    std::vector<std::string> workloadNames;
    /** True when AccuracyOptions::cancel fired: points holds only the
     *  comparisons that finished (compacted — the wi*nc grid indexing
     *  does not apply to a degraded report). */
    bool degraded = false;

    bool consistent() const { return violations.empty(); }
    const MetricSummary &
    of(AccuracyMetric m) const
    {
        return summary[static_cast<size_t>(m)];
    }
};

/**
 * Named design-point grids:
 *  - "ci":      2 points (reference + a small machine) — the reduced CI
 *               grid the golden baseline is recorded on;
 *  - "default": 5 points spanning the design space's corners plus the
 *               reference with the prefetcher enabled;
 *  - "wide":    the 27-point DesignSpace::small() subspace.
 */
std::vector<CoreConfig> accuracyGrid(const std::string &preset);

/** Run the harness: profile once per workload, then simulate + model
 *  every (workload, grid point) pair and aggregate. */
AccuracyReport runAccuracy(const AccuracyOptions &opts = {});

/**
 * Shared harness plumbing (used by runAccuracy and the calibration
 * harness in validate/calibrate.hh):
 *
 * buildAccuracySuite generates the suite (+ phased) traces at @p uops,
 * honoring a name filter, then appends each @p traceFiles `.mtf` as an
 * extra workload named by its basename; throws
 * StatusError(InvalidArgument) for filter entries matching nothing and
 * rethrows the structured Status of an unreadable/corrupt trace file.
 * scoreAccuracyPoint fills one PointAccuracy
 * (errors included) from a finished sim/model pair. summarizeAccuracy
 * aggregates the per-point error columns into per-metric summaries.
 */
void buildAccuracySuite(size_t uops, bool includePhased,
                        const std::vector<std::string> &filter,
                        std::vector<std::string> &names,
                        std::vector<Trace> &traces,
                        const std::vector<std::string> &traceFiles = {});
PointAccuracy scoreAccuracyPoint(const SimResult &sim,
                                 const ModelResult &mod,
                                 const CoreConfig &cfg,
                                 const Profile &profile,
                                 const std::string &workload);
std::array<MetricSummary, kNumAccuracyMetrics>
summarizeAccuracy(const std::vector<PointAccuracy> &points);

/**
 * Internal-consistency checks, one list entry per violated invariant
 * (empty = consistent). Exposed for direct unit testing and for callers
 * validating results produced outside the harness.
 */
std::vector<std::string> checkSimConsistency(const SimResult &sim,
                                             double stackTolerance);
std::vector<std::string> checkModelConsistency(const ModelResult &m,
                                               double stackTolerance);

/** Serialize a report to JSON (machine-readable, stable key names). */
std::string accuracyJson(const AccuracyReport &r);

/** Write accuracyJson(r) to @p path. @return success. */
bool writeAccuracyJson(const AccuracyReport &r, const std::string &path);

/** Load the per-metric MAPEs from a golden baseline JSON written by
 *  writeAccuracyJson(). Throws std::runtime_error on unreadable input. */
std::map<std::string, double> loadBaselineMapes(const std::string &path);

/**
 * Regression gate: compare a fresh report's suite MAPEs against a golden
 * baseline. @return one entry per regressed metric (fresh MAPE exceeds
 * golden MAPE + @p marginPct percentage points); empty = pass. When the
 * golden records its provenance (uops, grid), a mismatching report fails
 * the gate outright — MAPEs from different grids are not comparable.
 */
std::vector<std::string> compareToBaseline(const AccuracyReport &r,
                                           const std::string &baselinePath,
                                           double marginPct = 2.0);

} // namespace mipp

#endif // MIPP_VALIDATE_ACCURACY_HH
