#include "validate/calibrate.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "model/eval_cache.hh"
#include "obs/trace.hh"
#include "profiler/profiler.hh"
#include "util/thread_pool.hh"
#include "validate/json_util.hh"
#include "workloads/workload.hh"

namespace mipp {

namespace {

using jsonutil::jescape;

size_t
mi(AccuracyMetric m)
{
    return static_cast<size_t>(m);
}

/** %.17g: 17 significant digits make loadCalibrationJson a lossless
 *  inverse (the round-trip test relies on it). */
std::string
jnum(double v)
{
    return jsonutil::jnum(v, "%.17g");
}

constexpr size_t kNumKinds =
    static_cast<size_t>(BranchPredictorKind::NumKinds);

/**
 * Shared fitting state: the profiles, the per-point simulator ground
 * truth (simulated once), and one memoized EvalContext per workload
 * that persists across the whole coordinate descent — every calibration
 * value the search revisits is a cache hit.
 */
struct FitState {
    const CalibrationOptions &opts;
    std::vector<CoreConfig> grid;
    std::vector<std::string> names;
    std::vector<Trace> traces;
    std::vector<Profile> profiles;
    std::vector<SimResult> sims; ///< workload-major [wi * nc + ci]
    std::vector<std::unique_ptr<EvalContext>> ctxs;
    /** Piecewise fits indexed by predictor kind (empty = use pretrained). */
    std::array<const BranchMissModel *, kNumKinds> fits{};

    size_t nw() const { return names.size(); }
    size_t nc() const { return grid.size(); }

    /** Evaluate the model at @p cal for every point. */
    std::vector<PointAccuracy>
    evaluate(const ModelCalibration &cal)
    {
        std::vector<PointAccuracy> points(nw() * nc());
        parallelForShared(nw(), opts.threads,
                          [&](size_t begin, size_t end) {
            for (size_t wi = begin; wi < end; ++wi) {
                for (size_t ci = 0; ci < nc(); ++ci) {
                    const CoreConfig &cfg = grid[ci];
                    ModelOptions mo = opts.mopts;
                    mo.cal = cal;
                    size_t kind = static_cast<size_t>(cfg.predictor);
                    if (kind < kNumKinds && fits[kind])
                        mo.branchModel = *fits[kind];
                    ModelResult mod =
                        evaluateModel(*ctxs[wi], cfg, mo);
                    points[wi * nc() + ci] = scoreAccuracyPoint(
                        sims[wi * nc() + ci], mod, cfg, profiles[wi],
                        names[wi]);
                }
            }
        });
        return points;
    }

    /**
     * Objective for one component: that component's summed |error| over
     * every (workload, config) point — the same statistic the accuracy
     * gate tracks (suite MAPE), so the fit optimizes what CI enforces —
     * plus a total-CPI term so corrections that merely shuffle error
     * between components do not look free, and a small squared term as
     * an outlier guard (the worst single point is also gated).
     */
    double
    objective(const ModelCalibration &cal, AccuracyMetric metric)
    {
        std::vector<PointAccuracy> points = evaluate(cal);
        double mae = 0, maeCpi = 0, sse = 0;
        for (const PointAccuracy &pa : points) {
            double e = pa.err[mi(metric)];
            double ec = pa.err[mi(AccuracyMetric::Cpi)];
            mae += std::abs(e);
            maeCpi += std::abs(ec);
            sse += e * e;
        }
        return mae + 0.25 * maeCpi + 0.005 * sse;
    }
};

/** One fittable coefficient: location, search bracket, target metric. */
struct CoefficientSpec {
    const char *name;
    double ModelCalibration::*field;
    double lo, hi;
    AccuracyMetric metric;
};

constexpr CoefficientSpec kCoefficients[] = {
    {"penaltyScale", &ModelCalibration::penaltyScale, 0.2, 1.2,
     AccuracyMetric::Branch},
    {"baseWindowFrac", &ModelCalibration::baseWindowFrac, 0.3, 6.0,
     AccuracyMetric::Base},
    {"mlpWindowFrac", &ModelCalibration::mlpWindowFrac, 0.3, 6.0,
     AccuracyMetric::Dram},
    {"shadowScale", &ModelCalibration::shadowScale, 0.0, 1.5,
     AccuracyMetric::Dram},
    {"busQueueScale", &ModelCalibration::busQueueScale, 0.0, 1.5,
     AccuracyMetric::Dram},
    {"coldInject", &ModelCalibration::coldInject, 0.0, 1.0,
     AccuracyMetric::Dram},
};

/**
 * Two-level 1-D grid line search: coarse grid over [lo, hi], then a
 * fine grid around the coarse optimum. Plain grids instead of golden
 * section because the window-truncation coefficients quantize to whole
 * uops, making the objective piecewise constant.
 */
double
lineSearch(FitState &st, ModelCalibration cal,
           const CoefficientSpec &spec)
{
    constexpr int kPoints = 13;
    double lo = spec.lo, hi = spec.hi;
    double bestX = cal.*(spec.field);
    double bestF = st.objective(cal, spec.metric);
    for (int level = 0; level < 2; ++level) {
        double step = (hi - lo) / (kPoints - 1);
        for (int i = 0; i < kPoints; ++i) {
            double x = lo + i * step;
            cal.*(spec.field) = x;
            double f = st.objective(cal, spec.metric);
            if (f < bestF - 1e-12) {
                bestF = f;
                bestX = x;
            }
        }
        lo = std::max(spec.lo, bestX - step);
        hi = std::min(spec.hi, bestX + step);
    }
    return bestX;
}

} // namespace

CalibrationReport
runCalibration(const CalibrationOptions &opts)
{
    MIPP_SPAN("calibrate.run");
    FitState st{opts};
    st.grid = opts.grid.empty() ? accuracyGrid("ci") : opts.grid;
    buildAccuracySuite(opts.uops, opts.includePhased, opts.workloads,
                       st.names, st.traces, opts.traceFiles);

    std::vector<ProfilerConfig> pcfgs(st.names.size());
    for (size_t i = 0; i < st.names.size(); ++i)
        pcfgs[i].name = st.names[i];
    st.profiles = profileTraces(st.traces, pcfgs);
    for (const Profile &p : st.profiles)
        st.ctxs.push_back(std::make_unique<EvalContext>(p));

    CalibrationReport rep;
    rep.uops = opts.uops;
    rep.workloadNames = st.names;
    for (const auto &c : st.grid)
        rep.gridNames.push_back(c.name);

    const size_t nw = st.nw(), nc = st.nc();

    // --- Stage 1: piecewise entropy fits against simulated predictors ---
    if (opts.fitBranch) {
        MIPP_SPAN("calibrate.branch_fit");
        std::vector<EntropyObservation> obs(nw * kNumKinds);
        parallelForShared(nw * kNumKinds, opts.threads,
                          [&](size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i) {
                size_t wi = i / kNumKinds;
                auto kind =
                    static_cast<BranchPredictorKind>(i % kNumKinds);
                CoreConfig cfg = CoreConfig::nehalemReference();
                cfg.predictor = kind;
                SimResult sim = simulate(st.traces[wi], cfg);
                EntropyObservation &o = obs[i];
                o.kind = kind;
                o.workload = st.names[wi];
                o.entropy = st.profiles[wi].branch.entropy();
                o.simMissRate = sim.branches ?
                    double(sim.branchMispredicts) / sim.branches : 0;
            }
        });
        rep.branchPoints = std::move(obs);

        for (size_t k = 0; k < kNumKinds; ++k) {
            auto kind = static_cast<BranchPredictorKind>(k);
            EntropyFitTrainer trainer;
            for (const EntropyObservation &o : rep.branchPoints)
                if (o.kind == kind)
                    trainer.add(o.entropy, o.simMissRate);
            BranchMissModel fit = trainer.fitPiecewise(kind);
            rep.branchFits.push_back(fit);
            rep.branchR2.push_back(trainer.r2(fit));
        }
        for (size_t k = 0; k < kNumKinds; ++k)
            st.fits[k] = &rep.branchFits[k];
    }

    // --- Stage 2: simulator ground truth over the grid -------------------
    {
        MIPP_SPAN("calibrate.sim_grid");
        st.sims.resize(nw * nc);
        parallelForShared(nw, opts.threads,
                          [&](size_t begin, size_t end) {
            for (size_t wi = begin; wi < end; ++wi)
                for (size_t ci = 0; ci < nc; ++ci)
                    st.sims[wi * nc + ci] =
                        simulate(st.traces[wi], st.grid[ci]);
        });
    }

    // "Before": the incoming calibration, incoming branch fits.
    {
        std::array<const BranchMissModel *, kNumKinds> saved = st.fits;
        st.fits = {};
        rep.before = summarizeAccuracy(st.evaluate(opts.mopts.cal));
        st.fits = saved;
    }

    // --- Stage 3: coordinate descent over the scalar coefficients --------
    ModelCalibration cal = opts.mopts.cal;
    if (opts.fitCoefficients) {
        MIPP_SPAN("calibrate.coefficient_fit");
        for (int round = 0; round < opts.rounds; ++round) {
            ModelCalibration prev = cal;
            for (const CoefficientSpec &spec : kCoefficients)
                cal.*(spec.field) = lineSearch(st, cal, spec);
            if (cal == prev)
                break; // converged early
        }
    }
    rep.cal = cal;
    rep.after = summarizeAccuracy(st.evaluate(cal));

    // --- Stage 4: cross-check the fit on other grid presets --------------
    // Fresh ground truth per preset, same fitted coefficients and branch
    // fits, no refit: a fit that only works on its own grid shows up
    // here as a summary far off the "after" column.
    for (const std::string &preset : opts.checkGrids) {
        st.grid = accuracyGrid(preset);
        const size_t cn = st.nc();
        st.sims.assign(nw * cn, {});
        parallelForShared(nw, opts.threads,
                          [&](size_t begin, size_t end) {
            for (size_t wi = begin; wi < end; ++wi)
                for (size_t ci = 0; ci < cn; ++ci)
                    st.sims[wi * cn + ci] =
                        simulate(st.traces[wi], st.grid[ci]);
        });
        CalibrationReport::GridCheck gc;
        gc.grid = preset;
        gc.summary = summarizeAccuracy(st.evaluate(cal));
        rep.gridChecks.push_back(std::move(gc));
    }
    return rep;
}

std::string
calibrationJson(const CalibrationReport &r)
{
    std::ostringstream os;
    os << "{\n  \"schema\": \"mipp-calibration-v1\",\n";
    os << "  \"uops\": " << r.uops << ",\n";
    os << "  \"grid\": [";
    for (size_t i = 0; i < r.gridNames.size(); ++i)
        os << (i ? ", " : "") << '"' << jescape(r.gridNames[i]) << '"';
    os << "],\n  \"workloads\": [";
    for (size_t i = 0; i < r.workloadNames.size(); ++i)
        os << (i ? ", " : "") << '"' << jescape(r.workloadNames[i]) << '"';
    os << "],\n  \"calibration\": {"
       << "\"penaltyScale\": " << jnum(r.cal.penaltyScale)
       << ", \"baseWindowFrac\": " << jnum(r.cal.baseWindowFrac)
       << ", \"mlpWindowFrac\": " << jnum(r.cal.mlpWindowFrac)
       << ", \"shadowScale\": " << jnum(r.cal.shadowScale)
       << ", \"busQueueScale\": " << jnum(r.cal.busQueueScale)
       << ", \"coldInject\": " << jnum(r.cal.coldInject) << "},\n";
    os << "  \"branchFits\": [";
    for (size_t i = 0; i < r.branchFits.size(); ++i) {
        const BranchMissModel &m = r.branchFits[i];
        os << (i ? "," : "") << "\n    {\"kind\": \""
           << branchPredictorName(m.kind) << "\", \"slope\": "
           << jnum(m.slope) << ", \"intercept\": " << jnum(m.intercept)
           << ", \"knee\": " << jnum(m.knee) << ", \"kneeSlope\": "
           << jnum(m.kneeSlope) << ", \"r2\": "
           << jnum(i < r.branchR2.size() ? r.branchR2[i] : 0) << "}";
    }
    os << (r.branchFits.empty() ? "" : "\n  ") << "],\n";
    os << "  \"branchPoints\": [";
    for (size_t i = 0; i < r.branchPoints.size(); ++i) {
        const EntropyObservation &o = r.branchPoints[i];
        os << (i ? "," : "") << "\n    {\"kind\": \""
           << branchPredictorName(o.kind) << "\", \"workload\": \""
           << jescape(o.workload) << "\", \"entropy\": "
           << jnum(o.entropy) << ", \"missRate\": "
           << jnum(o.simMissRate) << "}";
    }
    os << (r.branchPoints.empty() ? "" : "\n  ") << "],\n";
    auto emitMetrics = [&](const auto &summary, const char *indent) {
        for (size_t k = 0; k < kNumAccuracyMetrics; ++k) {
            const MetricSummary &s = summary[k];
            os << indent << "\""
               << accuracyMetricName(static_cast<AccuracyMetric>(k))
               << "\": {\"mape\": " << jnum(s.mape)
               << ", \"meanSigned\": " << jnum(s.meanSigned)
               << ", \"maxAbs\": " << jnum(s.maxAbs)
               << ", \"minSigned\": " << jnum(s.minSigned)
               << ", \"maxSigned\": " << jnum(s.maxSigned) << "}"
               << (k + 1 < kNumAccuracyMetrics ? "," : "") << "\n";
        }
    };
    auto emitSummary = [&](const char *name, const auto &summary,
                           const char *tail) {
        os << "  \"" << name << "\": {\n";
        emitMetrics(summary, "    ");
        os << "  }" << tail << "\n";
    };
    emitSummary("before", r.before, ",");
    emitSummary("after", r.after, r.gridChecks.empty() ? "" : ",");
    if (!r.gridChecks.empty()) {
        os << "  \"gridChecks\": [";
        for (size_t i = 0; i < r.gridChecks.size(); ++i) {
            const CalibrationReport::GridCheck &gc = r.gridChecks[i];
            os << (i ? "," : "") << "\n    {\"grid\": \""
               << jescape(gc.grid) << "\", \"summary\": {\n";
            emitMetrics(gc.summary, "      ");
            os << "    }}";
        }
        os << "\n  ]\n";
    }
    os << "}\n";
    return os.str();
}

bool
writeCalibrationJson(const CalibrationReport &r, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << calibrationJson(r);
    return static_cast<bool>(out);
}

namespace {

/** Value of `"key": <number>` after @p from; NaN when absent. */
double
findNum(const std::string &text, const std::string &key, size_t from,
        size_t limit = std::string::npos)
{
    size_t p = text.find("\"" + key + "\"", from);
    if (p == std::string::npos || p >= limit)
        return std::nan("");
    p = text.find(':', p);
    if (p == std::string::npos)
        return std::nan("");
    return std::strtod(text.c_str() + p + 1, nullptr);
}

MetricSummary
parseSummaryEntry(const std::string &text, size_t sectionPos,
                  size_t sectionEnd, std::string_view metric)
{
    MetricSummary s;
    size_t p = text.find("\"" + std::string(metric) + "\"", sectionPos);
    if (p == std::string::npos || p >= sectionEnd)
        return s;
    size_t end = text.find('}', p);
    auto get = [&](const char *k) {
        double v = findNum(text, k, p, end);
        return std::isnan(v) ? 0.0 : v;
    };
    s.mape = get("mape");
    s.meanSigned = get("meanSigned");
    s.maxAbs = get("maxAbs");
    s.minSigned = get("minSigned");
    s.maxSigned = get("maxSigned");
    return s;
}

} // namespace

CalibrationReport
loadCalibrationJson(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot read calibration " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    if (text.find("mipp-calibration-v1") == std::string::npos)
        throw std::runtime_error(path + " is not a calibration report");

    CalibrationReport r;
    if (double u = findNum(text, "uops", 0); !std::isnan(u))
        r.uops = static_cast<size_t>(u);

    size_t calPos = text.find("\"calibration\"");
    if (calPos == std::string::npos)
        throw std::runtime_error(path + " has no calibration section");
    size_t calEnd = text.find('}', calPos);
    auto coef = [&](const char *k, double fallback) {
        double v = findNum(text, k, calPos, calEnd);
        return std::isnan(v) ? fallback : v;
    };
    r.cal.penaltyScale = coef("penaltyScale", 1.0);
    r.cal.baseWindowFrac = coef("baseWindowFrac", 0.0);
    r.cal.mlpWindowFrac = coef("mlpWindowFrac", 0.0);
    r.cal.shadowScale = coef("shadowScale", 1.0);
    r.cal.busQueueScale = coef("busQueueScale", 1.0);
    r.cal.coldInject = coef("coldInject", 0.0);

    // Branch fits: scan the array's objects in order.
    size_t fitsPos = text.find("\"branchFits\"");
    if (fitsPos != std::string::npos) {
        size_t fitsEnd = text.find(']', fitsPos);
        size_t p = fitsPos;
        while (true) {
            size_t obj = text.find('{', p);
            if (obj == std::string::npos || obj >= fitsEnd)
                break;
            size_t end = text.find('}', obj);
            BranchMissModel m;
            size_t kq = text.find("\"kind\"", obj);
            if (kq != std::string::npos && kq < end) {
                size_t q1 = text.find('"', text.find(':', kq));
                size_t q2 = text.find('"', q1 + 1);
                std::string kindName = text.substr(q1 + 1, q2 - q1 - 1);
                for (size_t k = 0; k < kNumKinds; ++k) {
                    auto kind = static_cast<BranchPredictorKind>(k);
                    if (branchPredictorName(kind) == kindName)
                        m.kind = kind;
                }
            }
            auto num = [&](const char *k, double fb) {
                double v = findNum(text, k, obj, end);
                return std::isnan(v) ? fb : v;
            };
            m.slope = num("slope", m.slope);
            m.intercept = num("intercept", m.intercept);
            m.knee = num("knee", m.knee);
            m.kneeSlope = num("kneeSlope", m.kneeSlope);
            r.branchFits.push_back(m);
            r.branchR2.push_back(num("r2", 0.0));
            p = end + 1;
        }
    }

    auto parseSection = [&](const char *name, auto &out) {
        size_t pos = text.find("\"" + std::string(name) + "\"");
        if (pos == std::string::npos)
            return;
        // The section closes before the next top-level summary; bound
        // the per-metric search by the following section or the end.
        size_t bound = text.find("\"after\"", pos + 1);
        if (bound == std::string::npos || std::string(name) == "after")
            bound = text.size();
        for (size_t k = 0; k < kNumAccuracyMetrics; ++k)
            out[k] = parseSummaryEntry(
                text, pos, bound,
                accuracyMetricName(static_cast<AccuracyMetric>(k)));
    };
    parseSection("before", r.before);
    parseSection("after", r.after);

    // Grid cross-checks: entries delimited by their "grid" keys (the
    // summary objects nest braces, so scan by key rather than brace).
    size_t gcPos = text.find("\"gridChecks\"");
    if (gcPos != std::string::npos) {
        size_t gcEnd = text.find(']', gcPos);
        if (gcEnd == std::string::npos)
            gcEnd = text.size();
        size_t p = gcPos;
        while (true) {
            size_t g = text.find("\"grid\"", p);
            if (g == std::string::npos || g >= gcEnd)
                break;
            size_t q1 = text.find('"', text.find(':', g) + 1);
            size_t q2 = text.find('"', q1 + 1);
            if (q1 == std::string::npos || q2 == std::string::npos)
                break;
            CalibrationReport::GridCheck gc;
            gc.grid = text.substr(q1 + 1, q2 - q1 - 1);
            size_t next = text.find("\"grid\"", q2);
            size_t bound =
                (next == std::string::npos || next > gcEnd) ? gcEnd
                                                            : next;
            for (size_t k = 0; k < kNumAccuracyMetrics; ++k)
                gc.summary[k] = parseSummaryEntry(
                    text, q2, bound,
                    accuracyMetricName(static_cast<AccuracyMetric>(k)));
            r.gridChecks.push_back(std::move(gc));
            p = q2;
        }
    }
    return r;
}

} // namespace mipp
