#include "statstack/statstack.hh"

#include <algorithm>

#include "obs/trace.hh"

namespace mipp {

StatStack::StatStack(const LogHistogram &combined) : combined_(combined)
{
    MIPP_SPAN("statstack.build");
    total_ = static_cast<double>(combined.total());
    size_t nbins = combined.numBins();
    survival_.resize(nbins + 1, 0.0);
    integral_.resize(nbins + 2, 0.0);
    if (total_ == 0)
        return;

    // Remaining samples with RD strictly beyond each bin, built back to
    // front; within a bin, half its mass is assumed already passed.
    double beyond = static_cast<double>(combined.infiniteCount());
    std::vector<double> beyondBin(nbins + 1, 0.0);
    beyondBin[nbins] = beyond;
    for (size_t b = nbins; b-- > 0;)
        beyondBin[b] = beyondBin[b + 1] +
                       static_cast<double>(combined.binCount(b));

    for (size_t b = 0; b < nbins; ++b) {
        double in_bin = static_cast<double>(combined.binCount(b));
        survival_[b] = (beyondBin[b + 1] + 0.5 * in_bin) / total_;
    }
    survival_[nbins] =
        static_cast<double>(combined.infiniteCount()) / total_;

    // Integral of the survival function at bin lower boundaries.
    integral_[0] = 0;
    for (size_t b = 0; b <= nbins; ++b) {
        uint64_t lo = LogHistogram::binLower(b);
        uint64_t hi = LogHistogram::binLower(b + 1);
        integral_[b + 1] = integral_[b] +
                           survival_[b] * static_cast<double>(hi - lo);
    }
}

double
StatStack::stackDistance(uint64_t r) const
{
    if (total_ == 0)
        return static_cast<double>(r);
    size_t b = LogHistogram::binIndex(r);
    size_t nbins = survival_.size() - 1;
    if (b >= nbins) {
        // Beyond profiled bins: only cold accesses survive.
        double base = integral_[nbins];
        uint64_t lo = LogHistogram::binLower(nbins);
        return base + survival_[nbins] * static_cast<double>(r - lo);
    }
    uint64_t lo = LogHistogram::binLower(b);
    return integral_[b] + survival_[b] * static_cast<double>(r - lo);
}

double
StatStack::reuseThreshold(double cacheLines) const
{
    if (total_ == 0)
        return cacheLines;
    size_t nbins = survival_.size() - 1;
    // First bin whose end-integral reaches the target; integral_ is
    // non-decreasing, so binary search instead of a linear scan.
    size_t b = static_cast<size_t>(
        std::lower_bound(integral_.begin() + 1,
                         integral_.begin() + 1 + nbins, cacheLines) -
        (integral_.begin() + 1));
    double s = survival_[std::min(b, nbins)];
    uint64_t lo = LogHistogram::binLower(b);
    if (s <= 0) {
        // Stack distance saturates below the cache size: nothing with a
        // finite reuse ever misses.
        if (b >= nbins)
            return 1e18;
        return static_cast<double>(lo);
    }
    return static_cast<double>(lo) + (cacheLines - integral_[b]) / s;
}

double
StatStack::missRatio(const LogHistogram &typeReuse, double cacheLines) const
{
    uint64_t n = typeReuse.total();
    if (n == 0)
        return 0.0;
    double thresh = reuseThreshold(cacheLines);
    if (thresh >= 1e18)
        return static_cast<double>(typeReuse.infiniteCount()) / n;
    uint64_t t = thresh < 0 ? 0 : static_cast<uint64_t>(thresh);
    return static_cast<double>(typeReuse.countAtLeast(t)) / n;
}

double
StatStack::misses(const LogHistogram &typeReuse, double cacheLines) const
{
    return missRatio(typeReuse, cacheLines) *
           static_cast<double>(typeReuse.total());
}

} // namespace mipp
