/**
 * @file
 * StatStack: statistical cache modeling from reuse distances (thesis §4.2).
 *
 * Reuse distances (total accesses between two touches of the same line) are
 * cheap to profile; stack distances (unique lines touched in between) are
 * what LRU miss ratios need. StatStack converts the former into the latter:
 * the expected stack distance of a reuse of distance R is the expected
 * number of intervening accesses whose own reuse extends past the window,
 *
 *     SD(R) = sum_{d=0}^{R-1} P(RD > d),
 *
 * i.e. the number of "arrows jumping over" the window in thesis Fig 4.1.
 * An access misses a fully-associative LRU cache of C lines iff its
 * expected stack distance is at least C; never-reused (cold) accesses
 * always miss.
 */

#ifndef MIPP_STATSTACK_STATSTACK_HH
#define MIPP_STATSTACK_STATSTACK_HH

#include <cstdint>
#include <vector>

#include "profiler/histogram.hh"

namespace mipp {

/** Stack-distance model built from one combined reuse-distance histogram. */
class StatStack
{
  public:
    /** @param combined reuse distances of the full (load+store) stream. */
    explicit StatStack(const LogHistogram &combined);

    /** Expected stack distance for a reuse distance @p r. */
    double stackDistance(uint64_t r) const;

    /**
     * Smallest reuse distance whose expected stack distance reaches
     * @p cacheLines — the miss threshold for a cache of that size.
     */
    double reuseThreshold(double cacheLines) const;

    /**
     * Miss ratio of a fully-associative LRU cache with @p cacheLines lines
     * for the access population described by @p typeReuse (e.g. loads
     * only). Cold accesses count as misses.
     */
    double missRatio(const LogHistogram &typeReuse, double cacheLines) const;

    /** Misses (absolute) for @p typeReuse accesses. */
    double misses(const LogHistogram &typeReuse, double cacheLines) const;

  private:
    const LogHistogram &combined_;
    /** Bin-boundary integral I(b) = sum_{d < binLower(b)} P(RD > d). */
    std::vector<double> integral_;
    /** Survival probability within each bin. */
    std::vector<double> survival_;
    double total_ = 0;
};

} // namespace mipp

#endif // MIPP_STATSTACK_STATSTACK_HH
