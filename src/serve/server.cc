#include "serve/server.hh"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <list>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <vector>

#include "dse/explorer.hh"
#include "model/eval_cache.hh"
#include "power/power_model.hh"
#include "uarch/design_space.hh"
#include "util/cancel.hh"
#include "util/failpoint.hh"
#include "util/json.hh"
#include "validate/accuracy.hh"

namespace mipp::serve {

namespace {

bool
writeAll(int fd, const char *p, size_t n)
{
    while (n > 0) {
        ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
        if (w <= 0) {
            if (w < 0 && errno == EINTR)
                continue;
            return false; // peer gone; response dropped
        }
        p += w;
        n -= static_cast<size_t>(w);
    }
    return true;
}

std::string
num(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return buf;
}

/** Append `"key":` to a response under construction. */
void
key(std::string &out, std::string_view k)
{
    out += '"';
    out += k;
    out += "\":";
}

std::string
errorLine(const Status &st, const json::Value &id)
{
    std::string out = "{";
    if (id.isNumber()) {
        key(out, "id");
        out += num(id.number()) + ",";
    } else if (id.isString()) {
        key(out, "id");
        out += json::quote(id.str()) + ",";
    }
    out += "\"ok\":false,";
    key(out, "code");
    out += json::quote(statusCodeName(st.code())) + ",";
    key(out, "error");
    out += json::quote(st.message()) + "}";
    return out;
}

/** Parse the `config` member of a request into a CoreConfig, starting
 *  from the Nehalem reference and validating every knob. */
Status
parseConfigJson(const json::Value &v, CoreConfig &cfg)
{
    cfg = CoreConfig::nehalemReference();
    if (v.isNull())
        return Status();
    if (!v.isObject())
        return invalidArgument("config must be an object");

    auto bounded = [&](std::string_view k, double lo, double hi,
                       double fallback, double &out) -> Status {
        double d = v.numberOr(k, fallback);
        if (!(d >= lo && d <= hi))
            return invalidArgument(
                std::string("config.") + std::string(k) +
                " out of range [" + num(lo) + ", " + num(hi) + "]");
        out = d;
        return Status();
    };

    double width = 0, rob = 0, l1dKb = 0, l2Kb = 0, l3Mb = 0, freq = 0;
    Status st;
    if (!(st = bounded("width", 1, 16, cfg.dispatchWidth, width)).isOk())
        return st;
    if (!(st = bounded("rob", 16, 4096, cfg.robSize, rob)).isOk())
        return st;
    if (!(st = bounded("l1d_kb", 1, 1024, cfg.l1d.sizeBytes / 1024.0,
                       l1dKb))
             .isOk())
        return st;
    if (!(st = bounded("l2_kb", 16, 16384, cfg.l2.sizeBytes / 1024.0,
                       l2Kb))
             .isOk())
        return st;
    if (!(st = bounded("l3_mb", 1, 256,
                       cfg.l3.sizeBytes / 1024.0 / 1024.0, l3Mb))
             .isOk())
        return st;
    if (!(st = bounded("freq_ghz", 0.1, 10, cfg.freqGHz, freq)).isOk())
        return st;

    cfg.setWidth(static_cast<uint32_t>(width));
    scaleBackEnd(cfg, static_cast<uint32_t>(rob));
    cfg.l1d.sizeBytes = static_cast<uint32_t>(l1dKb) * 1024;
    cfg.l2.sizeBytes = static_cast<uint32_t>(l2Kb) * 1024;
    cfg.l3.sizeBytes = static_cast<uint32_t>(l3Mb) * 1024 * 1024;
    cfg.freqGHz = freq;
    cfg.prefetcherEnabled = v.boolOr("prefetcher", cfg.prefetcherEnabled);
    scaleCacheLatencies(cfg);
    return Status();
}

} // namespace

struct Server::Impl {
    ServerOptions opts;

    // ---- connection bookkeeping ------------------------------------
    struct Connection {
        int fd = -1;
        std::mutex writeMu;             // one response line at a time
        std::mutex mu;                  // guards tokens/open
        std::vector<CancelToken> tokens; // queued + in-flight requests
        bool open = true;

        void
        registerToken(const CancelToken &t)
        {
            std::lock_guard<std::mutex> lk(mu);
            tokens.push_back(t);
            if (!open)
                t.cancel(); // raced with disconnect
        }

        void
        unregisterToken(const CancelToken &t)
        {
            std::lock_guard<std::mutex> lk(mu);
            std::erase_if(tokens, [&](const CancelToken &u) {
                return u.id() == t.id();
            });
        }

        void
        unregisterAll()
        {
            std::lock_guard<std::mutex> lk(mu);
            open = false;
            for (auto &t : tokens)
                t.cancel();
            tokens.clear();
        }
    };

    struct Request {
        std::shared_ptr<Connection> conn;
        std::string line;
        CancelToken cancel;
    };

    // ---- profile LRU ------------------------------------------------
    struct ProfileEntry {
        // Stored inside a 1-element vector so sweepEx can borrow it
        // without copying (the warm ModelEvalPool is keyed on profile
        // identity; a copy would defeat it).
        std::vector<Profile> profile;
        std::unique_ptr<EvalContext> ctx; // built on first evaluate
        ModelEvalPool pool;               // warm sweep evaluators
        std::mutex mu; // serializes model state (not thread-safe)
    };

    std::mutex lruMu;
    std::list<std::string> lruOrder; // front = most recent
    std::unordered_map<std::string,
                       std::pair<std::list<std::string>::iterator,
                                 std::shared_ptr<ProfileEntry>>>
        profiles;

    // ---- queue + threads -------------------------------------------
    std::mutex qMu;
    std::condition_variable qCv;
    std::deque<Request> queue;
    std::atomic<bool> stopping{false};
    std::atomic<bool> started{false};

    int listenFd = -1;
    std::thread acceptThread;
    std::vector<std::thread> executors;
    std::mutex connMu;
    std::vector<std::thread> readers;
    std::vector<std::shared_ptr<Connection>> conns;

    mutable std::mutex statsMu;
    ServerStats counters;

    explicit Impl(ServerOptions o) : opts(std::move(o)) {}

    void
    bump(uint64_t ServerStats::*f, uint64_t by = 1)
    {
        std::lock_guard<std::mutex> lk(statsMu);
        counters.*f += by;
    }

    void
    respond(const std::shared_ptr<Connection> &conn, std::string line)
    {
        line += '\n';
        std::lock_guard<std::mutex> lk(conn->writeMu);
        writeAll(conn->fd, line.data(), line.size());
    }

    // ---- lifecycle -------------------------------------------------
    Status
    start()
    {
        if (opts.socketPath.empty())
            return invalidArgument("serve: socket path required");
        if (opts.socketPath.size() >= sizeof(sockaddr_un{}.sun_path))
            return invalidArgument("serve: socket path too long");
        if (started)
            return internalError("serve: already started");
        if (opts.workers == 0)
            opts.workers = 1;
        if (opts.maxQueue == 0)
            opts.maxQueue = 1;

        listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (listenFd < 0)
            return internalError("serve: socket() failed");
        ::unlink(opts.socketPath.c_str());
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, opts.socketPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) < 0 ||
            ::listen(listenFd, 64) < 0) {
            ::close(listenFd);
            listenFd = -1;
            return internalError("serve: cannot bind " + opts.socketPath);
        }

        started = true;
        stopping.store(false);
        for (unsigned i = 0; i < opts.workers; ++i)
            executors.emplace_back([this] { executorLoop(); });
        acceptThread = std::thread([this] { acceptLoop(); });
        return Status();
    }

    void
    stop()
    {
        if (!started)
            return;
        stopping.store(true);

        // Unblock the accept loop and every reader.
        ::shutdown(listenFd, SHUT_RDWR);
        {
            std::lock_guard<std::mutex> lk(connMu);
            for (auto &c : conns) {
                c->unregisterAll();
                ::shutdown(c->fd, SHUT_RDWR);
            }
        }
        // Cancel queued work and wake executors.
        {
            std::lock_guard<std::mutex> lk(qMu);
            for (auto &r : queue)
                r.cancel.cancel();
            queue.clear();
        }
        qCv.notify_all();

        if (acceptThread.joinable())
            acceptThread.join();
        for (auto &t : executors)
            t.join();
        executors.clear();
        {
            std::lock_guard<std::mutex> lk(connMu);
            for (auto &t : readers)
                t.join();
            readers.clear();
            for (auto &c : conns)
                ::close(c->fd);
            conns.clear();
        }
        ::close(listenFd);
        listenFd = -1;
        ::unlink(opts.socketPath.c_str());
        started = false;
    }

    void
    acceptLoop()
    {
        while (!stopping.load()) {
            int fd = ::accept(listenFd, nullptr, nullptr);
            if (fd < 0) {
                if (errno == EINTR)
                    continue;
                break; // listener shut down
            }
            auto conn = std::make_shared<Connection>();
            conn->fd = fd;
            bump(&ServerStats::connections);
            std::lock_guard<std::mutex> lk(connMu);
            if (stopping.load()) {
                ::close(fd);
                break;
            }
            conns.push_back(conn);
            readers.emplace_back([this, conn] { readerLoop(conn); });
        }
    }

    void
    readerLoop(const std::shared_ptr<Connection> &conn)
    {
        std::string buf;
        char chunk[4096];
        bool overflow = false;
        while (!stopping.load()) {
            ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
            if (n <= 0) {
                if (n < 0 && errno == EINTR)
                    continue;
                break; // EOF or error: disconnect
            }
            buf.append(chunk, static_cast<size_t>(n));
            size_t pos;
            while ((pos = buf.find('\n')) != std::string::npos) {
                std::string line = buf.substr(0, pos);
                buf.erase(0, pos + 1);
                if (!line.empty() && line.back() == '\r')
                    line.pop_back();
                if (!line.empty())
                    enqueue(conn, std::move(line));
            }
            if (buf.size() > opts.maxRequestBytes) {
                // A line that can never complete within the limit:
                // shed and drop the connection rather than buffer on.
                bump(&ServerStats::shed);
                respond(conn,
                        errorLine(resourceExhausted(
                                      "request line exceeds " +
                                      std::to_string(
                                          opts.maxRequestBytes) +
                                      " bytes"),
                                  json::Value()));
                overflow = true;
                break;
            }
        }
        if (overflow)
            ::shutdown(conn->fd, SHUT_RDWR);
        // Disconnect: cancel everything this connection still has
        // queued or running.
        conn->unregisterAll();
    }

    void
    enqueue(const std::shared_ptr<Connection> &conn, std::string line)
    {
        bump(&ServerStats::requests);
        Request req;
        req.conn = conn;
        req.line = std::move(line);
        // The token exists from enqueue time so a disconnect cancels
        // queued requests too, not just the one being executed.
        req.cancel = opts.defaultDeadlineMs > 0
                         ? CancelToken::withDeadlineMs(
                               opts.defaultDeadlineMs)
                         : CancelToken::manual();
        bool full = false;
        {
            std::lock_guard<std::mutex> lk(qMu);
            if (queue.size() >= opts.maxQueue) {
                full = true;
            } else {
                conn->registerToken(req.cancel);
                queue.push_back(std::move(req));
            }
        }
        if (full) {
            // Shed outside the queue lock: the response write can
            // block on a slow client and must not stall executors.
            bump(&ServerStats::shed);
            respond(conn, errorLine(
                              resourceExhausted(
                                  "request queue full (depth " +
                                  std::to_string(opts.maxQueue) +
                                  "); retry later"),
                              json::Value()));
            return;
        }
        qCv.notify_one();
    }

    void
    executorLoop()
    {
        while (true) {
            Request req;
            {
                std::unique_lock<std::mutex> lk(qMu);
                qCv.wait(lk, [&] {
                    return stopping.load() || !queue.empty();
                });
                if (stopping.load())
                    return;
                req = std::move(queue.front());
                queue.pop_front();
            }
            (void)MIPP_FAILPOINT("serve.exec_delay");
            if (req.cancel.cancelled()) {
                // Client left (or the default deadline lapsed) while
                // the request sat in the queue: drop it unexecuted.
                bump(&ServerStats::cancelled);
                req.conn->unregisterToken(req.cancel);
                continue;
            }
            execute(req);
            req.conn->unregisterToken(req.cancel);
        }
    }

    // ---- request execution -----------------------------------------
    void
    execute(const Request &req)
    {
        json::Value doc;
        Status pst = json::parse(
            req.line, doc, {.maxBytes = opts.maxRequestBytes});
        const json::Value id = doc["id"];
        std::string out;
        if (!pst.isOk()) {
            out = errorLine(pst, id);
        } else {
            // Per-request deadline overrides the server default.
            CancelToken tok = req.cancel;
            bool extraTok = false;
            double dl = doc.numberOr("deadline_ms", 0);
            if (dl > 0) {
                tok = CancelToken::withDeadlineMs(dl);
                req.conn->registerToken(tok);
                extraTok = true;
            }
            try {
                out = dispatch(doc, id, tok);
            } catch (const StatusError &e) {
                out = errorLine(e.status(), id);
            } catch (const std::exception &e) {
                // The survivability guarantee: an unexpected throw in a
                // handler answers *this* request with Internal and the
                // daemon keeps serving.
                out = errorLine(
                    internalError(std::string("unhandled: ") + e.what()),
                    id);
            }
            if (tok.cancelled())
                bump(&ServerStats::cancelled);
            if (extraTok)
                req.conn->unregisterToken(tok);
        }
        if (out.find("\"ok\":false") != std::string::npos)
            bump(&ServerStats::errors);
        bump(&ServerStats::served);
        respond(req.conn, out);
    }

    std::string
    dispatch(const json::Value &doc, const json::Value &id,
             const CancelToken &tok)
    {
        const std::string op = doc.stringOr("op", "");
        std::string body; // "key":value,... appended per op

        if (op == "ping") {
            // nothing to add
        } else if (op == "load-profile") {
            Status st = opLoadProfile(doc, body);
            if (!st.isOk())
                return errorLine(st, id);
        } else if (op == "evaluate") {
            Status st = opEvaluate(doc, body);
            if (!st.isOk())
                return errorLine(st, id);
        } else if (op == "sweep") {
            Status st = opSweep(doc, tok, body);
            if (!st.isOk())
                return errorLine(st, id);
        } else if (op == "accuracy") {
            Status st = opAccuracy(doc, tok, body);
            if (!st.isOk())
                return errorLine(st, id);
        } else if (op == "stats") {
            opStats(body);
        } else if (op == "failpoint") {
            if (!opts.allowFailpoints)
                return errorLine(
                    invalidArgument("failpoints are not enabled on this "
                                    "server (--failpoints)"),
                    id);
            const std::string spec = doc.stringOr("spec", "");
            if (spec == "reset")
                failpoint::reset();
            else if (!failpoint::armFromString(spec))
                return errorLine(
                    invalidArgument("bad failpoint spec '" + spec +
                                    "' (name[=fires[:sleepMs]])"),
                    id);
        } else {
            return errorLine(
                invalidArgument("unknown op '" + op +
                                "' (ping|load-profile|evaluate|sweep|"
                                "accuracy|stats|failpoint)"),
                id);
        }

        std::string out = "{";
        if (id.isNumber()) {
            key(out, "id");
            out += num(id.number()) + ",";
        } else if (id.isString()) {
            key(out, "id");
            out += json::quote(id.str()) + ",";
        }
        out += "\"ok\":true";
        if (!body.empty()) {
            out += ',';
            out += body;
        }
        out += '}';
        return out;
    }

    Status
    opLoadProfile(const json::Value &doc, std::string &body)
    {
        const std::string name = doc.stringOr("name", "");
        if (name.empty())
            return invalidArgument("load-profile: missing 'name'");
        Profile p;
        if (doc["data"].isString()) {
            Status st = parseProfile(doc["data"].str(), p,
                                     opts.profileLimits);
            if (!st.isOk())
                return st;
        } else if (doc["path"].isString()) {
            Status st = loadProfileChecked(doc["path"].str(), p,
                                           opts.profileLimits);
            if (!st.isOk())
                return st;
        } else {
            return invalidArgument(
                "load-profile: need 'data' (inline text) or 'path'");
        }

        auto entry = std::make_shared<ProfileEntry>();
        entry->profile.push_back(std::move(p));
        entry->pool.reserve(1);

        std::lock_guard<std::mutex> lk(lruMu);
        auto it = profiles.find(name);
        if (it != profiles.end()) {
            lruOrder.erase(it->second.first);
            profiles.erase(it);
        }
        lruOrder.push_front(name);
        profiles.emplace(name,
                         std::make_pair(lruOrder.begin(), entry));
        while (profiles.size() > opts.maxProfiles) {
            profiles.erase(lruOrder.back());
            lruOrder.pop_back();
            bump(&ServerStats::evictions);
        }

        key(body, "profile");
        body += json::quote(name) + ",";
        key(body, "uops");
        body += num(static_cast<double>(
            entry->profile[0].totalUops));
        return Status();
    }

    /** LRU lookup; null when absent. In-flight holders keep an evicted
     *  entry alive via the shared_ptr. */
    std::shared_ptr<ProfileEntry>
    findProfile(const std::string &name)
    {
        std::lock_guard<std::mutex> lk(lruMu);
        auto it = profiles.find(name);
        if (it == profiles.end())
            return nullptr;
        lruOrder.splice(lruOrder.begin(), lruOrder, it->second.first);
        return it->second.second;
    }

    Status
    opEvaluate(const json::Value &doc, std::string &body)
    {
        const std::string name = doc.stringOr("profile", "");
        auto entry = findProfile(name);
        if (!entry)
            return invalidArgument("unknown profile '" + name +
                                   "' (load-profile first)");
        CoreConfig cfg;
        Status st = parseConfigJson(doc["config"], cfg);
        if (!st.isOk())
            return st;

        std::lock_guard<std::mutex> lk(entry->mu);
        if (!entry->ctx)
            entry->ctx =
                std::make_unique<EvalContext>(entry->profile[0]);
        ModelResult m = evaluateModel(*entry->ctx, cfg, {});
        PowerBreakdown pw = computePower(m.activity, cfg);

        key(body, "cpi");
        body += num(m.cpiPerUop()) + ",";
        key(body, "watts");
        body += num(pw.total()) + ",";
        key(body, "cycles");
        body += num(m.cycles) + ",";
        double n = m.uops > 0 ? m.uops : 1;
        key(body, "stack");
        body += "{\"base\":" + num(m.stack.base / n) +
                ",\"branch\":" + num(m.stack.branch / n) +
                ",\"icache\":" + num(m.stack.icache / n) +
                ",\"llc\":" + num(m.stack.llcHit / n) +
                ",\"dram\":" + num(m.stack.dram / n) + "}";
        return Status();
    }

    Status
    opSweep(const json::Value &doc, const CancelToken &tok,
            std::string &body)
    {
        const std::string name = doc.stringOr("profile", "");
        auto entry = findProfile(name);
        if (!entry)
            return invalidArgument("unknown profile '" + name +
                                   "' (load-profile first)");
        const std::string spaceName = doc.stringOr("space", "small");
        DesignSpace space;
        if (spaceName == "small")
            space = DesignSpace::small();
        else if (spaceName == "full")
            space = DesignSpace();
        else
            return invalidArgument("sweep: unknown space '" + spaceName +
                                   "' (small|full)");

        SweepOptions sopts;
        sopts.mode = SweepMode::ModelOnlyPareto;
        sopts.cancel = tok;
        sopts.evalPool = &entry->pool;
        // Model evaluation shares one memoized state per workload; the
        // entry lock also keeps two sweeps off the same warm pool.
        std::unique_lock<std::mutex> lk(entry->mu);
        std::vector<Trace> traces(1);
        SweepResult r = sweepEx(traces, entry->profile, space.configs(),
                                {}, sopts);
        lk.unlock();
        if (!r.status.isOk())
            return r.status;
        if (r.degraded)
            bump(&ServerStats::degraded);

        key(body, "space");
        body += num(static_cast<double>(space.size())) + ",";
        key(body, "degraded");
        body += r.degraded ? "true," : "false,";
        key(body, "front");
        body += '[';
        if (!r.frontPoints.empty()) {
            bool first = true;
            for (const SweepPoint &pt : r.frontPoints[0]) {
                if (!first)
                    body += ',';
                first = false;
                body += "{\"config\":" +
                        num(static_cast<double>(pt.configIdx)) +
                        ",\"name\":" +
                        json::quote(space[pt.configIdx].name) +
                        ",\"cpi\":" + num(pt.modelCpi) +
                        ",\"watts\":" + num(pt.modelWatts) + "}";
            }
        }
        body += ']';
        return Status();
    }

    Status
    opAccuracy(const json::Value &doc, const CancelToken &tok,
               std::string &body)
    {
        AccuracyOptions aopts;
        aopts.grid = accuracyGrid(doc.stringOr("grid", "ci"));
        double uops = doc.numberOr("uops", 2000);
        if (!(uops >= 100 && uops <= 1e7))
            return invalidArgument(
                "accuracy: uops out of range [100, 1e7]");
        aopts.uops = static_cast<size_t>(uops);
        aopts.includePhased = doc.boolOr("phased", false);
        for (const json::Value &w : doc["workloads"].array())
            aopts.workloads.push_back(w.str());
        aopts.cancel = tok;
        AccuracyReport rep = runAccuracy(aopts);
        if (rep.degraded)
            bump(&ServerStats::degraded);

        key(body, "degraded");
        body += rep.degraded ? "true," : "false,";
        key(body, "points");
        body += num(static_cast<double>(rep.points.size())) + ",";
        key(body, "violations");
        body += num(static_cast<double>(rep.violations.size())) + ",";
        key(body, "mape");
        body += '{';
        for (size_t m = 0; m < kNumAccuracyMetrics; ++m) {
            if (m)
                body += ',';
            body += json::quote(std::string(accuracyMetricName(
                        static_cast<AccuracyMetric>(m)))) +
                    ":" + num(rep.summary[m].mape);
        }
        body += '}';
        return Status();
    }

    void
    opStats(std::string &body)
    {
        ServerStats s;
        {
            std::lock_guard<std::mutex> lk(statsMu);
            s = counters;
        }
        std::vector<std::string> names;
        {
            std::lock_guard<std::mutex> lk(lruMu);
            names.assign(lruOrder.begin(), lruOrder.end());
        }
        auto field = [&](std::string_view k, uint64_t v, bool comma) {
            key(body, k);
            body += num(static_cast<double>(v));
            if (comma)
                body += ',';
        };
        field("connections", s.connections, true);
        field("requests", s.requests, true);
        field("served", s.served, true);
        field("shed", s.shed, true);
        field("errors", s.errors, true);
        field("cancelled", s.cancelled, true);
        field("degraded", s.degraded, true);
        field("evictions", s.evictions, true);
        key(body, "profiles");
        body += '[';
        for (size_t i = 0; i < names.size(); ++i) {
            if (i)
                body += ',';
            body += json::quote(names[i]);
        }
        body += ']';
    }
};

Server::Server(ServerOptions opts)
    : impl_(std::make_unique<Impl>(std::move(opts)))
{
}

Server::~Server() { stop(); }

Status
Server::start()
{
    return impl_->start();
}

void
Server::stop()
{
    impl_->stop();
}

bool
Server::running() const
{
    return impl_->started;
}

ServerStats
Server::stats() const
{
    std::lock_guard<std::mutex> lk(impl_->statsMu);
    return impl_->counters;
}

const ServerOptions &
Server::options() const
{
    return impl_->opts;
}

// ---- Client ---------------------------------------------------------

Client::~Client() { close(); }

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buf_.clear();
}

Status
Client::connect(const std::string &socketPath)
{
    close();
    if (socketPath.size() >= sizeof(sockaddr_un{}.sun_path))
        return invalidArgument("client: socket path too long");
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0)
        return internalError("client: socket() failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        close();
        return internalError("client: cannot connect " + socketPath);
    }
    return Status();
}

Status
Client::sendLine(const std::string &request)
{
    if (fd_ < 0)
        return internalError("client: not connected");
    std::string line = request;
    line += '\n';
    if (!writeAll(fd_, line.data(), line.size()))
        return internalError("client: send failed (server gone?)");
    return Status();
}

Status
Client::recvLine(std::string &response)
{
    if (fd_ < 0)
        return internalError("client: not connected");
    size_t pos;
    while ((pos = buf_.find('\n')) == std::string::npos) {
        char chunk[4096];
        ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return internalError("client: connection closed");
        buf_.append(chunk, static_cast<size_t>(n));
    }
    response = buf_.substr(0, pos);
    buf_.erase(0, pos + 1);
    return Status();
}

Status
Client::call(const std::string &request, std::string &response)
{
    Status st = sendLine(request);
    if (!st.isOk())
        return st;
    return recvLine(response);
}

} // namespace mipp::serve
