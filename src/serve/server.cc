#include "serve/server.hh"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <list>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <vector>

#include "dse/explorer.hh"
#include "model/eval_cache.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "power/power_model.hh"
#include "profiler/profiler.hh"
#include "trace/mtf.hh"
#include "uarch/design_space.hh"
#include "util/cancel.hh"
#include "util/failpoint.hh"
#include "util/json.hh"
#include "validate/accuracy.hh"
#include "workloads/workload.hh"

namespace mipp::serve {

namespace {

bool
writeAll(int fd, const char *p, size_t n)
{
    while (n > 0) {
        ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
        if (w <= 0) {
            if (w < 0 && errno == EINTR)
                continue;
            return false; // peer gone; response dropped
        }
        p += w;
        n -= static_cast<size_t>(w);
    }
    return true;
}

std::string
num(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return buf;
}

/** Append `"key":` to a response under construction. */
void
key(std::string &out, std::string_view k)
{
    out += '"';
    out += k;
    out += "\":";
}

std::string
errorLine(const Status &st, const json::Value &id)
{
    std::string out = "{";
    if (id.isNumber()) {
        key(out, "id");
        out += num(id.number()) + ",";
    } else if (id.isString()) {
        key(out, "id");
        out += json::quote(id.str()) + ",";
    }
    out += "\"ok\":false,";
    key(out, "code");
    out += json::quote(statusCodeName(st.code())) + ",";
    key(out, "error");
    out += json::quote(st.message()) + "}";
    return out;
}

/** Parse the `config` member of a request into a CoreConfig, starting
 *  from the Nehalem reference and validating every knob. */
Status
parseConfigJson(const json::Value &v, CoreConfig &cfg)
{
    cfg = CoreConfig::nehalemReference();
    if (v.isNull())
        return Status();
    if (!v.isObject())
        return invalidArgument("config must be an object");

    auto bounded = [&](std::string_view k, double lo, double hi,
                       double fallback, double &out) -> Status {
        double d = v.numberOr(k, fallback);
        if (!(d >= lo && d <= hi))
            return invalidArgument(
                std::string("config.") + std::string(k) +
                " out of range [" + num(lo) + ", " + num(hi) + "]");
        out = d;
        return Status();
    };

    double width = 0, rob = 0, l1dKb = 0, l2Kb = 0, l3Mb = 0, freq = 0;
    Status st;
    if (!(st = bounded("width", 1, 16, cfg.dispatchWidth, width)).isOk())
        return st;
    if (!(st = bounded("rob", 16, 4096, cfg.robSize, rob)).isOk())
        return st;
    if (!(st = bounded("l1d_kb", 1, 1024, cfg.l1d.sizeBytes / 1024.0,
                       l1dKb))
             .isOk())
        return st;
    if (!(st = bounded("l2_kb", 16, 16384, cfg.l2.sizeBytes / 1024.0,
                       l2Kb))
             .isOk())
        return st;
    if (!(st = bounded("l3_mb", 1, 256,
                       cfg.l3.sizeBytes / 1024.0 / 1024.0, l3Mb))
             .isOk())
        return st;
    if (!(st = bounded("freq_ghz", 0.1, 10, cfg.freqGHz, freq)).isOk())
        return st;

    cfg.setWidth(static_cast<uint32_t>(width));
    scaleBackEnd(cfg, static_cast<uint32_t>(rob));
    cfg.l1d.sizeBytes = static_cast<uint32_t>(l1dKb) * 1024;
    cfg.l2.sizeBytes = static_cast<uint32_t>(l2Kb) * 1024;
    cfg.l3.sizeBytes = static_cast<uint32_t>(l3Mb) * 1024 * 1024;
    cfg.freqGHz = freq;
    cfg.prefetcherEnabled = v.boolOr("prefetcher", cfg.prefetcherEnabled);
    scaleCacheLatencies(cfg);
    return Status();
}

} // namespace

struct Server::Impl {
    ServerOptions opts;

    // ---- connection bookkeeping ------------------------------------
    struct Connection {
        int fd = -1;
        std::mutex writeMu;             // one response line at a time
        std::mutex mu;                  // guards tokens/open
        std::vector<CancelToken> tokens; // queued + in-flight requests
        bool open = true;

        void
        registerToken(const CancelToken &t)
        {
            std::lock_guard<std::mutex> lk(mu);
            tokens.push_back(t);
            if (!open)
                t.cancel(); // raced with disconnect
        }

        void
        unregisterToken(const CancelToken &t)
        {
            std::lock_guard<std::mutex> lk(mu);
            std::erase_if(tokens, [&](const CancelToken &u) {
                return u.id() == t.id();
            });
        }

        void
        unregisterAll()
        {
            std::lock_guard<std::mutex> lk(mu);
            open = false;
            for (auto &t : tokens)
                t.cancel();
            tokens.clear();
        }
    };

    struct Request {
        std::shared_ptr<Connection> conn;
        std::string line;
        CancelToken cancel;
        uint64_t traceId = 0;   // ties this request's spans together
        uint64_t enqueueNs = 0; // queue-wait measurement start
    };

    // ---- profile LRU ------------------------------------------------
    struct ProfileEntry {
        // Stored inside a 1-element vector so sweepEx can borrow it
        // without copying (the warm ModelEvalPool is keyed on profile
        // identity; a copy would defeat it).
        std::vector<Profile> profile;
        std::unique_ptr<EvalContext> ctx; // built on first evaluate
        ModelEvalPool pool;               // warm sweep evaluators
        std::mutex mu; // serializes model state (not thread-safe)
    };

    std::mutex lruMu;
    std::list<std::string> lruOrder; // front = most recent
    std::unordered_map<std::string,
                       std::pair<std::list<std::string>::iterator,
                                 std::shared_ptr<ProfileEntry>>>
        profiles;

    // ---- queue + threads -------------------------------------------
    std::mutex qMu;
    std::condition_variable qCv;
    std::deque<Request> queue;
    std::atomic<bool> stopping{false};
    std::atomic<bool> started{false};

    int listenFd = -1;
    std::thread acceptThread;
    std::vector<std::thread> executors;
    std::mutex connMu;
    std::vector<std::thread> readers;
    std::vector<std::shared_ptr<Connection>> conns;

    // ---- metrics ----------------------------------------------------
    // Per-server registry (deliberately not obs::globalRegistry()) so
    // in-process test servers and restarted daemons count from zero.
    // Handles are resolved once here; the request path only touches
    // relaxed atomics. See server.hh for the snapshot-consistency
    // contract on the stats/metrics ops.
    struct Metrics {
        obs::Registry reg;
        obs::Counter &connections =
            reg.counter("serve_connections_total");
        obs::Counter &requests = reg.counter("serve_requests_total");
        obs::Counter &served = reg.counter("serve_served_total");
        obs::Counter &shed = reg.counter("serve_shed_total");
        obs::Counter &errors = reg.counter("serve_errors_total");
        obs::Counter &cancelled = reg.counter("serve_cancelled_total");
        obs::Counter &degraded = reg.counter("serve_degraded_total");
        obs::Counter &evictions = reg.counter("serve_evictions_total");
        obs::Counter &lruHits =
            reg.counter("serve_profile_lru_hits_total");
        obs::Counter &lruMisses =
            reg.counter("serve_profile_lru_misses_total");
        obs::Counter &bytesIn = reg.counter("serve_bytes_read_total");
        obs::Counter &bytesOut =
            reg.counter("serve_bytes_written_total");
        obs::Gauge &queueDepth = reg.gauge("serve_queue_depth");
        obs::LatencyHistogram &queueWait =
            reg.histogram("serve_queue_wait_ns");
    };
    Metrics met;

    /** Dispatch table row: wire op name, span site, latency histogram
     *  (serve_op_latency_ns{op="..."}); last row catches unknown ops. */
    struct OpInfo {
        const char *op = nullptr;
        const char *span = nullptr;
        obs::LatencyHistogram *lat = nullptr;
    };
    std::array<OpInfo, 10> opInfo;

    std::atomic<uint64_t> startNs{0}; // obs::nowNs() at start()

    std::thread statsThread; // periodic stats log line (statsIntervalMs)
    std::mutex stopMu;
    std::condition_variable stopCv;

    explicit Impl(ServerOptions o) : opts(std::move(o))
    {
        static constexpr const char *kOps[] = {
            "ping",     "load-profile", "profile",
            "evaluate", "sweep",        "accuracy",
            "stats",    "metrics",      "failpoint",
            "other"};
        static constexpr const char *kSpans[] = {
            "serve.op.ping",     "serve.op.load_profile",
            "serve.op.profile",  "serve.op.evaluate",
            "serve.op.sweep",    "serve.op.accuracy",
            "serve.op.stats",    "serve.op.metrics",
            "serve.op.failpoint", "serve.op.other"};
        for (size_t i = 0; i < opInfo.size(); ++i)
            opInfo[i] = {kOps[i], kSpans[i],
                         &met.reg.histogram(
                             "serve_op_latency_ns",
                             std::string("op=\"") + kOps[i] + "\"")};
    }

    double
    uptimeMsNow() const
    {
        uint64_t s = startNs.load(std::memory_order_relaxed);
        return s ? static_cast<double>(obs::nowNs() - s) / 1e6 : 0.0;
    }

    ServerStats
    snapshotStats() const
    {
        ServerStats s;
        s.connections = met.connections.value();
        s.requests = met.requests.value();
        s.served = met.served.value();
        s.shed = met.shed.value();
        s.errors = met.errors.value();
        s.cancelled = met.cancelled.value();
        s.degraded = met.degraded.value();
        s.evictions = met.evictions.value();
        s.lruHits = met.lruHits.value();
        s.lruMisses = met.lruMisses.value();
        s.bytesIn = met.bytesIn.value();
        s.bytesOut = met.bytesOut.value();
        s.uptimeMs = uptimeMsNow();
        return s;
    }

    void
    respond(const std::shared_ptr<Connection> &conn, std::string line)
    {
        MIPP_SPAN("serve.respond");
        line += '\n';
        met.bytesOut.add(line.size());
        std::lock_guard<std::mutex> lk(conn->writeMu);
        writeAll(conn->fd, line.data(), line.size());
    }

    // ---- lifecycle -------------------------------------------------
    Status
    start()
    {
        if (opts.socketPath.empty())
            return invalidArgument("serve: socket path required");
        if (opts.socketPath.size() >= sizeof(sockaddr_un{}.sun_path))
            return invalidArgument("serve: socket path too long");
        if (started)
            return internalError("serve: already started");
        if (opts.workers == 0)
            opts.workers = 1;
        if (opts.maxQueue == 0)
            opts.maxQueue = 1;

        listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (listenFd < 0)
            return internalError("serve: socket() failed");
        ::unlink(opts.socketPath.c_str());
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, opts.socketPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) < 0 ||
            ::listen(listenFd, 64) < 0) {
            ::close(listenFd);
            listenFd = -1;
            return internalError("serve: cannot bind " + opts.socketPath);
        }

        started = true;
        stopping.store(false);
        startNs.store(obs::nowNs(), std::memory_order_relaxed);
        for (unsigned i = 0; i < opts.workers; ++i)
            executors.emplace_back([this] { executorLoop(); });
        acceptThread = std::thread([this] { acceptLoop(); });
        if (opts.statsIntervalMs > 0)
            statsThread = std::thread([this] { statsLogLoop(); });
        return Status();
    }

    void
    stop()
    {
        if (!started)
            return;
        stopping.store(true);

        // Unblock the accept loop and every reader.
        ::shutdown(listenFd, SHUT_RDWR);
        {
            std::lock_guard<std::mutex> lk(connMu);
            for (auto &c : conns) {
                c->unregisterAll();
                ::shutdown(c->fd, SHUT_RDWR);
            }
        }
        // Cancel queued work and wake executors.
        {
            std::lock_guard<std::mutex> lk(qMu);
            for (auto &r : queue)
                r.cancel.cancel();
            queue.clear();
        }
        qCv.notify_all();
        {
            std::lock_guard<std::mutex> lk(stopMu);
        }
        stopCv.notify_all();

        if (statsThread.joinable())
            statsThread.join();
        if (acceptThread.joinable())
            acceptThread.join();
        for (auto &t : executors)
            t.join();
        executors.clear();
        {
            std::lock_guard<std::mutex> lk(connMu);
            for (auto &t : readers)
                t.join();
            readers.clear();
            for (auto &c : conns)
                ::close(c->fd);
            conns.clear();
        }
        ::close(listenFd);
        listenFd = -1;
        ::unlink(opts.socketPath.c_str());
        started = false;
    }

    void
    acceptLoop()
    {
        while (!stopping.load()) {
            int fd = ::accept(listenFd, nullptr, nullptr);
            if (fd < 0) {
                if (errno == EINTR)
                    continue;
                break; // listener shut down
            }
            auto conn = std::make_shared<Connection>();
            conn->fd = fd;
            met.connections.add();
            std::lock_guard<std::mutex> lk(connMu);
            if (stopping.load()) {
                ::close(fd);
                break;
            }
            conns.push_back(conn);
            readers.emplace_back([this, conn] { readerLoop(conn); });
        }
    }

    void
    readerLoop(const std::shared_ptr<Connection> &conn)
    {
        std::string buf;
        char chunk[4096];
        bool overflow = false;
        while (!stopping.load()) {
            ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
            if (n <= 0) {
                if (n < 0 && errno == EINTR)
                    continue;
                break; // EOF or error: disconnect
            }
            buf.append(chunk, static_cast<size_t>(n));
            met.bytesIn.add(static_cast<uint64_t>(n));
            size_t pos;
            while ((pos = buf.find('\n')) != std::string::npos) {
                std::string line = buf.substr(0, pos);
                buf.erase(0, pos + 1);
                if (!line.empty() && line.back() == '\r')
                    line.pop_back();
                if (!line.empty())
                    enqueue(conn, std::move(line));
            }
            if (buf.size() > opts.maxRequestBytes) {
                // A line that can never complete within the limit:
                // shed and drop the connection rather than buffer on.
                met.shed.add();
                respond(conn,
                        errorLine(resourceExhausted(
                                      "request line exceeds " +
                                      std::to_string(
                                          opts.maxRequestBytes) +
                                      " bytes"),
                                  json::Value()));
                overflow = true;
                break;
            }
        }
        if (overflow)
            ::shutdown(conn->fd, SHUT_RDWR);
        // Disconnect: cancel everything this connection still has
        // queued or running.
        conn->unregisterAll();
    }

    void
    enqueue(const std::shared_ptr<Connection> &conn, std::string line)
    {
        met.requests.add();
        Request req;
        req.conn = conn;
        req.line = std::move(line);
        req.traceId = obs::newTraceId();
        req.enqueueNs = obs::nowNs();
        // The token exists from enqueue time so a disconnect cancels
        // queued requests too, not just the one being executed.
        req.cancel = opts.defaultDeadlineMs > 0
                         ? CancelToken::withDeadlineMs(
                               opts.defaultDeadlineMs)
                         : CancelToken::manual();
        bool full = false;
        {
            std::lock_guard<std::mutex> lk(qMu);
            if (queue.size() >= opts.maxQueue) {
                full = true;
            } else {
                conn->registerToken(req.cancel);
                queue.push_back(std::move(req));
                met.queueDepth.set(
                    static_cast<int64_t>(queue.size()));
            }
        }
        if (full) {
            // Shed outside the queue lock: the response write can
            // block on a slow client and must not stall executors.
            met.shed.add();
            respond(conn, errorLine(
                              resourceExhausted(
                                  "request queue full (depth " +
                                  std::to_string(opts.maxQueue) +
                                  "); retry later"),
                              json::Value()));
            return;
        }
        qCv.notify_one();
    }

    void
    executorLoop()
    {
        while (true) {
            Request req;
            {
                std::unique_lock<std::mutex> lk(qMu);
                qCv.wait(lk, [&] {
                    return stopping.load() || !queue.empty();
                });
                if (stopping.load())
                    return;
                req = std::move(queue.front());
                queue.pop_front();
                met.queueDepth.set(
                    static_cast<int64_t>(queue.size()));
            }
            uint64_t wait = obs::nowNs() - req.enqueueNs;
            met.queueWait.record(wait);
            obs::recordSpan("serve.queue_wait", req.traceId,
                            req.enqueueNs, wait);
            obs::TraceIdScope tscope(req.traceId);
            (void)MIPP_FAILPOINT_C("serve.exec_delay", &req.cancel);
            if (req.cancel.cancelled()) {
                // Client left (or the default deadline lapsed) while
                // the request sat in the queue: drop it unexecuted.
                met.cancelled.add();
                req.conn->unregisterToken(req.cancel);
                continue;
            }
            execute(req);
            req.conn->unregisterToken(req.cancel);
        }
    }

    // ---- request execution -----------------------------------------
    void
    execute(const Request &req)
    {
        MIPP_SPAN("serve.exec");
        json::Value doc;
        Status pst;
        {
            MIPP_SPAN("serve.parse");
            pst = json::parse(req.line, doc,
                              {.maxBytes = opts.maxRequestBytes});
        }
        const json::Value id = doc["id"];
        std::string out;
        if (!pst.isOk()) {
            out = errorLine(pst, id);
        } else {
            // Per-request deadline overrides the server default.
            CancelToken tok = req.cancel;
            bool extraTok = false;
            double dl = doc.numberOr("deadline_ms", 0);
            if (dl > 0) {
                tok = CancelToken::withDeadlineMs(dl);
                req.conn->registerToken(tok);
                extraTok = true;
            }
            try {
                out = dispatch(doc, id, tok);
            } catch (const StatusError &e) {
                out = errorLine(e.status(), id);
            } catch (const std::exception &e) {
                // The survivability guarantee: an unexpected throw in a
                // handler answers *this* request with Internal and the
                // daemon keeps serving.
                out = errorLine(
                    internalError(std::string("unhandled: ") + e.what()),
                    id);
            }
            if (tok.cancelled())
                met.cancelled.add();
            if (extraTok)
                req.conn->unregisterToken(tok);
        }
        if (out.find("\"ok\":false") != std::string::npos)
            met.errors.add();
        met.served.add();
        respond(req.conn, out);
    }

    std::string
    dispatch(const json::Value &doc, const json::Value &id,
             const CancelToken &tok)
    {
        const std::string op = doc.stringOr("op", "");
        std::string body; // "key":value,... appended per op

        size_t opIdx = opInfo.size() - 1; // "other"
        for (size_t i = 0; i + 1 < opInfo.size(); ++i)
            if (op == opInfo[i].op) {
                opIdx = i;
                break;
            }
        obs::ScopedSpan opSpan(opInfo[opIdx].span, opInfo[opIdx].lat);

        if (op == "ping") {
            // nothing to add
        } else if (op == "load-profile") {
            Status st = opLoadProfile(doc, body);
            if (!st.isOk())
                return errorLine(st, id);
        } else if (op == "profile") {
            Status st = opProfileWorkload(doc, body);
            if (!st.isOk())
                return errorLine(st, id);
        } else if (op == "evaluate") {
            Status st = opEvaluate(doc, body);
            if (!st.isOk())
                return errorLine(st, id);
        } else if (op == "sweep") {
            Status st = opSweep(doc, tok, body);
            if (!st.isOk())
                return errorLine(st, id);
        } else if (op == "accuracy") {
            Status st = opAccuracy(doc, tok, body);
            if (!st.isOk())
                return errorLine(st, id);
        } else if (op == "stats") {
            opStats(body);
        } else if (op == "metrics") {
            Status st = opMetrics(doc, body);
            if (!st.isOk())
                return errorLine(st, id);
        } else if (op == "failpoint") {
            if (!opts.allowFailpoints)
                return errorLine(
                    invalidArgument("failpoints are not enabled on this "
                                    "server (--failpoints)"),
                    id);
            const std::string spec = doc.stringOr("spec", "");
            if (spec == "reset")
                failpoint::reset();
            else if (!failpoint::armFromString(spec))
                return errorLine(
                    invalidArgument("bad failpoint spec '" + spec +
                                    "' (name[=fires[:sleepMs]])"),
                    id);
        } else {
            return errorLine(
                invalidArgument("unknown op '" + op +
                                "' (ping|load-profile|profile|evaluate|"
                                "sweep|accuracy|stats|metrics|failpoint)"),
                id);
        }

        std::string out = "{";
        if (id.isNumber()) {
            key(out, "id");
            out += num(id.number()) + ",";
        } else if (id.isString()) {
            key(out, "id");
            out += json::quote(id.str()) + ",";
        }
        out += "\"ok\":true";
        if (!body.empty()) {
            out += ',';
            out += body;
        }
        out += '}';
        return out;
    }

    Status
    opLoadProfile(const json::Value &doc, std::string &body)
    {
        const std::string name = doc.stringOr("name", "");
        if (name.empty())
            return invalidArgument("load-profile: missing 'name'");
        Profile p;
        if (doc["data"].isString()) {
            Status st = parseProfile(doc["data"].str(), p,
                                     opts.profileLimits);
            if (!st.isOk())
                return st;
        } else if (doc["path"].isString()) {
            Status st = loadProfileChecked(doc["path"].str(), p,
                                           opts.profileLimits);
            if (!st.isOk())
                return st;
        } else {
            return invalidArgument(
                "load-profile: need 'data' (inline text) or 'path'");
        }

        auto entry = std::make_shared<ProfileEntry>();
        entry->profile.push_back(std::move(p));
        entry->pool.reserve(1);
        storeProfile(name, entry);

        key(body, "profile");
        body += json::quote(name) + ",";
        key(body, "uops");
        body += num(static_cast<double>(
            entry->profile[0].totalUops));
        return Status();
    }

    /** Insert (or replace) @p entry under @p name in the LRU store,
     *  evicting the coldest entries past the capacity limit. */
    void
    storeProfile(const std::string &name,
                 const std::shared_ptr<ProfileEntry> &entry)
    {
        std::lock_guard<std::mutex> lk(lruMu);
        auto it = profiles.find(name);
        if (it != profiles.end()) {
            lruOrder.erase(it->second.first);
            profiles.erase(it);
        }
        lruOrder.push_front(name);
        profiles.emplace(name,
                         std::make_pair(lruOrder.begin(), entry));
        while (profiles.size() > opts.maxProfiles) {
            profiles.erase(lruOrder.back());
            lruOrder.pop_back();
            met.evictions.add();
        }
    }

    /**
     * Profile a suite workload (or a server-side `.mtf` trace file)
     * server-side: produce the micro-op stream, run the segment-parallel
     * profiler, and park the result in the LRU store so follow-up
     * evaluate/sweep requests can use it without the client ever
     * serializing a profile.
     */
    Status
    opProfileWorkload(const json::Value &doc, std::string &body)
    {
        const std::string workload = doc.stringOr("workload", "");
        const std::string tracePath = doc.stringOr("trace", "");
        if (workload.empty() && tracePath.empty())
            return invalidArgument(
                "profile: need 'workload' or 'trace' (server-side .mtf "
                "path)");
        if (!workload.empty() && !tracePath.empty())
            return invalidArgument(
                "profile: 'workload' and 'trace' are exclusive");
        WorkloadSpec spec;
        if (!workload.empty()) {
            try {
                spec = suiteWorkload(workload);
            } catch (const std::out_of_range &) {
                return invalidArgument("profile: unknown workload '" +
                                       workload + "'");
            }
        }

        double uops = doc.numberOr("uops", 200000);
        if (!(uops >= 1000 && uops <= 5e7))
            return invalidArgument(
                "profile: 'uops' out of range [1e3, 5e7]");
        double threads = doc.numberOr("threads", 1);
        if (!(threads >= 0 && threads <= 64))
            return invalidArgument(
                "profile: 'threads' out of range [0, 64]");
        double segUops = doc.numberOr("segment_uops", 0);
        if (!(segUops >= 0 && segUops <= 5e7))
            return invalidArgument(
                "profile: 'segment_uops' out of range [0, 5e7]");
        const std::string name = doc.stringOr(
            "name", workload.empty() ? tracePath : workload);

        ProfilerConfig cfg;
        cfg.name = name;
        ParallelProfileOptions popts;
        popts.threads = static_cast<unsigned>(threads);
        popts.segmentUops = static_cast<size_t>(segUops);
        Profile p;
        if (!tracePath.empty()) {
            // Streamed at bounded memory; the open fully validates the
            // file, so malformed bytes come back as a structured error
            // rather than touching the profiler.
            std::unique_ptr<MtfTraceSource> source;
            Status st = MtfTraceSource::open(tracePath, source);
            if (!st.isOk())
                return st;
            p = threads == 1 ? profileSource(*source, cfg)
                             : profileSourceParallel(*source, cfg, popts);
        } else {
            Trace t =
                generateWorkload(spec, static_cast<size_t>(uops));
            p = threads == 1 ? profileTrace(t, cfg)
                             : profileTraceParallel(t, cfg, popts);
        }

        auto entry = std::make_shared<ProfileEntry>();
        entry->profile.push_back(std::move(p));
        entry->pool.reserve(1);
        storeProfile(name, entry);

        key(body, "profile");
        body += json::quote(name) + ",";
        key(body, "uops");
        body += num(static_cast<double>(
            entry->profile[0].totalUops));
        return Status();
    }

    /** LRU lookup; null when absent. In-flight holders keep an evicted
     *  entry alive via the shared_ptr. */
    std::shared_ptr<ProfileEntry>
    findProfile(const std::string &name)
    {
        std::lock_guard<std::mutex> lk(lruMu);
        auto it = profiles.find(name);
        if (it == profiles.end()) {
            met.lruMisses.add();
            return nullptr;
        }
        met.lruHits.add();
        lruOrder.splice(lruOrder.begin(), lruOrder, it->second.first);
        return it->second.second;
    }

    Status
    opEvaluate(const json::Value &doc, std::string &body)
    {
        const std::string name = doc.stringOr("profile", "");
        auto entry = findProfile(name);
        if (!entry)
            return invalidArgument("unknown profile '" + name +
                                   "' (load-profile first)");
        CoreConfig cfg;
        Status st = parseConfigJson(doc["config"], cfg);
        if (!st.isOk())
            return st;

        std::lock_guard<std::mutex> lk(entry->mu);
        if (!entry->ctx)
            entry->ctx =
                std::make_unique<EvalContext>(entry->profile[0]);
        ModelResult m = evaluateModel(*entry->ctx, cfg, {});
        PowerBreakdown pw = computePower(m.activity, cfg);

        key(body, "cpi");
        body += num(m.cpiPerUop()) + ",";
        key(body, "watts");
        body += num(pw.total()) + ",";
        key(body, "cycles");
        body += num(m.cycles) + ",";
        double n = m.uops > 0 ? m.uops : 1;
        key(body, "stack");
        body += "{\"base\":" + num(m.stack.base / n) +
                ",\"branch\":" + num(m.stack.branch / n) +
                ",\"icache\":" + num(m.stack.icache / n) +
                ",\"llc\":" + num(m.stack.llcHit / n) +
                ",\"dram\":" + num(m.stack.dram / n) + "}";
        return Status();
    }

    Status
    opSweep(const json::Value &doc, const CancelToken &tok,
            std::string &body)
    {
        const std::string name = doc.stringOr("profile", "");
        auto entry = findProfile(name);
        if (!entry)
            return invalidArgument("unknown profile '" + name +
                                   "' (load-profile first)");
        const std::string spaceName = doc.stringOr("space", "small");
        DesignSpace space;
        if (spaceName == "small")
            space = DesignSpace::small();
        else if (spaceName == "full")
            space = DesignSpace();
        else
            return invalidArgument("sweep: unknown space '" + spaceName +
                                   "' (small|full)");

        SweepOptions sopts;
        sopts.mode = SweepMode::ModelOnlyPareto;
        sopts.cancel = tok;
        sopts.evalPool = &entry->pool;
        // Model evaluation shares one memoized state per workload; the
        // entry lock also keeps two sweeps off the same warm pool.
        std::unique_lock<std::mutex> lk(entry->mu);
        std::vector<Trace> traces(1);
        SweepResult r = sweepEx(traces, entry->profile, space.configs(),
                                {}, sopts);
        lk.unlock();
        if (!r.status.isOk())
            return r.status;
        if (r.degraded)
            met.degraded.add();

        key(body, "space");
        body += num(static_cast<double>(space.size())) + ",";
        key(body, "degraded");
        body += r.degraded ? "true," : "false,";
        key(body, "front");
        body += '[';
        if (!r.frontPoints.empty()) {
            bool first = true;
            for (const SweepPoint &pt : r.frontPoints[0]) {
                if (!first)
                    body += ',';
                first = false;
                body += "{\"config\":" +
                        num(static_cast<double>(pt.configIdx)) +
                        ",\"name\":" +
                        json::quote(space[pt.configIdx].name) +
                        ",\"cpi\":" + num(pt.modelCpi) +
                        ",\"watts\":" + num(pt.modelWatts) + "}";
            }
        }
        body += ']';
        return Status();
    }

    Status
    opAccuracy(const json::Value &doc, const CancelToken &tok,
               std::string &body)
    {
        AccuracyOptions aopts;
        aopts.grid = accuracyGrid(doc.stringOr("grid", "ci"));
        double uops = doc.numberOr("uops", 2000);
        if (!(uops >= 100 && uops <= 1e7))
            return invalidArgument(
                "accuracy: uops out of range [100, 1e7]");
        aopts.uops = static_cast<size_t>(uops);
        aopts.includePhased = doc.boolOr("phased", false);
        for (const json::Value &w : doc["workloads"].array())
            aopts.workloads.push_back(w.str());
        aopts.cancel = tok;
        AccuracyReport rep = runAccuracy(aopts);
        if (rep.degraded)
            met.degraded.add();

        key(body, "degraded");
        body += rep.degraded ? "true," : "false,";
        key(body, "points");
        body += num(static_cast<double>(rep.points.size())) + ",";
        key(body, "violations");
        body += num(static_cast<double>(rep.violations.size())) + ",";
        key(body, "mape");
        body += '{';
        for (size_t m = 0; m < kNumAccuracyMetrics; ++m) {
            if (m)
                body += ',';
            body += json::quote(std::string(accuracyMetricName(
                        static_cast<AccuracyMetric>(m)))) +
                    ":" + num(rep.summary[m].mape);
        }
        body += '}';
        return Status();
    }

    void
    opStats(std::string &body)
    {
        ServerStats s = snapshotStats();
        std::vector<std::string> names;
        {
            std::lock_guard<std::mutex> lk(lruMu);
            names.assign(lruOrder.begin(), lruOrder.end());
        }
        auto field = [&](std::string_view k, uint64_t v, bool comma) {
            key(body, k);
            body += num(static_cast<double>(v));
            if (comma)
                body += ',';
        };
        key(body, "uptime_ms");
        body += num(s.uptimeMs) + ",";
        field("connections", s.connections, true);
        field("requests", s.requests, true);
        field("served", s.served, true);
        field("shed", s.shed, true);
        field("errors", s.errors, true);
        field("cancelled", s.cancelled, true);
        field("degraded", s.degraded, true);
        field("evictions", s.evictions, true);
        field("lru_hits", s.lruHits, true);
        field("lru_misses", s.lruMisses, true);
        field("bytes_in", s.bytesIn, true);
        field("bytes_out", s.bytesOut, true);
        key(body, "queue_depth");
        body += num(static_cast<double>(met.queueDepth.value())) + ",";
        key(body, "profiles");
        body += '[';
        for (size_t i = 0; i < names.size(); ++i) {
            if (i)
                body += ',';
            body += json::quote(names[i]);
        }
        body += ']';
    }

    Status
    opMetrics(const json::Value &doc, std::string &body)
    {
        const std::string format = doc.stringOr("format", "json");
        if (format != "json" && format != "prometheus" &&
            format != "both")
            return invalidArgument("metrics: unknown format '" +
                                   format +
                                   "' (json|prometheus|both)");
        key(body, "uptime_ms");
        body += num(uptimeMsNow());
        if (format == "json" || format == "both") {
            body += ',';
            key(body, "metrics");
            body += met.reg.renderJsonArray();
        }
        if (format == "prometheus" || format == "both") {
            body += ',';
            key(body, "prometheus");
            body += json::quote(met.reg.renderPrometheus());
        }
        return Status();
    }

    // ---- periodic stats log ----------------------------------------
    void
    statsLogLoop()
    {
        const auto interval = std::chrono::duration<double, std::milli>(
            opts.statsIntervalMs);
        std::unique_lock<std::mutex> lk(stopMu);
        while (!stopping.load()) {
            if (stopCv.wait_for(lk, interval,
                                [&] { return stopping.load(); }))
                break;
            ServerStats s = snapshotStats();
            obs::HistogramSnapshot q = met.queueWait.snapshot();
            uint64_t lookups = s.lruHits + s.lruMisses;
            std::fprintf(
                stderr,
                "[mipp_serve] uptime_ms=%.0f requests=%llu "
                "served=%llu shed=%llu errors=%llu cancelled=%llu "
                "degraded=%llu queue_depth=%lld "
                "queue_wait_p99_ns=%.0f lru_hit_ratio=%.3f\n",
                s.uptimeMs,
                static_cast<unsigned long long>(s.requests),
                static_cast<unsigned long long>(s.served),
                static_cast<unsigned long long>(s.shed),
                static_cast<unsigned long long>(s.errors),
                static_cast<unsigned long long>(s.cancelled),
                static_cast<unsigned long long>(s.degraded),
                static_cast<long long>(met.queueDepth.value()),
                q.quantile(0.99),
                lookups ? static_cast<double>(s.lruHits) / lookups
                        : 0.0);
        }
    }
};

Server::Server(ServerOptions opts)
    : impl_(std::make_unique<Impl>(std::move(opts)))
{
}

Server::~Server() { stop(); }

Status
Server::start()
{
    return impl_->start();
}

void
Server::stop()
{
    impl_->stop();
}

bool
Server::running() const
{
    return impl_->started;
}

ServerStats
Server::stats() const
{
    return impl_->snapshotStats();
}

const ServerOptions &
Server::options() const
{
    return impl_->opts;
}

std::string
Server::metricsJson() const
{
    return impl_->met.reg.renderJson();
}

std::string
Server::metricsPrometheus() const
{
    return impl_->met.reg.renderPrometheus();
}

// ---- Client ---------------------------------------------------------

Client::~Client() { close(); }

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buf_.clear();
}

Status
Client::connect(const std::string &socketPath)
{
    close();
    if (socketPath.size() >= sizeof(sockaddr_un{}.sun_path))
        return invalidArgument("client: socket path too long");
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0)
        return internalError("client: socket() failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        close();
        return internalError("client: cannot connect " + socketPath);
    }
    return Status();
}

Status
Client::sendLine(const std::string &request)
{
    if (fd_ < 0)
        return internalError("client: not connected");
    std::string line = request;
    line += '\n';
    if (!writeAll(fd_, line.data(), line.size()))
        return internalError("client: send failed (server gone?)");
    return Status();
}

Status
Client::recvLine(std::string &response)
{
    if (fd_ < 0)
        return internalError("client: not connected");
    size_t pos;
    while ((pos = buf_.find('\n')) == std::string::npos) {
        char chunk[4096];
        ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return internalError("client: connection closed");
        buf_.append(chunk, static_cast<size_t>(n));
    }
    response = buf_.substr(0, pos);
    buf_.erase(0, pos + 1);
    return Status();
}

Status
Client::call(const std::string &request, std::string &response)
{
    Status st = sendLine(request);
    if (!st.isOk())
        return st;
    return recvLine(response);
}

} // namespace mipp::serve
