/**
 * @file
 * DSE-as-a-service: a persistent daemon over a JSON-lines socket.
 *
 * The paper's profile-once / evaluate-everywhere split is a server shape:
 * profiles are immutable hot state uploaded once, model evaluations are
 * cheap pure queries against them. The daemon listens on a Unix-domain
 * stream socket; the protocol is one JSON object per line in each
 * direction. Requests carry an `op` plus op-specific fields and an
 * optional `id` that is echoed back; responses always carry `"ok"` and,
 * on failure, a structured `"code"` from the Status taxonomy plus a
 * human-readable `"error"`:
 *
 *   {"op":"ping"}
 *   {"op":"load-profile","name":"w0","data":"<mipp-profile text>"}
 *   {"op":"evaluate","profile":"w0","config":{"width":4,"rob":128}}
 *   {"op":"sweep","profile":"w0","space":"small","deadline_ms":50}
 *   {"op":"accuracy","grid":"ci","uops":2000}
 *   {"op":"stats"}            {"op":"failpoint","spec":"name=1:10"}
 *   {"op":"metrics","format":"json"|"prometheus"|"both"}
 *
 * Robustness is the design driver, in layers:
 *
 *  - *Hardened input*: request lines are length-capped; JSON parsing is
 *    the strict, depth/size-limited util/json parser; profile uploads go
 *    through the checksummed, bounds-checked profile_io path. Bad bytes
 *    produce a structured error response, never a crash, and never stop
 *    the daemon from serving the next request.
 *  - *Deadlines + cancellation*: each request gets a CancelToken (from
 *    `deadline_ms` or the server default). Sweeps and accuracy runs
 *    degrade gracefully on expiry — partial results flagged
 *    `"degraded":true` — instead of failing. A client disconnect cancels
 *    that connection's queued and in-flight work.
 *  - *Backpressure*: a bounded request queue feeds a fixed executor
 *    pool; when the queue is full the reader sheds load immediately with
 *    a ResourceExhausted response rather than buffering unboundedly.
 *  - *Warm state*: deserialized profiles live in a bounded LRU; each
 *    entry keeps a memoized EvalContext and a ModelEvalPool so repeated
 *    evaluations and sweeps against the same profile reuse the batched
 *    evaluators (PR 6) instead of rebuilding StatStacks per request.
 *  - *Fault injection*: with ServerOptions::allowFailpoints the
 *    `failpoint` op arms util/failpoint sites remotely, which is how the
 *    recovery-path tests drive corrupt-upload, mid-sweep-deadline and
 *    queue-overflow scenarios end to end.
 *  - *Observability*: every counter the daemon keeps lives in a
 *    per-server obs::Registry (src/obs/metrics.hh). The `stats` op is a
 *    compact view (the PR 7 counters plus uptime_ms, queue depth, LRU
 *    hit/miss, bytes in/out); the `metrics` op is the full registry —
 *    per-op latency histograms with p50/p90/p99, the queue-wait
 *    histogram — as JSON and/or Prometheus text exposition. Each
 *    request carries an obs trace id through its whole lifecycle
 *    (parse → queue wait → executor → op → respond), so an installed
 *    SpanRecorder (`mipp_cli serve --trace-json`) yields a Chrome
 *    trace attributing every microsecond of every request.
 *
 *    Snapshot consistency, for both ops: every value is a relaxed-
 *    atomic read of a monotonic counter (histogram snapshots are
 *    per-bin exact). No lock stops the request path while a snapshot
 *    is taken, so related counters may disagree by whatever was in
 *    flight at that instant (e.g. `requests` can transiently exceed
 *    `served + shed + cancelled` by the queue contents). Counters
 *    never reset while the server runs — there is deliberately no
 *    reset op; rate and delta math belongs to the scraper, anchored
 *    on `uptime_ms` (milliseconds since Server::start()).
 *
 * Responses to one connection's pipelined requests may complete out of
 * order (executors run them concurrently); clients that pipeline should
 * match on `id`. The load-shed response is emitted before parsing, so it
 * carries no `id`.
 */

#ifndef MIPP_SERVE_SERVER_HH
#define MIPP_SERVE_SERVER_HH

#include <cstdint>
#include <memory>
#include <string>

#include "profiler/profile_io.hh"
#include "util/status.hh"

namespace mipp::serve {

struct ServerOptions {
    /** Unix-domain socket path (required; unlinked on bind and stop). */
    std::string socketPath;
    /** Executor threads draining the request queue. */
    unsigned workers = 2;
    /** Bounded queue depth; a full queue sheds load (ResourceExhausted). */
    size_t maxQueue = 16;
    /** Profile-LRU capacity; least-recently-used entries are evicted. */
    size_t maxProfiles = 8;
    /** Default per-request deadline when the request names none;
     *  0 = unlimited. */
    double defaultDeadlineMs = 0;
    /** Longest accepted request line; longer input is shed and the
     *  connection closed (resync after a flood is not worth it). */
    size_t maxRequestBytes = 64u << 20;
    /** Bounds applied to uploaded profiles. */
    ProfileLimits profileLimits;
    /** Allow the `failpoint` op (fault-injection; tests/bench only). */
    bool allowFailpoints = false;
    /** Period of the stats log line written to stderr (served/shed/
     *  queue depth/p99 latency); 0 = no periodic logging. */
    double statsIntervalMs = 0;
};

/** Monotonic counters exposed by the `stats` op (and for tests). A
 *  compact projection of the server's obs::Registry; see the snapshot-
 *  consistency note above. */
struct ServerStats {
    uint64_t connections = 0;  ///< accepted connections
    uint64_t requests = 0;     ///< request lines enqueued
    uint64_t served = 0;       ///< responses written for executed requests
    uint64_t shed = 0;         ///< load-shed (queue full / oversized line)
    uint64_t errors = 0;       ///< executed requests answered with ok=false
    uint64_t cancelled = 0;    ///< requests cancelled (disconnect/deadline)
    uint64_t degraded = 0;     ///< requests that returned partial results
    uint64_t evictions = 0;    ///< profile-LRU evictions
    uint64_t lruHits = 0;      ///< profile lookups served from the LRU
    uint64_t lruMisses = 0;    ///< profile lookups that found no entry
    uint64_t bytesIn = 0;      ///< bytes read off client sockets
    uint64_t bytesOut = 0;     ///< response bytes written
    double uptimeMs = 0;       ///< monotonic ms since Server::start()
};

class Server
{
  public:
    explicit Server(ServerOptions opts);
    ~Server(); ///< stop()s.

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind + listen + spawn the accept/executor threads. Fails with
     *  InvalidArgument (no socket path) or Internal (socket errors). */
    Status start();

    /** Stop serving: cancels in-flight work, closes every connection,
     *  joins all threads, unlinks the socket. Idempotent. */
    void stop();

    bool running() const;
    ServerStats stats() const;
    const ServerOptions &options() const;

    /** Full metrics registry renders (what the `metrics` op serves);
     *  usable without a connection (tests, in-process embedding). */
    std::string metricsJson() const;
    std::string metricsPrometheus() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * Minimal blocking JSON-lines client (tests, bench, tooling). Not
 * thread-safe; use one per thread.
 */
class Client
{
  public:
    Client() = default;
    ~Client();
    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;
    Client(Client &&other) noexcept
        : fd_(other.fd_), buf_(std::move(other.buf_))
    {
        other.fd_ = -1;
    }
    Client &
    operator=(Client &&other) noexcept
    {
        if (this != &other) {
            close();
            fd_ = other.fd_;
            buf_ = std::move(other.buf_);
            other.fd_ = -1;
        }
        return *this;
    }

    Status connect(const std::string &socketPath);

    /** Send one request line and block for one response line (the
     *  newline is appended/stripped here). */
    Status call(const std::string &request, std::string &response);

    /** Send without waiting — pair with recvLine() to pipeline. */
    Status sendLine(const std::string &request);
    Status recvLine(std::string &response);

    void close();
    bool connected() const { return fd_ >= 0; }

  private:
    int fd_ = -1;
    std::string buf_;
};

} // namespace mipp::serve

#endif // MIPP_SERVE_SERVER_HH
