/**
 * @file
 * Micro-operation intermediate representation.
 *
 * The whole framework — workload generators, the cycle-level reference
 * simulator, the micro-architecture independent profiler and the analytical
 * model — operates on streams of micro-operations (uops). This mirrors the
 * paper's CISC-to-uop decomposition step (thesis §3.2): x86 macro
 * instructions are split into 1..n uops before dispatch, and the interval
 * model counts uops, not instructions.
 */

#ifndef MIPP_TRACE_MICRO_OP_HH
#define MIPP_TRACE_MICRO_OP_HH

#include <cstdint>
#include <string_view>

namespace mipp {

/** Number of architectural integer registers (x86-64-like). */
constexpr int kNumIntRegs = 16;
/** Number of architectural floating-point/vector registers. */
constexpr int kNumFpRegs = 16;
/** Total architectural register count; ids [0, kNumIntRegs) are integer. */
constexpr int kNumRegs = kNumIntRegs + kNumFpRegs;
/** Sentinel register id meaning "no operand". */
constexpr int8_t kNoReg = -1;

/** Cache line size in bytes, fixed across the framework (thesis setup). */
constexpr uint32_t kLineSize = 64;

/** Functional classes of micro-operations. */
enum class UopType : uint8_t {
    IntAlu,   ///< integer add/sub/logic/shift
    IntMul,   ///< integer multiply
    IntDiv,   ///< integer divide (non-pipelined unit)
    FpAlu,    ///< floating-point add/sub/compare
    FpMul,    ///< floating-point multiply
    FpDiv,    ///< floating-point divide (non-pipelined unit)
    Load,     ///< memory read
    Store,    ///< memory write
    Branch,   ///< conditional/unconditional control transfer
    Move,     ///< register move / generic data shuffling
    NumTypes,
};

/** Number of distinct uop types. */
constexpr int kNumUopTypes = static_cast<int>(UopType::NumTypes);

/** Short printable name for a uop type. */
std::string_view uopTypeName(UopType t);

/** @return true for Load/Store. */
constexpr bool
isMemory(UopType t)
{
    return t == UopType::Load || t == UopType::Store;
}

/**
 * One dynamic micro-operation.
 *
 * Register operands encode true (RAW) data dependences: a uop depends on the
 * most recent earlier uop writing one of its source registers. WAR/WAW
 * hazards are assumed renamed away (thesis §2.1), so only RAW dependences
 * carry timing meaning.
 */
struct MicroOp {
    /** Static uop address. Uops from the same static program location share
     *  a pc across dynamic instances; used for per-static-load stride
     *  profiling, I-cache modeling and branch prediction. */
    uint64_t pc = 0;
    /** Effective byte address for Load/Store; 0 otherwise. */
    uint64_t addr = 0;
    UopType type = UopType::IntAlu;
    /** First uop of its macro-instruction (for uops/instruction stats). */
    bool instBoundary = true;
    /** Branch outcome; meaningful only for Branch uops. */
    bool taken = false;
    /** Source operand registers; kNoReg if absent. */
    int8_t src1 = kNoReg;
    int8_t src2 = kNoReg;
    /** Destination register; kNoReg if absent. */
    int8_t dst = kNoReg;

    /** @return the cache line index of the memory access. */
    uint64_t lineAddr() const { return addr / kLineSize; }
};

} // namespace mipp

#endif // MIPP_TRACE_MICRO_OP_HH
