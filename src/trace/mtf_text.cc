#include "trace/mtf_text.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace mipp {

namespace {

constexpr const char *kMtxtMagic = "mipp-mtxt";
constexpr int kMtxtVersion = 1;

struct TypeName {
    const char *name;
    UopType type;
};

/** One table, both directions; order matches UopType for the dump. */
constexpr TypeName kTypeNames[] = {
    {"ialu", UopType::IntAlu},   {"imul", UopType::IntMul},
    {"idiv", UopType::IntDiv},   {"fpalu", UopType::FpAlu},
    {"fpmul", UopType::FpMul},   {"fpdiv", UopType::FpDiv},
    {"load", UopType::Load},     {"store", UopType::Store},
    {"br", UopType::Branch},     {"mov", UopType::Move},
};

bool
typeFromName(const std::string &name, UopType &t)
{
    for (const TypeName &tn : kTypeNames) {
        if (name == tn.name) {
            t = tn.type;
            return true;
        }
    }
    return false;
}

Status
lineError(uint64_t line, const std::string &msg)
{
    return invalidArgument("mtxt line " + std::to_string(line) + ": " +
                           msg);
}

/** C-syntax u64 ("0x…" or decimal); false on anything else. */
bool
parseNumber(const std::string &tok, uint64_t &v)
{
    if (tok.empty())
        return false;
    char *end = nullptr;
    v = std::strtoull(tok.c_str(), &end, 0);
    return end == tok.c_str() + tok.size();
}

/** Register field value: 0..kNumRegs-1. */
bool
parseReg(const std::string &tok, int8_t &r)
{
    uint64_t v = 0;
    if (!parseNumber(tok, v) || v >= static_cast<uint64_t>(kNumRegs))
        return false;
    r = static_cast<int8_t>(v);
    return true;
}

} // namespace

std::string_view
mtxtTypeName(UopType t)
{
    size_t i = static_cast<size_t>(t);
    return i < std::size(kTypeNames) ? kTypeNames[i].name : "?";
}

Status
convertTextToMtf(std::istream &in, std::ostream &out, uint64_t &uopsOut)
{
    uopsOut = 0;
    std::string line;
    uint64_t lineNo = 0;

    // Header line: "mipp-mtxt 1".
    if (!std::getline(in, line))
        return invalidArgument("mtxt: empty input (no header line)");
    ++lineNo;
    {
        std::istringstream hs(line);
        std::string magic;
        int version = 0;
        if (!(hs >> magic) || magic != kMtxtMagic)
            return invalidArgument(
                "mtxt: not a micro-op text dump (expected '" +
                std::string(kMtxtMagic) + " 1' header)");
        if (!(hs >> version) || version != kMtxtVersion)
            return invalidArgument(
                "mtxt: unsupported version (expected " +
                std::to_string(kMtxtVersion) + ")");
    }

    MtfWriter w(out);
    while (std::getline(in, line)) {
        ++lineNo;
        std::istringstream ls(line);
        std::string tok;
        if (!(ls >> tok) || tok[0] == '#')
            continue; // blank or comment

        MicroOp op;
        op.instBoundary = false;
        if (!parseNumber(tok, op.pc))
            return lineError(lineNo, "bad pc '" + tok + "'");
        if (!(ls >> tok))
            return lineError(lineNo, "missing uop type");
        if (!typeFromName(tok, op.type))
            return lineError(lineNo, "unknown uop type '" + tok + "'");

        bool haveAddr = false;
        while (ls >> tok) {
            if (tok == "i") {
                op.instBoundary = true;
            } else if (tok == "t") {
                if (op.type != UopType::Branch)
                    return lineError(lineNo,
                                     "'t' flag on a non-branch uop");
                op.taken = true;
            } else if (tok[0] == '@') {
                if (!parseNumber(tok.substr(1), op.addr))
                    return lineError(lineNo,
                                     "bad address '" + tok + "'");
                haveAddr = true;
            } else if (tok.rfind("s1=", 0) == 0) {
                if (!parseReg(tok.substr(3), op.src1))
                    return lineError(lineNo,
                                     "bad register '" + tok + "'");
            } else if (tok.rfind("s2=", 0) == 0) {
                if (!parseReg(tok.substr(3), op.src2))
                    return lineError(lineNo,
                                     "bad register '" + tok + "'");
            } else if (tok.rfind("d=", 0) == 0) {
                if (!parseReg(tok.substr(2), op.dst))
                    return lineError(lineNo,
                                     "bad register '" + tok + "'");
            } else {
                return lineError(lineNo, "unknown field '" + tok + "'");
            }
        }
        if (isMemory(op.type) && !haveAddr)
            return lineError(lineNo,
                             "load/store uop is missing its '@addr'");
        if (!isMemory(op.type) && haveAddr)
            return lineError(lineNo, "'@addr' on a non-memory uop");
        w.append(op);
    }
    uopsOut = w.uopsWritten();
    return w.finish();
}

Status
convertTextFileToMtf(const std::string &textPath,
                     const std::string &mtfPath, uint64_t &uopsOut)
{
    std::ifstream in(textPath, std::ios::binary);
    if (!in)
        return invalidArgument("cannot open mtxt file: " + textPath);
    std::ofstream out(mtfPath, std::ios::binary);
    if (!out)
        return invalidArgument("cannot write mtf file: " + mtfPath);
    return convertTextToMtf(in, out, uopsOut);
}

Status
dumpMtfToText(const std::string &mtfPath, std::ostream &out,
              const MtfLimits &limits)
{
    MtfReader reader;
    Status st = MtfReader::open(mtfPath, reader, limits);
    if (!st.isOk())
        return st;

    out << kMtxtMagic << ' ' << kMtxtVersion << '\n';
    char buf[128];
    std::vector<MicroOp> chunk(4096);
    for (;;) {
        size_t n = reader.decode(chunk.data(), chunk.size());
        if (n == 0)
            break;
        for (size_t i = 0; i < n; ++i) {
            const MicroOp &op = chunk[i];
            int len = std::snprintf(
                buf, sizeof buf, "0x%llx %s",
                static_cast<unsigned long long>(op.pc),
                std::string(mtxtTypeName(op.type)).c_str());
            out.write(buf, len);
            if (isMemory(op.type)) {
                len = std::snprintf(
                    buf, sizeof buf, " @0x%llx",
                    static_cast<unsigned long long>(op.addr));
                out.write(buf, len);
            }
            if (op.src1 != kNoReg)
                out << " s1=" << static_cast<int>(op.src1);
            if (op.src2 != kNoReg)
                out << " s2=" << static_cast<int>(op.src2);
            if (op.dst != kNoReg)
                out << " d=" << static_cast<int>(op.dst);
            if (op.instBoundary)
                out << " i";
            if (op.taken)
                out << " t";
            out << '\n';
        }
    }
    if (!out)
        return internalError("mtxt dump: output stream failed");
    return Status::ok();
}

} // namespace mipp
