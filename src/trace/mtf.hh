/**
 * @file
 * The `.mtf` micro-op trace format — binary, versioned, checksummed.
 *
 * `.mtf` is the real-trace ingestion frontend (ROADMAP item 2): a
 * compact on-disk encoding of the exact MicroOp stream the whole
 * framework operates on, so any externally captured trace (a recorded
 * synthetic workload, a converted DynamoRIO/Intel-PT-style text dump)
 * can flow through `profileSource` / `profileSourceParallel` at bounded
 * memory and produce a Profile *bit-identical* to profiling the same
 * stream in memory.
 *
 * The byte-level layout is specified normatively in
 * `docs/trace-format.md`; the short version:
 *
 *     [header 24 B]  magic "mippmtf\0", version u32, headerBytes u32,
 *                    flags u64 (zero in v1)
 *     [records]      one variable-length record per uop: a control
 *                    byte (type + instBoundary/taken flags), a zigzag
 *                    LEB128 pc delta, three operand bytes, and for
 *                    Load/Store a zigzag LEB128 address delta
 *     [footer 20 B]  magic "mtfZ", uop count u64, FNV-1a-64 checksum
 *                    u64 over every preceding byte (header, records,
 *                    footer magic and count)
 *
 * Reading is hardened in the style of profile-format v2
 * (src/profiler/profile_io.hh): the file is size-capped before it is
 * mapped or read, magic/version/flags/checksum are validated before any
 * record is decoded, the footer uop count is cross-checked against the
 * record bytes actually present (a count inflated behind a recomputed
 * checksum is rejected before any allocation), and a full decode
 * validation pass runs at open so every later decode() is infallible.
 * Malformed bytes of any shape yield a structured Status — Corrupt /
 * InvalidArgument / ResourceExhausted — never UB (tests/test_mtf.cc
 * drives the malformed corpus under tests/corpus/ through this
 * promise).
 */

#ifndef MIPP_TRACE_MTF_HH
#define MIPP_TRACE_MTF_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace.hh"
#include "trace/trace_source.hh"
#include "util/status.hh"

namespace mipp {

/** Format version written by MtfWriter and accepted by MtfReader. */
constexpr uint32_t kMtfVersion = 1;
/** Fixed v1 header size in bytes. */
constexpr uint32_t kMtfHeaderBytes = 24;
/** Fixed footer size in bytes (magic + uop count + checksum). */
constexpr uint32_t kMtfFooterBytes = 20;
/** Smallest possible record: control + 1-byte pc delta + 3 operands. */
constexpr uint32_t kMtfMinRecordBytes = 5;

/**
 * Caps applied while opening untrusted `.mtf` bytes, mirroring
 * ProfileLimits. Defaults comfortably hold any trace this repo
 * records (~6 bytes/uop → 1 GiB ≈ 170M uops); a server can tighten
 * them per deployment.
 */
struct MtfLimits {
    size_t maxBytes = 1u << 30;     ///< whole-file size cap
    uint64_t maxUops = 1ull << 31;  ///< footer uop-count cap
};

/** Parsed header/footer facts of an opened `.mtf` stream. */
struct MtfInfo {
    uint32_t version = 0;
    uint64_t uopCount = 0;
    uint64_t fileBytes = 0;
    uint64_t recordBytes = 0;
    /** Mean encoded bytes per uop (fileBytes over uopCount). */
    double bytesPerUop() const
    {
        return uopCount ? static_cast<double>(fileBytes) / uopCount : 0.0;
    }
};

/**
 * Streaming `.mtf` encoder over any std::ostream. Bytes are emitted
 * strictly forward (no seeks), so the writer works on pipes: the uop
 * count lives in the footer, not the header. Usage:
 *
 *     MtfWriter w(os);
 *     for (const MicroOp &op : stream) w.append(op);
 *     Status st = w.finish();   // writes the footer, checks the stream
 */
class MtfWriter
{
  public:
    explicit MtfWriter(std::ostream &os);
    ~MtfWriter();

    MtfWriter(const MtfWriter &) = delete;
    MtfWriter &operator=(const MtfWriter &) = delete;

    /** Encode and buffer one uop. */
    void append(const MicroOp &op);

    /** Flush records and write the footer. Must be called exactly once;
     *  returns Internal if the underlying stream failed. */
    Status finish();

    uint64_t uopsWritten() const { return count_; }

  private:
    void put(uint8_t b);
    void putVarint(uint64_t v);
    void flushBuf();

    std::ostream &os_;
    std::vector<uint8_t> buf_;
    uint64_t fnv_;
    uint64_t count_ = 0;
    uint64_t prevPc_ = 0;
    uint64_t prevAddr_ = 0;
    bool finished_ = false;
};

/** Serialize a materialized trace to @p os as `.mtf`. */
Status writeMtf(const Trace &trace, std::ostream &os);

/** writeMtf to a file path. */
Status saveMtf(const Trace &trace, const std::string &path);

/**
 * Validated random-rewind decoder over an opened `.mtf` buffer.
 *
 * open()/parse() validate the complete frame — size caps, magic,
 * version, flags, checksum, footer count cross-checked against the
 * record bytes, and a full decode pass over every record — so decode()
 * on a successfully opened reader cannot fail. Files are mapped with
 * mmap where available (the buffer is paged by the OS, not copied to
 * the heap) and slurped through bounded reads otherwise.
 */
class MtfReader
{
  public:
    MtfReader();
    ~MtfReader();
    MtfReader(MtfReader &&) noexcept;
    MtfReader &operator=(MtfReader &&) noexcept;
    // Copies share the (immutable) mapped buffer and get an independent
    // decode cursor — cheap, and handy for multi-pass consumers.
    MtfReader(const MtfReader &);
    MtfReader &operator=(const MtfReader &);

    /** Open and fully validate @p path. On failure @p out is reset. */
    static Status open(const std::string &path, MtfReader &out,
                       const MtfLimits &limits = {});

    /** open() over an in-memory byte buffer (tests, socket uploads). */
    static Status parse(std::string bytes, MtfReader &out,
                        const MtfLimits &limits = {});

    const MtfInfo &info() const { return info_; }
    uint64_t uopCount() const { return info_.uopCount; }

    /**
     * Decode up to @p maxUops further uops into @p out. Returns the
     * number produced; 0 at end of stream. Never fails on an opened
     * reader (the open-time validation pass proved every record).
     */
    size_t decode(MicroOp *out, size_t maxUops);

    /** Rewind the decode cursor to the first record. */
    void rewind();

  private:
    struct Buffer;

    Status validate(const MtfLimits &limits);

    std::shared_ptr<const Buffer> buf_;
    MtfInfo info_;
    // Decode cursor.
    size_t pos_ = 0;       ///< byte offset of the next record
    uint64_t decoded_ = 0; ///< uops decoded so far
    uint64_t pc_ = 0;      ///< pc delta predictor state
    uint64_t addr_ = 0;    ///< memory-address delta predictor state
};

/**
 * TraceSource over an opened `.mtf` file: next() decodes the following
 * segment into an internal buffer (O(maxUops) resident uops; the file
 * itself stays mmap-ed/paged), so `profileSource` and
 * `profileSourceParallel` ingest any `.mtf` at bounded memory.
 */
class MtfTraceSource final : public TraceSource
{
  public:
    /** Open @p path fully validated; on success @p out is live. */
    static Status open(const std::string &path,
                       std::unique_ptr<MtfTraceSource> &out,
                       const MtfLimits &limits = {});

    explicit MtfTraceSource(MtfReader reader) : reader_(std::move(reader))
    {
    }

    uint64_t sizeHint() const override { return reader_.uopCount(); }

    TraceSegment next(size_t maxUops) override;

    void reset() override;

    const MtfInfo &info() const { return reader_.info(); }

  private:
    MtfReader reader_;
    std::vector<MicroOp> buf_;
    uint64_t base_ = 0;
};

/** Materialize a whole `.mtf` file as a Trace (simulator-side use:
 *  accuracy/calibrate harnesses need the instruction stream). */
Status loadMtfTrace(const std::string &path, Trace &out,
                    const MtfLimits &limits = {});

} // namespace mipp

#endif // MIPP_TRACE_MTF_HH
