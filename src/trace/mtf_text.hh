/**
 * @file
 * The `.mtxt` micro-op text dump format and its `.mtf` converter.
 *
 * Real trace capture tools (DynamoRIO clients, Intel-PT decoders, Pin
 * tools) most naturally emit one text line per instruction or micro-op.
 * `.mtxt` is this repo's documented interchange shape for such dumps —
 * trivially producible from any capture script — and
 * convertTextToMtf() turns it into the compact binary `.mtf` the
 * profiler ingests. The line grammar is specified normatively in
 * docs/trace-format.md §text dump; the short version:
 *
 *     mipp-mtxt 1
 *     # comment lines and blank lines are ignored
 *     <pc> <type> [@<addr>] [s1=<reg>] [s2=<reg>] [d=<reg>] [i] [t]
 *
 * with `<type>` one of ialu imul idiv fpalu fpmul fpdiv load store br
 * mov, numbers in C syntax (0x… hex or decimal), `@<addr>` required for
 * load/store and forbidden otherwise, `i` marking the first uop of its
 * macro-instruction and `t` a taken branch.
 *
 * Conversion streams line-by-line through an MtfWriter (bounded
 * memory); malformed lines yield a structured InvalidArgument naming
 * the line number. dumpMtfToText() is the exact inverse, so
 * dump → convert round-trips to a byte-identical `.mtf`.
 */

#ifndef MIPP_TRACE_MTF_TEXT_HH
#define MIPP_TRACE_MTF_TEXT_HH

#include <iosfwd>
#include <string>

#include "trace/mtf.hh"
#include "util/status.hh"

namespace mipp {

/** Short lowercase `.mtxt` name of a uop type ("ialu", "load", ...). */
std::string_view mtxtTypeName(UopType t);

/**
 * Convert a `.mtxt` text dump to `.mtf`. On success @p uopsOut holds
 * the number of uops written. Streams both sides; memory is O(line).
 */
Status convertTextToMtf(std::istream &in, std::ostream &out,
                        uint64_t &uopsOut);

/** convertTextToMtf over file paths. */
Status convertTextFileToMtf(const std::string &textPath,
                            const std::string &mtfPath,
                            uint64_t &uopsOut);

/** Write an opened `.mtf` back out as a `.mtxt` dump (exact inverse of
 *  convertTextToMtf, for inspection and converter round-trip tests). */
Status dumpMtfToText(const std::string &mtfPath, std::ostream &out,
                     const MtfLimits &limits = {});

} // namespace mipp

#endif // MIPP_TRACE_MTF_TEXT_HH
