/**
 * @file
 * Small deterministic RNG used throughout the framework.
 *
 * All experiments must be reproducible bit-for-bit, so every stochastic
 * component takes an explicit seed and uses this generator (xoshiro256**,
 * public-domain algorithm by Blackman & Vigna).
 */

#ifndef MIPP_TRACE_RNG_HH
#define MIPP_TRACE_RNG_HH

#include <cstdint>

namespace mipp {

/** Deterministic 64-bit PRNG (xoshiro256**). */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // SplitMix64 seeding to fill the state.
        uint64_t x = seed;
        for (auto &word : s_) {
            x += 0x9e3779b97f4a7c15ULL;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        auto rotl = [](uint64_t v, int k) {
            return (v << k) | (v >> (64 - k));
        };
        const uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * 0x1.0p-53;
    }

    /** Uniform integer in [0, n). @pre n > 0. */
    uint64_t
    below(uint64_t n)
    {
        return next() % n;
    }

    /** Uniform integer in [lo, hi]. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(below(hi - lo + 1));
    }

    /** Bernoulli draw with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Geometric draw: number of failures before first success with
     * success probability @p p, capped at @p cap.
     */
    int
    geometric(double p, int cap)
    {
        int k = 0;
        while (k < cap && !chance(p))
            ++k;
        return k;
    }

  private:
    uint64_t s_[4];
};

} // namespace mipp

#endif // MIPP_TRACE_RNG_HH
