/**
 * @file
 * Segment-cursor abstraction over uop streams.
 *
 * A TraceSource yields bounded, position-annotated segments of a uop
 * stream through the profiler's zero-copy span path. A fully
 * materialized Trace is one implementation; a streaming frontend (e.g.
 * a binary trace file reader) is another — the profiler consumes either
 * through the same interface at O(segment) memory.
 *
 * Segment contract (matches SegmentProfiler::feed): every segment
 * except the last must span a whole number of sampling windows so
 * micro-traces never straddle a segment boundary. Drivers guarantee
 * this by always requesting window-aligned segment sizes; a source
 * simply yields exactly @p maxUops uops until the stream's tail.
 */

#ifndef MIPP_TRACE_TRACE_SOURCE_HH
#define MIPP_TRACE_TRACE_SOURCE_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "trace/trace.hh"

namespace mipp {

/** One contiguous span of a uop stream. */
struct TraceSegment {
    const MicroOp *data = nullptr;
    size_t size = 0;
    /** Global index of data[0] in the stream. */
    uint64_t baseUop = 0;

    bool empty() const { return size == 0; }
};

/**
 * Sequential cursor over a uop stream. next() yields the following
 * segment of exactly @p maxUops uops (fewer only at the stream's tail;
 * empty at end-of-stream). The returned span stays valid until the next
 * call to next() or reset() — callers needing longer lifetimes copy.
 */
class TraceSource
{
  public:
    /** sizeHint() value when the stream length is unknown up front. */
    static constexpr uint64_t kUnknownSize = ~0ULL;

    virtual ~TraceSource() = default;

    /** Total uops in the stream, or kUnknownSize for a pure stream. */
    virtual uint64_t sizeHint() const { return kUnknownSize; }

    virtual TraceSegment next(size_t maxUops) = 0;

    /** Rewind to the start of the stream. */
    virtual void reset() = 0;
};

/** Zero-copy TraceSource over a materialized Trace. */
class MaterializedTraceSource final : public TraceSource
{
  public:
    explicit MaterializedTraceSource(const Trace &trace) : trace_(&trace) {}

    uint64_t sizeHint() const override { return trace_->size(); }

    TraceSegment
    next(size_t maxUops) override
    {
        size_t n = std::min(maxUops, trace_->size() - pos_);
        TraceSegment seg{trace_->data() + pos_, n, pos_};
        pos_ += n;
        return seg;
    }

    void reset() override { pos_ = 0; }

  private:
    const Trace *trace_;
    size_t pos_ = 0;
};

} // namespace mipp

#endif // MIPP_TRACE_TRACE_SOURCE_HH
