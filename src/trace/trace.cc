#include "trace/trace.hh"

namespace mipp {

std::string_view
uopTypeName(UopType t)
{
    switch (t) {
      case UopType::IntAlu: return "IntAlu";
      case UopType::IntMul: return "IntMul";
      case UopType::IntDiv: return "IntDiv";
      case UopType::FpAlu: return "FpAlu";
      case UopType::FpMul: return "FpMul";
      case UopType::FpDiv: return "FpDiv";
      case UopType::Load: return "Load";
      case UopType::Store: return "Store";
      case UopType::Branch: return "Branch";
      case UopType::Move: return "Move";
      default: return "?";
    }
}

size_t
Trace::numInstructions() const
{
    size_t n = 0;
    for (const auto &op : uops_)
        n += op.instBoundary ? 1 : 0;
    return n;
}

double
Trace::uopsPerInstruction() const
{
    size_t insts = numInstructions();
    return insts == 0 ? 0.0 : static_cast<double>(size()) / insts;
}

std::array<uint64_t, kNumUopTypes>
Trace::typeCounts() const
{
    std::array<uint64_t, kNumUopTypes> counts{};
    for (const auto &op : uops_)
        counts[static_cast<int>(op.type)]++;
    return counts;
}

double
Trace::typeFraction(UopType t) const
{
    if (uops_.empty())
        return 0.0;
    auto counts = typeCounts();
    return static_cast<double>(counts[static_cast<int>(t)]) / size();
}

} // namespace mipp
