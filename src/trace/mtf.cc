#include "trace/mtf.hh"

#include <cstring>
#include <fstream>
#include <ostream>

#if defined(__unix__) || defined(__APPLE__)
#define MIPP_MTF_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace mipp {

namespace {

constexpr char kHeaderMagic[8] = {'m', 'i', 'p', 'p', 'm', 't', 'f', 0};
constexpr char kFooterMagic[4] = {'m', 't', 'f', 'Z'};

/** Control-byte layout (docs/trace-format.md §record encoding). */
constexpr uint8_t kTypeMask = 0x0f;
constexpr uint8_t kInstBoundaryBit = 0x10;
constexpr uint8_t kTakenBit = 0x20;
constexpr uint8_t kReservedMask = 0xc0;

/** Largest canonical LEB128 length for a 64-bit value. */
constexpr int kMaxVarintBytes = 10;

uint64_t
fnv1a64(uint64_t h, const uint8_t *data, size_t n)
{
    for (size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= 1099511628211ull;
    }
    return h;
}

constexpr uint64_t kFnvInit = 14695981039346656037ull;

uint64_t
zigzag(int64_t v)
{
    return (static_cast<uint64_t>(v) << 1) ^
           static_cast<uint64_t>(v >> 63);
}

int64_t
unzigzag(uint64_t v)
{
    return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

void
putLe32(uint8_t *p, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<uint8_t>(v >> (8 * i));
}

void
putLe64(uint8_t *p, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint32_t
getLe32(const uint8_t *p)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(p[i]) << (8 * i);
    return v;
}

uint64_t
getLe64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(p[i]) << (8 * i);
    return v;
}

/**
 * Decode one LEB128 varint from [p, end). Returns bytes consumed, or 0
 * on truncation / an over-long (> 10 byte) encoding.
 */
size_t
getVarint(const uint8_t *p, const uint8_t *end, uint64_t &v)
{
    v = 0;
    int shift = 0;
    for (int i = 0; i < kMaxVarintBytes && p + i < end; ++i) {
        uint8_t b = p[i];
        v |= static_cast<uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80))
            return static_cast<size_t>(i) + 1;
        shift += 7;
    }
    return 0;
}

} // namespace

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

MtfWriter::MtfWriter(std::ostream &os) : os_(os), fnv_(kFnvInit)
{
    buf_.reserve(1 << 16);
    uint8_t hdr[kMtfHeaderBytes] = {};
    std::memcpy(hdr, kHeaderMagic, sizeof kHeaderMagic);
    putLe32(hdr + 8, kMtfVersion);
    putLe32(hdr + 12, kMtfHeaderBytes);
    putLe64(hdr + 16, 0); // flags, zero in v1
    buf_.insert(buf_.end(), hdr, hdr + sizeof hdr);
}

MtfWriter::~MtfWriter() = default;

void
MtfWriter::put(uint8_t b)
{
    buf_.push_back(b);
    if (buf_.size() >= (1u << 16))
        flushBuf();
}

void
MtfWriter::putVarint(uint64_t v)
{
    do {
        uint8_t b = v & 0x7f;
        v >>= 7;
        put(b | (v ? 0x80 : 0));
    } while (v);
}

void
MtfWriter::flushBuf()
{
    if (buf_.empty())
        return;
    fnv_ = fnv1a64(fnv_, buf_.data(), buf_.size());
    os_.write(reinterpret_cast<const char *>(buf_.data()),
              static_cast<std::streamsize>(buf_.size()));
    buf_.clear();
}

void
MtfWriter::append(const MicroOp &op)
{
    uint8_t ctl = static_cast<uint8_t>(op.type) & kTypeMask;
    if (op.instBoundary)
        ctl |= kInstBoundaryBit;
    if (op.taken)
        ctl |= kTakenBit;
    put(ctl);
    putVarint(zigzag(static_cast<int64_t>(op.pc - prevPc_)));
    prevPc_ = op.pc;
    // Operand bytes: kNoReg (-1) .. 31 mapped to 0 .. 32.
    put(static_cast<uint8_t>(op.src1 + 1));
    put(static_cast<uint8_t>(op.src2 + 1));
    put(static_cast<uint8_t>(op.dst + 1));
    if (isMemory(op.type)) {
        putVarint(zigzag(static_cast<int64_t>(op.addr - prevAddr_)));
        prevAddr_ = op.addr;
    }
    ++count_;
}

Status
MtfWriter::finish()
{
    if (finished_)
        return internalError("MtfWriter::finish called twice");
    finished_ = true;
    uint8_t tail[kMtfFooterBytes];
    std::memcpy(tail, kFooterMagic, sizeof kFooterMagic);
    putLe64(tail + 4, count_);
    // The checksum covers header + records + footer magic + count, so
    // tampering with the count invalidates it.
    buf_.insert(buf_.end(), tail, tail + 12);
    flushBuf();
    uint8_t sum[8];
    putLe64(sum, fnv_);
    os_.write(reinterpret_cast<const char *>(sum), 8);
    os_.flush();
    if (!os_)
        return internalError("mtf write: output stream failed");
    return Status::ok();
}

Status
writeMtf(const Trace &trace, std::ostream &os)
{
    MtfWriter w(os);
    for (const MicroOp &op : trace)
        w.append(op);
    return w.finish();
}

Status
saveMtf(const Trace &trace, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        return invalidArgument("cannot write mtf file: " + path);
    Status st = writeMtf(trace, os);
    if (st.isOk() && !os)
        st = internalError("mtf write: I/O failure on " + path);
    return st;
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/** Owns the raw bytes: either a heap copy or an mmap-ed region. */
struct MtfReader::Buffer {
    std::string owned;
    const uint8_t *data = nullptr;
    size_t size = 0;
#ifdef MIPP_MTF_HAVE_MMAP
    void *map = nullptr;
    size_t mapLen = 0;
#endif

    ~Buffer()
    {
#ifdef MIPP_MTF_HAVE_MMAP
        if (map)
            ::munmap(map, mapLen);
#endif
    }
};

MtfReader::MtfReader() = default;
MtfReader::~MtfReader() = default;
MtfReader::MtfReader(MtfReader &&) noexcept = default;
MtfReader &MtfReader::operator=(MtfReader &&) noexcept = default;
MtfReader::MtfReader(const MtfReader &) = default;
MtfReader &MtfReader::operator=(const MtfReader &) = default;

Status
MtfReader::validate(const MtfLimits &limits)
{
    const uint8_t *d = buf_->data;
    const size_t n = buf_->size;

    if (n > limits.maxBytes)
        return resourceExhausted(
            "mtf larger than the configured limit (" +
            std::to_string(limits.maxBytes) + " bytes)");
    if (n < kMtfHeaderBytes + kMtfFooterBytes)
        return corrupt("mtf too small to hold a header and footer (" +
                       std::to_string(n) + " bytes)");
    if (std::memcmp(d, kHeaderMagic, sizeof kHeaderMagic) != 0)
        return corrupt("not an mtf trace (bad magic)");

    uint32_t version = getLe32(d + 8);
    if (version != kMtfVersion)
        return invalidArgument("unsupported mtf version " +
                               std::to_string(version) + " (expected " +
                               std::to_string(kMtfVersion) + ")");
    uint32_t headerBytes = getLe32(d + 12);
    if (headerBytes != kMtfHeaderBytes)
        return corrupt("mtf v1 header size must be " +
                       std::to_string(kMtfHeaderBytes) + ", got " +
                       std::to_string(headerBytes));
    if (getLe64(d + 16) != 0)
        return corrupt("mtf v1 flags must be zero");

    const size_t footerAt = n - kMtfFooterBytes;
    if (std::memcmp(d + footerAt, kFooterMagic, sizeof kFooterMagic) != 0)
        return corrupt("mtf footer magic missing (truncated?)");
    uint64_t count = getLe64(d + footerAt + 4);
    uint64_t want = getLe64(d + footerAt + 12);
    if (fnv1a64(kFnvInit, d, footerAt + 12) != want)
        return corrupt("mtf checksum mismatch (bit rot or truncation)");

    // Bounds before any decode: the count must be plausible for the
    // record bytes present, so a count inflated behind a recomputed
    // checksum is rejected without touching the records.
    const size_t recordBytes = footerAt - kMtfHeaderBytes;
    if (count > limits.maxUops)
        return resourceExhausted(
            "mtf uop count " + std::to_string(count) +
            " exceeds limit " + std::to_string(limits.maxUops));
    if (count > recordBytes / kMtfMinRecordBytes)
        return corrupt("mtf uop count " + std::to_string(count) +
                       " not backed by record bytes (" +
                       std::to_string(recordBytes) + ")");

    // Full decode pass: prove every record so decode() is infallible.
    const uint8_t *p = d + kMtfHeaderBytes;
    const uint8_t *end = d + footerAt;
    for (uint64_t i = 0; i < count; ++i) {
        if (p >= end)
            return corrupt("mtf record " + std::to_string(i) +
                           " truncated");
        uint8_t ctl = *p++;
        if (ctl & kReservedMask)
            return corrupt("mtf record " + std::to_string(i) +
                           " has reserved control bits set");
        uint8_t type = ctl & kTypeMask;
        if (type >= static_cast<uint8_t>(UopType::NumTypes))
            return corrupt("mtf record " + std::to_string(i) +
                           " has invalid uop type " +
                           std::to_string(type));
        uint64_t delta = 0;
        size_t vn = getVarint(p, end, delta);
        if (vn == 0)
            return corrupt("mtf record " + std::to_string(i) +
                           " has a truncated or over-long pc delta");
        p += vn;
        if (end - p < 3)
            return corrupt("mtf record " + std::to_string(i) +
                           " truncated in operand bytes");
        for (int r = 0; r < 3; ++r) {
            if (p[r] > kNumRegs)
                return corrupt(
                    "mtf record " + std::to_string(i) +
                    " operand register " + std::to_string(p[r] - 1) +
                    " out of range");
        }
        p += 3;
        if (isMemory(static_cast<UopType>(type))) {
            vn = getVarint(p, end, delta);
            if (vn == 0)
                return corrupt(
                    "mtf record " + std::to_string(i) +
                    " has a truncated or over-long address delta");
            p += vn;
        }
    }
    if (p != end)
        return corrupt(
            "mtf has " + std::to_string(end - p) +
            " trailing record bytes beyond the footer uop count");

    info_.version = version;
    info_.uopCount = count;
    info_.fileBytes = n;
    info_.recordBytes = recordBytes;
    rewind();
    return Status::ok();
}

Status
MtfReader::parse(std::string bytes, MtfReader &out, const MtfLimits &limits)
{
    out = MtfReader();
    auto buf = std::make_shared<Buffer>();
    buf->owned = std::move(bytes);
    buf->data = reinterpret_cast<const uint8_t *>(buf->owned.data());
    buf->size = buf->owned.size();
    out.buf_ = std::move(buf);
    Status st = out.validate(limits);
    if (!st.isOk())
        out = MtfReader();
    return st;
}

Status
MtfReader::open(const std::string &path, MtfReader &out,
                const MtfLimits &limits)
{
    out = MtfReader();
    auto buf = std::make_shared<Buffer>();
#ifdef MIPP_MTF_HAVE_MMAP
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
        struct stat stt {};
        if (::fstat(fd, &stt) == 0 && S_ISREG(stt.st_mode)) {
            size_t len = static_cast<size_t>(stt.st_size);
            if (len > limits.maxBytes) {
                ::close(fd);
                return resourceExhausted(
                    "mtf larger than the configured limit (" +
                    std::to_string(limits.maxBytes) + " bytes): " +
                    path);
            }
            if (len > 0) {
                void *m = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE,
                                 fd, 0);
                if (m != MAP_FAILED) {
                    buf->map = m;
                    buf->mapLen = len;
                    buf->data = static_cast<const uint8_t *>(m);
                    buf->size = len;
                }
            } else {
                buf->data =
                    reinterpret_cast<const uint8_t *>(buf->owned.data());
                buf->size = 0;
            }
        }
        ::close(fd);
    } else {
        return invalidArgument("cannot open mtf file: " + path);
    }
#endif
    if (!buf->data) {
        // Portable fallback: bounded slurp.
        std::ifstream is(path, std::ios::binary);
        if (!is)
            return invalidArgument("cannot open mtf file: " + path);
        char chunk[1 << 16];
        while (is) {
            is.read(chunk, sizeof chunk);
            size_t got = static_cast<size_t>(is.gcount());
            if (got == 0)
                break;
            if (buf->owned.size() + got > limits.maxBytes)
                return resourceExhausted(
                    "mtf larger than the configured limit (" +
                    std::to_string(limits.maxBytes) + " bytes): " +
                    path);
            buf->owned.append(chunk, got);
        }
        buf->data = reinterpret_cast<const uint8_t *>(buf->owned.data());
        buf->size = buf->owned.size();
    }
    out.buf_ = std::move(buf);
    Status st = out.validate(limits);
    if (!st.isOk())
        out = MtfReader();
    return st;
}

void
MtfReader::rewind()
{
    pos_ = kMtfHeaderBytes;
    decoded_ = 0;
    pc_ = 0;
    addr_ = 0;
}

size_t
MtfReader::decode(MicroOp *out, size_t maxUops)
{
    const uint8_t *d = buf_->data;
    const uint8_t *end = d + buf_->size - kMtfFooterBytes;
    size_t produced = 0;
    const uint8_t *p = d + pos_;
    while (produced < maxUops && decoded_ < info_.uopCount) {
        // validate() proved every record; this walk cannot overrun.
        uint8_t ctl = *p++;
        MicroOp op;
        op.type = static_cast<UopType>(ctl & kTypeMask);
        op.instBoundary = (ctl & kInstBoundaryBit) != 0;
        op.taken = (ctl & kTakenBit) != 0;
        uint64_t delta = 0;
        p += getVarint(p, end, delta);
        pc_ += static_cast<uint64_t>(unzigzag(delta));
        op.pc = pc_;
        op.src1 = static_cast<int8_t>(static_cast<int>(p[0]) - 1);
        op.src2 = static_cast<int8_t>(static_cast<int>(p[1]) - 1);
        op.dst = static_cast<int8_t>(static_cast<int>(p[2]) - 1);
        p += 3;
        if (isMemory(op.type)) {
            p += getVarint(p, end, delta);
            addr_ += static_cast<uint64_t>(unzigzag(delta));
            op.addr = addr_;
        }
        out[produced++] = op;
        ++decoded_;
    }
    pos_ = static_cast<size_t>(p - d);
    return produced;
}

// ---------------------------------------------------------------------------
// TraceSource adapter + materialization
// ---------------------------------------------------------------------------

Status
MtfTraceSource::open(const std::string &path,
                     std::unique_ptr<MtfTraceSource> &out,
                     const MtfLimits &limits)
{
    MtfReader reader;
    Status st = MtfReader::open(path, reader, limits);
    if (!st.isOk())
        return st;
    out = std::make_unique<MtfTraceSource>(std::move(reader));
    return Status::ok();
}

TraceSegment
MtfTraceSource::next(size_t maxUops)
{
    buf_.resize(maxUops);
    size_t n = reader_.decode(buf_.data(), maxUops);
    TraceSegment seg{buf_.data(), n, base_};
    base_ += n;
    return seg;
}

void
MtfTraceSource::reset()
{
    reader_.rewind();
    base_ = 0;
}

Status
loadMtfTrace(const std::string &path, Trace &out, const MtfLimits &limits)
{
    MtfReader reader;
    Status st = MtfReader::open(path, reader, limits);
    if (!st.isOk())
        return st;
    std::vector<MicroOp> uops(reader.uopCount());
    size_t got = reader.decode(uops.data(), uops.size());
    if (got != uops.size())
        return internalError("mtf decode produced " +
                             std::to_string(got) + " of " +
                             std::to_string(uops.size()) + " uops");
    out = Trace(std::move(uops));
    return Status::ok();
}

} // namespace mipp
