/**
 * @file
 * Dynamic micro-op trace container and statistics helpers.
 */

#ifndef MIPP_TRACE_TRACE_HH
#define MIPP_TRACE_TRACE_HH

#include <array>
#include <cstddef>
#include <vector>

#include "trace/micro_op.hh"

namespace mipp {

/**
 * A materialized dynamic uop stream.
 *
 * Traces in this framework are short enough (a few million uops) to hold in
 * memory; both the reference simulator and the profiler iterate over them.
 */
class Trace
{
  public:
    Trace() = default;
    explicit Trace(std::vector<MicroOp> uops) : uops_(std::move(uops)) {}

    /** Append one uop. */
    void push(const MicroOp &op) { uops_.push_back(op); }

    size_t size() const { return uops_.size(); }
    bool empty() const { return uops_.empty(); }

    const MicroOp &operator[](size_t i) const { return uops_[i]; }

    /** Contiguous uop storage (zero-copy span access for the profiler). */
    const MicroOp *data() const { return uops_.data(); }

    auto begin() const { return uops_.begin(); }
    auto end() const { return uops_.end(); }

    /** Number of macro-instructions (uops flagged as instBoundary). */
    size_t numInstructions() const;

    /** Ratio of uops to macro-instructions (Fig 3.1 metric). */
    double uopsPerInstruction() const;

    /** Histogram of uop counts per UopType. */
    std::array<uint64_t, kNumUopTypes> typeCounts() const;

    /** Fraction of uops of a given type. */
    double typeFraction(UopType t) const;

    /** Reserve capacity up front. */
    void reserve(size_t n) { uops_.reserve(n); }

  private:
    std::vector<MicroOp> uops_;
};

/**
 * Sampling geometry for micro-trace profiling (thesis §5.1, Fig 5.1).
 *
 * A *window* is `windowSize` consecutive uops; the first `microTraceSize`
 * uops of each window form the *micro-trace* that is actually profiled; the
 * rest is fast-forwarded. `microTraceSize == windowSize` disables sampling.
 */
struct SamplingConfig {
    size_t microTraceSize = 1000;
    size_t windowSize = 100000;

    /** No-sampling configuration (profile everything). */
    static SamplingConfig full() { return {1, 1}; }

    bool sampled() const { return microTraceSize < windowSize; }
    double sampleRate() const
    {
        return static_cast<double>(microTraceSize) / windowSize;
    }

    /** @return true if uop index @p i falls inside a micro-trace. */
    bool inMicroTrace(size_t i) const
    {
        return (i % windowSize) < microTraceSize;
    }
};

} // namespace mipp

#endif // MIPP_TRACE_TRACE_HH
