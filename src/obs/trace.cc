#include "obs/trace.hh"

#include <chrono>
#include <cstdio>
#include <ostream>

namespace mipp::obs {

namespace detail {
std::atomic<SpanRecorder *> recorder{nullptr};
} // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point
traceEpoch()
{
    static const Clock::time_point epoch = Clock::now();
    return epoch;
}

// Force epoch initialization at static-init time so the first traced
// span does not pay for it (and so ts 0 means "process start").
const Clock::time_point kEpochInit = traceEpoch();

thread_local uint64_t tTraceId = 0;

uint32_t
threadTid()
{
    static std::atomic<uint32_t> next{1};
    thread_local uint32_t tid =
        next.fetch_add(1, std::memory_order_relaxed);
    return tid;
}

} // namespace

uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - traceEpoch())
            .count());
}

uint64_t
newTraceId()
{
    static std::atomic<uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

uint64_t
currentTraceId()
{
    return tTraceId;
}

TraceIdScope::TraceIdScope(uint64_t id) : prev_(tTraceId)
{
    tTraceId = id;
}

TraceIdScope::~TraceIdScope() { tTraceId = prev_; }

// ---- SpanRecorder ---------------------------------------------------

SpanRecorder::SpanRecorder(size_t capacity)
    : capacity_(capacity ? capacity : 1)
{
    ring_.resize(capacity_);
}

SpanRecorder::~SpanRecorder()
{
    SpanRecorder *self = this;
    detail::recorder.compare_exchange_strong(self, nullptr,
                                             std::memory_order_acq_rel);
}

void
SpanRecorder::record(const char *name, uint64_t traceId,
                     uint64_t startNs, uint64_t durNs)
{
    SpanEvent ev{name, traceId, startNs, durNs, threadTid()};
    std::lock_guard<std::mutex> lk(mu_);
    ring_[total_ % capacity_] = ev;
    ++total_;
}

std::vector<SpanEvent>
SpanRecorder::snapshot() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<SpanEvent> out;
    size_t n = total_ < capacity_ ? static_cast<size_t>(total_)
                                  : capacity_;
    out.reserve(n);
    size_t start = total_ < capacity_
                       ? 0
                       : static_cast<size_t>(total_ % capacity_);
    for (size_t i = 0; i < n; ++i)
        out.push_back(ring_[(start + i) % capacity_]);
    return out;
}

uint64_t
SpanRecorder::dropped() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return total_ > capacity_ ? total_ - capacity_ : 0;
}

void
SpanRecorder::writeChromeTrace(std::ostream &os) const
{
    std::vector<SpanEvent> events = snapshot();
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    char buf[256];
    bool first = true;
    for (const SpanEvent &ev : events) {
        if (!ev.name)
            continue;
        std::snprintf(
            buf, sizeof(buf),
            "%s{\"name\":\"%s\",\"cat\":\"mipp\",\"ph\":\"X\","
            "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u,"
            "\"args\":{\"trace_id\":%llu}}",
            first ? "" : ",", ev.name, ev.startNs / 1e3, ev.durNs / 1e3,
            ev.tid, static_cast<unsigned long long>(ev.traceId));
        os << buf;
        first = false;
    }
    os << "]}";
}

void
SpanRecorder::install()
{
    detail::recorder.store(this, std::memory_order_release);
}

void
SpanRecorder::uninstall()
{
    detail::recorder.store(nullptr, std::memory_order_release);
}

SpanRecorder *
SpanRecorder::current()
{
    return detail::recorder.load(std::memory_order_acquire);
}

void
recordSpan(const char *name, uint64_t traceId, uint64_t startNs,
           uint64_t durNs)
{
    SpanRecorder *rec =
        detail::recorder.load(std::memory_order_acquire);
    if (rec)
        rec->record(name, traceId, startNs, durNs);
}

} // namespace mipp::obs
