/**
 * @file
 * Process-internal metrics: lock-free counters, gauges and log-bucketed
 * latency histograms, registered by name (+ optional labels) in a
 * Registry that renders JSON and Prometheus text exposition.
 *
 * The repo's economics make a measurement layer non-optional: model
 * evaluation is ~0.4 µs/point while detailed simulation is ~10^5× that,
 * so "where did this request spend its time" is a question about
 * microseconds, and the instruments must cost nanoseconds. Every
 * mutation here is a relaxed atomic RMW on a pre-resolved handle — no
 * locks, no allocation, no branches on the hot path — so instrumented
 * code can record unconditionally. Registration (name lookup) takes a
 * mutex and is meant to happen once at setup; call sites keep the
 * returned reference, which is stable for the Registry's lifetime.
 *
 * LatencyHistogram reuses the profiler's LogHistogram idiom (power-of-
 * two octaves subdivided into sub-bins, within-bin interpolation for
 * quantiles) but with a fixed bin array of relaxed atomics so concurrent
 * recording needs no coordination. Snapshots are taken bin-by-bin with
 * relaxed loads: each bin is exact, cross-bin skew is bounded by what
 * was recorded during the snapshot — the standard monitoring contract
 * (see the snapshot-consistency note on Registry).
 *
 * A Registry is an instance, not a singleton: the serve daemon owns one
 * per Server so tests and repeated in-process servers start from zero,
 * while obs::globalRegistry() serves process-wide needs (CLI tools).
 */

#ifndef MIPP_OBS_METRICS_HH
#define MIPP_OBS_METRICS_HH

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mipp::obs {

/** Monotonic counter (use Gauge for values that go down). */
class Counter
{
  public:
    void
    add(uint64_t by = 1)
    {
        v_.fetch_add(by, std::memory_order_relaxed);
    }

    uint64_t value() const { return v_.load(std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> v_{0};
};

/** Instantaneous signed value (queue depth, resident entries). */
class Gauge
{
  public:
    void
    set(int64_t v)
    {
        v_.store(v, std::memory_order_relaxed);
    }

    void
    add(int64_t by)
    {
        v_.fetch_add(by, std::memory_order_relaxed);
    }

    int64_t value() const { return v_.load(std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> v_{0};
};

/**
 * Consistent read of a histogram: exact per-bin counts plus count/sum/
 * max, with quantile extraction. Also the merge currency — merging
 * snapshots (e.g. per-shard histograms) is just bin-wise addition.
 */
struct HistogramSnapshot {
    static constexpr int kSubBins = 4;
    /** Octaves 2..63, kSubBins each, plus the exact range [0, 4). */
    static constexpr size_t kBins =
        static_cast<size_t>(62) * kSubBins + kSubBins;

    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t max = 0;
    std::array<uint64_t, kBins> bins{};

    /** Bin for a value: exact below kSubBins, then kSubBins sub-bins
     *  per power-of-two octave (relative width 1/4 per bin). */
    static size_t
    binIndex(uint64_t v)
    {
        if (v < static_cast<uint64_t>(kSubBins))
            return static_cast<size_t>(v);
        int octave = std::bit_width(v) - 1; // >= 2
        return static_cast<size_t>(octave - 1) * kSubBins +
               static_cast<size_t>((v >> (octave - 2)) & (kSubBins - 1));
    }

    /** Smallest value mapping to bin @p b. */
    static uint64_t
    binLower(size_t b)
    {
        if (b < static_cast<size_t>(kSubBins))
            return b;
        int octave = static_cast<int>(b / kSubBins) + 1;
        uint64_t sub = b % kSubBins;
        return (uint64_t{1} << octave) | (sub << (octave - 2));
    }

    /** Exclusive upper bound of bin @p b (UINT64_MAX for the last). */
    static uint64_t
    binUpper(size_t b)
    {
        return b + 1 < kBins ? binLower(b + 1) : UINT64_MAX;
    }

    /** Quantile q in [0, 1] with uniform within-bin interpolation,
     *  clamped to the observed max. 0 when empty. */
    double quantile(double q) const;

    double
    mean() const
    {
        return count ? static_cast<double>(sum) / count : 0.0;
    }

    void merge(const HistogramSnapshot &other);
};

/**
 * Log-bucketed histogram with relaxed-atomic bins. Values are raw
 * uint64; the convention throughout this repo is nanoseconds (metric
 * names carry a _ns suffix). record() is wait-free: three relaxed RMWs
 * plus a CAS loop on max that almost always exits first try.
 */
class LatencyHistogram
{
  public:
    void
    record(uint64_t v)
    {
        bins_[HistogramSnapshot::binIndex(v)].fetch_add(
            1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(v, std::memory_order_relaxed);
        uint64_t prev = max_.load(std::memory_order_relaxed);
        while (v > prev && !max_.compare_exchange_weak(
                               prev, v, std::memory_order_relaxed)) {
        }
    }

    HistogramSnapshot snapshot() const;

    uint64_t
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

  private:
    std::array<std::atomic<uint64_t>, HistogramSnapshot::kBins> bins_{};
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_{0};
    std::atomic<uint64_t> max_{0};
};

/**
 * Named metric registry.
 *
 * counter()/gauge()/histogram() find-or-create by (name, labels) and
 * return a reference that stays valid for the Registry's lifetime;
 * resolve handles once, record through them forever. `labels` is a
 * pre-rendered Prometheus label body without braces (e.g.
 * `op="sweep"`), empty for none.
 *
 * Snapshot consistency: renders and snapshots are *per-metric exact,
 * cross-metric relaxed*. Every counter/bin read is an atomic load of a
 * monotonic value, but no global lock stops the world, so two related
 * metrics (say requests_total and served_total) may disagree by
 * whatever was in flight during the render. Monotonic metrics never
 * decrease between renders; rate math against uptimeMs() is the
 * intended consumption.
 */
class Registry
{
  public:
    Registry();

    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    Counter &counter(std::string_view name, std::string_view labels = {});
    Gauge &gauge(std::string_view name, std::string_view labels = {});
    LatencyHistogram &histogram(std::string_view name,
                                std::string_view labels = {});

    /** Milliseconds since construction (monotonic clock). */
    double uptimeMs() const;

    /** JSON array of metric objects:
     *  {"name":..,"labels":..,"type":"counter","value":N} and for
     *  histograms count/sum/max/mean/p50/p90/p99. */
    std::string renderJsonArray() const;

    /** Full JSON document: {"uptime_ms":..,"metrics":[...]}. */
    std::string renderJson() const;

    /** Prometheus text exposition (TYPE lines, cumulative buckets for
     *  histograms, only non-empty buckets plus +Inf). */
    std::string renderPrometheus() const;

  private:
    enum class Kind : uint8_t { Counter, Gauge, Histogram };

    struct Entry {
        std::string name;
        std::string labels;
        Kind kind;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<LatencyHistogram> histogram;
    };

    Entry &findOrCreate(std::string_view name, std::string_view labels,
                        Kind kind);

    mutable std::mutex mu_;
    // Deque-like stability is unnecessary: entries hold the metric via
    // unique_ptr, so vector growth never moves the metric itself.
    std::vector<Entry> entries_;
    std::chrono::steady_clock::time_point epoch_;
};

/** Process-wide registry for code without a narrower scope (CLI). */
Registry &globalRegistry();

} // namespace mipp::obs

#endif // MIPP_OBS_METRICS_HH
