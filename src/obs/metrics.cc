#include "obs/metrics.hh"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace mipp::obs {

namespace {

std::string
num(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return buf;
}

std::string
unum(uint64_t v)
{
    return std::to_string(v);
}

} // namespace

// ---- HistogramSnapshot ----------------------------------------------

double
HistogramSnapshot::quantile(double q) const
{
    if (count == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    double target = q * static_cast<double>(count);
    uint64_t cum = 0;
    for (size_t b = 0; b < kBins; ++b) {
        if (bins[b] == 0)
            continue;
        double inBin = static_cast<double>(bins[b]);
        if (static_cast<double>(cum) + inBin >= target) {
            double frac = (target - static_cast<double>(cum)) / inBin;
            double lo = static_cast<double>(binLower(b));
            // The top bin of the observed range is clipped at max: the
            // p99 of a histogram whose largest value is 7 must not read
            // as "somewhere below 8".
            double hi = std::min(static_cast<double>(binUpper(b)),
                                 static_cast<double>(max) + 1);
            hi = std::max(hi, lo + 1);
            return std::min(lo + frac * (hi - lo),
                            static_cast<double>(max));
        }
        cum += bins[b];
    }
    return static_cast<double>(max);
}

void
HistogramSnapshot::merge(const HistogramSnapshot &other)
{
    count += other.count;
    sum += other.sum;
    max = std::max(max, other.max);
    for (size_t b = 0; b < kBins; ++b)
        bins[b] += other.bins[b];
}

// ---- LatencyHistogram -----------------------------------------------

HistogramSnapshot
LatencyHistogram::snapshot() const
{
    HistogramSnapshot s;
    // Bin-by-bin relaxed loads; recompute count from the bins so the
    // snapshot is internally consistent (count == sum of bins) even if
    // recordings land mid-snapshot. sum/max are advisory aggregates.
    uint64_t total = 0;
    for (size_t b = 0; b < HistogramSnapshot::kBins; ++b) {
        s.bins[b] = bins_[b].load(std::memory_order_relaxed);
        total += s.bins[b];
    }
    s.count = total;
    s.sum = sum_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    return s;
}

// ---- Registry -------------------------------------------------------

Registry::Registry() : epoch_(std::chrono::steady_clock::now()) {}

double
Registry::uptimeMs() const
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

Registry::Entry &
Registry::findOrCreate(std::string_view name, std::string_view labels,
                       Kind kind)
{
    std::lock_guard<std::mutex> lk(mu_);
    for (Entry &e : entries_)
        if (e.name == name && e.labels == labels) {
            if (e.kind != kind)
                throw std::logic_error(
                    "obs: metric '" + std::string(name) +
                    "' re-registered with a different kind");
            return e;
        }
    Entry e;
    e.name = std::string(name);
    e.labels = std::string(labels);
    e.kind = kind;
    switch (kind) {
    case Kind::Counter:
        e.counter = std::make_unique<Counter>();
        break;
    case Kind::Gauge:
        e.gauge = std::make_unique<Gauge>();
        break;
    case Kind::Histogram:
        e.histogram = std::make_unique<LatencyHistogram>();
        break;
    }
    entries_.push_back(std::move(e));
    return entries_.back();
}

Counter &
Registry::counter(std::string_view name, std::string_view labels)
{
    return *findOrCreate(name, labels, Kind::Counter).counter;
}

Gauge &
Registry::gauge(std::string_view name, std::string_view labels)
{
    return *findOrCreate(name, labels, Kind::Gauge).gauge;
}

LatencyHistogram &
Registry::histogram(std::string_view name, std::string_view labels)
{
    return *findOrCreate(name, labels, Kind::Histogram).histogram;
}

std::string
Registry::renderJsonArray() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::string out = "[";
    bool first = true;
    for (const Entry &e : entries_) {
        if (!first)
            out += ',';
        first = false;
        out += "{\"name\":\"" + e.name + "\"";
        if (!e.labels.empty()) {
            // Labels are pre-rendered Prometheus bodies (key="value");
            // escape the embedded quotes for JSON.
            out += ",\"labels\":\"";
            for (char c : e.labels) {
                if (c == '"' || c == '\\')
                    out += '\\';
                out += c;
            }
            out += '"';
        }
        switch (e.kind) {
        case Kind::Counter:
            out += ",\"type\":\"counter\",\"value\":" +
                   unum(e.counter->value());
            break;
        case Kind::Gauge:
            out += ",\"type\":\"gauge\",\"value\":" +
                   std::to_string(e.gauge->value());
            break;
        case Kind::Histogram: {
            HistogramSnapshot s = e.histogram->snapshot();
            out += ",\"type\":\"histogram\",\"count\":" + unum(s.count) +
                   ",\"sum\":" + unum(s.sum) + ",\"max\":" + unum(s.max) +
                   ",\"mean\":" + num(s.mean()) +
                   ",\"p50\":" + num(s.quantile(0.50)) +
                   ",\"p90\":" + num(s.quantile(0.90)) +
                   ",\"p99\":" + num(s.quantile(0.99));
            break;
        }
        }
        out += '}';
    }
    out += ']';
    return out;
}

std::string
Registry::renderJson() const
{
    return "{\"uptime_ms\":" + num(uptimeMs()) +
           ",\"metrics\":" + renderJsonArray() + "}";
}

std::string
Registry::renderPrometheus() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::string out;
    std::string lastTyped; // one TYPE line per metric family
    auto typeLine = [&](const std::string &name, const char *type) {
        if (name != lastTyped) {
            out += "# TYPE " + name + " " + type + "\n";
            lastTyped = name;
        }
    };
    auto labeled = [](const std::string &name, const std::string &labels,
                      const std::string &extra = {}) {
        std::string s = name;
        if (!labels.empty() || !extra.empty()) {
            s += '{';
            s += labels;
            if (!labels.empty() && !extra.empty())
                s += ',';
            s += extra;
            s += '}';
        }
        return s;
    };
    for (const Entry &e : entries_) {
        switch (e.kind) {
        case Kind::Counter:
            typeLine(e.name, "counter");
            out += labeled(e.name, e.labels) + " " +
                   unum(e.counter->value()) + "\n";
            break;
        case Kind::Gauge:
            typeLine(e.name, "gauge");
            out += labeled(e.name, e.labels) + " " +
                   std::to_string(e.gauge->value()) + "\n";
            break;
        case Kind::Histogram: {
            typeLine(e.name, "histogram");
            HistogramSnapshot s = e.histogram->snapshot();
            uint64_t cum = 0;
            for (size_t b = 0; b < HistogramSnapshot::kBins; ++b) {
                if (s.bins[b] == 0)
                    continue;
                cum += s.bins[b];
                out += labeled(e.name + "_bucket", e.labels,
                               "le=\"" +
                                   unum(HistogramSnapshot::binUpper(b)) +
                                   "\"") +
                       " " + unum(cum) + "\n";
            }
            out += labeled(e.name + "_bucket", e.labels,
                           "le=\"+Inf\"") +
                   " " + unum(s.count) + "\n";
            out += labeled(e.name + "_sum", e.labels) + " " +
                   unum(s.sum) + "\n";
            out += labeled(e.name + "_count", e.labels) + " " +
                   unum(s.count) + "\n";
            break;
        }
        }
    }
    return out;
}

Registry &
globalRegistry()
{
    static Registry r;
    return r;
}

} // namespace mipp::obs
