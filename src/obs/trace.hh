/**
 * @file
 * Scoped-span tracing: request-scoped wall-clock attribution across the
 * profiler → model → DSE → serve pipeline, exportable as Chrome
 * trace-event JSON (load the file at chrome://tracing or
 * https://ui.perfetto.dev).
 *
 * The instrument is a RAII timer dropped at a named site:
 *
 *     void Impl::execute(const Request &req) {
 *         MIPP_SPAN("serve.exec");
 *         ...
 *     }
 *
 * When no SpanRecorder is installed (every process that is not being
 * traced), a span costs one relaxed atomic load and nothing else — no
 * clock read, no allocation — so spans stay compiled into release
 * builds and hot paths alike. Installing a recorder (CLI `--trace-json
 * out.json`, or SpanRecorder::install() in tests) turns every site on
 * globally: each span records {site name, trace id, start, duration,
 * thread} into a fixed-capacity ring buffer; when the ring wraps, the
 * oldest spans are overwritten and counted as dropped — tracing is
 * bounded-memory by construction and never blocks the traced code
 * beyond a short mutex hold.
 *
 * Trace ids tie spans to requests: the serve executor (or any other
 * entry point) allocates an id with newTraceId() and pins it to the
 * current thread with a TraceIdScope; every span on that thread while
 * the scope is live carries the id, so one request's parse → queue wait
 * → eval → respond chain is selectable in the exported trace. Work
 * handed to pool threads records under trace id 0 (attribution stops at
 * the handoff); the pool spans still appear on their own thread tracks.
 *
 * Span names are expected to be string literals (the recorder stores
 * the pointer, not a copy).
 */

#ifndef MIPP_OBS_TRACE_HH
#define MIPP_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hh"

namespace mipp::obs {

/** One completed span (times in ns since the process trace epoch). */
struct SpanEvent {
    const char *name = nullptr;
    uint64_t traceId = 0;
    uint64_t startNs = 0;
    uint64_t durNs = 0;
    uint32_t tid = 0;
};

/** Nanoseconds since the process-wide trace epoch (steady clock). */
uint64_t nowNs();

/** Allocate a fresh nonzero trace id (process-wide). */
uint64_t newTraceId();

/** The current thread's trace id (0 outside any TraceIdScope). */
uint64_t currentTraceId();

/** Pins a trace id to the current thread for the scope's lifetime;
 *  restores the previous id on exit, so scopes nest. */
class TraceIdScope
{
  public:
    explicit TraceIdScope(uint64_t id);
    ~TraceIdScope();
    TraceIdScope(const TraceIdScope &) = delete;
    TraceIdScope &operator=(const TraceIdScope &) = delete;

  private:
    uint64_t prev_;
};

/** Fixed-capacity ring of completed spans. Thread-safe. */
class SpanRecorder
{
  public:
    explicit SpanRecorder(size_t capacity = 1 << 16);
    ~SpanRecorder(); ///< uninstalls itself if installed

    SpanRecorder(const SpanRecorder &) = delete;
    SpanRecorder &operator=(const SpanRecorder &) = delete;

    void record(const char *name, uint64_t traceId, uint64_t startNs,
                uint64_t durNs);

    /** Retained spans, oldest first. */
    std::vector<SpanEvent> snapshot() const;

    /** Spans overwritten after the ring wrapped. */
    uint64_t dropped() const;

    /** Chrome trace-event JSON ("X" complete events, ts/dur in µs,
     *  trace id in args). Safe to call while recording continues; the
     *  export is a snapshot. */
    void writeChromeTrace(std::ostream &os) const;

    /** Make this the process-wide recorder every span reports to.
     *  Replaces any previously installed recorder. */
    void install();

    /** Detach the process-wide recorder (spans go back to the free
     *  disabled path). The recorder itself keeps its contents. */
    static void uninstall();

    /** Currently installed recorder, or nullptr. */
    static SpanRecorder *current();

  private:
    mutable std::mutex mu_;
    std::vector<SpanEvent> ring_;
    size_t capacity_;
    uint64_t total_ = 0; // spans ever recorded; head = total_ % capacity_
};

namespace detail {
extern std::atomic<SpanRecorder *> recorder;
} // namespace detail

/**
 * RAII span. With a recorder installed it reports to the ring on
 * destruction; independently, an optional LatencyHistogram receives the
 * duration (ns) even when tracing is off, which is how the serve
 * daemon's per-op latency histograms stay populated in production.
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(const char *name,
                        LatencyHistogram *hist = nullptr)
        : rec_(detail::recorder.load(std::memory_order_acquire)),
          hist_(hist)
    {
        if (rec_ || hist_) {
            name_ = name;
            startNs_ = nowNs();
        }
    }

    ~ScopedSpan()
    {
        if (!rec_ && !hist_)
            return;
        uint64_t dur = nowNs() - startNs_;
        if (hist_)
            hist_->record(dur);
        if (rec_)
            rec_->record(name_, currentTraceId(), startNs_, dur);
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    SpanRecorder *rec_;
    LatencyHistogram *hist_;
    const char *name_ = nullptr;
    uint64_t startNs_ = 0;
};

/** Report an externally timed interval (cross-thread spans like queue
 *  wait, where RAII cannot straddle the handoff). No-op when tracing
 *  is off. */
void recordSpan(const char *name, uint64_t traceId, uint64_t startNs,
                uint64_t durNs);

} // namespace mipp::obs

#define MIPP_OBS_CAT2(a, b) a##b
#define MIPP_OBS_CAT(a, b) MIPP_OBS_CAT2(a, b)

/** Time the enclosing scope under the given site name (optionally also
 *  into a LatencyHistogram: MIPP_SPAN("serve.eval", &hist)). */
#define MIPP_SPAN(...)                                                    \
    mipp::obs::ScopedSpan MIPP_OBS_CAT(mippObsSpan_,                      \
                                       __COUNTER__)(__VA_ARGS__)

#endif // MIPP_OBS_TRACE_HH
