/**
 * @file
 * Log-binned histogram for reuse distances and other heavy-tailed counts.
 *
 * Distances up to kExactMax are kept exactly; beyond that, eight sub-bins
 * per power of two keep relative binning error below ~9 % while bounding
 * memory, the standard trick for reuse-distance profiles (thesis §4.2).
 */

#ifndef MIPP_PROFILER_HISTOGRAM_HH
#define MIPP_PROFILER_HISTOGRAM_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mipp {

/** Log-binned histogram over uint64 values plus an "infinite" bucket. */
class LogHistogram
{
  public:
    static constexpr uint64_t kExactMax = 128;
    static constexpr int kSubBins = 8;

    /** Map a value to its bin index. */
    static size_t
    binIndex(uint64_t v)
    {
        if (v < static_cast<uint64_t>(kExactMax))
            return static_cast<size_t>(v);
        // Octave = floor(log2(v / kExactMax)); position within the octave
        // subdivided into kSubBins.
        int octave = std::bit_width(v / kExactMax) - 1;
        uint64_t lo = kExactMax << octave;
        uint64_t width = lo; // octave spans [lo, 2*lo)
        size_t sub = static_cast<size_t>((v - lo) * kSubBins / width);
        return kExactMax + static_cast<size_t>(octave) * kSubBins + sub;
    }

    /** Smallest value mapping to bin @p b. */
    static uint64_t
    binLower(size_t b)
    {
        if (b < static_cast<size_t>(kExactMax))
            return b;
        size_t rel = b - kExactMax;
        int octave = static_cast<int>(rel / kSubBins);
        size_t sub = rel % kSubBins;
        uint64_t lo = kExactMax << octave;
        return lo + sub * (lo / kSubBins);
    }

    /** Representative (midpoint) value for bin @p b. */
    static uint64_t
    binMid(size_t b)
    {
        if (b < static_cast<size_t>(kExactMax))
            return b;
        uint64_t lo = binLower(b);
        uint64_t next = binLower(b + 1);
        return lo + (next - lo) / 2;
    }

    void
    add(uint64_t v, uint64_t weight = 1)
    {
        size_t b = binIndex(v);
        if (bins_.size() <= b)
            bins_.resize(b + 1, 0);
        bins_[b] += weight;
        total_ += weight;
    }

    /** Record a value with no finite reuse (cold / never reused). */
    void addInfinite(uint64_t weight = 1) { infinite_ += weight; }

    uint64_t total() const { return total_ + infinite_; }
    uint64_t finiteTotal() const { return total_; }
    uint64_t infiniteCount() const { return infinite_; }
    size_t numBins() const { return bins_.size(); }
    uint64_t binCount(size_t b) const
    {
        return b < bins_.size() ? bins_[b] : 0;
    }

    /** Number of samples with value >= v (including the infinite bucket). */
    uint64_t
    countAtLeast(uint64_t v) const
    {
        size_t b0 = binIndex(v);
        uint64_t n = infinite_;
        for (size_t b = b0; b < bins_.size(); ++b)
            n += bins_[b];
        return n;
    }

    /** Merge another histogram into this one. */
    void
    merge(const LogHistogram &other)
    {
        if (bins_.size() < other.bins_.size())
            bins_.resize(other.bins_.size(), 0);
        for (size_t b = 0; b < other.bins_.size(); ++b)
            bins_[b] += other.bins_[b];
        total_ += other.total_;
        infinite_ += other.infinite_;
    }

    /** Mean of the finite samples. */
    double
    finiteMean() const
    {
        if (total_ == 0)
            return 0.0;
        double sum = 0;
        for (size_t b = 0; b < bins_.size(); ++b)
            sum += static_cast<double>(bins_[b]) * binMid(b);
        return sum / total_;
    }

  private:
    std::vector<uint64_t> bins_;
    uint64_t total_ = 0;
    uint64_t infinite_ = 0;
};

} // namespace mipp

#endif // MIPP_PROFILER_HISTOGRAM_HH
