/**
 * @file
 * Log-binned histogram for reuse distances and other heavy-tailed counts.
 *
 * Distances up to kExactMax are kept exactly; beyond that, eight sub-bins
 * per power of two keep relative binning error below ~9 % while bounding
 * memory, the standard trick for reuse-distance profiles (thesis §4.2).
 */

#ifndef MIPP_PROFILER_HISTOGRAM_HH
#define MIPP_PROFILER_HISTOGRAM_HH

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace mipp {

/** Log-binned histogram over uint64 values plus an "infinite" bucket. */
class LogHistogram
{
  public:
    static constexpr uint64_t kExactMax = 128;
    static constexpr int kSubBins = 8;

    LogHistogram() = default;

    // Copies and moves transfer the counts but not the derived suffix-sum
    // cache (it is rebuilt on demand); spelled out because the cache
    // validity flag is atomic. Moves leave the source empty AND with its
    // suffix cache invalidated: bins_ is emptied by the vector move, so a
    // stale total_/infinite_/suffix_ would make the moved-from histogram
    // silently report counts it no longer holds.
    LogHistogram(const LogHistogram &o)
        : bins_(o.bins_), total_(o.total_), infinite_(o.infinite_)
    {
    }

    LogHistogram(LogHistogram &&o) noexcept
        : bins_(std::move(o.bins_)), total_(o.total_),
          infinite_(o.infinite_)
    {
        o.total_ = 0;
        o.infinite_ = 0;
        o.invalidateSuffix();
    }

    LogHistogram &
    operator=(const LogHistogram &o)
    {
        bins_ = o.bins_;
        total_ = o.total_;
        infinite_ = o.infinite_;
        invalidateSuffix();
        return *this;
    }

    LogHistogram &
    operator=(LogHistogram &&o) noexcept
    {
        if (this == &o)
            return *this;
        bins_ = std::move(o.bins_);
        total_ = o.total_;
        infinite_ = o.infinite_;
        invalidateSuffix();
        o.total_ = 0;
        o.infinite_ = 0;
        o.invalidateSuffix();
        return *this;
    }

    /** Map a value to its bin index. */
    static size_t
    binIndex(uint64_t v)
    {
        if (v < static_cast<uint64_t>(kExactMax))
            return static_cast<size_t>(v);
        // Octave = floor(log2(v / kExactMax)); position within the octave
        // subdivided into kSubBins. The octave width is a power of two,
        // so the sub-bin is a shift, not a division (this runs three
        // times per profiled memory access).
        int octave = std::bit_width(v / kExactMax) - 1;
        uint64_t lo = kExactMax << octave;
        size_t sub = static_cast<size_t>((v - lo) >> (octave + 4));
        return kExactMax + static_cast<size_t>(octave) * kSubBins + sub;
    }

    /** Smallest value mapping to bin @p b. */
    static uint64_t
    binLower(size_t b)
    {
        if (b < static_cast<size_t>(kExactMax))
            return b;
        size_t rel = b - kExactMax;
        int octave = static_cast<int>(rel / kSubBins);
        size_t sub = rel % kSubBins;
        uint64_t lo = kExactMax << octave;
        return lo + sub * (lo / kSubBins);
    }

    /** Representative (midpoint) value for bin @p b. */
    static uint64_t
    binMid(size_t b)
    {
        if (b < static_cast<size_t>(kExactMax))
            return b;
        uint64_t lo = binLower(b);
        uint64_t next = binLower(b + 1);
        return lo + (next - lo) / 2;
    }

    void
    add(uint64_t v, uint64_t weight = 1)
    {
        size_t b = binIndex(v);
        if (bins_.size() <= b)
            bins_.resize(b + 1, 0);
        bins_[b] += weight;
        total_ += weight;
        invalidateSuffix();
    }

    /**
     * Add @p weight directly at bin @p b (a value from binIndex). Lets
     * callers recording the same value into several histograms pay for
     * the binning once.
     */
    void
    addAtBin(size_t b, uint64_t weight = 1)
    {
        if (bins_.size() <= b)
            bins_.resize(b + 1, 0);
        bins_[b] += weight;
        total_ += weight;
        invalidateSuffix();
    }

    /** Record a value with no finite reuse (cold / never reused). */
    void addInfinite(uint64_t weight = 1) { infinite_ += weight; }

    uint64_t total() const { return total_ + infinite_; }
    uint64_t finiteTotal() const { return total_; }
    uint64_t infiniteCount() const { return infinite_; }
    size_t numBins() const { return bins_.size(); }
    uint64_t binCount(size_t b) const
    {
        return b < bins_.size() ? bins_[b] : 0;
    }

    /**
     * Expected number of samples with value >= v (including the infinite
     * bucket). O(1) via a cached suffix-sum table. When v falls inside a
     * log bin, only the bin mass at or beyond v counts, assuming the mass
     * is uniform within the bin — the same within-bin interpolation as
     * StatStack::stackDistance. On the exact range (v < kExactMax) the
     * count is exact.
     *
     * Concurrent queries are safe on a histogram that is no longer being
     * mutated (e.g. a finished Profile shared across DSE sweep threads);
     * mutation requires external synchronization, as with any container.
     */
    double
    countAtLeast(uint64_t v) const
    {
        const std::vector<uint64_t> &suf = suffix();
        size_t b0 = binIndex(v);
        if (b0 >= bins_.size())
            return static_cast<double>(infinite_);
        uint64_t lo = binLower(b0);
        uint64_t hi = binLower(b0 + 1);
        double frac = static_cast<double>(hi - v) /
                      static_cast<double>(hi - lo);
        return static_cast<double>(infinite_ + suf[b0 + 1]) +
               frac * static_cast<double>(bins_[b0]);
    }

    /** Merge another histogram into this one. */
    void
    merge(const LogHistogram &other)
    {
        if (bins_.size() < other.bins_.size())
            bins_.resize(other.bins_.size(), 0);
        for (size_t b = 0; b < other.bins_.size(); ++b)
            bins_[b] += other.bins_[b];
        total_ += other.total_;
        infinite_ += other.infinite_;
        invalidateSuffix();
    }

    /**
     * Remove @p other's counts from this histogram. Every removed count
     * must previously have been added (the profiler uses this to carve
     * mixed-type accesses out of a derived per-type distribution).
     */
    void
    subtract(const LogHistogram &other)
    {
        if (bins_.size() < other.bins_.size())
            bins_.resize(other.bins_.size(), 0);
        for (size_t b = 0; b < other.bins_.size(); ++b)
            bins_[b] -= other.bins_[b];
        total_ -= other.total_;
        infinite_ -= other.infinite_;
        invalidateSuffix();
    }

    /** Mean of the finite samples. */
    double
    finiteMean() const
    {
        if (total_ == 0)
            return 0.0;
        double sum = 0;
        for (size_t b = 0; b < bins_.size(); ++b)
            sum += static_cast<double>(bins_[b]) * binMid(b);
        return sum / total_;
    }

  private:
    void
    invalidateSuffix()
    {
        suffixValid_.store(false, std::memory_order_relaxed);
    }

    /** suffix_[b] = sum of bins_[b..]; built lazily, double-checked. */
    const std::vector<uint64_t> &
    suffix() const
    {
        if (!suffixValid_.load(std::memory_order_acquire))
            buildSuffix();
        return suffix_;
    }

    void
    buildSuffix() const
    {
        // One mutex for all instances: rebuilds are rare (only after the
        // first query following a mutation), queries pay an atomic load.
        static std::mutex mu;
        std::lock_guard<std::mutex> lock(mu);
        if (suffixValid_.load(std::memory_order_relaxed))
            return;
        suffix_.assign(bins_.size() + 1, 0);
        for (size_t b = bins_.size(); b-- > 0;)
            suffix_[b] = suffix_[b + 1] + bins_[b];
        suffixValid_.store(true, std::memory_order_release);
    }

    std::vector<uint64_t> bins_;
    uint64_t total_ = 0;
    uint64_t infinite_ = 0;
    mutable std::vector<uint64_t> suffix_;
    mutable std::atomic<bool> suffixValid_{false};
};

} // namespace mipp

#endif // MIPP_PROFILER_HISTOGRAM_HH
