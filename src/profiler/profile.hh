/**
 * @file
 * Micro-architecture independent application profile.
 *
 * A Profile is the single output of one profiling run (thesis Fig 2.6) and
 * the only input, besides a CoreConfig, the analytical model needs. Nothing
 * in here depends on any micro-architecture parameter: dependence chains are
 * profiled for a *set* of ROB sizes and interpolated (thesis §5.2), cache
 * behaviour is captured as reuse-distance distributions (§4.2), branch
 * behaviour as linear branch entropy (§3.5), and memory parallelism inputs
 * as cold-miss / stride / spacing / inter-load-dependence distributions
 * (§4.4, §4.5).
 */

#ifndef MIPP_PROFILER_PROFILE_HH
#define MIPP_PROFILER_PROFILE_HH

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "profiler/histogram.hh"
#include "trace/trace.hh"

namespace mipp {

/** Default set of ROB sizes for which dependence chains are profiled. */
std::vector<uint32_t> defaultRobSizes();

/**
 * Dependence-chain statistics per profiled ROB size (thesis §3.3):
 * average path (AP), average branch path (ABP) and critical path (CP),
 * with logarithmic-fit interpolation to arbitrary sizes (Eq 5.2-5.4).
 */
class DependenceChains
{
  public:
    DependenceChains() = default;
    explicit DependenceChains(std::vector<uint32_t> robSizes)
        : robSizes_(std::move(robSizes)),
          ap_(robSizes_.size(), 0), abp_(robSizes_.size(), 0),
          cp_(robSizes_.size(), 0), weight_(robSizes_.size(), 0),
          abpWeight_(robSizes_.size(), 0)
    {
    }

    const std::vector<uint32_t> &robSizes() const { return robSizes_; }

    /** Accumulate one window observation at profiled size index @p i. */
    void
    addSample(size_t i, double ap, double abp, bool hasBranch, double cp)
    {
        ap_[i] += ap;
        cp_[i] += cp;
        weight_[i] += 1;
        if (hasBranch) {
            abp_[i] += abp;
            abpWeight_[i] += 1;
        }
    }

    /** Merge accumulated samples of another instance. */
    void merge(const DependenceChains &other);

    /** Profiled mean at size index @p i. */
    double apAt(size_t i) const
    {
        return weight_[i] ? ap_[i] / weight_[i] : 0;
    }
    double abpAt(size_t i) const
    {
        return abpWeight_[i] ? abp_[i] / abpWeight_[i] : 0;
    }
    double cpAt(size_t i) const
    {
        return weight_[i] ? cp_[i] / weight_[i] : 0;
    }

    /**
     * Chain length at an arbitrary ROB size via the piecewise logarithmic
     * fit `len = a log(rob) + b` between neighbouring profiled sizes.
     */
    double ap(double rob) const { return interpolate(rob, Metric::Ap); }
    double abp(double rob) const { return interpolate(rob, Metric::Abp); }
    double cp(double rob) const { return interpolate(rob, Metric::Cp); }

    /** Raw accumulator row for serialization (profile_io). */
    struct Row {
        double apSum, abpSum, cpSum, weight, abpWeight;
    };

    Row
    exportRow(size_t i) const
    {
        return {ap_[i], abp_[i], cp_[i], weight_[i], abpWeight_[i]};
    }

    void
    importRow(size_t i, const Row &r)
    {
        ap_[i] = r.apSum;
        abp_[i] = r.abpSum;
        cp_[i] = r.cpSum;
        weight_[i] = r.weight;
        abpWeight_[i] = r.abpWeight;
    }

  private:
    enum class Metric { Ap, Abp, Cp };
    double valueAt(size_t i, Metric m) const;
    double interpolate(double rob, Metric m) const;

    std::vector<uint32_t> robSizes_;
    std::vector<double> ap_, abp_, cp_;
    std::vector<double> weight_, abpWeight_;
};

/**
 * Inter-load dependence distribution f(l) per ROB size (thesis Fig 4.5):
 * f(l) is the fraction of loads that are the l-th load on a load
 * dependence path, plus the statistics derived from the same walk that
 * the MLP and LLC-chaining models need.
 */
struct LoadDepProfile {
    static constexpr int kMaxDepth = 16;

    /** histo[i][l-1] = # loads at depth l for ROB-size index i. */
    std::vector<std::array<uint64_t, kMaxDepth>> histo;
    /** Total loads observed per ROB-size index. */
    std::vector<uint64_t> loads;
    /** Windows observed per ROB-size index. */
    std::vector<uint64_t> windows;
    /** Independent loads (depth 1) per ROB-size index. */
    std::vector<uint64_t> independentLoads;

    void resize(size_t n)
    {
        histo.resize(n);
        loads.assign(n, 0);
        windows.assign(n, 0);
        independentLoads.assign(n, 0);
    }

    /** f(l) for size index @p i; l in [1, kMaxDepth]. */
    double
    f(size_t i, int l) const
    {
        if (loads[i] == 0 || l < 1 || l > kMaxDepth)
            return 0.0;
        return static_cast<double>(histo[i][l - 1]) / loads[i];
    }

    /** Average loads per ROB window. */
    double
    loadsPerWindow(size_t i) const
    {
        return windows[i] ? static_cast<double>(loads[i]) / windows[i] : 0;
    }

    /** Average independent loads (load-path heads) per ROB window. */
    double
    pathsPerWindow(size_t i) const
    {
        return windows[i] ?
            static_cast<double>(independentLoads[i]) / windows[i] : 0;
    }
};

/** Linear-branch-entropy profile (thesis §3.5, Eq 3.13-3.15). */
struct BranchProfile {
    /** Dynamic branches observed. */
    uint64_t branches = 0;
    /** Sum of per-occurrence linear entropy (computed at finalize). */
    double entropySum = 0;
    /** Number of distinct static branches. */
    uint64_t staticBranches = 0;
    /** History length (bits) used during profiling. */
    uint32_t historyBits = 8;

    /** Average linear branch entropy E in [0, 1]. */
    double
    entropy() const
    {
        return branches ? entropySum / branches : 0.0;
    }
};

/** Cold-miss burstiness per ROB size (thesis §4.4). */
struct ColdMissProfile {
    /** Total cold (first-touch) load misses. */
    uint64_t coldLoadMisses = 0;
    /** Per ROB-size index: windows containing at least one cold miss. */
    std::vector<uint64_t> windowsWithCold;
    /** Per ROB-size index: cold misses inside those windows (== total). */
    std::vector<uint64_t> coldInWindows;
    /** Per ROB-size index: total windows. */
    std::vector<uint64_t> totalWindows;

    void resize(size_t n)
    {
        windowsWithCold.assign(n, 0);
        coldInWindows.assign(n, 0);
        totalWindows.assign(n, 0);
    }

    /** Average cold misses per ROB window that has at least one. */
    double
    coldPerDirtyWindow(size_t i) const
    {
        return windowsWithCold[i] ?
            static_cast<double>(coldInWindows[i]) / windowsWithCold[i] : 0;
    }
};

/** Stride classification of a static load (thesis §4.5, Fig 4.7). */
enum class StrideClass : uint8_t {
    SingleStride,  ///< one stride covers >= 60 % of recurrences
    TwoStride,     ///< two strides cover >= 70 %
    ThreeStride,   ///< three strides cover >= 80 %
    FourStride,    ///< four strides cover >= 90 %
    RandomStride,  ///< no small stride set dominates
    Unique,        ///< seen only once per micro-trace
};

std::string_view strideClassName(StrideClass c);

/**
 * Stride -> occurrence counts of one static op, sorted by stride. A flat
 * sorted vector instead of std::map: the set is small (bounded at 64
 * entries during profiling) and profiles are created, copied and
 * destroyed wholesale in DSE sweeps, where per-node heap traffic of
 * hundreds of little trees dominated the cost.
 */
using StrideMap = std::vector<std::pair<int64_t, uint64_t>>;

/** Profile of one static load (or store) instruction. */
struct StaticMemProfile {
    uint64_t pc = 0;
    bool isStore = false;
    uint64_t count = 0;

    /** Reuse distances of this op's accesses in the *combined* memory
     *  stream; feeds per-op miss-rate prediction via StatStack. */
    LogHistogram reuse;

    /** Observed stride -> occurrences (bounded set, sorted by stride). */
    StrideMap strides;

    /** Load-spacing statistics within micro-traces (thesis Fig 4.6). */
    double firstPosSum = 0;
    uint64_t gapSum = 0;
    uint64_t gapCount = 0;
    uint64_t microTraces = 0;

    /** Loads only: average depth on load dependence paths. */
    double loadDepthSum = 0;
    uint64_t loadDepthCount = 0;
    /** Loads only: address depends on this op's own previous instance. */
    uint64_t selfDependent = 0;

    double avgGap() const
    {
        return gapCount ? static_cast<double>(gapSum) / gapCount : 0;
    }
    double avgFirstPos() const
    {
        return microTraces ? firstPosSum / microTraces : 0;
    }
    double avgLoadDepth() const
    {
        return loadDepthCount ? loadDepthSum / loadDepthCount : 1.0;
    }
    bool isPointerChase() const
    {
        return count && static_cast<double>(selfDependent) / count > 0.5;
    }

    /** Classify the stride behaviour with the thesis cutoffs. */
    StrideClass strideClass() const;
    /** Dominant strides (up to 4), most frequent first. */
    std::vector<int64_t> dominantStrides() const;
};

/** Compact per-window (micro-trace) statistics for phase-level evaluation. */
struct WindowProfile {
    std::array<uint32_t, kNumUopTypes> uopCounts{};
    uint32_t insts = 0;
    /** Chain lengths at each profiled ROB size (AP, ABP, CP). */
    std::vector<float> ap, abp, cp;
    /** Local branch entropy measured within this window. */
    float branchEntropy = 0;
    uint32_t branches = 0;
    /** Occurrences per static memory op inside this window:
     *  (index into Profile::memOps, count). */
    std::vector<std::pair<uint32_t, uint32_t>> memCounts;
    /** Cold (first-touch) load misses in this window. */
    uint32_t coldMisses = 0;

    uint32_t
    uops() const
    {
        uint32_t n = 0;
        for (auto c : uopCounts)
            n += c;
        return n;
    }
};

/** The complete micro-architecture independent application profile. */
struct Profile {
    std::string name;
    /** Length of the profiled program (uops), before sampling. */
    uint64_t totalUops = 0;
    /** Uops actually inspected (inside micro-traces). */
    uint64_t profiledUops = 0;
    /** Macro-instructions inside micro-traces. */
    uint64_t profiledInsts = 0;
    SamplingConfig sampling;

    /** Sampled uop mix (counts over profiled uops). */
    std::array<uint64_t, kNumUopTypes> uopCounts{};
    /** Source / destination register operands over profiled uops
     *  (register-file activity factors for the power model). */
    uint64_t srcOperands = 0;
    uint64_t dstOperands = 0;

    std::vector<uint32_t> robSizes;
    DependenceChains chains;
    LoadDepProfile loadDeps;
    BranchProfile branch;
    ColdMissProfile cold;

    /** Combined / per-type reuse-distance distributions (line granular). */
    LogHistogram reuseLoads;
    LogHistogram reuseStores;
    LogHistogram reuseAll;
    /** Instruction-stream reuse distances (I-cache modeling). */
    LogHistogram reuseInsts;

    /** Every static memory op observed inside micro-traces. */
    std::vector<StaticMemProfile> memOps;

    /** Per-micro-trace statistics in program order. */
    std::vector<WindowProfile> windows;

    /** Scale factor from profiled counts to whole-program counts. */
    double
    scale() const
    {
        return profiledUops ?
            static_cast<double>(totalUops) / profiledUops : 1.0;
    }

    /** Fraction of profiled uops of type @p t. */
    double
    uopFraction(UopType t) const
    {
        return profiledUops ? static_cast<double>(
            uopCounts[static_cast<int>(t)]) / profiledUops : 0.0;
    }

    /** Uops per macro-instruction (Fig 3.1). */
    double
    uopsPerInst() const
    {
        return profiledInsts ?
            static_cast<double>(profiledUops) / profiledInsts : 1.0;
    }

    /** Index of the profiled ROB size nearest to (>=) @p rob. */
    size_t robIndex(uint32_t rob) const;

    /** True when nothing has been profiled into this object. */
    bool
    empty() const
    {
        return totalUops == 0 && profiledUops == 0 && windows.empty() &&
               memOps.empty();
    }

    /**
     * Fold another *finalized* profile into this one, treating the two as
     * independent program parts (no cross-profile reuse or history carry:
     * @p other's cold misses stay cold, its branch history starts fresh).
     * All counters are sums; static memory ops are unified by pc (the
     * receiver's nominal type wins, stride sets merge uncapped); window
     * lists concatenate in argument order with their memCounts re-indexed.
     * Merging into an empty profile copies @p other wholesale, so the
     * empty profile is the identity. Requires identical robSizes and
     * branch historyBits; throws std::invalid_argument otherwise.
     *
     * Note: staticBranches becomes an upper bound after a merge (the two
     * parts may share static branches); every other field stays exact.
     * For segment-parallel profiling of ONE trace use profileTraceParallel,
     * which carries boundary state and is bit-identical to profileTrace.
     */
    void merge(const Profile &other);
};

} // namespace mipp

#endif // MIPP_PROFILER_PROFILE_HH
