#include "profiler/profile.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mipp {

std::vector<uint32_t>
defaultRobSizes()
{
    std::vector<uint32_t> sizes;
    for (uint32_t s = 16; s <= 256; s += 16)
        sizes.push_back(s);
    return sizes;
}

void
DependenceChains::merge(const DependenceChains &other)
{
    if (other.robSizes_.empty())
        return;
    if (robSizes_.empty()) {
        *this = other;
        return;
    }
    // The accumulator rows are positional; merging across different ROB
    // size sets would silently mix unrelated sizes (or run off the end of
    // the shorter vectors).
    if (robSizes_ != other.robSizes_)
        throw std::invalid_argument(
            "DependenceChains::merge: mismatched ROB size sets");
    for (size_t i = 0; i < robSizes_.size(); ++i) {
        ap_[i] += other.ap_[i];
        abp_[i] += other.abp_[i];
        cp_[i] += other.cp_[i];
        weight_[i] += other.weight_[i];
        abpWeight_[i] += other.abpWeight_[i];
    }
}

double
DependenceChains::valueAt(size_t i, Metric m) const
{
    switch (m) {
      case Metric::Ap: return apAt(i);
      case Metric::Abp: return abpAt(i);
      case Metric::Cp: return cpAt(i);
    }
    return 0;
}

double
DependenceChains::interpolate(double rob, Metric m) const
{
    if (robSizes_.empty())
        return 0;
    if (robSizes_.size() == 1)
        return valueAt(0, m);
    rob = std::max(rob, 2.0);

    // Find the bracketing pair of profiled sizes; extrapolate with the
    // nearest pair's fit outside the profiled range (thesis §5.2: a log
    // fit per neighbouring pair beats one global fit).
    size_t hi = 1;
    while (hi + 1 < robSizes_.size() && robSizes_[hi] < rob)
        ++hi;
    size_t lo = hi - 1;

    double x0 = std::log(static_cast<double>(robSizes_[lo]));
    double x1 = std::log(static_cast<double>(robSizes_[hi]));
    double y0 = valueAt(lo, m);
    double y1 = valueAt(hi, m);
    // For ABP some sizes may have no branch windows; fall back smoothly.
    if (y0 == 0 && y1 == 0)
        return 0;
    double a = (y1 - y0) / (x1 - x0);
    double b = y0 - a * x0;
    double v = a * std::log(rob) + b;
    return std::max(v, 1.0);
}

std::string_view
strideClassName(StrideClass c)
{
    switch (c) {
      case StrideClass::SingleStride: return "stride-1";
      case StrideClass::TwoStride: return "stride-2";
      case StrideClass::ThreeStride: return "stride-3";
      case StrideClass::FourStride: return "stride-4";
      case StrideClass::RandomStride: return "random";
      case StrideClass::Unique: return "unique";
    }
    return "?";
}

StrideClass
StaticMemProfile::strideClass() const
{
    // Observed only once per micro-trace on average -> no stride info.
    if (microTraces && count <= microTraces)
        return StrideClass::Unique;

    uint64_t total = 0;
    std::vector<uint64_t> freq;
    for (const auto &[stride, n] : strides) {
        freq.push_back(n);
        total += n;
    }
    if (total == 0)
        return StrideClass::Unique;
    std::sort(freq.rbegin(), freq.rend());

    // Thesis §4.5 cumulative cutoffs: 60 / 70 / 80 / 90 %.
    static constexpr double cutoffs[4] = {0.60, 0.70, 0.80, 0.90};
    double cum = 0;
    for (size_t k = 0; k < freq.size() && k < 4; ++k) {
        cum += static_cast<double>(freq[k]) / total;
        if (cum >= cutoffs[k])
            return static_cast<StrideClass>(k);
    }
    return StrideClass::RandomStride;
}

std::vector<int64_t>
StaticMemProfile::dominantStrides() const
{
    std::vector<std::pair<uint64_t, int64_t>> byFreq;
    for (const auto &[stride, n] : strides)
        byFreq.emplace_back(n, stride);
    std::sort(byFreq.rbegin(), byFreq.rend());
    std::vector<int64_t> out;
    for (size_t k = 0; k < byFreq.size() && k < 4; ++k)
        out.push_back(byFreq[k].second);
    return out;
}

namespace {

/** Merge two sorted StrideMaps, summing counts of equal strides. */
StrideMap
mergeStrides(const StrideMap &a, const StrideMap &b)
{
    StrideMap out;
    out.reserve(a.size() + b.size());
    size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
        if (a[i].first < b[j].first) {
            out.push_back(a[i++]);
        } else if (b[j].first < a[i].first) {
            out.push_back(b[j++]);
        } else {
            out.emplace_back(a[i].first, a[i].second + b[j].second);
            ++i;
            ++j;
        }
    }
    out.insert(out.end(), a.begin() + i, a.end());
    out.insert(out.end(), b.begin() + j, b.end());
    return out;
}

} // namespace

void
Profile::merge(const Profile &other)
{
    if (other.empty())
        return;
    if (empty()) {
        std::string keep = name;
        *this = other;
        if (!keep.empty())
            name = std::move(keep);
        return;
    }
    if (robSizes != other.robSizes)
        throw std::invalid_argument("Profile::merge: mismatched robSizes");
    if (branch.historyBits != other.branch.historyBits)
        throw std::invalid_argument(
            "Profile::merge: mismatched branch history length");

    totalUops += other.totalUops;
    profiledUops += other.profiledUops;
    profiledInsts += other.profiledInsts;
    for (int t = 0; t < kNumUopTypes; ++t)
        uopCounts[t] += other.uopCounts[t];
    srcOperands += other.srcOperands;
    dstOperands += other.dstOperands;

    chains.merge(other.chains);
    for (size_t i = 0; i < robSizes.size(); ++i) {
        for (int l = 0; l < LoadDepProfile::kMaxDepth; ++l)
            loadDeps.histo[i][l] += other.loadDeps.histo[i][l];
        loadDeps.loads[i] += other.loadDeps.loads[i];
        loadDeps.windows[i] += other.loadDeps.windows[i];
        loadDeps.independentLoads[i] += other.loadDeps.independentLoads[i];
        cold.windowsWithCold[i] += other.cold.windowsWithCold[i];
        cold.coldInWindows[i] += other.cold.coldInWindows[i];
        cold.totalWindows[i] += other.cold.totalWindows[i];
    }
    cold.coldLoadMisses += other.cold.coldLoadMisses;

    branch.branches += other.branch.branches;
    branch.entropySum += other.branch.entropySum;
    // Distinct pcs may overlap between the parts; this is documented as
    // an upper bound on the merged profile.
    branch.staticBranches += other.branch.staticBranches;

    reuseLoads.merge(other.reuseLoads);
    reuseStores.merge(other.reuseStores);
    reuseAll.merge(other.reuseAll);
    reuseInsts.merge(other.reuseInsts);

    // Unify static memory ops by pc; remember where each of other's ops
    // landed so the appended windows can be re-indexed.
    std::vector<uint32_t> remap(other.memOps.size());
    for (size_t j = 0; j < other.memOps.size(); ++j) {
        const StaticMemProfile &o = other.memOps[j];
        size_t i = 0;
        for (; i < memOps.size(); ++i)
            if (memOps[i].pc == o.pc)
                break;
        if (i == memOps.size()) {
            remap[j] = static_cast<uint32_t>(memOps.size());
            memOps.push_back(o);
            continue;
        }
        remap[j] = static_cast<uint32_t>(i);
        StaticMemProfile &s = memOps[i];
        s.count += o.count;
        s.reuse.merge(o.reuse);
        s.strides = mergeStrides(s.strides, o.strides);
        s.firstPosSum += o.firstPosSum;
        s.gapSum += o.gapSum;
        s.gapCount += o.gapCount;
        s.microTraces += o.microTraces;
        s.loadDepthSum += o.loadDepthSum;
        s.loadDepthCount += o.loadDepthCount;
        s.selfDependent += o.selfDependent;
    }

    windows.reserve(windows.size() + other.windows.size());
    for (const WindowProfile &w : other.windows) {
        WindowProfile wc = w;
        for (auto &[idx, cnt] : wc.memCounts)
            idx = remap[idx];
        std::sort(wc.memCounts.begin(), wc.memCounts.end());
        windows.push_back(std::move(wc));
    }
}

size_t
Profile::robIndex(uint32_t rob) const
{
    for (size_t i = 0; i < robSizes.size(); ++i)
        if (robSizes[i] >= rob)
            return i;
    return robSizes.empty() ? 0 : robSizes.size() - 1;
}

} // namespace mipp
