/**
 * @file
 * Profile persistence.
 *
 * The paper's workflow separates the (slow, one-time) profiling tool from
 * the (fast, repeated) modeling tool and ships profiles between them as
 * files. This module provides a versioned, human-inspectable text format
 * for Profile with exact round-tripping of every statistic the model
 * consumes.
 */

#ifndef MIPP_PROFILER_PROFILE_IO_HH
#define MIPP_PROFILER_PROFILE_IO_HH

#include <iosfwd>
#include <string>

#include "profiler/profile.hh"

namespace mipp {

/** Serialize @p profile to @p os. */
void writeProfile(const Profile &profile, std::ostream &os);

/** Serialize to a file. @return false on I/O failure. */
bool saveProfile(const Profile &profile, const std::string &path);

/**
 * Parse a profile previously written by writeProfile.
 * @throws std::runtime_error on malformed input or version mismatch.
 */
Profile readProfile(std::istream &is);

/** Load from a file. @throws std::runtime_error on failure. */
Profile loadProfile(const std::string &path);

} // namespace mipp

#endif // MIPP_PROFILER_PROFILE_IO_HH
