/**
 * @file
 * Profile persistence, hardened against untrusted bytes.
 *
 * The paper's workflow separates the (slow, one-time) profiling tool from
 * the (fast, repeated) modeling tool and ships profiles between them as
 * files — and, since the serve daemon, as uploads over a socket. The
 * format is versioned, human-inspectable text with exact round-tripping
 * of every statistic the model consumes, framed for integrity:
 *
 *     mipp-profile 2\n
 *     <payload: name/totals/histograms/memops/windows..., ends "end">
 *     checksum <16 lowercase hex digits>\n
 *
 * The checksum is FNV-1a (64-bit) over the payload bytes, so truncation
 * and bit flips are detected before any field is interpreted. Parsing
 * itself is defensive: every field extraction is checked, every count is
 * bounded both by configurable ProfileLimits and by the bytes actually
 * present (a 10^18 element count in a 1 KB file is rejected before any
 * allocation), and cross-references (window memCounts indices into the
 * memop table) are validated. Malformed input of any shape yields a
 * Status of Corrupt / InvalidArgument / ResourceExhausted — never UB,
 * OOM, or a crash (tests/test_profile_io.cc drives a malformed corpus
 * plus exhaustive truncations through this promise).
 */

#ifndef MIPP_PROFILER_PROFILE_IO_HH
#define MIPP_PROFILER_PROFILE_IO_HH

#include <iosfwd>
#include <string>

#include "profiler/profile.hh"
#include "util/status.hh"

namespace mipp {

/**
 * Caps applied while deserializing untrusted profile bytes. Defaults
 * comfortably hold any profile this repo's profiler emits; a server can
 * tighten them per deployment.
 */
struct ProfileLimits {
    size_t maxBytes = 256u << 20;    ///< whole-stream size cap
    size_t maxNameLen = 4096;
    size_t maxRobSizes = 64;
    size_t maxMemOps = 1u << 20;
    size_t maxStridesPerOp = 1u << 20;
    size_t maxWindows = 4u << 20;
    /** Bin indices above this are rejected: LogHistogram::binLower
     *  would overflow near 2^55, and no real reuse distance gets close
     *  (see binIndex octave math). */
    size_t maxHistogramBin = 512;
};

/** Serialize @p profile to @p os (format version 2, checksummed). */
void writeProfile(const Profile &profile, std::ostream &os);

/** Serialize to a file. @return false on I/O failure. */
bool saveProfile(const Profile &profile, const std::string &path);

/**
 * Parse a profile previously written by writeProfile, validating magic,
 * version, checksum and all bounds. On failure @p out is left in an
 * unspecified but valid state.
 */
Status readProfileChecked(std::istream &is, Profile &out,
                          const ProfileLimits &limits = {});

/** readProfileChecked over an in-memory buffer (server upload path). */
Status parseProfile(const std::string &data, Profile &out,
                    const ProfileLimits &limits = {});

/** Load from a file. */
Status loadProfileChecked(const std::string &path, Profile &out,
                          const ProfileLimits &limits = {});

/**
 * Compatibility wrappers: throw StatusError (a std::runtime_error) on
 * malformed input or I/O failure.
 */
Profile readProfile(std::istream &is);
Profile loadProfile(const std::string &path);

} // namespace mipp

#endif // MIPP_PROFILER_PROFILE_IO_HH
