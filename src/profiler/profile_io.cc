#include "profiler/profile_io.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/failpoint.hh"

namespace mipp {

namespace {

constexpr const char *kMagic = "mipp-profile";
constexpr int kVersion = 2;

/** FNV-1a over the payload: cheap, dependency-free, and plenty to catch
 *  truncation/bit rot — this is integrity, not authentication. */
uint64_t
fnv1a64(const char *data, size_t n)
{
    uint64_t h = 14695981039346656037ull;
    for (size_t i = 0; i < n; ++i) {
        h ^= static_cast<unsigned char>(data[i]);
        h *= 1099511628211ull;
    }
    return h;
}

void
writeHistogram(std::ostream &os, const char *tag, const LogHistogram &h)
{
    // Sparse: only non-empty bins.
    size_t nonEmpty = 0;
    for (size_t b = 0; b < h.numBins(); ++b)
        nonEmpty += h.binCount(b) > 0;
    os << tag << ' ' << nonEmpty << ' ' << h.infiniteCount() << '\n';
    for (size_t b = 0; b < h.numBins(); ++b) {
        if (h.binCount(b) > 0)
            os << b << ' ' << h.binCount(b) << '\n';
    }
}

/**
 * Checked token/field reader over the in-memory payload. Every
 * extraction failure, bound violation or token mismatch latches a
 * Status; subsequent reads become no-ops so the parse unwinds without
 * touching further state.
 */
struct In {
    std::istringstream is;
    const ProfileLimits &limits;
    size_t payloadSize;
    Status st;

    In(const std::string &payload, const ProfileLimits &limits)
        : is(payload), limits(limits), payloadSize(payload.size())
    {
    }

    bool ok() const { return st.isOk(); }

    bool
    fail(const std::string &msg)
    {
        if (st.isOk())
            st = corrupt("profile parse: " + msg);
        return false;
    }

    template <typename T>
    bool
    get(T &v)
    {
        if (!ok())
            return false;
        if (!(is >> v))
            return fail("truncated or malformed field");
        return true;
    }

    bool
    expect(const char *token)
    {
        if (!ok())
            return false;
        std::string t;
        if (!(is >> t))
            return fail("truncated input, expected '" +
                        std::string(token) + "'");
        if (t != token)
            return fail("expected '" + std::string(token) + "', got '" +
                        t + "'");
        return true;
    }

    /** Bytes not yet consumed — upper-bounds any plausible item count. */
    size_t
    remaining()
    {
        auto pos = is.tellg();
        if (pos < 0)
            return 0;
        size_t p = static_cast<size_t>(pos);
        return p >= payloadSize ? 0 : payloadSize - p;
    }

    /**
     * Read a count that drives an allocation: capped by @p cap and by
     * the bytes actually left (every serialized item takes >= 2 bytes,
     * so a count beyond remaining()/2+1 cannot be backed by data —
     * rejected before resize()/reserve() can OOM).
     */
    bool
    getCount(size_t &v, size_t cap, const char *what)
    {
        if (!get(v))
            return false;
        if (v > cap)
            return fail(std::string(what) + " count " +
                        std::to_string(v) + " exceeds limit " +
                        std::to_string(cap));
        if (v > remaining() / 2 + 1)
            return fail(std::string(what) + " count " +
                        std::to_string(v) +
                        " not backed by remaining input");
        return true;
    }
};

LogHistogram
readHistogram(In &in, const char *tag)
{
    LogHistogram h;
    size_t nonEmpty = 0;
    uint64_t infinite = 0;
    if (!in.expect(tag) ||
        !in.getCount(nonEmpty, in.limits.maxHistogramBin + 1,
                     "histogram bin") ||
        !in.get(infinite))
        return h;
    for (size_t i = 0; i < nonEmpty; ++i) {
        size_t bin = 0;
        uint64_t count = 0;
        if (!in.get(bin) || !in.get(count))
            return h;
        if (bin > in.limits.maxHistogramBin) {
            in.fail("histogram bin index " + std::to_string(bin) +
                    " exceeds limit");
            return h;
        }
        // binLower(bin) maps back into the same bin, reproducing it.
        h.add(LogHistogram::binLower(bin), count);
    }
    h.addInfinite(infinite);
    return h;
}

Status
parsePayload(const std::string &payload, Profile &p,
             const ProfileLimits &limits)
{
    In in(payload, limits);

    size_t nameLen = 0;
    if (!in.expect("name") ||
        !in.getCount(nameLen, limits.maxNameLen, "name length"))
        return in.st;
    in.is.get(); // the separating space
    p.name.resize(nameLen);
    in.is.read(p.name.data(), static_cast<std::streamsize>(nameLen));
    if (!in.is)
        return corrupt("profile parse: truncated name");

    if (!in.expect("totals") || !in.get(p.totalUops) ||
        !in.get(p.profiledUops) || !in.get(p.profiledInsts))
        return in.st;
    if (!in.expect("sampling") || !in.get(p.sampling.microTraceSize) ||
        !in.get(p.sampling.windowSize))
        return in.st;
    if (p.sampling.microTraceSize == 0 || p.sampling.windowSize == 0)
        return corrupt("profile parse: zero sampling geometry");
    if (!in.expect("operands") || !in.get(p.srcOperands) ||
        !in.get(p.dstOperands))
        return in.st;

    if (!in.expect("uopcounts"))
        return in.st;
    for (auto &c : p.uopCounts)
        if (!in.get(c))
            return in.st;

    size_t nRob = 0;
    if (!in.expect("robsizes") ||
        !in.getCount(nRob, limits.maxRobSizes, "robsizes"))
        return in.st;
    if (nRob == 0)
        return corrupt("profile parse: no ROB sizes");
    p.robSizes.resize(nRob);
    for (size_t i = 0; i < nRob; ++i) {
        if (!in.get(p.robSizes[i]))
            return in.st;
        // The interpolation code binary-searches this axis; a
        // non-monotone axis would index out of pattern, not out of
        // bounds, so reject it here.
        if (p.robSizes[i] == 0 ||
            (i > 0 && p.robSizes[i] <= p.robSizes[i - 1]))
            return corrupt(
                "profile parse: robsizes not strictly increasing");
    }

    if (!in.expect("chains"))
        return in.st;
    p.chains = DependenceChains(p.robSizes);
    for (size_t i = 0; i < nRob; ++i) {
        DependenceChains::Row r{};
        if (!in.get(r.apSum) || !in.get(r.abpSum) || !in.get(r.cpSum) ||
            !in.get(r.weight) || !in.get(r.abpWeight))
            return in.st;
        p.chains.importRow(i, r);
    }

    if (!in.expect("loaddeps"))
        return in.st;
    p.loadDeps.resize(nRob);
    for (size_t i = 0; i < nRob; ++i) {
        for (int l = 0; l < LoadDepProfile::kMaxDepth; ++l)
            if (!in.get(p.loadDeps.histo[i][l]))
                return in.st;
        if (!in.get(p.loadDeps.loads[i]) ||
            !in.get(p.loadDeps.windows[i]) ||
            !in.get(p.loadDeps.independentLoads[i]))
            return in.st;
    }

    if (!in.expect("branch") || !in.get(p.branch.branches) ||
        !in.get(p.branch.entropySum) || !in.get(p.branch.staticBranches) ||
        !in.get(p.branch.historyBits))
        return in.st;

    if (!in.expect("cold"))
        return in.st;
    p.cold.resize(nRob);
    if (!in.get(p.cold.coldLoadMisses))
        return in.st;
    for (size_t i = 0; i < nRob; ++i)
        if (!in.get(p.cold.windowsWithCold[i]) ||
            !in.get(p.cold.coldInWindows[i]) ||
            !in.get(p.cold.totalWindows[i]))
            return in.st;

    p.reuseLoads = readHistogram(in, "reuse_loads");
    p.reuseStores = readHistogram(in, "reuse_stores");
    p.reuseAll = readHistogram(in, "reuse_all");
    p.reuseInsts = readHistogram(in, "reuse_insts");
    if (!in.ok())
        return in.st;

    size_t nOps = 0;
    if (!in.expect("memops") ||
        !in.getCount(nOps, limits.maxMemOps, "memops"))
        return in.st;
    p.memOps.resize(nOps);
    for (auto &op : p.memOps) {
        int isStore = 0;
        if (!in.get(op.pc) || !in.get(isStore) || !in.get(op.count) ||
            !in.get(op.firstPosSum) || !in.get(op.gapSum) ||
            !in.get(op.gapCount) || !in.get(op.microTraces) ||
            !in.get(op.loadDepthSum) || !in.get(op.loadDepthCount) ||
            !in.get(op.selfDependent))
            return in.st;
        op.isStore = isStore != 0;
        op.reuse = readHistogram(in, "op_reuse");
        size_t nStrides = 0;
        if (!in.expect("strides") ||
            !in.getCount(nStrides, limits.maxStridesPerOp, "strides"))
            return in.st;
        op.strides.reserve(nStrides);
        for (size_t s = 0; s < nStrides; ++s) {
            int64_t stride = 0;
            uint64_t n = 0;
            if (!in.get(stride) || !in.get(n))
                return in.st;
            op.strides.emplace_back(stride, n);
        }
        // Written sorted; re-sort in case the file was assembled by hand.
        std::sort(op.strides.begin(), op.strides.end());
    }

    size_t nWin = 0;
    if (!in.expect("windows") ||
        !in.getCount(nWin, limits.maxWindows, "windows"))
        return in.st;
    p.windows.resize(nWin);
    for (auto &w : p.windows) {
        if (!in.expect("w"))
            return in.st;
        for (auto &c : w.uopCounts)
            if (!in.get(c))
                return in.st;
        if (!in.get(w.insts) || !in.get(w.branches) ||
            !in.get(w.branchEntropy) || !in.get(w.coldMisses))
            return in.st;
        if (!in.expect("c"))
            return in.st;
        w.ap.resize(nRob);
        w.abp.resize(nRob);
        w.cp.resize(nRob);
        for (size_t i = 0; i < nRob; ++i)
            if (!in.get(w.ap[i]) || !in.get(w.abp[i]) ||
                !in.get(w.cp[i]))
                return in.st;
        size_t nMem = 0;
        if (!in.expect("m") ||
            !in.getCount(nMem, limits.maxMemOps, "window memcounts"))
            return in.st;
        w.memCounts.resize(nMem);
        for (auto &[idx, n] : w.memCounts) {
            if (!in.get(idx) || !in.get(n))
                return in.st;
            // Cross-reference into the memop table: an out-of-range
            // index would be a heap overread in every model that walks
            // window memCounts.
            if (idx >= nOps)
                return corrupt("profile parse: window memcount index " +
                               std::to_string(idx) + " out of range");
        }
    }
    if (!in.expect("end"))
        return in.st;
    return Status::ok();
}

/** Bounded slurp: reads at most limits.maxBytes + 1 so oversized input
 *  is detected without buffering it. */
Status
slurp(std::istream &is, size_t maxBytes, std::string &out)
{
    out.clear();
    char buf[1 << 16];
    while (is) {
        is.read(buf, sizeof buf);
        size_t got = static_cast<size_t>(is.gcount());
        if (got == 0)
            break;
        if (out.size() + got > maxBytes)
            return resourceExhausted(
                "profile larger than the configured limit (" +
                std::to_string(maxBytes) + " bytes)");
        out.append(buf, got);
    }
    return Status::ok();
}

} // namespace

void
writeProfile(const Profile &p, std::ostream &os)
{
    // Payload is staged in memory so the trailing checksum can cover it.
    std::ostringstream body;
    body.precision(17);
    // Names may contain spaces in principle; store length-prefixed.
    body << "name " << p.name.size() << ' ' << p.name << '\n';
    body << "totals " << p.totalUops << ' ' << p.profiledUops << ' '
         << p.profiledInsts << '\n';
    body << "sampling " << p.sampling.microTraceSize << ' '
         << p.sampling.windowSize << '\n';
    body << "operands " << p.srcOperands << ' ' << p.dstOperands << '\n';

    body << "uopcounts";
    for (auto c : p.uopCounts)
        body << ' ' << c;
    body << '\n';

    body << "robsizes " << p.robSizes.size();
    for (auto r : p.robSizes)
        body << ' ' << r;
    body << '\n';

    body << "chains\n";
    for (size_t i = 0; i < p.robSizes.size(); ++i) {
        auto r = p.chains.exportRow(i);
        body << r.apSum << ' ' << r.abpSum << ' ' << r.cpSum << ' '
             << r.weight << ' ' << r.abpWeight << '\n';
    }

    body << "loaddeps\n";
    for (size_t i = 0; i < p.robSizes.size(); ++i) {
        for (int l = 0; l < LoadDepProfile::kMaxDepth; ++l)
            body << p.loadDeps.histo[i][l] << ' ';
        body << p.loadDeps.loads[i] << ' ' << p.loadDeps.windows[i] << ' '
             << p.loadDeps.independentLoads[i] << '\n';
    }

    body << "branch " << p.branch.branches << ' ' << p.branch.entropySum
         << ' ' << p.branch.staticBranches << ' ' << p.branch.historyBits
         << '\n';

    body << "cold " << p.cold.coldLoadMisses << '\n';
    for (size_t i = 0; i < p.robSizes.size(); ++i)
        body << p.cold.windowsWithCold[i] << ' ' << p.cold.coldInWindows[i]
             << ' ' << p.cold.totalWindows[i] << '\n';

    writeHistogram(body, "reuse_loads", p.reuseLoads);
    writeHistogram(body, "reuse_stores", p.reuseStores);
    writeHistogram(body, "reuse_all", p.reuseAll);
    writeHistogram(body, "reuse_insts", p.reuseInsts);

    body << "memops " << p.memOps.size() << '\n';
    for (const auto &op : p.memOps) {
        body << op.pc << ' ' << (op.isStore ? 1 : 0) << ' ' << op.count
             << ' ' << op.firstPosSum << ' ' << op.gapSum << ' '
             << op.gapCount << ' ' << op.microTraces << ' '
             << op.loadDepthSum << ' ' << op.loadDepthCount << ' '
             << op.selfDependent << '\n';
        writeHistogram(body, "op_reuse", op.reuse);
        body << "strides " << op.strides.size() << '\n';
        for (const auto &[stride, n] : op.strides)
            body << stride << ' ' << n << '\n';
    }

    body << "windows " << p.windows.size() << '\n';
    for (const auto &w : p.windows) {
        body << "w";
        for (auto c : w.uopCounts)
            body << ' ' << c;
        body << ' ' << w.insts << ' ' << w.branches << ' '
             << w.branchEntropy << ' ' << w.coldMisses << '\n';
        body << "c";
        for (size_t i = 0; i < p.robSizes.size(); ++i)
            body << ' ' << w.ap[i] << ' ' << w.abp[i] << ' ' << w.cp[i];
        body << '\n';
        body << "m " << w.memCounts.size();
        for (const auto &[idx, n] : w.memCounts)
            body << ' ' << idx << ' ' << n;
        body << '\n';
    }
    body << "end\n";

    std::string payload = body.str();
    char sum[32];
    std::snprintf(sum, sizeof sum, "%016llx",
                  static_cast<unsigned long long>(
                      fnv1a64(payload.data(), payload.size())));
    os << kMagic << ' ' << kVersion << '\n' << payload << "checksum "
       << sum << '\n';
}

Status
parseProfile(const std::string &data, Profile &out,
             const ProfileLimits &limits)
{
    if (data.size() > limits.maxBytes)
        return resourceExhausted(
            "profile larger than the configured limit");

    // Frame: magic+version line, payload, trailing checksum line.
    size_t firstNl = data.find('\n');
    if (firstNl == std::string::npos)
        return corrupt("not a mipp profile (no header line)");
    {
        std::istringstream hdr(data.substr(0, firstNl));
        std::string magic;
        int version = 0;
        if (!(hdr >> magic) || magic != kMagic)
            return corrupt("not a mipp profile");
        if (!(hdr >> version))
            return corrupt("profile header has no version");
        if (version != kVersion)
            return invalidArgument("unsupported profile version " +
                                   std::to_string(version) +
                                   " (expected " +
                                   std::to_string(kVersion) + ")");
    }

    size_t sumPos = data.rfind("\nchecksum ");
    if (sumPos == std::string::npos || sumPos < firstNl)
        return corrupt("profile has no checksum line (truncated?)");
    const char *payload = data.data() + firstNl + 1;
    size_t payloadLen = sumPos + 1 - (firstNl + 1);

    uint64_t want = 0;
    {
        std::istringstream tail(data.substr(sumPos + 1));
        std::string tok, hex;
        if (!(tail >> tok >> hex) || tok != "checksum" ||
            hex.size() != 16)
            return corrupt("malformed checksum line");
        char *end = nullptr;
        want = std::strtoull(hex.c_str(), &end, 16);
        if (end != hex.c_str() + hex.size())
            return corrupt("malformed checksum value");
        std::string rest;
        if (tail >> rest)
            return corrupt("trailing garbage after checksum");
    }
    if (fnv1a64(payload, payloadLen) != want ||
        MIPP_FAILPOINT("profile_io.corrupt"))
        return corrupt("checksum mismatch (bit rot or truncation)");

    return parsePayload(std::string(payload, payloadLen), out, limits);
}

Status
readProfileChecked(std::istream &is, Profile &out,
                   const ProfileLimits &limits)
{
    std::string data;
    Status st = slurp(is, limits.maxBytes, data);
    if (!st.isOk())
        return st;
    return parseProfile(data, out, limits);
}

Status
loadProfileChecked(const std::string &path, Profile &out,
                   const ProfileLimits &limits)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return invalidArgument("cannot open profile: " + path);
    return readProfileChecked(is, out, limits);
}

Profile
readProfile(std::istream &is)
{
    Profile p;
    throwIfError(readProfileChecked(is, p));
    return p;
}

bool
saveProfile(const Profile &profile, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        return false;
    writeProfile(profile, os);
    return static_cast<bool>(os);
}

Profile
loadProfile(const std::string &path)
{
    Profile p;
    throwIfError(loadProfileChecked(path, p));
    return p;
}

} // namespace mipp
