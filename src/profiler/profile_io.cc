#include "profiler/profile_io.hh"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mipp {

namespace {

constexpr const char *kMagic = "mipp-profile";
constexpr int kVersion = 1;

void
writeHistogram(std::ostream &os, const char *tag, const LogHistogram &h)
{
    // Sparse: only non-empty bins.
    size_t nonEmpty = 0;
    for (size_t b = 0; b < h.numBins(); ++b)
        nonEmpty += h.binCount(b) > 0;
    os << tag << ' ' << nonEmpty << ' ' << h.infiniteCount() << '\n';
    for (size_t b = 0; b < h.numBins(); ++b) {
        if (h.binCount(b) > 0)
            os << b << ' ' << h.binCount(b) << '\n';
    }
}

LogHistogram
readHistogram(std::istream &is, const char *tag)
{
    std::string t;
    size_t nonEmpty = 0;
    uint64_t infinite = 0;
    is >> t >> nonEmpty >> infinite;
    if (t != tag)
        throw std::runtime_error("profile parse: expected '" +
                                 std::string(tag) + "', got '" + t + "'");
    LogHistogram h;
    for (size_t i = 0; i < nonEmpty; ++i) {
        size_t bin = 0;
        uint64_t count = 0;
        is >> bin >> count;
        // binLower(bin) maps back into the same bin, reproducing it.
        h.add(LogHistogram::binLower(bin), count);
    }
    h.addInfinite(infinite);
    return h;
}

void
expect(std::istream &is, const char *token)
{
    std::string t;
    is >> t;
    if (t != token)
        throw std::runtime_error("profile parse: expected '" +
                                 std::string(token) + "', got '" + t +
                                 "'");
}

} // namespace

void
writeProfile(const Profile &p, std::ostream &os)
{
    os << kMagic << ' ' << kVersion << '\n';
    // Names may contain spaces in principle; store length-prefixed.
    os << "name " << p.name.size() << ' ' << p.name << '\n';
    os << "totals " << p.totalUops << ' ' << p.profiledUops << ' '
       << p.profiledInsts << '\n';
    os << "sampling " << p.sampling.microTraceSize << ' '
       << p.sampling.windowSize << '\n';
    os << "operands " << p.srcOperands << ' ' << p.dstOperands << '\n';

    os << "uopcounts";
    for (auto c : p.uopCounts)
        os << ' ' << c;
    os << '\n';

    os << "robsizes " << p.robSizes.size();
    for (auto r : p.robSizes)
        os << ' ' << r;
    os << '\n';

    os << "chains\n";
    os.precision(17);
    for (size_t i = 0; i < p.robSizes.size(); ++i) {
        auto r = p.chains.exportRow(i);
        os << r.apSum << ' ' << r.abpSum << ' ' << r.cpSum << ' '
           << r.weight << ' ' << r.abpWeight << '\n';
    }

    os << "loaddeps\n";
    for (size_t i = 0; i < p.robSizes.size(); ++i) {
        for (int l = 0; l < LoadDepProfile::kMaxDepth; ++l)
            os << p.loadDeps.histo[i][l] << ' ';
        os << p.loadDeps.loads[i] << ' ' << p.loadDeps.windows[i] << ' '
           << p.loadDeps.independentLoads[i] << '\n';
    }

    os << "branch " << p.branch.branches << ' ' << p.branch.entropySum
       << ' ' << p.branch.staticBranches << ' ' << p.branch.historyBits
       << '\n';

    os << "cold " << p.cold.coldLoadMisses << '\n';
    for (size_t i = 0; i < p.robSizes.size(); ++i)
        os << p.cold.windowsWithCold[i] << ' ' << p.cold.coldInWindows[i]
           << ' ' << p.cold.totalWindows[i] << '\n';

    writeHistogram(os, "reuse_loads", p.reuseLoads);
    writeHistogram(os, "reuse_stores", p.reuseStores);
    writeHistogram(os, "reuse_all", p.reuseAll);
    writeHistogram(os, "reuse_insts", p.reuseInsts);

    os << "memops " << p.memOps.size() << '\n';
    for (const auto &op : p.memOps) {
        os << op.pc << ' ' << (op.isStore ? 1 : 0) << ' ' << op.count
           << ' ' << op.firstPosSum << ' ' << op.gapSum << ' '
           << op.gapCount << ' ' << op.microTraces << ' '
           << op.loadDepthSum << ' ' << op.loadDepthCount << ' '
           << op.selfDependent << '\n';
        writeHistogram(os, "op_reuse", op.reuse);
        os << "strides " << op.strides.size() << '\n';
        for (const auto &[stride, n] : op.strides)
            os << stride << ' ' << n << '\n';
    }

    os << "windows " << p.windows.size() << '\n';
    for (const auto &w : p.windows) {
        os << "w";
        for (auto c : w.uopCounts)
            os << ' ' << c;
        os << ' ' << w.insts << ' ' << w.branches << ' '
           << w.branchEntropy << ' ' << w.coldMisses << '\n';
        os << "c";
        for (size_t i = 0; i < p.robSizes.size(); ++i)
            os << ' ' << w.ap[i] << ' ' << w.abp[i] << ' ' << w.cp[i];
        os << '\n';
        os << "m " << w.memCounts.size();
        for (const auto &[idx, n] : w.memCounts)
            os << ' ' << idx << ' ' << n;
        os << '\n';
    }
    os << "end\n";
}

Profile
readProfile(std::istream &is)
{
    std::string magic;
    int version = 0;
    is >> magic >> version;
    if (magic != kMagic)
        throw std::runtime_error("not a mipp profile");
    if (version != kVersion)
        throw std::runtime_error("unsupported profile version " +
                                 std::to_string(version));

    Profile p;
    expect(is, "name");
    size_t nameLen = 0;
    is >> nameLen;
    is.get(); // the separating space
    p.name.resize(nameLen);
    is.read(p.name.data(), static_cast<std::streamsize>(nameLen));

    expect(is, "totals");
    is >> p.totalUops >> p.profiledUops >> p.profiledInsts;
    expect(is, "sampling");
    is >> p.sampling.microTraceSize >> p.sampling.windowSize;
    expect(is, "operands");
    is >> p.srcOperands >> p.dstOperands;

    expect(is, "uopcounts");
    for (auto &c : p.uopCounts)
        is >> c;

    expect(is, "robsizes");
    size_t nRob = 0;
    is >> nRob;
    p.robSizes.resize(nRob);
    for (auto &r : p.robSizes)
        is >> r;

    expect(is, "chains");
    p.chains = DependenceChains(p.robSizes);
    for (size_t i = 0; i < nRob; ++i) {
        DependenceChains::Row r{};
        is >> r.apSum >> r.abpSum >> r.cpSum >> r.weight >> r.abpWeight;
        p.chains.importRow(i, r);
    }

    expect(is, "loaddeps");
    p.loadDeps.resize(nRob);
    for (size_t i = 0; i < nRob; ++i) {
        for (int l = 0; l < LoadDepProfile::kMaxDepth; ++l)
            is >> p.loadDeps.histo[i][l];
        is >> p.loadDeps.loads[i] >> p.loadDeps.windows[i] >>
            p.loadDeps.independentLoads[i];
    }

    expect(is, "branch");
    is >> p.branch.branches >> p.branch.entropySum >>
        p.branch.staticBranches >> p.branch.historyBits;

    expect(is, "cold");
    p.cold.resize(nRob);
    is >> p.cold.coldLoadMisses;
    for (size_t i = 0; i < nRob; ++i)
        is >> p.cold.windowsWithCold[i] >> p.cold.coldInWindows[i] >>
            p.cold.totalWindows[i];

    p.reuseLoads = readHistogram(is, "reuse_loads");
    p.reuseStores = readHistogram(is, "reuse_stores");
    p.reuseAll = readHistogram(is, "reuse_all");
    p.reuseInsts = readHistogram(is, "reuse_insts");

    expect(is, "memops");
    size_t nOps = 0;
    is >> nOps;
    p.memOps.resize(nOps);
    for (auto &op : p.memOps) {
        int isStore = 0;
        is >> op.pc >> isStore >> op.count >> op.firstPosSum >>
            op.gapSum >> op.gapCount >> op.microTraces >>
            op.loadDepthSum >> op.loadDepthCount >> op.selfDependent;
        op.isStore = isStore != 0;
        op.reuse = readHistogram(is, "op_reuse");
        expect(is, "strides");
        size_t nStrides = 0;
        is >> nStrides;
        op.strides.reserve(nStrides);
        for (size_t s = 0; s < nStrides; ++s) {
            int64_t stride = 0;
            uint64_t n = 0;
            is >> stride >> n;
            op.strides.emplace_back(stride, n);
        }
        // Written sorted; re-sort in case the file was assembled by hand.
        std::sort(op.strides.begin(), op.strides.end());
    }

    expect(is, "windows");
    size_t nWin = 0;
    is >> nWin;
    p.windows.resize(nWin);
    for (auto &w : p.windows) {
        expect(is, "w");
        for (auto &c : w.uopCounts)
            is >> c;
        is >> w.insts >> w.branches >> w.branchEntropy >> w.coldMisses;
        expect(is, "c");
        w.ap.resize(nRob);
        w.abp.resize(nRob);
        w.cp.resize(nRob);
        for (size_t i = 0; i < nRob; ++i)
            is >> w.ap[i] >> w.abp[i] >> w.cp[i];
        expect(is, "m");
        size_t nMem = 0;
        is >> nMem;
        w.memCounts.resize(nMem);
        for (auto &[idx, n] : w.memCounts)
            is >> idx >> n;
    }
    expect(is, "end");
    if (!is)
        throw std::runtime_error("profile parse: truncated input");
    return p;
}

bool
saveProfile(const Profile &profile, const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeProfile(profile, os);
    return static_cast<bool>(os);
}

Profile
loadProfile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        throw std::runtime_error("cannot open profile: " + path);
    return readProfile(is);
}

} // namespace mipp
