#include "profiler/segment_profiler.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hh"

namespace mipp {

namespace {

/** Linear branch entropy of a taken-probability (thesis Eq 3.14). */
double
linearEntropy(double p)
{
    return 2.0 * std::min(p, 1.0 - p);
}

using TakenCounts = SegmentProfiler::TakenCounts;

/**
 * Average linear entropy over a (pc, history) count map (Eq 3.15).
 * Entries are summed in key order so the floating-point result does not
 * depend on hash iteration order.
 */
double
entropyOf(const FlatMap<TakenCounts> &stats, uint64_t &branchesOut)
{
    std::vector<std::pair<uint64_t, TakenCounts>> entries;
    entries.reserve(stats.size());
    stats.forEach([&](uint64_t key, const TakenCounts &c) {
        entries.emplace_back(key, c);
    });
    std::sort(entries.begin(), entries.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });

    double sum = 0;
    uint64_t branches = 0;
    for (const auto &[key, c] : entries) {
        double p = static_cast<double>(c.taken) / c.total;
        sum += c.total * linearEntropy(p);
        branches += c.total;
    }
    branchesOut = branches;
    return branches ? sum / branches : 0.0;
}

/**
 * Dependence-depth walk over one window of uops (thesis Alg 3.1).
 *
 * depth[j]     = producing-chain length ending at uop j (>= 1)
 * loadDepth[j] = loads on the longest load-dependence path reaching j
 */
struct WindowChainStats {
    double ap = 0;
    double abp = 0;
    bool hasBranch = false;
    double cp = 0;
    /** Load-depth histogram (1-based, capped). */
    std::array<uint32_t, LoadDepProfile::kMaxDepth> loadHisto{};
    uint32_t loads = 0;
    uint32_t independentLoads = 0;
};

/** Reusable per-walk buffer so stepping windows do not allocate. */
struct WalkScratch {
    /** Packed per-uop state: chain depth in the low 16 bits, load depth
     *  in the high 16 — one load/store instead of two on the walk's
     *  inner dependence lookups. */
    std::vector<uint32_t> packedDepth;

    void resize(size_t n) { packedDepth.resize(n); }
};

WindowChainStats
walkWindow(const MicroOp *ops, size_t n, WalkScratch &scratch,
           std::vector<std::pair<uint32_t, uint32_t>> *loadDepthPerOp)
{
    WindowChainStats out;
    // Producer position per register within the window; -1 = outside.
    int prod[kNumRegs];
    std::fill(std::begin(prod), std::end(prod), -1);

    uint32_t *packed = scratch.packedDepth.data();
    // Integer accumulators (converted once at the end): the sums stay far
    // below 2^53, so the doubles produced are bit-identical to per-step
    // double accumulation.
    uint64_t depthSum = 0, branchDepthSum = 0;
    uint32_t branches = 0;
    uint32_t maxDepth = 0;

    for (size_t j = 0; j < n; ++j) {
        const MicroOp &op = ops[j];
        // Both source depths at once: max over packed halves is the pair
        // of maxes here, because the halves cannot borrow into each other
        // (depths stay far below 2^16 in a <= 2^16-uop window).
        uint32_t dpair = 0;
        auto consider = [&](int8_t reg) {
            if (reg == kNoReg)
                return;
            int p = prod[reg];
            if (p >= 0) {
                uint32_t v = packed[p];
                dpair = std::max(dpair & 0xffffu, v & 0xffffu) |
                        std::max(dpair & 0xffff0000u, v & 0xffff0000u);
            }
        };
        consider(op.src1);
        consider(op.src2);
        bool is_load = op.type == UopType::Load;
        uint32_t d = (dpair & 0xffffu) + 1;
        uint32_t ld = (dpair >> 16) + (is_load ? 1 : 0);
        packed[j] = d | (ld << 16);
        if (op.dst != kNoReg)
            prod[op.dst] = static_cast<int>(j);

        depthSum += d;
        maxDepth = std::max(maxDepth, d);
        if (op.type == UopType::Branch) {
            branchDepthSum += d;
            branches++;
        }
        if (is_load) {
            out.loads++;
            int bin = std::min<int>(static_cast<int>(ld),
                                    LoadDepProfile::kMaxDepth);
            out.loadHisto[bin - 1]++;
            if (ld == 1)
                out.independentLoads++;
            if (loadDepthPerOp)
                loadDepthPerOp->emplace_back(static_cast<uint32_t>(j),
                                             ld);
        }
    }
    out.ap = n ? static_cast<double>(depthSum) / n : 0;
    out.cp = maxDepth;
    out.hasBranch = branches > 0;
    out.abp =
        branches ? static_cast<double>(branchDepthSum) / branches : 0;
    return out;
}

} // namespace

SegmentProfiler::SegmentProfiler(const ProfilerConfig &cfg, Role role,
                                 uint64_t baseUop)
    : cfg_(cfg), carry_(role == Role::Carry), base_(baseUop), pos_(baseUop)
{
    profile_.name = cfg.name;
    profile_.sampling = cfg.sampling;
    profile_.robSizes = cfg.robSizes;
    profile_.chains = DependenceChains(cfg.robSizes);
    profile_.loadDeps.resize(cfg.robSizes.size());
    profile_.cold.resize(cfg.robSizes.size());
    profile_.branch.historyBits = cfg.historyBits;
    histMask_ = cfg.historyBits >= 64 ?
        ~0ULL : (1ULL << cfg.historyBits) - 1;
    winHistMask_ = cfg.windowHistoryBits >= 64 ?
        ~0ULL : (1ULL << cfg.windowHistoryBits) - 1;
    // Dense per-pc history tables cost 8 * 2^historyBits bytes per
    // static branch; beyond ~12 bits that scales badly, so long
    // histories keep the sparse hashed-(pc, history) representation.
    denseBranchTables_ = cfg.historyBits <= 12;
    if (carry_) {
        const size_t winSize =
            std::max<size_t>(1, cfg.sampling.windowSize);
        if (baseUop % winSize != 0)
            throw std::invalid_argument(
                "SegmentProfiler: carry segments must start on a "
                "sampling-window boundary");
        pendingBranchBudget_ =
            std::max(cfg.historyBits, cfg.windowHistoryBits);
        chainSamples_.resize(cfg.robSizes.size());
    } else if (baseUop != 0) {
        throw std::invalid_argument(
            "SegmentProfiler: the head segment starts at uop 0");
    }
}

uint32_t
SegmentProfiler::memOpIndex(uint64_t pc, bool isStore)
{
    if (memPcBase_ == ~0ULL) {
        memPcBase_ = pc & ~(static_cast<uint64_t>(kPcWindow) - 1);
        memOpDirect_.assign(kPcWindow, 0);
    }
    uint64_t off = pc - memPcBase_;
    if (off < kPcWindow) {
        uint32_t slot = memOpDirect_[off];
        if (slot)
            return slot - 1;
        uint32_t idx = createMemOp(pc, isStore);
        memOpDirect_[off] = idx + 1;
        return idx;
    }
    auto [slot, inserted] = memOpIndex_.tryEmplace(pc);
    if (!inserted)
        return slot;
    uint32_t idx = createMemOp(pc, isStore);
    slot = idx;
    return idx;
}

/** memOpIndex without creating. @return whether @p pc has an op. */
bool
SegmentProfiler::findMemOp(uint64_t pc, uint32_t &idx) const
{
    if (memPcBase_ != ~0ULL && pc - memPcBase_ < kPcWindow) {
        uint32_t slot = memOpDirect_[pc - memPcBase_];
        if (!slot)
            return false;
        idx = slot - 1;
        return true;
    }
    const uint32_t *v = memOpIndex_.find(pc);
    if (!v)
        return false;
    idx = *v;
    return true;
}

uint32_t
SegmentProfiler::createMemOp(uint64_t pc, bool isStore)
{
    uint32_t idx = static_cast<uint32_t>(profile_.memOps.size());
    StaticMemProfile p;
    p.pc = pc;
    p.isStore = isStore;
    profile_.memOps.push_back(std::move(p));
    opRunning_.emplace_back();
    opRunning_.back().isStore = isStore;
    if (carry_)
        opBoundary_.emplace_back();
    return idx;
}

void
SegmentProfiler::addTypeAdjustBin(bool accessIsStore, bool nominalIsStore,
                                  size_t bin)
{
    typeAdjust_[accessIsStore ? 1 : 0].add.addAtBin(bin);
    typeAdjust_[nominalIsStore ? 1 : 0].sub.addAtBin(bin);
}

void
SegmentProfiler::addTypeAdjustInfinite(bool accessIsStore,
                                       bool nominalIsStore)
{
    typeAdjust_[accessIsStore ? 1 : 0].add.addInfinite();
    typeAdjust_[nominalIsStore ? 1 : 0].sub.addInfinite();
}

void
SegmentProfiler::observeMemory(const MicroOp &op, uint64_t uopIndex,
                               bool inMt)
{
    uint64_t line = op.lineAddr();
    bool is_store = op.type == UopType::Store;

    // Combined-stream reuse distance (thesis Fig 4.1).
    auto [last, cold] = lastAccess_.tryEmplace(line, memIndex_);
    uint64_t rd = 0;
    if (!cold) {
        rd = memIndex_ - last - 1;
        last = memIndex_;
    }
    uint64_t localMemIdx = memIndex_;
    memIndex_++;

    // The same distance lands in three histograms (combined, per-type,
    // per-op). Only the per-op one is touched here: reuseLoads /
    // reuseStores are assembled at finalize from the per-op histograms
    // (each static op is load or store), with the rare mixed-type pc
    // corrected exactly via typeAdjust_, and reuseAll is their merge.
    size_t reuseBin = cold ? 0 : LogHistogram::binIndex(rd);

    // Per-static-op statistics (strides tracked continuously; spacing
    // within micro-traces), accumulated on the compact running struct.
    uint32_t idx = memOpIndex(op.pc, is_store);
    OpRunning &run = opRunning_[idx];
    run.count++;
    if (cold) {
        if (carry_) {
            // First LOCAL touch: the true distance (or coldness) depends
            // on upstream state; defer the whole observation.
            pendingLines_.push_back(
                {line, localMemIdx, 0, uopIndex, idx,
                 inMt ? static_cast<uint32_t>(profile_.windows.size())
                      : kNoWindow,
                 is_store});
        } else {
            if (!is_store) {
                profile_.cold.coldLoadMisses++;
                coldLoadUopIdx_.push_back(uopIndex);
                if (inMt)
                    mtColdMisses_++;
            }
            run.reuse.addInfinite();
            if (is_store != run.isStore) [[unlikely]]
                addTypeAdjustInfinite(is_store, run.isStore);
        }
    } else {
        run.reuse.addAtBin(reuseBin);
        if (is_store != run.isStore) [[unlikely]] {
            // Access type differs from the op's nominal type: log the
            // exact correction moving this count between the derived
            // per-type histograms. In carry mode the GLOBAL nominal is
            // unknown, so the count parks in the per-op minority
            // histogram and absorb re-attributes it.
            if (carry_)
                opBoundary_[idx].minorityReuse.addAtBin(reuseBin);
            else
                addTypeAdjustBin(is_store, run.isStore, reuseBin);
        }
    }
    if (run.seen) {
        uint64_t stride = static_cast<uint64_t>(op.addr - run.lastAddr);
        if (carry_)
            run.addStrideUncapped(stride);
        else
            run.addStride(stride);
        run.gapSum += uopIndex - run.lastUopIdx;
        run.gapCount++;
        if (!is_store && op.src1 == op.dst && op.dst != kNoReg)
            run.selfDependent++;
    } else if (carry_) {
        // The boundary-crossing stride/gap joins the previous segment's
        // last access of this op at absorb.
        OpBoundary &ob = opBoundary_[idx];
        ob.firstAddr = op.addr;
        ob.firstUop = uopIndex;
        ob.firstSelfDep =
            !is_store && op.src1 == op.dst && op.dst != kNoReg;
    }
    run.lastAddr = op.addr;
    run.lastUopIdx = uopIndex;
    run.seen = true;

    if (inMt) {
        if (idx >= mtMemCount_.size()) {
            mtMemCount_.resize(opRunning_.size(), 0);
            mtFirstPos_.resize(opRunning_.size(), 0);
        }
        if (mtMemCount_[idx]++ == 0) {
            // Position within the micro-trace (the span is contiguous).
            mtFirstPos_[idx] = static_cast<uint32_t>(uopIndex - mtStart_);
            mtTouched_.push_back(idx);
        }
    }
}

uint32_t
SegmentProfiler::newBranchTable()
{
    const size_t tableSize = static_cast<size_t>(histMask_) + 1;
    branchTables_.resize(branchTables_.size() + tableSize);
    return numBranchTables_++;
}

/** Dense-table base for @p pc, creating the table on first use. */
SegmentProfiler::TakenCounts *
SegmentProfiler::branchTableFor(uint64_t pc)
{
    const size_t tableSize = static_cast<size_t>(histMask_) + 1;
    uint32_t table;
    if (branchPcBase_ == ~0ULL) {
        branchPcBase_ = pc & ~(static_cast<uint64_t>(kPcWindow) - 1);
        branchDirect_.assign(kPcWindow, 0);
    }
    uint64_t off = pc - branchPcBase_;
    if (off < kPcWindow) {
        uint32_t slot = branchDirect_[off];
        if (slot) {
            table = slot - 1;
        } else {
            table = newBranchTable();
            branchDirect_[off] = table + 1;
        }
    } else {
        auto [slot, fresh] = branchPc_.tryEmplace(pc, 0);
        if (fresh)
            slot = newBranchTable();
        table = slot;
    }
    return branchTables_.data() + static_cast<size_t>(table) * tableSize;
}

/** Record one branch outcome in the global (pc, history) statistics. */
void
SegmentProfiler::addGlobalBranch(uint64_t pc, bool taken, uint64_t hist)
{
    if (!denseBranchTables_) {
        uint64_t key = (pc << cfg_.historyBits) | (hist & histMask_);
        auto &c = sparseBranchStats_[key];
        c.taken += taken ? 1 : 0;
        c.total++;
        return;
    }
    TakenCounts &c = branchTableFor(pc)[hist & histMask_];
    c.taken += taken ? 1 : 0;
    c.total++;
}

void
SegmentProfiler::observeBranch(const MicroOp &op, bool inMt)
{
    bool pending = false;
    if (branchOrdinal_ < pendingBranchBudget_) [[unlikely]] {
        // Carry: this branch's global history reaches into the previous
        // segment — defer it for replay with the true carried-in
        // history. (Head has budget 0 and never takes this path.)
        pending = true;
        pendingBranches_.push_back({op.pc, op.taken});
    } else {
        addGlobalBranch(op.pc, op.taken, ghist_);
    }

    if (inMt) {
        if (mtRecordBranches_) [[unlikely]] {
            affectedWindows_.back().branches.push_back(
                {op.pc, op.taken});
        } else if (pending) [[unlikely]] {
            // The micro-trace's first branch is history-incomplete, so
            // its whole per-window entropy table is: record the ordered
            // branch list and recompute the window stats at absorb.
            mtRecordBranches_ = true;
            affectedWindows_.push_back(
                {static_cast<uint32_t>(profile_.windows.size()),
                 branchOrdinal_,
                 {}});
            affectedWindows_.back().branches.push_back(
                {op.pc, op.taken});
        } else {
            uint64_t wkey = (op.pc << cfg_.windowHistoryBits) |
                            (ghist_ & winHistMask_);
            auto &wc = mtBranchStats_[wkey];
            wc.taken += op.taken ? 1 : 0;
            wc.total++;
        }
    }
    branchOrdinal_++;
    ghist_ = (ghist_ << 1) | (op.taken ? 1 : 0);
}

/**
 * Stepping-window chain walk for ROB-size index @p i over the current
 * micro-trace span. Writes only state owned by index i (chains row i,
 * loadDeps row i, wp.*[i]) plus, for the median size only, the per-op
 * load-depth attribution — safe to run concurrently across i.
 */
void
SegmentProfiler::walkRobSize(const MicroOp *mt, size_t mtLen, size_t i,
                             size_t median, WindowProfile &wp)
{
    size_t b = cfg_.robSizes[i];
    if (b > mtLen)
        b = mtLen;
    size_t nwin = mtLen / b;
    double apSum = 0, abpSum = 0, cpSum = 0;
    double abpWindows = 0;
    WalkScratch scratch;
    scratch.resize(b);
    std::vector<std::pair<uint32_t, uint32_t>> perLoad;
    for (size_t w = 0; w < nwin; ++w) {
        auto stats = walkWindow(mt + w * b, b, scratch,
                                i == median ? &perLoad : nullptr);
        apSum += stats.ap;
        cpSum += stats.cp;
        if (stats.hasBranch) {
            abpSum += stats.abp;
            abpWindows += 1;
        }
        auto &ld = profile_.loadDeps;
        for (int l = 0; l < LoadDepProfile::kMaxDepth; ++l)
            ld.histo[i][l] += stats.loadHisto[l];
        ld.loads[i] += stats.loads;
        ld.windows[i] += 1;
        ld.independentLoads[i] += stats.independentLoads;

        if (i == median) {
            // Attribute load depths to their static op for the
            // stride-MLP model's dependence imposition.
            for (auto &[posInWin, depthv] : perLoad) {
                size_t pos = w * b + posInWin;
                const MicroOp &op = mt[pos];
                uint32_t sidx = 0;
                if (findMemOp(op.pc, sidx)) {
                    auto &sp = profile_.memOps[sidx];
                    sp.loadDepthSum += depthv;
                    sp.loadDepthCount++;
                }
            }
            perLoad.clear();
        }
        if (carry_) {
            // The chains accumulators are order-sensitive double sums;
            // keep the raw samples so the head replays them in stream
            // order (bit-identical to the sequential accumulation).
            chainSamples_[i].push_back(
                {stats.ap, stats.abp, stats.cp, stats.hasBranch});
        } else {
            profile_.chains.addSample(i, stats.ap, stats.abp,
                                      stats.hasBranch, stats.cp);
        }
    }
    if (nwin > 0) {
        wp.ap[i] = static_cast<float>(apSum / nwin);
        wp.cp[i] = static_cast<float>(cpSum / nwin);
        wp.abp[i] = abpWindows ?
            static_cast<float>(abpSum / abpWindows) : 0.0f;
    }
}

void
SegmentProfiler::finishMicroTrace()
{
    if (mtLen_ == 0)
        return;
    const MicroOp *mt = buf_ + (mtStart_ - bufBase_);
    const size_t mtLen = mtLen_;

    WindowProfile wp;
    wp.ap.resize(cfg_.robSizes.size());
    wp.abp.resize(cfg_.robSizes.size());
    wp.cp.resize(cfg_.robSizes.size());

    for (size_t k = 0; k < mtLen; ++k) {
        const MicroOp &op = mt[k];
        wp.uopCounts[static_cast<int>(op.type)]++;
        wp.insts += op.instBoundary ? 1 : 0;
        if (op.type == UopType::Branch)
            wp.branches++;
        profile_.srcOperands +=
            (op.src1 != kNoReg) + (op.src2 != kNoReg);
        profile_.dstOperands += op.dst != kNoReg;
    }
    profile_.profiledUops += mtLen;
    profile_.profiledInsts += wp.insts;
    for (int t = 0; t < kNumUopTypes; ++t)
        profile_.uopCounts[t] += wp.uopCounts[t];

    // Dependence chains + load-dependence distributions, one pass of
    // stepping windows per profiled ROB size (thesis Alg 3.1, sampled).
    // The per-size walks are independent; fan them out when the span is
    // big enough to amortize the dispatch.
    const size_t nSizes = cfg_.robSizes.size();
    const size_t median = nSizes / 2;
    ThreadPool &pool = ThreadPool::shared();
    if (cfg_.parallelWindows && pool.concurrency() > 1 &&
        mtLen * nSizes >= (1u << 14)) {
        pool.parallelFor(nSizes, 1, [&](size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i)
                walkRobSize(mt, mtLen, i, median, wp);
        });
    } else {
        for (size_t i = 0; i < nSizes; ++i)
            walkRobSize(mt, mtLen, i, median, wp);
    }

    // Per-window branch entropy. For affected carry windows the map is
    // empty and absorb overwrites the value after replay.
    uint64_t nb = 0;
    wp.branchEntropy = static_cast<float>(entropyOf(mtBranchStats_, nb));

    // Per-window memory-op occurrence counts + spacing updates.
    wp.memCounts.reserve(mtTouched_.size());
    for (uint32_t idx : mtTouched_) {
        wp.memCounts.emplace_back(idx, mtMemCount_[idx]);
        profile_.memOps[idx].firstPosSum += mtFirstPos_[idx];
        profile_.memOps[idx].microTraces++;
        mtMemCount_[idx] = 0;
    }
    std::sort(wp.memCounts.begin(), wp.memCounts.end());
    mtTouched_.clear();
    wp.coldMisses = mtColdMisses_;

    profile_.windows.push_back(std::move(wp));
    mtLen_ = 0;
    mtBranchStats_.clear();
    mtColdMisses_ = 0;
    mtRecordBranches_ = false;
}

template <bool InMt>
void
SegmentProfiler::observeRange(const MicroOp *buf, uint64_t begin,
                              uint64_t end)
{
    // The line-reuse probe is the loop's dominant memory stall; its slot
    // for a memory access 64 uops ahead is prefetched here, far enough
    // out to cover the round-trip.
    constexpr uint64_t kLookahead = 64;
    const uint64_t n = feedEnd_;
    const uint64_t base = bufBase_;
    // I-line locality state lives in a register across the loop instead
    // of a member load/store per uop.
    uint64_t prevILine = prevILine_;
    for (uint64_t i = begin; i < end; ++i) {
        const MicroOp &op = buf[i - base];
        if (i + kLookahead < n) {
            const MicroOp &ahead = buf[i + kLookahead - base];
            if (isMemory(ahead.type))
                lastAccess_.prefetch(ahead.lineAddr());
        }
        // Instruction-stream reuse (observeIfetch, inlined on the iline
        // transition only).
        uint64_t iline = op.pc / kLineSize;
        if (iline != prevILine) {
            prevILine = iline;
            auto [last, cold] = lastILine_.tryEmplace(iline, iLineIndex_);
            if (cold) {
                if (carry_)
                    pendingILines_.push_back({iline, iLineIndex_, 0});
                else
                    profile_.reuseInsts.addInfinite();
            } else {
                profile_.reuseInsts.add(iLineIndex_ - last - 1);
                last = iLineIndex_;
            }
            iLineIndex_++;
        }
        if (isMemory(op.type))
            observeMemory(op, i, InMt);
        if (op.type == UopType::Branch)
            observeBranch(op, InMt);
    }
    prevILine_ = prevILine;
}

void
SegmentProfiler::feed(const MicroOp *ops, size_t n)
{
    if (n == 0)
        return;
    const size_t winSize = std::max<size_t>(1, cfg_.sampling.windowSize);
    if (fedAny_) {
        if (!cfg_.sampling.sampled())
            throw std::logic_error(
                "SegmentProfiler::feed: unsampled profiling forms one "
                "whole-stream micro-trace and takes a single feed");
        if (pos_ % winSize != 0)
            throw std::logic_error(
                "SegmentProfiler::feed: the previous feed ended "
                "mid-window; only the final feed may");
    } else {
        // Pre-size the hot maps so the innermost loop does not stall on
        // rehashes (the line-reuse map moves its whole payload on
        // growth).
        lastAccess_.reserve(std::min<size_t>(n / 8 + 64, 1u << 22));
        lastILine_.reserve(1024);
        branchTables_.reserve(
            64 * (static_cast<size_t>(histMask_) + 1));
        // The per-micro-trace map keeps its capacity across clear();
        // size it once instead of growing through rehashes on the first
        // micro-trace.
        mtBranchStats_.reserve(512);
        fedAny_ = true;
    }
    buf_ = ops;
    bufBase_ = pos_;
    feedEnd_ = pos_ + n;

    // Walk whole in-/out-of-micro-trace segments instead of testing
    // inMicroTrace(i) per uop: the sampling flag becomes a compile-time
    // constant inside observeRange, so the 95 % fast-forward path
    // carries no micro-trace bookkeeping at all.
    const size_t mtSize = cfg_.sampling.microTraceSize;
    const uint64_t end = pos_ + n;
    if (mtSize >= winSize) {
        // No sampling: the whole stream is one micro-trace.
        mtStart_ = pos_;
        observeRange<true>(ops, pos_, end);
        mtLen_ = n;
        finishMicroTrace();
    } else {
        for (uint64_t winStart = pos_; winStart < end;
             winStart += winSize) {
            uint64_t mtEnd = std::min<uint64_t>(winStart + mtSize, end);
            mtStart_ = winStart;
            observeRange<true>(ops, winStart, mtEnd);
            mtLen_ = static_cast<size_t>(mtEnd - winStart);
            finishMicroTrace();
            observeRange<false>(
                ops, mtEnd, std::min<uint64_t>(winStart + winSize, end));
        }
    }
    pos_ = end;
    buf_ = nullptr;
}

void
SegmentProfiler::seal()
{
    if (!carry_ || sealed_)
        return;
    sealed_ = true;
    // Join each pending first-touch record with the segment's final
    // last-touch index so absorb needs a single global-map probe per
    // distinct line. The probes here hit segment-local maps and run on
    // the worker that profiled the segment.
    constexpr size_t kAhead = 16;
    for (size_t i = 0; i < pendingLines_.size(); ++i) {
        if (i + kAhead < pendingLines_.size())
            lastAccess_.prefetch(pendingLines_[i + kAhead].line);
        pendingLines_[i].lastLocalIdx =
            *lastAccess_.find(pendingLines_[i].line);
    }
    for (auto &e : pendingILines_)
        e.lastLocalIdx = *lastILine_.find(e.iline);
}

void
SegmentProfiler::absorb(SegmentProfiler &&seg)
{
    if (carry_ || !seg.carry_)
        throw std::logic_error(
            "SegmentProfiler::absorb: a head absorbs carry segments");
    if (seg.base_ != pos_)
        throw std::logic_error(
            "SegmentProfiler::absorb: segments must merge in stream "
            "order");
    if (seg.pos_ == seg.base_)
        return;
    seg.seal();

    // --- static-op identity: global creation order is first-appearance
    //     order across the whole stream, which is exactly head order
    //     followed by the segment's local creation order.
    std::vector<uint32_t> remap(seg.opRunning_.size());
    for (size_t l = 0; l < seg.opRunning_.size(); ++l)
        remap[l] = memOpIndex(seg.profile_.memOps[l].pc,
                              seg.profile_.memOps[l].isStore);

    // --- data-line reuse: resolve every pending first touch against the
    //     pre-segment last-touch map, then advance the map to the
    //     segment's final state — one probe per distinct line, with the
    //     same lookahead prefetch as the profiling loop.
    const uint64_t memBase = memIndex_;
    lastAccess_.reserve(lastAccess_.size() + seg.pendingLines_.size());
    constexpr size_t kAhead = 16;
    for (size_t i = 0; i < seg.pendingLines_.size(); ++i) {
        if (i + kAhead < seg.pendingLines_.size())
            lastAccess_.prefetch(seg.pendingLines_[i + kAhead].line);
        const PendingLine &e = seg.pendingLines_[i];
        OpRunning &gr = opRunning_[remap[e.op]];
        auto [slot, fresh] =
            lastAccess_.tryEmplace(e.line, memBase + e.lastLocalIdx);
        if (!fresh) {
            uint64_t rd = memBase + e.localMemIdx - slot - 1;
            slot = memBase + e.lastLocalIdx;
            size_t bin = LogHistogram::binIndex(rd);
            gr.reuse.addAtBin(bin);
            if (e.isStore != gr.isStore) [[unlikely]]
                addTypeAdjustBin(e.isStore, gr.isStore, bin);
        } else {
            gr.reuse.addInfinite();
            if (e.isStore != gr.isStore) [[unlikely]]
                addTypeAdjustInfinite(e.isStore, gr.isStore);
            if (!e.isStore) {
                profile_.cold.coldLoadMisses++;
                coldLoadUopIdx_.push_back(e.uopIndex);
                if (e.window != kNoWindow)
                    seg.profile_.windows[e.window].coldMisses++;
            }
        }
    }
    memIndex_ += seg.memIndex_;

    // --- instruction-line reuse. The segment's first i-line access is
    //     tentative: when the previous segment ends in the same i-line
    //     the sequential pass sees no transition there, so the access
    //     is dropped and every later local index shifts down by one
    //     (intra-segment distances are index-difference invariant).
    const uint64_t ilineBase = iLineIndex_;
    uint64_t shift = 0;
    lastILine_.reserve(lastILine_.size() + seg.pendingILines_.size());
    for (size_t k = 0; k < seg.pendingILines_.size(); ++k) {
        const PendingILine &e = seg.pendingILines_[k];
        bool spurious = k == 0 && e.iline == prevILine_;
        if (spurious)
            shift = 1;
        uint64_t gidx = ilineBase + e.localIdx - shift;
        auto [slot, fresh] =
            lastILine_.tryEmplace(e.iline,
                                  ilineBase + e.lastLocalIdx - shift);
        if (!fresh) {
            if (!spurious)
                profile_.reuseInsts.add(gidx - slot - 1);
            slot = ilineBase + e.lastLocalIdx - shift;
        } else {
            profile_.reuseInsts.addInfinite();
        }
    }
    iLineIndex_ += seg.iLineIndex_ - shift;
    prevILine_ = seg.prevILine_;
    // Locally-resolved i-line reuses are index differences, invariant
    // under the global renumbering (including the spurious-entry shift).
    profile_.reuseInsts.merge(seg.profile_.reuseInsts);

    // --- branch statistics: replay the history-incomplete prefix with
    //     the true carried-in global history, fold the settled tables,
    //     recompute affected windows, and compose the history register.
    std::vector<uint64_t> ghistAt(seg.pendingBranches_.size());
    {
        uint64_t g = ghist_;
        for (size_t k = 0; k < seg.pendingBranches_.size(); ++k) {
            const PendingBranch &pb = seg.pendingBranches_[k];
            ghistAt[k] = g;
            addGlobalBranch(pb.pc, pb.taken, g);
            g = (g << 1) | (pb.taken ? 1 : 0);
        }
    }
    if (denseBranchTables_) {
        const size_t tableSize = static_cast<size_t>(histMask_) + 1;
        auto foldTable = [&](uint64_t pc, uint32_t table) {
            const TakenCounts *src =
                seg.branchTables_.data() +
                static_cast<size_t>(table) * tableSize;
            TakenCounts *dst = branchTableFor(pc);
            for (size_t h = 0; h < tableSize; ++h) {
                dst[h].taken += src[h].taken;
                dst[h].total += src[h].total;
            }
        };
        if (seg.branchPcBase_ != ~0ULL)
            for (size_t off = 0; off < kPcWindow; ++off)
                if (uint32_t slot = seg.branchDirect_[off])
                    foldTable(seg.branchPcBase_ + off, slot - 1);
        seg.branchPc_.forEach([&](uint64_t pc, const uint32_t &table) {
            foldTable(pc, table);
        });
    } else {
        seg.sparseBranchStats_.forEach(
            [&](uint64_t key, const TakenCounts &c) {
                auto &dst = sparseBranchStats_[key];
                dst.taken += c.taken;
                dst.total += c.total;
            });
    }
    for (const AffectedWindow &aw : seg.affectedWindows_) {
        uint64_t g = ghistAt[aw.firstBranchOrdinal];
        FlatMap<TakenCounts> stats;
        stats.reserve(aw.branches.size());
        for (const PendingBranch &pb : aw.branches) {
            uint64_t wkey = (pb.pc << cfg_.windowHistoryBits) |
                            (g & winHistMask_);
            auto &c = stats[wkey];
            c.taken += pb.taken ? 1 : 0;
            c.total++;
            g = (g << 1) | (pb.taken ? 1 : 0);
        }
        uint64_t nb = 0;
        seg.profile_.windows[aw.window].branchEntropy =
            static_cast<float>(entropyOf(stats, nb));
    }
    ghist_ = seg.branchOrdinal_ >= 64
                 ? seg.ghist_
                 : (ghist_ << seg.branchOrdinal_) | seg.ghist_;

    // --- per-op running state: boundary stride/gap first (it happens
    //     at the segment's first access of the op), then the local
    //     stride arrivals replayed through the global 64-distinct
    //     admission rule in stream order.
    for (size_t l = 0; l < seg.opRunning_.size(); ++l) {
        OpRunning &gr = opRunning_[remap[l]];
        OpRunning &lr = seg.opRunning_[l];
        const OpBoundary &ob = seg.opBoundary_[l];
        if (gr.seen) {
            gr.addStrideN(
                static_cast<uint64_t>(ob.firstAddr - gr.lastAddr), 1);
            gr.gapSum += ob.firstUop - gr.lastUopIdx;
            gr.gapCount++;
            gr.selfDependent += ob.firstSelfDep ? 1 : 0;
        }
        for (size_t k = 0; k < lr.nInline; ++k)
            gr.addStrideN(lr.strideKey[k], lr.strideCount[k]);
        for (uint64_t s : lr.overflowOrder)
            gr.addStrideN(s, *lr.strideOverflow.find(s));
        gr.count += lr.count;
        gr.gapSum += lr.gapSum;
        gr.gapCount += lr.gapCount;
        gr.selfDependent += lr.selfDependent;
        gr.reuse.merge(lr.reuse);
        const bool gn = gr.isStore, ln = lr.isStore;
        if (ln == gn) {
            if (ob.minorityReuse.total()) {
                typeAdjust_[gn ? 0 : 1].add.merge(ob.minorityReuse);
                typeAdjust_[gn ? 1 : 0].sub.merge(ob.minorityReuse);
            }
        } else {
            // The segment guessed the wrong nominal type: its majority
            // accesses (type ln) mismatch the global nominal, while the
            // minority part (type gn) matches and needs no correction.
            LogHistogram majority = lr.reuse;
            majority.subtract(ob.minorityReuse);
            if (majority.total()) {
                typeAdjust_[ln ? 1 : 0].add.merge(majority);
                typeAdjust_[gn ? 1 : 0].sub.merge(majority);
            }
        }
        gr.lastAddr = lr.lastAddr;
        gr.lastUopIdx = lr.lastUopIdx;
        gr.seen = true;

        StaticMemProfile &gsp = profile_.memOps[remap[l]];
        const StaticMemProfile &lsp = seg.profile_.memOps[l];
        gsp.firstPosSum += lsp.firstPosSum;
        gsp.microTraces += lsp.microTraces;
        gsp.loadDepthSum += lsp.loadDepthSum;
        gsp.loadDepthCount += lsp.loadDepthCount;
    }

    // --- dependence chains (sample replay, stream order) + integer rows
    for (size_t i = 0; i < cfg_.robSizes.size(); ++i) {
        for (const ChainSample &cs : seg.chainSamples_[i])
            profile_.chains.addSample(i, cs.ap, cs.abp, cs.hasBranch,
                                      cs.cp);
        auto &ld = profile_.loadDeps;
        const auto &sld = seg.profile_.loadDeps;
        for (int l = 0; l < LoadDepProfile::kMaxDepth; ++l)
            ld.histo[i][l] += sld.histo[i][l];
        ld.loads[i] += sld.loads[i];
        ld.windows[i] += sld.windows[i];
        ld.independentLoads[i] += sld.independentLoads[i];
    }

    profile_.profiledUops += seg.profile_.profiledUops;
    profile_.profiledInsts += seg.profile_.profiledInsts;
    for (int t = 0; t < kNumUopTypes; ++t)
        profile_.uopCounts[t] += seg.profile_.uopCounts[t];
    profile_.srcOperands += seg.profile_.srcOperands;
    profile_.dstOperands += seg.profile_.dstOperands;

    // --- windows: append in stream order with memCounts re-indexed to
    //     the global static-op identities.
    profile_.windows.reserve(profile_.windows.size() +
                             seg.profile_.windows.size());
    for (WindowProfile &w : seg.profile_.windows) {
        for (auto &[idx, cnt] : w.memCounts)
            idx = remap[idx];
        std::sort(w.memCounts.begin(), w.memCounts.end());
        profile_.windows.push_back(std::move(w));
    }

    pos_ = seg.pos_;
}

Profile
SegmentProfiler::finalize() &&
{
    if (carry_)
        throw std::logic_error(
            "SegmentProfiler::finalize: carry segments are absorbed, "
            "not finalized");
    profile_.totalUops = pos_;

    // Finalize branch entropy, iterating in (pc, history) order so the
    // floating-point sum is identical to a sorted-key reference.
    if (denseBranchTables_) {
        std::vector<std::pair<uint64_t, uint32_t>> pcs;
        pcs.reserve(numBranchTables_);
        if (branchPcBase_ != ~0ULL)
            for (size_t off = 0; off < kPcWindow; ++off)
                if (uint32_t slot = branchDirect_[off])
                    pcs.emplace_back(branchPcBase_ + off, slot - 1);
        branchPc_.forEach([&](uint64_t pc, const uint32_t &table) {
            pcs.emplace_back(pc, table);
        });
        std::sort(pcs.begin(), pcs.end());
        const size_t tableSize = static_cast<size_t>(histMask_) + 1;
        double sum = 0;
        uint64_t branches = 0;
        for (const auto &[pc, table] : pcs) {
            const TakenCounts *tc =
                branchTables_.data() +
                static_cast<size_t>(table) * tableSize;
            for (size_t h = 0; h < tableSize; ++h) {
                const TakenCounts &c = tc[h];
                if (!c.total)
                    continue;
                double p = static_cast<double>(c.taken) / c.total;
                sum += c.total * linearEntropy(p);
                branches += c.total;
            }
        }
        profile_.branch.staticBranches = pcs.size();
        profile_.branch.branches = branches;
        profile_.branch.entropySum = sum;
    } else {
        uint64_t nb = 0;
        double e = entropyOf(sparseBranchStats_, nb);
        profile_.branch.branches = nb;
        profile_.branch.entropySum = e * nb;
        std::vector<uint64_t> pcs;
        pcs.reserve(sparseBranchStats_.size());
        sparseBranchStats_.forEach([&](uint64_t key, const TakenCounts &) {
            pcs.push_back(key >> cfg_.historyBits);
        });
        std::sort(pcs.begin(), pcs.end());
        profile_.branch.staticBranches = static_cast<uint64_t>(
            std::unique(pcs.begin(), pcs.end()) - pcs.begin());
    }

    // Materialize the per-op running state into the profile's output
    // records (sorted stride maps are the serialized representation),
    // assembling the per-type reuse distributions along the way.
    for (size_t idx = 0; idx < opRunning_.size(); ++idx) {
        OpRunning &run = opRunning_[idx];
        StaticMemProfile &sp = profile_.memOps[idx];
        sp.count = run.count;
        sp.gapSum = run.gapSum;
        sp.gapCount = run.gapCount;
        sp.selfDependent = run.selfDependent;
        sp.reuse = std::move(run.reuse);
        (sp.isStore ? profile_.reuseStores : profile_.reuseLoads)
            .merge(sp.reuse);
        sp.strides.reserve(run.nInline + run.strideOverflow.size());
        for (size_t k = 0; k < run.nInline; ++k)
            sp.strides.emplace_back(
                static_cast<int64_t>(run.strideKey[k]),
                run.strideCount[k]);
        run.strideOverflow.forEach(
            [&](uint64_t stride, const uint64_t &count) {
                sp.strides.emplace_back(static_cast<int64_t>(stride),
                                        count);
            });
        std::sort(sp.strides.begin(), sp.strides.end());
    }

    // Apply the mixed-type corrections, then derive the combined
    // distribution (every access is exactly one of load/store).
    profile_.reuseLoads.merge(typeAdjust_[0].add);
    profile_.reuseLoads.subtract(typeAdjust_[0].sub);
    profile_.reuseStores.merge(typeAdjust_[1].add);
    profile_.reuseStores.subtract(typeAdjust_[1].sub);
    profile_.reuseAll.merge(profile_.reuseLoads);
    profile_.reuseAll.merge(profile_.reuseStores);

    // Cold-miss burstiness per ROB size (thesis §4.4): step ROB-sized
    // windows over the uop stream and count cold loads per window.
    for (size_t i = 0; i < cfg_.robSizes.size(); ++i) {
        uint64_t b = cfg_.robSizes[i];
        uint64_t curWindow = ~0ULL;
        uint64_t inWindow = 0;
        auto &cold = profile_.cold;
        cold.totalWindows[i] = pos_ / b;
        for (uint64_t idx : coldLoadUopIdx_) {
            uint64_t w = idx / b;
            if (w != curWindow) {
                if (curWindow != ~0ULL) {
                    cold.windowsWithCold[i]++;
                    cold.coldInWindows[i] += inWindow;
                }
                curWindow = w;
                inWindow = 0;
            }
            inWindow++;
        }
        if (curWindow != ~0ULL) {
            cold.windowsWithCold[i]++;
            cold.coldInWindows[i] += inWindow;
        }
    }

    return std::move(profile_);
}

} // namespace mipp
